/**
 * @file
 * Quickstart: one mixed-precision WMMA tile multiply on the simulated
 * Matrix Cores.
 *
 * Walks the same steps a rocWMMA hello-world walks on real hardware:
 * enumerate devices, allocate device memory, load fragments, run
 * mma_sync, verify the result against a host reference, and time a
 * scaled-up version of the kernel with device events.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/matrix.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "hip/runtime.hh"
#include "wmma/wmma.hh"

using namespace mc;

int
main()
{
    // 1. Enumerate devices — each MI250X GCD appears as its own device.
    hip::Runtime rt;
    std::printf("devices: %d\n", rt.deviceCount());
    const hip::DeviceProperties props = rt.properties(0);
    std::printf("device 0: %s\n  CUs: %d, Matrix Cores: %d, HBM: %s\n\n",
                props.name.c_str(), props.multiProcessorCount,
                props.matrixCores,
                units::formatBytes(
                    static_cast<double>(props.totalGlobalMem)).c_str());

    // 2. Prepare one 16x16x16 mixed-precision tile problem on the host.
    constexpr int tile = 16;
    Rng rng(42);
    Matrix<fp::Half> a(tile, tile), b(tile, tile);
    Matrix<float> c(tile, tile), expected(tile, tile);
    for (int i = 0; i < tile; ++i) {
        for (int j = 0; j < tile; ++j) {
            a(i, j) = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
            b(i, j) = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
            c(i, j) = static_cast<float>(rng.uniform(-1, 1));
        }
    }
    for (int i = 0; i < tile; ++i) {
        for (int j = 0; j < tile; ++j) {
            float acc = c(i, j);
            for (int k = 0; k < tile; ++k)
                acc += a(i, k).toFloat() * b(k, j).toFloat();
            expected(i, j) = acc;
        }
    }

    // 3. Device-side: fragments + mma_sync (recorded for timing).
    wmma::KernelRecorder::active().reset("quickstart_tile");
    wmma::Fragment<wmma::FragmentUse::MatrixA, 16, 16, 16, fp::Half> fa;
    wmma::Fragment<wmma::FragmentUse::MatrixB, 16, 16, 16, fp::Half> fb;
    wmma::Fragment<wmma::FragmentUse::Accumulator, 16, 16, 16, float> fc;
    wmma::Fragment<wmma::FragmentUse::Accumulator, 16, 16, 16, float> fd;
    wmma::load_matrix_sync(fa, a.data(), tile);
    wmma::load_matrix_sync(fb, b.data(), tile);
    wmma::load_matrix_sync(fc, c.data(), tile);
    wmma::mma_sync(fd, fa, fb, fc);

    Matrix<float> d(tile, tile);
    wmma::store_matrix_sync(d.data(), fd, tile);

    // 4. Verify.
    double max_err = 0.0;
    for (int i = 0; i < tile; ++i)
        for (int j = 0; j < tile; ++j)
            max_err = std::max(max_err,
                               static_cast<double>(
                                   std::abs(d(i, j) - expected(i, j))));
    std::printf("tile D <- A*B + C computed via %llu MFMA "
                "instruction(s); max |error| vs host = %.2e\n",
                static_cast<unsigned long long>(
                    wmma::KernelRecorder::active().mfmaCount()),
                max_err);
    if (max_err > 1e-3) {
        std::printf("VERIFICATION FAILED\n");
        return 1;
    }
    std::printf("verification PASSED\n\n");

    // 5. Time the recorded tile body scaled to a saturating kernel.
    const sim::KernelProfile profile =
        wmma::KernelRecorder::active().buildProfile(
            /*wavefronts=*/440, /*iterations=*/1000000);
    hip::Event start, stop;
    rt.eventRecord(start);
    const sim::KernelResult result = rt.launch(profile, 0);
    rt.eventRecord(stop);
    std::printf("saturating kernel (440 wavefronts x 1e6 iterations): "
                "%s in %s -> %s\n",
                units::formatFlops(result.mfmaFlops, 2).c_str(),
                units::formatSeconds(
                    rt.eventElapsedMs(start, stop) * 1e-3).c_str(),
                units::formatFlops(result.throughput(), 1).c_str());
    std::printf("(the paper's one-GCD mixed-precision plateau: "
                "175 TFLOPS)\n");
    return 0;
}
