/**
 * @file
 * Mixed-precision iterative refinement: the HPC motivation of the
 * paper (and of its reference [3], Haidar et al.) end to end.
 *
 * Solves the same dense system two ways on the simulated MI250X:
 *   1. FP64 blocked LU (trailing updates on Matrix Cores as DGEMM);
 *   2. FP16-input factorization (trailing updates as HHS on Matrix
 *      Cores) plus FP64 iterative refinement.
 * Both reach FP64 accuracy; the refinement path spends its FLOPs at
 * the mixed-precision rate and power, which is where the time and
 * energy savings come from.
 *
 *   ./build/examples/mixed_precision_refinement --n=512
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "solver/lu.hh"

using namespace mc;

int
main(int argc, char **argv)
{
    CliParser cli("FP64 LU vs FP16+refinement on simulated Matrix "
                  "Cores");
    cli.addFlag("n", static_cast<std::int64_t>(512), "system dimension");
    cli.addFlag("block", static_cast<std::int64_t>(128),
                "LU panel width");
    cli.parse(argc, argv);
    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    const auto block = static_cast<std::size_t>(cli.getInt("block"));

    // Well-conditioned diagonally dominant system.
    Rng rng(7);
    Matrix<double> a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.uniform(-1.0, 1.0);
            row += std::abs(a(i, j));
        }
        a(i, i) += row + 1.0;
    }
    std::vector<double> b(n);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);

    hip::Runtime rt;
    blas::GemmEngine engine(rt);

    std::printf("solving a %zu x %zu dense system on the simulated "
                "MI250X (panel width %zu)\n\n", n, n, block);

    // --- Path 1: straight FP64 LU -----------------------------------------
    solver::LuSolver lu(engine, block);
    std::vector<double> x_fp64;
    solver::SolveStats fp64_stats;
    if (Status s = lu.solveSystem(a, b, x_fp64, &fp64_stats); !s.isOk())
        mc_fatal("fp64 solve failed: ", s.toString());
    std::printf("FP64 LU:          residual %.2e, %d GEMM updates, "
                "device time %s, energy %.3f J\n",
                fp64_stats.relativeResidual, fp64_stats.gemmCalls,
                units::formatSeconds(fp64_stats.gemmSeconds).c_str(),
                fp64_stats.gemmEnergyJ);

    // --- Path 2: FP16 factorization + refinement ---------------------------
    solver::IterativeRefinementSolver refine(engine, block);
    std::vector<double> x_mixed;
    solver::SolveStats mixed_stats;
    if (Status s = refine.solve(a, b, x_mixed, &mixed_stats); !s.isOk())
        mc_fatal("refinement solve failed: ", s.toString());
    std::printf("FP16+refinement:  residual %.2e, %d GEMM updates, "
                "%d refinement iters, device time %s, energy %.3f J\n",
                mixed_stats.relativeResidual, mixed_stats.gemmCalls,
                mixed_stats.refinementIters,
                units::formatSeconds(mixed_stats.gemmSeconds).c_str(),
                mixed_stats.gemmEnergyJ);

    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        max_diff = std::max(max_diff, std::abs(x_fp64[i] - x_mixed[i]));
    std::printf("\nmax |x_fp64 - x_mixed| = %.2e (both at FP64 "
                "accuracy)\n\n", max_diff);

    // --- Performance projection at HPC scale --------------------------------
    // At small n every trailing update is launch-bound and the
    // precisions tie; at production sizes the mixed-precision rate
    // dominates. Replay the factorization's trailing-update sequence
    // for a large virtual problem (timing-only GEMMs) in both
    // precisions.
    const std::size_t big_n = 16384, big_block = 1024;
    double fp64_sec = 0.0, fp64_j = 0.0, hhs_sec = 0.0, hhs_j = 0.0;
    for (std::size_t j0 = 0; j0 + big_block < big_n; j0 += big_block) {
        const std::size_t trailing = big_n - j0 - big_block;
        for (blas::GemmCombo combo :
             {blas::GemmCombo::Dgemm, blas::GemmCombo::Hhs}) {
            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = trailing;
            cfg.k = big_block;
            cfg.alpha = -1.0;
            cfg.beta = 1.0;
            auto r = engine.run(cfg);
            if (!r.isOk())
                mc_fatal("projection GEMM failed: ",
                         r.status().toString());
            const double sec = r.value().kernel.seconds;
            const double joules = r.value().kernel.avgPowerW * sec;
            if (combo == blas::GemmCombo::Dgemm) {
                fp64_sec += sec;
                fp64_j += joules;
            } else {
                hhs_sec += sec;
                hhs_j += joules;
            }
        }
    }
    std::printf("projected trailing-update cost for a %zu x %zu "
                "factorization:\n", big_n, big_n);
    std::printf("  FP64 (dgemm): %s, %.0f J\n",
                units::formatSeconds(fp64_sec).c_str(), fp64_j);
    std::printf("  FP16 (hhs):   %s, %.0f J  ->  %.1fx faster, %.0f%% "
                "less energy\n",
                units::formatSeconds(hhs_sec).c_str(), hhs_j,
                fp64_sec / hhs_sec, 100.0 * (1.0 - hhs_j / fp64_j));
    std::printf("(the paper's Fig. 4/5 story: mixed-precision Matrix "
                "Core FLOPs are ~4x faster and ~8x more "
                "power-efficient than FP64)\n");
    return 0;
}
