/**
 * @file
 * A transformer encoder layer on simulated Matrix Cores.
 *
 * The deep-learning demand the paper's introduction cites is concrete
 * here: one encoder layer is a handful of GEMMs (QKV projections,
 * attention scores and values as batched per-head GEMMs, the output
 * projection, and the two feed-forward layers). This example runs the
 * layer in each precision strategy and reports time, energy, and which
 * GEMMs dominate — showing that the paper's "use HHS, never HGEMM"
 * guidance is worth ~7x on a real layer shape.
 *
 *   ./build/examples/transformer_layer --seq=4096 --dmodel=4096 \
 *       --heads=32 --batch=8
 */

#include <cstdio>
#include <iostream>

#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"

using namespace mc;

namespace {

/** One GEMM of the layer, possibly batched. */
struct LayerGemm
{
    const char *name;
    std::size_t m, n, k, batch;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("One transformer encoder layer on the simulated "
                  "MI250X, per precision strategy");
    cli.addFlag("seq", static_cast<std::int64_t>(4096),
                "sequence length");
    cli.addFlag("dmodel", static_cast<std::int64_t>(4096),
                "model dimension");
    cli.addFlag("heads", static_cast<std::int64_t>(32),
                "attention heads");
    cli.addFlag("batch", static_cast<std::int64_t>(8), "batch size");
    cli.parse(argc, argv);

    const auto seq = static_cast<std::size_t>(cli.getInt("seq"));
    const auto d = static_cast<std::size_t>(cli.getInt("dmodel"));
    const auto heads = static_cast<std::size_t>(cli.getInt("heads"));
    const auto batch = static_cast<std::size_t>(cli.getInt("batch"));
    if (d % heads != 0)
        mc_fatal("dmodel must be divisible by heads");
    const std::size_t dh = d / heads;

    const LayerGemm gemms[] = {
        // Fused QKV projection: [B*S, d] x [d, 3d].
        {"qkv_proj", batch * seq, 3 * d, d, 1},
        // Attention scores per head: [S, dh] x [dh, S].
        {"attn_scores", seq, seq, dh, batch * heads},
        // Attention-weighted values: [S, S] x [S, dh].
        {"attn_values", seq, dh, seq, batch * heads},
        // Output projection: [B*S, d] x [d, d].
        {"out_proj", batch * seq, d, d, 1},
        // Feed-forward up and down (4x expansion).
        {"ffn_up", batch * seq, 4 * d, d, 1},
        {"ffn_down", batch * seq, d, 4 * d, 1},
    };

    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);

    std::printf("layer shape: seq=%zu dmodel=%zu heads=%zu batch=%zu "
                "(per-head dim %zu)\n\n", seq, d, heads, batch, dh);

    TextTable table({"strategy", "layer time", "energy", "avg TFLOPS",
                     "dominant GEMM"});
    table.setTitle("One encoder layer per precision strategy (1 GCD)");
    table.setAlignment({Align::Left, Align::Right, Align::Right,
                        Align::Right, Align::Left});

    const struct { const char *label; blas::GemmCombo combo; }
        strategies[] = {
            {"FP64 (dgemm)", blas::GemmCombo::Dgemm},
            {"FP32 (sgemm)", blas::GemmCombo::Sgemm},
            {"FP16 naive (hgemm)", blas::GemmCombo::Hgemm},
            {"FP16 mixed (hhs)", blas::GemmCombo::Hhs},
        };

    double hgemm_time = 0.0, hhs_time = 0.0;
    for (const auto &strategy : strategies) {
        double total_sec = 0.0, total_joules = 0.0, total_flops = 0.0;
        double worst_sec = 0.0;
        const char *worst_name = "";
        for (const LayerGemm &g : gemms) {
            blas::GemmConfig cfg;
            cfg.combo = strategy.combo;
            cfg.m = g.m;
            cfg.n = g.n;
            cfg.k = g.k;
            cfg.batchCount = g.batch;
            cfg.alpha = 1.0;
            cfg.beta = 0.0;
            auto result = engine.run(cfg);
            if (!result.isOk())
                mc_fatal(g.name, " failed: ",
                         result.status().toString());
            const double sec = result.value().kernel.seconds;
            total_sec += sec;
            total_joules += result.value().kernel.avgPowerW * sec;
            total_flops += result.value().kernel.mfmaFlops +
                           result.value().kernel.simdFlops;
            if (sec > worst_sec) {
                worst_sec = sec;
                worst_name = g.name;
            }
        }
        if (strategy.combo == blas::GemmCombo::Hgemm)
            hgemm_time = total_sec;
        if (strategy.combo == blas::GemmCombo::Hhs)
            hhs_time = total_sec;

        char tflops[16], joules[24];
        std::snprintf(tflops, sizeof(tflops), "%.1f",
                      total_flops / total_sec / 1e12);
        std::snprintf(joules, sizeof(joules), "%.1f J", total_joules);
        table.addRow({strategy.label,
                      units::formatSeconds(total_sec),
                      joules, tflops, worst_name});
    }
    table.print(std::cout);

    if (hgemm_time > 0.0 && hhs_time > 0.0) {
        std::printf("\nchoosing HHS over HGEMM makes the layer %.1fx "
                    "faster — the paper's Fig. 7 finding at a real "
                    "workload shape.\n", hgemm_time / hhs_time);
    }
    return 0;
}
