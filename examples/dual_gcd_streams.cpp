/**
 * @file
 * Driving both GCDs of an MI250X, two ways.
 *
 * The paper notes that an MI250X presents its two dies as two separate
 * devices, and that package-level experiments must drive both (one
 * process per GCD in its setup). This example shows the two idioms the
 * runtime supports and why they differ for FP64:
 *
 *  1. a synchronous dual-GCD launch, where the package power governor
 *     couples the dies (FP64 throttles to the paper's 69 TFLOPS);
 *  2. two asynchronous streams, one per device — the paper's literal
 *     setup — whose merged power trace shows *why* the governor must
 *     step in (the unthrottled draw exceeds the regulation target).
 *
 *   ./build/examples/dual_gcd_streams
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/units.hh"
#include "hip/runtime.hh"
#include "smi/smi.hh"
#include "wmma/recorder.hh"

using namespace mc;

int
main()
{
    hip::Runtime rt;
    const arch::MfmaInstruction *f64 = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    const arch::MfmaInstruction *f16 = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    if (f64 == nullptr || f16 == nullptr)
        mc_fatal("instruction table incomplete");

    std::printf("devices visible: %d (one per GCD)\n\n",
                rt.deviceCount());

    // ---- Idiom 1: synchronous dual-GCD launch ---------------------------
    const auto profile64 =
        wmma::mfmaLoopProfile(*f64, 100000000, 440, "fp64_peak");
    const auto sync = rt.launchMulti(profile64, {0, 1});
    std::printf("synchronous dual-GCD FP64 peak:\n");
    std::printf("  %s at %s, clock %s%s\n",
                units::formatFlops(sync.throughput(), 1).c_str(),
                units::formatWatts(sync.avgPowerW, 0).c_str(),
                units::formatHertz(sync.effClockHz).c_str(),
                sync.throttled ? " (governor throttled)" : "");

    // ---- Idiom 2: one stream per GCD (the paper's processes) ------------
    hip::Stream gcd0(rt, 0), gcd1(rt, 1);
    const auto r0 = gcd0.launch(profile64);
    const auto r1 = gcd1.launch(profile64);
    const double overlap_mid = 0.5 * (r0.startSec + r0.endSec);

    std::printf("\nasync per-GCD streams (FP64):\n");
    std::printf("  GCD0: %s over [%.2f, %.2f] s\n",
                units::formatFlops(r0.throughput(), 1).c_str(),
                r0.startSec, r0.endSec);
    std::printf("  GCD1: %s over [%.2f, %.2f] s\n",
                units::formatFlops(r1.throughput(), 1).c_str(),
                r1.startSec, r1.endSec);
    std::printf("  merged package draw mid-overlap: %s\n",
                units::formatWatts(
                    rt.asyncTrace().wattsAt(overlap_mid), 0).c_str());
    std::printf("  within the 541 W regulation target? %s\n",
                rt.asyncPowerOk(r0.startSec, r0.endSec) ? "yes"
                                                        : "no");
    std::printf("  -> the synchronous path throttles to exactly absorb "
                "that excess.\n");

    // ---- Mixed precision for contrast: no coupling either way -----------
    const auto profile16 =
        wmma::mfmaLoopProfile(*f16, 100000000, 440, "mixed_peak");
    const auto m0 = gcd0.launch(profile16);
    gcd1.launch(profile16);
    smi::PowerSensor sensor(rt.asyncTrace());
    std::printf("\nasync mixed precision: merged draw %s (cap 560 W) — "
                "no throttle needed on either path.\n",
                units::formatWatts(
                    sensor.averagePower(
                        0.5 * (m0.startSec + m0.endSec)), 0).c_str());
    return 0;
}
