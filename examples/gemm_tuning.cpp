/**
 * @file
 * Datatype tuning for GEMM: the paper's Section VII advice as a tool.
 *
 * Runs one problem size through every rocBLAS-style datatype
 * combination, reports throughput, the counter-derived Matrix Core
 * FLOP fraction, energy per GEMM, and prints the recommendation the
 * paper arrives at (use HSS/HHS, never HGEMM, for half inputs).
 *
 *   ./build/examples/gemm_tuning --n=8192
 */

#include <cstdio>
#include <iostream>

#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "prof/profiler.hh"

using namespace mc;

int
main(int argc, char **argv)
{
    CliParser cli("GEMM datatype tuning on the simulated MI250X");
    cli.addFlag("n", static_cast<std::int64_t>(8192),
                "square problem dimension");
    cli.addFlag("alpha", 0.1, "alpha scale");
    cli.addFlag("beta", 0.1, "beta scale");
    cli.parse(argc, argv);
    const auto n = static_cast<std::size_t>(cli.getInt("n"));

    hip::Runtime rt;
    blas::GemmEngine engine(rt);
    prof::Profiler profiler;

    TextTable table({"combo", "path", "TFLOPS", "MC FLOP share", "time",
                     "energy/GEMM"});
    table.setTitle("GEMM datatype comparison at N = " +
                   std::to_string(n));
    table.setAlignment({Align::Left, Align::Left, Align::Right,
                        Align::Right, Align::Right, Align::Right});

    double best = 0.0;
    const char *best_name = "";
    for (blas::GemmCombo combo : blas::allCombos) {
        blas::GemmConfig cfg;
        cfg.combo = combo;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cli.getDouble("alpha");
        cfg.beta = cli.getDouble("beta");

        auto result = engine.run(cfg);
        if (!result.isOk()) {
            table.addRow({blas::comboInfo(combo).name, "-",
                          result.status().toString(), "-", "-", "-"});
            continue;
        }
        const blas::GemmResult &r = result.value();
        profiler.record(r.kernel);

        const auto split = prof::flopBreakdown(r.kernel.counters);
        char tf[16], share[16];
        std::snprintf(tf, sizeof(tf), "%.1f", r.throughput() / 1e12);
        std::snprintf(share, sizeof(share), "%.1f%%",
                      100.0 * split.matrixCoreFraction());
        char energy[32];
        std::snprintf(energy, sizeof(energy), "%.1f J",
                      r.kernel.avgPowerW * r.kernel.seconds);
        table.addRow({blas::comboInfo(combo).name,
                      r.usedMatrixCores ? "MatrixCore" : "SIMD", tf,
                      share,
                      units::formatSeconds(r.kernel.seconds), energy});
        if (r.throughput() > best) {
            best = r.throughput();
            best_name = blas::comboInfo(combo).name;
        }
    }
    table.print(std::cout);

    std::printf("\nfastest combo at this size: %s (%s)\n", best_name,
                units::formatFlops(best, 1).c_str());
    std::printf("paper guidance: prefer HHS/HSS over HGEMM for "
                "half-precision inputs — HGEMM cannot use Matrix Cores "
                "(no f16<-f16 MFMA instruction exists) and runs "
                "entirely on the SIMDs.\n");
    return 0;
}
