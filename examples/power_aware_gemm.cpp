/**
 * @file
 * Power-aware GEMM: Section VI's methodology as an application.
 *
 * Runs a long GEMM workload in each floating-point precision while a
 * background SMI sampler polls package power at 100 ms, then reports
 * the sampled power, the fitted linear power model, the energy per
 * GEMM, and the power saving available by switching precision — the
 * paper's 4x/8x headline.
 *
 *   ./build/examples/power_aware_gemm --n=8192 --launches=20
 */

#include <cstdio>
#include <iostream>

#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "smi/smi.hh"

using namespace mc;

namespace {

struct PrecisionRun
{
    const char *label;
    blas::GemmCombo combo;
    double tflops = 0.0;
    double watts = 0.0;
    double joulesPerGemm = 0.0;

    double efficiency() const { return tflops * 1e12 / watts; }
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Power-aware GEMM precision comparison");
    cli.addFlag("n", static_cast<std::int64_t>(8192),
                "square problem dimension");
    cli.addFlag("launches", static_cast<std::int64_t>(20),
                "back-to-back GEMM launches per precision");
    cli.parse(argc, argv);
    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    const int launches = static_cast<int>(cli.getInt("launches"));

    hip::Runtime rt;
    blas::GemmEngine engine(rt);

    PrecisionRun runs[] = {
        {"double (dgemm)", blas::GemmCombo::Dgemm},
        {"single (sgemm)", blas::GemmCombo::Sgemm},
        {"mixed (hhs)", blas::GemmCombo::Hhs},
    };

    TextTable table({"precision", "TFLOPS", "avg power", "energy/GEMM",
                     "efficiency"});
    table.setTitle("Power and energy of repeated N x N x N GEMMs "
                   "(sampled via SMI at 100 ms)");
    table.setAlignment({Align::Left, Align::Right, Align::Right,
                        Align::Right, Align::Right});

    for (PrecisionRun &run : runs) {
        blas::GemmConfig cfg;
        cfg.combo = run.combo;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;

        const double window_start = rt.gpu().timelineSec();
        double flops = 0.0;
        std::vector<double> throughputs;
        for (int i = 0; i < launches; ++i) {
            auto result = engine.run(cfg);
            if (!result.isOk())
                mc_fatal("gemm failed: ", result.status().toString());
            flops += result.value().kernel.mfmaFlops +
                     result.value().kernel.simdFlops;
            throughputs.push_back(result.value().throughput());
        }
        const double window_end = rt.gpu().timelineSec();
        rt.gpu().idle(1.0); // cool-down gap between precisions

        smi::PowerSensor sensor(rt.gpu().trace());
        smi::PowerSampler sampler(sensor, 0.1);
        const auto samples =
            sampler.sampleInterval(window_start, window_end);
        const double energy =
            rt.gpu().trace().energyJoules(window_start, window_end);

        run.watts = samples.empty()
                        ? rt.gpu().trace().averageWatts(window_start,
                                                        window_end)
                        : smi::meanWatts(samples).value();
        run.tflops = flops / (window_end - window_start) / 1e12;
        run.joulesPerGemm = energy / launches;

        char tf[16], joules[24];
        std::snprintf(tf, sizeof(tf), "%.1f", run.tflops);
        std::snprintf(joules, sizeof(joules), "%.1f J",
                      run.joulesPerGemm);
        table.addRow({run.label, tf,
                      units::formatWatts(run.watts, 1), joules,
                      units::formatEfficiency(run.efficiency())});
    }
    table.print(std::cout);

    const PrecisionRun &dbl = runs[0];
    const PrecisionRun &sgl = runs[1];
    const PrecisionRun &mix = runs[2];
    std::printf("\nefficiency gains vs double precision: single %.1fx, "
                "mixed %.1fx (paper: ~2x and ~8x at the respective "
                "peaks)\n",
                sgl.efficiency() / dbl.efficiency(),
                mix.efficiency() / dbl.efficiency());
    std::printf("energy saving per GEMM when switching double -> "
                "mixed: %.0f%%\n",
                100.0 * (1.0 - mix.joulesPerGemm / dbl.joulesPerGemm));
    return 0;
}
