#include "bench_util.hh"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "blas/pack_cache.hh"
#include "blas/plan_cache.hh"
#include "blas/simd_dispatch.hh"
#include "blas/tune.hh"
#include "common/logging.hh"
#include "common/retry.hh"
#include "exec/supervisor.hh"
#include "exec/thread_pool.hh"

namespace mc {
namespace bench {

std::string
Measurement::format(double scale, int precision) const
{
    char buf[96];
    if (stats.relativeSpread() > 0.02) {
        std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision,
                      stats.mean * scale, precision,
                      stats.stddev * scale);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*f", precision,
                      stats.mean * scale);
    }
    return buf;
}

Measurement
repeatMeasure(const std::function<double()> &sample, int repetitions)
{
    mc_assert(repetitions > 0, "at least one repetition required");
    std::vector<double> values;
    values.reserve(repetitions);
    for (int i = 0; i < repetitions; ++i)
        values.push_back(sample());
    Measurement m{summarize(values)};
    m.samplesTaken = repetitions;
    return m;
}

Measurement
repeatMeasureUntil(const std::function<std::optional<double>()> &sample,
                   int repetitions)
{
    mc_assert(repetitions > 0, "at least one repetition required");
    std::vector<double> values;
    values.reserve(repetitions);
    Measurement m;
    for (int i = 0; i < repetitions; ++i) {
        const std::optional<double> value = sample();
        if (!value) {
            m.aborted = true;
            break;
        }
        values.push_back(*value);
    }
    m.stats = summarize(values);
    m.samplesTaken = static_cast<int>(values.size());
    return m;
}

std::string
tflopsCell(const Measurement &m)
{
    return m.format(1e-12, 1);
}

Result<Measurement>
repeatMeasureResilient(const std::function<Result<TimedSample>(int)> &sample,
                       const ResilientOptions &opts)
{
    mc_assert(opts.repetitions > 0, "at least one repetition required");
    std::vector<double> values;
    values.reserve(opts.repetitions);
    Measurement m;
    double elapsed_sec = 0.0;

    for (int rep = 0; rep < opts.repetitions; ++rep) {
        double backoff_sec = 0.0;
        int attempts = 0;
        // Budget-bounded: a deadline that expires *between* retries
        // returns DeadlineExceeded right there instead of charging a
        // backoff that sleeps past the deadline and then reporting the
        // underlying transient error.
        const Result<TimedSample> result = retryCallWithin(
            opts.retry, opts.deadlineSec - elapsed_sec,
            [&] {
                ++attempts;
                return sample(rep);
            },
            &backoff_sec);
        m.retries += attempts - 1;
        // Simulated backoff occupies the point's deadline budget just
        // like the samples themselves.
        elapsed_sec += backoff_sec;

        if (!result.isOk()) {
            if (result.status().code() == ErrorCode::OutOfMemory) {
                // The sweep-terminating condition, not a fault: report
                // the completed repetitions (repeatMeasureUntil
                // semantics).
                m.aborted = true;
                break;
            }
            return result.status();
        }

        elapsed_sec += result.value().simSeconds;
        if (elapsed_sec > opts.deadlineSec) {
            return Status::deadlineExceeded(
                "point exceeded its simulated-time deadline (" +
                std::to_string(elapsed_sec) + " s > " +
                std::to_string(opts.deadlineSec) + " s) at repetition " +
                std::to_string(rep));
        }
        values.push_back(result.value().value);
    }

    m.stats = summarize(values);
    m.samplesTaken = static_cast<int>(values.size());
    return m;
}

void
addResilienceFlags(CliParser &cli)
{
    cli.addFlag("inject", std::string(),
                "fault probabilities, e.g. oom=0.01,smi_dropout=0.05 "
                "(see docs/RESILIENCE.md)");
    cli.addFlag("max-point-failures", static_cast<std::int64_t>(-1),
                "failed points tolerated before the sweep is cancelled "
                "(-1 = unlimited)");
    cli.addFlag("deadline-sec", 3600.0,
                "per-point simulated-time deadline in seconds");
    cli.requirePositiveDouble("deadline-sec");
    cli.addFlag("journal", std::string(),
                "write an append-only per-point journal to this path");
    cli.addFlag("resume", std::string(),
                "load a prior run's journal and re-execute only its "
                "failed or missing points");
}

SweepResilience
resilienceFlags(const CliParser &cli)
{
    SweepResilience res;

    const std::string inject = cli.getString("inject");
    if (!inject.empty()) {
        auto spec = fault::parseFaultSpec(inject);
        if (!spec.isOk())
            mc_fatal("bad --inject: ", spec.status().toString());
        res.faults = spec.value();
    }

    const std::int64_t budget = cli.getInt("max-point-failures");
    if (budget >= 0)
        res.maxPointFailures = static_cast<std::size_t>(budget);

    // parse() already rejected non-positive values (addResilienceFlags
    // registers the constraint).
    res.deadlineSec = cli.getDouble("deadline-sec");

    const std::string journal = cli.getString("journal");
    const std::string resume = cli.getString("resume");
    if (!journal.empty() && !resume.empty())
        mc_fatal("--journal and --resume are mutually exclusive; "
                 "--resume appends to the journal it loads");
    res.journalPath = resume.empty() ? journal : resume;
    res.resume = !resume.empty();
    return res;
}

void
printSweepSummary(const std::string &bench_name, std::size_t total_points,
                  const std::vector<FailedPoint> &failed,
                  std::size_t skipped, std::size_t resumed)
{
    if (failed.empty() && skipped == 0 && resumed == 0)
        return;
    const std::size_t ok_points = total_points - failed.size() - skipped;
    std::fprintf(stderr,
                 "[%s] sweep summary: %zu/%zu points ok, %zu failed, "
                 "%zu skipped, %zu loaded from journal\n",
                 bench_name.c_str(), ok_points, total_points,
                 failed.size(), skipped, resumed);
    for (const FailedPoint &point : failed) {
        std::fprintf(stderr, "[%s]   point %zu (%s): %s\n",
                     bench_name.c_str(), point.index, point.key.c_str(),
                     point.status.toString().c_str());
    }
}

void
addJobsFlag(CliParser &cli)
{
    cli.addFlag("jobs", static_cast<std::int64_t>(1),
                "parallel sweep workers (1 = serial; output is "
                "identical for any value)");
    cli.requireIntAtLeast("jobs", 1);
}

int
jobsFlag(const CliParser &cli)
{
    return static_cast<int>(cli.getInt("jobs"));
}

void
addRepsFlag(CliParser &cli, std::int64_t default_reps)
{
    cli.addFlag("reps", default_reps, "measurement repetitions");
    cli.requireIntAtLeast("reps", 1);
}

void
addPlanCacheFlag(CliParser &cli)
{
    cli.addFlag("plan-cache-cap", static_cast<std::int64_t>(
                    blas::PlanCache::defaultCapacity()),
                "LRU bound of the GEMM plan cache (0 = unbounded)");
    cli.requireIntAtLeast("plan-cache-cap", 0);
}

void
applyPlanCacheFlag(const CliParser &cli)
{
    blas::PlanCache::setDefaultCapacity(
        static_cast<std::size_t>(cli.getInt("plan-cache-cap")));
}

void
addPackCacheFlag(CliParser &cli)
{
    cli.addFlag("pack-cache-mb",
                static_cast<std::int64_t>(
                    blas::PackCache::kDefaultCapacityBytes >> 20),
                "byte cap (MiB) of the packed-operand reuse cache "
                "(0 = disabled; MC_PACK_CACHE env overrides)");
    cli.requireIntAtLeast("pack-cache-mb", 0);
}

void
applyPackCacheFlag(const CliParser &cli)
{
    blas::PackCache::configureCapacityMb(
        static_cast<std::uint64_t>(cli.getInt("pack-cache-mb")));
}

void
addVerifyFlags(CliParser &cli, bool default_enabled)
{
    cli.addFlag("verify", default_enabled,
                "numerically verify sweep points on the host via the "
                "fast functional backend");
    cli.addFlag("verify-maxn", static_cast<std::int64_t>(2048),
                "verify only points with every dimension <= this "
                "(the check is O(n^3) host work)");
    cli.requireIntAtLeast("verify-maxn", 1);
    cli.addFlag("verify-scheme", std::string("paper"),
                "operand scheme: 'paper' (A=1, B=I, C=1) or 'random'");
    cli.addFlag("verify-threads", static_cast<std::int64_t>(0),
                "host threads for verification (0 = all hardware "
                "threads; values above the hardware thread count are "
                "capped; results are identical for every value)");
    cli.requireIntAtLeast("verify-threads", 0);
}

VerifyConfig
verifyFlags(const CliParser &cli)
{
    VerifyConfig config;
    config.enabled = cli.getBool("verify");
    // Verification fans out through exec::sharedPool from *inside*
    // sweep workers, so --jobs and --verify-threads used to multiply
    // into jobs x threads runnable host threads. Cap the library-
    // internal fan-out at the hardware concurrency instead: the sweep's
    // own workers (a private pool) keep the user's --jobs, while every
    // verification call shares at most one machine's worth of threads
    // (an explicit --verify-threads above that count is capped too).
    // Results are unaffected — the knobs trade scheduling only. Only
    // a verifying run gets the process-wide cap; parsing flags alone
    // must not change unrelated sharedPool/parallelChunks sizing.
    if (config.enabled)
        exec::setConcurrencyCap(exec::ThreadPool::hardwareThreads());
    config.maxN = static_cast<std::size_t>(cli.getInt("verify-maxn"));
    const std::string scheme = cli.getString("verify-scheme");
    if (scheme == "paper") {
        config.scheme = blas::VerifyScheme::PaperOnesIdentity;
    } else if (scheme == "random") {
        config.scheme = blas::VerifyScheme::Random;
    } else {
        mc_fatal("bad --verify-scheme '", scheme,
                 "': expected 'paper' or 'random'");
    }
    const std::int64_t threads = cli.getInt("verify-threads");
    config.func.threads = threads == 0 ? -1 : static_cast<int>(threads);
    return config;
}

void
addOutFlag(CliParser &cli)
{
    cli.addFlag("out", std::string(),
                "write results atomically to this file instead of "
                "stdout (temp + fsync + rename; never torn)");
}

BenchOutput::BenchOutput(const CliParser &cli)
{
    const std::string path = cli.getString("out");
    if (!path.empty())
        _writer.emplace(path);
}

std::ostream &
BenchOutput::stream()
{
    return _writer ? _writer->stream() : std::cout;
}

int
BenchOutput::finish(const std::string &bench_name, ErrorCode code)
{
    if (_writer) {
        const Status committed = _writer->commit();
        if (!committed.isOk()) {
            std::fprintf(stderr, "[%s] output commit failed: %s\n",
                         bench_name.c_str(),
                         committed.toString().c_str());
            if (code == ErrorCode::Ok)
                code = ErrorCode::DataLoss;
        }
    }
    return finishBench(bench_name, code);
}

int
finishBench(const std::string &bench_name, ErrorCode code)
{
    // With SIGPIPE ignored (CliParser::parse), a reader that closed
    // early leaves stdout in an error state instead of killing the
    // process with signal 13. A bench whose results never reached the
    // consumer did not complete — classify it Unavailable (retriable:
    // the next supervisor attempt gets a fresh pipe).
    std::fflush(stdout);
    if (code == ErrorCode::Ok &&
        (std::ferror(stdout) || !std::cout.good())) {
        code = ErrorCode::Unavailable;
    }
    const int exit_status = exitCodeFor(code);
    // To stderr: stdout carries only rendered results and must stay
    // byte-comparable across --jobs values and resume. The supervisor
    // detects the line by prefix substring, so the appended plan-cache
    // counters are invisible to it.
    const blas::PlanCacheStats plans = blas::PlanCache::globalStats();
    const blas::PackCacheStats packs = blas::PackCache::globalStats();
    // simd= names the tiers this process actually dispatched to (the
    // Auto resolution only when no GEMM ran), so a run that forced a
    // tier through FunctionalGemmOptions::simd is labelled truthfully.
    // tuned= is the active tuning artifact's fingerprint ("none" when
    // block sizes came from the built-in defaults), so sweep artifacts
    // are attributable to the block configuration that produced them.
    std::fprintf(stderr,
                 "%s%s code=%s exit=%d plan_hits=%llu plan_misses=%llu "
                 "plan_evictions=%llu pack_hits=%llu pack_misses=%llu "
                 "pack_bytes=%llu pack_evictions=%llu simd=%s tuned=%s\n",
                 exec::kBenchCompletionPrefix, bench_name.c_str(),
                 errorCodeName(code), exit_status,
                 static_cast<unsigned long long>(plans.hits),
                 static_cast<unsigned long long>(plans.misses),
                 static_cast<unsigned long long>(plans.evictions),
                 static_cast<unsigned long long>(packs.hits),
                 static_cast<unsigned long long>(packs.misses),
                 static_cast<unsigned long long>(packs.residentBytes),
                 static_cast<unsigned long long>(packs.evictions),
                 blas::usedSimdTierLabel().c_str(),
                 blas::activeTuningLabel().c_str());
    return exit_status;
}

} // namespace bench
} // namespace mc
