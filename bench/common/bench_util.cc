#include "bench_util.hh"

#include <cstdio>
#include <vector>

#include "common/logging.hh"

namespace mc {
namespace bench {

std::string
Measurement::format(double scale, int precision) const
{
    char buf[96];
    if (stats.relativeSpread() > 0.02) {
        std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision,
                      stats.mean * scale, precision,
                      stats.stddev * scale);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*f", precision,
                      stats.mean * scale);
    }
    return buf;
}

Measurement
repeatMeasure(const std::function<double()> &sample, int repetitions)
{
    mc_assert(repetitions > 0, "at least one repetition required");
    std::vector<double> values;
    values.reserve(repetitions);
    for (int i = 0; i < repetitions; ++i)
        values.push_back(sample());
    return Measurement{summarize(values)};
}

std::string
tflopsCell(const Measurement &m)
{
    return m.format(1e-12, 1);
}

} // namespace bench
} // namespace mc
