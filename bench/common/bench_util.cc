#include "bench_util.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.hh"

namespace mc {
namespace bench {

std::string
Measurement::format(double scale, int precision) const
{
    char buf[96];
    if (stats.relativeSpread() > 0.02) {
        std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision,
                      stats.mean * scale, precision,
                      stats.stddev * scale);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*f", precision,
                      stats.mean * scale);
    }
    return buf;
}

Measurement
repeatMeasure(const std::function<double()> &sample, int repetitions)
{
    mc_assert(repetitions > 0, "at least one repetition required");
    std::vector<double> values;
    values.reserve(repetitions);
    for (int i = 0; i < repetitions; ++i)
        values.push_back(sample());
    Measurement m{summarize(values)};
    m.samplesTaken = repetitions;
    return m;
}

Measurement
repeatMeasureUntil(const std::function<std::optional<double>()> &sample,
                   int repetitions)
{
    mc_assert(repetitions > 0, "at least one repetition required");
    std::vector<double> values;
    values.reserve(repetitions);
    Measurement m;
    for (int i = 0; i < repetitions; ++i) {
        const std::optional<double> value = sample();
        if (!value) {
            m.aborted = true;
            break;
        }
        values.push_back(*value);
    }
    m.stats = summarize(values);
    m.samplesTaken = static_cast<int>(values.size());
    return m;
}

std::string
tflopsCell(const Measurement &m)
{
    return m.format(1e-12, 1);
}

void
addJobsFlag(CliParser &cli)
{
    cli.addFlag("jobs", static_cast<std::int64_t>(1),
                "parallel sweep workers (1 = serial; output is "
                "identical for any value)");
}

int
jobsFlag(const CliParser &cli)
{
    return std::max(1, static_cast<int>(cli.getInt("jobs")));
}

} // namespace bench
} // namespace mc
