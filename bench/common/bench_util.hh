/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: repeated
 * measurement with the paper's error-bound convention (>= 10
 * repetitions, error reported when the spread exceeds 2%), and common
 * formatting.
 */

#ifndef MC_BENCH_COMMON_BENCH_UTIL_HH
#define MC_BENCH_COMMON_BENCH_UTIL_HH

#include <functional>
#include <string>

#include "common/stats.hh"

namespace mc {
namespace bench {

/** A repeated measurement with the paper's reporting convention. */
struct Measurement
{
    SampleStats stats;

    /** Mean of the repetitions. */
    double value() const { return stats.mean; }

    /**
     * Render the value scaled by @p scale with @p precision digits,
     * appending a +/- error bound only when the relative spread
     * exceeds 2% (Section IV's convention).
     */
    std::string format(double scale, int precision) const;
};

/**
 * Run @p sample (which returns one measured value) @p repetitions
 * times and summarize.
 */
Measurement repeatMeasure(const std::function<double()> &sample,
                          int repetitions = 10);

/** Standard "<n> TFLOPS" cell: value scaled by 1e12, one decimal. */
std::string tflopsCell(const Measurement &m);

} // namespace bench
} // namespace mc

#endif // MC_BENCH_COMMON_BENCH_UTIL_HH
