/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: repeated
 * measurement with the paper's error-bound convention (>= 10
 * repetitions, error reported when the spread exceeds 2%), early sweep
 * abort (OOM), the shared --jobs flag of the parallel sweep engine,
 * and common formatting.
 */

#ifndef MC_BENCH_COMMON_BENCH_UTIL_HH
#define MC_BENCH_COMMON_BENCH_UTIL_HH

#include <functional>
#include <optional>
#include <string>

#include "common/cli.hh"
#include "common/stats.hh"

namespace mc {
namespace bench {

/** A repeated measurement with the paper's reporting convention. */
struct Measurement
{
    SampleStats stats;

    /**
     * True when the sample aborted the repetition loop (e.g. the
     * sweep-terminating OOM); stats then cover only the repetitions
     * that completed before the abort.
     */
    bool aborted = false;

    /** Repetitions that produced a value. */
    int samplesTaken = 0;

    /** Mean of the repetitions. */
    double value() const { return stats.mean; }

    /**
     * Render the value scaled by @p scale with @p precision digits,
     * appending a +/- error bound only when the relative spread
     * exceeds 2% (Section IV's convention).
     */
    std::string format(double scale, int precision) const;
};

/**
 * Run @p sample (which returns one measured value) @p repetitions
 * times and summarize.
 */
Measurement repeatMeasure(const std::function<double()> &sample,
                          int repetitions = 10);

/**
 * Like repeatMeasure, but @p sample may return nullopt to abort the
 * remaining repetitions (the sweep-terminating condition): no zero
 * values pollute the statistics, and the returned Measurement has
 * aborted = true.
 */
Measurement
repeatMeasureUntil(const std::function<std::optional<double>()> &sample,
                   int repetitions = 10);

/** Standard "<n> TFLOPS" cell: value scaled by 1e12, one decimal. */
std::string tflopsCell(const Measurement &m);

/**
 * Register the sweep engine's --jobs flag (default 1 = serial).
 * Output is byte-identical for every --jobs value; see
 * docs/SWEEP_ENGINE.md.
 */
void addJobsFlag(CliParser &cli);

/** Read --jobs back, clamped to >= 1. */
int jobsFlag(const CliParser &cli);

} // namespace bench
} // namespace mc

#endif // MC_BENCH_COMMON_BENCH_UTIL_HH
