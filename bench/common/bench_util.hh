/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses: repeated
 * measurement with the paper's error-bound convention (>= 10
 * repetitions, error reported when the spread exceeds 2%), early sweep
 * abort (OOM), the shared --jobs flag of the parallel sweep engine,
 * and common formatting.
 */

#ifndef MC_BENCH_COMMON_BENCH_UTIL_HH
#define MC_BENCH_COMMON_BENCH_UTIL_HH

#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "blas/verify.hh"
#include "common/atomic_file.hh"
#include "common/cli.hh"
#include "common/retry.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "fault/injector.hh"

namespace mc {
namespace bench {

/** A repeated measurement with the paper's reporting convention. */
struct Measurement
{
    SampleStats stats;

    /**
     * True when the sample aborted the repetition loop (e.g. the
     * sweep-terminating OOM); stats then cover only the repetitions
     * that completed before the abort.
     */
    bool aborted = false;

    /** Repetitions that produced a value. */
    int samplesTaken = 0;

    /** Transient-error retries spent across all repetitions. */
    int retries = 0;

    /** Mean of the repetitions. */
    double value() const { return stats.mean; }

    /**
     * Render the value scaled by @p scale with @p precision digits,
     * appending a +/- error bound only when the relative spread
     * exceeds 2% (Section IV's convention).
     */
    std::string format(double scale, int precision) const;
};

/**
 * Run @p sample (which returns one measured value) @p repetitions
 * times and summarize.
 */
Measurement repeatMeasure(const std::function<double()> &sample,
                          int repetitions = 10);

/**
 * Like repeatMeasure, but @p sample may return nullopt to abort the
 * remaining repetitions (the sweep-terminating condition): no zero
 * values pollute the statistics, and the returned Measurement has
 * aborted = true.
 */
Measurement
repeatMeasureUntil(const std::function<std::optional<double>()> &sample,
                   int repetitions = 10);

/** Standard "<n> TFLOPS" cell: value scaled by 1e12, one decimal. */
std::string tflopsCell(const Measurement &m);

// ---- Resilient measurement ----------------------------------------------

/** One repetition's outcome: the measured value and its simulated cost. */
struct TimedSample
{
    double value = 0.0;
    /** Simulated seconds this repetition occupied the device. */
    double simSeconds = 0.0;
};

/** Knobs of repeatMeasureResilient. */
struct ResilientOptions
{
    int repetitions = 10;
    /**
     * Per-point budget of *simulated* seconds (samples plus simulated
     * retry backoff). A hung kernel reports an enormous duration, so
     * any sane deadline converts it into DeadlineExceeded instead of
     * an absurd data point.
     */
    double deadlineSec = 3600.0;
    /** Attempt budget for transient (retriable) sample errors. */
    RetryPolicy retry;
};

/**
 * The fault-hardened repetition loop. @p sample receives the
 * repetition index and returns the measured value plus its simulated
 * duration, or an error:
 *
 *  - transient errors (Unavailable, ...) are retried up to the policy's
 *    attempt budget with deterministic simulated backoff — the rep
 *    index is stable across attempts, so a retry that succeeds yields
 *    exactly the value an uninterrupted run would have measured;
 *  - OutOfMemory aborts the remaining repetitions and returns the
 *    completed ones (aborted = true) — the paper's sweep-terminating
 *    condition, not a fault;
 *  - exhausted retries and other errors fail the point with the last
 *    error; exceeding the simulated-time deadline fails the point with
 *    DeadlineExceeded.
 */
Result<Measurement> repeatMeasureResilient(
    const std::function<Result<TimedSample>(int)> &sample,
    const ResilientOptions &opts = ResilientOptions());

// ---- Sweep resilience flags ---------------------------------------------

/** Parsed --inject / --max-point-failures / --deadline-sec / --journal /
 *  --resume configuration of one sweep bench. */
struct SweepResilience
{
    /** Fault probabilities (all zero without --inject). */
    fault::FaultSpec faults;
    /** Failed points tolerated before the sweep is cancelled. */
    std::size_t maxPointFailures = std::numeric_limits<std::size_t>::max();
    /** Per-point simulated-time deadline, seconds. */
    double deadlineSec = 3600.0;
    /** Journal file to append to; empty = no journal. */
    std::string journalPath;
    /** True when resuming: load the journal, re-run only failed points. */
    bool resume = false;

    /** Per-point injector seeded for @p point_seed (see faultSeed). */
    fault::Injector injectorFor(std::uint64_t point_seed) const
    {
        return fault::Injector(faults, fault::faultSeed(point_seed));
    }
};

/**
 * Register the resilience flags on a sweep bench (see
 * docs/RESILIENCE.md for semantics).
 */
void addResilienceFlags(CliParser &cli);

/** Read the resilience flags back; fatal on a malformed --inject. */
SweepResilience resilienceFlags(const CliParser &cli);

// ---- Sweep failure reporting --------------------------------------------

/** One failed sweep point, for the end-of-run summary. */
struct FailedPoint
{
    std::size_t index = 0;
    std::string key;
    Status status;
};

/**
 * Print the sweep's resilience summary to *stderr* — stdout carries
 * only the rendered results, so faulted runs stay byte-comparable
 * across --jobs values and across resume. Failed points are listed
 * individually; nothing is printed for a fully clean, non-resumed run.
 */
void printSweepSummary(const std::string &bench_name,
                       std::size_t total_points,
                       const std::vector<FailedPoint> &failed,
                       std::size_t skipped, std::size_t resumed);

/**
 * Register the sweep engine's --jobs flag (default 1 = serial;
 * rejects values < 1 at parse time). Output is byte-identical for
 * every --jobs value; see docs/SWEEP_ENGINE.md.
 */
void addJobsFlag(CliParser &cli);

/** Read --jobs back (parse() already rejected values < 1). */
int jobsFlag(const CliParser &cli);

/** Register --reps (measurement repetitions, must be >= 1). */
void addRepsFlag(CliParser &cli, std::int64_t default_reps);

// ---- Plan cache and verification flags ----------------------------------

/**
 * Register --plan-cache-cap (LRU entry bound of every GemmEngine plan
 * cache constructed after applyPlanCacheFlag; 0 = unbounded). The
 * default is generous — far above any one sweep's working set — so the
 * cap only matters for long supervised suite runs.
 */
void addPlanCacheFlag(CliParser &cli);

/** Apply --plan-cache-cap process-wide (PlanCache::setDefaultCapacity);
 *  call after parse() and before constructing engines. */
void applyPlanCacheFlag(const CliParser &cli);

/**
 * Register --pack-cache-mb (byte cap, in MiB, of the process-wide
 * packed-operand cache; 0 = disabled). The MC_PACK_CACHE environment
 * variable ("off" or a MiB count) overrides the flag — see
 * docs/PERF.md "Operand packing & reuse".
 */
void addPackCacheFlag(CliParser &cli);

/** Apply --pack-cache-mb process-wide (PackCache::configureCapacityMb);
 *  call after parse() and before running GEMMs. */
void applyPackCacheFlag(const CliParser &cli);

/** Parsed --verify* configuration of a GEMM sweep bench. */
struct VerifyConfig
{
    /** False = verification skipped entirely. */
    bool enabled = false;
    /** Largest dimension verified: points with max(m, n, k) above this
     *  skip the O(n^3) host check (reported as "not verified", not as
     *  a failure). */
    std::size_t maxN = 2048;
    blas::VerifyScheme scheme = blas::VerifyScheme::PaperOnesIdentity;
    /** Thread/block knobs of the functional backend (results are
     *  identical for every setting; see docs/PERF.md). */
    blas::FunctionalGemmOptions func;

    /** True when a point of this shape should be verified. */
    bool shouldVerify(std::size_t m, std::size_t n, std::size_t k) const
    {
        return enabled && m <= maxN && n <= maxN && k <= maxN;
    }
};

/**
 * Register the verification flags: --verify (default @p default_enabled),
 * --verify-maxn, --verify-scheme (paper|random), --verify-threads.
 */
void addVerifyFlags(CliParser &cli, bool default_enabled);

/** Read the verification flags back; fatal on a bad --verify-scheme. */
VerifyConfig verifyFlags(const CliParser &cli);

// ---- Durable output and completion protocol -----------------------------

/**
 * Register --out: when set, everything the bench renders to its result
 * stream is buffered and atomically published to that file (temp +
 * fsync + rename; src/common/atomic_file.hh) instead of stdout, so a
 * crashed or killed bench never leaves a torn CSV behind.
 */
void addOutFlag(CliParser &cli);

/**
 * The bench's result stream: stdout by default, an atomically
 * committed file under --out. finish() seals the output and ends the
 * process-level protocol in one call:
 *
 *     return output.finish(kBenchName, code);
 *
 * It commits the --out file (a failed commit turns an Ok run into
 * DataLoss — a result that was not durably written was not produced),
 * prints the machine-readable completion line mc_suite scans for, and
 * returns the manifest-friendly exit code (exitCodeFor).
 */
class BenchOutput
{
  public:
    /** Reads --out (addOutFlag must have been registered). */
    explicit BenchOutput(const CliParser &cli);

    /** The stream benches render results into. */
    std::ostream &stream();

    /** Seal the output; returns the process exit code. */
    int finish(const std::string &bench_name,
               ErrorCode code = ErrorCode::Ok);

  private:
    std::optional<AtomicFileWriter> _writer;
};

/**
 * Completion protocol for benches without a BenchOutput: print the
 * stderr completion line (`[mcchar] complete bench=<name> ...`) and
 * return the exit code for @p code. Every bench main ends through
 * here or BenchOutput::finish so the mc_suite supervisor can classify
 * outcomes without parsing results.
 */
int finishBench(const std::string &bench_name,
                ErrorCode code = ErrorCode::Ok);

} // namespace bench
} // namespace mc

#endif // MC_BENCH_COMMON_BENCH_UTIL_HH
