/**
 * @file
 * Ablation: the rocBLAS path-selection heuristics the paper observes
 * from the counters.
 *
 * Two decisions are probed by forcing them the other way:
 *  - HHS/HSS run the N=16 problem on SIMDs — is that actually
 *    profitable, as the paper hypothesizes?
 *  - HGEMM has no Matrix Core instruction; what would it cost if the
 *    library tried an (impossible) Matrix Core mapping with f32
 *    accumulation plus conversion? (Modelled as the HHS plan with
 *    HGEMM's conversion overhead — i.e., why HHS is the right answer.)
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: forced Matrix Core / SIMD path selection");
    cli.parse(argc, argv);

    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);

    auto run = [&](blas::GemmCombo combo, std::size_t n,
                   std::optional<bool> force) {
        blas::GemmConfig cfg;
        cfg.combo = combo;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;
        cfg.forceMatrixCorePath = force;
        auto result = engine.run(cfg);
        if (!result.isOk())
            mc_fatal("gemm failed: ", result.status().toString());
        return result.take();
    };

    // --- Small mixed-precision problems -----------------------------------
    TextTable small({"N", "heuristic path", "heuristic time",
                     "forced-MC time", "heuristic wins"});
    small.setTitle("Ablation: HHS small-N SIMD fallback (paper Fig. 8 "
                   "observation)");
    small.setAlignment({Align::Right, Align::Left, Align::Right,
                        Align::Right, Align::Left});
    for (std::size_t n : {16u, 32u, 64u, 128u}) {
        const auto natural = run(blas::GemmCombo::Hhs, n, std::nullopt);
        const auto forced_mc = run(blas::GemmCombo::Hhs, n, true);
        const double ratio =
            natural.kernel.seconds / forced_mc.kernel.seconds;
        const char *verdict = ratio < 0.98   ? "yes"
                              : ratio < 1.02 ? "tie (<2%)"
                                             : "no";
        small.addRow({std::to_string(n),
                      natural.usedMatrixCores ? "MatrixCore" : "SIMD",
                      units::formatSeconds(natural.kernel.seconds),
                      units::formatSeconds(forced_mc.kernel.seconds),
                      verdict});
    }
    small.print(std::cout);

    // --- Forcing SGEMM/DGEMM off Matrix Cores ------------------------------
    TextTable forced({"combo", "N", "MC path TFLOPS",
                      "forced-SIMD TFLOPS", "MC speedup"});
    forced.setTitle("\nAblation: what SGEMM/DGEMM would cost on the "
                    "SIMD path");
    forced.setAlignment({Align::Left, Align::Right, Align::Right,
                         Align::Right, Align::Right});
    for (blas::GemmCombo combo :
         {blas::GemmCombo::Sgemm, blas::GemmCombo::Dgemm}) {
        for (std::size_t n : {1024u, 4096u}) {
            const auto mc = run(combo, n, std::nullopt);
            const auto simd = run(combo, n, false);
            char mc_tf[16], simd_tf[16], speedup[16];
            std::snprintf(mc_tf, sizeof(mc_tf), "%.1f",
                          mc.throughput() / 1e12);
            std::snprintf(simd_tf, sizeof(simd_tf), "%.1f",
                          simd.throughput() / 1e12);
            std::snprintf(speedup, sizeof(speedup), "%.1fx",
                          mc.throughput() / simd.throughput());
            forced.addRow({blas::comboInfo(combo).name,
                           std::to_string(n), mc_tf, simd_tf, speedup});
        }
    }
    forced.print(std::cout);
    std::cout << "\nThe library's decisions match (or tie with) the "
                 "profitable choice in every probed case. At N = 16 "
                 "both paths are launch-latency-bound, so the SIMD "
                 "fallback the paper observes costs nothing — "
                 "consistent with its hypothesis that splitting one "
                 "16^3 FMA between the units is not worth the "
                 "coordination.\n";
    return bench::finishBench("ablation_heuristic");
}
