/**
 * @file
 * Figure 5 and the Section VI efficiency table: package power at
 * increasing delivered throughput for the three datatypes, measured by
 * the background SMI sampler (100 ms period, >= 1000 samples per
 * point), compared against the paper's Eq. 3 model, plus the fitted
 * linear power model recovered from the samples and the TFLOPS/W
 * efficiency at each datatype's peak.
 */

#include <cstdio>
#include <iostream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "hip/runtime.hh"
#include "smi/smi.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

struct Series
{
    const char *label;
    const char *mnemonic;
    double eq3Slope;
    double eq3Intercept;
};

const Series kSeries[] = {
    {"double", "v_mfma_f64_16x16x4_f64", 5.88, 130.0},
    {"float", "v_mfma_f32_16x16x4_f32", 2.18, 125.5},
    {"mixed", "v_mfma_f32_16x16x16_f16", 0.61, 123.0},
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 5: package power vs Matrix Core throughput "
                  "(both GCDs), sampled via the SMI interface");
    cli.addFlag("iters", static_cast<std::int64_t>(6000000000),
                "MFMA operations per wavefront (sets kernel duration)");
    cli.requireIntAtLeast("iters", 1);
    cli.addFlag("period", 0.1, "power sampling period in seconds");
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));
    const double period = cli.getDouble("period");

    hip::Runtime rt;
    const double cap = rt.gpu().powerModel().capWatts();

    for (const Series &series : kSeries) {
        const arch::MfmaInstruction *inst =
            arch::findInstruction(arch::GpuArch::Cdna2, series.mnemonic);
        if (inst == nullptr)
            mc_fatal("missing instruction ", series.mnemonic);

        TextTable table({"wavefronts", "TFLOPS", "measured W", "Eq.3 W",
                         "samples"});
        table.setTitle(std::string("Figure 5 [") + series.label +
                       "]: power vs throughput (2 GCDs, cap " +
                       units::formatWatts(cap, 0) + ")");

        std::vector<double> th_axis, watt_axis;
        double peak_th = 0.0, peak_w = 0.0;
        for (std::uint64_t wf : {20u, 40u, 80u, 160u, 240u, 320u, 440u}) {
            const auto r = rt.launchMulti(
                wmma::mfmaLoopProfile(*inst, iters, wf, series.label),
                {0, 1});
            rt.gpu().idle(2.0); // gap between kernels, as on a real run

            smi::PowerSensor sensor(rt.gpu().trace());
            smi::PowerSampler sampler(sensor, period);
            const auto samples =
                sampler.sampleInterval(r.startSec + 0.5, r.endSec);
            // pm_counters stands in when the SMI sample set is empty
            // (a very short kernel at a coarse period).
            const smi::PmCounters pm(rt.gpu().trace());
            const double watts = smi::meanWattsOrEnergy(
                samples, pm, r.startSec + 0.5, r.endSec);
            const double th = r.throughput() / 1e12;

            th_axis.push_back(th);
            watt_axis.push_back(watts);
            if (th > peak_th) {
                peak_th = th;
                peak_w = watts;
            }

            char th_cell[24], w_cell[24], model_cell[24];
            std::snprintf(th_cell, sizeof(th_cell), "%.1f", th);
            std::snprintf(w_cell, sizeof(w_cell), "%.1f", watts);
            std::snprintf(model_cell, sizeof(model_cell), "%.1f",
                          series.eq3Slope * th + series.eq3Intercept);
            table.addRow({std::to_string(wf), th_cell, w_cell,
                          model_cell, std::to_string(samples.size())});
        }
        table.print(std::cout);

        const LinearFit fit = fitLinear(th_axis, watt_axis);
        std::printf("fitted model: PC = %.2f * Th + %.1f (r2 = %.4f); "
                    "paper Eq. 3: PC = %.2f * Th + %.1f\n",
                    fit.slope, fit.intercept, fit.r2, series.eq3Slope,
                    series.eq3Intercept);
        std::printf("peak: %.1f TFLOPS at %.1f W -> %s\n\n", peak_th,
                    peak_w,
                    units::formatEfficiency(peak_th * 1e12 / peak_w)
                        .c_str());
    }

    std::cout << "idle package power: "
              << units::formatWatts(rt.gpu().powerModel().idleWatts(), 0)
              << " (paper: 88 W)\n";
    std::cout << "(paper Section VI: 1020 / 273 / 127 GFLOPS/W for "
                 "mixed / float / double; double peaks at 541 W near "
                 "the 560 W cap)\n";
    return bench::finishBench("fig5_power");
}
