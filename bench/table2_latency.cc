/**
 * @file
 * Table II: measured latency of Matrix Core MFMA instructions.
 *
 * Methodology is the paper's: a single wavefront executes the same MFMA
 * instruction in a 40-million-iteration loop; the loop is timed with
 * the device cycle counter and divided by the iteration count. The
 * derived FLOPS/CU/cycle column applies the paper's 8*m*n*k/c relation
 * to cross-check against AMD's documented rates.
 */

#include <cstdio>
#include <iostream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

const char *kPaperOrder[] = {
    "v_mfma_f32_32x32x2_f32",
    "v_mfma_f32_16x16x4_f32",
    "v_mfma_f32_32x32x8_f16",
    "v_mfma_f32_16x16x16_f16",
    "v_mfma_f64_16x16x4_f64",
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Table II: MFMA instruction latency micro-benchmark");
    cli.addFlag("iters", static_cast<std::int64_t>(40000000),
                "loop iterations per measurement");
    cli.requireIntAtLeast("iters", 1);
    cli.addFlag("reps", static_cast<std::int64_t>(10),
                "measurement repetitions");
    cli.requireIntAtLeast("reps", 1);
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));
    const int reps = static_cast<int>(cli.getInt("reps"));

    hip::Runtime rt;
    TextTable table({"types (C/D <- A/B)", "m x n x k",
                     "latency (cycles)", "FLOPS/CU/cycle"});
    table.setTitle("Table II: measured MFMA instruction latency "
                   "(single wavefront, timed loop)");
    table.setAlignment(
        {Align::Left, Align::Left, Align::Right, Align::Right});

    for (const char *mnemonic : kPaperOrder) {
        const arch::MfmaInstruction *inst =
            arch::findInstruction(arch::GpuArch::Cdna2, mnemonic);
        if (inst == nullptr)
            mc_fatal("instruction missing from table: ", mnemonic);

        const auto m = bench::repeatMeasure([&]() {
            const auto result = rt.launch(
                wmma::mfmaLoopProfile(*inst, iters, 1, "latency_loop"),
                0);
            const double cycles = result.seconds * result.effClockHz;
            return cycles / static_cast<double>(iters);
        }, reps);

        char rate[32];
        std::snprintf(rate, sizeof(rate), "%.0f",
                      8.0 * inst->shape.m * inst->shape.n *
                          inst->shape.k / m.value());
        table.addRow({inst->typeString(), inst->shape.toString(),
                      m.format(1.0, 1), rate});
    }
    table.print(std::cout);
    std::cout << "\n(paper Table II: 64.0 / 32.0 / 64.0 / 32.0 / 32.0 "
                 "cycles)\n";
    return bench::finishBench("table2_latency");
}
