/**
 * @file
 * Table I: supported datatypes and shapes of MFMA operations on Matrix
 * Cores (AMD CDNA2) and Tensor Cores (Nvidia Ampere) at the
 * instruction level — enumerated from the ISA tables, exactly the rows
 * the paper prints, plus the full instruction listing with latencies
 * and per-CU rates as supplementary detail.
 */

#include <iostream>
#include <sstream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"

namespace {

using namespace mc;

/** The four C/D <- A/B rows of the paper's Table I. */
const std::pair<arch::DataType, arch::DataType> kPaperRows[] = {
    {arch::DataType::F64, arch::DataType::F64},
    {arch::DataType::F32, arch::DataType::F32},
    {arch::DataType::F32, arch::DataType::F16},
    {arch::DataType::F16, arch::DataType::F16},
};

std::string
shapeList(arch::GpuArch a, arch::DataType cd, arch::DataType ab)
{
    const auto insts = arch::instructionsForTypes(a, cd, ab);
    if (insts.empty())
        return "x";
    std::ostringstream os;
    bool first = true;
    for (const auto *inst : insts) {
        // Table I lists only the dense (single-block) shapes.
        if (inst->shape.blocks != 1)
            continue;
        if (!first)
            os << ", ";
        os << inst->shape.toString();
        first = false;
    }
    return first ? std::string("x") : os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Table I: supported MFMA datatypes and shapes per "
                  "architecture");
    cli.addFlag("full", false,
                "also list every instruction with latency and rate");
    cli.parse(argc, argv);

    TextTable table({"Types (C/D <- A/B)", "AMD CDNA2", "Nvidia Ampere"});
    table.setTitle("Table I: supported MFMA shapes "
                   "(D <- AB + C) at the instruction level");
    table.setAlignment({Align::Left, Align::Left, Align::Left});
    for (const auto &[cd, ab] : kPaperRows) {
        std::string types = arch::dataTypeName(cd);
        types += " <- ";
        types += arch::dataTypeName(ab);
        table.addRow({types, shapeList(arch::GpuArch::Cdna2, cd, ab),
                      shapeList(arch::GpuArch::Ampere, cd, ab)});
    }
    table.print(std::cout);

    if (cli.getBool("full")) {
        for (arch::GpuArch a :
             {arch::GpuArch::Cdna2, arch::GpuArch::Ampere}) {
            TextTable full({"instruction", "types", "shape",
                            "latency (cycles)", "FLOPS/CU/cycle"});
            full.setTitle(std::string("\nFull ") + arch::gpuArchName(a) +
                          " instruction table");
            full.setAlignment({Align::Left, Align::Left, Align::Left,
                               Align::Right, Align::Right});
            for (const auto &inst : arch::instructionsFor(a)) {
                full.addRow({inst.mnemonic, inst.typeString(),
                             inst.shape.toString(),
                             std::to_string(inst.latencyCycles),
                             std::to_string(static_cast<int>(
                                 inst.flopsPerCuPerCycle()))});
            }
            full.print(std::cout);
        }
    }
    return bench::finishBench("table1_shapes");
}
