/**
 * @file
 * Figure 9: the distribution of GEMM floating-point operations between
 * Matrix Cores and SIMD units vs the analytic model — 2N^3 arithmetic
 * operations on Matrix Cores and 3N^2 alpha/beta-scaling operations on
 * the SIMDs — measured from the hardware counters for SGEMM and DGEMM.
 *
 * Points run on the parallel sweep engine (--jobs); counter-derived
 * FLOP splits are noise-free, so output is identical for any job
 * count. --inject / --max-point-failures (docs/RESILIENCE.md) turn
 * injected faults into per-point failure rows instead of an abort.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"
#include "prof/profiler.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "fig9_flop_model";

struct Point
{
    blas::GemmCombo combo;
    std::size_t n;
};

struct PointResult
{
    bool oom = false;
    double matrixCoreFlops = 0.0;
    double simdFlops = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 9: measured vs modelled FLOP split between "
                  "Matrix Cores (2N^3) and SIMDs (3N^2)");
    cli.addFlag("maxn", static_cast<std::int64_t>(16384),
                "largest matrix dimension");
    cli.requireIntAtLeast("maxn", 16);
    bench::addJobsFlag(cli);
    bench::addResilienceFlags(cli);
    bench::addOutFlag(cli);
    cli.parse(argc, argv);
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));
    const bench::SweepResilience res = bench::resilienceFlags(cli);

    const blas::GemmCombo combos[] = {blas::GemmCombo::Sgemm,
                                      blas::GemmCombo::Dgemm};
    std::vector<Point> points;
    for (blas::GemmCombo combo : combos)
        for (std::size_t n = 16; n <= maxn; n *= 2)
            points.push_back({combo, n});

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    const std::vector<Result<PointResult>> results = runner.mapResult(
        points.size(),
        [&](std::size_t i) -> Result<PointResult> {
            const Point &pt = points[i];
            const std::string key =
                std::string(blas::comboInfo(pt.combo).name) + "/" +
                std::to_string(pt.n);
            fault::Injector faults =
                res.injectorFor(runner.seedFor(key, 0));
            sim::SimOptions sim_opts;
            sim_opts.faults = faults.enabled() ? &faults : nullptr;
            hip::Runtime rt(arch::defaultCdna2(), sim_opts);
            blas::GemmEngine engine(rt);

            blas::GemmConfig cfg;
            cfg.combo = pt.combo;
            cfg.m = cfg.n = cfg.k = pt.n;
            cfg.alpha = cfg.beta = 0.1;

            rt.gpu().reseedNoise(runner.seedFor(key, 0));

            PointResult out;
            auto result = retryCall(RetryPolicy(),
                                    [&] { return engine.run(cfg); });
            if (!result.isOk()) {
                if (result.status().code() == ErrorCode::OutOfMemory) {
                    out.oom = true;
                    return out;
                }
                return result.status();
            }
            const auto split =
                prof::flopBreakdown(result.value().kernel.counters);
            out.matrixCoreFlops = split.matrixCoreFlops;
            out.simdFlops = split.simdFlops;
            return out;
        },
        res.maxPointFailures);

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();

    std::vector<bench::FailedPoint> failures;
    std::size_t index = 0;
    for (blas::GemmCombo combo : combos) {
        const char *name = blas::comboInfo(combo).name;
        TextTable table({"N", "MC FLOPs (meas)", "2N^3 (model)",
                         "SIMD FLOPs (meas)", "3N^2 (model)",
                         "MC/SIMD ratio"});
        table.setTitle(std::string("Figure 9 [") + name +
                       "]: FLOPs per executing unit");

        bool oom = false;
        for (std::size_t n = 16; n <= maxn; n *= 2, ++index) {
            if (oom)
                continue; // sweep already terminated for this combo
            if (!results[index].isOk()) {
                const Status &status = results[index].status();
                if (!exec::SweepRunner::isSkippedPointStatus(status))
                    failures.push_back(
                        {index,
                         std::string(name) + "/" + std::to_string(n),
                         status});
                table.addRow({std::to_string(n),
                              std::string("failed: ") +
                                  errorCodeName(status.code()),
                              "-", "-", "-", "-"});
                continue;
            }
            const PointResult &r = results[index].value();
            if (r.oom) {
                oom = true;
                continue;
            }
            const double dn = static_cast<double>(n);
            char mc[24], mc_model[24], simd[24], simd_model[24],
                ratio[24];
            std::snprintf(mc, sizeof(mc), "%.3e", r.matrixCoreFlops);
            std::snprintf(mc_model, sizeof(mc_model), "%.3e",
                          2.0 * dn * dn * dn);
            std::snprintf(simd, sizeof(simd), "%.3e", r.simdFlops);
            std::snprintf(simd_model, sizeof(simd_model), "%.3e",
                          3.0 * dn * dn);
            if (r.simdFlops > 0.0) {
                // The model predicts MC/SIMD = (2/3) N.
                std::snprintf(ratio, sizeof(ratio), "%.0f (2N/3=%.0f)",
                              r.matrixCoreFlops / r.simdFlops,
                              2.0 * dn / 3.0);
            } else {
                std::snprintf(ratio, sizeof(ratio), "-");
            }
            table.addRow({std::to_string(n), mc, mc_model, simd,
                          simd_model, ratio});
        }
        table.print(os);
        os << "\n";
    }
    os << "(paper Fig. 9: measurements overlap the 2N^3 / 3N^2 "
          "model for N >= 32; for N >= 32 more than 95% of "
          "FLOPs run on Matrix Cores)\n";

    bench::printSweepSummary(kBenchName, points.size(), failures,
                             runner.lastStats().skipped, 0);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
