/**
 * @file
 * Extension study: a roofline view of the GEMM sweep.
 *
 * Positions the Fig. 6/7 GEMM points on the device roofline
 * (instruction-roofline methodology of the paper's reference [14]):
 * arithmetic intensity vs achieved throughput against the Matrix Core
 * and memory roofs. Shows quantitatively why the large-N points bend —
 * they cross the machine-balance point when L2 panel reuse collapses.
 *
 * Sweep points run on the parallel sweep engine (--jobs) with
 * per-point noise-free simulated devices, so output is byte-identical
 * for any job count (docs/SWEEP_ENGINE.md).
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"
#include "prof/roofline.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "ext_roofline";

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Roofline placement of the GEMM sweep");
    cli.addFlag("combo", std::string("sgemm"), "GEMM combo to sweep");
    bench::addJobsFlag(cli);
    bench::addOutFlag(cli);
    bench::addPlanCacheFlag(cli);
    bench::addPackCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    bench::applyPackCacheFlag(cli);
    const blas::GemmCombo combo =
        blas::parseCombo(cli.getString("combo"));

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();

    // Machine context (calibration only; no kernel runs).
    {
        sim::SimOptions opts;
        opts.enableNoise = false;
        hip::Runtime rt(arch::defaultCdna2(), opts);
        const prof::RooflineModel roofline(rt.gpu().calibration());
        char line[128];
        std::snprintf(line, sizeof(line), "memory roof: %.2f TB/s\n",
                      roofline.memoryBandwidth() / 1e12);
        os << line;
        for (const auto &roof : roofline.roofs()) {
            std::snprintf(line, sizeof(line),
                          "compute roof %-16s %8.1f TFLOPS  (balance at "
                          "%.1f FLOP/byte)\n",
                          roof.name().c_str(), roof.flopsPerSec / 1e12,
                          roofline.machineBalance(roof.dtype, roof.kind));
            os << line;
        }
        os << "\n";
    }

    std::vector<std::size_t> sizes;
    for (std::size_t n = 256; n <= 65536; n *= 2)
        sizes.push_back(n);

    using Row = std::optional<std::vector<std::string>>;
    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    const std::vector<Row> rows = runner.map(
        sizes.size(),
        [&](std::size_t i) -> Row {
            const std::size_t n = sizes[i];

            sim::SimOptions opts;
            opts.enableNoise = false;
            hip::Runtime rt(arch::defaultCdna2(), opts);
            blas::GemmEngine engine(rt);
            const prof::RooflineModel roofline(rt.gpu().calibration());

            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            const blas::GemmPlan plan = engine.plan(cfg);
            auto result = engine.run(cfg);
            if (!result.isOk())
                return std::nullopt; // past the memory-exhaustion edge
            const prof::RooflinePoint point =
                roofline.classify(plan.profile, result.value().kernel);

            char inten[16], ach[16], att[16], eff[16];
            std::snprintf(inten, sizeof(inten), "%.1f", point.intensity);
            std::snprintf(ach, sizeof(ach), "%.1f",
                          point.achieved / 1e12);
            std::snprintf(att, sizeof(att), "%.1f",
                          point.attainable / 1e12);
            std::snprintf(eff, sizeof(eff), "%.0f%%",
                          100.0 * point.efficiency());
            return std::vector<std::string>{
                std::to_string(n), inten, ach, att,
                point.memoryBound ? "memory" : "compute", eff};
        });

    TextTable table({"N", "intensity (FLOP/B)", "achieved (TFLOPS)",
                     "attainable (TFLOPS)", "bound", "roof eff."});
    table.setTitle(std::string("Roofline placement [") +
                   blas::comboInfo(combo).name + "]");
    for (const Row &row : rows) {
        if (!row)
            break; // the sweep-terminating OOM, as in Fig. 6/7
        table.addRow(*row);
    }
    table.print(os);
    os << "\nPoints left of the balance intensity are "
          "memory-bound: exactly the dipped region of the "
          "paper's Fig. 6/7 curves.\n";
    return output.finish(kBenchName);
}
