/**
 * @file
 * Extension study: Fig. 5's measurement setup modelled literally.
 *
 * The paper measures package power by running "one process per GCD"
 * and polling the SMI from a third, background process. The main Fig. 5
 * bench drives both GCDs through one synchronous launch; this study
 * instead uses two asynchronous streams — one per GCD, like the
 * paper's two processes — lets their kernels overlap on independent
 * timelines, and samples the *merged* package power. For the
 * non-throttling datatypes the two methods agree with Eq. 3 exactly;
 * for FP64 the async path detects that the merged power exceeds the
 * regulation target, which is precisely when the package governor
 * (modelled only on the synchronous path) must step in.
 */

#include <cstdio>
#include <iostream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "hip/runtime.hh"
#include "smi/smi.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Per-GCD-process power measurement (async streams)");
    cli.addFlag("iters", static_cast<std::int64_t>(6000000000),
                "MFMA operations per wavefront");
    cli.requireIntAtLeast("iters", 1);
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));

    const struct { const char *label; const char *mnemonic;
                   double slope; double intercept; } series[] = {
        {"mixed", "v_mfma_f32_16x16x16_f16", 0.61, 123.0},
        {"float", "v_mfma_f32_16x16x4_f32", 2.18, 125.5},
        {"double", "v_mfma_f64_16x16x4_f64", 5.88, 130.0},
    };

    TextTable table({"type", "per-GCD TFLOPS", "combined TFLOPS",
                     "sampled W", "Eq.3 W", "within target"});
    table.setTitle("Power sampled over two concurrently running GCD "
                   "processes (async streams)");

    for (const auto &s : series) {
        sim::SimOptions opts;
        opts.enableNoise = false;
        hip::Runtime rt(arch::defaultCdna2(), opts);
        hip::Stream gcd0(rt, 0), gcd1(rt, 1);

        const arch::MfmaInstruction *inst =
            arch::findInstruction(arch::GpuArch::Cdna2, s.mnemonic);
        if (inst == nullptr)
            mc_fatal("missing instruction ", s.mnemonic);
        const auto profile =
            wmma::mfmaLoopProfile(*inst, iters, 440, s.label);

        const auto r0 = gcd0.launch(profile);
        const auto r1 = gcd1.launch(profile);

        smi::PowerSensor sensor(rt.asyncTrace());
        smi::PowerSampler sampler(sensor, 0.1);
        const auto samples = sampler.sampleInterval(
            r0.startSec + 0.5,
            std::min(r0.endSec, r1.endSec) - 0.5);
        const smi::PmCounters pm(rt.asyncTrace());
        const double watts = smi::meanWattsOrEnergy(
            samples, pm, r0.startSec + 0.5,
            std::min(r0.endSec, r1.endSec) - 0.5);
        const double combined =
            (r0.throughput() + r1.throughput()) / 1e12;

        char per[16], comb[16], w[16], eq3[16];
        std::snprintf(per, sizeof(per), "%.1f",
                      r0.throughput() / 1e12);
        std::snprintf(comb, sizeof(comb), "%.1f", combined);
        std::snprintf(w, sizeof(w), "%.1f", watts);
        std::snprintf(eq3, sizeof(eq3), "%.1f",
                      s.slope * combined + s.intercept);
        const bool ok = rt.asyncPowerOk(r0.startSec, r0.endSec);
        table.addRow({s.label, per, comb, w, eq3, ok ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\nMixed and float: the per-process method reproduces "
                 "Eq. 3 directly. Double: the merged draw exceeds the "
                 "541 W regulation target — the condition that forces "
                 "the throttle the synchronous Fig. 4/5 runs exhibit "
                 "(69 TFLOPS instead of 82).\n";
    return bench::finishBench("ext_async_power");
}
