/**
 * @file
 * Ablation: the package DVFS power governor.
 *
 * The paper observes that two-GCD FP64 reaches only 72% of theoretical
 * peak while one GCD reaches 85%, and attributes it to near-cap power.
 * This ablation runs the FP64 peak with the governor enabled and
 * disabled to show the throttle is exactly what produces that gap —
 * and that the mixed/float datatypes are unaffected either way.
 */

#include <cstdio>
#include <iostream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

struct Row
{
    const char *label;
    const char *mnemonic;
    double theoreticalPkgTflops;
};

const Row kRows[] = {
    {"mixed", "v_mfma_f32_16x16x16_f16", 383.0},
    {"float", "v_mfma_f32_16x16x4_f32", 95.7},
    {"double", "v_mfma_f64_16x16x4_f64", 95.7},
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: DVFS power governor on/off at the 2-GCD "
                  "peaks");
    cli.addFlag("iters", static_cast<std::int64_t>(10000000),
                "MFMA operations per wavefront");
    cli.requireIntAtLeast("iters", 1);
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));

    TextTable table({"type", "governor", "TFLOPS", "% of theory",
                     "power (W)", "eff. clock (MHz)", "throttled"});
    table.setTitle("Ablation: package power governor at two-GCD peak "
                   "utilization");
    table.setAlignment({Align::Left, Align::Left, Align::Right,
                        Align::Right, Align::Right, Align::Right,
                        Align::Left});

    for (bool dvfs : {true, false}) {
        sim::SimOptions opts;
        opts.enableDvfs = dvfs;
        opts.enableNoise = false;
        hip::Runtime rt(arch::defaultCdna2(), opts);

        for (const Row &row : kRows) {
            const arch::MfmaInstruction *inst =
                arch::findInstruction(arch::GpuArch::Cdna2, row.mnemonic);
            if (inst == nullptr)
                mc_fatal("missing instruction ", row.mnemonic);
            const auto r = rt.launchMulti(
                wmma::mfmaLoopProfile(*inst, iters, 440, row.label),
                {0, 1});
            char tf[16], pct[16], pw[16], clk[16];
            std::snprintf(tf, sizeof(tf), "%.1f", r.throughput() / 1e12);
            std::snprintf(pct, sizeof(pct), "%.0f%%",
                          100.0 * r.throughput() / 1e12 /
                              row.theoreticalPkgTflops);
            std::snprintf(pw, sizeof(pw), "%.0f", r.avgPowerW);
            std::snprintf(clk, sizeof(clk), "%.0f", r.effClockHz / 1e6);
            table.addRow({row.label, dvfs ? "on" : "off", tf, pct, pw,
                          clk, r.throttled ? "yes" : "no"});
        }
    }
    table.print(std::cout);
    std::cout << "\nWith the governor on, double precision lands at the "
                 "paper's 72-73% of peak and 541 W; with it off the "
                 "model would exceed the package's sustainable power.\n";
    return bench::finishBench("ablation_dvfs");
}
