/**
 * @file
 * Extension study: the rise of AMD Matrix Cores across generations —
 * MI100 (CDNA1, first-generation Matrix Cores) vs MI250X (CDNA2).
 *
 * The paper characterizes the second generation; this study runs the
 * same micro-benchmarks and GEMM sweep on the first-generation model
 * to quantify what changed: FP64 Matrix Cores appear (CDNA1 has none,
 * so DGEMM falls back to the SIMDs), BF16 moves from half to full
 * rate, and the dual-GCD package doubles the mixed-precision peak.
 *
 * Each table row is one point on the parallel sweep engine (--jobs)
 * with its own pair of noise-free simulated devices, so output is
 * byte-identical for any job count (docs/SWEEP_ENGINE.md).
 */

#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"
#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "ext_generations";

/** Saturating micro-benchmark peak for the best instruction of a type
 *  pair, in TFLOPS, or a negative value when unsupported. */
double
peakTflops(hip::Runtime &rt, arch::DataType cd, arch::DataType ab)
{
    const auto &cal = rt.gpu().calibration();
    const arch::MfmaInstruction *best = nullptr;
    for (const auto *inst :
         arch::instructionsForTypes(cal.arch, cd, ab)) {
        if (inst->shape.blocks != 1)
            continue;
        if (best == nullptr ||
            inst->flopsPerInstruction() > best->flopsPerInstruction())
            best = inst;
    }
    if (best == nullptr)
        return -1.0;

    std::vector<int> gcds;
    for (int g = 0; g < cal.gcdsPerPackage; ++g)
        gcds.push_back(g);
    const auto slots =
        static_cast<std::uint64_t>(cal.matrixCoresPerGcd());
    const auto r = rt.launchMulti(
        wmma::mfmaLoopProfile(*best, 1000000, slots), gcds);
    return r.throughput() / 1e12;
}

std::string
cell(double tflops)
{
    if (tflops < 0.0)
        return "x";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", tflops);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Generational study: MI100 (CDNA1) vs MI250X (CDNA2) "
                  "Matrix Cores");
    bench::addJobsFlag(cli);
    bench::addOutFlag(cli);
    bench::addVerifyFlags(cli, /*default_enabled=*/true);
    bench::addPlanCacheFlag(cli);
    bench::addPackCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    bench::applyPackCacheFlag(cli);
    const bench::VerifyConfig vcfg = bench::verifyFlags(cli);

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));

    const std::pair<arch::DataType, arch::DataType> combos[] = {
        {arch::DataType::F32, arch::DataType::F16},
        {arch::DataType::F32, arch::DataType::BF16},
        {arch::DataType::F32, arch::DataType::F32},
        {arch::DataType::F64, arch::DataType::F64},
        {arch::DataType::I32, arch::DataType::I8},
    };
    using PeakRow = std::array<std::string, 4>;
    const std::vector<PeakRow> peak_rows = runner.map(
        sizeof(combos) / sizeof(combos[0]),
        [&](std::size_t i) -> PeakRow {
            const auto &[cd, ab] = combos[i];

            sim::SimOptions opts;
            opts.enableNoise = false;
            hip::Runtime mi100(arch::mi100Calibration(), opts);
            hip::Runtime mi250x(arch::defaultCdna2(), opts);

            const double gen1 = peakTflops(mi100, cd, ab);
            const double gen2 = peakTflops(mi250x, cd, ab);
            std::string ratio = "new in gen2";
            if (gen1 > 0.0 && gen2 > 0.0) {
                char buf[16];
                std::snprintf(buf, sizeof(buf), "%.1fx", gen2 / gen1);
                ratio = buf;
            }
            std::string types = arch::dataTypeName(cd);
            types += " <- ";
            types += arch::dataTypeName(ab);
            return PeakRow{types, cell(gen1), cell(gen2), ratio};
        });

    // GEMM behaviour: DGEMM on CDNA1 has no Matrix Core path at all.
    const blas::GemmCombo gemm_combos[] = {blas::GemmCombo::Dgemm,
                                           blas::GemmCombo::Sgemm,
                                           blas::GemmCombo::Hhs};
    const std::size_t gemm_sizes[] = {4096, 8192};
    constexpr std::size_t kGemmSizeCount =
        sizeof(gemm_sizes) / sizeof(gemm_sizes[0]);
    using GemmRow = std::array<std::string, 5>;
    const std::vector<Result<GemmRow>> gemm_rows = runner.mapResult(
        sizeof(gemm_combos) / sizeof(gemm_combos[0]) * kGemmSizeCount,
        [&](std::size_t i) -> Result<GemmRow> {
            const blas::GemmCombo combo = gemm_combos[i / kGemmSizeCount];
            const std::size_t n = gemm_sizes[i % kGemmSizeCount];
            const std::string key =
                std::string(blas::comboInfo(combo).name) + "/" +
                std::to_string(n);

            sim::SimOptions opts;
            opts.enableNoise = false;
            hip::Runtime mi100(arch::mi100Calibration(), opts);
            hip::Runtime mi250x(arch::defaultCdna2(), opts);
            blas::GemmEngine engine100(mi100), engine250(mi250x);

            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            auto r1 = engine100.run(cfg);
            auto r2 = engine250.run(cfg);
            auto fmt = [](const Result<blas::GemmResult> &r) {
                if (!r.isOk())
                    return std::string("OOM");
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.1f (%s)",
                              r.value().throughput() / 1e12,
                              r.value().usedMatrixCores ? "MC" : "SIMD");
                return std::string(buf);
            };

            // Host-side numeric verification of the CDNA2 run
            // (verifyGemm plans against the CDNA2 model; the default
            // --verify-maxn keeps the 4096/8192-class points out of
            // the O(n^3) host check, so this column usually reads "-"
            // unless --verify-maxn is raised). A failed check fails
            // the point.
            std::string verified = "-";
            if (r2.isOk() && vcfg.shouldVerify(cfg.m, cfg.n, cfg.k)) {
                engine250.functionalOptions() = vcfg.func;
                const blas::VerifyResult v = engine250.verify(
                    cfg, vcfg.scheme, runner.seedFor(key, 1ull << 32));
                if (!v.passed)
                    return Status(ErrorCode::Internal,
                                  "verification failed: " + v.detail);
                verified = "ok ulp=" + std::to_string(v.maxUlp);
            }
            return GemmRow{blas::comboInfo(combo).name,
                           std::to_string(n), fmt(r1), fmt(r2),
                           verified};
        });

    TextTable peaks({"types (C/D <- A/B)", "MI100 (TFLOPS)",
                     "MI250X (TFLOPS)", "gen2/gen1"});
    peaks.setTitle("Matrix Core peak throughput per package, by "
                   "generation");
    peaks.setAlignment({Align::Left, Align::Right, Align::Right,
                        Align::Right});
    for (const PeakRow &row : peak_rows)
        peaks.addRow(std::vector<std::string>(row.begin(), row.end()));

    TextTable gemm({"combo", "N", "MI100 TFLOPS (path)",
                    "MI250X TFLOPS (path)", "verified"});
    gemm.setTitle("\nLibrary GEMM by generation (one GCD/die, "
                  "alpha = beta = 0.1)");
    gemm.setAlignment({Align::Left, Align::Right, Align::Right,
                       Align::Right, Align::Left});
    std::vector<bench::FailedPoint> failures;
    for (std::size_t i = 0; i < gemm_rows.size(); ++i) {
        if (!gemm_rows[i].isOk()) {
            const Status &status = gemm_rows[i].status();
            if (!exec::SweepRunner::isSkippedPointStatus(status))
                failures.push_back({i, "gemm point", status});
            gemm.addRow({"failed", "-", "-", "-",
                         errorCodeName(status.code())});
            continue;
        }
        const GemmRow &row = gemm_rows[i].value();
        gemm.addRow(std::vector<std::string>(row.begin(), row.end()));
    }

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();
    peaks.print(os);
    gemm.print(os);
    os << "\nWhat 'rose' between generations: FP64 MFMA "
          "instructions (absent on CDNA1 -> DGEMM runs on "
          "SIMDs), full-rate BF16, and a dual-die package that "
          "doubles every peak.\n";
    bench::printSweepSummary(kBenchName, gemm_rows.size(), failures,
                             runner.lastStats().skipped, 0);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
