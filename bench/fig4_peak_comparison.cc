/**
 * @file
 * Figure 4: peak achieved floating-point throughput on one AMD MI250X
 * package (both GCDs driven concurrently) vs one Nvidia A100, for the
 * four datatype combinations of Table I.
 *
 * Combinations unsupported on a platform print "x", as in the paper
 * (no f32 <- f32 on Ampere, no f16 <- f16 on CDNA2).
 */

#include <cstdio>
#include <iostream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

struct Combo
{
    const char *label;
    arch::DataType cd;
    arch::DataType ab;
    double peakAmd;    ///< advertised peak, TFLOPS (package)
    double peakNvidia; ///< advertised peak, TFLOPS
};

const Combo kCombos[] = {
    {"f32 <- f16", arch::DataType::F32, arch::DataType::F16, 383.0, 312.0},
    {"f16 <- f16", arch::DataType::F16, arch::DataType::F16, 0.0, 312.0},
    {"f32 <- f32", arch::DataType::F32, arch::DataType::F32, 95.7, 0.0},
    {"f64 <- f64", arch::DataType::F64, arch::DataType::F64, 95.7, 19.5},
};

/** Pick the widest-k dense instruction for a type pair. */
const arch::MfmaInstruction *
bestInstruction(arch::GpuArch a, arch::DataType cd, arch::DataType ab)
{
    const arch::MfmaInstruction *best = nullptr;
    for (const auto *inst : arch::instructionsForTypes(a, cd, ab)) {
        if (inst->shape.blocks != 1)
            continue;
        if (best == nullptr ||
            inst->flopsPerInstruction() > best->flopsPerInstruction())
            best = inst;
    }
    return best;
}

std::string
pctCell(double measured_tflops, double peak_tflops)
{
    if (peak_tflops <= 0.0)
        return "x";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0f%%",
                  100.0 * measured_tflops / peak_tflops);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 4: peak throughput, MI250X package vs A100");
    cli.addFlag("iters", static_cast<std::int64_t>(10000000),
                "MFMA operations per wavefront");
    cli.requireIntAtLeast("iters", 1);
    cli.addFlag("reps", static_cast<std::int64_t>(10),
                "measurement repetitions");
    cli.requireIntAtLeast("reps", 1);
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));
    const int reps = static_cast<int>(cli.getInt("reps"));

    hip::Runtime rt;
    sim::A100 a100;

    TextTable table({"types (C/D <- A/B)", "MI250X (TFLOPS)", "% of peak",
                     "A100 (TFLOPS)", "% of peak"});
    table.setTitle("Figure 4: peak Matrix Core vs Tensor Core "
                   "throughput (one AMD package = 2 GCDs, one A100)");
    table.setAlignment({Align::Left, Align::Right, Align::Right,
                        Align::Right, Align::Right});

    double amd_f64 = 0.0, nv_f64 = 0.0;
    for (const Combo &combo : kCombos) {
        std::string amd_cell = "x", amd_pct = "x";
        const arch::MfmaInstruction *amd_inst =
            bestInstruction(arch::GpuArch::Cdna2, combo.cd, combo.ab);
        if (amd_inst != nullptr) {
            const auto m = bench::repeatMeasure([&]() {
                return rt.launchMulti(
                             wmma::mfmaLoopProfile(*amd_inst, iters, 440),
                             {0, 1})
                    .throughput();
            }, reps);
            amd_cell = bench::tflopsCell(m);
            amd_pct = pctCell(m.value() / 1e12, combo.peakAmd);
            if (combo.ab == arch::DataType::F64)
                amd_f64 = m.value();
        }

        std::string nv_cell = "x", nv_pct = "x";
        const arch::MfmaInstruction *nv_inst =
            bestInstruction(arch::GpuArch::Ampere, combo.cd, combo.ab);
        if (nv_inst != nullptr) {
            const auto m = bench::repeatMeasure([&]() {
                return a100.run(wmma::mfmaLoopProfile(
                                    *nv_inst, iters, 432))
                    .throughput();
            }, reps);
            nv_cell = bench::tflopsCell(m);
            nv_pct = pctCell(m.value() / 1e12, combo.peakNvidia);
            if (combo.ab == arch::DataType::F64)
                nv_f64 = m.value();
        }

        table.addRow({combo.label, amd_cell, amd_pct, nv_cell, nv_pct});
    }
    table.print(std::cout);

    if (amd_f64 > 0.0 && nv_f64 > 0.0) {
        std::printf("\nDouble-precision advantage of MI250X over A100: "
                    "%.1fx (paper: 3.5x)\n", amd_f64 / nv_f64);
    }
    std::cout << "(paper Fig. 4: 350 / x / 88 / 69 TFLOPS on MI250X; "
                 "290 / 290 / x / 19.4 TFLOPS on A100)\n";
    return bench::finishBench("fig4_peak_comparison");
}
