/**
 * @file
 * Ablation: what HGEMM could achieve if the library routed it through
 * Matrix Cores.
 *
 * The paper finds HGEMM runs entirely on SIMDs because no f16 <- f16
 * MFMA instruction exists, and recommends HHS/HSS instead. A library
 * *could* emulate HGEMM on the mixed-precision instruction: accumulate
 * in f32 on Matrix Cores and narrow to f16 on writeback (later rocBLAS
 * releases do exactly this). This ablation quantifies the headroom the
 * observed rocBLAS 5.3 behaviour leaves on the table, and confirms the
 * emulated path lands at HHS-like throughput despite the extra
 * conversions.
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "prof/profiler.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: SIMD HGEMM vs Matrix-Core-emulated HGEMM");
    cli.parse(argc, argv);

    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);

    TextTable table({"N", "SIMD HGEMM (TFLOPS)", "emulated (TFLOPS)",
                     "HHS (TFLOPS)", "emulation speedup",
                     "MC share (emu)"});
    table.setTitle("HGEMM: observed SIMD path vs Matrix Core "
                   "emulation (f32 accumulate + f16 narrow)");

    for (std::size_t n = 1024; n <= 16384; n *= 2) {
        blas::GemmConfig cfg;
        cfg.combo = blas::GemmCombo::Hgemm;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;

        auto simd = engine.run(cfg);
        cfg.forceMatrixCorePath = true;
        auto emulated = engine.run(cfg);

        blas::GemmConfig hhs_cfg = cfg;
        hhs_cfg.combo = blas::GemmCombo::Hhs;
        hhs_cfg.forceMatrixCorePath.reset();
        auto hhs = engine.run(hhs_cfg);

        if (!simd.isOk() || !emulated.isOk() || !hhs.isOk())
            mc_fatal("gemm failed during the emulation sweep");

        const double simd_tf = simd.value().throughput() / 1e12;
        const double emu_tf = emulated.value().throughput() / 1e12;
        const double hhs_tf = hhs.value().throughput() / 1e12;
        const auto split =
            prof::flopBreakdown(emulated.value().kernel.counters);

        char a[16], b[16], c[16], d[16], e[16];
        std::snprintf(a, sizeof(a), "%.1f", simd_tf);
        std::snprintf(b, sizeof(b), "%.1f", emu_tf);
        std::snprintf(c, sizeof(c), "%.1f", hhs_tf);
        std::snprintf(d, sizeof(d), "%.1fx", emu_tf / simd_tf);
        std::snprintf(e, sizeof(e), "%.1f%%",
                      100.0 * split.matrixCoreFraction());
        table.addRow({std::to_string(n), a, b, c, d, e});
    }
    table.print(std::cout);
    std::cout << "\nEmulation recovers HHS-class throughput (within the "
                 "conversion overhead), i.e. the paper's 'use HHS/HSS' "
                 "guidance costs applications nothing versus a "
                 "hypothetical native-f16 HGEMM path.\n";
    return bench::finishBench("ablation_hgemm_emulation");
}
