/**
 * @file
 * Figure 8: the fraction of floating-point operations delivered by
 * Matrix Cores in each GEMM routine, derived from the SQ hardware
 * counters through the paper's Eq. 1 — the profiling methodology of
 * Section IV-B applied to the simulated rocBLAS engine.
 *
 * Points run on the parallel sweep engine (--jobs); the counter-
 * derived fractions are noise-free, so output is identical for any
 * job count. --inject / --max-point-failures (docs/RESILIENCE.md)
 * turn injected faults into per-point failure cells instead of an
 * abort.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"
#include "prof/profiler.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "fig8_mfma_ratio";

struct Point
{
    blas::GemmCombo combo;
    std::size_t n;
};

struct PointResult
{
    bool oom = false;
    double matrixCoreFraction = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 8: %% of GEMM FLOPs delivered by Matrix "
                  "Cores, from Eq. 1 over the hardware counters");
    cli.addFlag("maxn", static_cast<std::int64_t>(16384),
                "largest matrix dimension");
    cli.requireIntAtLeast("maxn", 16);
    bench::addJobsFlag(cli);
    bench::addResilienceFlags(cli);
    bench::addOutFlag(cli);
    cli.parse(argc, argv);
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));
    const bench::SweepResilience res = bench::resilienceFlags(cli);

    std::vector<Point> points;
    for (std::size_t n = 16; n <= maxn; n *= 2)
        for (blas::GemmCombo combo : blas::allCombos)
            points.push_back({combo, n});

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    const std::vector<Result<PointResult>> results = runner.mapResult(
        points.size(),
        [&](std::size_t i) -> Result<PointResult> {
            const Point &pt = points[i];
            const std::string key =
                std::string(blas::comboInfo(pt.combo).name) + "/" +
                std::to_string(pt.n);
            fault::Injector faults =
                res.injectorFor(runner.seedFor(key, 0));
            sim::SimOptions sim_opts;
            sim_opts.faults = faults.enabled() ? &faults : nullptr;
            hip::Runtime rt(arch::defaultCdna2(), sim_opts);
            blas::GemmEngine engine(rt);

            blas::GemmConfig cfg;
            cfg.combo = pt.combo;
            cfg.m = cfg.n = cfg.k = pt.n;
            cfg.alpha = cfg.beta = 0.1;

            rt.gpu().reseedNoise(runner.seedFor(key, 0));

            PointResult out;
            auto result = retryCall(RetryPolicy(),
                                    [&] { return engine.run(cfg); });
            if (!result.isOk()) {
                if (result.status().code() == ErrorCode::OutOfMemory) {
                    out.oom = true;
                    return out;
                }
                return result.status();
            }
            out.matrixCoreFraction =
                prof::flopBreakdown(result.value().kernel.counters)
                    .matrixCoreFraction();
            return out;
        },
        res.maxPointFailures);

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();

    TextTable table({"N", "dgemm", "sgemm", "hgemm", "hhs", "hss"});
    table.setTitle("Figure 8: Matrix Core share of GEMM FLOPs "
                   "(counter-derived, alpha = beta = 0.1)");

    std::vector<bench::FailedPoint> failures;
    std::size_t index = 0;
    for (std::size_t n = 16; n <= maxn; n *= 2) {
        std::vector<std::string> row{std::to_string(n)};
        for (std::size_t c = 0; c < std::size(blas::allCombos); ++c) {
            const std::size_t point_index = index++;
            if (!results[point_index].isOk()) {
                const Status &status = results[point_index].status();
                if (!exec::SweepRunner::isSkippedPointStatus(status))
                    failures.push_back(
                        {point_index,
                         std::string(blas::comboInfo(
                                         points[point_index].combo)
                                         .name) +
                             "/" + std::to_string(n),
                         status});
                row.push_back(std::string("failed: ") +
                              errorCodeName(status.code()));
                continue;
            }
            const PointResult &r = results[point_index].value();
            if (r.oom) {
                row.push_back("OOM");
                continue;
            }
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1f%%",
                          100.0 * r.matrixCoreFraction);
            row.push_back(cell);
        }
        table.addRow(row);
    }
    table.print(os);

    // The counters behind one representative point, spelled out the way
    // a rocprof results file would list them.
    hip::Runtime rt;
    blas::GemmEngine engine(rt);
    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Dgemm;
    cfg.m = cfg.n = cfg.k = 512;
    cfg.alpha = cfg.beta = 0.1;
    rt.gpu().reseedNoise(runner.seedFor("dgemm-detail/512", 0));
    auto result = engine.run(cfg);
    if (result.isOk()) {
        const auto &counters = result.value().kernel.counters;
        os << "\nEq. 1 inputs for dgemm N=512:\n";
        char line[96];
        for (const char *name :
             {"SQ_INSTS_VALU_MFMA_MOPS_F64", "SQ_INSTS_VALU_ADD_F64",
              "SQ_INSTS_VALU_MUL_F64", "SQ_INSTS_VALU_FMA_F64"}) {
            std::snprintf(line, sizeof(line), "  %-28s = %llu\n", name,
                          static_cast<unsigned long long>(
                              counters.byName(name)));
            os << line;
        }
        const double total =
            prof::totalFlops(counters, arch::DataType::F64);
        std::snprintf(line, sizeof(line),
                      "  TOTAL_FLOPS_F64 = %.0f (algorithmic: 2N^3+3N^2 "
                      "= %.0f)\n",
                      total, 2.0 * 512 * 512 * 512 + 3.0 * 512 * 512);
        os << line;
    }
    os << "(paper Fig. 8: > 90% for N > 16, > 99% for N > 256; "
          "HGEMM at 0%; HHS/HSS at 0% for N = 16)\n";

    bench::printSweepSummary(kBenchName, points.size(), failures,
                             runner.lastStats().skipped, 0);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
