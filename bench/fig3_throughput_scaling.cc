/**
 * @file
 * Figure 3: measured vs Eq. 2-predicted floating-point throughput on
 * one GCD while sweeping the number of wavefronts.
 *
 * The sweep follows the paper: multiples of four from 4 to 256 at a
 * doubling rate, then 440, then multiples of 440 (to avoid the
 * partial-phase effect Section V-B explains). Each wavefront iterates
 * 1e7 MFMA operations; throughput is computed from HIP-event timing of
 * the kernel.
 *
 * Points run on the parallel sweep engine (--jobs): each point owns
 * its simulated device and derives its noise seeds from (bench,
 * point, repetition), so output is byte-identical for any job count.
 * --inject / --max-point-failures (docs/RESILIENCE.md) turn injected
 * faults into per-point failure rows instead of an abort.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/plot.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"
#include "hip/runtime.hh"
#include "sim/device.hh"
#include "prof/profiler.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "fig3_throughput_scaling";

struct Series
{
    const char *label;
    const char *mnemonic;
};

const Series kSeries[] = {
    {"mixed (f32<-f16)", "v_mfma_f32_16x16x16_f16"},
    {"float (f32<-f32)", "v_mfma_f32_16x16x4_f32"},
    {"double (f64<-f64)", "v_mfma_f64_16x16x4_f64"},
};

std::vector<std::uint64_t>
wavefrontSweep()
{
    std::vector<std::uint64_t> wf;
    for (std::uint64_t n = 4; n <= 256; n *= 2)
        wf.push_back(n);
    for (std::uint64_t n = 440; n <= 1760; n += 440)
        wf.push_back(n);
    return wf;
}

struct Point
{
    const Series *series;
    std::uint64_t wavefronts;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 3: Matrix Core throughput vs wavefront count "
                  "on one GCD, measured and modelled (Eq. 2)");
    cli.addFlag("iters", static_cast<std::int64_t>(10000000),
                "MFMA operations per wavefront");
    cli.requireIntAtLeast("iters", 1);
    bench::addRepsFlag(cli, 10);
    cli.addFlag("csv", false, "emit CSV instead of a table");
    bench::addJobsFlag(cli);
    bench::addResilienceFlags(cli);
    bench::addOutFlag(cli);
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));
    const int reps = static_cast<int>(cli.getInt("reps"));
    const bench::SweepResilience res = bench::resilienceFlags(cli);

    const arch::Cdna2Calibration &cal = arch::defaultCdna2();
    const double f = cal.clockHz;
    const auto slots = static_cast<double>(cal.matrixCoresPerGcd());

    const std::vector<std::uint64_t> sweep = wavefrontSweep();
    std::vector<Point> points;
    for (const Series &series : kSeries)
        for (std::uint64_t wf : sweep)
            points.push_back({&series, wf});

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    const std::vector<Result<bench::Measurement>> results =
        runner.mapResult(
            points.size(),
            [&](std::size_t i) -> Result<bench::Measurement> {
                const Point &pt = points[i];
                const arch::MfmaInstruction *inst = arch::findInstruction(
                    arch::GpuArch::Cdna2, pt.series->mnemonic);
                if (inst == nullptr)
                    mc_fatal("missing instruction ", pt.series->mnemonic);

                const std::string key =
                    std::string(pt.series->mnemonic) + "/" +
                    std::to_string(pt.wavefronts);
                fault::Injector faults =
                    res.injectorFor(runner.seedFor(key, 0));
                sim::SimOptions sim_opts;
                sim_opts.faults = faults.enabled() ? &faults : nullptr;
                hip::Runtime rt(arch::defaultCdna2(), sim_opts);

                bench::ResilientOptions ropts;
                ropts.repetitions = reps;
                ropts.deadlineSec = res.deadlineSec;
                return bench::repeatMeasureResilient(
                    [&](int rep) -> Result<bench::TimedSample> {
                        rt.gpu().reseedNoise(runner.seedFor(
                            key, static_cast<std::uint64_t>(rep)));
                        hip::Event start, stop;
                        rt.eventRecord(start);
                        const auto result = rt.launch(
                            wmma::mfmaLoopProfile(*inst, iters,
                                                  pt.wavefronts,
                                                  pt.series->mnemonic),
                            0);
                        rt.eventRecord(stop);
                        if (!result.ok())
                            return Status(result.fault,
                                          "MFMA loop kernel failed");
                        const double seconds =
                            rt.eventElapsedMs(start, stop) * 1e-3;
                        const double flops =
                            static_cast<double>(
                                inst->flopsPerInstruction()) *
                            static_cast<double>(iters) *
                            static_cast<double>(pt.wavefronts);
                        return bench::TimedSample{flops / seconds,
                                                  seconds};
                    },
                    ropts);
            },
            res.maxPointFailures);

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();

    CsvWriter csv(os);
    if (cli.getBool("csv"))
        csv.writeRow({"series", "wavefronts", "measured_tflops",
                      "model_tflops", "pct_of_model"});

    AsciiChart chart(64, 16);
    chart.setTitle("\nFigure 3 (rendered): throughput vs wavefronts, "
                   "one GCD");
    chart.setLogX(true);
    chart.setXLabel("wavefronts (log)");
    chart.setYLabel("TFLOPS");
    const char markers[] = {'m', 'f', 'd'};
    int series_index = 0;
    std::vector<bench::FailedPoint> failures;

    std::size_t index = 0;
    for (const Series &series : kSeries) {
        const arch::MfmaInstruction *inst =
            arch::findInstruction(arch::GpuArch::Cdna2, series.mnemonic);
        if (inst == nullptr)
            mc_fatal("missing instruction ", series.mnemonic);

        TextTable table({"wavefronts", "measured TFLOPS", "model TFLOPS",
                         "% of model"});
        table.setTitle(std::string("Figure 3 [") + series.label +
                       "]: throughput vs wavefronts (1 GCD)");

        PlotSeries plot_series;
        plot_series.label = series.label;
        plot_series.marker = markers[series_index++ % 3];

        for (std::uint64_t wf : sweep) {
            const std::size_t point_index = index++;
            if (!results[point_index].isOk()) {
                const Status &status = results[point_index].status();
                if (!exec::SweepRunner::isSkippedPointStatus(status))
                    failures.push_back(
                        {point_index,
                         std::string(series.mnemonic) + "/" +
                             std::to_string(wf),
                         status});
                const std::string cell = std::string("failed: ") +
                                         errorCodeName(status.code());
                if (cli.getBool("csv"))
                    csv.writeRow({series.label, std::to_string(wf),
                                  cell, "-", "-"});
                else
                    table.addRow({std::to_string(wf), cell, "-", "-"});
                continue;
            }
            const bench::Measurement &m = results[point_index].value();

            // Eq. 2: FLOPS(N_WF) = 2mnk/c * min(N_WF, 440) * f.
            const double model =
                static_cast<double>(inst->flopsPerInstruction()) /
                inst->latencyCycles *
                std::min(static_cast<double>(wf), slots) * f;

            plot_series.points.emplace_back(static_cast<double>(wf),
                                            m.value() / 1e12);

            char pct[16];
            std::snprintf(pct, sizeof(pct), "%.1f%%",
                          100.0 * m.value() / model);
            if (cli.getBool("csv")) {
                csv.writeRow({series.label, std::to_string(wf),
                              bench::tflopsCell(m),
                              std::to_string(model / 1e12), pct});
            } else {
                char model_cell[32];
                std::snprintf(model_cell, sizeof(model_cell), "%.1f",
                              model / 1e12);
                table.addRow({std::to_string(wf), bench::tflopsCell(m),
                              model_cell, pct});
            }
        }
        if (!cli.getBool("csv")) {
            table.print(os);
            os << "\n";
        }
        chart.addSeries(std::move(plot_series));
    }
    if (!cli.getBool("csv"))
        chart.print(os);

    // Cross-validation against the counter-derived FLOPs, as the
    // paper validates its micro-benchmark against rocprof.
    {
        hip::Runtime rt;
        const arch::MfmaInstruction *inst = arch::findInstruction(
            arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
        const auto result = rt.launch(
            wmma::mfmaLoopProfile(*inst, 1000, 440, "rocprof_check"), 0);
        const double counted =
            prof::totalFlops(result.counters, arch::DataType::F64);
        const double expected = static_cast<double>(
            inst->flopsPerInstruction()) * 1000.0 * 440.0;
        char check[160];
        std::snprintf(check, sizeof(check),
                      "\nrocprof cross-check (fp64, 440 WF x 1000 "
                      "iters): counter-derived FLOPs = %.0f, "
                      "algorithmic = %.0f (%s)\n", counted, expected,
                      counted == expected ? "exact match" : "MISMATCH");
        os << check;
    }

    os << "(paper Fig. 3 plateaus: 175 / 43 / 41 TFLOPS at "
          ">= 440 wavefronts, 92/90/85% of model)\n";

    bench::printSweepSummary(kBenchName, points.size(),
                             failures, runner.lastStats().skipped, 0);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
