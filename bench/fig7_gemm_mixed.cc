/**
 * @file
 * Figure 7 (+ the Section VII speedup analysis): rocBLAS-style GEMM
 * throughput for the three half-input datatype combinations of
 * Table III — HGEMM, HSS, and HHS — over N = 16 ... 65536, plus the
 * Matrix-Core-over-SIMD speedup using HGEMM as the SIMD reference.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"

namespace {

using namespace mc;

const blas::GemmCombo kCombos[] = {
    blas::GemmCombo::Hgemm,
    blas::GemmCombo::Hss,
    blas::GemmCombo::Hhs,
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 7: HGEMM/HSS/HHS throughput vs matrix size");
    cli.addFlag("reps", static_cast<std::int64_t>(10),
                "measurement repetitions");
    cli.addFlag("maxn", static_cast<std::int64_t>(65536),
                "largest matrix dimension attempted");
    cli.parse(argc, argv);
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));

    hip::Runtime rt;
    blas::GemmEngine engine(rt);

    // Table III reminder.
    TextTable types({"operation", "typeAB", "typeCD", "compute type"});
    types.setTitle("Table III: datatypes of the half- and "
                   "mixed-precision GEMM operations");
    types.setAlignment({Align::Left, Align::Left, Align::Left,
                        Align::Left});
    for (blas::GemmCombo combo : kCombos) {
        const auto &info = blas::comboInfo(combo);
        types.addRow({info.name, arch::dataTypeName(info.typeAB),
                      arch::dataTypeName(info.typeCD),
                      arch::dataTypeName(info.computeType)});
    }
    types.print(std::cout);
    std::cout << "\n";

    std::map<blas::GemmCombo, std::map<std::size_t, double>> tflops;

    TextTable table({"N", "hgemm", "hss", "hhs", "hhs/hgemm speedup"});
    table.setTitle("Figure 7: N x N x N GEMM throughput (TFLOPS), "
                   "alpha = beta = 0.1, 1 GCD");
    for (std::size_t n = 16; n <= maxn; n *= 2) {
        std::vector<std::string> row{std::to_string(n)};
        bool any_oom = false;
        for (blas::GemmCombo combo : kCombos) {
            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            bool oom = false;
            const auto m = bench::repeatMeasure([&]() {
                auto result = engine.run(cfg);
                if (!result.isOk()) {
                    oom = true;
                    return 0.0;
                }
                return result.value().throughput();
            }, reps);
            if (oom) {
                row.push_back("OOM");
                any_oom = true;
            } else {
                tflops[combo][n] = m.value();
                row.push_back(bench::tflopsCell(m));
            }
        }
        if (tflops[blas::GemmCombo::Hhs].count(n) &&
            tflops[blas::GemmCombo::Hgemm].count(n)) {
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1fx",
                          tflops[blas::GemmCombo::Hhs][n] /
                              tflops[blas::GemmCombo::Hgemm][n]);
            row.push_back(cell);
        } else {
            row.push_back("-");
        }
        table.addRow(row);
        if (any_oom)
            break;
    }
    table.print(std::cout);

    // Section VII: speedup range over the sweep (N >= 1024, where the
    // device is reasonably utilized).
    double lo = 1e30, hi = 0.0;
    for (const auto &[n, hhs] : tflops[blas::GemmCombo::Hhs]) {
        if (n < 1024 || !tflops[blas::GemmCombo::Hgemm].count(n))
            continue;
        const double s = hhs / tflops[blas::GemmCombo::Hgemm][n];
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    std::printf("\nMatrix Core speedup over SIMD (HHS vs HGEMM, "
                "N >= 1024): %.1fx - %.1fx (paper: 2.3x - 7.5x)\n",
                lo, hi);
    std::cout << "(paper Fig. 7: HHS peaks at 155 TFLOPS = 88% of the "
                 "one-GCD plateau; HHS > HSS for N > 1024; HGEMM never "
                 "uses Matrix Cores)\n";
    return 0;
}
