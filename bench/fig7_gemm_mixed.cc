/**
 * @file
 * Figure 7 (+ the Section VII speedup analysis): rocBLAS-style GEMM
 * throughput for the three half-input datatype combinations of
 * Table III — HGEMM, HSS, and HHS — over N = 16 ... 65536, plus the
 * Matrix-Core-over-SIMD speedup using HGEMM as the SIMD reference.
 *
 * Points run on the parallel sweep engine (--jobs) with per-point
 * devices and derived noise seeds: output is identical for any job
 * count. The resilience flags (--inject, --max-point-failures,
 * --journal, --resume; see docs/RESILIENCE.md) isolate failed points
 * and make interrupted runs resumable from their journal.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <vector>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/journal.hh"
#include "exec/sweep_runner.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "fig7_gemm_mixed";

const blas::GemmCombo kCombos[] = {
    blas::GemmCombo::Hgemm,
    blas::GemmCombo::Hss,
    blas::GemmCombo::Hhs,
};

struct Point
{
    blas::GemmCombo combo;
    std::size_t n;
};

struct PointResult
{
    bench::Measurement m;
    /** -1 = not host-verified, 1 = verified OK (a failed check fails
     *  the point with Internal instead). */
    int verified = -1;
    std::uint64_t maxUlp = 0;
};

/** Journal payload: the fields the rendering reads. */
std::string
encodePoint(const PointResult &r)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%zu,%d,%d,%d,%llu",
                  r.m.stats.mean, r.m.stats.stddev, r.m.stats.count,
                  r.m.aborted ? 1 : 0, r.m.samplesTaken, r.verified,
                  static_cast<unsigned long long>(r.maxUlp));
    return buf;
}

bool
decodePoint(const std::string &payload, PointResult &r)
{
    std::size_t count = 0;
    int aborted = 0, samples = 0, verified = -1;
    unsigned long long ulp = 0;
    if (std::sscanf(payload.c_str(), "%lg,%lg,%zu,%d,%d,%d,%llu",
                    &r.m.stats.mean, &r.m.stats.stddev, &count, &aborted,
                    &samples, &verified, &ulp) != 7)
        return false;
    r.m.stats.count = count;
    r.m.aborted = aborted != 0;
    r.m.samplesTaken = samples;
    r.verified = verified;
    r.maxUlp = ulp;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 7: HGEMM/HSS/HHS throughput vs matrix size");
    bench::addRepsFlag(cli, 10);
    cli.addFlag("maxn", static_cast<std::int64_t>(65536),
                "largest matrix dimension attempted");
    cli.requireIntAtLeast("maxn", 16);
    bench::addJobsFlag(cli);
    bench::addResilienceFlags(cli);
    bench::addOutFlag(cli);
    bench::addVerifyFlags(cli, /*default_enabled=*/true);
    bench::addPlanCacheFlag(cli);
    bench::addPackCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    bench::applyPackCacheFlag(cli);
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));
    const bench::SweepResilience res = bench::resilienceFlags(cli);
    const bench::VerifyConfig vcfg = bench::verifyFlags(cli);

    std::optional<exec::SweepJournal> journal;
    if (!res.journalPath.empty()) {
        auto opened = res.resume
            ? exec::SweepJournal::open(res.journalPath, kBenchName)
            : exec::SweepJournal::create(res.journalPath, kBenchName);
        if (!opened.isOk()) {
            std::fprintf(stderr, "[%s] journal: %s\n", kBenchName,
                         opened.status().toString().c_str());
            return bench::finishBench(kBenchName, opened.status().code());
        }
        journal.emplace(std::move(opened.value()));
    }

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();

    // Table III reminder.
    TextTable types({"operation", "typeAB", "typeCD", "compute type"});
    types.setTitle("Table III: datatypes of the half- and "
                   "mixed-precision GEMM operations");
    types.setAlignment({Align::Left, Align::Left, Align::Left,
                        Align::Left});
    for (blas::GemmCombo combo : kCombos) {
        const auto &info = blas::comboInfo(combo);
        types.addRow({info.name, arch::dataTypeName(info.typeAB),
                      arch::dataTypeName(info.typeCD),
                      arch::dataTypeName(info.computeType)});
    }
    types.print(os);
    os << "\n";

    // One sweep point per (N, combo), in the row-major order the table
    // is rendered in.
    std::vector<Point> points;
    for (std::size_t n = 16; n <= maxn; n *= 2)
        for (blas::GemmCombo combo : kCombos)
            points.push_back({combo, n});

    auto point_key = [&](const Point &pt) {
        return std::string(blas::comboInfo(pt.combo).name) + "/" +
               std::to_string(pt.n);
    };

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    std::size_t resumed_points = 0;
    const std::vector<Result<PointResult>> results =
        runner.mapResult(
            points.size(),
            [&](std::size_t i) -> Result<PointResult> {
                const Point &pt = points[i];
                const std::string key = point_key(pt);

                if (res.resume && journal) {
                    const exec::JournalEntry *entry = journal->find(i);
                    PointResult loaded;
                    if (entry && entry->ok() &&
                        decodePoint(entry->payload, loaded))
                        return loaded;
                }

                fault::Injector faults =
                    res.injectorFor(runner.seedFor(key, 0));
                sim::SimOptions sim_opts;
                sim_opts.faults = faults.enabled() ? &faults : nullptr;
                hip::Runtime rt(arch::defaultCdna2(), sim_opts);
                blas::GemmEngine engine(rt);

                blas::GemmConfig cfg;
                cfg.combo = pt.combo;
                cfg.m = cfg.n = cfg.k = pt.n;
                cfg.alpha = cfg.beta = 0.1;

                bench::ResilientOptions ropts;
                ropts.repetitions = reps;
                ropts.deadlineSec = res.deadlineSec;
                auto measured = bench::repeatMeasureResilient(
                    [&](int rep) -> Result<bench::TimedSample> {
                        rt.gpu().reseedNoise(runner.seedFor(
                            key, static_cast<std::uint64_t>(rep)));
                        auto result = engine.run(cfg);
                        if (!result.isOk())
                            return result.status();
                        return bench::TimedSample{
                            result.value().throughput(),
                            result.value().kernel.seconds};
                    },
                    ropts);
                if (!measured.isOk()) {
                    if (journal)
                        journal->record(
                            {i, key, measured.status().code(), ""});
                    return measured.status();
                }

                PointResult out;
                out.m = measured.value();

                // Host-side numeric verification (docs/PERF.md): a
                // wrong result invalidates the measurement, so a
                // failed check fails the point.
                if (!out.m.aborted &&
                    vcfg.shouldVerify(cfg.m, cfg.n, cfg.k)) {
                    engine.functionalOptions() = vcfg.func;
                    const blas::VerifyResult v = engine.verify(
                        cfg, vcfg.scheme,
                        runner.seedFor(key, 1ull << 32));
                    if (!v.passed) {
                        const Status status(
                            ErrorCode::Internal,
                            "verification failed: " + v.detail);
                        if (journal)
                            journal->record({i, key, status.code(), ""});
                        return status;
                    }
                    out.verified = 1;
                    out.maxUlp = v.maxUlp;
                }
                if (journal)
                    journal->record(
                        {i, key, ErrorCode::Ok, encodePoint(out)});
                return out;
            },
            res.maxPointFailures);
    if (res.resume && journal)
        resumed_points = journal->loadedOkCount();

    std::map<blas::GemmCombo, std::map<std::size_t, double>> tflops;
    std::vector<bench::FailedPoint> failures;
    std::size_t verified_points = 0;
    std::uint64_t verified_max_ulp = 0;

    TextTable table({"N", "hgemm", "hss", "hhs", "hhs/hgemm speedup"});
    table.setTitle("Figure 7: N x N x N GEMM throughput (TFLOPS), "
                   "alpha = beta = 0.1, 1 GCD");
    std::size_t index = 0;
    for (std::size_t n = 16; n <= maxn; n *= 2) {
        std::vector<std::string> row{std::to_string(n)};
        bool any_oom = false;
        for (blas::GemmCombo combo : kCombos) {
            const std::size_t point_index = index++;
            if (!results[point_index].isOk()) {
                const Status &status = results[point_index].status();
                if (!exec::SweepRunner::isSkippedPointStatus(status))
                    failures.push_back({point_index,
                                        point_key(points[point_index]),
                                        status});
                row.push_back(std::string("failed: ") +
                              errorCodeName(status.code()));
                continue;
            }
            const PointResult &r = results[point_index].value();
            if (r.verified > 0) {
                ++verified_points;
                verified_max_ulp = std::max(verified_max_ulp, r.maxUlp);
            }
            if (r.m.aborted) {
                row.push_back("OOM");
                any_oom = true;
            } else {
                tflops[combo][n] = r.m.value();
                row.push_back(bench::tflopsCell(r.m));
            }
        }
        if (tflops[blas::GemmCombo::Hhs].count(n) &&
            tflops[blas::GemmCombo::Hgemm].count(n)) {
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1fx",
                          tflops[blas::GemmCombo::Hhs][n] /
                              tflops[blas::GemmCombo::Hgemm][n]);
            row.push_back(cell);
        } else {
            row.push_back("-");
        }
        table.addRow(row);
        if (any_oom)
            break;
    }
    table.print(os);

    // Section VII: speedup range over the sweep (N >= 1024, where the
    // device is reasonably utilized).
    double lo = 1e30, hi = 0.0;
    for (const auto &[n, hhs] : tflops[blas::GemmCombo::Hhs]) {
        if (n < 1024 || !tflops[blas::GemmCombo::Hgemm].count(n))
            continue;
        const double s = hhs / tflops[blas::GemmCombo::Hgemm][n];
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    char speedup[128];
    std::snprintf(speedup, sizeof(speedup),
                  "\nMatrix Core speedup over SIMD (HHS vs HGEMM, "
                  "N >= 1024): %.1fx - %.1fx (paper: 2.3x - 7.5x)\n",
                  lo, hi);
    os << speedup;
    if (verified_points > 0)
        os << "verification: " << verified_points
           << " points host-verified, max ULP = " << verified_max_ulp
           << "\n";
    os << "(paper Fig. 7: HHS peaks at 155 TFLOPS = 88% of the "
          "one-GCD plateau; HHS > HSS for N > 1024; HGEMM never "
          "uses Matrix Cores)\n";

    bench::printSweepSummary(kBenchName, points.size(), failures,
                             runner.lastStats().skipped, resumed_points);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
