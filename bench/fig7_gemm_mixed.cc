/**
 * @file
 * Figure 7 (+ the Section VII speedup analysis): rocBLAS-style GEMM
 * throughput for the three half-input datatype combinations of
 * Table III — HGEMM, HSS, and HHS — over N = 16 ... 65536, plus the
 * Matrix-Core-over-SIMD speedup using HGEMM as the SIMD reference.
 *
 * Points run on the parallel sweep engine (--jobs) with per-point
 * devices and derived noise seeds: output is identical for any job
 * count.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"

namespace {

using namespace mc;

const blas::GemmCombo kCombos[] = {
    blas::GemmCombo::Hgemm,
    blas::GemmCombo::Hss,
    blas::GemmCombo::Hhs,
};

struct Point
{
    blas::GemmCombo combo;
    std::size_t n;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 7: HGEMM/HSS/HHS throughput vs matrix size");
    cli.addFlag("reps", static_cast<std::int64_t>(10),
                "measurement repetitions");
    cli.addFlag("maxn", static_cast<std::int64_t>(65536),
                "largest matrix dimension attempted");
    bench::addJobsFlag(cli);
    cli.parse(argc, argv);
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));

    // Table III reminder.
    TextTable types({"operation", "typeAB", "typeCD", "compute type"});
    types.setTitle("Table III: datatypes of the half- and "
                   "mixed-precision GEMM operations");
    types.setAlignment({Align::Left, Align::Left, Align::Left,
                        Align::Left});
    for (blas::GemmCombo combo : kCombos) {
        const auto &info = blas::comboInfo(combo);
        types.addRow({info.name, arch::dataTypeName(info.typeAB),
                      arch::dataTypeName(info.typeCD),
                      arch::dataTypeName(info.computeType)});
    }
    types.print(std::cout);
    std::cout << "\n";

    // One sweep point per (N, combo), in the row-major order the table
    // is rendered in.
    std::vector<Point> points;
    for (std::size_t n = 16; n <= maxn; n *= 2)
        for (blas::GemmCombo combo : kCombos)
            points.push_back({combo, n});

    exec::SweepRunner runner("fig7_gemm_mixed", bench::jobsFlag(cli));
    const std::vector<bench::Measurement> results =
        runner.map(points.size(), [&](std::size_t i) {
            const Point &pt = points[i];
            hip::Runtime rt;
            blas::GemmEngine engine(rt);

            blas::GemmConfig cfg;
            cfg.combo = pt.combo;
            cfg.m = cfg.n = cfg.k = pt.n;
            cfg.alpha = cfg.beta = 0.1;

            const std::string key =
                std::string(blas::comboInfo(pt.combo).name) + "/" +
                std::to_string(pt.n);
            int rep = 0;
            return bench::repeatMeasureUntil(
                [&]() -> std::optional<double> {
                    rt.gpu().reseedNoise(runner.seedFor(key, rep++));
                    auto result = engine.run(cfg);
                    if (!result.isOk())
                        return std::nullopt;
                    return result.value().throughput();
                }, reps);
        });

    std::map<blas::GemmCombo, std::map<std::size_t, double>> tflops;

    TextTable table({"N", "hgemm", "hss", "hhs", "hhs/hgemm speedup"});
    table.setTitle("Figure 7: N x N x N GEMM throughput (TFLOPS), "
                   "alpha = beta = 0.1, 1 GCD");
    std::size_t index = 0;
    for (std::size_t n = 16; n <= maxn; n *= 2) {
        std::vector<std::string> row{std::to_string(n)};
        bool any_oom = false;
        for (blas::GemmCombo combo : kCombos) {
            const bench::Measurement &m = results[index++];
            if (m.aborted) {
                row.push_back("OOM");
                any_oom = true;
            } else {
                tflops[combo][n] = m.value();
                row.push_back(bench::tflopsCell(m));
            }
        }
        if (tflops[blas::GemmCombo::Hhs].count(n) &&
            tflops[blas::GemmCombo::Hgemm].count(n)) {
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1fx",
                          tflops[blas::GemmCombo::Hhs][n] /
                              tflops[blas::GemmCombo::Hgemm][n]);
            row.push_back(cell);
        } else {
            row.push_back("-");
        }
        table.addRow(row);
        if (any_oom)
            break;
    }
    table.print(std::cout);

    // Section VII: speedup range over the sweep (N >= 1024, where the
    // device is reasonably utilized).
    double lo = 1e30, hi = 0.0;
    for (const auto &[n, hhs] : tflops[blas::GemmCombo::Hhs]) {
        if (n < 1024 || !tflops[blas::GemmCombo::Hgemm].count(n))
            continue;
        const double s = hhs / tflops[blas::GemmCombo::Hgemm][n];
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    std::printf("\nMatrix Core speedup over SIMD (HHS vs HGEMM, "
                "N >= 1024): %.1fx - %.1fx (paper: 2.3x - 7.5x)\n",
                lo, hi);
    std::cout << "(paper Fig. 7: HHS peaks at 155 TFLOPS = 88% of the "
                 "one-GCD plateau; HHS > HSS for N > 1024; HGEMM never "
                 "uses Matrix Cores)\n";
    return 0;
}
