/**
 * @file
 * Extension study: the BLAS routine zoo on the roofline.
 *
 * GEMM is the paper's vehicle because it is the routine Matrix Cores
 * exist for; this survey runs the neighbouring routines a LAPACK-style
 * factorization actually calls — TRSM, SYRK, GEMV — through the same
 * engine and places each on the roofline. The level-3 routines inherit
 * GEMM-class Matrix Core throughput (with the triangular discount);
 * GEMV is pinned to the memory roof no matter the datatype, which is
 * why factorizations push everything they can into level-3 calls.
 *
 * The per-combo surveys are independent and run on the parallel sweep
 * engine (--jobs); the survey is noise-free, so output is identical
 * for any job count. --inject / --max-point-failures
 * (docs/RESILIENCE.md) turn injected faults into per-combo failure
 * reports instead of an abort.
 */

#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "blas/level3.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"
#include "prof/roofline.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "ext_blas_survey";

struct RoutineRow
{
    const char *name;
    double flops = 0.0;
    double throughput = 0.0;
    bool usedMatrixCores = false;
};

struct SurveyResult
{
    std::array<RoutineRow, 4> rows;
    /** -1 = GEMM not host-verified (above --verify-maxn), 1 = verified
     *  OK; a failed check fails the combo's whole survey (Internal). */
    int verified = -1;
    std::uint64_t maxUlp = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("BLAS routine survey: GEMM / TRSM / SYRK / GEMV");
    cli.addFlag("n", static_cast<std::int64_t>(8192),
                "problem dimension");
    cli.requireIntAtLeast("n", 16);
    bench::addJobsFlag(cli);
    bench::addResilienceFlags(cli);
    bench::addOutFlag(cli);
    bench::addVerifyFlags(cli, /*default_enabled=*/true);
    bench::addPlanCacheFlag(cli);
    bench::addPackCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    bench::applyPackCacheFlag(cli);
    const auto n = static_cast<std::size_t>(cli.getInt("n"));
    const bench::SweepResilience res = bench::resilienceFlags(cli);
    const bench::VerifyConfig vcfg = bench::verifyFlags(cli);

    const blas::GemmCombo combos[] = {blas::GemmCombo::Sgemm,
                                      blas::GemmCombo::Dgemm};
    const prof::RooflineModel roofline(arch::defaultCdna2());

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    const std::vector<Result<SurveyResult>> results = runner.mapResult(
        std::size(combos),
        [&](std::size_t i) -> Result<SurveyResult> {
            const blas::GemmCombo combo = combos[i];
            const std::string key = blas::comboInfo(combo).name;
            fault::Injector faults =
                res.injectorFor(runner.seedFor(key, 0));
            sim::SimOptions opts;
            opts.enableNoise = false;
            opts.faults = faults.enabled() ? &faults : nullptr;
            hip::Runtime rt(arch::defaultCdna2(), opts);
            blas::GemmEngine engine(rt);
            blas::Level3Engine level3(engine);

            blas::GemmConfig gemm;
            gemm.combo = combo;
            gemm.m = gemm.n = gemm.k = n;
            gemm.alpha = gemm.beta = 0.1;
            auto gemm_result = retryCall(
                RetryPolicy(), [&] { return engine.run(gemm); });
            if (!gemm_result.isOk())
                return gemm_result.status();

            // Host-side numeric verification of the GEMM anchor the
            // other routines are compared against (docs/PERF.md).
            int verified = -1;
            std::uint64_t max_ulp = 0;
            if (vcfg.shouldVerify(gemm.m, gemm.n, gemm.k)) {
                engine.functionalOptions() = vcfg.func;
                const blas::VerifyResult v = engine.verify(
                    gemm, vcfg.scheme, runner.seedFor(key, 1ull << 32));
                if (!v.passed)
                    return Status(ErrorCode::Internal,
                                  "verification failed: " + v.detail);
                verified = 1;
                max_ulp = v.maxUlp;
            }

            blas::TrsmConfig trsm;
            trsm.combo = combo;
            trsm.m = n;
            trsm.n = n / 4;
            auto trsm_result = retryCall(
                RetryPolicy(), [&] { return level3.runTrsm(trsm); });
            if (!trsm_result.isOk())
                return trsm_result.status();

            blas::SyrkConfig syrk;
            syrk.combo = combo;
            syrk.n = n;
            syrk.k = n / 4;
            syrk.alpha = -1.0;
            syrk.beta = 1.0;
            auto syrk_result = retryCall(
                RetryPolicy(), [&] { return level3.runSyrk(syrk); });
            if (!syrk_result.isOk())
                return syrk_result.status();

            blas::GemvConfig gemv;
            gemv.combo = combo;
            gemv.m = n;
            gemv.n = n;
            auto gemv_result = retryCall(
                RetryPolicy(), [&] { return level3.runGemv(gemv); });
            if (!gemv_result.isOk())
                return gemv_result.status();

            const auto row = [](const char *name,
                                const blas::GemmResult &r, double flops) {
                return RoutineRow{name, flops, r.throughput(),
                                  r.usedMatrixCores};
            };
            SurveyResult survey;
            survey.rows = {
                row("gemm", gemm_result.value(), gemm.productFlops()),
                row("trsm", trsm_result.value(), trsm.flops()),
                row("syrk", syrk_result.value(), syrk.flops()),
                row("gemv", gemv_result.value(), gemv.flops()),
            };
            survey.verified = verified;
            survey.maxUlp = max_ulp;
            return survey;
        },
        res.maxPointFailures);

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();

    std::vector<bench::FailedPoint> failures;
    for (std::size_t i = 0; i < std::size(combos); ++i) {
        const blas::GemmCombo combo = combos[i];
        if (!results[i].isOk()) {
            const Status &status = results[i].status();
            if (!exec::SweepRunner::isSkippedPointStatus(status))
                failures.push_back(
                    {i, blas::comboInfo(combo).name, status});
            os << "BLAS survey [" << blas::comboInfo(combo).name
               << "]: failed: " << errorCodeName(status.code())
               << "\n\n";
            continue;
        }
        TextTable table({"routine", "FLOPs", "TFLOPS", "path",
                         "% of GEMM"});
        table.setTitle(std::string("BLAS survey [") +
                       blas::comboInfo(combo).name + "], N = " +
                       std::to_string(n));
        table.setAlignment({Align::Left, Align::Right, Align::Right,
                            Align::Left, Align::Right});

        const SurveyResult &survey = results[i].value();
        const double gemm_tf = survey.rows[0].throughput / 1e12;
        for (const RoutineRow &row : survey.rows) {
            char fl[24], tf[16], pct[16];
            std::snprintf(fl, sizeof(fl), "%.2e", row.flops);
            std::snprintf(tf, sizeof(tf), "%.2f",
                          row.throughput / 1e12);
            std::snprintf(pct, sizeof(pct), "%.0f%%",
                          100.0 * row.throughput / 1e12 / gemm_tf);
            table.addRow({row.name, fl, tf,
                          row.usedMatrixCores ? "MatrixCore" : "SIMD",
                          pct});
        }
        table.print(os);
        if (survey.verified > 0)
            os << "host verification: ok (max ULP = " << survey.maxUlp
               << ")\n";
        char balance[160];
        std::snprintf(balance, sizeof(balance),
                      "machine balance (%s Matrix Core roof): "
                      "%.1f FLOP/byte; GEMV intensity ~0.25 FLOP/byte "
                      "-> pinned to the memory roof\n\n",
                      blas::comboInfo(combo).name,
                      roofline.machineBalance(
                          blas::comboInfo(combo).typeAB,
                          prof::RoofKind::MatrixCore));
        os << balance;
    }
    os << "Level-3 routines ride Matrix Cores at GEMM-class "
          "rates; level-2 cannot — which is why blocked "
          "factorizations exist.\n";

    bench::printSweepSummary(kBenchName, std::size(combos),
                             failures, runner.lastStats().skipped, 0);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
