/**
 * @file
 * Extension study: the BLAS routine zoo on the roofline.
 *
 * GEMM is the paper's vehicle because it is the routine Matrix Cores
 * exist for; this survey runs the neighbouring routines a LAPACK-style
 * factorization actually calls — TRSM, SYRK, GEMV — through the same
 * engine and places each on the roofline. The level-3 routines inherit
 * GEMM-class Matrix Core throughput (with the triangular discount);
 * GEMV is pinned to the memory roof no matter the datatype, which is
 * why factorizations push everything they can into level-3 calls.
 */

#include <cstdio>
#include <iostream>

#include "blas/level3.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "prof/roofline.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("BLAS routine survey: GEMM / TRSM / SYRK / GEMV");
    cli.addFlag("n", static_cast<std::int64_t>(8192),
                "problem dimension");
    cli.parse(argc, argv);
    const auto n = static_cast<std::size_t>(cli.getInt("n"));

    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);
    blas::Level3Engine level3(engine);
    const prof::RooflineModel roofline(rt.gpu().calibration());

    for (blas::GemmCombo combo :
         {blas::GemmCombo::Sgemm, blas::GemmCombo::Dgemm}) {
        TextTable table({"routine", "FLOPs", "TFLOPS", "path",
                         "% of GEMM"});
        table.setTitle(std::string("BLAS survey [") +
                       blas::comboInfo(combo).name + "], N = " +
                       std::to_string(n));
        table.setAlignment({Align::Left, Align::Right, Align::Right,
                            Align::Left, Align::Right});

        blas::GemmConfig gemm;
        gemm.combo = combo;
        gemm.m = gemm.n = gemm.k = n;
        gemm.alpha = gemm.beta = 0.1;
        auto gemm_result = engine.run(gemm);
        if (!gemm_result.isOk())
            mc_fatal("gemm failed: ", gemm_result.status().toString());
        const double gemm_tf = gemm_result.value().throughput() / 1e12;

        blas::TrsmConfig trsm;
        trsm.combo = combo;
        trsm.m = n;
        trsm.n = n / 4;
        auto trsm_result = level3.runTrsm(trsm);

        blas::SyrkConfig syrk;
        syrk.combo = combo;
        syrk.n = n;
        syrk.k = n / 4;
        syrk.alpha = -1.0;
        syrk.beta = 1.0;
        auto syrk_result = level3.runSyrk(syrk);

        blas::GemvConfig gemv;
        gemv.combo = combo;
        gemv.m = n;
        gemv.n = n;
        auto gemv_result = level3.runGemv(gemv);

        const struct { const char *name; const blas::GemmResult *r;
                       double flops; } rows[] = {
            {"gemm", &gemm_result.value(), gemm.productFlops()},
            {"trsm", &trsm_result.value(), trsm.flops()},
            {"syrk", &syrk_result.value(), syrk.flops()},
            {"gemv", &gemv_result.value(), gemv.flops()},
        };
        for (const auto &row : rows) {
            char fl[24], tf[16], pct[16];
            std::snprintf(fl, sizeof(fl), "%.2e", row.flops);
            std::snprintf(tf, sizeof(tf), "%.2f",
                          row.r->throughput() / 1e12);
            std::snprintf(pct, sizeof(pct), "%.0f%%",
                          100.0 * row.r->throughput() / 1e12 / gemm_tf);
            table.addRow({row.name, fl, tf,
                          row.r->usedMatrixCores ? "MatrixCore" : "SIMD",
                          pct});
        }
        table.print(std::cout);
        std::printf("machine balance (%s Matrix Core roof): "
                    "%.1f FLOP/byte; GEMV intensity ~0.25 FLOP/byte -> "
                    "pinned to the memory roof\n\n",
                    blas::comboInfo(combo).name,
                    roofline.machineBalance(
                        blas::comboInfo(combo).typeAB,
                        prof::RoofKind::MatrixCore));
    }
    std::cout << "Level-3 routines ride Matrix Cores at GEMM-class "
                 "rates; level-2 cannot — which is why blocked "
                 "factorizations exist.\n";
    return 0;
}
