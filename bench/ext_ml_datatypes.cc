/**
 * @file
 * Extension study: the machine-learning datatypes the paper lists but
 * does not evaluate (Section II: BF16 and INT8 "specifically target
 * machine learning workloads").
 *
 * Runs the paper's Fig. 3/Fig. 5 methodology on BF16 and INT8 Matrix
 * Core instructions: latency, throughput scaling plateau, and power
 * efficiency, alongside the FP16 baseline.
 *
 * Each instruction is one point on the parallel sweep engine (--jobs)
 * with its own noise-free simulated device, so output is byte-identical
 * for any job count (docs/SWEEP_ENGINE.md).
 */

#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"
#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "ext_ml_datatypes";

const char *kInstructions[] = {
    "v_mfma_f32_16x16x16_f16",
    "v_mfma_f32_16x16x16_bf16_1k",
    "v_mfma_f32_32x32x8_bf16_1k",
    "v_mfma_f32_16x16x8_bf16",
    "v_mfma_i32_16x16x16_i8",
    "v_mfma_i32_32x32x8_i8",
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("ML datatype extension: BF16 and INT8 Matrix Core "
                  "characterization");
    cli.addFlag("iters", static_cast<std::int64_t>(1000000),
                "operations per wavefront");
    cli.requireIntAtLeast("iters", 1);
    bench::addJobsFlag(cli);
    bench::addOutFlag(cli);
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    using Row = std::array<std::string, 7>;
    const std::vector<Row> rows = runner.map(
        sizeof(kInstructions) / sizeof(kInstructions[0]),
        [&](std::size_t i) -> Row {
            const char *name = kInstructions[i];
            const arch::MfmaInstruction *inst =
                arch::findInstruction(arch::GpuArch::Cdna2, name);
            if (inst == nullptr)
                mc_fatal("missing instruction ", name);

            sim::SimOptions opts;
            opts.enableNoise = false;
            hip::Runtime rt(arch::defaultCdna2(), opts);

            // Latency: one wavefront.
            const auto lat =
                rt.launch(wmma::mfmaLoopProfile(*inst, iters, 1), 0);
            const double cycles =
                lat.seconds * lat.effClockHz / static_cast<double>(iters);

            // Peaks: one GCD and the full package.
            const auto one =
                rt.launch(wmma::mfmaLoopProfile(*inst, iters, 440), 0);
            const auto pkg = rt.launchMulti(
                wmma::mfmaLoopProfile(*inst, iters, 440), {0, 1});

            char lat_c[16], one_c[16], pkg_c[16], pw_c[16], eff_c[16];
            std::snprintf(lat_c, sizeof(lat_c), "%.1f", cycles);
            std::snprintf(one_c, sizeof(one_c), "%.1f",
                          one.throughput() / 1e12);
            std::snprintf(pkg_c, sizeof(pkg_c), "%.1f",
                          pkg.throughput() / 1e12);
            std::snprintf(pw_c, sizeof(pw_c), "%.0f", pkg.avgPowerW);
            std::snprintf(eff_c, sizeof(eff_c), "%.0f",
                          pkg.throughput() / pkg.avgPowerW / 1e9);
            return Row{inst->mnemonic, inst->typeString(), lat_c, one_c,
                       pkg_c, pw_c, eff_c};
        });

    TextTable table({"instruction", "types", "latency (cyc)",
                     "1-GCD peak (T*OPS)", "pkg peak (T*OPS)",
                     "pkg power (W)", "G*OPS/W"});
    table.setTitle("BF16 / INT8 Matrix Core characterization "
                   "(methodology of Figs. 3-5)");
    table.setAlignment({Align::Left, Align::Left, Align::Right,
                        Align::Right, Align::Right, Align::Right,
                        Align::Right});
    for (const Row &row : rows)
        table.addRow(std::vector<std::string>(row.begin(), row.end()));

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();
    table.print(os);
    os << "\nThe '_1k' BF16 shapes run at the full FP16 rate; "
       << "the CDNA1-heritage BF16 shapes at half rate. INT8 "
       << "matches FP16 throughput at slightly better "
       << "energy/op.\n";
    return output.finish(kBenchName);
}
