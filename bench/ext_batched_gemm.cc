/**
 * @file
 * Extension study: strided-batched GEMM.
 *
 * The deep-learning workloads that motivated Matrix Cores rarely run
 * one huge GEMM; they run batches of small ones (attention heads,
 * per-sample layers). A single small GEMM cannot fill 440 Matrix Cores
 * — the low-N ramp of Figs. 6/7 — but the batched API amortizes
 * launches and fills the device. This sweep quantifies how much of the
 * mixed-precision plateau batching recovers at each entry size.
 *
 * Points run on the parallel sweep engine (--jobs) with per-point
 * simulated devices; the simulation is noise-free here, so output is
 * byte-identical for any job count (docs/SWEEP_ENGINE.md).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "ext_batched_gemm";

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Batched GEMM: throughput vs entry size and batch "
                  "count (HHS)");
    cli.addFlag("combo", std::string("hhs"), "GEMM combo");
    bench::addJobsFlag(cli);
    bench::addOutFlag(cli);
    bench::addPlanCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    const blas::GemmCombo combo =
        blas::parseCombo(cli.getString("combo"));

    const std::size_t sizes[] = {64, 128, 256, 512, 1024};
    const std::size_t batches[] = {1, 8, 64, 256, 1024};
    constexpr std::size_t kBatchCount =
        sizeof(batches) / sizeof(batches[0]);

    // One point per (entry size, batch count) cell, row-major.
    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    const std::vector<std::string> cells = runner.map(
        sizeof(sizes) / sizeof(sizes[0]) * kBatchCount,
        [&](std::size_t i) -> std::string {
            const std::size_t n = sizes[i / kBatchCount];
            const std::size_t batch = batches[i % kBatchCount];

            sim::SimOptions opts;
            opts.enableNoise = false;
            hip::Runtime rt(arch::defaultCdna2(), opts);
            blas::GemmEngine engine(rt);

            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            cfg.batchCount = batch;
            auto result = engine.run(cfg);
            if (!result.isOk())
                return "OOM";
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1f",
                          result.value().throughput() / 1e12);
            return cell;
        });

    TextTable table({"entry N", "batch 1", "batch 8", "batch 64",
                     "batch 256", "batch 1024"});
    table.setTitle(std::string("Batched ") +
                   blas::comboInfo(combo).name +
                   " throughput (TFLOPS), one GCD");
    std::size_t index = 0;
    for (std::size_t n : sizes) {
        std::vector<std::string> row{std::to_string(n)};
        for (std::size_t b = 0; b < kBatchCount; ++b)
            row.push_back(cells[index++]);
        table.addRow(row);
    }

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();
    table.print(os);
    os << "\nBatching turns the launch-bound low-N region of "
          "Fig. 7 into plateau-class throughput: the Matrix "
          "Cores do not care whether the 2N^3 FLOPs come from "
          "one problem or a thousand.\n";
    return output.finish(kBenchName);
}
