/**
 * @file
 * Extension study: strided-batched GEMM.
 *
 * The deep-learning workloads that motivated Matrix Cores rarely run
 * one huge GEMM; they run batches of small ones (attention heads,
 * per-sample layers). A single small GEMM cannot fill 440 Matrix Cores
 * — the low-N ramp of Figs. 6/7 — but the batched API amortizes
 * launches and fills the device. This sweep quantifies how much of the
 * mixed-precision plateau batching recovers at each entry size.
 *
 * Points run on the parallel sweep engine (--jobs) with per-point
 * simulated devices; the simulation is noise-free here, so output is
 * byte-identical for any job count (docs/SWEEP_ENGINE.md). Each point
 * is host-verified through the strided-batched fast-GEMM driver
 * (--verify*; up to blas::kMaxVerifyBatchEntries distinct entries with
 * a shared stride-0 B, so the packed-operand reuse path is exercised,
 * not just a single slice); a failed check fails the point.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "ext_batched_gemm";

struct PointResult
{
    std::string cell;
    /** -1 = point not host-verified (disabled or above --verify-maxn),
     *  1 = verified OK. A failed verification fails the whole point
     *  with Internal instead. */
    int verified = -1;
    /** Max ULP distance the verification observed (0 when unchecked). */
    std::uint64_t maxUlp = 0;
    /** Distinct batch entries the check executed (strided-batched). */
    std::size_t entries = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Batched GEMM: throughput vs entry size and batch "
                  "count (HHS)");
    cli.addFlag("combo", std::string("hhs"), "GEMM combo");
    bench::addJobsFlag(cli);
    bench::addOutFlag(cli);
    bench::addVerifyFlags(cli, /*default_enabled=*/true);
    bench::addPlanCacheFlag(cli);
    bench::addPackCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    bench::applyPackCacheFlag(cli);
    const blas::GemmCombo combo =
        blas::parseCombo(cli.getString("combo"));
    const bench::VerifyConfig vcfg = bench::verifyFlags(cli);

    const std::size_t sizes[] = {64, 128, 256, 512, 1024};
    const std::size_t batches[] = {1, 8, 64, 256, 1024};
    constexpr std::size_t kBatchCount =
        sizeof(batches) / sizeof(batches[0]);

    // One point per (entry size, batch count) cell, row-major.
    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    const std::vector<Result<PointResult>> cells = runner.mapResult(
        sizeof(sizes) / sizeof(sizes[0]) * kBatchCount,
        [&](std::size_t i) -> Result<PointResult> {
            const std::size_t n = sizes[i / kBatchCount];
            const std::size_t batch = batches[i % kBatchCount];
            const std::string key = std::to_string(n) + "x" +
                                    std::to_string(batch);

            sim::SimOptions opts;
            opts.enableNoise = false;
            hip::Runtime rt(arch::defaultCdna2(), opts);
            blas::GemmEngine engine(rt);

            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            cfg.batchCount = batch;
            auto result = engine.run(cfg);
            PointResult out;
            if (!result.isOk()) {
                out.cell = "OOM";
                return out;
            }
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1f",
                          result.value().throughput() / 1e12);
            out.cell = cell;

            // Host-side numeric verification (docs/PERF.md): batched
            // configs run min(batch, kMaxVerifyBatchEntries) distinct
            // entries through fastBatchedGemm / the tiled batched
            // driver with a shared stride-0 B. A wrong result
            // invalidates the measurement, so a failed check fails
            // the point.
            if (vcfg.shouldVerify(cfg.m, cfg.n, cfg.k)) {
                engine.functionalOptions() = vcfg.func;
                const blas::VerifyResult v = engine.verify(
                    cfg, vcfg.scheme, runner.seedFor(key, 1ull << 32));
                if (!v.passed)
                    return Status(ErrorCode::Internal,
                                  "verification failed: " + v.detail);
                out.verified = 1;
                out.maxUlp = v.maxUlp;
                out.entries = v.batchEntries;
            }
            return out;
        });

    TextTable table({"entry N", "batch 1", "batch 8", "batch 64",
                     "batch 256", "batch 1024", "verified"});
    table.setTitle(std::string("Batched ") +
                   blas::comboInfo(combo).name +
                   " throughput (TFLOPS), one GCD");
    std::vector<bench::FailedPoint> failures;
    std::size_t verified_points = 0;
    std::size_t verified_entries = 0;
    std::uint64_t verified_max_ulp = 0;
    std::size_t index = 0;
    for (std::size_t n : sizes) {
        std::vector<std::string> row{std::to_string(n)};
        bool row_verified = false;
        std::uint64_t row_ulp = 0;
        for (std::size_t b = 0; b < kBatchCount; ++b) {
            const std::size_t point_index = index++;
            if (!cells[point_index].isOk()) {
                const Status &status = cells[point_index].status();
                if (!exec::SweepRunner::isSkippedPointStatus(status))
                    failures.push_back(
                        {point_index,
                         std::to_string(n) + "x" +
                             std::to_string(batches[b]),
                         status});
                row.push_back(std::string("failed: ") +
                              errorCodeName(status.code()));
                continue;
            }
            const PointResult &r = cells[point_index].value();
            row.push_back(r.cell);
            if (r.verified > 0) {
                ++verified_points;
                verified_entries += r.entries;
                verified_max_ulp = std::max(verified_max_ulp, r.maxUlp);
                row_verified = true;
                row_ulp = std::max(row_ulp, r.maxUlp);
            }
        }
        row.push_back(row_verified
                          ? "ok ulp=" + std::to_string(row_ulp)
                          : "-");
        table.addRow(row);
    }

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();
    table.print(os);
    if (verified_points > 0)
        os << "\nverification: " << verified_points
           << " points host-verified (" << verified_entries
           << " batch entries via the strided-batched driver), "
              "max ULP = "
           << verified_max_ulp << "\n";
    os << "\nBatching turns the launch-bound low-N region of "
          "Fig. 7 into plateau-class throughput: the Matrix "
          "Cores do not care whether the 2N^3 FLOPs come from "
          "one problem or a thousand.\n";
    bench::printSweepSummary(kBenchName, index, failures,
                             runner.lastStats().skipped, 0);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
