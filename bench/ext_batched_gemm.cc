/**
 * @file
 * Extension study: strided-batched GEMM.
 *
 * The deep-learning workloads that motivated Matrix Cores rarely run
 * one huge GEMM; they run batches of small ones (attention heads,
 * per-sample layers). A single small GEMM cannot fill 440 Matrix Cores
 * — the low-N ramp of Figs. 6/7 — but the batched API amortizes
 * launches and fills the device. This sweep quantifies how much of the
 * mixed-precision plateau batching recovers at each entry size.
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Batched GEMM: throughput vs entry size and batch "
                  "count (HHS)");
    cli.addFlag("combo", std::string("hhs"), "GEMM combo");
    cli.parse(argc, argv);
    const blas::GemmCombo combo =
        blas::parseCombo(cli.getString("combo"));

    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);

    const std::size_t batches[] = {1, 8, 64, 256, 1024};
    TextTable table({"entry N", "batch 1", "batch 8", "batch 64",
                     "batch 256", "batch 1024"});
    table.setTitle(std::string("Batched ") +
                   blas::comboInfo(combo).name +
                   " throughput (TFLOPS), one GCD");

    for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
        std::vector<std::string> row{std::to_string(n)};
        for (std::size_t batch : batches) {
            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            cfg.batchCount = batch;
            auto result = engine.run(cfg);
            if (!result.isOk()) {
                row.push_back("OOM");
                continue;
            }
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1f",
                          result.value().throughput() / 1e12);
            row.push_back(cell);
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nBatching turns the launch-bound low-N region of "
                 "Fig. 7 into plateau-class throughput: the Matrix "
                 "Cores do not care whether the 2N^3 FLOPs come from "
                 "one problem or a thousand.\n";
    return bench::finishBench("ext_batched_gemm");
}
