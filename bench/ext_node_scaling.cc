/**
 * @file
 * Extension study: node-level scaling on the paper's testbed shape
 * (four MI250X packages per node, the Frontier blade configuration).
 *
 * Packages are independent for the paper's workloads, so throughput
 * scales linearly while node power grows with the per-datatype slope —
 * which makes the datatype choice a *node power budget* decision: a
 * node of FP64-saturated MI250X draws ~2.2 kW, the same node on mixed
 * precision ~1.3 kW for 5x the FLOPs.
 */

#include <cstdio>
#include <iostream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/node.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Node-level scaling: 1-4 MI250X packages");
    cli.addFlag("packages", static_cast<std::int64_t>(4),
                "packages in the node");
    cli.addFlag("iters", static_cast<std::int64_t>(1000000),
                "MFMA operations per wavefront");
    cli.requireIntAtLeast("iters", 1);
    cli.parse(argc, argv);
    const int packages = static_cast<int>(cli.getInt("packages"));
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));

    sim::SimOptions opts;
    opts.enableNoise = false;
    sim::Node node(packages, arch::defaultCdna2(), opts);

    const struct { const char *label; const char *mnemonic; } series[] = {
        {"mixed", "v_mfma_f32_16x16x16_f16"},
        {"float", "v_mfma_f32_16x16x4_f32"},
        {"double", "v_mfma_f64_16x16x4_f64"},
    };

    for (const auto &s : series) {
        const arch::MfmaInstruction *inst =
            arch::findInstruction(arch::GpuArch::Cdna2, s.mnemonic);
        if (inst == nullptr)
            mc_fatal("missing instruction ", s.mnemonic);

        TextTable table({"packages", "node TFLOPS", "node power (W)",
                         "GFLOPS/W", "scaling eff."});
        table.setTitle(std::string("Node scaling [") + s.label + "]");

        double base = 0.0;
        const auto profile = wmma::mfmaLoopProfile(*inst, iters, 440);
        for (int p = 1; p <= packages; ++p) {
            const sim::NodeRunResult r = node.runEverywhere(profile, p);
            if (p == 1)
                base = r.throughput();
            char tf[16], pw[16], eff[16], scal[16];
            std::snprintf(tf, sizeof(tf), "%.1f",
                          r.throughput() / 1e12);
            std::snprintf(pw, sizeof(pw), "%.0f", r.totalPowerW);
            std::snprintf(eff, sizeof(eff), "%.0f",
                          r.efficiency() / 1e9);
            std::snprintf(scal, sizeof(scal), "%.1f%%",
                          100.0 * r.throughput() / (base * p));
            table.addRow({std::to_string(p), tf, pw, eff, scal});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "A saturated four-package node: ~1400 TFLOPS mixed at "
                 "~1.3 kW vs ~280 TFLOPS double at ~2.2 kW — the "
                 "paper's per-package efficiency gap, multiplied by "
                 "the node.\n";
    return bench::finishBench("ext_node_scaling");
}
