/**
 * @file
 * Figure 6: rocBLAS-style GEMM throughput for SGEMM and DGEMM over
 * N x N x N problems, N = 16 ... 65536, alpha = beta = 0.1, one GCD.
 * The sweep for each datatype ends where device memory is exhausted,
 * exactly as in the paper.
 */

#include <cstdio>
#include <iostream>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/plot.hh"
#include "common/table.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 6: SGEMM/DGEMM throughput vs matrix size");
    cli.addFlag("reps", static_cast<std::int64_t>(10),
                "measurement repetitions");
    cli.addFlag("maxn", static_cast<std::int64_t>(65536),
                "largest matrix dimension attempted");
    cli.addFlag("csv", false, "emit CSV instead of a table");
    cli.parse(argc, argv);
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));

    hip::Runtime rt;
    blas::GemmEngine engine(rt);

    CsvWriter csv(std::cout);
    if (cli.getBool("csv"))
        csv.writeRow({"combo", "n", "tflops", "macro_tile"});

    AsciiChart chart(64, 14);
    chart.setTitle("Figure 6 (rendered): GEMM throughput vs N");
    chart.setLogX(true);
    chart.setXLabel("N (log)");
    chart.setYLabel("TFLOPS");

    for (blas::GemmCombo combo :
         {blas::GemmCombo::Sgemm, blas::GemmCombo::Dgemm}) {
        const char *name = blas::comboInfo(combo).name;
        PlotSeries plot_series;
        plot_series.label = name;
        plot_series.marker = name[0];
        TextTable table({"N", "TFLOPS", "macro tile", "path"});
        table.setTitle(std::string("Figure 6 [") + name +
                       "]: N x N x N GEMM, alpha = beta = 0.1, 1 GCD");

        for (std::size_t n = 16; n <= maxn; n *= 2) {
            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;

            int macro_tile = 0;
            bool used_mc = false;
            bool oom = false;
            const auto m = bench::repeatMeasure([&]() {
                auto result = engine.run(cfg);
                if (!result.isOk()) {
                    oom = true;
                    return 0.0;
                }
                macro_tile = result.value().macroTile;
                used_mc = result.value().usedMatrixCores;
                return result.value().throughput();
            }, reps);
            if (oom) {
                table.addRow({std::to_string(n), "out of memory", "-",
                              "-"});
                break;
            }

            plot_series.points.emplace_back(static_cast<double>(n),
                                            m.value() / 1e12);
            if (cli.getBool("csv")) {
                csv.writeRow({name, std::to_string(n),
                              bench::tflopsCell(m),
                              std::to_string(macro_tile)});
            } else {
                table.addRow({std::to_string(n), bench::tflopsCell(m),
                              std::to_string(macro_tile),
                              used_mc ? "MatrixCore" : "SIMD"});
            }
        }
        if (!cli.getBool("csv")) {
            table.print(std::cout);
            std::cout << "\n";
        }
        chart.addSeries(std::move(plot_series));
    }
    if (!cli.getBool("csv"))
        chart.print(std::cout);
    std::cout << "(paper Fig. 6: SGEMM peaks ~43 TFLOPS at N=8192 and "
                 "recovers near 65000; DGEMM peaks ~37 TFLOPS at "
                 "N=4096 and drops beyond)\n";
    return 0;
}
