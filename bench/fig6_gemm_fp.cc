/**
 * @file
 * Figure 6: rocBLAS-style GEMM throughput for SGEMM and DGEMM over
 * N x N x N problems, N = 16 ... 65536, alpha = beta = 0.1, one GCD.
 * The sweep for each datatype ends where device memory is exhausted,
 * exactly as in the paper.
 *
 * Sweep points run on the parallel sweep engine (--jobs): each point
 * owns its simulated device and derives its noise seeds from (bench,
 * point, repetition), so output is byte-identical for any job count.
 *
 * The resilience flags (--inject, --max-point-failures, --journal,
 * --resume; see docs/RESILIENCE.md) exercise the fault-injection
 * layer: failed points become table rows and a stderr summary instead
 * of aborting the sweep, and a journaled run can be resumed with only
 * the failed or missing points re-executed.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/plot.hh"
#include "common/table.hh"
#include "exec/journal.hh"
#include "exec/sweep_runner.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "fig6_gemm_fp";

struct Point
{
    blas::GemmCombo combo;
    std::size_t n;
};

struct PointResult
{
    bench::Measurement m;
    int macroTile = 0;
    bool usedMatrixCores = false;
    std::uint64_t plansComputed = 0;
    std::uint64_t planCacheHits = 0;
    /** -1 = not host-verified (disabled or above --verify-maxn),
     *  1 = verified OK. A failed verification fails the whole point
     *  (Internal), so 0 never reaches the renderer. */
    int verified = -1;
    /** Max ULP distance the verification observed (0 when unchecked). */
    std::uint64_t maxUlp = 0;
};

/** Render the verification cell ("-" / "ok ulp=N"). */
std::string
verifiedCell(const PointResult &r)
{
    if (r.verified < 0)
        return "-";
    return "ok ulp=" + std::to_string(r.maxUlp);
}

/**
 * Journal payload for one completed point. %.17g round-trips a double
 * exactly, so a resumed run renders journal-loaded points bit-for-bit
 * like the run that measured them.
 */
std::string
encodePoint(const PointResult &r)
{
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "%.17g,%.17g,%zu,%d,%d,%d,%d,%llu,%llu,%d,%llu",
                  r.m.stats.mean, r.m.stats.stddev, r.m.stats.count,
                  r.m.aborted ? 1 : 0, r.m.samplesTaken, r.macroTile,
                  r.usedMatrixCores ? 1 : 0,
                  static_cast<unsigned long long>(r.plansComputed),
                  static_cast<unsigned long long>(r.planCacheHits),
                  r.verified,
                  static_cast<unsigned long long>(r.maxUlp));
    return buf;
}

bool
decodePoint(const std::string &payload, PointResult &r)
{
    std::size_t count = 0;
    int aborted = 0, samples = 0, tile = 0, matrix_cores = 0;
    int verified = -1;
    unsigned long long plans = 0, hits = 0, ulp = 0;
    if (std::sscanf(payload.c_str(),
                    "%lg,%lg,%zu,%d,%d,%d,%d,%llu,%llu,%d,%llu",
                    &r.m.stats.mean, &r.m.stats.stddev, &count, &aborted,
                    &samples, &tile, &matrix_cores, &plans, &hits,
                    &verified, &ulp) != 11)
        return false;
    r.m.stats.count = count;
    r.m.aborted = aborted != 0;
    r.m.samplesTaken = samples;
    r.macroTile = tile;
    r.usedMatrixCores = matrix_cores != 0;
    r.plansComputed = plans;
    r.planCacheHits = hits;
    r.verified = verified;
    r.maxUlp = ulp;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 6: SGEMM/DGEMM throughput vs matrix size");
    bench::addRepsFlag(cli, 10);
    cli.addFlag("maxn", static_cast<std::int64_t>(65536),
                "largest matrix dimension attempted");
    cli.requireIntAtLeast("maxn", 16);
    cli.addFlag("csv", false, "emit CSV instead of a table");
    bench::addOutFlag(cli);
    bench::addJobsFlag(cli);
    bench::addResilienceFlags(cli);
    bench::addVerifyFlags(cli, /*default_enabled=*/true);
    bench::addPlanCacheFlag(cli);
    bench::addPackCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    bench::applyPackCacheFlag(cli);
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));
    const bench::SweepResilience res = bench::resilienceFlags(cli);
    const bench::VerifyConfig vcfg = bench::verifyFlags(cli);

    std::optional<exec::SweepJournal> journal;
    if (!res.journalPath.empty()) {
        auto opened = res.resume
            ? exec::SweepJournal::open(res.journalPath, kBenchName)
            : exec::SweepJournal::create(res.journalPath, kBenchName);
        if (!opened.isOk()) {
            std::fprintf(stderr, "[%s] journal: %s\n", kBenchName,
                         opened.status().toString().c_str());
            return bench::finishBench(kBenchName, opened.status().code());
        }
        journal.emplace(std::move(opened.value()));
    }

    const blas::GemmCombo combos[] = {blas::GemmCombo::Sgemm,
                                      blas::GemmCombo::Dgemm};
    std::vector<Point> points;
    for (blas::GemmCombo combo : combos)
        for (std::size_t n = 16; n <= maxn; n *= 2)
            points.push_back({combo, n});

    auto point_key = [&](const Point &pt) {
        return std::string(blas::comboInfo(pt.combo).name) + "/" +
               std::to_string(pt.n);
    };

    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    std::size_t resumed_points = 0;
    const std::vector<Result<PointResult>> results = runner.mapResult(
        points.size(),
        [&](std::size_t i) -> Result<PointResult> {
            const Point &pt = points[i];
            const std::string key = point_key(pt);

            if (res.resume && journal) {
                const exec::JournalEntry *entry = journal->find(i);
                PointResult loaded;
                if (entry && entry->ok() &&
                    decodePoint(entry->payload, loaded))
                    return loaded;
            }

            // Per-point injector, seeded from the point key so the
            // fault pattern is independent of --jobs and of which
            // points a resumed run re-executes.
            fault::Injector faults =
                res.injectorFor(runner.seedFor(key, 0));
            sim::SimOptions sim_opts;
            sim_opts.faults = faults.enabled() ? &faults : nullptr;
            hip::Runtime rt(arch::defaultCdna2(), sim_opts);
            blas::GemmEngine engine(rt);

            blas::GemmConfig cfg;
            cfg.combo = pt.combo;
            cfg.m = cfg.n = cfg.k = pt.n;
            cfg.alpha = cfg.beta = 0.1;

            PointResult out;
            bench::ResilientOptions ropts;
            ropts.repetitions = reps;
            ropts.deadlineSec = res.deadlineSec;
            auto measured = bench::repeatMeasureResilient(
                [&](int rep) -> Result<bench::TimedSample> {
                    // Seeded by the repetition index, not the attempt
                    // count: a retried rep re-measures the exact value
                    // an undisturbed run would have produced.
                    rt.gpu().reseedNoise(runner.seedFor(
                        key, static_cast<std::uint64_t>(rep)));
                    auto result = engine.run(cfg);
                    if (!result.isOk())
                        return result.status();
                    out.macroTile = result.value().macroTile;
                    out.usedMatrixCores = result.value().usedMatrixCores;
                    return bench::TimedSample{
                        result.value().throughput(),
                        result.value().kernel.seconds};
                },
                ropts);
            if (!measured.isOk()) {
                if (journal)
                    journal->record(
                        {i, key, measured.status().code(), ""});
                return measured.status();
            }
            out.m = measured.value();
            out.plansComputed = engine.planCache().misses();
            out.planCacheHits = engine.planCache().hits();

            // Host-side numeric verification through the fast
            // functional backend (docs/PERF.md). A wrong result
            // invalidates the measurement, so a failed check fails
            // the point, not just a column.
            if (!out.m.aborted && vcfg.shouldVerify(cfg.m, cfg.n, cfg.k)) {
                engine.functionalOptions() = vcfg.func;
                const blas::VerifyResult v = engine.verify(
                    cfg, vcfg.scheme, runner.seedFor(key, 1ull << 32));
                if (!v.passed) {
                    const Status status(ErrorCode::Internal,
                                        "verification failed: " + v.detail);
                    if (journal)
                        journal->record({i, key, status.code(), ""});
                    return status;
                }
                out.verified = 1;
                out.maxUlp = v.maxUlp;
            }
            if (journal)
                journal->record({i, key, ErrorCode::Ok, encodePoint(out)});
            return out;
        },
        res.maxPointFailures);
    if (res.resume && journal)
        resumed_points = journal->loadedOkCount();

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();
    CsvWriter csv(os);
    if (cli.getBool("csv"))
        csv.writeRow({"combo", "n", "tflops", "macro_tile", "verified"});

    AsciiChart chart(64, 14);
    chart.setTitle("Figure 6 (rendered): GEMM throughput vs N");
    chart.setLogX(true);
    chart.setXLabel("N (log)");
    chart.setYLabel("TFLOPS");

    std::vector<bench::FailedPoint> failures;
    std::uint64_t plans_computed = 0, plan_hits = 0;
    std::size_t verified_points = 0;
    std::uint64_t verified_max_ulp = 0;
    std::size_t index = 0;
    for (blas::GemmCombo combo : combos) {
        const char *name = blas::comboInfo(combo).name;
        PlotSeries plot_series;
        plot_series.label = name;
        plot_series.marker = name[0];
        TextTable table({"N", "TFLOPS", "macro tile", "path", "verified"});
        table.setTitle(std::string("Figure 6 [") + name +
                       "]: N x N x N GEMM, alpha = beta = 0.1, 1 GCD");

        bool oom = false;
        for (std::size_t n = 16; n <= maxn; n *= 2, ++index) {
            if (oom)
                continue; // sweep already terminated for this combo
            if (!results[index].isOk()) {
                const Status &status = results[index].status();
                if (!exec::SweepRunner::isSkippedPointStatus(status))
                    failures.push_back(
                        {index, point_key(points[index]), status});
                const std::string cell = std::string("failed: ") +
                                         errorCodeName(status.code());
                if (cli.getBool("csv"))
                    csv.writeRow({name, std::to_string(n), cell, "-", "-"});
                else
                    table.addRow({std::to_string(n), cell, "-", "-", "-"});
                continue;
            }
            const PointResult &r = results[index].value();
            plans_computed += r.plansComputed;
            plan_hits += r.planCacheHits;
            if (r.verified > 0) {
                ++verified_points;
                verified_max_ulp = std::max(verified_max_ulp, r.maxUlp);
            }
            if (r.m.aborted) {
                oom = true;
                table.addRow({std::to_string(n), "out of memory", "-",
                              "-", "-"});
                continue;
            }

            plot_series.points.emplace_back(static_cast<double>(n),
                                            r.m.value() / 1e12);
            if (cli.getBool("csv")) {
                csv.writeRow({name, std::to_string(n),
                              bench::tflopsCell(r.m),
                              std::to_string(r.macroTile),
                              verifiedCell(r)});
            } else {
                table.addRow({std::to_string(n), bench::tflopsCell(r.m),
                              std::to_string(r.macroTile),
                              r.usedMatrixCores ? "MatrixCore" : "SIMD",
                              verifiedCell(r)});
            }
        }
        if (!cli.getBool("csv")) {
            table.print(os);
            os << "\n";
        }
        chart.addSeries(std::move(plot_series));
    }
    if (!cli.getBool("csv")) {
        chart.print(os);
        os << "plan cache: " << plans_computed
           << " plans computed, " << plan_hits
           << " repetitions served from cache\n";
        if (verified_points > 0)
            os << "verification: " << verified_points
               << " points host-verified, max ULP = " << verified_max_ulp
               << "\n";
    }
    os << "(paper Fig. 6: SGEMM peaks ~43 TFLOPS at N=8192 and "
          "recovers near 65000; DGEMM peaks ~37 TFLOPS at "
          "N=4096 and drops beyond)\n";

    bench::printSweepSummary(kBenchName, points.size(), failures,
                             runner.lastStats().skipped, resumed_points);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
