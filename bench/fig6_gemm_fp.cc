/**
 * @file
 * Figure 6: rocBLAS-style GEMM throughput for SGEMM and DGEMM over
 * N x N x N problems, N = 16 ... 65536, alpha = beta = 0.1, one GCD.
 * The sweep for each datatype ends where device memory is exhausted,
 * exactly as in the paper.
 *
 * Sweep points run on the parallel sweep engine (--jobs): each point
 * owns its simulated device and derives its noise seeds from (bench,
 * point, repetition), so output is byte-identical for any job count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/plot.hh"
#include "common/table.hh"
#include "exec/sweep_runner.hh"

namespace {

using namespace mc;

struct Point
{
    blas::GemmCombo combo;
    std::size_t n;
};

struct PointResult
{
    bench::Measurement m;
    int macroTile = 0;
    bool usedMatrixCores = false;
    std::uint64_t plansComputed = 0;
    std::uint64_t planCacheHits = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Figure 6: SGEMM/DGEMM throughput vs matrix size");
    cli.addFlag("reps", static_cast<std::int64_t>(10),
                "measurement repetitions");
    cli.addFlag("maxn", static_cast<std::int64_t>(65536),
                "largest matrix dimension attempted");
    cli.addFlag("csv", false, "emit CSV instead of a table");
    bench::addJobsFlag(cli);
    cli.parse(argc, argv);
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto maxn = static_cast<std::size_t>(cli.getInt("maxn"));

    const blas::GemmCombo combos[] = {blas::GemmCombo::Sgemm,
                                      blas::GemmCombo::Dgemm};
    std::vector<Point> points;
    for (blas::GemmCombo combo : combos)
        for (std::size_t n = 16; n <= maxn; n *= 2)
            points.push_back({combo, n});

    exec::SweepRunner runner("fig6_gemm_fp", bench::jobsFlag(cli));
    const std::vector<PointResult> results =
        runner.map(points.size(), [&](std::size_t i) {
            const Point &pt = points[i];
            hip::Runtime rt;
            blas::GemmEngine engine(rt);

            blas::GemmConfig cfg;
            cfg.combo = pt.combo;
            cfg.m = cfg.n = cfg.k = pt.n;
            cfg.alpha = cfg.beta = 0.1;

            const std::string key =
                std::string(blas::comboInfo(pt.combo).name) + "/" +
                std::to_string(pt.n);

            PointResult out;
            int rep = 0;
            out.m = bench::repeatMeasureUntil(
                [&]() -> std::optional<double> {
                    rt.gpu().reseedNoise(runner.seedFor(key, rep++));
                    auto result = engine.run(cfg);
                    if (!result.isOk())
                        return std::nullopt;
                    out.macroTile = result.value().macroTile;
                    out.usedMatrixCores = result.value().usedMatrixCores;
                    return result.value().throughput();
                }, reps);
            out.plansComputed = engine.planCache().misses();
            out.planCacheHits = engine.planCache().hits();
            return out;
        });

    CsvWriter csv(std::cout);
    if (cli.getBool("csv"))
        csv.writeRow({"combo", "n", "tflops", "macro_tile"});

    AsciiChart chart(64, 14);
    chart.setTitle("Figure 6 (rendered): GEMM throughput vs N");
    chart.setLogX(true);
    chart.setXLabel("N (log)");
    chart.setYLabel("TFLOPS");

    std::uint64_t plans_computed = 0, plan_hits = 0;
    std::size_t index = 0;
    for (blas::GemmCombo combo : combos) {
        const char *name = blas::comboInfo(combo).name;
        PlotSeries plot_series;
        plot_series.label = name;
        plot_series.marker = name[0];
        TextTable table({"N", "TFLOPS", "macro tile", "path"});
        table.setTitle(std::string("Figure 6 [") + name +
                       "]: N x N x N GEMM, alpha = beta = 0.1, 1 GCD");

        bool oom = false;
        for (std::size_t n = 16; n <= maxn; n *= 2, ++index) {
            if (oom)
                continue; // sweep already terminated for this combo
            const PointResult &r = results[index];
            plans_computed += r.plansComputed;
            plan_hits += r.planCacheHits;
            if (r.m.aborted) {
                oom = true;
                table.addRow({std::to_string(n), "out of memory", "-",
                              "-"});
                continue;
            }

            plot_series.points.emplace_back(static_cast<double>(n),
                                            r.m.value() / 1e12);
            if (cli.getBool("csv")) {
                csv.writeRow({name, std::to_string(n),
                              bench::tflopsCell(r.m),
                              std::to_string(r.macroTile)});
            } else {
                table.addRow({std::to_string(n), bench::tflopsCell(r.m),
                              std::to_string(r.macroTile),
                              r.usedMatrixCores ? "MatrixCore" : "SIMD"});
            }
        }
        if (!cli.getBool("csv")) {
            table.print(std::cout);
            std::cout << "\n";
        }
        chart.addSeries(std::move(plot_series));
    }
    if (!cli.getBool("csv")) {
        chart.print(std::cout);
        std::printf("plan cache: %llu plans computed, %llu repetitions "
                    "served from cache\n",
                    static_cast<unsigned long long>(plans_computed),
                    static_cast<unsigned long long>(plan_hits));
    }
    std::cout << "(paper Fig. 6: SGEMM peaks ~43 TFLOPS at N=8192 and "
                 "recovers near 65000; DGEMM peaks ~37 TFLOPS at "
                 "N=4096 and drops beyond)\n";
    return 0;
}
