/**
 * @file
 * Ablation: macro-tile size of the GEMM engine.
 *
 * The tile edge trades occupancy (small tiles fill more CUs on small
 * problems) against arithmetic intensity (large tiles cut HBM panel
 * traffic on large problems). This sweep explains the two tile-
 * selection rules DESIGN.md calls out: shrink when the grid cannot
 * fill the device, widen at the far end of the paper's Fig. 6 sweep.
 */

#include <cstdio>
#include <iostream>

#include "bench/common/bench_util.hh"
#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/table.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: SGEMM throughput vs forced macro-tile "
                  "size");
    cli.addFlag("combo", std::string("sgemm"), "GEMM combo to sweep");
    cli.parse(argc, argv);
    const blas::GemmCombo combo = blas::parseCombo(cli.getString("combo"));

    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);

    const int tiles[] = {32, 64, 128, 256};
    TextTable table({"N", "mt=32", "mt=64", "mt=128", "mt=256",
                     "heuristic (tile)"});
    table.setTitle(std::string("Ablation [") +
                   blas::comboInfo(combo).name +
                   "]: TFLOPS vs forced macro-tile edge");

    for (std::size_t n : {512u, 1024u, 4096u, 16384u, 65536u}) {
        std::vector<std::string> row{std::to_string(n)};
        for (int tile : tiles) {
            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            cfg.forceMacroTile = tile;
            auto result = engine.run(cfg);
            if (!result.isOk()) {
                row.push_back("OOM");
                continue;
            }
            char cell[16];
            std::snprintf(cell, sizeof(cell), "%.1f",
                          result.value().throughput() / 1e12);
            row.push_back(cell);
        }
        blas::GemmConfig cfg;
        cfg.combo = combo;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;
        auto natural = engine.run(cfg);
        if (natural.isOk()) {
            char cell[24];
            std::snprintf(cell, sizeof(cell), "%.1f (%d)",
                          natural.value().throughput() / 1e12,
                          natural.value().macroTile);
            row.push_back(cell);
        } else {
            row.push_back("OOM");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nSmall problems favour small tiles (occupancy); "
                 "large problems favour wide tiles (panel reuse). The "
                 "heuristic tracks the best forced choice.\n";
    return bench::finishBench("ablation_tilesize");
}
