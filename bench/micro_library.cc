/**
 * @file
 * google-benchmark microbenchmarks of the library's own hot paths:
 * FP16/BF16 conversion, layout mapping, functional MFMA execution,
 * GEMM planning, counter queries, and power-trace integration. These
 * guard the simulator's usability (a planner that takes milliseconds
 * would make the 65536-point sweeps unpleasant).
 */

#include <benchmark/benchmark.h>

#include "arch/mfma_exec.hh"
#include "blas/functional.hh"
#include "blas/tiling.hh"
#include "blas/verify.hh"
#include "common/random.hh"
#include "fp/half.hh"
#include "prof/profiler.hh"
#include "sim/power.hh"

namespace {

using namespace mc;

void
BM_HalfFromFloat(benchmark::State &state)
{
    Rng rng(1);
    std::vector<float> inputs(4096);
    for (auto &v : inputs)
        v = static_cast<float>(rng.uniform(-1000.0, 1000.0));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fp::Half(inputs[i++ & 4095]).bits());
    }
}
BENCHMARK(BM_HalfFromFloat);

void
BM_HalfToFloat(benchmark::State &state)
{
    std::uint16_t bits = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fp::Half::fromBits(bits++).toFloat());
    }
}
BENCHMARK(BM_HalfToFloat);

void
BM_BFloat16RoundTrip(benchmark::State &state)
{
    float v = 1.0f;
    for (auto _ : state) {
        v = fp::BFloat16(v * 1.0001f).toFloat();
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_BFloat16RoundTrip);

void
BM_LayoutLocationOf(benchmark::State &state)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    const arch::OperandLayout layout(*inst, arch::Operand::A);
    int r = 0, c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            layout.locationOf(arch::ElementCoord{0, r, c}));
        r = (r + 1) & 15;
        c = (c + 3) & 15;
    }
}
BENCHMARK(BM_LayoutLocationOf);

void
BM_MfmaExecute16x16x16F16(benchmark::State &state)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    Rng rng(2);
    std::vector<fp::Half> a(256), b(256);
    std::vector<float> c(256), d(256);
    for (int i = 0; i < 256; ++i) {
        a[i] = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
        b[i] = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
        c[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    for (auto _ : state) {
        arch::executeMfma<float, fp::Half>(*inst, a.data(), b.data(),
                                           c.data(), d.data());
        benchmark::DoNotOptimize(d[0]);
    }
    state.SetItemsProcessed(state.iterations() *
                            inst->flopsPerInstruction());
}
BENCHMARK(BM_MfmaExecute16x16x16F16);

void
BM_MfmaExecute16x16x4F64(benchmark::State &state)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    Rng rng(3);
    std::vector<double> a(64), b(64), c(256), d(256);
    for (auto &v : a)
        v = rng.uniform(-1, 1);
    for (auto &v : b)
        v = rng.uniform(-1, 1);
    for (auto _ : state) {
        arch::executeMfma<double, double>(*inst, a.data(), b.data(),
                                          c.data(), d.data());
        benchmark::DoNotOptimize(d[0]);
    }
}
BENCHMARK(BM_MfmaExecute16x16x4F64);

void
BM_GemmPlanning(benchmark::State &state)
{
    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Sgemm;
    cfg.m = cfg.n = cfg.k = static_cast<std::size_t>(state.range(0));
    cfg.alpha = cfg.beta = 0.1;
    const auto &cal = arch::defaultCdna2();
    for (auto _ : state) {
        benchmark::DoNotOptimize(blas::planGemm(cfg, cal).mfmaInstsTotal);
    }
}
BENCHMARK(BM_GemmPlanning)->Arg(256)->Arg(8192)->Arg(65536);

void
BM_Eq1FlopDerivation(benchmark::State &state)
{
    sim::HwCounters counters;
    counters.addMfmaOps(arch::DataType::F64, 512 * 1000000, 100000);
    counters.addValu(arch::DataType::F64, sim::ValuOp::Add, 12345);
    counters.addValu(arch::DataType::F64, sim::ValuOp::Fma, 6789);
    for (auto _ : state) {
        benchmark::DoNotOptimize(prof::totalFlopsAllTypes(counters));
    }
}
BENCHMARK(BM_Eq1FlopDerivation);

void
BM_PowerTraceAverage(benchmark::State &state)
{
    sim::PowerTrace trace(88.0);
    for (int i = 0; i < 1000; ++i)
        trace.addSegment(i * 1.0, i * 1.0 + 0.8, 300.0 + (i % 7));
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trace.averageWatts(t, t + 50.0));
        t += 0.37;
        if (t > 900.0)
            t = 0.0;
    }
}
BENCHMARK(BM_PowerTraceAverage);

void
BM_TiledMatrixCoreGemm64(benchmark::State &state)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    Rng rng(5);
    const std::size_t n = 64;
    Matrix<fp::Half> a(n, n), b(n, n);
    Matrix<float> c(n, n), d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
            b(i, j) = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
            c(i, j) = static_cast<float>(rng.uniform(-1, 1));
        }
    }
    for (auto _ : state) {
        blas::tiledMatrixCoreGemm<float, fp::Half, float>(
            *inst, 0.1, a, b, 0.1, c, d);
        benchmark::DoNotOptimize(d(0, 0));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_TiledMatrixCoreGemm64);

void
BM_SimulatedKernelRun(benchmark::State &state)
{
    // Cost of one full cycle-accounting device run: the quantity that
    // bounds how fast the figure sweeps execute.
    sim::SimOptions opts;
    opts.enableNoise = false;
    sim::Mi250x gpu(arch::defaultCdna2(), opts);
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    sim::KernelProfile profile;
    profile.label = "bench";
    profile.numWavefronts = 440;
    profile.addMfma(inst, 10000000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gpu.measureKernel(profile).seconds);
    }
}
BENCHMARK(BM_SimulatedKernelRun);

void
BM_ContributionTraceQuery(benchmark::State &state)
{
    sim::ContributionTrace trace(88.0);
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        const double start = rng.uniform(0.0, 1000.0);
        trace.addContribution(start, start + rng.uniform(0.1, 5.0),
                              rng.uniform(50.0, 300.0));
    }
    double t = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(trace.wattsAt(t));
        t += 0.7;
        if (t > 1000.0)
            t = 0.0;
    }
}
BENCHMARK(BM_ContributionTraceQuery);

void
BM_VerifyGemm64(benchmark::State &state)
{
    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Sgemm;
    cfg.m = cfg.n = cfg.k = 64;
    cfg.alpha = cfg.beta = 0.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            blas::verifyGemm(cfg, blas::VerifyScheme::Random,
                             state.iterations())
                .passed);
    }
}
BENCHMARK(BM_VerifyGemm64);

void
BM_ScatterGatherRegisters(benchmark::State &state)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_32x32x8_f16");
    std::vector<fp::Half> a(32 * 8, fp::Half(1.0f));
    for (auto _ : state) {
        auto regs = arch::scatterToRegisters(*inst, arch::Operand::A,
                                             a.data());
        benchmark::DoNotOptimize(regs.at(0, 0));
    }
}
BENCHMARK(BM_ScatterGatherRegisters);

} // namespace

BENCHMARK_MAIN();
