/**
 * @file
 * Extension: a quantized GPT-2-style transformer block on the INT8
 * fast path, swept over sequence length. Each point runs the block's
 * GEMM chain — fused QKV projection, per-head attention scores and
 * context (strided-batched), output projection, and the 4x MLP pair —
 * as i8gemm problems (int8 storage, int32 accumulate, requantize) on
 * one simulated GCD, reporting aggregate integer TOPS.
 *
 * Sweep points run on the parallel sweep engine (--jobs): each point
 * owns its simulated device and derives its noise seeds from (bench,
 * point, repetition), so output is byte-identical for any job count —
 * and independent of the host's integer-SIMD tier, which the forced-
 * tier ctest (cmake/CompareSimdTiers.cmake) enforces byte-for-byte.
 *
 * --verify host-checks each stage through the functional INT8 backend
 * against the scalar reference; the quantized combo's contract is
 * exact (docs/PERF.md "Integer kernels"), so any nonzero difference
 * fails the point. Batched attention stages verify through the
 * strided-batched INT8 driver and the packed-operand reuse layer
 * (docs/PERF.md "Operand packing & reuse").
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "blas/gemm.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/plot.hh"
#include "common/table.hh"
#include "exec/journal.hh"
#include "exec/sweep_runner.hh"

namespace {

using namespace mc;

constexpr const char *kBenchName = "ext_quant_transformer";

/** GPT-2 small: hidden 768, 12 heads of 64, 4x MLP. */
constexpr std::size_t kHidden = 768;
constexpr std::size_t kHeads = 12;
constexpr std::size_t kHeadDim = kHidden / kHeads;

struct Stage
{
    const char *name;
    std::size_t m, n, k, batch;
};

/** The block's GEMM chain at sequence length @p seq. */
std::vector<Stage>
blockStages(std::size_t seq)
{
    return {
        {"qkv_proj", seq, 3 * kHidden, kHidden, 1},
        {"attn_scores", seq, seq, kHeadDim, kHeads},
        {"attn_context", seq, kHeadDim, seq, kHeads},
        {"out_proj", seq, kHidden, kHidden, 1},
        {"mlp_up", seq, 4 * kHidden, kHidden, 1},
        {"mlp_down", seq, kHidden, 4 * kHidden, 1},
    };
}

/** Per-tensor quantization for every stage: asymmetric so the
 *  zero-point correction epilogue is part of the measured work. */
blas::QuantParams
blockQuant()
{
    blas::QuantParams qp;
    qp.scaleA = 0.02f;
    qp.scaleB = 0.05f;
    qp.scaleD = 0.25f;
    qp.zeroA = 3;
    qp.zeroB = -5;
    qp.zeroD = 1;
    return qp;
}

double
stageOps(const Stage &s)
{
    return 2.0 * static_cast<double>(s.batch) *
           static_cast<double>(s.m) * static_cast<double>(s.n) *
           static_cast<double>(s.k);
}

struct PointResult
{
    bench::Measurement m; ///< integer ops/s across the whole chain
    int matrixCoreStages = 0;
    int stages = 0;
    std::uint64_t plansComputed = 0;
    std::uint64_t planCacheHits = 0;
    /** -1 = not host-verified, otherwise the number of stages checked.
     *  The exactness contract means a surviving point verified with
     *  max |err| = 0; any mismatch failed the point outright. */
    int verifiedStages = -1;
};

std::string
verifiedCell(const PointResult &r)
{
    if (r.verifiedStages < 0)
        return "-";
    return "ok x" + std::to_string(r.verifiedStages) + " exact";
}

std::string
encodePoint(const PointResult &r)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%zu,%d,%d,%d,%d,%llu,%llu,%d",
                  r.m.stats.mean, r.m.stats.stddev, r.m.stats.count,
                  r.m.aborted ? 1 : 0, r.m.samplesTaken,
                  r.matrixCoreStages, r.stages,
                  static_cast<unsigned long long>(r.plansComputed),
                  static_cast<unsigned long long>(r.planCacheHits),
                  r.verifiedStages);
    return buf;
}

bool
decodePoint(const std::string &payload, PointResult &r)
{
    std::size_t count = 0;
    int aborted = 0, samples = 0;
    unsigned long long plans = 0, hits = 0;
    if (std::sscanf(payload.c_str(), "%lg,%lg,%zu,%d,%d,%d,%d,%llu,%llu,%d",
                    &r.m.stats.mean, &r.m.stats.stddev, &count, &aborted,
                    &samples, &r.matrixCoreStages, &r.stages, &plans,
                    &hits, &r.verifiedStages) != 10)
        return false;
    r.m.stats.count = count;
    r.m.aborted = aborted != 0;
    r.m.samplesTaken = samples;
    r.plansComputed = plans;
    r.planCacheHits = hits;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Extension: INT8-quantized transformer block "
                  "(GPT-2 small) vs sequence length");
    bench::addRepsFlag(cli, 10);
    cli.addFlag("maxseq", static_cast<std::int64_t>(2048),
                "largest sequence length attempted (sweep doubles "
                "from 128)");
    cli.requireIntAtLeast("maxseq", 128);
    cli.addFlag("csv", false, "emit CSV instead of a table");
    bench::addOutFlag(cli);
    bench::addJobsFlag(cli);
    bench::addResilienceFlags(cli);
    bench::addVerifyFlags(cli, /*default_enabled=*/true);
    bench::addPlanCacheFlag(cli);
    bench::addPackCacheFlag(cli);
    cli.parse(argc, argv);
    bench::applyPlanCacheFlag(cli);
    bench::applyPackCacheFlag(cli);
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto maxseq = static_cast<std::size_t>(cli.getInt("maxseq"));
    const bench::SweepResilience res = bench::resilienceFlags(cli);
    const bench::VerifyConfig vcfg = bench::verifyFlags(cli);

    std::optional<exec::SweepJournal> journal;
    if (!res.journalPath.empty()) {
        auto opened = res.resume
            ? exec::SweepJournal::open(res.journalPath, kBenchName)
            : exec::SweepJournal::create(res.journalPath, kBenchName);
        if (!opened.isOk()) {
            std::fprintf(stderr, "[%s] journal: %s\n", kBenchName,
                         opened.status().toString().c_str());
            return bench::finishBench(kBenchName, opened.status().code());
        }
        journal.emplace(std::move(opened.value()));
    }

    std::vector<std::size_t> points;
    for (std::size_t seq = 128; seq <= maxseq; seq *= 2)
        points.push_back(seq);

    auto point_key = [](std::size_t seq) {
        return "i8block/" + std::to_string(seq);
    };

    const blas::QuantParams qp = blockQuant();
    exec::SweepRunner runner(kBenchName, bench::jobsFlag(cli));
    std::size_t resumed_points = 0;
    const std::vector<Result<PointResult>> results = runner.mapResult(
        points.size(),
        [&](std::size_t i) -> Result<PointResult> {
            const std::size_t seq = points[i];
            const std::string key = point_key(seq);

            if (res.resume && journal) {
                const exec::JournalEntry *entry = journal->find(i);
                PointResult loaded;
                if (entry && entry->ok() &&
                    decodePoint(entry->payload, loaded))
                    return loaded;
            }

            fault::Injector faults =
                res.injectorFor(runner.seedFor(key, 0));
            sim::SimOptions sim_opts;
            sim_opts.faults = faults.enabled() ? &faults : nullptr;
            hip::Runtime rt(arch::defaultCdna2(), sim_opts);
            blas::GemmEngine engine(rt);

            const std::vector<Stage> stages = blockStages(seq);
            double total_ops = 0.0;
            for (const Stage &s : stages)
                total_ops += stageOps(s);

            PointResult out;
            out.stages = static_cast<int>(stages.size());
            bench::ResilientOptions ropts;
            ropts.repetitions = reps;
            ropts.deadlineSec = res.deadlineSec;
            auto measured = bench::repeatMeasureResilient(
                [&](int rep) -> Result<bench::TimedSample> {
                    rt.gpu().reseedNoise(runner.seedFor(
                        key, static_cast<std::uint64_t>(rep)));
                    double seconds = 0.0;
                    int mc_stages = 0;
                    for (const Stage &s : stages) {
                        blas::GemmConfig cfg;
                        cfg.combo = blas::GemmCombo::I8gemm;
                        cfg.m = s.m;
                        cfg.n = s.n;
                        cfg.k = s.k;
                        cfg.batchCount = s.batch;
                        cfg.alpha = 1.0;
                        cfg.beta = 0.0;
                        cfg.quant = qp;
                        auto result = engine.run(cfg);
                        if (!result.isOk())
                            return result.status();
                        seconds += result.value().kernel.seconds;
                        if (result.value().usedMatrixCores)
                            ++mc_stages;
                    }
                    out.matrixCoreStages = mc_stages;
                    return bench::TimedSample{total_ops / seconds,
                                              seconds};
                },
                ropts);
            if (!measured.isOk()) {
                if (journal)
                    journal->record(
                        {i, key, measured.status().code(), ""});
                return measured.status();
            }
            out.m = measured.value();
            out.plansComputed = engine.planCache().misses();
            out.planCacheHits = engine.planCache().hits();

            // Host-side exactness check: every stage small enough for
            // the O(m*n*k) functional backend runs scalar-vs-fast; the
            // quantized contract tolerates zero difference. The
            // attention stages carry their per-head batch count, so
            // their check runs through fastBatchedQuantizedGemm (up to
            // kMaxVerifyBatchEntries entries, shared stride-0 B) — the
            // same packed-operand reuse path mc_perf's qt chain times.
            if (!out.m.aborted) {
                int checked = 0;
                for (std::size_t si = 0; si < stages.size(); ++si) {
                    const Stage &s = stages[si];
                    if (!vcfg.shouldVerify(s.m, s.n, s.k))
                        continue;
                    blas::GemmConfig cfg;
                    cfg.combo = blas::GemmCombo::I8gemm;
                    cfg.m = s.m;
                    cfg.n = s.n;
                    cfg.k = s.k;
                    cfg.batchCount = s.batch;
                    cfg.alpha = 1.0;
                    cfg.beta = 0.0;
                    cfg.quant = qp;
                    engine.functionalOptions() = vcfg.func;
                    const blas::VerifyResult v = engine.verify(
                        cfg, vcfg.scheme,
                        runner.seedFor(key, (1ull << 32) + si));
                    if (!v.passed) {
                        const Status status(
                            ErrorCode::Internal,
                            std::string("verification failed [") +
                                s.name + "]: " + v.detail);
                        if (journal)
                            journal->record({i, key, status.code(), ""});
                        return status;
                    }
                    ++checked;
                }
                if (checked > 0)
                    out.verifiedStages = checked;
            }
            if (journal)
                journal->record({i, key, ErrorCode::Ok, encodePoint(out)});
            return out;
        },
        res.maxPointFailures);
    if (res.resume && journal)
        resumed_points = journal->loadedOkCount();

    bench::BenchOutput output(cli);
    std::ostream &os = output.stream();
    CsvWriter csv(os);
    if (cli.getBool("csv"))
        csv.writeRow({"seq", "tops", "mc_stages", "verified"});

    AsciiChart chart(64, 14);
    chart.setTitle("Extension (rendered): INT8 transformer block "
                   "throughput vs sequence length");
    chart.setLogX(true);
    chart.setXLabel("sequence length (log)");
    chart.setYLabel("TOPS");

    PlotSeries plot_series;
    plot_series.label = "i8 block";
    plot_series.marker = 'q';
    TextTable table({"seq", "TOPS", "MC stages", "verified"});
    table.setTitle("Extension: quantized GPT-2-small block (hidden 768,"
                   " 12 heads, 4x MLP), i8gemm chain, 1 GCD");

    std::vector<bench::FailedPoint> failures;
    std::uint64_t plans_computed = 0, plan_hits = 0;
    std::size_t verified_points = 0;
    for (std::size_t index = 0; index < points.size(); ++index) {
        const std::size_t seq = points[index];
        if (!results[index].isOk()) {
            const Status &status = results[index].status();
            if (!exec::SweepRunner::isSkippedPointStatus(status))
                failures.push_back({index, point_key(seq), status});
            const std::string cell = std::string("failed: ") +
                                     errorCodeName(status.code());
            if (cli.getBool("csv"))
                csv.writeRow({std::to_string(seq), cell, "-", "-"});
            else
                table.addRow({std::to_string(seq), cell, "-", "-"});
            continue;
        }
        const PointResult &r = results[index].value();
        plans_computed += r.plansComputed;
        plan_hits += r.planCacheHits;
        if (r.verifiedStages > 0)
            ++verified_points;
        if (r.m.aborted) {
            table.addRow({std::to_string(seq), "out of memory", "-",
                          "-"});
            continue;
        }

        plot_series.points.emplace_back(static_cast<double>(seq),
                                        r.m.value() / 1e12);
        const std::string mc_cell = std::to_string(r.matrixCoreStages) +
                                    "/" + std::to_string(r.stages);
        if (cli.getBool("csv")) {
            csv.writeRow({std::to_string(seq), bench::tflopsCell(r.m),
                          mc_cell, verifiedCell(r)});
        } else {
            table.addRow({std::to_string(seq), bench::tflopsCell(r.m),
                          mc_cell, verifiedCell(r)});
        }
    }
    if (!cli.getBool("csv")) {
        table.print(os);
        os << "\n";
        chart.addSeries(std::move(plot_series));
        chart.print(os);
        os << "plan cache: " << plans_computed << " plans computed, "
           << plan_hits << " repetitions served from cache\n";
        if (verified_points > 0)
            os << "verification: " << verified_points
               << " points host-verified against the scalar INT8 "
                  "reference (exact match)\n";
    }
    os << "(paper Table 1 / Fig. 8: the CDNA2 i8 MFMA path doubles "
          "f16 peak; the attention stages' small k = 64 panels keep "
          "the block below GEMM peak)\n";

    bench::printSweepSummary(kBenchName, points.size(), failures,
                             runner.lastStats().skipped, resumed_points);
    return output.finish(kBenchName, runner.lastStats().budgetExhausted
                                         ? ErrorCode::ResourceExhausted
                                         : ErrorCode::Ok);
}
