/**
 * @file
 * Ablation: sweeping the package power target.
 *
 * The paper observes one operating point (the 560 W cap, with FP64
 * regulating near 541 W). Following the GPU power-capping studies it
 * cites (Patki et al.), this ablation sweeps the governor target and
 * reports the throughput and efficiency each datatype achieves — FP64
 * is cap-sensitive across almost the whole range, while float and
 * mixed only start throttling near 320 W.
 */

#include <cstdio>
#include <iostream>

#include "arch/mfma_isa.hh"
#include "bench/common/bench_util.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/device.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: throughput vs package power target");
    cli.addFlag("iters", static_cast<std::int64_t>(1000000),
                "MFMA operations per wavefront");
    cli.requireIntAtLeast("iters", 1);
    cli.parse(argc, argv);
    const auto iters = static_cast<std::uint64_t>(cli.getInt("iters"));

    const struct { const char *label; const char *mnemonic; } series[] = {
        {"double", "v_mfma_f64_16x16x4_f64"},
        {"float", "v_mfma_f32_16x16x4_f32"},
        {"mixed", "v_mfma_f32_16x16x16_f16"},
    };
    const double caps[] = {560.0, 541.0, 450.0, 400.0, 350.0, 300.0,
                           250.0, 200.0};

    TextTable table({"target (W)", "double TFLOPS", "double GF/W",
                     "float TFLOPS", "float GF/W", "mixed TFLOPS",
                     "mixed GF/W"});
    table.setTitle("Throughput and efficiency vs power-governor target "
                   "(2 GCDs, saturated)");

    for (double cap : caps) {
        std::vector<std::string> row{std::to_string(
            static_cast<int>(cap))};
        for (const auto &s : series) {
            arch::Cdna2Calibration cal = arch::defaultCdna2();
            cal.dvfsTargetW = cap;
            sim::SimOptions opts;
            opts.enableNoise = false;
            sim::Mi250x gpu(cal, opts);

            const arch::MfmaInstruction *inst =
                arch::findInstruction(arch::GpuArch::Cdna2, s.mnemonic);
            if (inst == nullptr)
                mc_fatal("missing instruction ", s.mnemonic);
            const auto r = gpu.run(
                wmma::mfmaLoopProfile(*inst, iters, 440), {0, 1});

            char tf[16], eff[16];
            std::snprintf(tf, sizeof(tf), "%.1f%s",
                          r.throughput() / 1e12,
                          r.throttled ? "*" : "");
            std::snprintf(eff, sizeof(eff), "%.0f",
                          r.throughput() / r.avgPowerW / 1e9);
            row.emplace_back(tf);
            row.emplace_back(eff);
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(* = governor throttled). Under the linear Eq. 3 "
                 "power model, efficiency falls with tighter caps: "
                 "dynamic power scales with throughput while the base "
                 "power amortizes over fewer FLOPs. Real silicon can "
                 "gain efficiency from the voltage reduction that "
                 "accompanies frequency scaling — a quadratic term this "
                 "first-order model deliberately omits (the paper fits "
                 "a linear model too).\n";
    return bench::finishBench("ablation_powercap");
}
