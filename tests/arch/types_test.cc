/**
 * @file
 * Tests of the architecture-level type utilities.
 */

#include <gtest/gtest.h>

#include "arch/types.hh"

namespace mc {
namespace arch {
namespace {

TEST(DataTypes, NamesAndSizes)
{
    EXPECT_STREQ(dataTypeName(DataType::F64), "f64");
    EXPECT_STREQ(dataTypeName(DataType::F32), "f32");
    EXPECT_STREQ(dataTypeName(DataType::F16), "f16");
    EXPECT_STREQ(dataTypeName(DataType::BF16), "bf16");
    EXPECT_STREQ(dataTypeName(DataType::I8), "i8");
    EXPECT_STREQ(dataTypeName(DataType::I32), "i32");

    EXPECT_EQ(dataTypeBytes(DataType::F64), 8u);
    EXPECT_EQ(dataTypeBytes(DataType::F32), 4u);
    EXPECT_EQ(dataTypeBytes(DataType::F16), 2u);
    EXPECT_EQ(dataTypeBytes(DataType::BF16), 2u);
    EXPECT_EQ(dataTypeBytes(DataType::I8), 1u);
    EXPECT_EQ(dataTypeBytes(DataType::I32), 4u);
}

TEST(DataTypes, FloatPredicate)
{
    EXPECT_TRUE(isFloatType(DataType::F64));
    EXPECT_TRUE(isFloatType(DataType::BF16));
    EXPECT_FALSE(isFloatType(DataType::I8));
    EXPECT_FALSE(isFloatType(DataType::I32));
}

TEST(DataTypes, ParseAcceptsAliases)
{
    EXPECT_EQ(parseDataType("f64"), DataType::F64);
    EXPECT_EQ(parseDataType("fp64"), DataType::F64);
    EXPECT_EQ(parseDataType("double"), DataType::F64);
    EXPECT_EQ(parseDataType("half"), DataType::F16);
    EXPECT_EQ(parseDataType("bfloat16"), DataType::BF16);
    EXPECT_EQ(parseDataType("int8"), DataType::I8);
}

TEST(DataTypesDeathTest, ParseRejectsUnknown)
{
    EXPECT_EXIT(parseDataType("fp8"), ::testing::ExitedWithCode(1),
                "unknown datatype");
}

TEST(MfmaShape, FlopsIsTwoMnkPerBlock)
{
    const MfmaShape dense{16, 16, 16, 1};
    EXPECT_EQ(dense.flops(), 2ll * 16 * 16 * 16);

    const MfmaShape blocked{4, 4, 4, 16};
    EXPECT_EQ(blocked.flops(), 2ll * 4 * 4 * 4 * 16);
}

TEST(MfmaShape, ToStringFormats)
{
    EXPECT_EQ((MfmaShape{16, 16, 4, 1}).toString(), "16x16x4");
    EXPECT_EQ((MfmaShape{4, 4, 4, 16}).toString(), "4x4x4 (x16 blocks)");
}

TEST(MfmaShape, EqualityIsMemberwise)
{
    const MfmaShape a{16, 16, 4, 1};
    EXPECT_EQ(a, (MfmaShape{16, 16, 4, 1}));
    EXPECT_NE(a, (MfmaShape{16, 16, 4, 4}));
    EXPECT_NE(a, (MfmaShape{16, 16, 16, 1}));
}

TEST(Operands, Names)
{
    EXPECT_STREQ(operandName(Operand::A), "A");
    EXPECT_STREQ(operandName(Operand::D), "D");
}

} // namespace
} // namespace arch
} // namespace mc
