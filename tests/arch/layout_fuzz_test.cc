/**
 * @file
 * Fuzz tests of the layout calculator over *synthetic* instruction
 * shapes — every (m, n, k, blocks, waveSize) combination satisfying
 * the CDNA mapping family's divisibility constraints must produce a
 * bijective, self-inverse layout, not just the shapes in the shipped
 * tables.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/layout.hh"

namespace mc {
namespace arch {
namespace {

/** Whether the mapping family's constraints admit this shape. */
bool
shapeAdmissible(int m, int n, int k, int blocks, int wave)
{
    if (wave % blocks != 0)
        return false;
    const int lanes = wave / blocks;
    if (lanes % m != 0 || lanes % n != 0)
        return false;
    if (k % (lanes / m) != 0 || k % (lanes / n) != 0)
        return false;
    if ((m * n) % lanes != 0)
        return false;
    const int elems = (m * n) / lanes;
    const int sub = elems < 4 ? elems : 4;
    if (m % (sub * (lanes / n)) != 0)
        return false;
    return true;
}

MfmaInstruction
syntheticInstruction(int m, int n, int k, int blocks, int wave)
{
    MfmaInstruction inst;
    inst.mnemonic = "synthetic_" + std::to_string(m) + "x" +
                    std::to_string(n) + "x" + std::to_string(k) + "x" +
                    std::to_string(blocks) + "w" + std::to_string(wave);
    inst.arch = GpuArch::Cdna2;
    inst.typeCD = DataType::F32;
    inst.typeAB = DataType::F32;
    inst.shape = MfmaShape{m, n, k, blocks};
    inst.latencyCycles = 32;
    inst.waveSize = wave;
    return inst;
}

void
checkBijective(const MfmaInstruction &inst, Operand op)
{
    const OperandLayout layout(inst, op);
    std::set<std::pair<int, int>> seen;
    for (int blk = 0; blk < layout.blocks(); ++blk) {
        for (int r = 0; r < layout.rows(); ++r) {
            for (int c = 0; c < layout.cols(); ++c) {
                const ElementCoord coord{blk, r, c};
                const RegLocation loc = layout.locationOf(coord);
                ASSERT_TRUE(seen.insert({loc.lane, loc.slot}).second)
                    << inst.mnemonic << " " << operandName(op)
                    << " collides at (" << blk << "," << r << "," << c
                    << ")";
                ASSERT_EQ(layout.elementAt(loc), coord)
                    << inst.mnemonic << " " << operandName(op);
            }
        }
    }
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(layout.waveSize()) *
                               layout.elementsPerLane());
}

TEST(LayoutFuzz, AllAdmissibleShapesAreBijective)
{
    const int dims[] = {1, 2, 4, 8, 16, 32, 64};
    const int blocks_opts[] = {1, 2, 4, 8, 16};
    const int waves[] = {32, 64};

    int tested = 0;
    for (int wave : waves) {
        for (int m : dims) {
            for (int n : dims) {
                for (int k : dims) {
                    for (int blocks : blocks_opts) {
                        if (!shapeAdmissible(m, n, k, blocks, wave))
                            continue;
                        // Keep the sweep quick.
                        if (static_cast<long long>(m) * n * k * blocks >
                            16384)
                            continue;
                        const MfmaInstruction inst =
                            syntheticInstruction(m, n, k, blocks, wave);
                        for (Operand op :
                             {Operand::A, Operand::B, Operand::C,
                              Operand::D}) {
                            checkBijective(inst, op);
                        }
                        ++tested;
                    }
                }
            }
        }
    }
    // The sweep must have actually covered a healthy shape variety.
    EXPECT_GT(tested, 100);
}

TEST(LayoutFuzz, InadmissibleShapesPanicInsteadOfCorrupting)
{
    // lanesPerBlock not divisible by m.
    const MfmaInstruction bad = syntheticInstruction(48, 16, 4, 1, 64);
    EXPECT_DEATH(OperandLayout(bad, Operand::A), "not divisible");
}

} // namespace
} // namespace arch
} // namespace mc
