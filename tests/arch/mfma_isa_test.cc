/**
 * @file
 * Tests of the MFMA instruction tables against the paper's Table I
 * (supported shapes per architecture) and Table II (latencies), and of
 * the documented per-CU throughput rates.
 */

#include <gtest/gtest.h>

#include "arch/mfma_isa.hh"

namespace mc {
namespace arch {
namespace {

TEST(MfmaIsa, TableIIMeasuredLatencies)
{
    // The five rows of the paper's Table II.
    struct Row { const char *mnemonic; int latency; };
    const Row rows[] = {
        {"v_mfma_f32_32x32x2_f32", 64},
        {"v_mfma_f32_16x16x4_f32", 32},
        {"v_mfma_f32_32x32x8_f16", 64},
        {"v_mfma_f32_16x16x16_f16", 32},
        {"v_mfma_f64_16x16x4_f64", 32},
    };
    for (const Row &row : rows) {
        const MfmaInstruction *inst =
            findInstruction(GpuArch::Cdna2, row.mnemonic);
        ASSERT_NE(inst, nullptr) << row.mnemonic;
        EXPECT_EQ(inst->latencyCycles, row.latency) << row.mnemonic;
    }
}

TEST(MfmaIsa, TableISupportMatrix)
{
    using DT = DataType;
    // AMD CDNA2 column.
    EXPECT_TRUE(typesSupported(GpuArch::Cdna2, DT::F64, DT::F64));
    EXPECT_TRUE(typesSupported(GpuArch::Cdna2, DT::F32, DT::F32));
    EXPECT_TRUE(typesSupported(GpuArch::Cdna2, DT::F32, DT::F16));
    EXPECT_FALSE(typesSupported(GpuArch::Cdna2, DT::F16, DT::F16));
    // Nvidia Ampere column.
    EXPECT_TRUE(typesSupported(GpuArch::Ampere, DT::F64, DT::F64));
    EXPECT_FALSE(typesSupported(GpuArch::Ampere, DT::F32, DT::F32));
    EXPECT_TRUE(typesSupported(GpuArch::Ampere, DT::F32, DT::F16));
    EXPECT_TRUE(typesSupported(GpuArch::Ampere, DT::F16, DT::F16));
}

TEST(MfmaIsa, TableIShapes)
{
    using DT = DataType;
    // CDNA2 f64: 16x16x4 only (dense).
    EXPECT_NE(findInstruction(GpuArch::Cdna2, DT::F64, DT::F64,
                              MfmaShape{16, 16, 4, 1}), nullptr);
    // CDNA2 f32<-f32: 16x16x4 and 32x32x2.
    EXPECT_NE(findInstruction(GpuArch::Cdna2, DT::F32, DT::F32,
                              MfmaShape{16, 16, 4, 1}), nullptr);
    EXPECT_NE(findInstruction(GpuArch::Cdna2, DT::F32, DT::F32,
                              MfmaShape{32, 32, 2, 1}), nullptr);
    // CDNA2 f32<-f16: 16x16x16 and 32x32x8.
    EXPECT_NE(findInstruction(GpuArch::Cdna2, DT::F32, DT::F16,
                              MfmaShape{16, 16, 16, 1}), nullptr);
    EXPECT_NE(findInstruction(GpuArch::Cdna2, DT::F32, DT::F16,
                              MfmaShape{32, 32, 8, 1}), nullptr);
    // Ampere f64: 8x8x4.
    EXPECT_NE(findInstruction(GpuArch::Ampere, DT::F64, DT::F64,
                              MfmaShape{8, 8, 4, 1}), nullptr);
    // Ampere f32<-f16: 16x8x8 and 16x8x16.
    EXPECT_NE(findInstruction(GpuArch::Ampere, DT::F32, DT::F16,
                              MfmaShape{16, 8, 8, 1}), nullptr);
    EXPECT_NE(findInstruction(GpuArch::Ampere, DT::F32, DT::F16,
                              MfmaShape{16, 8, 16, 1}), nullptr);
}

TEST(MfmaIsa, MultiBlockParallelVariantsExist)
{
    // Section II: "with the shape 16x16x4, one can execute four parallel
    // matrix FMA operations for the datatypes FP32 <- FP16".
    const MfmaInstruction *inst = findInstruction(
        GpuArch::Cdna2, DataType::F32, DataType::F16,
        MfmaShape{16, 16, 4, 4});
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->shape.blocks, 4);
}

TEST(MfmaIsa, PerCuRatesMatchCdna2Documentation)
{
    // The CDNA2 whitepaper rates the paper quotes: 256 FP64 and FP32
    // FLOPS/CU/cycle, 1024 FP16 FLOPS/CU/cycle.
    const auto rate = [](const char *mnemonic) {
        const MfmaInstruction *inst =
            findInstruction(GpuArch::Cdna2, mnemonic);
        EXPECT_NE(inst, nullptr) << mnemonic;
        return inst ? inst->flopsPerCuPerCycle() : 0.0;
    };
    EXPECT_DOUBLE_EQ(rate("v_mfma_f64_16x16x4_f64"), 256.0);
    EXPECT_DOUBLE_EQ(rate("v_mfma_f32_16x16x4_f32"), 256.0);
    EXPECT_DOUBLE_EQ(rate("v_mfma_f32_32x32x2_f32"), 256.0);
    EXPECT_DOUBLE_EQ(rate("v_mfma_f32_16x16x16_f16"), 1024.0);
    EXPECT_DOUBLE_EQ(rate("v_mfma_f32_32x32x8_f16"), 1024.0);
    EXPECT_DOUBLE_EQ(rate("v_mfma_f32_4x4x1_16b_f32"), 256.0);
}

TEST(MfmaIsa, AmperePerSmRatesMatchDatasheet)
{
    // 2048 FP16 FLOP/SM/cycle (312 TFLOPS at 1.41 GHz x 108 SMs) and
    // 128 FP64 FLOP/SM/cycle (19.5 TFLOPS).
    const MfmaInstruction *hmma =
        findInstruction(GpuArch::Ampere, "mma.m16n8k16.f32.f16");
    ASSERT_NE(hmma, nullptr);
    EXPECT_DOUBLE_EQ(hmma->flopsPerCuPerCycle(), 2048.0);

    const MfmaInstruction *dmma =
        findInstruction(GpuArch::Ampere, "mma.m8n8k4.f64");
    ASSERT_NE(dmma, nullptr);
    EXPECT_DOUBLE_EQ(dmma->flopsPerCuPerCycle(), 128.0);
}

TEST(MfmaIsa, WaveSizesPerArch)
{
    for (const auto &inst : cdna2Instructions())
        EXPECT_EQ(inst.waveSize, 64) << inst.mnemonic;
    for (const auto &inst : ampereInstructions())
        EXPECT_EQ(inst.waveSize, 32) << inst.mnemonic;
}

TEST(MfmaIsa, MnemonicsAreUnique)
{
    for (GpuArch a : {GpuArch::Cdna2, GpuArch::Ampere}) {
        const auto &insts = instructionsFor(a);
        for (std::size_t i = 0; i < insts.size(); ++i) {
            for (std::size_t j = i + 1; j < insts.size(); ++j) {
                EXPECT_NE(insts[i].mnemonic, insts[j].mnemonic);
            }
        }
    }
}

TEST(MfmaIsa, FlopsDivisibleByMopsGranularity)
{
    // The MOPS counters increment once per 512 ops; every instruction's
    // op count must be a multiple for the counter model to be exact.
    for (GpuArch a : {GpuArch::Cdna2, GpuArch::Ampere}) {
        for (const auto &inst : instructionsFor(a)) {
            EXPECT_EQ(inst.flopsPerInstruction() % 512, 0)
                << inst.mnemonic;
        }
    }
}

TEST(MfmaIsa, LookupMissesReturnNull)
{
    EXPECT_EQ(findInstruction(GpuArch::Cdna2, "v_mfma_bogus"), nullptr);
    EXPECT_EQ(findInstruction(GpuArch::Cdna2, DataType::F16, DataType::F16,
                              MfmaShape{16, 16, 16, 1}), nullptr);
}

TEST(MfmaIsa, TypeStringFormat)
{
    const MfmaInstruction *inst =
        findInstruction(GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->typeString(), "f32 <- f16");
}

TEST(MfmaIsa, ArchNames)
{
    EXPECT_STREQ(gpuArchName(GpuArch::Cdna2), "AMD CDNA2");
    EXPECT_STREQ(gpuArchName(GpuArch::Ampere), "Nvidia Ampere");
}

} // namespace
} // namespace arch
} // namespace mc
