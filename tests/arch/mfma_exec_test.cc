/**
 * @file
 * Tests of the functional MFMA executor: against a plain reference,
 * through the register layouts, and for the precision semantics the
 * Matrix Core dataflow guarantees (FP32 accumulation of FP16 products).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/mfma_exec.hh"
#include "common/random.hh"

namespace mc {
namespace arch {
namespace {

template <typename T>
std::vector<T>
randomOperand(Rng &rng, std::size_t count, double lo = -2.0,
              double hi = 2.0)
{
    std::vector<T> out(count);
    for (auto &v : out)
        v = T(static_cast<float>(rng.uniform(lo, hi)));
    return out;
}

template <>
std::vector<double>
randomOperand<double>(Rng &rng, std::size_t count, double lo, double hi)
{
    std::vector<double> out(count);
    for (auto &v : out)
        v = rng.uniform(lo, hi);
    return out;
}

/** Naive per-block D = A*B + C in full double precision. */
template <typename TCD, typename TAB>
std::vector<double>
naiveReference(const MfmaInstruction &inst, const std::vector<TAB> &a,
               const std::vector<TAB> &b, const std::vector<TCD> &c)
{
    const int m = inst.shape.m, n = inst.shape.n, k = inst.shape.k;
    std::vector<double> d(static_cast<std::size_t>(m) * n *
                          inst.shape.blocks);
    for (int blk = 0; blk < inst.shape.blocks; ++blk) {
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
                double acc = static_cast<double>(
                    fp::NumericTraits<TCD>::widen(
                        c[static_cast<std::size_t>(blk) * m * n + i * n +
                          j]));
                for (int kk = 0; kk < k; ++kk) {
                    acc += static_cast<double>(
                               fp::NumericTraits<TAB>::widen(
                                   a[static_cast<std::size_t>(blk) * m * k +
                                     i * k + kk])) *
                           static_cast<double>(
                               fp::NumericTraits<TAB>::widen(
                                   b[static_cast<std::size_t>(blk) * k * n +
                                     kk * n + j]));
                }
                d[static_cast<std::size_t>(blk) * m * n + i * n + j] = acc;
            }
        }
    }
    return d;
}

template <typename TCD, typename TAB>
void
checkInstructionFunctional(const MfmaInstruction &inst, double tol)
{
    Rng rng(0xfeed ^ inst.shape.m ^ (inst.shape.k << 8));
    const std::size_t a_elems = static_cast<std::size_t>(inst.shape.m) *
                                inst.shape.k * inst.shape.blocks;
    const std::size_t b_elems = static_cast<std::size_t>(inst.shape.k) *
                                inst.shape.n * inst.shape.blocks;
    const std::size_t cd_elems = static_cast<std::size_t>(inst.shape.m) *
                                 inst.shape.n * inst.shape.blocks;

    const auto a = randomOperand<TAB>(rng, a_elems);
    const auto b = randomOperand<TAB>(rng, b_elems);
    const auto c = randomOperand<TCD>(rng, cd_elems);
    std::vector<TCD> d(cd_elems);

    executeMfma<TCD, TAB>(inst, a.data(), b.data(), c.data(), d.data());
    const std::vector<double> ref = naiveReference<TCD, TAB>(inst, a, b, c);

    for (std::size_t i = 0; i < cd_elems; ++i) {
        const double got = static_cast<double>(
            fp::NumericTraits<TCD>::widen(d[i]));
        EXPECT_NEAR(got, ref[i], tol)
            << inst.mnemonic << " element " << i;
    }

    // Through-register execution must agree exactly with the direct
    // path — this is the end-to-end check of the layout calculator.
    const auto a_regs = scatterToRegisters(inst, Operand::A, a.data());
    const auto b_regs = scatterToRegisters(inst, Operand::B, b.data());
    const auto c_regs = scatterToRegisters(inst, Operand::C, c.data());
    const auto d_regs =
        executeMfmaInRegisters<TCD, TAB>(inst, a_regs, b_regs, c_regs);
    std::vector<TCD> d2(cd_elems);
    gatherFromRegisters(inst, Operand::D, d_regs, d2.data());
    for (std::size_t i = 0; i < cd_elems; ++i) {
        EXPECT_EQ(static_cast<double>(fp::NumericTraits<TCD>::widen(d2[i])),
                  static_cast<double>(fp::NumericTraits<TCD>::widen(d[i])))
            << inst.mnemonic << " register-path element " << i;
    }
}

class MfmaExecAllInstructions
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(MfmaExecAllInstructions, MatchesReferenceBothPaths)
{
    const MfmaInstruction *inst = nullptr;
    for (GpuArch a : {GpuArch::Cdna1, GpuArch::Cdna2, GpuArch::Ampere}) {
        inst = findInstruction(a, GetParam());
        if (inst != nullptr)
            break;
    }
    ASSERT_NE(inst, nullptr);

    using DT = DataType;
    if (inst->typeCD == DT::F64 && inst->typeAB == DT::F64) {
        checkInstructionFunctional<double, double>(*inst, 1e-12);
    } else if (inst->typeCD == DT::F32 && inst->typeAB == DT::F32) {
        checkInstructionFunctional<float, float>(*inst, 1e-4);
    } else if (inst->typeCD == DT::F32 && inst->typeAB == DT::F16) {
        checkInstructionFunctional<float, fp::Half>(*inst, 1e-2);
    } else if (inst->typeCD == DT::F32 && inst->typeAB == DT::BF16) {
        checkInstructionFunctional<float, fp::BFloat16>(*inst, 5e-2);
    } else if (inst->typeCD == DT::I32 && inst->typeAB == DT::I8) {
        checkInstructionFunctional<std::int32_t, std::int8_t>(*inst, 0.0);
    } else if (inst->typeCD == DT::F16 && inst->typeAB == DT::F16) {
        // Ampere-only f16 accumulators: wider tolerance.
        checkInstructionFunctional<fp::Half, fp::Half>(*inst, 5e-2);
    } else {
        FAIL() << "unhandled type combination for " << inst->mnemonic;
    }
}

std::vector<std::string>
allMnemonics()
{
    std::vector<std::string> names;
    for (GpuArch a : {GpuArch::Cdna1, GpuArch::Cdna2, GpuArch::Ampere}) {
        for (const auto &inst : instructionsFor(a)) {
            // A few mnemonics are shared across generations with
            // identical semantics; test each once.
            if (std::find(names.begin(), names.end(), inst.mnemonic) ==
                names.end())
                names.push_back(inst.mnemonic);
        }
    }
    return names;
}

std::string
mnemonicName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string name = info.param;
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllInstructions, MfmaExecAllInstructions,
                         ::testing::ValuesIn(allMnemonics()),
                         mnemonicName);

TEST(MfmaExec, IdentityBGivesAPlusC)
{
    const MfmaInstruction *inst =
        findInstruction(GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    ASSERT_NE(inst, nullptr);
    // Use a 4x4 A placed in the k x n identity-compatible shape: with
    // m=16, k=4, choose B as the leading 4x16 "identity" slab.
    std::vector<double> a(16 * 4), b(4 * 16, 0.0), c(16 * 16, 1.0),
        d(16 * 16);
    Rng rng(51);
    for (auto &v : a)
        v = rng.uniform(-1.0, 1.0);
    for (int i = 0; i < 4; ++i)
        b[i * 16 + i] = 1.0;

    executeMfma<double, double>(*inst, a.data(), b.data(), c.data(),
                                d.data());
    for (int i = 0; i < 16; ++i) {
        for (int j = 0; j < 16; ++j) {
            const double expect = (j < 4 ? a[i * 4 + j] : 0.0) + 1.0;
            EXPECT_DOUBLE_EQ(d[i * 16 + j], expect);
        }
    }
}

TEST(MfmaExec, Fp16ProductsAccumulateInFp32)
{
    // 1 + 2^-11 is not representable in fp16, but the accumulator is
    // fp32: k products of 1*1 plus one of 2^-11... Construct: A row of
    // ones, B column with one entry 2^-11 rounded to fp16 (which is
    // representable as a half: 0x1.0p-11 = 2^-11, exponent fits), and
    // verify the fp32 sum keeps the small term that an fp16
    // accumulator would lose.
    const MfmaInstruction *inst =
        findInstruction(GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);

    std::vector<fp::Half> a(16 * 16, fp::Half(0.0f));
    std::vector<fp::Half> b(16 * 16, fp::Half(0.0f));
    std::vector<float> c(16 * 16, 0.0f), d(16 * 16);

    // Row 0 of A: a[0,0] = 1, a[0,1] = 1.
    a[0] = fp::Half(1.0f);
    a[1] = fp::Half(1.0f);
    // B: b[0,0] = 1, b[1,0] = 2^-11.
    b[0] = fp::Half(1.0f);
    b[16] = fp::Half(0x1.0p-11f);

    executeMfma<float, fp::Half>(*inst, a.data(), b.data(), c.data(),
                                 d.data());
    // fp32 accumulation keeps 1 + 2^-11 exactly; an fp16 accumulator
    // would have returned 1.0.
    EXPECT_EQ(d[0], 1.0f + 0x1.0p-11f);
}

TEST(MfmaExec, Int8SaturationSemantics)
{
    const MfmaInstruction *inst = findInstruction(
        GpuArch::Cdna2, "v_mfma_i32_16x16x16_i8");
    ASSERT_NE(inst, nullptr);
    std::vector<std::int8_t> a(16 * 16, 127), b(16 * 16, 127);
    std::vector<std::int32_t> c(16 * 16, 5), d(16 * 16);
    executeMfma<std::int32_t, std::int8_t>(*inst, a.data(), b.data(),
                                           c.data(), d.data());
    // 16 * 127 * 127 + 5 fits in i32: no saturation on the accumulator.
    EXPECT_EQ(d[0], 16 * 127 * 127 + 5);
}

TEST(MfmaExec, FragmentRegsBoundsChecked)
{
    FragmentRegs<float> regs(64, 4);
    regs.at(63, 3) = 1.0f;
    EXPECT_EQ(regs.at(63, 3), 1.0f);
    EXPECT_DEATH(regs.at(64, 0), "out of range");
    EXPECT_DEATH(regs.at(0, 4), "out of range");
}

} // namespace
} // namespace arch
} // namespace mc
