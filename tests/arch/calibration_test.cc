/**
 * @file
 * Tests pinning the calibration constants to the paper's published
 * values, so an accidental edit is caught as a regression.
 */

#include <gtest/gtest.h>

#include "arch/calibration.hh"

namespace mc {
namespace arch {
namespace {

TEST(Cdna2Calibration, TopologyMatchesMi250x)
{
    const Cdna2Calibration &cal = defaultCdna2();
    EXPECT_EQ(cal.gcdsPerPackage, 2);
    EXPECT_EQ(cal.cusPerGcd, 110);
    EXPECT_EQ(cal.matrixCoresPerCu, 4);
    EXPECT_EQ(cal.simdsPerCu, 4);
    EXPECT_EQ(cal.wavefrontSize, 64);
    EXPECT_EQ(cal.matrixCoresPerGcd(), 440); // Eq. 2's threshold
    EXPECT_DOUBLE_EQ(cal.clockHz, 1.7e9);    // the paper's f
}

TEST(Cdna2Calibration, MemorySystem)
{
    const Cdna2Calibration &cal = defaultCdna2();
    EXPECT_EQ(cal.hbmBytesPerGcd, 64ull << 30); // 64 GiB per GCD
    EXPECT_DOUBLE_EQ(cal.hbmBwPerGcd, 1.6e12);  // 3.2 TB/s per package
    EXPECT_EQ(cal.l2BytesPerGcd, 8ull << 20);
}

TEST(Cdna2Calibration, PowerConstants)
{
    const Cdna2Calibration &cal = defaultCdna2();
    EXPECT_DOUBLE_EQ(cal.powerCapW, 560.0);  // datasheet cap
    EXPECT_DOUBLE_EQ(cal.idlePowerW, 88.0);  // Section VI measurement
    EXPECT_DOUBLE_EQ(cal.dvfsTargetW, 541.0); // FP64-peak observation
}

TEST(Cdna2Calibration, Eq3Coefficients)
{
    const Cdna2Calibration &cal = defaultCdna2();
    // Slopes in W per TFLOPS == energy per flop in J * 1e12.
    EXPECT_DOUBLE_EQ(cal.f64.energyPerFlopJ * 1e12, 5.88);
    EXPECT_DOUBLE_EQ(cal.f32.energyPerFlopJ * 1e12, 2.18);
    EXPECT_DOUBLE_EQ(cal.f16.energyPerFlopJ * 1e12, 0.61);
    EXPECT_DOUBLE_EQ(cal.f64.basePowerW, 130.0);
    EXPECT_DOUBLE_EQ(cal.f32.basePowerW, 125.5);
    EXPECT_DOUBLE_EQ(cal.f16.basePowerW, 123.0);
}

TEST(Cdna2Calibration, PerfLookupCoversAllTypes)
{
    const Cdna2Calibration &cal = defaultCdna2();
    EXPECT_EQ(&cal.perfFor(DataType::F64), &cal.f64);
    EXPECT_EQ(&cal.perfFor(DataType::F32), &cal.f32);
    EXPECT_EQ(&cal.perfFor(DataType::F16), &cal.f16);
    EXPECT_EQ(&cal.perfFor(DataType::BF16), &cal.bf16);
    EXPECT_EQ(&cal.perfFor(DataType::I8), &cal.i8);
}

TEST(Cdna2Calibration, TheoreticalPeaksFollowFromConstants)
{
    const Cdna2Calibration &cal = defaultCdna2();
    // 1024 FP16 FLOPS/CU/cycle x 110 CUs x 1.7 GHz x 2 GCDs = 383 TFLOPS
    // (the advertised mixed-precision peak).
    const double mixed_peak =
        1024.0 * cal.cusPerGcd * cal.clockHz * cal.gcdsPerPackage;
    EXPECT_NEAR(mixed_peak / 1e12, 383.0, 0.5);
    // 256 FP64 FLOPS/CU/cycle -> 95.7 TFLOPS per package.
    const double double_peak =
        256.0 * cal.cusPerGcd * cal.clockHz * cal.gcdsPerPackage;
    EXPECT_NEAR(double_peak / 1e12, 95.7, 0.1);
}

TEST(AmpereCalibration, TopologyMatchesA100)
{
    const AmpereCalibration &cal = defaultAmpere();
    EXPECT_EQ(cal.smCount, 108);
    EXPECT_EQ(cal.tensorCoresPerSm, 4);
    EXPECT_EQ(cal.warpSize, 32);
    EXPECT_DOUBLE_EQ(cal.clockHz, 1.41e9);
    EXPECT_EQ(cal.hbmBytes, 40ull << 30);
}

TEST(AmpereCalibration, TheoreticalPeaksFollowFromConstants)
{
    const AmpereCalibration &cal = defaultAmpere();
    const double mixed_peak = 2048.0 * cal.smCount * cal.clockHz;
    EXPECT_NEAR(mixed_peak / 1e12, 312.0, 0.5);
    const double double_peak = 128.0 * cal.smCount * cal.clockHz;
    EXPECT_NEAR(double_peak / 1e12, 19.5, 0.1);
}

TEST(AmpereCalibration, OverheadLookup)
{
    const AmpereCalibration &cal = defaultAmpere();
    EXPECT_DOUBLE_EQ(cal.issueOverheadFor(DataType::F64),
                     cal.issueOverheadF64);
    EXPECT_DOUBLE_EQ(cal.issueOverheadFor(DataType::F16),
                     cal.issueOverheadF16);
    EXPECT_DOUBLE_EQ(cal.issueOverheadFor(DataType::BF16),
                     cal.issueOverheadF16);
}

} // namespace
} // namespace arch
} // namespace mc
