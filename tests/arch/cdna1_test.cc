/**
 * @file
 * Tests of the first-generation (MI100 / CDNA1) model: instruction
 * table gaps and rates, calibration, and the generational GEMM
 * behaviour (FP64 falls back to SIMDs).
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace arch {
namespace {

TEST(Cdna1Isa, NoFp64MatrixInstructions)
{
    EXPECT_FALSE(typesSupported(GpuArch::Cdna1, DataType::F64,
                                DataType::F64));
    for (const auto &inst : cdna1Instructions()) {
        EXPECT_NE(inst.typeAB, DataType::F64) << inst.mnemonic;
        EXPECT_NE(inst.typeCD, DataType::F64) << inst.mnemonic;
    }
}

TEST(Cdna1Isa, SharedRatesWithCdna2)
{
    // FP32 and FP16 per-CU rates carried over unchanged.
    const MfmaInstruction *f32 =
        findInstruction(GpuArch::Cdna1, "v_mfma_f32_16x16x4f32");
    ASSERT_NE(f32, nullptr);
    EXPECT_DOUBLE_EQ(f32->flopsPerCuPerCycle(), 256.0);

    const MfmaInstruction *f16 =
        findInstruction(GpuArch::Cdna1, "v_mfma_f32_16x16x16f16");
    ASSERT_NE(f16, nullptr);
    EXPECT_DOUBLE_EQ(f16->flopsPerCuPerCycle(), 1024.0);
}

TEST(Cdna1Isa, Bf16IsHalfRate)
{
    const MfmaInstruction *bf16 =
        findInstruction(GpuArch::Cdna1, "v_mfma_f32_16x16x8bf16");
    ASSERT_NE(bf16, nullptr);
    EXPECT_DOUBLE_EQ(bf16->flopsPerCuPerCycle(), 512.0);
    // And the full-rate _1k shapes do not exist on CDNA1.
    EXPECT_EQ(findInstruction(GpuArch::Cdna1, DataType::F32,
                              DataType::BF16, MfmaShape{16, 16, 16, 1}),
              nullptr);
}

TEST(Cdna1Isa, Wave64)
{
    for (const auto &inst : cdna1Instructions())
        EXPECT_EQ(inst.waveSize, 64) << inst.mnemonic;
}

TEST(Mi100Calibration, MatchesDatasheet)
{
    const Cdna2Calibration &cal = mi100Calibration();
    EXPECT_EQ(cal.arch, GpuArch::Cdna1);
    EXPECT_EQ(cal.gcdsPerPackage, 1);
    EXPECT_EQ(cal.cusPerGcd, 120);
    EXPECT_DOUBLE_EQ(cal.clockHz, 1.502e9);
    EXPECT_EQ(cal.hbmBytesPerGcd, 32ull << 30);
    EXPECT_DOUBLE_EQ(cal.powerCapW, 300.0);
    // Theoretical FP16 peak: 1024 * 120 * 1.502 GHz = 184.6 TFLOPS.
    EXPECT_NEAR(1024.0 * cal.cusPerGcd * cal.clockHz / 1e12, 184.6,
                0.2);
}

TEST(Mi100Device, PeakPlateaus)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(mi100Calibration(), opts);
    EXPECT_EQ(rt.deviceCount(), 1);
    EXPECT_NE(rt.properties(0).name.find("MI100"), std::string::npos);

    const MfmaInstruction *f16 =
        findInstruction(GpuArch::Cdna1, "v_mfma_f32_16x16x16f16");
    ASSERT_NE(f16, nullptr);
    const auto slots = static_cast<std::uint64_t>(
        rt.gpu().calibration().matrixCoresPerGcd());
    EXPECT_EQ(slots, 480u);
    const auto r =
        rt.launch(wmma::mfmaLoopProfile(*f16, 1000000, slots), 0);
    // 184.6 theoretical less the calibrated issue overhead.
    EXPECT_NEAR(r.throughput() / 1e12, 168.7, 1.5);
}

TEST(Mi100Device, RejectsCdna2Instructions)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    sim::Mi250x gpu(mi100Calibration(), opts);
    const MfmaInstruction *cdna2 =
        findInstruction(GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    ASSERT_NE(cdna2, nullptr);
    EXPECT_DEATH(gpu.runOnGcd(wmma::mfmaLoopProfile(*cdna2, 10, 1)),
                 "AMD CDNA2 instruction on a AMD CDNA1 device");
}

TEST(Mi100Gemm, DgemmFallsBackToSimd)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(mi100Calibration(), opts);
    blas::GemmEngine engine(rt);

    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Dgemm;
    cfg.m = cfg.n = cfg.k = 2048;
    cfg.alpha = cfg.beta = 0.1;
    auto result = engine.run(cfg);
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result.value().usedMatrixCores);

    // SGEMM still takes the Matrix Core path on CDNA1.
    cfg.combo = blas::GemmCombo::Sgemm;
    auto sgemm = engine.run(cfg);
    ASSERT_TRUE(sgemm.isOk());
    EXPECT_TRUE(sgemm.value().usedMatrixCores);
    EXPECT_GT(sgemm.value().throughput(),
              2.0 * result.value().throughput());
}

TEST(Mi100Gemm, SmallerMemoryExhaustsSooner)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(mi100Calibration(), opts);
    blas::GemmEngine engine(rt);

    // 3 x 49152^2 x 4 B = 27 GiB fits in 32 GiB; 65536 does not.
    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Sgemm;
    cfg.m = cfg.n = cfg.k = 49152;
    EXPECT_TRUE(engine.run(cfg).isOk());
    cfg.m = cfg.n = cfg.k = 65536;
    auto result = engine.run(cfg);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::OutOfMemory);
}

} // namespace
} // namespace arch
} // namespace mc
