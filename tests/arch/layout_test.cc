/**
 * @file
 * Property tests of the register-layout calculator: for every
 * instruction in both tables and every operand role, the element-to-
 * register mapping must be a bijection, and its inverse must invert it.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "arch/layout.hh"

namespace mc {
namespace arch {
namespace {

struct LayoutCase
{
    GpuArch arch;
    std::string mnemonic;
    Operand operand;
};

std::vector<LayoutCase>
allLayoutCases()
{
    std::vector<LayoutCase> cases;
    for (GpuArch a : {GpuArch::Cdna1, GpuArch::Cdna2, GpuArch::Ampere}) {
        for (const auto &inst : instructionsFor(a)) {
            for (Operand op : {Operand::A, Operand::B, Operand::C,
                               Operand::D}) {
                cases.push_back(LayoutCase{a, inst.mnemonic, op});
            }
        }
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<LayoutCase> &info)
{
    std::string name = gpuArchName(info.param.arch);
    name += "_";
    name += info.param.mnemonic;
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    name += "_";
    name += operandName(info.param.operand);
    return name;
}

class LayoutProperty : public ::testing::TestWithParam<LayoutCase>
{
  protected:
    const MfmaInstruction &
    instruction() const
    {
        const MfmaInstruction *inst =
            findInstruction(GetParam().arch, GetParam().mnemonic);
        EXPECT_NE(inst, nullptr);
        return *inst;
    }
};

TEST_P(LayoutProperty, MappingIsBijective)
{
    const MfmaInstruction &inst = instruction();
    const OperandLayout layout(inst, GetParam().operand);

    std::set<std::pair<int, int>> seen;
    for (int blk = 0; blk < layout.blocks(); ++blk) {
        for (int r = 0; r < layout.rows(); ++r) {
            for (int c = 0; c < layout.cols(); ++c) {
                const RegLocation loc =
                    layout.locationOf(ElementCoord{blk, r, c});
                EXPECT_GE(loc.lane, 0);
                EXPECT_LT(loc.lane, layout.waveSize());
                EXPECT_GE(loc.slot, 0);
                EXPECT_LT(loc.slot, layout.elementsPerLane());
                const bool inserted =
                    seen.insert({loc.lane, loc.slot}).second;
                EXPECT_TRUE(inserted)
                    << "duplicate location lane=" << loc.lane
                    << " slot=" << loc.slot;
            }
        }
    }
    // Every register slot is used exactly once.
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(layout.waveSize()) *
                  layout.elementsPerLane());
}

TEST_P(LayoutProperty, InverseInvertsForward)
{
    const MfmaInstruction &inst = instruction();
    const OperandLayout layout(inst, GetParam().operand);

    for (int blk = 0; blk < layout.blocks(); ++blk) {
        for (int r = 0; r < layout.rows(); ++r) {
            for (int c = 0; c < layout.cols(); ++c) {
                const ElementCoord coord{blk, r, c};
                const RegLocation loc = layout.locationOf(coord);
                EXPECT_EQ(layout.elementAt(loc), coord);
            }
        }
    }
}

TEST_P(LayoutProperty, ForwardInvertsInverse)
{
    const MfmaInstruction &inst = instruction();
    const OperandLayout layout(inst, GetParam().operand);

    for (int lane = 0; lane < layout.waveSize(); ++lane) {
        for (int slot = 0; slot < layout.elementsPerLane(); ++slot) {
            const RegLocation loc{lane, slot};
            EXPECT_EQ(layout.locationOf(layout.elementAt(loc)), loc);
        }
    }
}

TEST_P(LayoutProperty, ElementCountMatchesOperandSize)
{
    const MfmaInstruction &inst = instruction();
    const OperandLayout layout(inst, GetParam().operand);
    EXPECT_EQ(static_cast<long long>(layout.waveSize()) *
                  layout.elementsPerLane(),
              static_cast<long long>(layout.rows()) * layout.cols() *
                  layout.blocks());
}

INSTANTIATE_TEST_SUITE_P(AllInstructions, LayoutProperty,
                         ::testing::ValuesIn(allLayoutCases()), caseName);

TEST(Layout, KnownCdna2F32Mapping)
{
    // The classic CDNA2 16x16x4 f32 layout: A holds one element per
    // lane with row = lane % 16 and k = lane / 16; the accumulator
    // holds four consecutive rows per lane group.
    const MfmaInstruction *inst =
        findInstruction(GpuArch::Cdna2, "v_mfma_f32_16x16x4_f32");
    ASSERT_NE(inst, nullptr);

    const OperandLayout a(*inst, Operand::A);
    EXPECT_EQ(a.elementsPerLane(), 1);
    EXPECT_EQ(a.locationOf(ElementCoord{0, 5, 0}).lane, 5);
    EXPECT_EQ(a.locationOf(ElementCoord{0, 5, 2}).lane, 2 * 16 + 5);

    const OperandLayout d(*inst, Operand::D);
    EXPECT_EQ(d.elementsPerLane(), 4);
    // Element (row=0, col=3) lives in lane 3 slot 0; (row=1, col=3) in
    // lane 3 slot 1; (row=4, col=3) moves to the next lane group.
    EXPECT_EQ(d.locationOf(ElementCoord{0, 0, 3}),
              (RegLocation{3, 0}));
    EXPECT_EQ(d.locationOf(ElementCoord{0, 1, 3}),
              (RegLocation{3, 1}));
    EXPECT_EQ(d.locationOf(ElementCoord{0, 4, 3}),
              (RegLocation{16 + 3, 0}));
}

TEST(Layout, KnownMixedPrecisionMapping)
{
    // 16x16x16 f16: each lane holds four consecutive k slices of A.
    const MfmaInstruction *inst =
        findInstruction(GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);
    const OperandLayout a(*inst, Operand::A);
    EXPECT_EQ(a.elementsPerLane(), 4);
    EXPECT_EQ(a.locationOf(ElementCoord{0, 7, 0}), (RegLocation{7, 0}));
    EXPECT_EQ(a.locationOf(ElementCoord{0, 7, 3}), (RegLocation{7, 3}));
    EXPECT_EQ(a.locationOf(ElementCoord{0, 7, 4}),
              (RegLocation{16 + 7, 0}));
}

TEST(Layout, BlocksPartitionLanes)
{
    // 4x4x4 with 16 blocks: each block owns 4 consecutive lanes.
    const MfmaInstruction *inst =
        findInstruction(GpuArch::Cdna2, "v_mfma_f32_4x4x4_16b_f16");
    ASSERT_NE(inst, nullptr);
    const OperandLayout a(*inst, Operand::A);
    for (int blk = 0; blk < 16; ++blk) {
        const RegLocation loc = a.locationOf(ElementCoord{blk, 0, 0});
        EXPECT_EQ(loc.lane / 4, blk);
    }
}

TEST(Layout, VgprCountsFollowElementSize)
{
    const MfmaInstruction *f16 =
        findInstruction(GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(f16, nullptr);
    // A: 4 f16 elements = 8 bytes = 2 VGPRs; D: 4 f32 = 4 VGPRs.
    EXPECT_EQ(OperandLayout(*f16, Operand::A).vgprCount(2), 2);
    EXPECT_EQ(OperandLayout(*f16, Operand::D).vgprCount(4), 4);

    const MfmaInstruction *f64 =
        findInstruction(GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    ASSERT_NE(f64, nullptr);
    // A: 1 f64 = 2 VGPRs; D: 4 f64 = 8 VGPRs.
    EXPECT_EQ(OperandLayout(*f64, Operand::A).vgprCount(8), 2);
    EXPECT_EQ(OperandLayout(*f64, Operand::D).vgprCount(8), 8);
}

TEST(LayoutDeathTest, OutOfRangeCoordinatesPanic)
{
    const MfmaInstruction *inst =
        findInstruction(GpuArch::Cdna2, "v_mfma_f32_16x16x4_f32");
    ASSERT_NE(inst, nullptr);
    const OperandLayout a(*inst, Operand::A);
    EXPECT_DEATH(a.locationOf(ElementCoord{0, 16, 0}), "out of range");
    EXPECT_DEATH(a.locationOf(ElementCoord{0, 0, 4}), "out of range");
    EXPECT_DEATH(a.locationOf(ElementCoord{1, 0, 0}), "out of range");
    EXPECT_DEATH(a.elementAt(RegLocation{64, 0}), "out of range");
    EXPECT_DEATH(a.elementAt(RegLocation{0, 1}), "out of range");
}

} // namespace
} // namespace arch
} // namespace mc
