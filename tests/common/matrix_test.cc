/**
 * @file
 * Tests of the dense matrix container.
 */

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "fp/half.hh"

namespace mc {
namespace {

TEST(Matrix, DefaultIsEmpty)
{
    Matrix<double> m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, ValueInitialized)
{
    Matrix<float> m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_EQ(m(i, j), 0.0f);
}

TEST(Matrix, InitFillConstructor)
{
    Matrix<double> m(2, 2, 1.5);
    EXPECT_EQ(m(0, 0), 1.5);
    EXPECT_EQ(m(1, 1), 1.5);
}

TEST(Matrix, RowMajorStorageOrder)
{
    Matrix<int> m(2, 3);
    m(0, 0) = 1;
    m(0, 2) = 3;
    m(1, 0) = 4;
    EXPECT_EQ(m.data()[0], 1);
    EXPECT_EQ(m.data()[2], 3);
    EXPECT_EQ(m.data()[3], 4);
}

TEST(Matrix, SetIdentity)
{
    Matrix<double> m(3, 3, 7.0);
    m.setIdentity();
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(m(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, SetIdentityRectangular)
{
    Matrix<double> m(2, 4);
    m.setIdentity();
    EXPECT_EQ(m(0, 0), 1.0);
    EXPECT_EQ(m(1, 1), 1.0);
    EXPECT_EQ(m(1, 3), 0.0);
}

TEST(Matrix, IdentityWorksForHalf)
{
    // setIdentity goes through T(float) conversion; make sure the
    // reduced-precision type paths compile and behave.
    Matrix<fp::Half> m(2, 2);
    m.setIdentity();
    EXPECT_EQ(m(0, 0).toFloat(), 1.0f);
    EXPECT_EQ(m(0, 1).toFloat(), 0.0f);
}

TEST(Matrix, SameShape)
{
    Matrix<double> a(2, 3), b(2, 3), c(3, 2);
    EXPECT_TRUE(a.sameShape(b));
    EXPECT_FALSE(a.sameShape(c));
}

TEST(MatrixDeathTest, OutOfBoundsPanics)
{
    Matrix<double> m(2, 2);
    EXPECT_DEATH((void)m(2, 0), "out of bounds");
    EXPECT_DEATH((void)m(0, 2), "out of bounds");
}

} // namespace
} // namespace mc
