/**
 * @file
 * Tests of the text-table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace mc {
namespace {

TEST(TextTable, RendersAlignedCells)
{
    TextTable t({"name", "TFLOPS"});
    t.setAlignment({Align::Left, Align::Right});
    t.addRow({"mixed", "350.0"});
    t.addRow({"double", "69.0"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("| name   |"), std::string::npos);
    EXPECT_NE(out.find("|  350.0 |"), std::string::npos);
    EXPECT_NE(out.find("|   69.0 |"), std::string::npos);
}

TEST(TextTable, TitlePrintedFirst)
{
    TextTable t({"a"});
    t.setTitle("Table II");
    t.addRow({"x"});
    const std::string out = t.toString();
    EXPECT_EQ(out.rfind("Table II\n", 0), 0u);
}

TEST(TextTable, SeparatorAddsRule)
{
    TextTable t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.toString();
    // Header rule, top rule, separator, bottom rule = 4 dashes lines.
    int rules = 0;
    for (std::size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
         ++pos) {
        ++rules;
    }
    EXPECT_EQ(rules, 4);
}

TEST(TextTable, NumRowsCountsDataRows)
{
    TextTable t({"a", "b"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTableDeathTest, WrongCellCountPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row has 1 cells, expected 2");
}

TEST(TextTableDeathTest, EmptyHeaderPanics)
{
    EXPECT_DEATH(TextTable({}), "at least one column");
}

TEST(TextTableDeathTest, WrongAlignmentSizePanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.setAlignment({Align::Left}), "every column");
}

} // namespace
} // namespace mc
