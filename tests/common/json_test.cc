/**
 * @file
 * Tests of the manifest JSON model: construction, insertion-ordered
 * serialization, and the strict parser (round-trip, escapes, and the
 * malformed inputs it must reject).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"

namespace mc {
namespace {

TEST(JsonValue, TypedConstruction)
{
    EXPECT_TRUE(JsonValue().isNull());
    EXPECT_TRUE(JsonValue(true).asBool());
    EXPECT_DOUBLE_EQ(JsonValue(1.5).asNumber(), 1.5);
    EXPECT_EQ(JsonValue(static_cast<std::int64_t>(42)).asInt(), 42);
    EXPECT_EQ(JsonValue("text").asString(), "text");
    EXPECT_TRUE(JsonValue::array().isArray());
    EXPECT_TRUE(JsonValue::object().isObject());
}

TEST(JsonValue, ObjectKeepsInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.set("zulu", 1);
    obj.set("alpha", 2);
    obj.set("mike", 3);
    ASSERT_EQ(obj.size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "zulu");
    EXPECT_EQ(obj.members()[1].first, "alpha");
    EXPECT_EQ(obj.members()[2].first, "mike");
    // set() on an existing key replaces in place, keeping the order.
    obj.set("alpha", 20);
    ASSERT_EQ(obj.size(), 3u);
    EXPECT_EQ(obj.members()[1].first, "alpha");
    EXPECT_EQ(obj.at("alpha").asInt(), 20);
}

TEST(JsonValue, CompactSerialization)
{
    JsonValue obj = JsonValue::object();
    obj.set("name", "fig6");
    obj.set("ok", true);
    obj.set("attempts", 2);
    JsonValue args = JsonValue::array();
    args.append("--reps");
    args.append("10");
    obj.set("argv", args);
    EXPECT_EQ(obj.serialize(0),
              "{\"name\": \"fig6\", \"ok\": true, \"attempts\": 2, "
              "\"argv\": [\"--reps\", \"10\"]}");
}

TEST(JsonValue, IntegersSerializeWithoutFraction)
{
    EXPECT_EQ(JsonValue(3).serialize(0), "3");
    EXPECT_EQ(JsonValue(-17).serialize(0), "-17");
    EXPECT_EQ(JsonValue(0.5).serialize(0), "0.5");
}

TEST(JsonValue, StringEscaping)
{
    const std::string rendered =
        JsonValue("tab\there \"quoted\" back\\slash\n").serialize(0);
    EXPECT_EQ(rendered,
              "\"tab\\there \\\"quoted\\\" back\\\\slash\\n\"");
}

TEST(JsonValue, ParseSerializeRoundTrip)
{
    JsonValue manifest = JsonValue::object();
    manifest.set("format", "mcchar suite manifest v1");
    JsonValue benches = JsonValue::array();
    JsonValue bench = JsonValue::object();
    bench.set("name", "fig6_gemm_fp");
    bench.set("code", "Ok");
    bench.set("duration_sec", 12.25);
    bench.set("watchdog", false);
    bench.set("notes", JsonValue());
    benches.append(bench);
    manifest.set("benches", benches);

    auto parsed = JsonValue::parse(manifest.serialize());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const JsonValue &doc = parsed.value();
    EXPECT_EQ(doc.at("format").asString(), "mcchar suite manifest v1");
    ASSERT_EQ(doc.at("benches").size(), 1u);
    const JsonValue &entry = doc.at("benches").at(0u);
    EXPECT_EQ(entry.at("name").asString(), "fig6_gemm_fp");
    EXPECT_DOUBLE_EQ(entry.at("duration_sec").asNumber(), 12.25);
    EXPECT_FALSE(entry.at("watchdog").asBool());
    EXPECT_TRUE(entry.at("notes").isNull());
}

TEST(JsonValue, ParseAcceptsWhitespaceAndNested)
{
    auto parsed = JsonValue::parse(
        "  { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] }  ");
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().at("a").size(), 3u);
    EXPECT_TRUE(parsed.value().at("a").at(2u).at("b").isNull());
}

TEST(JsonValue, ParseRejectsMalformedDocuments)
{
    const char *bad[] = {
        "",                      // empty
        "{",                     // unterminated object
        "[1, 2",                 // unterminated array
        "{\"a\": }",             // missing value
        "{\"a\": 1,}",           // trailing comma
        "{\"a\" 1}",             // missing colon
        "{\"a\": 1} extra",      // trailing garbage
        "'single'",              // wrong quoting
        "nulll",                 // bad keyword
        "\"unterminated",        // unterminated string
    };
    for (const char *text : bad) {
        auto parsed = JsonValue::parse(text);
        EXPECT_FALSE(parsed.isOk()) << "accepted: " << text;
    }
}

TEST(JsonValue, ParseRejectsRunawayNesting)
{
    // The recursive-descent parser bounds depth so a hostile manifest
    // cannot blow the stack.
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    auto parsed = JsonValue::parse(deep);
    EXPECT_FALSE(parsed.isOk());
}

TEST(JsonValue, FindAndHasOnObjects)
{
    JsonValue obj = JsonValue::object();
    obj.set("present", 1);
    EXPECT_TRUE(obj.has("present"));
    EXPECT_FALSE(obj.has("absent"));
    EXPECT_NE(obj.find("present"), nullptr);
    EXPECT_EQ(obj.find("absent"), nullptr);
    // find() on a non-object is a safe null, so manifest readers can
    // probe optional fields without type checks.
    EXPECT_EQ(JsonValue(1.0).find("x"), nullptr);
}

} // namespace
} // namespace mc
