/**
 * @file
 * Tests of unit constructors and formatting.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace mc {
namespace {

TEST(Units, Constructors)
{
    EXPECT_DOUBLE_EQ(units::tflops(1.5), 1.5e12);
    EXPECT_DOUBLE_EQ(units::gflops(2.0), 2.0e9);
    EXPECT_DOUBLE_EQ(units::megahertz(1700), 1.7e9);
    EXPECT_DOUBLE_EQ(units::gigahertz(1.41), 1.41e9);
    EXPECT_DOUBLE_EQ(units::gibibytes(64), 64.0 * (1ull << 30));
    EXPECT_DOUBLE_EQ(units::tbPerSec(3.2), 3.2e12);
}

TEST(Units, RoundTripConversions)
{
    EXPECT_DOUBLE_EQ(units::toTflops(units::tflops(95.7)), 95.7);
    EXPECT_DOUBLE_EQ(units::toGflops(units::gflops(1020)), 1020);
}

TEST(Units, FormatFlopsPicksScale)
{
    EXPECT_EQ(units::formatFlops(350.0e12), "350.0 TFLOPS");
    EXPECT_EQ(units::formatFlops(19.4e12), "19.4 TFLOPS");
    EXPECT_EQ(units::formatFlops(5.0e9), "5.0 GFLOPS");
    EXPECT_EQ(units::formatFlops(2.5e6), "2.5 MFLOPS");
    EXPECT_EQ(units::formatFlops(100.0), "100.0 FLOPS");
}

TEST(Units, FormatWatts)
{
    EXPECT_EQ(units::formatWatts(541.0), "541.0 W");
    EXPECT_EQ(units::formatWatts(88.25, 2), "88.25 W");
}

TEST(Units, FormatEfficiency)
{
    EXPECT_EQ(units::formatEfficiency(1020e9), "1020 GFLOPS/W");
    EXPECT_EQ(units::formatEfficiency(1.5e12, 1), "1500.0 GFLOPS/W");
    EXPECT_EQ(units::formatEfficiency(15e12, 1), "15.0 TFLOPS/W");
}

TEST(Units, FormatBytesBinaryPrefixes)
{
    EXPECT_EQ(units::formatBytes(64.0 * (1ull << 30)), "64.0 GiB");
    EXPECT_EQ(units::formatBytes(8.0 * (1ull << 20)), "8.0 MiB");
    EXPECT_EQ(units::formatBytes(2048.0), "2.0 KiB");
    EXPECT_EQ(units::formatBytes(100.0), "100.0 B");
}

TEST(Units, FormatSecondsAdaptiveUnit)
{
    EXPECT_EQ(units::formatSeconds(2.5), "2.50 s");
    EXPECT_EQ(units::formatSeconds(0.0125), "12.50 ms");
    EXPECT_EQ(units::formatSeconds(3.2e-5), "32.00 us");
    EXPECT_EQ(units::formatSeconds(5.0e-8), "50.00 ns");
}

TEST(Units, FormatHertz)
{
    EXPECT_EQ(units::formatHertz(1.7e9), "1.70 GHz");
    EXPECT_EQ(units::formatHertz(100.0e6), "100.00 MHz");
}

} // namespace
} // namespace mc
