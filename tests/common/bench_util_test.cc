/**
 * @file
 * Tests of the shared bench helpers (repetition + the paper's error
 * bound reporting convention).
 */

#include <gtest/gtest.h>

#include "bench/common/bench_util.hh"

namespace mc {
namespace bench {
namespace {

TEST(RepeatMeasure, RunsRequestedRepetitions)
{
    int calls = 0;
    const Measurement m = repeatMeasure([&]() {
        ++calls;
        return 2.0;
    }, 7);
    EXPECT_EQ(calls, 7);
    EXPECT_EQ(m.stats.count, 7u);
    EXPECT_DOUBLE_EQ(m.value(), 2.0);
}

TEST(RepeatMeasure, SummarizesVaryingSamples)
{
    int i = 0;
    const double values[] = {10.0, 20.0, 30.0};
    const Measurement m =
        repeatMeasure([&]() { return values[i++]; }, 3);
    EXPECT_DOUBLE_EQ(m.value(), 20.0);
    EXPECT_DOUBLE_EQ(m.stats.min, 10.0);
    EXPECT_DOUBLE_EQ(m.stats.max, 30.0);
}

TEST(Measurement, NoErrorBoundWhenSpreadTight)
{
    // Spread <= 2%: only the mean is printed (Section IV convention).
    int i = 0;
    const double values[] = {100.0, 100.5, 99.5, 100.0};
    const Measurement m =
        repeatMeasure([&]() { return values[i++]; }, 4);
    EXPECT_EQ(m.format(1.0, 1), "100.0");
}

TEST(Measurement, ErrorBoundWhenSpreadExceedsTwoPercent)
{
    int i = 0;
    const double values[] = {90.0, 110.0};
    const Measurement m =
        repeatMeasure([&]() { return values[i++]; }, 2);
    const std::string text = m.format(1.0, 1);
    EXPECT_NE(text.find("100.0"), std::string::npos);
    EXPECT_NE(text.find("+/-"), std::string::npos);
}

TEST(Measurement, ScalingApplied)
{
    const Measurement m = repeatMeasure([]() { return 43.6e12; }, 3);
    EXPECT_EQ(tflopsCell(m), "43.6");
}

TEST(RepeatMeasureDeathTest, ZeroRepetitionsPanics)
{
    EXPECT_DEATH(repeatMeasure([]() { return 1.0; }, 0),
                 "at least one repetition");
}

} // namespace
} // namespace bench
} // namespace mc
