/**
 * @file
 * Tests of the shared bench helpers (repetition + the paper's error
 * bound reporting convention).
 */

#include <gtest/gtest.h>

#include "bench/common/bench_util.hh"

namespace mc {
namespace bench {
namespace {

TEST(RepeatMeasure, RunsRequestedRepetitions)
{
    int calls = 0;
    const Measurement m = repeatMeasure([&]() {
        ++calls;
        return 2.0;
    }, 7);
    EXPECT_EQ(calls, 7);
    EXPECT_EQ(m.stats.count, 7u);
    EXPECT_DOUBLE_EQ(m.value(), 2.0);
}

TEST(RepeatMeasure, SummarizesVaryingSamples)
{
    int i = 0;
    const double values[] = {10.0, 20.0, 30.0};
    const Measurement m =
        repeatMeasure([&]() { return values[i++]; }, 3);
    EXPECT_DOUBLE_EQ(m.value(), 20.0);
    EXPECT_DOUBLE_EQ(m.stats.min, 10.0);
    EXPECT_DOUBLE_EQ(m.stats.max, 30.0);
}

TEST(Measurement, NoErrorBoundWhenSpreadTight)
{
    // Spread <= 2%: only the mean is printed (Section IV convention).
    int i = 0;
    const double values[] = {100.0, 100.5, 99.5, 100.0};
    const Measurement m =
        repeatMeasure([&]() { return values[i++]; }, 4);
    EXPECT_EQ(m.format(1.0, 1), "100.0");
}

TEST(Measurement, ErrorBoundWhenSpreadExceedsTwoPercent)
{
    int i = 0;
    const double values[] = {90.0, 110.0};
    const Measurement m =
        repeatMeasure([&]() { return values[i++]; }, 2);
    const std::string text = m.format(1.0, 1);
    EXPECT_NE(text.find("100.0"), std::string::npos);
    EXPECT_NE(text.find("+/-"), std::string::npos);
}

TEST(Measurement, ScalingApplied)
{
    const Measurement m = repeatMeasure([]() { return 43.6e12; }, 3);
    EXPECT_EQ(tflopsCell(m), "43.6");
}

TEST(RepeatMeasureDeathTest, ZeroRepetitionsPanics)
{
    EXPECT_DEATH(repeatMeasure([]() { return 1.0; }, 0),
                 "at least one repetition");
}

TEST(RepeatMeasureResilient, CleanRunMatchesRepeatMeasure)
{
    int calls = 0;
    const auto result = repeatMeasureResilient(
        [&](int) -> Result<TimedSample> {
            ++calls;
            return TimedSample{2.0, 1e-3};
        });
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(calls, 10);
    EXPECT_EQ(result.value().samplesTaken, 10);
    EXPECT_EQ(result.value().retries, 0);
    EXPECT_FALSE(result.value().aborted);
    EXPECT_DOUBLE_EQ(result.value().value(), 2.0);
}

TEST(RepeatMeasureResilient, TransientErrorIsRetriedWithStableRepIndex)
{
    // Repetition 2 fails twice before succeeding: the final values
    // must be exactly what a clean run would have measured, because
    // the rep index (not the attempt count) selects the sample.
    int failures_left = 2;
    std::vector<int> seen_reps;
    ResilientOptions opts;
    opts.repetitions = 4;
    const auto result = repeatMeasureResilient(
        [&](int rep) -> Result<TimedSample> {
            seen_reps.push_back(rep);
            if (rep == 2 && failures_left > 0) {
                --failures_left;
                return Status::unavailable("injected hiccup");
            }
            return TimedSample{static_cast<double>(rep), 1e-3};
        },
        opts);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_EQ(result.value().retries, 2);
    EXPECT_EQ(result.value().samplesTaken, 4);
    EXPECT_DOUBLE_EQ(result.value().stats.mean, (0 + 1 + 2 + 3) / 4.0);
    const std::vector<int> expected = {0, 1, 2, 2, 2, 3};
    EXPECT_EQ(seen_reps, expected);
}

TEST(RepeatMeasureResilient, RetryBudgetExhaustionReturnsLastError)
{
    ResilientOptions opts;
    opts.repetitions = 4;
    opts.retry.maxAttempts = 3;
    int calls = 0;
    const auto result = repeatMeasureResilient(
        [&](int) -> Result<TimedSample> {
            ++calls;
            return Status::unavailable("persistent fault");
        },
        opts);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::Unavailable);
    EXPECT_EQ(calls, 3);
}

TEST(RepeatMeasureResilient, NonRetriableErrorFailsImmediately)
{
    int calls = 0;
    const auto result = repeatMeasureResilient(
        [&](int) -> Result<TimedSample> {
            ++calls;
            return Status::dataLoss("uncorrectable ECC");
        });
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::DataLoss);
    EXPECT_EQ(calls, 1);
}

TEST(RepeatMeasureResilient, OutOfMemoryAbortsLikeRepeatMeasureUntil)
{
    const auto result = repeatMeasureResilient(
        [](int rep) -> Result<TimedSample> {
            if (rep >= 3)
                return Status::outOfMemory("tile does not fit");
            return TimedSample{5.0, 1e-3};
        });
    ASSERT_TRUE(result.isOk());
    EXPECT_TRUE(result.value().aborted);
    EXPECT_EQ(result.value().samplesTaken, 3);
    EXPECT_DOUBLE_EQ(result.value().value(), 5.0);
}

TEST(RepeatMeasureResilient, HungSampleTripsTheDeadline)
{
    ResilientOptions opts;
    opts.repetitions = 10;
    opts.deadlineSec = 60.0;
    const auto result = repeatMeasureResilient(
        [](int rep) -> Result<TimedSample> {
            // Repetition 1 "hangs": its simulated duration dwarfs any
            // sane per-point deadline.
            return TimedSample{1.0, rep == 1 ? 1e9 : 1e-3};
        },
        opts);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(RepeatMeasureResilient, SimulatedBackoffChargesTheDeadline)
{
    // Every attempt is cheap, but the retry backoff alone blows the
    // deadline: the point must fail DeadlineExceeded, not spin.
    ResilientOptions opts;
    opts.repetitions = 10;
    opts.deadlineSec = 0.04;
    opts.retry.initialBackoffSec = 0.05;
    int failures_left = 1;
    const auto result = repeatMeasureResilient(
        [&](int) -> Result<TimedSample> {
            if (failures_left > 0) {
                --failures_left;
                return Status::unavailable("hiccup");
            }
            return TimedSample{1.0, 1e-3};
        },
        opts);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::DeadlineExceeded);
}

TEST(RepeatMeasureResilient, DeadlineExpiringMidBackoffNeverSleepsPast)
{
    // Deadline partially consumed by good samples, then a rep turns
    // flaky: the moment the *next* backoff would overrun the remaining
    // budget, the point fails DeadlineExceeded without charging that
    // backoff — and without burning the rest of the retry budget on a
    // deadline that is already lost.
    ResilientOptions opts;
    opts.repetitions = 10;
    opts.deadlineSec = 0.1;
    opts.retry.maxAttempts = 100; // attempts are not the limiter here
    opts.retry.initialBackoffSec = 0.05;
    int flaky_calls = 0;
    const auto result = repeatMeasureResilient(
        [&](int rep) -> Result<TimedSample> {
            if (rep < 2)
                return TimedSample{1.0, 0.03}; // 0.06 of 0.1 consumed
            ++flaky_calls;
            return Status::unavailable("turned flaky");
        },
        opts);
    ASSERT_FALSE(result.isOk());
    // DeadlineExceeded, not the transient Unavailable: the deadline
    // expired *between* retries, and that is the truthful verdict.
    EXPECT_EQ(result.status().code(), ErrorCode::DeadlineExceeded);
    // Remaining budget was 0.04 and the first backoff is 0.05: exactly
    // one (free) attempt of the flaky rep, zero backoffs charged.
    EXPECT_EQ(flaky_calls, 1);
}

TEST(SweepResilience, FlagsRoundTrip)
{
    CliParser cli("test");
    addResilienceFlags(cli);
    const char *argv[] = {"test_bench", "--inject=oom=0.01,smi_dropout=0.05",
                          "--max-point-failures=7", "--deadline-sec=120"};
    cli.parse(4, argv);
    const SweepResilience res = resilienceFlags(cli);
    EXPECT_DOUBLE_EQ(res.faults.probability(fault::FaultSite::HbmAlloc),
                     0.01);
    EXPECT_DOUBLE_EQ(res.faults.probability(fault::FaultSite::SmiDropout),
                     0.05);
    EXPECT_EQ(res.maxPointFailures, 7u);
    EXPECT_DOUBLE_EQ(res.deadlineSec, 120.0);
    EXPECT_TRUE(res.journalPath.empty());
    EXPECT_FALSE(res.resume);
}

TEST(SweepResilience, DefaultsAreUnlimitedAndFaultFree)
{
    CliParser cli("test");
    addResilienceFlags(cli);
    const char *argv[] = {"test_bench"};
    cli.parse(1, argv);
    const SweepResilience res = resilienceFlags(cli);
    EXPECT_FALSE(res.faults.any());
    EXPECT_EQ(res.maxPointFailures,
              std::numeric_limits<std::size_t>::max());
    EXPECT_FALSE(res.resume);
    // The injector a fault-free spec builds is disabled entirely.
    EXPECT_FALSE(res.injectorFor(1234).enabled());
}

TEST(SweepResilience, ResumeFlagLoadsJournalPath)
{
    CliParser cli("test");
    addResilienceFlags(cli);
    const char *argv[] = {"test_bench", "--resume=/tmp/journal.csv"};
    cli.parse(2, argv);
    const SweepResilience res = resilienceFlags(cli);
    EXPECT_EQ(res.journalPath, "/tmp/journal.csv");
    EXPECT_TRUE(res.resume);
}

TEST(SweepResilienceDeathTest, JournalAndResumeAreExclusive)
{
    CliParser cli("test");
    addResilienceFlags(cli);
    const char *argv[] = {"test_bench", "--journal=a.csv",
                          "--resume=b.csv"};
    cli.parse(3, argv);
    EXPECT_DEATH(resilienceFlags(cli), "mutually exclusive");
}

TEST(SweepResilienceDeathTest, MalformedInjectIsFatal)
{
    CliParser cli("test");
    addResilienceFlags(cli);
    const char *argv[] = {"test_bench", "--inject=bogus=0.5"};
    cli.parse(2, argv);
    EXPECT_DEATH(resilienceFlags(cli), "bad --inject");
}

} // namespace
} // namespace bench
} // namespace mc
