/**
 * @file
 * Tests of the CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"

namespace mc {
namespace {

TEST(CsvWriter, PlainRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"n", "tflops", "watts"});
    EXPECT_EQ(os.str(), "n,tflops,watts\n");
}

TEST(CsvWriter, QuotesCellsWithCommas)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"a,b", "plain"});
    EXPECT_EQ(os.str(), "\"a,b\",plain\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"say \"hi\""});
    EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"line1\nline2"});
    EXPECT_EQ(os.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, NumericRowUsesFullPrecision)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeNumericRow({1.5, 350.0, 0.61});
    EXPECT_EQ(os.str(), "1.5,350,0.61\n");
}

TEST(CsvWriter, MultipleRows)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"a"});
    csv.writeRow({"b"});
    EXPECT_EQ(os.str(), "a\nb\n");
}

} // namespace
} // namespace mc
