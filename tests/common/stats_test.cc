/**
 * @file
 * Tests of the statistics helpers, in particular the linear fitter used
 * to recover the paper's Eq. 3 power model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/stats.hh"

namespace mc {
namespace {

TEST(Summarize, EmptyInputIsZeroed)
{
    const SampleStats s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue)
{
    const SampleStats s = summarize({3.5});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 3.5);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.min, 3.5);
    EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Summarize, KnownSample)
{
    const SampleStats s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, RelativeSpread)
{
    const SampleStats s = summarize({9.0, 10.0, 11.0});
    EXPECT_NEAR(s.relativeSpread(), 1.0 / 10.0, 1e-12);
}

TEST(FitLinear, RecoversExactLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(5.88 * i + 130.0); // the paper's FP64 power model
    }
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 5.88, 1e-9);
    EXPECT_NEAR(fit.intercept, 130.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.predict(41.0), 5.88 * 41.0 + 130.0, 1e-9);
}

TEST(FitLinear, NoisyLineStillCloselyRecovered)
{
    Rng rng(31);
    std::vector<double> xs, ys;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(0.0, 100.0);
        xs.push_back(x);
        ys.push_back(2.18 * x + 125.5 + rng.nextGaussian() * 2.0);
    }
    const LinearFit fit = fitLinear(xs, ys);
    EXPECT_NEAR(fit.slope, 2.18, 0.02);
    EXPECT_NEAR(fit.intercept, 125.5, 1.0);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(FitLinearDeathTest, RejectsDegenerateInput)
{
    EXPECT_DEATH(fitLinear({1.0}, {1.0}), "at least two points");
    EXPECT_DEATH(fitLinear({1.0, 1.0}, {1.0, 2.0}), "non-degenerate");
    EXPECT_DEATH(fitLinear({1.0, 2.0}, {1.0}), "equal-length");
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, UnsortedInputHandled)
{
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(GeometricMean, KnownValues)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({5.0}), 5.0, 1e-12);
}

TEST(GeometricMeanDeathTest, RejectsNonPositive)
{
    EXPECT_DEATH(geometricMean({1.0, 0.0}), "positive values");
    EXPECT_DEATH(geometricMean({}), "empty");
}

} // namespace
} // namespace mc
