/**
 * @file
 * Tests of atomic file publication: replace-don't-append semantics, no
 * temp-file residue after a successful commit, and clean failure when
 * the target directory does not exist.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/atomic_file.hh"

namespace mc {
namespace {

class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : _path(std::string(::testing::TempDir()) + "mc_atomic_" + name)
    {
        std::remove(_path.c_str());
    }

    ~TempPath() { std::remove(_path.c_str()); }

    const std::string &str() const { return _path; }

  private:
    std::string _path;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

TEST(WriteFileAtomic, CreatesFileWithExactContents)
{
    TempPath path("create.csv");
    const Status status =
        writeFileAtomic(path.str(), "n,tflops\n256,12.5\n");
    ASSERT_TRUE(status.isOk()) << status.toString();
    EXPECT_EQ(readFile(path.str()), "n,tflops\n256,12.5\n");
}

TEST(WriteFileAtomic, ReplacesExistingFile)
{
    TempPath path("replace.csv");
    ASSERT_TRUE(writeFileAtomic(path.str(), "old contents\n").isOk());
    ASSERT_TRUE(writeFileAtomic(path.str(), "new\n").isOk());
    // Replaced, not appended or merged.
    EXPECT_EQ(readFile(path.str()), "new\n");
}

TEST(WriteFileAtomic, LeavesNoTempResidue)
{
    TempPath path("residue.csv");
    ASSERT_TRUE(writeFileAtomic(path.str(), "data\n").isOk());
    // The temp name is deterministic: <target>.tmp.<pid>.
    const std::string temp =
        path.str() + ".tmp." + std::to_string(::getpid());
    EXPECT_FALSE(fileExists(temp));
}

TEST(WriteFileAtomic, MissingDirectoryFailsAndTouchesNothing)
{
    const std::string target = std::string(::testing::TempDir()) +
                               "mc_atomic_no_such_dir/out.csv";
    const Status status = writeFileAtomic(target, "data\n");
    EXPECT_FALSE(status.isOk());
    EXPECT_FALSE(fileExists(target));
}

TEST(AtomicFileWriter, BuffersUntilCommit)
{
    TempPath path("buffered.csv");
    AtomicFileWriter writer(path.str());
    writer.stream() << "header\n" << 42 << "," << 1.5 << "\n";
    // Nothing on disk until commit().
    EXPECT_FALSE(fileExists(path.str()));
    EXPECT_EQ(writer.contents(), "header\n42,1.5\n");

    const Status status = writer.commit();
    ASSERT_TRUE(status.isOk()) << status.toString();
    EXPECT_EQ(readFile(path.str()), "header\n42,1.5\n");
}

TEST(WriteFileAtomic, BareFilenameSyncsTheWorkingDirectory)
{
    // The durability path fsyncs the target's parent directory after
    // rename; a path with no '/' must resolve that parent to "." and
    // still commit cleanly (satellite of the durability contract in
    // atomic_file.hh).
    char original[4096];
    ASSERT_NE(::getcwd(original, sizeof(original)), nullptr);
    ASSERT_EQ(::chdir(::testing::TempDir().c_str()), 0);
    const std::string name = "mc_atomic_bare.csv";
    const Status status = writeFileAtomic(name, "bare\n");
    EXPECT_TRUE(status.isOk()) << status.toString();
    EXPECT_EQ(readFile(name), "bare\n");
    std::remove(name.c_str());
    ASSERT_EQ(::chdir(original), 0);
}

TEST(AtomicFileWriter, DestructionWithoutCommitLeavesTargetAlone)
{
    TempPath path("discard.csv");
    ASSERT_TRUE(writeFileAtomic(path.str(), "precious\n").isOk());
    {
        AtomicFileWriter writer(path.str());
        writer.stream() << "half-finished";
    }
    EXPECT_EQ(readFile(path.str()), "precious\n");
}

} // namespace
} // namespace mc
