/**
 * @file
 * Tests of the ASCII chart renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/plot.hh"

namespace mc {
namespace {

TEST(AsciiChart, EmptyChartSaysNoData)
{
    AsciiChart chart;
    EXPECT_NE(chart.toString().find("(no data)"), std::string::npos);
}

TEST(AsciiChart, RendersTitleAxesAndLegend)
{
    AsciiChart chart(32, 8);
    chart.setTitle("demo");
    chart.setXLabel("N");
    chart.setYLabel("TFLOPS");
    PlotSeries s;
    s.label = "series-a";
    s.marker = 'a';
    s.points = {{1.0, 1.0}, {2.0, 2.0}};
    chart.addSeries(s);

    const std::string out = chart.toString();
    EXPECT_EQ(out.rfind("demo\n", 0), 0u);
    EXPECT_NE(out.find("x: N"), std::string::npos);
    EXPECT_NE(out.find("y: TFLOPS"), std::string::npos);
    EXPECT_NE(out.find("a series-a"), std::string::npos);
}

TEST(AsciiChart, MarkersLandAtExtremes)
{
    AsciiChart chart(32, 8);
    PlotSeries s;
    s.label = "line";
    s.marker = '*';
    s.points = {{0.0, 0.0}, {10.0, 100.0}};
    chart.addSeries(s);
    const std::string out = chart.toString();

    // The max point renders on the top row, the min on the bottom row.
    std::istringstream is(out);
    std::vector<std::string> lines;
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    EXPECT_NE(lines[0].find('*'), std::string::npos); // top row
    EXPECT_NE(lines[7].find('*'), std::string::npos); // bottom data row
}

TEST(AsciiChart, LogXPlacesDecadesEvenly)
{
    AsciiChart chart(31, 8);
    chart.setLogX(true);
    PlotSeries s;
    s.label = "decades";
    s.marker = 'o';
    s.points = {{1.0, 1.0}, {10.0, 1.0}, {100.0, 1.0}};
    chart.addSeries(s);
    const std::string out = chart.toString();

    // All points share y = ymax, so they render on the top data row;
    // log placement puts the decades at evenly spaced columns.
    std::istringstream is(out);
    std::vector<std::string> lines;
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    const std::string &row = lines[0];
    const std::size_t first = row.find('o');
    const std::size_t second = row.find('o', first + 1);
    const std::size_t third = row.find('o', second + 1);
    ASSERT_NE(third, std::string::npos);
    EXPECT_EQ(second - first, third - second);
}

TEST(AsciiChart, AxisEndLabels)
{
    AsciiChart chart(32, 8);
    PlotSeries s;
    s.label = "x";
    s.points = {{16.0, 1.0}, {65536.0, 2.0}};
    chart.addSeries(s);
    const std::string out = chart.toString();
    EXPECT_NE(out.find("16"), std::string::npos);
    EXPECT_NE(out.find("65536"), std::string::npos);
}

TEST(AsciiChartDeathTest, TooSmallAreaPanics)
{
    EXPECT_DEATH(AsciiChart(4, 2), "too small");
}

TEST(AsciiChartDeathTest, LogXRejectsNonPositive)
{
    AsciiChart chart(32, 8);
    chart.setLogX(true);
    PlotSeries s;
    s.label = "bad";
    s.points = {{0.0, 1.0}};
    chart.addSeries(s);
    EXPECT_DEATH(chart.toString(), "positive x");
}

} // namespace
} // namespace mc
