/**
 * @file
 * Tests of the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace mc {
namespace {

TEST(Rng, EqualSeedsGiveEqualStreams)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differences = 0;
    for (int i = 0; i < 10; ++i) {
        if (a.next() != b.next())
            ++differences;
    }
    EXPECT_GT(differences, 5);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, NextBelowStaysBelow)
{
    Rng rng(13);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversSmallRange)
{
    Rng rng(17);
    bool seen[5] = {};
    for (int i = 0; i < 500; ++i)
        seen[rng.nextBelow(5)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(23);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngDeathTest, NextBelowZeroBoundPanics)
{
    Rng rng(29);
    EXPECT_DEATH(rng.nextBelow(0), "nonzero bound");
}

} // namespace
} // namespace mc
