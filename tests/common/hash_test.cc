/**
 * @file
 * Tests of the deterministic hashing utilities, in particular the
 * CRC-32 checksum that frames sweep-journal records: known answer
 * vectors pin the exact polynomial/conditioning so journals stay
 * verifiable by external tooling across releases.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/hash.hh"

namespace mc {
namespace {

TEST(Crc32, EmptyInputIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
    EXPECT_EQ(crc32String(""), 0u);
}

TEST(Crc32, StandardCheckValue)
{
    // The IEEE 802.3 check vector every CRC-32 implementation agrees
    // on: crc32("123456789") = 0xcbf43926.
    EXPECT_EQ(crc32String("123456789"), 0xcbf43926u);
}

TEST(Crc32, KnownVectors)
{
    EXPECT_EQ(crc32String("a"), 0xe8b7be43u);
    EXPECT_EQ(crc32String("abc"), 0x352441c2u);
    EXPECT_EQ(crc32String("The quick brown fox jumps over the lazy dog"),
              0x414fa339u);
}

TEST(Crc32, ChunkedEqualsWhole)
{
    const std::string text = "0,sgemm/256,Ok,12.5,128";
    const std::uint32_t whole = crc32String(text);
    std::uint32_t chunked = 0;
    for (char ch : text)
        chunked = crc32(&ch, 1, chunked);
    EXPECT_EQ(chunked, whole);
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::string text = "1,hgemm/4096,OutOfMemory,";
    const std::uint32_t clean = crc32String(text);
    for (std::size_t pos = 0; pos < text.size(); ++pos) {
        std::string flipped = text;
        flipped[pos] ^= 0x01;
        EXPECT_NE(crc32String(flipped), clean) << "flip at " << pos;
    }
}

TEST(Crc32, BytesAndStringAgree)
{
    const std::string text = "journal record";
    EXPECT_EQ(crc32(text.data(), text.size()), crc32String(text));
}

TEST(Hash64, StableAcrossCalls)
{
    const std::uint64_t first = hashString("fig6_gemm_fp/sgemm/256");
    const std::uint64_t second = hashString("fig6_gemm_fp/sgemm/256");
    EXPECT_EQ(first, second);
    EXPECT_NE(first, hashString("fig6_gemm_fp/sgemm/512"));
}

} // namespace
} // namespace mc
