/**
 * @file
 * Tests of the logging and assertion primitives.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace mc {
namespace {

TEST(Logging, ConcatFoldsMixedArguments)
{
    EXPECT_EQ(detail::concat("x=", 42, " y=", 1.5), "x=42 y=1.5");
    const std::string empty = detail::concat();
    EXPECT_EQ(empty, "");
    EXPECT_EQ(detail::concat("solo"), "solo");
}

TEST(Logging, LogLevelRoundTrips)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(saved);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(mc_panic("boom ", 123), "panic: boom 123");
}

TEST(LoggingDeathTest, FatalExitsWithError)
{
    EXPECT_EXIT(mc_fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal: bad config");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(mc_assert(1 == 2, "math broke"),
                 "assertion failed: 1 == 2 math broke");
}

TEST(Logging, AssertPassesOnTrue)
{
    mc_assert(2 + 2 == 4, "never shown");
    SUCCEED();
}

} // namespace
} // namespace mc
