/**
 * @file
 * Tests of Status and Result error propagation.
 */

#include <gtest/gtest.h>

#include "common/status.hh"

namespace mc {
namespace {

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage)
{
    const Status s = Status::invalidArgument("n must be positive");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(s.message(), "n must be positive");
    EXPECT_EQ(s.toString(), "InvalidArgument: n must be positive");
}

TEST(Status, AllErrorCodesHaveNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "Ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "InvalidArgument");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unsupported), "Unsupported");
    EXPECT_STREQ(errorCodeName(ErrorCode::OutOfMemory), "OutOfMemory");
    EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
                 "ResourceExhausted");
    EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "NotFound");
    EXPECT_STREQ(errorCodeName(ErrorCode::FailedPrecondition),
                 "FailedPrecondition");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "Internal");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unavailable), "Unavailable");
    EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
                 "DeadlineExceeded");
    EXPECT_STREQ(errorCodeName(ErrorCode::DataLoss), "DataLoss");
}

TEST(Status, ResilienceFactoryFunctions)
{
    EXPECT_EQ(Status::unavailable("sensor dropout").code(),
              ErrorCode::Unavailable);
    EXPECT_EQ(Status::deadlineExceeded("point overran").code(),
              ErrorCode::DeadlineExceeded);
    EXPECT_EQ(Status::dataLoss("uncorrectable ECC").code(),
              ErrorCode::DataLoss);
    EXPECT_EQ(Status::unavailable("sensor dropout").toString(),
              "Unavailable: sensor dropout");
}

TEST(Result, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.take(), 42);
}

TEST(Result, HoldsError)
{
    Result<int> r(Status::notFound("no such counter"));
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);
}

TEST(Result, MoveOnlyPayload)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.isOk());
    auto p = r.take();
    EXPECT_EQ(*p, 7);
}

TEST(ResultDeathTest, ValueOnErrorPanics)
{
    Result<int> r(Status::internal("whoops"));
    EXPECT_DEATH((void)r.value(), "value\\(\\) on error Result");
}

TEST(ResultDeathTest, OkStatusIntoResultPanics)
{
    EXPECT_DEATH(Result<int>(Status::ok()), "non-ok status");
}

} // namespace
} // namespace mc
