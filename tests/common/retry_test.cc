/**
 * @file
 * Tests of RetryPolicy: the deterministic backoff sequence, the
 * retriable-code set, and retryCall's budget/last-error semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/retry.hh"

namespace mc {
namespace {

TEST(RetryPolicy, BackoffSequenceIsExponentialAndCapped)
{
    RetryPolicy policy;
    policy.initialBackoffSec = 0.05;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoffSec = 0.3;

    EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(1), 0.05);
    EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(2), 0.1);
    EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(3), 0.2);
    EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(4), 0.3); // capped
    EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(9), 0.3);
}

TEST(RetryPolicy, BackoffIsDeterministic)
{
    RetryPolicy a, b;
    for (int retry = 1; retry < 8; ++retry)
        EXPECT_DOUBLE_EQ(a.backoffBeforeRetry(retry),
                         b.backoffBeforeRetry(retry));
}

TEST(RetryPolicy, RetriableCodes)
{
    const RetryPolicy policy;
    EXPECT_TRUE(policy.retriable(ErrorCode::Unavailable));
    EXPECT_TRUE(policy.retriable(ErrorCode::DeadlineExceeded));
    EXPECT_TRUE(policy.retriable(ErrorCode::ResourceExhausted));

    EXPECT_FALSE(policy.retriable(ErrorCode::Ok));
    EXPECT_FALSE(policy.retriable(ErrorCode::InvalidArgument));
    EXPECT_FALSE(policy.retriable(ErrorCode::OutOfMemory));
    EXPECT_FALSE(policy.retriable(ErrorCode::DataLoss));
    EXPECT_FALSE(policy.retriable(ErrorCode::Internal));
}

TEST(RetryCall, SucceedsAfterTransientFailures)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;

    int calls = 0;
    double backoff = 0.0;
    const Result<int> r = retryCall(
        policy,
        [&]() -> Result<int> {
            if (++calls < 3)
                return Status::unavailable("flaky");
            return 42;
        },
        &backoff);

    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(calls, 3);
    // Two retries: initial + initial * multiplier.
    EXPECT_DOUBLE_EQ(backoff, policy.backoffBeforeRetry(1) +
                                  policy.backoffBeforeRetry(2));
}

TEST(RetryCall, ExhaustionReturnsLastError)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;

    int calls = 0;
    const Result<int> r =
        retryCall(policy, [&]() -> Result<int> {
            ++calls;
            if (calls < 3)
                return Status::unavailable("early");
            return Status::deadlineExceeded("late");
        });

    EXPECT_EQ(calls, 3);
    ASSERT_FALSE(r.isOk());
    // The *last* error is reported, not the first.
    EXPECT_EQ(r.status().code(), ErrorCode::DeadlineExceeded);
    EXPECT_EQ(r.status().message(), "late");
}

TEST(RetryCall, NonRetriableErrorReturnsImmediately)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;

    int calls = 0;
    double backoff = -1.0;
    const Result<int> r = retryCall(
        policy,
        [&]() -> Result<int> {
            ++calls;
            return Status::outOfMemory("operands exceed HBM");
        },
        &backoff);

    EXPECT_EQ(calls, 1);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::OutOfMemory);
    EXPECT_DOUBLE_EQ(backoff, 0.0);
}

TEST(RetryCall, WorksWithPlainStatus)
{
    RetryPolicy policy;
    policy.maxAttempts = 2;
    int calls = 0;
    const Status s = retryCall(policy, [&]() -> Status {
        ++calls;
        return Status::unavailable("still down");
    });
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(s.code(), ErrorCode::Unavailable);
}

TEST(RetryCall, NoneNeverRetries)
{
    int calls = 0;
    const Status s = retryCall(RetryPolicy::none(), [&]() -> Status {
        ++calls;
        return Status::unavailable("transient");
    });
    EXPECT_EQ(calls, 1);
    EXPECT_FALSE(s.isOk());
}

TEST(RetryCallWithin, GenerousBudgetBehavesLikeRetryCall)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;

    int calls = 0;
    double backoff = 0.0;
    const Result<int> r = retryCallWithin(
        policy, 1e9,
        [&]() -> Result<int> {
            if (++calls < 3)
                return Status::unavailable("flaky");
            return 42;
        },
        &backoff);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(calls, 3);
    EXPECT_DOUBLE_EQ(backoff, policy.backoffBeforeRetry(1) +
                                  policy.backoffBeforeRetry(2));
}

TEST(RetryCallWithin, DeadlineExpiringMidBackoffIsDeadlineExceeded)
{
    // The satellite contract: a deadline that expires *between* retries
    // must surface as DeadlineExceeded — not as the underlying
    // transient error after sleeping past the budget.
    RetryPolicy policy;
    policy.maxAttempts = 10;
    policy.initialBackoffSec = 0.05;
    policy.backoffMultiplier = 2.0;

    // Budget admits the first two backoffs (0.05 + 0.1 = 0.15) but not
    // the third (0.2 would reach 0.35 > 0.2).
    int calls = 0;
    double backoff = -1.0;
    const Result<int> r = retryCallWithin(
        policy, 0.2,
        [&]() -> Result<int> {
            ++calls;
            return Status::unavailable("still flaky");
        },
        &backoff);

    EXPECT_EQ(calls, 3); // attempt, retry, retry — then the budget gate
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::DeadlineExceeded);
    // Only the *charged* backoff is reported: the refused third backoff
    // never advances the caller's clock.
    EXPECT_DOUBLE_EQ(backoff, 0.15);
    EXPECT_LE(backoff, 0.2);
}

TEST(RetryCallWithin, ZeroBudgetAllowsTheFirstAttemptOnly)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;

    int calls = 0;
    double backoff = -1.0;
    const Status s = retryCallWithin(
        policy, 0.0,
        [&]() -> Status {
            ++calls;
            return Status::unavailable("down");
        },
        &backoff);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(s.code(), ErrorCode::DeadlineExceeded);
    EXPECT_DOUBLE_EQ(backoff, 0.0);
}

TEST(RetryCallWithin, SuccessAndNonRetriableSkipTheBudgetGate)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;

    // Success on the first attempt never consults the budget.
    int calls = 0;
    const Result<int> ok = retryCallWithin(
        policy, 0.0, [&]() -> Result<int> {
            ++calls;
            return 7;
        });
    ASSERT_TRUE(ok.isOk());
    EXPECT_EQ(ok.value(), 7);
    EXPECT_EQ(calls, 1);

    // A permanent error is reported as itself, not DeadlineExceeded.
    const Status s = retryCallWithin(policy, 0.0, [&]() -> Status {
        return Status::invalidArgument("bad shape");
    });
    EXPECT_EQ(s.code(), ErrorCode::InvalidArgument);
}

} // namespace
} // namespace mc
