/**
 * @file
 * Tests of the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"

namespace mc {
namespace {

CliParser
makeParser()
{
    CliParser p("test program");
    p.addFlag("verbose", false, "enable verbose output");
    p.addFlag("iters", static_cast<std::int64_t>(100), "iteration count");
    p.addFlag("alpha", 0.1, "alpha scale");
    p.addFlag("combo", std::string("sgemm"), "GEMM combo");
    return p;
}

TEST(CliParser, DefaultsApply)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog"};
    p.parse(1, argv);
    EXPECT_FALSE(p.getBool("verbose"));
    EXPECT_EQ(p.getInt("iters"), 100);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), 0.1);
    EXPECT_EQ(p.getString("combo"), "sgemm");
}

TEST(CliParser, EqualsSyntax)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters=250", "--alpha=0.5",
                          "--combo=hss", "--verbose=true"};
    p.parse(5, argv);
    EXPECT_EQ(p.getInt("iters"), 250);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), 0.5);
    EXPECT_EQ(p.getString("combo"), "hss");
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(CliParser, SpaceSeparatedValue)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters", "42"};
    p.parse(3, argv);
    EXPECT_EQ(p.getInt("iters"), 42);
}

TEST(CliParser, BareBooleanFlag)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--verbose"};
    p.parse(2, argv);
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(CliParser, PositionalArgumentsCollected)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "input.csv", "--verbose", "out.csv"};
    p.parse(4, argv);
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "input.csv");
    EXPECT_EQ(p.positional()[1], "out.csv");
}

TEST(CliParser, NegativeNumbers)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters=-5", "--alpha=-1.5"};
    p.parse(3, argv);
    EXPECT_EQ(p.getInt("iters"), -5);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), -1.5);
}

TEST(CliParser, UsageMentionsFlagsAndHelp)
{
    CliParser p = makeParser();
    const std::string usage = p.usage();
    EXPECT_NE(usage.find("--iters"), std::string::npos);
    EXPECT_NE(usage.find("iteration count"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(CliParserDeathTest, UnknownFlagIsFatal)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--no-such-flag"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown flag --no-such-flag");
}

TEST(CliParserDeathTest, MalformedIntIsFatal)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters=abc"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(CliParserDeathTest, MissingValueIsFatal)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters"};
    EXPECT_EXIT(p.parse(2, argv), ::testing::ExitedWithCode(1),
                "requires a value");
}

TEST(CliParserDeathTest, WrongTypeAccessPanics)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog"};
    p.parse(1, argv);
    EXPECT_DEATH((void)p.getBool("iters"), "wrong type");
    EXPECT_DEATH((void)p.getInt("never-registered"), "never registered");
}

} // namespace
} // namespace mc
