/**
 * @file
 * Tests of the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/status.hh"

namespace mc {
namespace {

CliParser
makeParser()
{
    CliParser p("test program");
    p.addFlag("verbose", false, "enable verbose output");
    p.addFlag("iters", static_cast<std::int64_t>(100), "iteration count");
    p.addFlag("alpha", 0.1, "alpha scale");
    p.addFlag("combo", std::string("sgemm"), "GEMM combo");
    return p;
}

TEST(CliParser, DefaultsApply)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog"};
    p.parse(1, argv);
    EXPECT_FALSE(p.getBool("verbose"));
    EXPECT_EQ(p.getInt("iters"), 100);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), 0.1);
    EXPECT_EQ(p.getString("combo"), "sgemm");
}

TEST(CliParser, EqualsSyntax)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters=250", "--alpha=0.5",
                          "--combo=hss", "--verbose=true"};
    p.parse(5, argv);
    EXPECT_EQ(p.getInt("iters"), 250);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), 0.5);
    EXPECT_EQ(p.getString("combo"), "hss");
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(CliParser, SpaceSeparatedValue)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters", "42"};
    p.parse(3, argv);
    EXPECT_EQ(p.getInt("iters"), 42);
}

TEST(CliParser, BareBooleanFlag)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--verbose"};
    p.parse(2, argv);
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(CliParser, PositionalArgumentsCollected)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "input.csv", "--verbose", "out.csv"};
    p.parse(4, argv);
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "input.csv");
    EXPECT_EQ(p.positional()[1], "out.csv");
}

TEST(CliParser, NegativeNumbers)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters=-5", "--alpha=-1.5"};
    p.parse(3, argv);
    EXPECT_EQ(p.getInt("iters"), -5);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), -1.5);
}

TEST(CliParser, UsageMentionsFlagsAndHelp)
{
    CliParser p = makeParser();
    const std::string usage = p.usage();
    EXPECT_NE(usage.find("--iters"), std::string::npos);
    EXPECT_NE(usage.find("iteration count"), std::string::npos);
    EXPECT_NE(usage.find("--help"), std::string::npos);
}

// Every usage error must exit with the shared Usage code (2) and the
// one-line "<prog>: error: ..." format the suite supervisor and shell
// scripts key on.

TEST(CliParserDeathTest, UnknownFlagIsUsageError)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--no-such-flag"};
    EXPECT_EXIT(p.parse(2, argv),
                ::testing::ExitedWithCode(exit_code::Usage),
                "prog: error: unknown flag --no-such-flag");
}

TEST(CliParserDeathTest, MalformedIntIsUsageError)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters=abc"};
    EXPECT_EXIT(p.parse(2, argv),
                ::testing::ExitedWithCode(exit_code::Usage),
                "prog: error: .*expects an integer");
}

TEST(CliParserDeathTest, MalformedDoubleIsUsageError)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--alpha=fast"};
    EXPECT_EXIT(p.parse(2, argv),
                ::testing::ExitedWithCode(exit_code::Usage),
                "prog: error: .*expects a number");
}

TEST(CliParserDeathTest, MissingValueIsUsageError)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog", "--iters"};
    EXPECT_EXIT(p.parse(2, argv),
                ::testing::ExitedWithCode(exit_code::Usage),
                "prog: error: .*requires a value");
}

TEST(CliParserDeathTest, IntConstraintRejectsZero)
{
    CliParser p = makeParser();
    p.addFlag("jobs", static_cast<std::int64_t>(1), "workers");
    p.requireIntAtLeast("jobs", 1);
    const char *argv[] = {"prog", "--jobs", "0"};
    EXPECT_EXIT(p.parse(3, argv),
                ::testing::ExitedWithCode(exit_code::Usage),
                "prog: error: --jobs must be >= 1, got 0");
}

TEST(CliParserDeathTest, IntConstraintRejectsNegative)
{
    CliParser p = makeParser();
    p.addFlag("reps", static_cast<std::int64_t>(10), "repetitions");
    p.requireIntAtLeast("reps", 1);
    const char *argv[] = {"prog", "--reps=-3"};
    EXPECT_EXIT(p.parse(2, argv),
                ::testing::ExitedWithCode(exit_code::Usage),
                "prog: error: --reps must be >= 1, got -3");
}

TEST(CliParserDeathTest, DoubleConstraintRejectsNonPositive)
{
    CliParser p = makeParser();
    p.addFlag("deadline-sec", 3600.0, "deadline");
    p.requirePositiveDouble("deadline-sec");
    const char *argv[] = {"prog", "--deadline-sec=0"};
    EXPECT_EXIT(p.parse(2, argv),
                ::testing::ExitedWithCode(exit_code::Usage),
                "prog: error: --deadline-sec must be positive");
}

TEST(CliParser, ConstraintAcceptsValidValues)
{
    CliParser p = makeParser();
    p.addFlag("jobs", static_cast<std::int64_t>(1), "workers");
    p.requireIntAtLeast("jobs", 1);
    p.addFlag("deadline-sec", 3600.0, "deadline");
    p.requirePositiveDouble("deadline-sec");
    const char *argv[] = {"prog", "--jobs=8", "--deadline-sec=0.5"};
    p.parse(3, argv);
    EXPECT_EQ(p.getInt("jobs"), 8);
    EXPECT_DOUBLE_EQ(p.getDouble("deadline-sec"), 0.5);
}

TEST(CliParser, ConstraintOnDefaultValueHolds)
{
    // Constraints apply to the parsed result, not only to explicitly
    // passed flags: a valid default passes untouched.
    CliParser p = makeParser();
    p.addFlag("jobs", static_cast<std::int64_t>(1), "workers");
    p.requireIntAtLeast("jobs", 1);
    const char *argv[] = {"prog"};
    p.parse(1, argv);
    EXPECT_EQ(p.getInt("jobs"), 1);
}

TEST(CliParserDeathTest, WrongTypeAccessPanics)
{
    CliParser p = makeParser();
    const char *argv[] = {"prog"};
    p.parse(1, argv);
    EXPECT_DEATH((void)p.getBool("iters"), "wrong type");
    EXPECT_DEATH((void)p.getInt("never-registered"), "never registered");
}

} // namespace
} // namespace mc
