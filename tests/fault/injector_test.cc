/**
 * @file
 * Tests of the fault-injection layer: spec parsing, per-site stream
 * independence, and the seed-for-seed determinism the sweep engine's
 * --jobs contract depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.hh"

namespace mc {
namespace fault {
namespace {

TEST(FaultSpec, ParseEmptyIsDisabled)
{
    auto r = parseFaultSpec("");
    ASSERT_TRUE(r.isOk());
    EXPECT_FALSE(r.value().any());
}

TEST(FaultSpec, ParseFullSpec)
{
    auto r = parseFaultSpec(
        "ecc=1e-3,oom=0.01,smi_dropout=0.05,hip=0.2,ecc_fatal=0.5,"
        "throttle=1,hang=0,smi_stale=0.25");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    const FaultSpec spec = r.value();
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::EccCorrectable), 1e-3);
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::HbmAlloc), 0.01);
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::SmiDropout), 0.05);
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::HipApi), 0.2);
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::EccUncorrectable), 0.5);
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::Throttle), 1.0);
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::Hang), 0.0);
    EXPECT_DOUBLE_EQ(spec.probability(FaultSite::SmiStale), 0.25);
    EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, ParseRejectsUnknownKey)
{
    auto r = parseFaultSpec("cosmic_ray=0.5");
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
}

TEST(FaultSpec, ParseRejectsBadValue)
{
    EXPECT_FALSE(parseFaultSpec("oom=lots").isOk());
    EXPECT_FALSE(parseFaultSpec("oom=1.5").isOk());
    EXPECT_FALSE(parseFaultSpec("oom=-0.1").isOk());
    EXPECT_FALSE(parseFaultSpec("oom").isOk());
}

TEST(FaultSpec, ToStringRoundTrips)
{
    auto r = parseFaultSpec("oom=0.01,smi_dropout=0.05");
    ASSERT_TRUE(r.isOk());
    auto again = parseFaultSpec(r.value().toString());
    ASSERT_TRUE(again.isOk());
    for (int i = 0; i < numFaultSites; ++i) {
        EXPECT_DOUBLE_EQ(again.value().probabilities[i],
                         r.value().probabilities[i]);
    }
}

TEST(Injector, DefaultIsDisabledAndNeverFires)
{
    Injector inj;
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(inj.fire(FaultSite::HbmAlloc));
    EXPECT_EQ(inj.drawsAt(FaultSite::HbmAlloc), 0u);
    EXPECT_EQ(inj.firedTotal(), 0u);
}

TEST(Injector, SameSeedSameDecisions)
{
    const FaultSpec spec = parseFaultSpec("oom=0.3,smi_dropout=0.1").value();
    Injector a(spec, 0xfeedu);
    Injector b(spec, 0xfeedu);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.fire(FaultSite::HbmAlloc), b.fire(FaultSite::HbmAlloc));
        EXPECT_EQ(a.fire(FaultSite::SmiDropout),
                  b.fire(FaultSite::SmiDropout));
    }
    EXPECT_EQ(a.firedTotal(), b.firedTotal());
}

TEST(Injector, SiteStreamsAreIndependent)
{
    // Drawing extra decisions at one site must not shift another
    // site's sequence: the SMI sampler polls thousands of times per
    // kernel and must never perturb allocation faults.
    const FaultSpec spec =
        parseFaultSpec("oom=0.5,smi_dropout=0.5").value();
    Injector a(spec, 42);
    Injector b(spec, 42);

    std::vector<bool> allocA, allocB;
    for (int i = 0; i < 200; ++i) {
        allocA.push_back(a.fire(FaultSite::HbmAlloc));
        // b interleaves SMI draws between alloc draws; a does not.
        b.fire(FaultSite::SmiDropout);
        allocB.push_back(b.fire(FaultSite::HbmAlloc));
        b.fire(FaultSite::SmiDropout);
    }
    EXPECT_EQ(allocA, allocB);
}

TEST(Injector, ReseedReproducesStream)
{
    const FaultSpec spec = parseFaultSpec("hip=0.4").value();
    Injector inj(spec, 7);
    std::vector<bool> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(inj.fire(FaultSite::HipApi));

    inj.reseed(7);
    EXPECT_EQ(inj.drawsAt(FaultSite::HipApi), 0u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(inj.fire(FaultSite::HipApi), first[std::size_t(i)]);
}

TEST(Injector, ZeroProbabilitySiteNeverFiresOrDraws)
{
    const FaultSpec spec = parseFaultSpec("oom=1").value();
    Injector inj(spec, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.fire(FaultSite::Hang));
    EXPECT_EQ(inj.drawsAt(FaultSite::Hang), 0u);
    // p=1 always fires.
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(inj.fire(FaultSite::HbmAlloc));
    EXPECT_EQ(inj.firedAt(FaultSite::HbmAlloc), 100u);
}

TEST(Injector, EmpiricalRateTracksProbability)
{
    const FaultSpec spec = parseFaultSpec("smi_dropout=0.05").value();
    Injector inj(spec, 0xabcdef);
    const int draws = 20000;
    int hits = 0;
    for (int i = 0; i < draws; ++i)
        hits += inj.fire(FaultSite::SmiDropout);
    const double rate = double(hits) / draws;
    EXPECT_NEAR(rate, 0.05, 0.01);
    EXPECT_EQ(inj.firedAt(FaultSite::SmiDropout), std::uint64_t(hits));
    EXPECT_EQ(inj.drawsAt(FaultSite::SmiDropout), std::uint64_t(draws));
}

TEST(Injector, FaultSeedDecorrelatesFromPointSeed)
{
    // The fault stream must differ from the noise stream even though
    // both descend from the same per-point seed.
    EXPECT_NE(faultSeed(12345), 12345u);
    EXPECT_NE(faultSeed(12345), faultSeed(12346));
    EXPECT_EQ(faultSeed(12345), faultSeed(12345));
}

TEST(Injector, SiteNamesMatchInjectKeys)
{
    EXPECT_STREQ(faultSiteName(FaultSite::HbmAlloc), "oom");
    EXPECT_STREQ(faultSiteName(FaultSite::HipApi), "hip");
    EXPECT_STREQ(faultSiteName(FaultSite::EccCorrectable), "ecc");
    EXPECT_STREQ(faultSiteName(FaultSite::EccUncorrectable), "ecc_fatal");
    EXPECT_STREQ(faultSiteName(FaultSite::Throttle), "throttle");
    EXPECT_STREQ(faultSiteName(FaultSite::Hang), "hang");
    EXPECT_STREQ(faultSiteName(FaultSite::SmiDropout), "smi_dropout");
    EXPECT_STREQ(faultSiteName(FaultSite::SmiStale), "smi_stale");
}

} // namespace
} // namespace fault
} // namespace mc
