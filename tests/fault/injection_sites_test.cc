/**
 * @file
 * Tests of the wired injection sites: the simulated device (throttle,
 * ECC, hang), the HIP runtime (transient alloc/launch failures), and
 * fault propagation through the BLAS layer.
 */

#include <gtest/gtest.h>

#include "arch/mfma_isa.hh"
#include "blas/gemm.hh"
#include "fault/injector.hh"
#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace {

sim::KernelProfile
smallProfile()
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    return wmma::mfmaLoopProfile(*inst, 1000, 440, "fault_probe");
}

sim::SimOptions
quietOptions(fault::Injector *faults)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    opts.faults = faults;
    return opts;
}

TEST(DeviceFaults, NullInjectorChangesNothing)
{
    sim::Mi250x clean(arch::defaultCdna2(), quietOptions(nullptr));
    fault::Injector off; // default-constructed: disabled
    sim::Mi250x wired(arch::defaultCdna2(), quietOptions(&off));

    const auto a = clean.runOnGcd(smallProfile());
    const auto b = wired.runOnGcd(smallProfile());
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.fault, ErrorCode::Ok);
    EXPECT_EQ(b.fault, ErrorCode::Ok);
}

TEST(DeviceFaults, InjectedThrottleLowersClock)
{
    fault::Injector inj(fault::parseFaultSpec("throttle=1").value(), 5);
    sim::Mi250x dev(arch::defaultCdna2(), quietOptions(&inj));
    sim::Mi250x clean(arch::defaultCdna2(), quietOptions(nullptr));

    const auto hit = dev.runOnGcd(smallProfile());
    const auto ref = clean.runOnGcd(smallProfile());
    EXPECT_TRUE(hit.throttled);
    EXPECT_LT(hit.effClockHz, ref.effClockHz);
    EXPECT_GT(hit.seconds, ref.seconds);
    EXPECT_EQ(hit.fault, ErrorCode::Ok); // slower, not wrong
}

TEST(DeviceFaults, CorrectableEccStallsButSucceeds)
{
    fault::Injector inj(fault::parseFaultSpec("ecc=1").value(), 5);
    sim::Mi250x dev(arch::defaultCdna2(), quietOptions(&inj));
    sim::Mi250x clean(arch::defaultCdna2(), quietOptions(nullptr));

    const auto hit = dev.runOnGcd(smallProfile());
    const auto ref = clean.runOnGcd(smallProfile());
    EXPECT_GT(hit.seconds, ref.seconds);
    EXPECT_EQ(hit.fault, ErrorCode::Ok);
    EXPECT_EQ(inj.firedAt(fault::FaultSite::EccCorrectable), 1u);
}

TEST(DeviceFaults, UncorrectableEccIsDataLoss)
{
    fault::Injector inj(fault::parseFaultSpec("ecc_fatal=1").value(), 5);
    sim::Mi250x dev(arch::defaultCdna2(), quietOptions(&inj));
    const auto r = dev.runOnGcd(smallProfile());
    EXPECT_EQ(r.fault, ErrorCode::DataLoss);
    EXPECT_FALSE(r.ok());
}

TEST(DeviceFaults, HungKernelReportsEnormousDuration)
{
    fault::Injector inj(fault::parseFaultSpec("hang=1").value(), 5);
    sim::Mi250x dev(arch::defaultCdna2(), quietOptions(&inj));
    const auto r = dev.runOnGcd(smallProfile());
    // Large enough to trip any per-point deadline (see bench_util).
    EXPECT_GT(r.seconds, 1e8);
}

TEST(DeviceFaults, MeasureKernelPathInjectsToo)
{
    fault::Injector inj(
        fault::parseFaultSpec("throttle=1,ecc_fatal=1").value(), 5);
    sim::Mi250x dev(arch::defaultCdna2(), quietOptions(&inj));
    Rng noise(1);
    const auto r = dev.measureKernel(smallProfile(), noise);
    EXPECT_TRUE(r.throttled);
    EXPECT_EQ(r.fault, ErrorCode::DataLoss);
}

TEST(DeviceFaults, SameSeedSameFaultedTiming)
{
    const auto spec =
        fault::parseFaultSpec("throttle=0.5,ecc=0.5").value();
    fault::Injector ia(spec, 77), ib(spec, 77);
    sim::Mi250x da(arch::defaultCdna2(), quietOptions(&ia));
    sim::Mi250x db(arch::defaultCdna2(), quietOptions(&ib));
    for (int i = 0; i < 20; ++i) {
        const auto ra = da.runOnGcd(smallProfile());
        const auto rb = db.runOnGcd(smallProfile());
        EXPECT_DOUBLE_EQ(ra.seconds, rb.seconds);
        EXPECT_EQ(ra.throttled, rb.throttled);
        EXPECT_EQ(ra.fault, rb.fault);
    }
}

TEST(RuntimeFaults, TransientAllocFailureIsUnavailable)
{
    fault::Injector inj(fault::parseFaultSpec("oom=1").value(), 5);
    hip::Runtime rt(arch::defaultCdna2(), quietOptions(&inj));
    const auto r = rt.malloc(0, 1 << 20);
    ASSERT_FALSE(r.isOk());
    // Retriable — unlike genuine capacity exhaustion (OutOfMemory).
    EXPECT_EQ(r.status().code(), ErrorCode::Unavailable);
    EXPECT_EQ(rt.allocatedBytes(0), 0u);
}

TEST(RuntimeFaults, CapacityOomStaysOutOfMemory)
{
    fault::Injector inj(fault::parseFaultSpec("hip=1").value(), 5);
    hip::Runtime rt(arch::defaultCdna2(), quietOptions(&inj));
    const std::size_t capacity =
        rt.gpu().calibration().hbmBytesPerGcd;
    const auto r = rt.malloc(0, capacity + 1);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::OutOfMemory);
}

TEST(RuntimeFaults, TransientLaunchFailureRunsNothing)
{
    fault::Injector inj(fault::parseFaultSpec("hip=1").value(), 5);
    hip::Runtime rt(arch::defaultCdna2(), quietOptions(&inj));
    const auto r = rt.launch(smallProfile(), 0);
    EXPECT_EQ(r.fault, ErrorCode::Unavailable);
    EXPECT_DOUBLE_EQ(r.seconds, 0.0);
    // The kernel never ran: the device timeline did not advance.
    EXPECT_DOUBLE_EQ(rt.gpu().timelineSec(), 0.0);
}

TEST(RuntimeFaults, AsyncLaunchFaultLeavesTailAlone)
{
    fault::Injector inj(fault::parseFaultSpec("hip=1").value(), 5);
    hip::Runtime rt(arch::defaultCdna2(), quietOptions(&inj));
    const auto r = rt.launchAsync(smallProfile(), 0);
    EXPECT_EQ(r.fault, ErrorCode::Unavailable);
    EXPECT_DOUBLE_EQ(rt.deviceTailSec(0), 0.0);
}

TEST(BlasFaults, KernelFaultSurfacesAsErrorStatus)
{
    fault::Injector inj(fault::parseFaultSpec("hip=1").value(), 5);
    hip::Runtime rt(arch::defaultCdna2(), quietOptions(&inj));
    blas::GemmEngine engine(rt);

    blas::GemmConfig config;
    config.combo = blas::GemmCombo::Sgemm;
    config.m = config.n = config.k = 512;
    const auto r = engine.run(config);
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::Unavailable);
    // Operand buffers were released on the error path.
    EXPECT_EQ(rt.allocatedBytes(0), 0u);
}

TEST(BlasFaults, CleanRunStillSucceedsWithInjectorWired)
{
    fault::Injector inj(
        fault::parseFaultSpec("smi_dropout=0.5").value(), 5);
    hip::Runtime rt(arch::defaultCdna2(), quietOptions(&inj));
    blas::GemmEngine engine(rt);

    blas::GemmConfig config;
    config.combo = blas::GemmCombo::Sgemm;
    config.m = config.n = config.k = 512;
    const auto r = engine.run(config);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
}

} // namespace
} // namespace mc
