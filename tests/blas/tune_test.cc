/**
 * @file
 * The autotuner (blas/tune.hh): deterministic coordinate-descent
 * search under a stubbed cost model, artifact round-trip through the
 * CRC32-guarded JSON form, rejection of corrupted and stale artifacts,
 * MC_TUNE environment semantics, auto-field resolution precedence, and
 * — the invariant everything else rests on — that tuned block
 * configurations stay bit-identical to the retained scalar reference
 * on every SIMD tier.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "blas/fast_gemm.hh"
#include "blas/functional.hh"
#include "blas/plan_cache.hh"
#include "blas/simd_dispatch.hh"
#include "blas/tune.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "mc_tune_" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Deactivate tuning and restore a pristine MC_TUNE state per test. */
class TuneTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("MC_TUNE");
        reloadTuningFromEnv();
    }

    void
    TearDown() override
    {
        ::unsetenv("MC_TUNE");
        reloadTuningFromEnv();
    }
};

TuningArtifact
sampleArtifact(std::uint64_t fingerprint)
{
    TuningArtifact artifact;
    artifact.fingerprint = fingerprint;
    artifact.createdBy = "tune_test";
    TuneEntry entry;
    entry.config = TunedConfig{128, 256, 512, 1};
    entry.speedupVsDefault = 1.31;
    entry.bound = "backend";
    entry.tunedN = 200;
    artifact.entries.emplace(
        TuneKey{GemmCombo::Sgemm, SimdTier::Scalar, 256}, entry);
    TuneEntry entry2;
    entry2.config = TunedConfig{32, 64, 128, 2};
    entry2.speedupVsDefault = 1.05;
    entry2.bound = "retiring";
    entry2.tunedN = 1024;
    artifact.entries.emplace(
        TuneKey{GemmCombo::Dgemm, SimdTier::Avx2, 1024}, entry2);
    return artifact;
}

// ---- tuneBucket ----------------------------------------------------------

TEST_F(TuneTest, BucketIsClampedPowerOfTwo)
{
    EXPECT_EQ(tuneBucket(1), 256u);
    EXPECT_EQ(tuneBucket(255), 256u);
    EXPECT_EQ(tuneBucket(256), 256u);
    EXPECT_EQ(tuneBucket(257), 512u);
    EXPECT_EQ(tuneBucket(1024), 1024u);
    EXPECT_EQ(tuneBucket(1025), 2048u);
    EXPECT_EQ(tuneBucket(6000), 8192u);
    EXPECT_EQ(tuneBucket(100000), 8192u);
}

// ---- The search ----------------------------------------------------------

TEST_F(TuneTest, SearchFindsStubOptimumDeterministically)
{
    // Stubbed cost model with a known optimum at (128, 256, 512):
    // each preferred coordinate shaves a fixed slice off the cost.
    const auto cost = [](const TunedConfig &c) {
        double seconds = 2.0e-3;
        if (c.blockK == 512)
            seconds -= 0.8e-3;
        if (c.blockN == 256)
            seconds -= 0.4e-3;
        if (c.blockM == 128)
            seconds -= 0.2e-3;
        return TuneMeasurement{seconds, prof::TopdownClass::Unknown};
    };
    TuneSearchSpace space;
    const TuneSearchResult first = tuneSearch(cost, space);
    const TuneSearchResult second = tuneSearch(cost, space);

    EXPECT_EQ(first.best.blockM, 128);
    EXPECT_EQ(first.best.blockN, 256);
    EXPECT_EQ(first.best.blockK, 512);
    EXPECT_EQ(first.best.threads, 1);
    EXPECT_DOUBLE_EQ(first.bestSeconds, 0.6e-3);
    EXPECT_DOUBLE_EQ(first.defaultSeconds, 2.0e-3);
    EXPECT_NEAR(first.speedup, 2.0e-3 / 0.6e-3, 1e-12);
    EXPECT_FALSE(first.budgetExhausted);

    // Identical inputs => identical outcome, measurement for
    // measurement (the budget is accounted from stub seconds, never a
    // live clock).
    EXPECT_EQ(first.best, second.best);
    EXPECT_EQ(first.measured, second.measured);
    EXPECT_EQ(first.pruned, second.pruned);
    EXPECT_DOUBLE_EQ(first.bestSeconds, second.bestSeconds);
}

TEST_F(TuneTest, BackendBoundPrunesLargerWorkingSets)
{
    // Flat cost, always backend-bound: the incumbent stays the default
    // configuration, and every candidate whose working set
    // ((bm + bk) * bn * accBytes) exceeds the default's is pruned
    // without being measured.
    int calls = 0;
    const auto cost = [&calls](const TunedConfig &) {
        ++calls;
        return TuneMeasurement{1.0e-3, prof::TopdownClass::BackendBound};
    };
    TuneSearchSpace space; // default candidates, accBytes = 4
    const TuneSearchResult result = tuneSearch(cost, space);

    EXPECT_EQ(result.best, TunedConfig{});
    // Default working set: (64 + 256) * 128. Measured: the default,
    // blockK=128, blockN=64, blockM={16, 32}. Pruned: blockK={512,
    // 1024}, blockN={256, 512}, blockM={128, 256}.
    EXPECT_EQ(result.measured, 5);
    EXPECT_EQ(result.pruned, 6);
    EXPECT_EQ(calls, result.measured);
}

TEST_F(TuneTest, RetiringPrunesMuchSmallerWorkingSets)
{
    // A retiring incumbent prunes candidates with less than half its
    // working set: blockN=16 gives (64+256)*16 = 5120 bytes*acc vs the
    // default's (64+256)*128 = 40960 — pruned unmeasured. blockN=64
    // sits at exactly half and is still measured.
    int calls = 0;
    const auto cost = [&calls](const TunedConfig &) {
        ++calls;
        return TuneMeasurement{1.0e-3, prof::TopdownClass::Retiring};
    };
    TuneSearchSpace space;
    space.blockM = {64};
    space.blockN = {16, 64, 128};
    space.blockK = {256};
    space.threads = {1};
    const TuneSearchResult result = tuneSearch(cost, space);
    EXPECT_EQ(result.best, TunedConfig{});
    EXPECT_EQ(result.measured, 2); // the default + blockN=64
    EXPECT_EQ(result.pruned, 1);   // blockN=16
    EXPECT_EQ(calls, result.measured);
}

TEST_F(TuneTest, BudgetStopsTheSearch)
{
    const auto cost = [](const TunedConfig &) {
        return TuneMeasurement{10.0, prof::TopdownClass::Unknown};
    };
    TuneSearchSpace space;
    space.budgetSec = 15.0; // default (10s) + one candidate (10s)
    const TuneSearchResult result = tuneSearch(cost, space);
    EXPECT_TRUE(result.budgetExhausted);
    EXPECT_EQ(result.measured, 2);
    EXPECT_EQ(result.best, TunedConfig{});
}

// ---- Artifact persistence ------------------------------------------------

TEST_F(TuneTest, ArtifactRoundTrips)
{
    const TuningArtifact artifact = sampleArtifact(0x1234abcd5678ef00ull);
    const std::string path = tempPath("roundtrip.json");
    ASSERT_TRUE(saveTuningArtifact(artifact, path).isOk());

    Result<TuningArtifact> loaded = loadTuningArtifact(path);
    ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().fingerprint, artifact.fingerprint);
    EXPECT_EQ(loaded.value().createdBy, "tune_test");
    ASSERT_EQ(loaded.value().entries.size(), 2u);
    const TuneEntry *entry =
        loaded.value().lookup(GemmCombo::Sgemm, SimdTier::Scalar, 200);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->config, (TunedConfig{128, 256, 512, 1}));
    EXPECT_DOUBLE_EQ(entry->speedupVsDefault, 1.31);
    EXPECT_EQ(entry->bound, "backend");
    EXPECT_EQ(entry->tunedN, 200u);
    // Bucket miss => null, not a neighbouring entry.
    EXPECT_EQ(loaded.value().lookup(GemmCombo::Sgemm, SimdTier::Scalar,
                                    4096),
              nullptr);
}

TEST_F(TuneTest, MissingArtifactIsNotFound)
{
    Result<TuningArtifact> loaded =
        loadTuningArtifact(tempPath("does_not_exist.json"));
    ASSERT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), ErrorCode::NotFound);
}

TEST_F(TuneTest, CorruptedArtifactIsDataLoss)
{
    const TuningArtifact artifact = sampleArtifact(hostTuneFingerprint());
    const std::string path = tempPath("corrupt.json");
    ASSERT_TRUE(saveTuningArtifact(artifact, path).isOk());

    // Flip one data digit: the JSON still parses, the CRC32 catches it.
    std::string text = readFile(path);
    const std::string::size_type pos = text.find("\"block_k\": 512");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::strlen("\"block_k\": 512"), "\"block_k\": 513");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text;
    }
    Result<TuningArtifact> loaded = loadTuningArtifact(path);
    ASSERT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), ErrorCode::DataLoss);
    EXPECT_NE(loaded.status().message().find("crc32"), std::string::npos);

    // Truncation (invalid JSON) is DataLoss too.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    loaded = loadTuningArtifact(path);
    ASSERT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), ErrorCode::DataLoss);

    // Wrong magic is DataLoss (a different format, not this artifact).
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "{\"magic\": \"mc-journal-v2\"}";
    }
    loaded = loadTuningArtifact(path);
    ASSERT_FALSE(loaded.isOk());
    EXPECT_EQ(loaded.status().code(), ErrorCode::DataLoss);
}

// ---- Activation ----------------------------------------------------------

TEST_F(TuneTest, StaleFingerprintRejectedOnActivation)
{
    TuningArtifact stale = sampleArtifact(hostTuneFingerprint() + 1);
    const Status status = setActiveTuningArtifact(std::move(stale));
    EXPECT_EQ(status.code(), ErrorCode::FailedPrecondition);
    EXPECT_FALSE(tuningActive());
    EXPECT_EQ(activeTuningLabel(), "none");
}

TEST_F(TuneTest, ActivationAndDeactivation)
{
    ASSERT_TRUE(
        setActiveTuningArtifact(sampleArtifact(hostTuneFingerprint()))
            .isOk());
    EXPECT_TRUE(tuningActive());
    EXPECT_EQ(activeTuningLabel().size(), 16u);
    const TuneEntry *entry =
        activeTuneEntry(GemmCombo::Sgemm, SimdTier::Scalar, 256);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->config.blockK, 512);

    ASSERT_TRUE(setActiveTuningArtifact(std::nullopt).isOk());
    EXPECT_FALSE(tuningActive());
    EXPECT_EQ(activeTuneEntry(GemmCombo::Sgemm, SimdTier::Scalar, 256),
              nullptr);
}

TEST_F(TuneTest, EnvOffVetoesActivation)
{
    ::setenv("MC_TUNE", "off", 1);
    reloadTuningFromEnv();
    const Status status =
        setActiveTuningArtifact(sampleArtifact(hostTuneFingerprint()));
    EXPECT_EQ(status.code(), ErrorCode::Unavailable);
    EXPECT_FALSE(tuningActive());
}

TEST_F(TuneTest, EnvPathActivatesArtifact)
{
    const std::string path = tempPath("env.json");
    ASSERT_TRUE(
        saveTuningArtifact(sampleArtifact(hostTuneFingerprint()), path)
            .isOk());
    ::setenv("MC_TUNE", path.c_str(), 1);
    reloadTuningFromEnv();
    EXPECT_TRUE(tuningActive());
    EXPECT_NE(activeTuneEntry(GemmCombo::Sgemm, SimdTier::Scalar, 100),
              nullptr);
}

TEST_F(TuneTest, EnvStaleOrCorruptArtifactIgnoredCleanly)
{
    const std::string path = tempPath("env_stale.json");
    ASSERT_TRUE(
        saveTuningArtifact(sampleArtifact(hostTuneFingerprint() + 7), path)
            .isOk());
    ::setenv("MC_TUNE", path.c_str(), 1);
    reloadTuningFromEnv(); // stale: warns, leaves tuning inactive
    EXPECT_FALSE(tuningActive());

    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "not json";
    }
    reloadTuningFromEnv(); // corrupt: warns, leaves tuning inactive
    EXPECT_FALSE(tuningActive());
}

// ---- Resolution precedence -----------------------------------------------

TEST_F(TuneTest, ResolutionPrecedence)
{
    // Inactive tuning: auto fields take the built-in defaults.
    FunctionalGemmOptions opts;
    opts.simd = SimdTier::Scalar;
    FunctionalGemmOptions r =
        resolveFunctionalOptions(opts, GemmCombo::Sgemm, 200);
    EXPECT_EQ(r.blockM, kDefaultBlockM);
    EXPECT_EQ(r.blockN, kDefaultBlockN);
    EXPECT_EQ(r.blockK, kDefaultBlockK);
    EXPECT_EQ(r.threads, 1);

    // Active artifact: auto fields take the tuned entry.
    ASSERT_TRUE(
        setActiveTuningArtifact(sampleArtifact(hostTuneFingerprint()))
            .isOk());
    r = resolveFunctionalOptions(opts, GemmCombo::Sgemm, 200);
    EXPECT_EQ(r.blockM, 128);
    EXPECT_EQ(r.blockN, 256);
    EXPECT_EQ(r.blockK, 512);

    // Explicit fields always win over the artifact.
    FunctionalGemmOptions explicit_opts = opts;
    explicit_opts.blockM = 48;
    r = resolveFunctionalOptions(explicit_opts, GemmCombo::Sgemm, 200);
    EXPECT_EQ(r.blockM, 48);
    EXPECT_EQ(r.blockN, 256); // still tuned
    EXPECT_EQ(r.blockK, 512);

    // threads = 0 (auto) adopts the tuned fan-out; explicit stays.
    FunctionalGemmOptions auto_threads = opts;
    auto_threads.threads = 0;
    r = resolveFunctionalOptions(auto_threads, GemmCombo::Sgemm, 200);
    EXPECT_EQ(r.threads, 1); // the entry's tuned thread count
    FunctionalGemmOptions four_threads = opts;
    four_threads.threads = 4;
    r = resolveFunctionalOptions(four_threads, GemmCombo::Sgemm, 200);
    EXPECT_EQ(r.threads, 4);

    // A key the artifact does not cover falls back to the defaults.
    r = resolveFunctionalOptions(opts, GemmCombo::Hgemm, 200);
    EXPECT_EQ(r.blockM, kDefaultBlockM);

    // MC_TUNE=off beats the already-active artifact.
    ::setenv("MC_TUNE", "off", 1);
    reloadTuningFromEnv();
    r = resolveFunctionalOptions(opts, GemmCombo::Sgemm, 200);
    EXPECT_EQ(r.blockM, kDefaultBlockM);
    EXPECT_EQ(r.blockN, kDefaultBlockN);
    EXPECT_EQ(r.blockK, kDefaultBlockK);
}

TEST_F(TuneTest, PlanKeySeparatesFunctionalConfigs)
{
    GemmConfig config;
    config.combo = GemmCombo::Sgemm;
    config.m = config.n = config.k = 512;
    PlannerOptions planner;
    FunctionalGemmOptions a, b;
    b.blockK = 512;
    const PlanKey ka = makePlanKey(config, planner, 42, a, 0);
    const PlanKey kb = makePlanKey(config, planner, 42, b, 0);
    const PlanKey ka2 = makePlanKey(config, planner, 42, a, 0);
    EXPECT_FALSE(ka == kb);
    EXPECT_TRUE(ka == ka2);
    // A tuning-fingerprint change keys a different plan even with
    // identical knobs (the resolution behind them changed).
    const PlanKey kt = makePlanKey(config, planner, 42, a, 99);
    EXPECT_FALSE(ka == kt);
}

// ---- Bit-exactness of tuned configurations -------------------------------

template <typename T>
Matrix<T>
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix<T> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
    return m;
}

template <typename TCD, typename TAB, typename TAcc>
void
expectTunedMatchesScalarReference(GemmCombo combo, bool round_each_step,
                                  std::size_t n)
{
    Rng rng(0xc0ffee);
    const Matrix<TAB> a = randomMatrix<TAB>(rng, n, n);
    const Matrix<TAB> b = randomMatrix<TAB>(rng, n, n);
    const Matrix<TCD> c = randomMatrix<TCD>(rng, n, n);
    Matrix<TCD> d_ref(n, n), d_tuned(n, n);
    scalarReferenceGemm<TCD, TAB, TAcc>(1.25, a, b, 0.5, c, d_ref,
                                        round_each_step);
    for (SimdTier tier : availableSimdTiers()) {
        FunctionalGemmOptions opts; // blocks auto => the tuned entry
        opts.simd = tier;
        fastReferenceGemm<TCD, TAB, TAcc>(1.25, a, b, 0.5, c, d_tuned,
                                          round_each_step, opts);
        EXPECT_EQ(std::memcmp(d_ref.data(), d_tuned.data(),
                              n * n * sizeof(TCD)),
                  0)
            << comboInfo(combo).name << " diverged on tier "
            << simdTierName(tier);
    }
}

TEST_F(TuneTest, TunedConfigsAreBitIdenticalToScalarReference)
{
    // Activate deliberately odd blocks for every (combo, tier) at the
    // 256 bucket: the whole point of the artifact is that it may only
    // ever change speed, never bytes.
    TuningArtifact artifact;
    artifact.fingerprint = hostTuneFingerprint();
    artifact.createdBy = "tune_test bit-exactness";
    for (GemmCombo combo : allCombos) {
        for (SimdTier tier : availableSimdTiers()) {
            TuneEntry entry;
            entry.config = TunedConfig{24, 40, 33, 2};
            entry.speedupVsDefault = 1.0;
            entry.bound = "backend";
            entry.tunedN = 96;
            artifact.entries.emplace(TuneKey{combo, tier, 256}, entry);
        }
    }
    ASSERT_TRUE(setActiveTuningArtifact(std::move(artifact)).isOk());

    const std::size_t n = 96; // straddles the odd 24/40/33 blocks
    expectTunedMatchesScalarReference<double, double, double>(
        GemmCombo::Dgemm, false, n);
    expectTunedMatchesScalarReference<float, float, float>(
        GemmCombo::Sgemm, false, n);
    expectTunedMatchesScalarReference<fp::Half, fp::Half, float>(
        GemmCombo::Hgemm, true, n);
    expectTunedMatchesScalarReference<fp::Half, fp::Half, float>(
        GemmCombo::Hhs, false, n);
    expectTunedMatchesScalarReference<float, fp::Half, float>(
        GemmCombo::Hss, false, n);

    ASSERT_TRUE(setActiveTuningArtifact(std::nullopt).isOk());
}

} // namespace
} // namespace blas
} // namespace mc
