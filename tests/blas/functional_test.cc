/**
 * @file
 * Tests of the functional GEMM paths: the tiled Matrix Core execution
 * against the scalar reference for every datatype combination, across
 * sizes including non-multiples of the tile shape.
 */

#include <gtest/gtest.h>

#include "blas/functional.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

template <typename T>
Matrix<T>
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix<T> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
    return m;
}

class TiledGemmSizes : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(TiledGemmSizes, MixedPrecisionMatchesReference)
{
    const std::size_t n = GetParam();
    Rng rng(81 + n);
    const auto a = randomMatrix<fp::Half>(rng, n, n);
    const auto b = randomMatrix<fp::Half>(rng, n, n);
    const auto c = randomMatrix<float>(rng, n, n);
    Matrix<float> d_ref(n, n), d_mc(n, n);

    referenceGemm<float, fp::Half, float>(0.1, a, b, 0.1, c, d_ref);

    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);
    tiledMatrixCoreGemm<float, fp::Half, float>(*inst, 0.1, a, b, 0.1, c,
                                                d_mc);

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(d_mc(i, j), d_ref(i, j), 1e-3)
                << "(" << i << "," << j << ")";
}

TEST_P(TiledGemmSizes, DoublePrecisionMatchesReference)
{
    const std::size_t n = GetParam();
    Rng rng(97 + n);
    const auto a = randomMatrix<double>(rng, n, n);
    const auto b = randomMatrix<double>(rng, n, n);
    const auto c = randomMatrix<double>(rng, n, n);
    Matrix<double> d_ref(n, n), d_mc(n, n);

    referenceGemm<double, double, double>(0.1, a, b, 0.1, c, d_ref);
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    ASSERT_NE(inst, nullptr);
    tiledMatrixCoreGemm<double, double, double>(*inst, 0.1, a, b, 0.1, c,
                                                d_mc);

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(d_mc(i, j), d_ref(i, j), 1e-12);
}

// 20 and 50 exercise the zero-padded edge tiles.
INSTANTIATE_TEST_SUITE_P(Sizes, TiledGemmSizes,
                         ::testing::Values(16, 20, 32, 50, 64, 96));

TEST(TiledGemm, RectangularProblem)
{
    Rng rng(103);
    const std::size_t m = 48, k = 32, n = 80;
    const auto a = randomMatrix<float>(rng, m, k);
    const auto b = randomMatrix<float>(rng, k, n);
    const auto c = randomMatrix<float>(rng, m, n);
    Matrix<float> d_ref(m, n), d_mc(m, n);

    referenceGemm<float, float, float>(2.0, a, b, -1.0, c, d_ref);
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x4_f32");
    ASSERT_NE(inst, nullptr);
    tiledMatrixCoreGemm<float, float, float>(*inst, 2.0, a, b, -1.0, c,
                                             d_mc);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(d_mc(i, j), d_ref(i, j), 1e-3);
}

TEST(TiledGemm, HhsNarrowsDToHalf)
{
    Rng rng(107);
    const std::size_t n = 32;
    const auto a = randomMatrix<fp::Half>(rng, n, n);
    const auto b = randomMatrix<fp::Half>(rng, n, n);
    const auto c = randomMatrix<fp::Half>(rng, n, n);
    Matrix<fp::Half> d_ref(n, n), d_mc(n, n);

    referenceGemm<fp::Half, fp::Half, float>(0.1, a, b, 0.1, c, d_ref);
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);
    tiledMatrixCoreGemm<fp::Half, fp::Half, float>(*inst, 0.1, a, b, 0.1,
                                                   c, d_mc);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(d_mc(i, j).toFloat(), d_ref(i, j).toFloat(), 2e-2);
}

TEST(ReferenceGemm, PaperValidationPattern)
{
    // A = ones, B = identity, C = ones, alpha = beta = 1 => D = twos.
    const std::size_t n = 24;
    Matrix<float> a(n, n, 1.0f), b(n, n), c(n, n, 1.0f), d(n, n);
    b.setIdentity();
    referenceGemm<float, float, float>(1.0, a, b, 1.0, c, d);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(d(i, j), 2.0f);
}

TEST(ReferenceGemm, PerStepRoundingLosesSmallAddends)
{
    // The HGEMM accuracy hazard: with per-step fp16 rounding, tiny
    // contributions vanish; with fp32 accumulation they survive.
    const std::size_t n = 16;
    Matrix<fp::Half> a(n, n, fp::Half(0.0f)), b(n, n, fp::Half(0.0f));
    Matrix<fp::Half> c(n, n, fp::Half(0.0f));
    // Row 0 of A: [1, eps, eps, ..., eps] with eps = 2^-11.
    a(0, 0) = fp::Half(1.0f);
    for (std::size_t k = 1; k < n; ++k)
        a(0, k) = fp::Half(0x1.0p-11f);
    // Column 0 of B: all ones.
    for (std::size_t k = 0; k < n; ++k)
        b(k, 0) = fp::Half(1.0f);

    Matrix<fp::Half> d_chain(n, n), d_wide(n, n);
    referenceGemm<fp::Half, fp::Half, float>(1.0, a, b, 0.0, c, d_chain,
                                             /*round_each_step=*/true);
    referenceGemm<fp::Half, fp::Half, float>(1.0, a, b, 0.0, c, d_wide,
                                             /*round_each_step=*/false);

    // Chain: 1 + eps rounds back to 1 at every step.
    EXPECT_EQ(d_chain(0, 0).toFloat(), 1.0f);
    // Wide accumulation keeps 15*eps and rounds once at the end.
    EXPECT_GT(d_wide(0, 0).toFloat(), 1.0f);
}

TEST(ReferenceGemmDeathTest, ShapeMismatchesPanic)
{
    Matrix<float> a(4, 8), b(4, 4), c(4, 4), d(4, 4);
    EXPECT_DEATH((referenceGemm<float, float, float>(1, a, b, 0, c, d)),
                 "inner dimensions");
}

} // namespace
} // namespace blas
} // namespace mc
