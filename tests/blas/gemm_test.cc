/**
 * @file
 * Tests of the GEMM engine end to end on the simulator: throughput
 * shapes, memory exhaustion, and the counter-derived Matrix Core
 * utilization the paper reports in Figs. 6-8.
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "prof/profiler.hh"

namespace mc {
namespace blas {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

class GemmEngineTest : public ::testing::Test
{
  protected:
    GemmEngineTest() : rt(arch::defaultCdna2(), quietOptions()), engine(rt)
    {}

    GemmResult
    runSquare(GemmCombo combo, std::size_t n)
    {
        GemmConfig cfg;
        cfg.combo = combo;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;
        auto result = engine.run(cfg);
        EXPECT_TRUE(result.isOk()) << result.status().toString();
        return result.take();
    }

    hip::Runtime rt;
    GemmEngine engine;
};

TEST_F(GemmEngineTest, ThroughputGrowsThenSaturates)
{
    double prev = 0.0;
    for (std::size_t n : {256u, 1024u, 4096u}) {
        const GemmResult r = runSquare(GemmCombo::Sgemm, n);
        EXPECT_GT(r.throughput(), prev);
        prev = r.throughput();
    }
    // Near the paper's 43 TFLOPS SGEMM plateau.
    EXPECT_NEAR(prev / 1e12, 43.0, 2.0);
}

TEST_F(GemmEngineTest, PeaksMatchPaperFig6And7)
{
    // SGEMM ~43 TFLOPS at N=8192; DGEMM ~37 TFLOPS at N=4096;
    // HHS ~155 TFLOPS (88% of the 175 plateau).
    EXPECT_NEAR(runSquare(GemmCombo::Sgemm, 8192).throughput() / 1e12,
                43.0, 2.0);
    EXPECT_NEAR(runSquare(GemmCombo::Dgemm, 4096).throughput() / 1e12,
                37.0, 2.0);
    EXPECT_NEAR(runSquare(GemmCombo::Hhs, 8192).throughput() / 1e12,
                150.0, 10.0);
}

TEST_F(GemmEngineTest, DgemmDropsAfter4096)
{
    const double at4k = runSquare(GemmCombo::Dgemm, 4096).throughput();
    const double at8k = runSquare(GemmCombo::Dgemm, 8192).throughput();
    EXPECT_LT(at8k, 0.8 * at4k);
}

TEST_F(GemmEngineTest, SgemmDipsThenRecovers)
{
    const double peak = runSquare(GemmCombo::Sgemm, 8192).throughput();
    const double dip = runSquare(GemmCombo::Sgemm, 32768).throughput();
    const double recovered =
        runSquare(GemmCombo::Sgemm, 65536).throughput();
    EXPECT_LT(dip, peak);
    EXPECT_GT(recovered, dip);
    EXPECT_NEAR(recovered / peak, 1.0, 0.05);
}

TEST_F(GemmEngineTest, HhsOutperformsHssAboveOneK)
{
    for (std::size_t n : {2048u, 8192u}) {
        const double hhs = runSquare(GemmCombo::Hhs, n).throughput();
        const double hss = runSquare(GemmCombo::Hss, n).throughput();
        EXPECT_GT(hhs, hss) << n;
    }
}

TEST_F(GemmEngineTest, HgemmConsistentlyBelowHhsAndHss)
{
    for (std::size_t n : {1024u, 4096u, 16384u}) {
        const double hgemm = runSquare(GemmCombo::Hgemm, n).throughput();
        EXPECT_LT(hgemm, runSquare(GemmCombo::Hss, n).throughput()) << n;
        EXPECT_LT(hgemm, runSquare(GemmCombo::Hhs, n).throughput()) << n;
    }
}

TEST_F(GemmEngineTest, MatrixCoreSpeedupInPaperRange)
{
    // Section VII: 2.3x-7.5x over the SIMD-only HGEMM reference in
    // mixed precision; up to ~2.2x in single precision.
    const double hgemm8k = runSquare(GemmCombo::Hgemm, 8192).throughput();
    const double hhs8k = runSquare(GemmCombo::Hhs, 8192).throughput();
    const double ratio = hhs8k / hgemm8k;
    EXPECT_GE(ratio, 2.3);
    EXPECT_LE(ratio, 7.6);

    const double sgemm8k = runSquare(GemmCombo::Sgemm, 8192).throughput();
    EXPECT_LE(sgemm8k / hgemm8k, 2.3);
    EXPECT_GE(sgemm8k / hgemm8k, 1.5);
}

TEST_F(GemmEngineTest, MatrixCoreFractionMatchesFig8)
{
    // >90% of FLOPs from Matrix Cores for N>16, >99% for N>256.
    for (std::size_t n : {32u, 64u}) {
        const GemmResult r = runSquare(GemmCombo::Sgemm, n);
        const auto split = prof::flopBreakdown(r.kernel.counters);
        EXPECT_GT(split.matrixCoreFraction(), 0.90) << n;
    }
    for (std::size_t n : {512u, 2048u}) {
        const GemmResult r = runSquare(GemmCombo::Dgemm, n);
        const auto split = prof::flopBreakdown(r.kernel.counters);
        EXPECT_GT(split.matrixCoreFraction(), 0.99) << n;
    }
}

TEST_F(GemmEngineTest, HgemmFractionIsZero)
{
    const GemmResult r = runSquare(GemmCombo::Hgemm, 1024);
    EXPECT_FALSE(r.usedMatrixCores);
    const auto split = prof::flopBreakdown(r.kernel.counters);
    EXPECT_EQ(split.matrixCoreFraction(), 0.0);
}

TEST_F(GemmEngineTest, MixedPrecisionN16FractionIsZero)
{
    const GemmResult r = runSquare(GemmCombo::Hhs, 16);
    EXPECT_FALSE(r.usedMatrixCores);
    EXPECT_EQ(prof::flopBreakdown(r.kernel.counters).matrixCoreFraction(),
              0.0);
}

TEST_F(GemmEngineTest, DgemmExhaustsMemoryAt65536)
{
    // 3 x 65536^2 x 8 bytes = 96 GiB > 64 GiB per GCD: the condition
    // that terminates the paper's sweep.
    GemmConfig cfg;
    cfg.combo = GemmCombo::Dgemm;
    cfg.m = cfg.n = cfg.k = 65536;
    auto result = engine.run(cfg);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::OutOfMemory);

    // SGEMM at the same size still fits (48 GiB).
    cfg.combo = GemmCombo::Sgemm;
    EXPECT_TRUE(engine.run(cfg).isOk());
}

TEST_F(GemmEngineTest, FailedRunLeaksNoDeviceMemory)
{
    GemmConfig cfg;
    cfg.combo = GemmCombo::Dgemm;
    cfg.m = cfg.n = cfg.k = 65536;
    (void)engine.run(cfg);
    EXPECT_EQ(rt.allocatedBytes(0), 0u);
}

TEST_F(GemmEngineTest, OperandBytesArithmetic)
{
    GemmConfig cfg;
    cfg.combo = GemmCombo::Hss;
    cfg.m = 100;
    cfg.n = 200;
    cfg.k = 50;
    // A: 100x50 f16, B: 50x200 f16, C/D: 100x200 f32.
    EXPECT_EQ(GemmEngine::operandBytes(cfg),
              100u * 50 * 2 + 50u * 200 * 2 + 100u * 200 * 4);
}

TEST_F(GemmEngineTest, SecondDeviceIndependent)
{
    GemmConfig cfg;
    cfg.combo = GemmCombo::Sgemm;
    cfg.m = cfg.n = cfg.k = 1024;
    cfg.device = 1;
    auto result = engine.run(cfg);
    ASSERT_TRUE(result.isOk());
    EXPECT_GT(result.value().throughput(), 0.0);
}

TEST_F(GemmEngineTest, AblationForcedSimdPathIsSlower)
{
    GemmConfig cfg;
    cfg.combo = GemmCombo::Sgemm;
    cfg.m = cfg.n = cfg.k = 4096;
    cfg.alpha = cfg.beta = 0.1;
    auto mc_result = engine.run(cfg);
    cfg.forceMatrixCorePath = false;
    auto simd_result = engine.run(cfg);
    ASSERT_TRUE(mc_result.isOk());
    ASSERT_TRUE(simd_result.isOk());
    EXPECT_GT(mc_result.value().throughput(),
              1.5 * simd_result.value().throughput());
}

} // namespace
} // namespace blas
} // namespace mc
