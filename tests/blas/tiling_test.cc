/**
 * @file
 * Tests of the GEMM planner: path selection, instruction counts, the
 * Fig. 9 FLOP-distribution model, and the memory-traffic model.
 */

#include <gtest/gtest.h>

#include "blas/tiling.hh"

namespace mc {
namespace blas {
namespace {

GemmConfig
squareConfig(GemmCombo combo, std::size_t n, double alpha = 0.1,
             double beta = 0.1)
{
    GemmConfig cfg;
    cfg.combo = combo;
    cfg.m = cfg.n = cfg.k = n;
    cfg.alpha = alpha;
    cfg.beta = beta;
    return cfg;
}

TEST(PathSelection, HgemmNeverUsesMatrixCores)
{
    for (std::size_t n : {16u, 64u, 1024u, 8192u})
        EXPECT_FALSE(selectsMatrixCorePath(
            squareConfig(GemmCombo::Hgemm, n)));
}

TEST(PathSelection, MixedPrecisionSkipsMatrixCoresAtN16)
{
    // Fig. 8: HHS and HSS do not use Matrix Cores at N = 16.
    EXPECT_FALSE(selectsMatrixCorePath(squareConfig(GemmCombo::Hhs, 16)));
    EXPECT_FALSE(selectsMatrixCorePath(squareConfig(GemmCombo::Hss, 16)));
    EXPECT_TRUE(selectsMatrixCorePath(squareConfig(GemmCombo::Hhs, 32)));
    EXPECT_TRUE(selectsMatrixCorePath(squareConfig(GemmCombo::Hss, 32)));
}

TEST(PathSelection, FloatAndDoubleAlwaysUseMatrixCores)
{
    for (std::size_t n : {16u, 32u, 1024u}) {
        EXPECT_TRUE(selectsMatrixCorePath(
            squareConfig(GemmCombo::Sgemm, n)));
        EXPECT_TRUE(selectsMatrixCorePath(
            squareConfig(GemmCombo::Dgemm, n)));
    }
}

TEST(PathSelection, ForceOverridesHeuristic)
{
    GemmConfig cfg = squareConfig(GemmCombo::Hgemm, 1024);
    cfg.forceMatrixCorePath = true;
    EXPECT_TRUE(selectsMatrixCorePath(cfg));

    GemmConfig cfg2 = squareConfig(GemmCombo::Sgemm, 1024);
    cfg2.forceMatrixCorePath = false;
    EXPECT_FALSE(selectsMatrixCorePath(cfg2));
}

TEST(Planner, MfmaInstructionCountsAreExact)
{
    const auto &cal = arch::defaultCdna2();
    // SGEMM N=1024 on 16x16x4 tiles: (1024/16)^2 * (1024/4) insts.
    const GemmPlan plan =
        planGemm(squareConfig(GemmCombo::Sgemm, 1024), cal);
    EXPECT_TRUE(plan.useMatrixCores);
    EXPECT_EQ(plan.mfmaInstsTotal, 64ull * 64ull * 256ull);
    // HHS N=1024 on 16x16x16 tiles.
    const GemmPlan hhs =
        planGemm(squareConfig(GemmCombo::Hhs, 1024), cal);
    EXPECT_EQ(hhs.mfmaInstsTotal, 64ull * 64ull * 64ull);
}

TEST(Planner, CountersEncodeTwoNCubedOnMatrixCores)
{
    // The Fig. 9 model: exactly 2N^3 FLOPs on Matrix Cores...
    const auto &cal = arch::defaultCdna2();
    for (std::size_t n : {32u, 256u, 1024u}) {
        const GemmPlan plan =
            planGemm(squareConfig(GemmCombo::Dgemm, n), cal);
        const auto counters = plan.profile.expectedCounters();
        const double mc_flops =
            512.0 * static_cast<double>(counters.mops(arch::DataType::F64));
        EXPECT_DOUBLE_EQ(mc_flops, 2.0 * n * n * n) << n;
    }
}

TEST(Planner, ScalingWorkIsThreeNSquaredOnSimds)
{
    // ...and 3N^2 on the SIMDs when alpha and beta are both nontrivial.
    const auto &cal = arch::defaultCdna2();
    for (std::size_t n : {64u, 512u}) {
        const GemmPlan plan =
            planGemm(squareConfig(GemmCombo::Sgemm, n), cal);
        EXPECT_DOUBLE_EQ(plan.profile.simdFlops(),
                         3.0 * static_cast<double>(n) * n) << n;
    }
}

TEST(Planner, AlphaOneBetaZeroElidesScaling)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(
        squareConfig(GemmCombo::Sgemm, 256, /*alpha=*/1.0, /*beta=*/0.0),
        cal);
    EXPECT_DOUBLE_EQ(plan.profile.simdFlops(), 0.0);
}

TEST(Planner, BetaOneSkipsOneMultiply)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(
        squareConfig(GemmCombo::Sgemm, 256, /*alpha=*/0.5, /*beta=*/1.0),
        cal);
    // alpha multiply + add, but no beta multiply: 2N^2.
    EXPECT_DOUBLE_EQ(plan.profile.simdFlops(), 2.0 * 256.0 * 256.0);
}

TEST(Planner, HhsEmitsConversionXferInstructions)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan hhs = planGemm(squareConfig(GemmCombo::Hhs, 256), cal);
    const auto counters = hhs.profile.expectedCounters();
    // C read + D write conversions, one inst per 64 elements each.
    EXPECT_EQ(counters.valuCount(arch::DataType::F16, sim::ValuOp::Xfer),
              2u * (256u * 256u / 64u));
    // HSS keeps C/D in the compute type: no conversions.
    const GemmPlan hss = planGemm(squareConfig(GemmCombo::Hss, 256), cal);
    EXPECT_EQ(hss.profile.expectedCounters().valuCount(
                  arch::DataType::F32, sim::ValuOp::Xfer), 0u);
}

TEST(Planner, PaddingRoundsUpToInstructionShape)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan =
        planGemm(squareConfig(GemmCombo::Hhs, 100), cal);
    EXPECT_EQ(plan.paddedM, 112u); // next multiple of 16
    EXPECT_EQ(plan.paddedN, 112u);
    EXPECT_EQ(plan.paddedK, 112u);
    // Counter FLOPs reflect the padded (hardware) work...
    const auto counters = plan.profile.expectedCounters();
    EXPECT_DOUBLE_EQ(
        512.0 * static_cast<double>(counters.mops(arch::DataType::F16)),
        2.0 * 112 * 112 * 112);
    // ...while the reported algorithmic FLOPs stay exact.
    EXPECT_DOUBLE_EQ(plan.profile.mfmaFlops(), 2.0 * 100 * 100 * 100);
}

TEST(Planner, MacroTileWidensForHugeProblems)
{
    const auto &cal = arch::defaultCdna2();
    EXPECT_EQ(planGemm(squareConfig(GemmCombo::Sgemm, 16384), cal)
                  .macroTile, 128);
    EXPECT_EQ(planGemm(squareConfig(GemmCombo::Sgemm, 65536), cal)
                  .macroTile, 256);
}

TEST(Planner, MacroTileShrinksForSmallProblems)
{
    const auto &cal = arch::defaultCdna2();
    // A small problem cannot fill 440 Matrix Cores with 128-tiles.
    const GemmPlan plan =
        planGemm(squareConfig(GemmCombo::Sgemm, 512), cal);
    EXPECT_LT(plan.macroTile, 128);
    EXPECT_GE(plan.macroTile, 32);
}

TEST(Planner, ForceMacroTileHonored)
{
    const auto &cal = arch::defaultCdna2();
    GemmConfig cfg = squareConfig(GemmCombo::Sgemm, 4096);
    cfg.forceMacroTile = 64;
    EXPECT_EQ(planGemm(cfg, cal).macroTile, 64);
}

TEST(Planner, L2MissFractionGrowsWithK)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan small =
        planGemm(squareConfig(GemmCombo::Dgemm, 2048), cal);
    const GemmPlan large =
        planGemm(squareConfig(GemmCombo::Dgemm, 16384), cal);
    EXPECT_EQ(small.l2MissFrac, 0.0);
    EXPECT_EQ(large.l2MissFrac, 1.0);
    EXPECT_GT(large.hbmReadBytes,
              small.hbmReadBytes * 8 * 8 * 8); // superlinear growth
}

TEST(Planner, DoubleMissesL2BeforeFloat)
{
    // The f64 panel strip is twice the f32 strip, so DGEMM starts
    // missing at half the N — why its Fig. 6 drop comes earlier.
    const auto &cal = arch::defaultCdna2();
    const GemmPlan d8k = planGemm(squareConfig(GemmCombo::Dgemm, 8192), cal);
    const GemmPlan s8k = planGemm(squareConfig(GemmCombo::Sgemm, 8192), cal);
    EXPECT_GT(d8k.l2MissFrac, s8k.l2MissFrac);
}

TEST(Planner, SimdPathCarriesFmaWork)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan =
        planGemm(squareConfig(GemmCombo::Hgemm, 512), cal);
    EXPECT_FALSE(plan.useMatrixCores);
    EXPECT_EQ(plan.inst, nullptr);
    // All 2N^3 product FLOPs appear as SIMD work.
    EXPECT_DOUBLE_EQ(plan.profile.mfmaFlops(), 0.0);
    EXPECT_NEAR(plan.profile.simdFlops(),
                2.0 * 512 * 512 * 512 + 3.0 * 512 * 512,
                1e-6 * 2.0 * 512 * 512 * 512);
    EXPECT_DOUBLE_EQ(plan.profile.simdEfficiency,
                     cal.simdGemmEfficiency);
}

TEST(Planner, WavefrontsAreFourPerWorkgroup)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan =
        planGemm(squareConfig(GemmCombo::Sgemm, 4096), cal);
    EXPECT_EQ(plan.numWorkgroups, 32ull * 32ull);
    EXPECT_EQ(plan.numWavefronts, plan.numWorkgroups * 4);
    EXPECT_EQ(plan.profile.scheduleMode, sim::ScheduleMode::Fluid);
}

TEST(Planner, TrafficIncludesCReadOnlyWithBeta)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan with_beta =
        planGemm(squareConfig(GemmCombo::Sgemm, 1024, 0.1, 0.1), cal);
    const GemmPlan without_beta =
        planGemm(squareConfig(GemmCombo::Sgemm, 1024, 0.1, 0.0), cal);
    EXPECT_NEAR(with_beta.hbmReadBytes - without_beta.hbmReadBytes,
                4.0 * 1024 * 1024, 1.0);
}

TEST(PlannerDeathTest, ZeroDimensionsPanic)
{
    const auto &cal = arch::defaultCdna2();
    GemmConfig cfg = squareConfig(GemmCombo::Sgemm, 0);
    EXPECT_DEATH(planGemm(cfg, cal), "must be positive");
}

TEST(ComboInfo, TableIII)
{
    using DT = arch::DataType;
    EXPECT_EQ(comboInfo(GemmCombo::Hgemm).typeAB, DT::F16);
    EXPECT_EQ(comboInfo(GemmCombo::Hgemm).typeCD, DT::F16);
    EXPECT_EQ(comboInfo(GemmCombo::Hgemm).computeType, DT::F16);
    EXPECT_EQ(comboInfo(GemmCombo::Hhs).typeCD, DT::F16);
    EXPECT_EQ(comboInfo(GemmCombo::Hhs).computeType, DT::F32);
    EXPECT_EQ(comboInfo(GemmCombo::Hss).typeCD, DT::F32);
    EXPECT_EQ(comboInfo(GemmCombo::Hss).computeType, DT::F32);
}

TEST(ComboInfo, ParseRoundTrips)
{
    for (GemmCombo combo : allCombos)
        EXPECT_EQ(parseCombo(comboInfo(combo).name), combo);
}

TEST(ComboInfoDeathTest, ParseRejectsUnknown)
{
    EXPECT_EXIT(parseCombo("zgemm"), ::testing::ExitedWithCode(1),
                "unknown GEMM combo");
}

} // namespace
} // namespace blas
} // namespace mc
