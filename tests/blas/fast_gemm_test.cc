/**
 * @file
 * Bit-exactness suite of the fast functional-GEMM backend
 * (docs/PERF.md): the blocked/packed/threaded kernels must reproduce
 * the retained scalar reference paths byte for byte — for every
 * datatype combination, at odd shapes that are not multiples of any
 * block size, with per-step f16 rounding on and off, and at every
 * thread count.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "blas/fast_gemm.hh"
#include "blas/functional.hh"
#include "blas/level3.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

template <typename T>
Matrix<T>
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix<T> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
    return m;
}

template <typename T>
::testing::AssertionResult
bitIdentical(const Matrix<T> &x, const Matrix<T> &y)
{
    if (x.rows() != y.rows() || x.cols() != y.cols())
        return ::testing::AssertionFailure() << "shape mismatch";
    if (std::memcmp(x.data(), y.data(),
                    x.rows() * x.cols() * sizeof(T)) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < x.rows(); ++i)
        for (std::size_t j = 0; j < x.cols(); ++j)
            if (std::memcmp(&x(i, j), &y(i, j), sizeof(T)) != 0)
                return ::testing::AssertionFailure()
                       << "first differing element at (" << i << ", "
                       << j << ")";
    return ::testing::AssertionFailure() << "memcmp/element disagree";
}

struct Shape
{
    std::size_t m, n, k;
};

/** Odd shapes: none is a multiple of the block sizes used below, and
 *  the degenerate single-row/column cases are included. */
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 3},    {5, 1, 9},    {17, 1, 17},
    {16, 16, 16}, {33, 17, 65}, {40, 24, 56}, {129, 67, 31},
};

/** Small blocks so kShapes exercises partial blocks in every loop. */
FunctionalGemmOptions
smallBlocks(int threads)
{
    FunctionalGemmOptions opts;
    opts.threads = threads;
    opts.blockM = 16;
    opts.blockN = 24;
    opts.blockK = 40;
    return opts;
}

template <typename TCD, typename TAB, typename TAcc>
void
expectGemmBitExact(const Shape &s, bool round_each_step)
{
    Rng rng(0x9000 + s.m * 131 + s.n * 17 + s.k);
    const auto a = randomMatrix<TAB>(rng, s.m, s.k);
    const auto b = randomMatrix<TAB>(rng, s.k, s.n);
    const auto c = randomMatrix<TCD>(rng, s.m, s.n);

    Matrix<TCD> d_scalar(s.m, s.n);
    scalarReferenceGemm<TCD, TAB, TAcc>(1.25, a, b, -0.5, c, d_scalar,
                                        round_each_step);

    for (int threads : {1, 2, 8}) {
        Matrix<TCD> d_fast(s.m, s.n);
        fastReferenceGemm<TCD, TAB, TAcc>(1.25, a, b, -0.5, c, d_fast,
                                          round_each_step,
                                          smallBlocks(threads));
        EXPECT_TRUE(bitIdentical(d_scalar, d_fast))
            << "shape " << s.m << "x" << s.n << "x" << s.k
            << " threads=" << threads
            << " round_each_step=" << round_each_step;
    }
}

TEST(FastGemmBitExact, Dgemm)
{
    for (const Shape &s : kShapes)
        expectGemmBitExact<double, double, double>(s, false);
}

TEST(FastGemmBitExact, Sgemm)
{
    for (const Shape &s : kShapes)
        expectGemmBitExact<float, float, float>(s, false);
}

TEST(FastGemmBitExact, HgemmRoundsEachStep)
{
    for (const Shape &s : kShapes)
        expectGemmBitExact<fp::Half, fp::Half, float>(s, true);
}

TEST(FastGemmBitExact, Hhs)
{
    for (const Shape &s : kShapes)
        expectGemmBitExact<fp::Half, fp::Half, float>(s, false);
}

TEST(FastGemmBitExact, Hss)
{
    for (const Shape &s : kShapes)
        expectGemmBitExact<float, fp::Half, float>(s, false);
}

/** referenceGemm (the routed wrapper) must agree with forceScalar. */
TEST(FastGemmBitExact, WrapperRoutesToIdenticalResult)
{
    const Shape s{67, 45, 33};
    Rng rng(0xabc);
    const auto a = randomMatrix<float>(rng, s.m, s.k);
    const auto b = randomMatrix<float>(rng, s.k, s.n);
    const auto c = randomMatrix<float>(rng, s.m, s.n);

    FunctionalGemmOptions scalar_opts;
    scalar_opts.forceScalar = true;
    Matrix<float> d_scalar(s.m, s.n), d_fast(s.m, s.n);
    referenceGemm<float, float, float>(0.1, a, b, 0.1, c, d_scalar,
                                       false, scalar_opts);
    referenceGemm<float, float, float>(0.1, a, b, 0.1, c, d_fast, false,
                                       smallBlocks(4));
    EXPECT_TRUE(bitIdentical(d_scalar, d_fast));
}

/** The tiled Matrix Core path: fast blocked core vs scalar tiling,
 *  including the k-padding to a multiple of the instruction shape. */
TEST(FastGemmBitExact, TiledMatrixCorePath)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);

    for (const Shape &s : kShapes) {
        Rng rng(0x7100 + s.m + s.n + s.k);
        const auto a = randomMatrix<fp::Half>(rng, s.m, s.k);
        const auto b = randomMatrix<fp::Half>(rng, s.k, s.n);
        const auto c = randomMatrix<float>(rng, s.m, s.n);

        Matrix<float> d_scalar(s.m, s.n);
        scalarTiledMatrixCoreGemm<float, fp::Half, float>(
            *inst, 0.1, a, b, 0.1, c, d_scalar);
        for (int threads : {1, 8}) {
            Matrix<float> d_fast(s.m, s.n);
            fastTiledMatrixCoreGemm<float, fp::Half, float>(
                *inst, 0.1, a, b, 0.1, c, d_fast,
                smallBlocks(threads));
            EXPECT_TRUE(bitIdentical(d_scalar, d_fast))
                << "shape " << s.m << "x" << s.n << "x" << s.k
                << " threads=" << threads;
        }
    }
}

/** Double-precision MFMA tiling (exercises TAcc == TAB == double). */
TEST(FastGemmBitExact, TiledMatrixCorePathDouble)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    ASSERT_NE(inst, nullptr);

    const Shape s{33, 29, 18}; // k not a multiple of 4: pads
    Rng rng(0x7d);
    const auto a = randomMatrix<double>(rng, s.m, s.k);
    const auto b = randomMatrix<double>(rng, s.k, s.n);
    const auto c = randomMatrix<double>(rng, s.m, s.n);

    Matrix<double> d_scalar(s.m, s.n), d_fast(s.m, s.n);
    scalarTiledMatrixCoreGemm<double, double, double>(*inst, 0.1, a, b,
                                                      0.1, c, d_scalar);
    fastTiledMatrixCoreGemm<double, double, double>(*inst, 0.1, a, b,
                                                    0.1, c, d_fast,
                                                    smallBlocks(2));
    EXPECT_TRUE(bitIdentical(d_scalar, d_fast));
}

TEST(FastLevel3BitExact, TrsmLowerUpperUnitAndNot)
{
    for (const bool lower : {true, false}) {
        for (const bool unit : {true, false}) {
            const std::size_t m = 37, n = 21;
            Rng rng(0x3a0 + (lower ? 1 : 0) + (unit ? 2 : 0));
            auto a = randomMatrix<double>(rng, m, m);
            // Keep the diagonal away from zero so the substitution is
            // well conditioned.
            for (std::size_t i = 0; i < m; ++i)
                a(i, i) = 2.0 + a(i, i);
            const auto b0 = randomMatrix<double>(rng, m, n);

            Matrix<double> b_scalar = b0, b_fast = b0;
            const Fill fill =
                lower ? Fill::Lower : Fill::Upper;
            scalarReferenceTrsmLeft(fill, unit, 0.75, a, b_scalar);
            for (int threads : {1, 8}) {
                Matrix<double> b_t = b0;
                referenceTrsmLeft(fill, unit, 0.75, a, b_t,
                                  smallBlocks(threads));
                EXPECT_TRUE(bitIdentical(b_scalar, b_t))
                    << "lower=" << lower << " unit=" << unit
                    << " threads=" << threads;
            }
            (void)b_fast;
        }
    }
}

TEST(FastLevel3BitExact, SyrkBothFills)
{
    for (const bool lower : {true, false}) {
        const std::size_t n = 41, k = 23;
        Rng rng(0x5e0 + (lower ? 1 : 0));
        const auto a = randomMatrix<double>(rng, n, k);
        const auto c0 = randomMatrix<double>(rng, n, n);

        const Fill fill =
            lower ? Fill::Lower : Fill::Upper;
        Matrix<double> c_scalar = c0;
        scalarReferenceSyrk(fill, -1.0, a, 1.0, c_scalar);
        for (int threads : {1, 8}) {
            Matrix<double> c_t = c0;
            referenceSyrk(fill, -1.0, a, 1.0, c_t,
                          smallBlocks(threads));
            EXPECT_TRUE(bitIdentical(c_scalar, c_t))
                << "lower=" << lower << " threads=" << threads;
        }
    }
}

/** Thread-count invariance at a size where the row-block partition
 *  actually differs between 1, 3, and 8 workers. */
TEST(FastGemmBitExact, ThreadCountInvariant)
{
    const std::size_t n = 150;
    Rng rng(0x1217);
    const auto a = randomMatrix<fp::Half>(rng, n, n);
    const auto b = randomMatrix<fp::Half>(rng, n, n);
    const auto c = randomMatrix<fp::Half>(rng, n, n);

    Matrix<fp::Half> d1(n, n);
    fastReferenceGemm<fp::Half, fp::Half, float>(0.1, a, b, 0.1, c, d1,
                                                 true, smallBlocks(1));
    for (int threads : {2, 3, 8}) {
        Matrix<fp::Half> dt(n, n);
        fastReferenceGemm<fp::Half, fp::Half, float>(
            0.1, a, b, 0.1, c, dt, true, smallBlocks(threads));
        EXPECT_TRUE(bitIdentical(d1, dt)) << "threads=" << threads;
    }
}

} // namespace
} // namespace blas
} // namespace mc
