/**
 * @file
 * Tests of the Matrix-Core-emulated HGEMM path (the forced what-if the
 * emulation ablation studies) and of the planner's architecture
 * awareness.
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "prof/profiler.hh"

namespace mc {
namespace blas {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

GemmConfig
hgemmConfig(std::size_t n, bool force_mc)
{
    GemmConfig cfg;
    cfg.combo = GemmCombo::Hgemm;
    cfg.m = cfg.n = cfg.k = n;
    cfg.alpha = cfg.beta = 0.1;
    if (force_mc)
        cfg.forceMatrixCorePath = true;
    return cfg;
}

TEST(HgemmEmulation, ForcedPathUsesMixedPrecisionInstruction)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(hgemmConfig(1024, true), cal);
    EXPECT_TRUE(plan.useMatrixCores);
    ASSERT_NE(plan.inst, nullptr);
    EXPECT_EQ(plan.inst->mnemonic, "v_mfma_f32_16x16x16_f16");
}

TEST(HgemmEmulation, DefaultPathStaysOnSimds)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(hgemmConfig(1024, false), cal);
    EXPECT_FALSE(plan.useMatrixCores);
    EXPECT_EQ(plan.inst, nullptr);
}

TEST(HgemmEmulation, ConversionCostCharged)
{
    // The emulated path converts C on read and D on write between the
    // f16 storage and the f32 Matrix Core accumulators.
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(hgemmConfig(256, true), cal);
    const auto counters = plan.profile.expectedCounters();
    EXPECT_EQ(counters.valuCount(arch::DataType::F16, sim::ValuOp::Xfer),
              2u * (256u * 256u / 64u));
}

TEST(HgemmEmulation, EmulationBeatsSimdButTrailsHhs)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);

    auto simd = engine.run(hgemmConfig(4096, false));
    auto emulated = engine.run(hgemmConfig(4096, true));
    GemmConfig hhs_cfg = hgemmConfig(4096, false);
    hhs_cfg.combo = GemmCombo::Hhs;
    auto hhs = engine.run(hhs_cfg);
    ASSERT_TRUE(simd.isOk() && emulated.isOk() && hhs.isOk());

    EXPECT_GT(emulated.value().throughput(),
              4.0 * simd.value().throughput());
    EXPECT_LT(emulated.value().throughput(),
              hhs.value().throughput());
    // Within ~10% of HHS (only conversions separate them).
    EXPECT_GT(emulated.value().throughput(),
              0.9 * hhs.value().throughput());
}

TEST(HgemmEmulation, Fig8FractionBecomesNonZero)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);
    auto emulated = engine.run(hgemmConfig(512, true));
    ASSERT_TRUE(emulated.isOk());
    const auto split =
        prof::flopBreakdown(emulated.value().kernel.counters);
    EXPECT_GT(split.matrixCoreFraction(), 0.99);
}

TEST(PlannerArchAwareness, Mi100DgemmHasNoMatrixCorePath)
{
    const auto &cal = arch::mi100Calibration();
    GemmConfig cfg;
    cfg.combo = GemmCombo::Dgemm;
    cfg.m = cfg.n = cfg.k = 1024;
    cfg.alpha = cfg.beta = 0.1;
    const GemmPlan plan = planGemm(cfg, cal);
    EXPECT_FALSE(plan.useMatrixCores);
    // Even forcing cannot conjure an instruction that does not exist.
    cfg.forceMatrixCorePath = true;
    const GemmPlan forced = planGemm(cfg, cal);
    EXPECT_FALSE(forced.useMatrixCores);
}

TEST(PlannerArchAwareness, Mi100MixedPrecisionUsesCdna1Instruction)
{
    const auto &cal = arch::mi100Calibration();
    GemmConfig cfg;
    cfg.combo = GemmCombo::Hhs;
    cfg.m = cfg.n = cfg.k = 1024;
    cfg.alpha = cfg.beta = 0.1;
    const GemmPlan plan = planGemm(cfg, cal);
    EXPECT_TRUE(plan.useMatrixCores);
    ASSERT_NE(plan.inst, nullptr);
    EXPECT_EQ(plan.inst->arch, arch::GpuArch::Cdna1);
}

} // namespace
} // namespace blas
} // namespace mc
