/**
 * @file
 * Tests of strided-batched GEMM planning and execution.
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "prof/profiler.hh"

namespace mc {
namespace blas {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

GemmConfig
batchedConfig(std::size_t n, std::size_t batch)
{
    GemmConfig cfg;
    cfg.combo = GemmCombo::Hhs;
    cfg.m = cfg.n = cfg.k = n;
    cfg.alpha = cfg.beta = 0.1;
    cfg.batchCount = batch;
    return cfg;
}

TEST(BatchedGemm, WorkScalesLinearlyWithBatch)
{
    // Pin the macro tile: the heuristic otherwise (correctly) picks
    // different tiles for the two occupancy situations.
    const auto &cal = arch::defaultCdna2();
    GemmConfig single_cfg = batchedConfig(256, 1);
    GemmConfig many_cfg = batchedConfig(256, 64);
    single_cfg.forceMacroTile = 64;
    many_cfg.forceMacroTile = 64;
    const GemmPlan one = planGemm(single_cfg, cal);
    const GemmPlan many = planGemm(many_cfg, cal);
    EXPECT_EQ(many.mfmaInstsTotal, 64 * one.mfmaInstsTotal);
    EXPECT_EQ(many.numWorkgroups, 64 * one.numWorkgroups);
    EXPECT_DOUBLE_EQ(many.profile.mfmaFlops(),
                     64.0 * one.profile.mfmaFlops());
    EXPECT_DOUBLE_EQ(many.profile.simdFlops(),
                     64.0 * one.profile.simdFlops());
}

TEST(BatchedGemm, CountersScaleWithBatch)
{
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(batchedConfig(128, 32), cal);
    const auto split =
        prof::flopBreakdown(plan.profile.expectedCounters());
    EXPECT_DOUBLE_EQ(split.matrixCoreFlops, 32.0 * 2.0 * 128 * 128 * 128);
    EXPECT_DOUBLE_EQ(split.simdFlops, 32.0 * 3.0 * 128 * 128);
}

TEST(BatchedGemm, BatchingRecoversSmallProblemThroughput)
{
    // The ML-workload motivation: one 256^3 GEMM cannot fill the
    // device, but a batch of 256 of them can.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);

    auto single = engine.run(batchedConfig(256, 1));
    auto batched = engine.run(batchedConfig(256, 256));
    ASSERT_TRUE(single.isOk() && batched.isOk());

    EXPECT_GT(batched.value().throughput(),
              10.0 * single.value().throughput());
    // And the batched throughput reaches well into the tens of TFLOPS
    // (a single 256^3 problem manages ~2).
    EXPECT_GT(batched.value().throughput() / 1e12, 50.0);
}

TEST(BatchedGemm, SmallTileKeptForSmallEntriesDespiteBatch)
{
    // Macro-tile selection sees the whole grid: a large batch of small
    // problems already fills the device, so tiles stay entry-sized.
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(batchedConfig(128, 512), cal);
    EXPECT_LE(plan.macroTile, 128);
    EXPECT_GE(plan.numWavefronts,
              2ull * cal.matrixCoresPerGcd());
}

TEST(BatchedGemm, MemoryExhaustionIncludesBatch)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);
    // 8192^2 fp16 operands: ~0.4 GiB per entry set; 512 entries
    // exceed 64 GiB.
    auto result = engine.run(batchedConfig(8192, 512));
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::OutOfMemory);
}

TEST(BatchedGemm, OperandBytesIncludeBatch)
{
    const GemmConfig cfg = batchedConfig(64, 10);
    // Per entry: A 64x64 f16 + B 64x64 f16 + C 64x64 f16 (HHS C/D f16).
    EXPECT_EQ(GemmEngine::operandBytes(cfg),
              10u * (64 * 64 * 2 * 3));
}

TEST(BatchedGemmDeathTest, ZeroBatchPanics)
{
    const auto &cal = arch::defaultCdna2();
    GemmConfig cfg = batchedConfig(64, 1);
    cfg.batchCount = 0;
    EXPECT_DEATH(planGemm(cfg, cal), "batch count must be positive");
}

} // namespace
} // namespace blas
} // namespace mc
