/**
 * @file
 * The quantized INT8 GEMM's exactness contract: every integer-SIMD
 * tier must reproduce the scalar reference byte for byte (integer
 * accumulation is exact, so there is no tolerance to hide behind),
 * and the shared requantizer must round-to-nearest-even and saturate
 * exactly as the independent oracle below says it should — for every
 * int32→int8 residue class across a grid of effective scales.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "blas/fast_gemm.hh"
#include "blas/int8_gemm.hh"
#include "blas/simd_dispatch.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

Matrix<std::int8_t>
randomI8(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix<std::int8_t> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = static_cast<std::int8_t>(
                std::lround(rng.uniform(-128.0, 127.0)));
    return m;
}

::testing::AssertionResult
bitIdentical(const Matrix<std::int8_t> &x, const Matrix<std::int8_t> &y)
{
    if (x.rows() != y.rows() || x.cols() != y.cols())
        return ::testing::AssertionFailure() << "shape mismatch";
    if (std::memcmp(x.data(), y.data(), x.rows() * x.cols()) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < x.rows(); ++i)
        for (std::size_t j = 0; j < x.cols(); ++j)
            if (x(i, j) != y(i, j))
                return ::testing::AssertionFailure()
                       << "first differing element at (" << i << ", "
                       << j << "): got " << int(y(i, j)) << " want "
                       << int(x(i, j));
    return ::testing::AssertionFailure() << "memcmp/element disagree";
}

struct Shape
{
    std::size_t m, n, k;
};

/** Odd shapes straddling every vector width (2/4-wide k groups, 8/16/
 *  32/64-byte column strides), N = 1 and K = 1 degenerate panels, and
 *  k both multiples and non-multiples of the 4-wide packing group. */
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {4, 1, 5},    {3, 5, 7},
    {7, 15, 9},  {9, 17, 23},  {13, 31, 8},  {21, 33, 19},
    {27, 47, 29}, {67, 129, 65},
};

/** Asymmetric on purpose: zero points exercise the epilogue's
 *  correction terms, and the scales put outputs across [-128, 127]. */
QuantParams
testQuant()
{
    QuantParams qp;
    qp.scaleA = 0.02f;
    qp.scaleB = 0.05f;
    qp.scaleD = 0.25f;
    qp.zeroA = 3;
    qp.zeroB = -5;
    qp.zeroD = 1;
    return qp;
}

FunctionalGemmOptions
tierOptions(SimdTier tier, int threads)
{
    FunctionalGemmOptions opts;
    opts.simd = tier;
    opts.threads = threads;
    opts.blockM = 16;
    opts.blockN = 24;
    opts.blockK = 40;
    return opts;
}

class Int8TierTest : public ::testing::TestWithParam<SimdTier>
{
};

TEST_P(Int8TierTest, MatchesScalarReferenceBitForBit)
{
    const SimdTier tier = GetParam();
    const QuantParams qp = testQuant();
    for (const Shape &s : kShapes) {
        Rng rng(0x18 + s.m * 131 + s.n * 17 + s.k);
        const auto a = randomI8(rng, s.m, s.k);
        const auto b = randomI8(rng, s.k, s.n);
        const auto c = randomI8(rng, s.m, s.n);

        Matrix<std::int8_t> d_ref(s.m, s.n);
        scalarQuantizedGemm(1.25, a, b, -0.5, c, d_ref, qp);

        for (int threads : {1, 2, 8}) {
            Matrix<std::int8_t> d_tier(s.m, s.n);
            fastQuantizedGemm(1.25, a, b, -0.5, c, d_tier, qp,
                              tierOptions(tier, threads));
            EXPECT_TRUE(bitIdentical(d_ref, d_tier))
                << "tier=" << simdTierName(tier) << " shape " << s.m
                << "x" << s.n << "x" << s.k << " threads=" << threads;
        }
    }
}

TEST_P(Int8TierTest, BlockSizesDoNotChangeBytes)
{
    // Integer accumulation is order-insensitive, so any legal blocking
    // must give the same bytes; blockK = 1 (rounded up to the packing
    // group internally) and a k-bigger-than-blockK split both run.
    const SimdTier tier = GetParam();
    const QuantParams qp = testQuant();
    const Shape s{21, 33, 19};
    Rng rng(0xb10c);
    const auto a = randomI8(rng, s.m, s.k);
    const auto b = randomI8(rng, s.k, s.n);
    const auto c = randomI8(rng, s.m, s.n);

    Matrix<std::int8_t> d_ref(s.m, s.n);
    scalarQuantizedGemm(0.75, a, b, 0.25, c, d_ref, qp);

    const int blocks[][3] = {{1, 1, 1}, {8, 8, 4}, {16, 24, 40},
                             {64, 128, 256}};
    for (const auto &blk : blocks) {
        FunctionalGemmOptions opts;
        opts.simd = tier;
        opts.threads = 2;
        opts.blockM = blk[0];
        opts.blockN = blk[1];
        opts.blockK = blk[2];
        Matrix<std::int8_t> d(s.m, s.n);
        fastQuantizedGemm(0.75, a, b, 0.25, c, d, qp, opts);
        EXPECT_TRUE(bitIdentical(d_ref, d))
            << "tier=" << simdTierName(tier) << " blocks=" << blk[0]
            << "/" << blk[1] << "/" << blk[2];
    }
}

TEST_P(Int8TierTest, ExtremeZeroPointsAndBetaZero)
{
    // Zero points at the representable edges maximize the corrected
    // accumulator's magnitude; beta = 0 must ignore C entirely.
    const SimdTier tier = GetParam();
    QuantParams qp = testQuant();
    qp.zeroA = -128;
    qp.zeroB = 127;
    qp.zeroD = -128;
    const Shape s{13, 31, 8};
    Rng rng(0xedfe);
    const auto a = randomI8(rng, s.m, s.k);
    const auto b = randomI8(rng, s.k, s.n);
    const auto c = randomI8(rng, s.m, s.n);

    Matrix<std::int8_t> d_ref(s.m, s.n);
    scalarQuantizedGemm(1.0, a, b, 0.0, c, d_ref, qp);
    Matrix<std::int8_t> d(s.m, s.n);
    fastQuantizedGemm(1.0, a, b, 0.0, c, d, qp, tierOptions(tier, 2));
    EXPECT_TRUE(bitIdentical(d_ref, d))
        << "tier=" << simdTierName(tier);
}

INSTANTIATE_TEST_SUITE_P(
    AvailableTiers, Int8TierTest,
    ::testing::ValuesIn(availableSimdTiers()),
    [](const ::testing::TestParamInfo<SimdTier> &info) {
        return std::string(simdTierName(info.param));
    });

TEST(Int8Gemm, ForceScalarRunsTheReferenceLoops)
{
    const QuantParams qp = testQuant();
    const Shape s{9, 17, 23};
    Rng rng(0xf0);
    const auto a = randomI8(rng, s.m, s.k);
    const auto b = randomI8(rng, s.k, s.n);
    const auto c = randomI8(rng, s.m, s.n);

    Matrix<std::int8_t> d_ref(s.m, s.n), d_forced(s.m, s.n);
    scalarQuantizedGemm(1.25, a, b, 0.5, c, d_ref, qp);
    FunctionalGemmOptions opts;
    opts.forceScalar = true;
    quantizedGemm(1.25, a, b, 0.5, c, d_forced, qp, opts);
    EXPECT_TRUE(bitIdentical(d_ref, d_forced));

    // And the dispatcher's fast side agrees too.
    Matrix<std::int8_t> d_fast(s.m, s.n);
    quantizedGemm(1.25, a, b, 0.5, c, d_fast, qp, {});
    EXPECT_TRUE(bitIdentical(d_ref, d_fast));
}

// ---- The requantizer ------------------------------------------------------

/** Independent round-to-nearest-even + saturate oracle: spelled with
 *  explicit floor/frac/tie logic so it shares nothing with the
 *  nearbyint-based production code it checks. */
std::int8_t
oracleRequantize(std::int32_t acc, double eff_scale, double beta,
                 std::int8_t c, const QuantParams &qp)
{
    const double value =
        eff_scale * static_cast<double>(acc) +
        beta * (static_cast<double>(c) - static_cast<double>(qp.zeroD));
    const double f = std::floor(value);
    const double frac = value - f;
    double rounded;
    if (frac > 0.5)
        rounded = f + 1.0;
    else if (frac < 0.5)
        rounded = f;
    else
        rounded = (std::fmod(f, 2.0) == 0.0) ? f : f + 1.0;
    const double shifted = rounded + static_cast<double>(qp.zeroD);
    if (shifted < -128.0)
        return std::int8_t{-128};
    if (shifted > 127.0)
        return std::int8_t{127};
    return static_cast<std::int8_t>(shifted);
}

TEST(Requantize, MatchesOracleOnEveryResidueClass)
{
    // Every int32 residue class mod 256 (and then some), across a
    // scale grid chosen to hit exact .5 ties (0.5, 0.25, 0.0625) and
    // non-dyadic fractions (1/3, 0.1), for several zero points.
    const double scales[] = {1.0, 0.5, 0.25, 0.0625, 0.1,
                             1.0 / 3.0, 2.0};
    const std::int32_t zero_ds[] = {-3, 0, 5};
    for (double eff : scales) {
        for (std::int32_t zd : zero_ds) {
            QuantParams qp;
            qp.zeroD = zd;
            for (std::int32_t acc = -1024; acc <= 1024; ++acc) {
                const std::int8_t got =
                    requantizeI8(acc, eff, 0.0, std::int8_t{0}, qp);
                const std::int8_t want =
                    oracleRequantize(acc, eff, 0.0, std::int8_t{0}, qp);
                ASSERT_EQ(int(got), int(want))
                    << "acc=" << acc << " eff=" << eff << " zeroD=" << zd;
            }
        }
    }
}

TEST(Requantize, TiesGoToEven)
{
    QuantParams qp; // zeroD = 0
    // eff = 0.5: odd accumulators land exactly on .5 boundaries.
    EXPECT_EQ(int(requantizeI8(1, 0.5, 0.0, std::int8_t{0}, qp)), 0);
    EXPECT_EQ(int(requantizeI8(3, 0.5, 0.0, std::int8_t{0}, qp)), 2);
    EXPECT_EQ(int(requantizeI8(5, 0.5, 0.0, std::int8_t{0}, qp)), 2);
    EXPECT_EQ(int(requantizeI8(-1, 0.5, 0.0, std::int8_t{0}, qp)), 0);
    EXPECT_EQ(int(requantizeI8(-3, 0.5, 0.0, std::int8_t{0}, qp)), -2);
    EXPECT_EQ(int(requantizeI8(-5, 0.5, 0.0, std::int8_t{0}, qp)), -2);
    // The beta term can create the tie as well: 0.5 * (7 - 0) = 3.5.
    EXPECT_EQ(int(requantizeI8(0, 1.0, 0.5, std::int8_t{7}, qp)), 4);
    EXPECT_EQ(int(requantizeI8(0, 1.0, 0.5, std::int8_t{5}, qp)), 2);
}

TEST(Requantize, SaturatesAtTheEdges)
{
    QuantParams qp;
    const std::int32_t max32 = std::numeric_limits<std::int32_t>::max();
    const std::int32_t min32 = std::numeric_limits<std::int32_t>::min();
    EXPECT_EQ(int(requantizeI8(max32, 1.0, 0.0, std::int8_t{0}, qp)),
              127);
    EXPECT_EQ(int(requantizeI8(min32, 1.0, 0.0, std::int8_t{0}, qp)),
              -128);
    // One past the representable edge saturates; the edge itself fits.
    EXPECT_EQ(int(requantizeI8(128, 1.0, 0.0, std::int8_t{0}, qp)), 127);
    EXPECT_EQ(int(requantizeI8(127, 1.0, 0.0, std::int8_t{0}, qp)), 127);
    EXPECT_EQ(int(requantizeI8(-129, 1.0, 0.0, std::int8_t{0}, qp)),
              -128);
    EXPECT_EQ(int(requantizeI8(-128, 1.0, 0.0, std::int8_t{0}, qp)),
              -128);
    // 127.5 rounds (to even) to 128 — which must saturate to 127, and
    // -128.5 rounds to -128 exactly at the edge.
    EXPECT_EQ(int(requantizeI8(255, 0.5, 0.0, std::int8_t{0}, qp)), 127);
    EXPECT_EQ(int(requantizeI8(-257, 0.5, 0.0, std::int8_t{0}, qp)),
              -128);
    // A zero point shifts the saturation window.
    qp.zeroD = 100;
    EXPECT_EQ(int(requantizeI8(50, 1.0, 0.0, std::int8_t{0}, qp)), 127);
    qp.zeroD = -100;
    EXPECT_EQ(int(requantizeI8(-50, 1.0, 0.0, std::int8_t{0}, qp)),
              -128);
}

TEST(Requantize, ExhaustiveOutputRange)
{
    // With eff = 1 and zeroD = 0, accumulators -130..130 must map onto
    // every int8 output value exactly once inside [-128, 127] and
    // clamp outside — all 2^8 output codes witnessed.
    QuantParams qp;
    bool seen[256] = {};
    for (std::int32_t acc = -130; acc <= 130; ++acc) {
        const int got =
            int(requantizeI8(acc, 1.0, 0.0, std::int8_t{0}, qp));
        const int want =
            acc < -128 ? -128 : (acc > 127 ? 127 : int(acc));
        ASSERT_EQ(got, want) << "acc=" << acc;
        seen[got + 128] = true;
    }
    for (int v = 0; v < 256; ++v)
        EXPECT_TRUE(seen[v]) << "output code " << (v - 128)
                             << " never produced";
}

} // namespace
} // namespace blas
} // namespace mc
