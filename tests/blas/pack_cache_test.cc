/**
 * @file
 * The packed-operand cache's contracts: content-addressed keys (a
 * mutated operand can never serve stale panels), strict byte-capped
 * LRU eviction, oversized entries built but not retained, and — the
 * one that matters — cache on and cache off produce memcmp-identical
 * GEMM results for every SIMD tier, datatype combination, and thread
 * count, because cached bytes come from the exact packing routines
 * the uncached path runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "blas/fast_gemm.hh"
#include "blas/functional.hh"
#include "blas/int8_gemm.hh"
#include "blas/pack_cache.hh"
#include "blas/simd_dispatch.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

template <typename T>
Matrix<T>
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix<T> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
    return m;
}

Matrix<std::int8_t>
randomI8(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix<std::int8_t> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = static_cast<std::int8_t>(
                std::lround(rng.uniform(-128.0, 127.0)));
    return m;
}

template <typename T>
::testing::AssertionResult
bitIdentical(const Matrix<T> &x, const Matrix<T> &y)
{
    if (x.rows() != y.rows() || x.cols() != y.cols())
        return ::testing::AssertionFailure() << "shape mismatch";
    if (std::memcmp(x.data(), y.data(),
                    x.rows() * x.cols() * sizeof(T)) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < x.rows(); ++i)
        for (std::size_t j = 0; j < x.cols(); ++j)
            if (std::memcmp(&x(i, j), &y(i, j), sizeof(T)) != 0)
                return ::testing::AssertionFailure()
                       << "first differing element at (" << i << ", "
                       << j << ")";
    return ::testing::AssertionFailure() << "memcmp/element disagree";
}

/** Every test in this binary toggles the shared cache; restore a
 *  clean enabled-and-empty state around each one. */
class PackCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        PackCache::setEnabled(true);
        PackCache::setMinSourceBytes(0); // tiny test panels must cache
        PackCache::instance().clear();
    }
    void TearDown() override
    {
        PackCache::setEnabled(true);
        PackCache::setMinSourceBytes(PackCache::kDefaultMinSourceBytes);
        PackCache::instance().clear();
    }
};

PackKey
keyFor(std::uint32_t fingerprint, std::uint64_t rows, std::uint64_t cols)
{
    PackKey key;
    key.kind = PackKind::WidenA;
    key.srcType = packTypeTag<float>();
    key.accType = packTypeTag<float>();
    key.tier = 0;
    key.fingerprint = fingerprint;
    key.srcBytes = rows * cols * sizeof(float);
    key.rows = rows;
    key.cols = cols;
    key.pad = cols;
    return key;
}

// ---- Fingerprint ----------------------------------------------------

TEST(PackFingerprint, DeterministicAndContentSensitive)
{
    // Straddle the hardware path's three-chain split and its byte tail.
    std::vector<unsigned char> buf(4096 + 7, 0x5a);
    const std::uint32_t base = packFingerprint(buf.data(), buf.size());
    EXPECT_EQ(packFingerprint(buf.data(), buf.size()), base);

    // Any single flipped byte — head, interior, tail — changes it.
    for (std::size_t at : {std::size_t{0}, buf.size() / 2,
                           buf.size() - 1}) {
        buf[at] ^= 0x01;
        EXPECT_NE(packFingerprint(buf.data(), buf.size()), base)
            << "mutation at byte " << at << " not detected";
        buf[at] ^= 0x01;
    }
    EXPECT_EQ(packFingerprint(buf.data(), buf.size()), base);

    // A shorter prefix of the same bytes is a different fingerprint.
    EXPECT_NE(packFingerprint(buf.data(), buf.size() - 8), base);
}

TEST(PackFingerprint, IndependentOfAddress)
{
    // Content-addressing: the same bytes at a different (and
    // differently aligned) address fingerprint identically.
    std::vector<unsigned char> a(333);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<unsigned char>(i * 37 + 11);
    std::vector<unsigned char> shifted(a.size() + 3);
    std::memcpy(shifted.data() + 3, a.data(), a.size());
    EXPECT_EQ(packFingerprint(a.data(), a.size()),
              packFingerprint(shifted.data() + 3, a.size()));
}

// ---- LRU mechanics (standalone instances) ---------------------------

TEST(PackCacheLru, ByteCapEvictsLeastRecentlyUsed)
{
    // Three 1 KB entries in a 2.5 KB cache: inserting C must evict A
    // (the least recently used), keep B and C.
    constexpr std::size_t kEntry = 1024;
    PackCache cache(2 * kEntry + kEntry / 2);

    int fills = 0;
    const auto fill = [&](void *out) {
        std::memset(out, 0, kEntry);
        ++fills;
    };
    const PackKey ka = keyFor(1, 16, 16);
    const PackKey kb = keyFor(2, 16, 16);
    const PackKey kc = keyFor(3, 16, 16);

    cache.findOrPack(ka, kEntry, fill);
    cache.findOrPack(kb, kEntry, fill);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.residentBytes(), 2 * kEntry);

    // Touch A so B becomes least recently used, then insert C.
    cache.findOrPack(ka, kEntry, fill);
    EXPECT_EQ(cache.hits(), 1u);
    cache.findOrPack(kc, kEntry, fill);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.residentBytes(), 2 * kEntry);

    // A and C hit; B was the eviction victim and must refill.
    cache.findOrPack(ka, kEntry, fill);
    cache.findOrPack(kc, kEntry, fill);
    EXPECT_EQ(cache.hits(), 3u);
    fills = 0;
    cache.findOrPack(kb, kEntry, fill);
    EXPECT_EQ(fills, 1);
}

TEST(PackCacheLru, OversizedEntriesBuiltNotRetained)
{
    PackCache cache(1024);
    bool filled = false;
    auto entry = cache.findOrPack(keyFor(9, 64, 64), 4096,
                                  [&](void *out) {
                                      std::memset(out, 0x77, 4096);
                                      filled = true;
                                  });
    ASSERT_TRUE(filled);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->bytes, 4096u);
    // The caller got live bytes...
    EXPECT_EQ(entry->as<unsigned char>()[4095], 0x77);
    // ...but the cache kept nothing.
    EXPECT_EQ(cache.residentBytes(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(PackCacheLru, EvictedEntryBytesSurviveWhileHeld)
{
    PackCache cache(1024);
    auto held = cache.findOrPack(keyFor(1, 8, 8), 1024, [](void *out) {
        std::memset(out, 0x11, 1024);
    });
    // This insert evicts the held entry from the cache...
    cache.findOrPack(keyFor(2, 8, 8), 1024, [](void *out) {
        std::memset(out, 0x22, 1024);
    });
    EXPECT_EQ(cache.evictions(), 1u);
    // ...but the shared_ptr keeps its bytes alive and intact.
    EXPECT_EQ(held->as<unsigned char>()[0], 0x11);
    EXPECT_EQ(held->as<unsigned char>()[1023], 0x11);
}

TEST(PackCacheLru, ShrinkingCapacityEvictsAtOnce)
{
    PackCache cache(4096);
    for (std::uint32_t i = 0; i < 4; ++i)
        cache.findOrPack(keyFor(i, 8, 8), 1024,
                         [](void *out) { std::memset(out, 0, 1024); });
    EXPECT_EQ(cache.residentBytes(), 4096u);
    cache.setCapacityBytes(1536);
    EXPECT_EQ(cache.residentBytes(), 1024u);
    EXPECT_EQ(cache.evictions(), 3u);
}

TEST(PackCacheLru, ClearResetsEntriesAndCounters)
{
    PackCache cache(4096);
    cache.findOrPack(keyFor(1, 8, 8), 512,
                     [](void *out) { std::memset(out, 0, 512); });
    cache.findOrPack(keyFor(1, 8, 8), 512,
                     [](void *out) { std::memset(out, 0, 512); });
    EXPECT_EQ(cache.hits(), 1u);
    cache.clear();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.residentBytes(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

// ---- Stale-data rejection through the GEMM entry points -------------

TEST_F(PackCacheTest, MutatedOperandNeverServesStalePanels)
{
    // Run the same GEMM twice (second run hits), then mutate A in
    // place and run again: the fingerprint changes, the lookup misses,
    // and the result matches a fresh cache-off computation — never the
    // stale panel.
    Rng rng(0x9acc + 1);
    auto a = randomMatrix<fp::Half>(rng, 9, 23);
    const auto b = randomMatrix<fp::Half>(rng, 23, 17);
    const auto c = randomMatrix<float>(rng, 9, 17);
    Matrix<float> d(9, 17);

    fastReferenceGemm<float, fp::Half, float>(1.5, a, b, 0.25, c, d);
    const PackCacheStats first = PackCache::globalStats();
    fastReferenceGemm<float, fp::Half, float>(1.5, a, b, 0.25, c, d);
    const PackCacheStats second = PackCache::globalStats();
    EXPECT_GT(second.hits, first.hits);

    a(4, 11) = fp::Half(3.25f);
    Matrix<float> d_cached(9, 17);
    fastReferenceGemm<float, fp::Half, float>(1.5, a, b, 0.25, c,
                                              d_cached);
    const PackCacheStats third = PackCache::globalStats();
    EXPECT_GT(third.misses, second.misses);

    PackCache::setEnabled(false);
    Matrix<float> d_fresh(9, 17);
    fastReferenceGemm<float, fp::Half, float>(1.5, a, b, 0.25, c,
                                              d_fresh);
    EXPECT_TRUE(bitIdentical(d_fresh, d_cached));
}

TEST_F(PackCacheTest, RepeatedI8OperandsHitAllPanelKinds)
{
    // i8gemm stages four cached artifacts per call (padded A, packed
    // B, row sums, column sums); a replay with identical operands must
    // hit all of them.
    Rng rng(0x1808);
    const auto a = randomI8(rng, 13, 31);
    const auto b = randomI8(rng, 31, 21);
    const auto c = randomI8(rng, 13, 21);
    Matrix<std::int8_t> d(13, 21);
    QuantParams qp;
    qp.scaleA = 0.02f;
    qp.scaleB = 0.05f;
    qp.scaleD = 0.25f;
    qp.zeroA = 3;
    qp.zeroB = -5;
    qp.zeroD = 1;

    fastQuantizedGemm(1.0, a, b, 0.0, c, d, qp);
    const PackCacheStats cold = PackCache::globalStats();
    Matrix<std::int8_t> d2(13, 21);
    fastQuantizedGemm(1.0, a, b, 0.0, c, d2, qp);
    const PackCacheStats warm = PackCache::globalStats();
    EXPECT_GE(warm.hits - cold.hits, 4u);
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_TRUE(bitIdentical(d, d2));
}

// ---- Cache on/off bit-identity matrix -------------------------------

struct Shape
{
    std::size_t m, n, k;
};

/** Odd shapes straddling the vector widths plus the degenerate N = 1
 *  (decode) and K = 1 panels. */
const Shape kShapes[] = {
    {1, 1, 1}, {1, 13, 1},  {5, 1, 9},    {3, 5, 7},
    {7, 15, 9}, {13, 31, 8}, {27, 47, 29}, {33, 65, 40},
};

const int kThreadCounts[] = {1, 3};

/** Cache off, then cold cache, then warm cache: all three must agree
 *  byte for byte. */
template <typename TCD, typename TAB, typename TAcc>
void
expectOnOffIdentical(SimdTier tier, const Shape &s, int threads,
                     bool round_each_step, std::uint64_t seed)
{
    Rng rng(seed);
    const auto a = randomMatrix<TAB>(rng, s.m, s.k);
    const auto b = randomMatrix<TAB>(rng, s.k, s.n);
    const auto c = randomMatrix<TCD>(rng, s.m, s.n);
    FunctionalGemmOptions opts;
    opts.simd = tier;
    opts.threads = threads;

    PackCache::setEnabled(false);
    Matrix<TCD> d_off(s.m, s.n);
    fastReferenceGemm<TCD, TAB, TAcc>(1.25, a, b, 0.5, c, d_off,
                                      round_each_step, opts);

    PackCache::setEnabled(true);
    PackCache::instance().clear();
    Matrix<TCD> d_cold(s.m, s.n);
    fastReferenceGemm<TCD, TAB, TAcc>(1.25, a, b, 0.5, c, d_cold,
                                      round_each_step, opts);
    Matrix<TCD> d_warm(s.m, s.n);
    fastReferenceGemm<TCD, TAB, TAcc>(1.25, a, b, 0.5, c, d_warm,
                                      round_each_step, opts);

    EXPECT_TRUE(bitIdentical(d_off, d_cold))
        << simdTierName(tier) << " m=" << s.m << " n=" << s.n
        << " k=" << s.k << " threads=" << threads << " (cold)";
    EXPECT_TRUE(bitIdentical(d_off, d_warm))
        << simdTierName(tier) << " m=" << s.m << " n=" << s.n
        << " k=" << s.k << " threads=" << threads << " (warm)";
}

class PackCacheTierTest
    : public ::testing::TestWithParam<SimdTier>
{
  protected:
    void SetUp() override
    {
        PackCache::setEnabled(true);
        PackCache::setMinSourceBytes(0); // tiny test panels must cache
        PackCache::instance().clear();
    }
    void TearDown() override
    {
        PackCache::setEnabled(true);
        PackCache::setMinSourceBytes(PackCache::kDefaultMinSourceBytes);
        PackCache::instance().clear();
    }
};

TEST_P(PackCacheTierTest, FloatCombosMatchWithCacheOnAndOff)
{
    std::uint64_t seed = 0x9100;
    for (const Shape &s : kShapes) {
        for (int threads : kThreadCounts) {
            // sgemm, dgemm, hss, hhs, and hgemm's per-step rounding.
            expectOnOffIdentical<float, float, float>(
                GetParam(), s, threads, false, ++seed);
            expectOnOffIdentical<double, double, double>(
                GetParam(), s, threads, false, ++seed);
            expectOnOffIdentical<float, fp::Half, float>(
                GetParam(), s, threads, false, ++seed);
            expectOnOffIdentical<fp::Half, fp::Half, float>(
                GetParam(), s, threads, false, ++seed);
            expectOnOffIdentical<fp::Half, fp::Half, float>(
                GetParam(), s, threads, true, ++seed);
            expectOnOffIdentical<float, fp::BFloat16, float>(
                GetParam(), s, threads, false, ++seed);
        }
    }
}

TEST_P(PackCacheTierTest, I8GemmMatchesWithCacheOnAndOff)
{
    QuantParams qp;
    qp.scaleA = 0.02f;
    qp.scaleB = 0.05f;
    qp.scaleD = 0.25f;
    qp.zeroA = 3;
    qp.zeroB = -5;
    qp.zeroD = 1;

    std::uint64_t seed = 0xa200;
    for (const Shape &s : kShapes) {
        for (int threads : kThreadCounts) {
            Rng rng(++seed);
            const auto a = randomI8(rng, s.m, s.k);
            const auto b = randomI8(rng, s.k, s.n);
            const auto c = randomI8(rng, s.m, s.n);
            FunctionalGemmOptions opts;
            opts.simd = GetParam();
            opts.threads = threads;

            PackCache::setEnabled(false);
            Matrix<std::int8_t> d_off(s.m, s.n);
            fastQuantizedGemm(1.25, a, b, 0.5, c, d_off, qp, opts);

            PackCache::setEnabled(true);
            PackCache::instance().clear();
            Matrix<std::int8_t> d_cold(s.m, s.n);
            fastQuantizedGemm(1.25, a, b, 0.5, c, d_cold, qp, opts);
            Matrix<std::int8_t> d_warm(s.m, s.n);
            fastQuantizedGemm(1.25, a, b, 0.5, c, d_warm, qp, opts);

            EXPECT_TRUE(bitIdentical(d_off, d_cold))
                << simdTierName(GetParam()) << " m=" << s.m
                << " n=" << s.n << " k=" << s.k
                << " threads=" << threads << " (cold)";
            EXPECT_TRUE(bitIdentical(d_off, d_warm))
                << simdTierName(GetParam()) << " m=" << s.m
                << " n=" << s.n << " k=" << s.k
                << " threads=" << threads << " (warm)";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, PackCacheTierTest,
    ::testing::ValuesIn(availableSimdTiers()),
    [](const ::testing::TestParamInfo<SimdTier> &info) {
        return simdTierName(info.param);
    });

} // namespace
} // namespace blas
} // namespace mc
