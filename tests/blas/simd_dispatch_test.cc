/**
 * @file
 * The SIMD dispatch ladder (docs/PERF.md): tier naming, parsing,
 * availability, resolution, and the kernel-table plumbing. Numeric
 * bit-exactness of the tiers lives in simd_convert_test.cc and
 * simd_tier_test.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "blas/simd_dispatch.hh"
#include "blas/simd_kernels.hh"

namespace mc {
namespace blas {
namespace {

const SimdTier kAllTiers[] = {SimdTier::Scalar, SimdTier::Sse2,
                              SimdTier::Avx2, SimdTier::Avx512,
                              SimdTier::Neon};

TEST(SimdDispatch, NameParseRoundTrip)
{
    for (SimdTier tier : kAllTiers) {
        SimdTier parsed;
        ASSERT_TRUE(parseSimdTier(simdTierName(tier), &parsed))
            << simdTierName(tier);
        EXPECT_EQ(parsed, tier);
    }
    SimdTier parsed;
    EXPECT_TRUE(parseSimdTier("auto", &parsed));
    EXPECT_EQ(parsed, SimdTier::Auto);
    EXPECT_FALSE(parseSimdTier("avx1024", &parsed));
    EXPECT_FALSE(parseSimdTier("", &parsed));
}

TEST(SimdDispatch, ScalarTierIsAlwaysAvailable)
{
    EXPECT_TRUE(simdTierAvailable(SimdTier::Scalar));
    const std::vector<SimdTier> tiers = availableSimdTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), SimdTier::Scalar);
    for (SimdTier tier : tiers)
        EXPECT_TRUE(simdTierAvailable(tier));
}

TEST(SimdDispatch, CpuFeaturesMatchTierAvailability)
{
    const CpuFeatures &cpu = cpuFeatures();
    EXPECT_EQ(simdTierAvailable(SimdTier::Sse2), cpu.sse2);
    EXPECT_EQ(simdTierAvailable(SimdTier::Avx2), cpu.avx2);
    EXPECT_EQ(simdTierAvailable(SimdTier::Avx512), cpu.avx512);
    EXPECT_EQ(simdTierAvailable(SimdTier::Neon), cpu.neon);
}

TEST(SimdDispatch, BestTierIsAvailable)
{
    const SimdTier best = bestSimdTier();
    EXPECT_TRUE(simdTierAvailable(best));
    EXPECT_NE(best, SimdTier::Auto);
}

TEST(SimdDispatch, ResolveNeverReturnsAutoAndHonorsAvailableRequests)
{
    EXPECT_NE(resolveSimdTier(SimdTier::Auto), SimdTier::Auto);
    for (SimdTier tier : availableSimdTiers())
        EXPECT_EQ(resolveSimdTier(tier), tier) << simdTierName(tier);
}

TEST(SimdDispatch, ResolveClampsUnavailableRequestsDownTheLadder)
{
    for (SimdTier tier : kAllTiers) {
        const SimdTier resolved = resolveSimdTier(tier);
        EXPECT_TRUE(simdTierAvailable(resolved)) << simdTierName(tier);
        if (!simdTierAvailable(tier)) {
            EXPECT_NE(resolved, tier) << simdTierName(tier);
        }
    }
}

TEST(SimdDispatch, KernelTablesCarryTheirTierAndAreFullyPopulated)
{
    for (SimdTier tier : availableSimdTiers()) {
        const SimdKernels &ker = simdKernels(tier);
        EXPECT_EQ(ker.tier, tier) << simdTierName(tier);
        EXPECT_NE(ker.axpyF32, nullptr);
        EXPECT_NE(ker.axpySubF32, nullptr);
        EXPECT_NE(ker.axpyRoundHalfF32, nullptr);
        EXPECT_NE(ker.axpyF64, nullptr);
        EXPECT_NE(ker.axpySubF64, nullptr);
        EXPECT_NE(ker.widenHalfToF32, nullptr);
        EXPECT_NE(ker.widenBf16ToF32, nullptr);
        EXPECT_NE(ker.narrowF32ToHalf, nullptr);
        EXPECT_NE(ker.narrowF32ToBf16, nullptr);
    }
}

TEST(SimdDispatch, KernelsForResolvesLikeResolveSimdTier)
{
    for (SimdTier tier : kAllTiers)
        EXPECT_EQ(simdKernelsFor(tier).tier, resolveSimdTier(tier))
            << simdTierName(tier);
    EXPECT_EQ(simdKernelsFor(SimdTier::Auto).tier,
              resolveSimdTier(SimdTier::Auto));
}

// The dispatched-tier record is process-global and other tests in this
// binary fetch kernel tables, so assert containment, not equality.
TEST(SimdDispatch, UsedTierLabelNamesEveryDispatchedTier)
{
    const std::string before = usedSimdTierLabel();
    EXPECT_FALSE(before.empty());
    for (SimdTier tier : availableSimdTiers()) {
        simdKernels(tier);
        EXPECT_NE(usedSimdTierLabel().find(simdTierName(tier)),
                  std::string::npos)
            << simdTierName(tier);
    }
}

} // namespace
} // namespace blas
} // namespace mc
