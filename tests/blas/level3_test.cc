/**
 * @file
 * Tests of the TRSM and SYRK routines: functional correctness of the
 * host references and timing-model invariants of the device path.
 */

#include <gtest/gtest.h>

#include "blas/level3.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

Matrix<double>
randomLowerTriangular(Rng &rng, std::size_t n)
{
    Matrix<double> l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            l(i, j) = rng.uniform(-1.0, 1.0);
        l(i, i) = rng.uniform(1.0, 2.0); // well away from zero
    }
    return l;
}

TEST(ReferenceTrsm, LowerSolveInvertsMultiply)
{
    Rng rng(401);
    const std::size_t m = 24, n = 8;
    const Matrix<double> l = randomLowerTriangular(rng, m);
    Matrix<double> x_true(m, n), b(m, n);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            x_true(i, j) = rng.uniform(-1.0, 1.0);
    // b = L * x_true.
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t kk = 0; kk <= i; ++kk)
                acc += l(i, kk) * x_true(kk, j);
            b(i, j) = acc;
        }
    }
    referenceTrsmLeft(Fill::Lower, false, 1.0, l, b);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(b(i, j), x_true(i, j), 1e-10);
}

TEST(ReferenceTrsm, UpperSolveAndAlpha)
{
    Rng rng(409);
    const std::size_t m = 16;
    Matrix<double> u(m, m);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = i + 1; j < m; ++j)
            u(i, j) = rng.uniform(-1.0, 1.0);
        u(i, i) = rng.uniform(1.0, 2.0);
    }
    Matrix<double> x_true(m, 4), b(m, 4);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            x_true(i, j) = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            double acc = 0.0;
            for (std::size_t kk = i; kk < m; ++kk)
                acc += u(i, kk) * x_true(kk, j);
            b(i, j) = acc / 2.0; // alpha = 2 scales it back
        }
    }
    referenceTrsmLeft(Fill::Upper, false, 2.0, u, b);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_NEAR(b(i, j), x_true(i, j), 1e-10);
}

TEST(ReferenceTrsm, UnitDiagonalSkipsDivision)
{
    Matrix<double> l(2, 2);
    l(0, 0) = 5.0; // must be ignored with unit diagonal
    l(1, 0) = 2.0;
    l(1, 1) = 7.0;
    Matrix<double> b(2, 1);
    b(0, 0) = 3.0;
    b(1, 0) = 8.0;
    referenceTrsmLeft(Fill::Lower, true, 1.0, l, b);
    EXPECT_DOUBLE_EQ(b(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(b(1, 0), 8.0 - 2.0 * 3.0);
}

TEST(ReferenceSyrk, MatchesExplicitProduct)
{
    Rng rng(419);
    const std::size_t n = 12, k = 20;
    Matrix<double> a(n, k), c(n, n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < k; ++j)
            a(i, j) = rng.uniform(-1.0, 1.0);
    Matrix<double> c_ref = c;
    referenceSyrk(Fill::Lower, 0.5, a, 2.0, c);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (j > i) {
                // Upper triangle untouched.
                EXPECT_DOUBLE_EQ(c(i, j), c_ref(i, j));
                continue;
            }
            double dot = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk)
                dot += a(i, kk) * a(j, kk);
            EXPECT_NEAR(c(i, j), 0.5 * dot + 2.0, 1e-10);
        }
    }
}

class Level3Timing : public ::testing::Test
{
  protected:
    Level3Timing()
        : rt(arch::defaultCdna2(), quietOptions()), engine(rt),
          level3(engine)
    {}

    hip::Runtime rt;
    GemmEngine engine;
    Level3Engine level3;
};

TEST_F(Level3Timing, TrsmReportsAlgorithmicFlops)
{
    TrsmConfig cfg;
    cfg.combo = GemmCombo::Dgemm;
    cfg.m = 2048;
    cfg.n = 512;
    auto result = level3.runTrsm(cfg);
    ASSERT_TRUE(result.isOk());
    const auto &r = result.value();
    EXPECT_TRUE(r.usedMatrixCores);
    // m^2 n FLOPs over the kernel duration.
    EXPECT_NEAR(r.kernel.mfmaFlops, 2048.0 * 2048.0 * 512.0, 1.0);
    EXPECT_GT(r.throughput(), 0.0);
}

TEST_F(Level3Timing, TrsmRunsAtRoughlyHalfGemmTime)
{
    TrsmConfig trsm;
    trsm.combo = GemmCombo::Sgemm;
    trsm.m = 4096;
    trsm.n = 4096;
    auto trsm_result = level3.runTrsm(trsm);
    ASSERT_TRUE(trsm_result.isOk());

    GemmConfig gemm;
    gemm.combo = GemmCombo::Sgemm;
    gemm.m = gemm.n = gemm.k = 4096;
    auto gemm_result = engine.run(gemm);
    ASSERT_TRUE(gemm_result.isOk());

    const double ratio = trsm_result.value().kernel.seconds /
                         gemm_result.value().kernel.seconds;
    // Half the work at slightly lower pipeline efficiency.
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 0.75);
}

TEST_F(Level3Timing, SyrkReportsHalfGemmFlops)
{
    SyrkConfig cfg;
    cfg.combo = GemmCombo::Dgemm;
    cfg.n = 2048;
    cfg.k = 1024;
    cfg.alpha = -1.0;
    cfg.beta = 1.0;
    auto result = level3.runSyrk(cfg);
    ASSERT_TRUE(result.isOk());
    EXPECT_NEAR(result.value().kernel.mfmaFlops,
                2048.0 * 2048.0 * 1024.0, 1.0);
}

TEST_F(Level3Timing, HgemmComboStaysOnSimds)
{
    TrsmConfig cfg;
    cfg.combo = GemmCombo::Hgemm;
    cfg.m = 1024;
    cfg.n = 256;
    auto result = level3.runTrsm(cfg);
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result.value().usedMatrixCores);
}

TEST_F(Level3Timing, InvalidDimensionsRejected)
{
    TrsmConfig trsm;
    trsm.m = 0;
    trsm.n = 4;
    EXPECT_EQ(level3.runTrsm(trsm).status().code(),
              ErrorCode::InvalidArgument);
    SyrkConfig syrk;
    syrk.n = 4;
    syrk.k = 0;
    EXPECT_EQ(level3.runSyrk(syrk).status().code(),
              ErrorCode::InvalidArgument);
}

TEST_F(Level3Timing, GemvIsMemoryBound)
{
    GemvConfig cfg;
    cfg.combo = GemmCombo::Dgemm;
    cfg.m = 16384;
    cfg.n = 16384;
    auto result = level3.runGemv(cfg);
    ASSERT_TRUE(result.isOk());
    const auto &r = result.value();
    EXPECT_FALSE(r.usedMatrixCores);
    // 2mn FLOPs over bytes ~ 8mn: intensity 0.25 FLOP/byte, so the
    // achieved rate is bandwidth x intensity, far below compute peaks.
    const double expected =
        2.0 * 16384.0 * 16384.0 /
        (16384.0 * 16384.0 * 8.0 / (1.6e12 * 0.85));
    EXPECT_NEAR(r.throughput(), expected, expected * 0.1);
    EXPECT_LT(r.throughput() / 1e12, 1.0); // well under a TFLOPS
}

TEST_F(Level3Timing, GemvFlopsAreSimdOnly)
{
    GemvConfig cfg;
    cfg.combo = GemmCombo::Sgemm;
    cfg.m = 4096;
    cfg.n = 4096;
    auto result = level3.runGemv(cfg);
    ASSERT_TRUE(result.isOk());
    EXPECT_DOUBLE_EQ(result.value().kernel.mfmaFlops, 0.0);
    EXPECT_NEAR(result.value().kernel.simdFlops, cfg.flops(),
                cfg.flops() * 0.01);
}

TEST_F(Level3Timing, GemvInvalidDimensionsRejected)
{
    GemvConfig cfg;
    cfg.m = 0;
    cfg.n = 5;
    EXPECT_EQ(level3.runGemv(cfg).status().code(),
              ErrorCode::InvalidArgument);
}

TEST_F(Level3Timing, NoDeviceMemoryLeaked)
{
    TrsmConfig cfg;
    cfg.combo = GemmCombo::Sgemm;
    cfg.m = 1024;
    cfg.n = 1024;
    (void)level3.runTrsm(cfg);
    SyrkConfig syrk;
    syrk.combo = GemmCombo::Sgemm;
    syrk.n = 1024;
    syrk.k = 512;
    (void)level3.runSyrk(syrk);
    EXPECT_EQ(rt.allocatedBytes(0), 0u);
}

} // namespace
} // namespace blas
} // namespace mc
