/**
 * @file
 * Tests of the functional GEMM verification harness (the paper's
 * ones/identity scheme plus randomized checks) across every combo and
 * both execution paths.
 */

#include <gtest/gtest.h>

#include "blas/verify.hh"

namespace mc {
namespace blas {
namespace {

GemmConfig
squareConfig(GemmCombo combo, std::size_t n, double alpha = 1.0,
             double beta = 1.0)
{
    GemmConfig cfg;
    cfg.combo = combo;
    cfg.m = cfg.n = cfg.k = n;
    cfg.alpha = alpha;
    cfg.beta = beta;
    return cfg;
}

class VerifyAllCombos : public ::testing::TestWithParam<GemmCombo>
{};

TEST_P(VerifyAllCombos, PaperSchemePassesAt64)
{
    const VerifyResult result =
        verifyGemm(squareConfig(GetParam(), 64));
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST_P(VerifyAllCombos, PaperSchemePassesWithScaling)
{
    // The paper's perf runs use alpha = beta = 0.1.
    const VerifyResult result =
        verifyGemm(squareConfig(GetParam(), 48, 0.1, 0.1));
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST_P(VerifyAllCombos, RandomSchemePasses)
{
    const VerifyResult result = verifyGemm(
        squareConfig(GetParam(), 96), VerifyScheme::Random, 1234);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST_P(VerifyAllCombos, NonSquareNonMultiplePasses)
{
    GemmConfig cfg;
    cfg.combo = GetParam();
    cfg.m = 40;
    cfg.n = 72;
    cfg.k = 56;
    cfg.alpha = 0.5;
    cfg.beta = 2.0;
    const VerifyResult result =
        verifyGemm(cfg, VerifyScheme::Random, 99);
    EXPECT_TRUE(result.passed) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, VerifyAllCombos, ::testing::ValuesIn(allCombos),
    [](const ::testing::TestParamInfo<GemmCombo> &info) {
        return std::string(comboInfo(info.param).name);
    });

TEST(Verify, PathSelectionIsReported)
{
    EXPECT_TRUE(verifyGemm(squareConfig(GemmCombo::Sgemm, 64))
                    .usedMatrixCores);
    EXPECT_FALSE(verifyGemm(squareConfig(GemmCombo::Hgemm, 64))
                     .usedMatrixCores);
    // Tiny mixed-precision problems verify through the SIMD fallback.
    EXPECT_FALSE(verifyGemm(squareConfig(GemmCombo::Hhs, 16))
                     .usedMatrixCores);
}

TEST(Verify, EmulatedHgemmPathVerifiesToo)
{
    GemmConfig cfg = squareConfig(GemmCombo::Hgemm, 64, 0.1, 0.1);
    cfg.forceMatrixCorePath = true;
    const VerifyResult result =
        verifyGemm(cfg, VerifyScheme::Random, 7);
    EXPECT_TRUE(result.usedMatrixCores);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Verify, DetailStringNamesComboAndPath)
{
    const VerifyResult result =
        verifyGemm(squareConfig(GemmCombo::Dgemm, 32));
    EXPECT_NE(result.detail.find("dgemm"), std::string::npos);
    EXPECT_NE(result.detail.find("MatrixCore"), std::string::npos);
    EXPECT_GT(result.tolerance, 0.0);
}

TEST(Verify, ReportsUlpAndErrorIndex)
{
    const VerifyResult result = verifyGemm(
        squareConfig(GemmCombo::Hhs, 64), VerifyScheme::Random, 21);
    EXPECT_TRUE(result.passed) << result.detail;
    // The rounded f16 result differs from the widened reference by a
    // bounded, nonzero amount; the ULP report must be finite and the
    // detail string must carry the argmax index.
    EXPECT_NE(result.maxUlp, fp::kUlpNan);
    EXPECT_NE(result.detail.find("max ULP"), std::string::npos);
    EXPECT_NE(result.detail.find("at ("), std::string::npos);
    EXPECT_LT(result.errorRow, 64u);
    EXPECT_LT(result.errorCol, 64u);
}

TEST(Verify, ExactPathsReportZeroUlp)
{
    // SIMD-path combos re-run the identical reference computation, so
    // the self-comparison half of the check is bitwise equal, and the
    // paper scheme's closed form is exactly representable.
    const VerifyResult result =
        verifyGemm(squareConfig(GemmCombo::Dgemm, 32));
    EXPECT_TRUE(result.passed) << result.detail;
    EXPECT_EQ(result.maxUlp, 0u);
}

TEST(VerifyDeathTest, RejectsHugeProblems)
{
    // 16384^3 = 2^42 multiply-adds: above the raised 2^37 host-work
    // cap (the fast backend made 4096-class problems practical).
    EXPECT_DEATH(
        (void)verifyGemm(squareConfig(GemmCombo::Sgemm, 16384)),
        "problem too");
}

} // namespace
} // namespace blas
} // namespace mc
