/**
 * @file
 * Tests of the GEMM plan cache: repeated configs hit, any changed
 * planner input misses, and the engine's measurement path reports the
 * paper's 10-repetition convention as one plan plus nine hits.
 */

#include <gtest/gtest.h>

#include "arch/calibration.hh"
#include "blas/gemm.hh"
#include "blas/plan_cache.hh"

namespace mc {
namespace blas {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

GemmConfig
squareConfig(std::size_t n, GemmCombo combo = GemmCombo::Sgemm)
{
    GemmConfig cfg;
    cfg.combo = combo;
    cfg.m = cfg.n = cfg.k = n;
    cfg.alpha = cfg.beta = 0.1;
    return cfg;
}

TEST(PlanKey, EqualForIdenticalInputs)
{
    const PlannerOptions opts;
    const PlanKey a = makePlanKey(squareConfig(1024), opts, 0x1234);
    const PlanKey b = makePlanKey(squareConfig(1024), opts, 0x1234);
    EXPECT_EQ(a, b);
    EXPECT_EQ(PlanKeyHash{}(a), PlanKeyHash{}(b));
}

TEST(PlanKey, DiffersWhenAnyPlannerInputChanges)
{
    const PlannerOptions opts;
    const PlanKey base = makePlanKey(squareConfig(1024), opts, 0x1234);

    EXPECT_NE(makePlanKey(squareConfig(2048), opts, 0x1234), base);
    EXPECT_NE(makePlanKey(squareConfig(1024, GemmCombo::Dgemm), opts,
                          0x1234),
              base);

    GemmConfig scaled = squareConfig(1024);
    scaled.beta = 0.0;
    EXPECT_NE(makePlanKey(scaled, opts, 0x1234), base);

    PlannerOptions tuned = opts;
    tuned.macroTile = 64;
    EXPECT_NE(makePlanKey(squareConfig(1024), tuned, 0x1234), base);

    // Same problem on a differently calibrated device is a new key.
    EXPECT_NE(makePlanKey(squareConfig(1024), opts, 0x5678), base);
}

TEST(PlanKey, QuantParamsKeySeparately)
{
    // Every quantization field must miss rather than serve a plan
    // resolved for different scales or zero points.
    const PlannerOptions opts;
    const PlanKey base = makePlanKey(squareConfig(1024), opts, 0x1234);

    GemmConfig config = squareConfig(1024);
    config.quant.scaleA = 0.5f;
    EXPECT_NE(makePlanKey(config, opts, 0x1234), base);
    config = squareConfig(1024);
    config.quant.scaleD = 2.0f;
    EXPECT_NE(makePlanKey(config, opts, 0x1234), base);
    config = squareConfig(1024);
    config.quant.zeroB = -7;
    EXPECT_NE(makePlanKey(config, opts, 0x1234), base);

    // Default QuantParams on a float combo leave the key unchanged.
    EXPECT_EQ(makePlanKey(squareConfig(1024), opts, 0x1234), base);
}

TEST(PlanCache, RepeatLookupsHitAndReuseThePlan)
{
    PlanCache cache;
    const PlanKey key =
        makePlanKey(squareConfig(1024), PlannerOptions(), 1);
    int computed = 0;
    const auto compute = [&computed] {
        ++computed;
        return planGemm(squareConfig(1024), arch::defaultCdna2());
    };

    const std::shared_ptr<const GemmPlan> first =
        cache.findOrCompute(key, compute);
    for (int i = 0; i < 9; ++i) {
        const std::shared_ptr<const GemmPlan> again =
            cache.findOrCompute(key, compute);
        EXPECT_EQ(again.get(), first.get()); // same cached plan object
    }
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 9u);
    EXPECT_EQ(cache.size(), 1u);

    cache.clear();
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

PlanKey
keyForSize(std::size_t n)
{
    return makePlanKey(squareConfig(n), PlannerOptions(), 1);
}

std::function<GemmPlan()>
plannerForSize(std::size_t n)
{
    return [n] {
        return planGemm(squareConfig(n), arch::defaultCdna2());
    };
}

TEST(PlanCache, LruEvictsOldestAtCapacity)
{
    PlanCache cache;
    cache.setCapacity(2);
    EXPECT_EQ(cache.capacity(), 2u);

    (void)cache.findOrCompute(keyForSize(256), plannerForSize(256));
    (void)cache.findOrCompute(keyForSize(512), plannerForSize(512));
    // Touch 256 so 512 becomes the least recently used entry.
    (void)cache.findOrCompute(keyForSize(256), plannerForSize(256));
    (void)cache.findOrCompute(keyForSize(1024), plannerForSize(1024));

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    // 256 survived the eviction; 512 did not.
    (void)cache.findOrCompute(keyForSize(256), plannerForSize(256));
    EXPECT_EQ(cache.hits(), 2u);
    (void)cache.findOrCompute(keyForSize(512), plannerForSize(512));
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.evictions(), 2u);
}

TEST(PlanCache, ShrinkingCapacityEvictsExcessAtOnce)
{
    PlanCache cache;
    for (std::size_t n : {128u, 256u, 512u, 1024u})
        (void)cache.findOrCompute(keyForSize(n), plannerForSize(n));
    EXPECT_EQ(cache.size(), 4u);

    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 3u);
    // The MRU entry (1024) is the one kept.
    (void)cache.findOrCompute(keyForSize(1024), plannerForSize(1024));
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCache, SharedPlanSurvivesEviction)
{
    PlanCache cache;
    cache.setCapacity(1);
    const std::shared_ptr<const GemmPlan> held =
        cache.findOrCompute(keyForSize(1024), plannerForSize(1024));
    const int macro_tile = held->macroTile;

    (void)cache.findOrCompute(keyForSize(2048), plannerForSize(2048));
    EXPECT_EQ(cache.evictions(), 1u);
    // The caller's reference outlives the cache entry.
    EXPECT_EQ(held->macroTile, macro_tile);
}

TEST(PlanCache, CapacityZeroIsUnbounded)
{
    PlanCache cache;
    cache.setCapacity(0);
    for (std::size_t n = 16; n <= 1024; n *= 2)
        (void)cache.findOrCompute(keyForSize(n), plannerForSize(n));
    EXPECT_EQ(cache.size(), 7u);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(PlanCache, DefaultCapacitySeedsNewCaches)
{
    const std::size_t saved = PlanCache::defaultCapacity();
    PlanCache::setDefaultCapacity(3);
    PlanCache capped;
    EXPECT_EQ(capped.capacity(), 3u);
    PlanCache::setDefaultCapacity(saved);
    PlanCache restored;
    EXPECT_EQ(restored.capacity(), saved);
}

TEST(PlanCache, GlobalStatsAggregateAcrossCaches)
{
    const PlanCacheStats before = PlanCache::globalStats();
    {
        PlanCache cache;
        cache.setCapacity(1);
        (void)cache.findOrCompute(keyForSize(256), plannerForSize(256));
        (void)cache.findOrCompute(keyForSize(256), plannerForSize(256));
        (void)cache.findOrCompute(keyForSize(512), plannerForSize(512));
    }
    // Counters survive the cache's destruction.
    const PlanCacheStats after = PlanCache::globalStats();
    EXPECT_GE(after.hits, before.hits + 1);
    EXPECT_GE(after.misses, before.misses + 2);
    EXPECT_GE(after.evictions, before.evictions + 1);
}

TEST(PlanCache, TenRepetitionPointPlansOnce)
{
    // The acceptance shape: a sweep point measured 10 times must plan
    // once and serve the other nine repetitions from the cache.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);
    const GemmConfig cfg = squareConfig(1024);

    for (int rep = 0; rep < 10; ++rep)
        ASSERT_TRUE(engine.run(cfg).isOk());

    EXPECT_EQ(engine.planCache().misses(), 1u);
    EXPECT_EQ(engine.planCache().hits(), 9u);
}

TEST(PlanCache, PlanAndRunShareTheCache)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);
    const GemmConfig cfg = squareConfig(2048);

    const GemmPlan planned = engine.plan(cfg);
    EXPECT_EQ(engine.planCache().misses(), 1u);

    ASSERT_TRUE(engine.run(cfg).isOk());
    EXPECT_EQ(engine.planCache().misses(), 1u);
    EXPECT_EQ(engine.planCache().hits(), 1u);
    EXPECT_EQ(planned.macroTile, engine.plan(cfg).macroTile);
}

TEST(PlanCache, ChangedPlannerOptionsMiss)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);
    const GemmConfig cfg = squareConfig(4096);

    ASSERT_TRUE(engine.run(cfg).isOk());
    EXPECT_EQ(engine.planCache().misses(), 1u);

    // The ablation benches mutate the tunables between runs; a stale
    // plan here would silently invalidate the study.
    engine.plannerOptions().macroTile = 64;
    const GemmPlan retuned = engine.plan(cfg);
    EXPECT_EQ(retuned.macroTile, 64);
    EXPECT_EQ(engine.planCache().misses(), 2u);
    EXPECT_EQ(engine.planCache().size(), 2u);
}

TEST(PlanCache, DistinctProblemsGetDistinctEntries)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    GemmEngine engine(rt);

    for (std::size_t n : {256u, 512u, 1024u})
        ASSERT_TRUE(engine.run(squareConfig(n)).isOk());
    ASSERT_TRUE(engine.run(squareConfig(512, GemmCombo::Dgemm)).isOk());

    EXPECT_EQ(engine.planCache().misses(), 4u);
    EXPECT_EQ(engine.planCache().hits(), 0u);
    EXPECT_EQ(engine.planCache().size(), 4u);
}

} // namespace
} // namespace blas
} // namespace mc
