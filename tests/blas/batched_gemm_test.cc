/**
 * @file
 * The strided-batched fast-GEMM drivers' contract: every entry of
 * fastBatchedGemm / fastBatchedTiledMatrixCoreGemm /
 * fastBatchedQuantizedGemm is bit-identical to the corresponding
 * single-call driver on the same operand slices — with strided
 * operands, with the stride-0 broadcast convention (shared A or B
 * staged once), across thread counts, and with the pack cache on or
 * off. Complements tests/blas/batched_test.cc, which covers the
 * simulated device's batched planning; this file covers the host
 * functional path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "arch/mfma_isa.hh"
#include "blas/batched_gemm.hh"
#include "blas/int8_gemm.hh"
#include "blas/pack_cache.hh"
#include "blas/simd_dispatch.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

template <typename T>
std::vector<T>
randomFlat(Rng &rng, std::size_t count)
{
    std::vector<T> v(count);
    for (T &x : v)
        x = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
    return v;
}

std::vector<std::int8_t>
randomFlatI8(Rng &rng, std::size_t count)
{
    std::vector<std::int8_t> v(count);
    for (std::int8_t &x : v)
        x = static_cast<std::int8_t>(
            std::lround(rng.uniform(-128.0, 127.0)));
    return v;
}

template <typename T>
::testing::AssertionResult
flatBitIdentical(const std::vector<T> &x, const std::vector<T> &y)
{
    if (x.size() != y.size())
        return ::testing::AssertionFailure() << "size mismatch";
    if (std::memcmp(x.data(), y.data(), x.size() * sizeof(T)) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < x.size(); ++i)
        if (std::memcmp(&x[i], &y[i], sizeof(T)) != 0)
            return ::testing::AssertionFailure()
                   << "first differing element at flat index " << i;
    return ::testing::AssertionFailure() << "memcmp/element disagree";
}

/** Wrap a flat batch entry as a Matrix for the single-call drivers. */
template <typename T>
Matrix<T>
sliceMatrix(const T *base, std::size_t rows, std::size_t cols)
{
    Matrix<T> m(rows, cols);
    std::memcpy(m.data(), base, rows * cols * sizeof(T));
    return m;
}

struct BatchCase
{
    std::size_t batch, m, n, k;
    std::size_t strideA, strideB; ///< 0 broadcasts that operand
};

/** Strided and broadcast layouts, decode-shaped and odd entries. */
const BatchCase kCases[] = {
    {1, 5, 7, 9, 5 * 9, 9 * 7},    // trivial batch
    {3, 7, 15, 9, 7 * 9, 9 * 15},  // fully strided
    {4, 13, 31, 8, 13 * 8, 0},     // shared B (the weights case)
    {4, 1, 17, 23, 0, 23 * 17},    // shared A, decode row
    {2, 1, 1, 1, 1, 1},            // degenerate everything
    {5, 3, 1, 40, 3 * 40, 40},     // N = 1 column panels
};

const int kThreadCounts[] = {1, 3};

class BatchedDriverTest : public ::testing::TestWithParam<bool>
{
  protected:
    void SetUp() override
    {
        PackCache::setEnabled(GetParam());
        PackCache::setMinSourceBytes(0); // tiny test panels must cache
        if (GetParam())
            PackCache::instance().clear();
    }
    void TearDown() override
    {
        PackCache::setEnabled(true);
        PackCache::setMinSourceBytes(PackCache::kDefaultMinSourceBytes);
        PackCache::instance().clear();
    }
};

template <typename TCD, typename TAB, typename TAcc>
void
expectBatchedMatchesLoop(const BatchCase &bc, int threads,
                         std::uint64_t seed)
{
    Rng rng(seed);
    const std::size_t a_count =
        bc.strideA ? bc.strideA * bc.batch : bc.m * bc.k;
    const std::size_t b_count =
        bc.strideB ? bc.strideB * bc.batch : bc.k * bc.n;
    const auto a = randomFlat<TAB>(rng, a_count);
    const auto b = randomFlat<TAB>(rng, b_count);
    const auto c = randomFlat<TCD>(rng, bc.batch * bc.m * bc.n);
    FunctionalGemmOptions opts;
    opts.threads = threads;

    std::vector<TCD> d_batched(bc.batch * bc.m * bc.n, TCD(0.0f));
    fastBatchedGemm<TCD, TAB, TAcc>(
        bc.batch, 1.25, a.data(), bc.strideA, b.data(), bc.strideB, 0.5,
        c.data(), bc.m * bc.n, d_batched.data(), bc.m * bc.n, bc.m, bc.n,
        bc.k, /*round_each_step=*/false, opts);

    std::vector<TCD> d_loop(bc.batch * bc.m * bc.n, TCD(0.0f));
    for (std::size_t e = 0; e < bc.batch; ++e) {
        const auto ae =
            sliceMatrix(a.data() + e * bc.strideA, bc.m, bc.k);
        const auto be =
            sliceMatrix(b.data() + e * bc.strideB, bc.k, bc.n);
        const auto ce =
            sliceMatrix(c.data() + e * bc.m * bc.n, bc.m, bc.n);
        Matrix<TCD> de(bc.m, bc.n);
        fastReferenceGemm<TCD, TAB, TAcc>(1.25, ae, be, 0.5, ce, de,
                                          false, opts);
        std::memcpy(d_loop.data() + e * bc.m * bc.n, de.data(),
                    bc.m * bc.n * sizeof(TCD));
    }
    EXPECT_TRUE(flatBitIdentical(d_loop, d_batched))
        << "batch=" << bc.batch << " m=" << bc.m << " n=" << bc.n
        << " k=" << bc.k << " strideA=" << bc.strideA
        << " strideB=" << bc.strideB << " threads=" << threads;
}

TEST_P(BatchedDriverTest, FloatEntriesMatchSingleCalls)
{
    std::uint64_t seed = 0xb100;
    for (const BatchCase &bc : kCases)
        for (int threads : kThreadCounts)
            expectBatchedMatchesLoop<float, float, float>(bc, threads,
                                                          ++seed);
}

TEST_P(BatchedDriverTest, HalfEntriesMatchSingleCalls)
{
    std::uint64_t seed = 0xb200;
    for (const BatchCase &bc : kCases) {
        for (int threads : kThreadCounts) {
            expectBatchedMatchesLoop<float, fp::Half, float>(bc, threads,
                                                             ++seed);
            expectBatchedMatchesLoop<fp::Half, fp::Half, float>(
                bc, threads, ++seed);
        }
    }
}

TEST_P(BatchedDriverTest, TiledMatrixCoreEntriesMatchSingleCalls)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);

    std::uint64_t seed = 0xb300;
    for (const BatchCase &bc : kCases) {
        Rng rng(++seed);
        const std::size_t a_count =
            bc.strideA ? bc.strideA * bc.batch : bc.m * bc.k;
        const std::size_t b_count =
            bc.strideB ? bc.strideB * bc.batch : bc.k * bc.n;
        const auto a = randomFlat<fp::Half>(rng, a_count);
        const auto b = randomFlat<fp::Half>(rng, b_count);
        const auto c = randomFlat<float>(rng, bc.batch * bc.m * bc.n);

        std::vector<float> d_batched(bc.batch * bc.m * bc.n, 0.0f);
        fastBatchedTiledMatrixCoreGemm<float, fp::Half, float>(
            *inst, bc.batch, 1.25, a.data(), bc.strideA, b.data(),
            bc.strideB, 0.5, c.data(), bc.m * bc.n, d_batched.data(),
            bc.m * bc.n, bc.m, bc.n, bc.k);

        std::vector<float> d_loop(bc.batch * bc.m * bc.n, 0.0f);
        for (std::size_t e = 0; e < bc.batch; ++e) {
            const auto ae =
                sliceMatrix(a.data() + e * bc.strideA, bc.m, bc.k);
            const auto be =
                sliceMatrix(b.data() + e * bc.strideB, bc.k, bc.n);
            const auto ce =
                sliceMatrix(c.data() + e * bc.m * bc.n, bc.m, bc.n);
            Matrix<float> de(bc.m, bc.n);
            fastTiledMatrixCoreGemm<float, fp::Half, float>(
                *inst, 1.25, ae, be, 0.5, ce, de);
            std::memcpy(d_loop.data() + e * bc.m * bc.n, de.data(),
                        bc.m * bc.n * sizeof(float));
        }
        EXPECT_TRUE(flatBitIdentical(d_loop, d_batched))
            << "batch=" << bc.batch << " m=" << bc.m << " n=" << bc.n
            << " k=" << bc.k;
    }
}

TEST_P(BatchedDriverTest, QuantizedEntriesMatchSingleCalls)
{
    QuantParams qp;
    qp.scaleA = 0.02f;
    qp.scaleB = 0.05f;
    qp.scaleD = 0.25f;
    qp.zeroA = 3;
    qp.zeroB = -5;
    qp.zeroD = 1;

    std::uint64_t seed = 0xb400;
    for (const BatchCase &bc : kCases) {
        for (int threads : kThreadCounts) {
            Rng rng(++seed);
            const std::size_t a_count =
                bc.strideA ? bc.strideA * bc.batch : bc.m * bc.k;
            const std::size_t b_count =
                bc.strideB ? bc.strideB * bc.batch : bc.k * bc.n;
            const auto a = randomFlatI8(rng, a_count);
            const auto b = randomFlatI8(rng, b_count);
            const auto c = randomFlatI8(rng, bc.batch * bc.m * bc.n);
            FunctionalGemmOptions opts;
            opts.threads = threads;

            std::vector<std::int8_t> d_batched(bc.batch * bc.m * bc.n,
                                               std::int8_t{0});
            fastBatchedQuantizedGemm(
                bc.batch, 1.25, a.data(), bc.strideA, b.data(),
                bc.strideB, 0.5, c.data(), bc.m * bc.n,
                d_batched.data(), bc.m * bc.n, bc.m, bc.n, bc.k, qp,
                opts);

            std::vector<std::int8_t> d_loop(bc.batch * bc.m * bc.n,
                                            std::int8_t{0});
            for (std::size_t e = 0; e < bc.batch; ++e) {
                const auto ae =
                    sliceMatrix(a.data() + e * bc.strideA, bc.m, bc.k);
                const auto be =
                    sliceMatrix(b.data() + e * bc.strideB, bc.k, bc.n);
                const auto ce = sliceMatrix(c.data() + e * bc.m * bc.n,
                                            bc.m, bc.n);
                Matrix<std::int8_t> de(bc.m, bc.n);
                fastQuantizedGemm(1.25, ae, be, 0.5, ce, de, qp, opts);
                std::memcpy(d_loop.data() + e * bc.m * bc.n, de.data(),
                            bc.m * bc.n);
            }
            EXPECT_TRUE(flatBitIdentical(d_loop, d_batched))
                << "batch=" << bc.batch << " m=" << bc.m
                << " n=" << bc.n << " k=" << bc.k
                << " threads=" << threads;
        }
    }
}

TEST_P(BatchedDriverTest, SharedOperandStagesOnceWhenCacheEnabled)
{
    if (!GetParam())
        GTEST_SKIP() << "cache-off run has no staging counters";

    // A stride-0 B across 6 entries: the widened-B panel must be
    // staged exactly once (one miss), not once per entry.
    Rng rng(0xb500);
    const std::size_t m = 4, n = 33, k = 17, batch = 6;
    const auto a = randomFlat<fp::Half>(rng, batch * m * k);
    const auto b = randomFlat<fp::Half>(rng, k * n);
    const auto c = randomFlat<float>(rng, batch * m * n);
    std::vector<float> d(batch * m * n, 0.0f);

    PackCache::instance().clear();
    const PackCacheStats before = PackCache::globalStats();
    fastBatchedGemm<float, fp::Half, float>(
        batch, 1.0, a.data(), m * k, b.data(), 0, 0.0, c.data(), m * n,
        d.data(), m * n, m, n, k);
    const PackCacheStats after = PackCache::globalStats();
    // batch A panels + 1 shared B panel, each staged exactly once.
    EXPECT_EQ(after.misses - before.misses, batch + 1);
}

INSTANTIATE_TEST_SUITE_P(PackCacheOnOff, BatchedDriverTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "CacheOn" : "CacheOff";
                         });

} // namespace
} // namespace blas
} // namespace mc
