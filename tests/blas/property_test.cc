/**
 * @file
 * Property (fuzz-style) tests of the GEMM planner and simulator over
 * randomized problem configurations: the structural invariants that
 * must hold for *every* plan, not just the swept sizes.
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "common/random.hh"
#include "prof/profiler.hh"

namespace mc {
namespace blas {
namespace {

struct FuzzCase
{
    GemmConfig config;
    std::string name;
};

std::vector<FuzzCase>
fuzzCases()
{
    Rng rng(0xf022);
    const double scale_values[] = {0.0, 0.1, 1.0, -1.0, 2.5};
    std::vector<FuzzCase> cases;
    for (int i = 0; i < 60; ++i) {
        FuzzCase fc;
        fc.config.combo =
            static_cast<GemmCombo>(rng.nextBelow(5));
        fc.config.m = 1 + rng.nextBelow(3000);
        fc.config.n = 1 + rng.nextBelow(3000);
        fc.config.k = 1 + rng.nextBelow(3000);
        fc.config.alpha = scale_values[rng.nextBelow(5)];
        fc.config.beta = scale_values[rng.nextBelow(5)];
        fc.config.batchCount = 1 + rng.nextBelow(8);
        fc.name = std::string(comboInfo(fc.config.combo).name) + "_" +
                  std::to_string(i);
        cases.push_back(std::move(fc));
    }
    return cases;
}

class PlannerFuzz : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(PlannerFuzz, StructuralInvariants)
{
    const GemmConfig &cfg = GetParam().config;
    const auto &cal = arch::defaultCdna2();
    const GemmPlan plan = planGemm(cfg, cal);

    // Padding never shrinks and respects the instruction shape.
    EXPECT_GE(plan.paddedM, cfg.m);
    EXPECT_GE(plan.paddedN, cfg.n);
    EXPECT_GE(plan.paddedK, cfg.k);
    if (plan.useMatrixCores) {
        ASSERT_NE(plan.inst, nullptr);
        EXPECT_EQ(plan.paddedM %
                      static_cast<std::size_t>(plan.inst->shape.m), 0u);
        EXPECT_EQ(plan.paddedN %
                      static_cast<std::size_t>(plan.inst->shape.n), 0u);
        EXPECT_EQ(plan.paddedK %
                      static_cast<std::size_t>(plan.inst->shape.k), 0u);

        // MFMA instruction count covers the padded volume exactly.
        const std::uint64_t expected =
            (plan.paddedM / plan.inst->shape.m) *
            (plan.paddedN / plan.inst->shape.n) *
            (plan.paddedK / plan.inst->shape.k) * cfg.batchCount;
        EXPECT_EQ(plan.mfmaInstsTotal, expected);

        // Counter MOPS encode the padded hardware work exactly.
        const auto counters = plan.profile.expectedCounters();
        const double mc_flops =
            512.0 * static_cast<double>(counters.mops(
                        comboInfo(cfg.combo).typeAB));
        EXPECT_DOUBLE_EQ(mc_flops,
                         2.0 * static_cast<double>(plan.paddedM) *
                             plan.paddedN * plan.paddedK *
                             cfg.batchCount);
    } else {
        // All product FLOPs appear as SIMD work.
        EXPECT_DOUBLE_EQ(plan.profile.mfmaFlops(), 0.0);
        EXPECT_GE(plan.profile.simdFlops(), cfg.productFlops());
    }

    // Reported algorithmic FLOPs never exceed padded hardware work and
    // match 2mnk*batch on the Matrix Core path.
    if (plan.useMatrixCores) {
        EXPECT_DOUBLE_EQ(plan.profile.mfmaFlops(), cfg.productFlops());
    }

    // Wavefronts cover the workgroups.
    EXPECT_EQ(plan.numWavefronts,
              plan.numWorkgroups * plan.wavesPerWorkgroup);
    EXPECT_GT(plan.numWorkgroups, 0u);

    // Traffic at least covers the compulsory bytes: one read of A and
    // B, one write of D.
    const auto &info = comboInfo(cfg.combo);
    const double compulsory_read =
        static_cast<double>(cfg.m) * cfg.k *
            arch::dataTypeBytes(info.typeAB) +
        static_cast<double>(cfg.k) * cfg.n *
            arch::dataTypeBytes(info.typeAB);
    const double compulsory_write =
        static_cast<double>(cfg.m) * cfg.n *
        arch::dataTypeBytes(info.typeCD);
    EXPECT_GE(plan.hbmReadBytes,
              compulsory_read * cfg.batchCount * 0.999);
    EXPECT_GE(plan.hbmWriteBytes,
              compulsory_write * cfg.batchCount * 0.999);

    // Efficiencies are valid fractions.
    EXPECT_GT(plan.bwEfficiency, 0.0);
    EXPECT_LE(plan.bwEfficiency, 1.0);
    EXPECT_GE(plan.l2MissFrac, 0.0);
    EXPECT_LE(plan.l2MissFrac, 1.0);
}

TEST_P(PlannerFuzz, PlanningIsDeterministic)
{
    const GemmConfig &cfg = GetParam().config;
    const auto &cal = arch::defaultCdna2();
    const GemmPlan a = planGemm(cfg, cal);
    const GemmPlan b = planGemm(cfg, cal);
    EXPECT_EQ(a.useMatrixCores, b.useMatrixCores);
    EXPECT_EQ(a.macroTile, b.macroTile);
    EXPECT_EQ(a.mfmaInstsTotal, b.mfmaInstsTotal);
    EXPECT_DOUBLE_EQ(a.hbmReadBytes, b.hbmReadBytes);
}

TEST_P(PlannerFuzz, SimulatedRunIsConsistent)
{
    const GemmConfig &cfg = GetParam().config;
    sim::SimOptions opts;
    opts.enableNoise = false;
    sim::Mi250x gpu(arch::defaultCdna2(), opts);
    const GemmPlan plan = planGemm(cfg, gpu.calibration());

    const sim::KernelResult r = gpu.runOnGcd(plan.profile);
    EXPECT_GT(r.seconds, 0.0);
    // Power stays within physical bounds.
    EXPECT_GE(r.avgPowerW, gpu.powerModel().idleWatts());
    EXPECT_LE(r.avgPowerW, gpu.powerModel().capWatts());
    // Eq. 1 over the counters equals the FLOPs the result reports,
    // modulo the padding the counters see and the report does not.
    const auto split = prof::flopBreakdown(r.counters);
    EXPECT_GE(split.total() * 1.0001,
              (plan.useMatrixCores ? plan.profile.mfmaFlops() : 0.0) +
                  plan.profile.simdFlops());
}

INSTANTIATE_TEST_SUITE_P(
    Random, PlannerFuzz, ::testing::ValuesIn(fuzzCases()),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace blas
} // namespace mc
