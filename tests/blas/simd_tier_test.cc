/**
 * @file
 * Every SIMD tier of the fast functional-GEMM backend must produce
 * results bit-identical to the scalar tier — for all five datatype
 * combinations, at odd shapes that straddle every vector width and
 * block size, with per-step f16 rounding on and off, and at every
 * thread count. The scalar tier itself is pinned to the retained
 * scalar reference in fast_gemm_test.cc, so together the two suites
 * tie every tier to the original arithmetic.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "blas/fast_gemm.hh"
#include "blas/functional.hh"
#include "blas/level3.hh"
#include "blas/simd_dispatch.hh"
#include "common/random.hh"

namespace mc {
namespace blas {
namespace {

template <typename T>
Matrix<T>
randomMatrix(Rng &rng, std::size_t rows, std::size_t cols)
{
    Matrix<T> m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
    return m;
}

template <typename T>
::testing::AssertionResult
bitIdentical(const Matrix<T> &x, const Matrix<T> &y)
{
    if (x.rows() != y.rows() || x.cols() != y.cols())
        return ::testing::AssertionFailure() << "shape mismatch";
    if (std::memcmp(x.data(), y.data(),
                    x.rows() * x.cols() * sizeof(T)) == 0)
        return ::testing::AssertionSuccess();
    for (std::size_t i = 0; i < x.rows(); ++i)
        for (std::size_t j = 0; j < x.cols(); ++j)
            if (std::memcmp(&x(i, j), &y(i, j), sizeof(T)) != 0)
                return ::testing::AssertionFailure()
                       << "first differing element at (" << i << ", "
                       << j << ")";
    return ::testing::AssertionFailure() << "memcmp/element disagree";
}

struct Shape
{
    std::size_t m, n, k;
};

/** n values straddle every vector width (4, 8, 16 f32 lanes) with odd
 *  tails; the last shape crosses the block sizes below as well. */
const Shape kShapes[] = {
    {1, 1, 1},   {3, 5, 7},     {7, 15, 9},  {9, 17, 23},
    {13, 31, 8}, {21, 33, 19},  {27, 47, 29}, {67, 129, 65},
};

FunctionalGemmOptions
tierOptions(SimdTier tier, int threads)
{
    FunctionalGemmOptions opts;
    opts.simd = tier;
    opts.threads = threads;
    opts.blockM = 16;
    opts.blockN = 24;
    opts.blockK = 40;
    return opts;
}

class SimdTierTest : public ::testing::TestWithParam<SimdTier>
{
};

template <typename TCD, typename TAB, typename TAcc>
void
expectTierMatchesScalarTier(SimdTier tier, bool round_each_step)
{
    for (const Shape &s : kShapes) {
        Rng rng(0xca11 + s.m * 131 + s.n * 17 + s.k);
        const auto a = randomMatrix<TAB>(rng, s.m, s.k);
        const auto b = randomMatrix<TAB>(rng, s.k, s.n);
        const auto c = randomMatrix<TCD>(rng, s.m, s.n);

        Matrix<TCD> d_scalar(s.m, s.n);
        fastReferenceGemm<TCD, TAB, TAcc>(
            1.25, a, b, -0.5, c, d_scalar, round_each_step,
            tierOptions(SimdTier::Scalar, 1));

        for (int threads : {1, 2, 8}) {
            Matrix<TCD> d_tier(s.m, s.n);
            fastReferenceGemm<TCD, TAB, TAcc>(
                1.25, a, b, -0.5, c, d_tier, round_each_step,
                tierOptions(tier, threads));
            EXPECT_TRUE(bitIdentical(d_scalar, d_tier))
                << "tier=" << simdTierName(tier) << " shape " << s.m
                << "x" << s.n << "x" << s.k << " threads=" << threads
                << " round_each_step=" << round_each_step;
        }
    }
}

TEST_P(SimdTierTest, Dgemm)
{
    expectTierMatchesScalarTier<double, double, double>(GetParam(),
                                                        false);
}

TEST_P(SimdTierTest, Sgemm)
{
    expectTierMatchesScalarTier<float, float, float>(GetParam(), false);
}

TEST_P(SimdTierTest, HgemmRoundsEachStep)
{
    expectTierMatchesScalarTier<fp::Half, fp::Half, float>(GetParam(),
                                                           true);
}

TEST_P(SimdTierTest, Hhs)
{
    expectTierMatchesScalarTier<fp::Half, fp::Half, float>(GetParam(),
                                                           false);
}

TEST_P(SimdTierTest, Hss)
{
    expectTierMatchesScalarTier<float, fp::Half, float>(GetParam(),
                                                        false);
}

TEST_P(SimdTierTest, Bf16OperandPacking)
{
    expectTierMatchesScalarTier<float, fp::BFloat16, float>(GetParam(),
                                                            false);
}

TEST_P(SimdTierTest, TrsmMatchesScalarTier)
{
    const SimdTier tier = GetParam();
    for (const bool lower : {true, false}) {
        const std::size_t m = 37, n = 43;
        Rng rng(0x3a0 + (lower ? 1 : 0));
        auto a = randomMatrix<double>(rng, m, m);
        for (std::size_t i = 0; i < m; ++i)
            a(i, i) = 2.0 + a(i, i);
        const auto b0 = randomMatrix<double>(rng, m, n);

        const Fill fill = lower ? Fill::Lower : Fill::Upper;
        Matrix<double> b_scalar = b0;
        referenceTrsmLeft(fill, false, 0.75, a, b_scalar,
                          tierOptions(SimdTier::Scalar, 1));
        for (int threads : {1, 8}) {
            Matrix<double> b_t = b0;
            referenceTrsmLeft(fill, false, 0.75, a, b_t,
                              tierOptions(tier, threads));
            EXPECT_TRUE(bitIdentical(b_scalar, b_t))
                << "tier=" << simdTierName(tier) << " lower=" << lower
                << " threads=" << threads;
        }
    }
}

TEST_P(SimdTierTest, SyrkMatchesScalarTier)
{
    const SimdTier tier = GetParam();
    for (const bool lower : {true, false}) {
        const std::size_t n = 41, k = 23;
        Rng rng(0x5e0 + (lower ? 1 : 0));
        const auto a = randomMatrix<double>(rng, n, k);
        const auto c0 = randomMatrix<double>(rng, n, n);

        const Fill fill = lower ? Fill::Lower : Fill::Upper;
        Matrix<double> c_scalar = c0;
        referenceSyrk(fill, -1.0, a, 1.0, c_scalar,
                      tierOptions(SimdTier::Scalar, 1));
        for (int threads : {1, 8}) {
            Matrix<double> c_t = c0;
            referenceSyrk(fill, -1.0, a, 1.0, c_t,
                          tierOptions(tier, threads));
            EXPECT_TRUE(bitIdentical(c_scalar, c_t))
                << "tier=" << simdTierName(tier) << " lower=" << lower
                << " threads=" << threads;
        }
    }
}

/** The tier knob must not leak into the retained scalar reference:
 *  the scalar tier itself reproduces scalarReferenceGemm exactly. */
TEST(SimdTierAnchor, ScalarTierMatchesScalarReference)
{
    const Shape s{27, 47, 29};
    Rng rng(0xbeef);
    const auto a = randomMatrix<fp::Half>(rng, s.m, s.k);
    const auto b = randomMatrix<fp::Half>(rng, s.k, s.n);
    const auto c = randomMatrix<fp::Half>(rng, s.m, s.n);

    for (const bool round_each_step : {false, true}) {
        Matrix<fp::Half> d_ref(s.m, s.n), d_scalar_tier(s.m, s.n);
        scalarReferenceGemm<fp::Half, fp::Half, float>(
            1.25, a, b, -0.5, c, d_ref, round_each_step);
        fastReferenceGemm<fp::Half, fp::Half, float>(
            1.25, a, b, -0.5, c, d_scalar_tier, round_each_step,
            tierOptions(SimdTier::Scalar, 1));
        EXPECT_TRUE(bitIdentical(d_ref, d_scalar_tier))
            << "round_each_step=" << round_each_step;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AvailableTiers, SimdTierTest,
    ::testing::ValuesIn(availableSimdTiers()),
    [](const ::testing::TestParamInfo<SimdTier> &info) {
        return std::string(simdTierName(info.param));
    });

} // namespace
} // namespace blas
} // namespace mc
