/**
 * @file
 * Tests of asynchronous streams and the merged (overlapping)
 * contribution power trace — the model of the paper's
 * one-process-per-GCD measurement setup.
 */

#include <gtest/gtest.h>

#include "hip/runtime.hh"
#include "smi/smi.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace hip {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

const arch::MfmaInstruction *
inst(const char *name)
{
    const auto *p = arch::findInstruction(arch::GpuArch::Cdna2, name);
    EXPECT_NE(p, nullptr);
    return p;
}

TEST(Stream, SameStreamSerializes)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    Stream stream(rt, 0);
    const auto profile = wmma::mfmaLoopProfile(
        *inst("v_mfma_f32_16x16x16_f16"), 1000000, 440);
    const auto r1 = stream.launch(profile);
    const auto r2 = stream.launch(profile);
    EXPECT_DOUBLE_EQ(r2.startSec, r1.endSec);
    EXPECT_DOUBLE_EQ(stream.synchronize(), r2.endSec);
}

TEST(Stream, DifferentDevicesOverlap)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    Stream s0(rt, 0), s1(rt, 1);
    const auto profile = wmma::mfmaLoopProfile(
        *inst("v_mfma_f32_16x16x16_f16"), 1000000, 440);
    const auto r0 = s0.launch(profile);
    const auto r1 = s1.launch(profile);
    // Both start at t = 0 on their own GCDs.
    EXPECT_DOUBLE_EQ(r0.startSec, 0.0);
    EXPECT_DOUBLE_EQ(r1.startSec, 0.0);
    EXPECT_NEAR(rt.asyncTailSec(), r0.endSec, 1e-12);
}

TEST(Stream, SameDeviceStreamsSerialize)
{
    // One GCD runs one kernel at a time even across streams.
    Runtime rt(arch::defaultCdna2(), quietOptions());
    Stream a(rt, 0), b(rt, 0);
    const auto profile = wmma::mfmaLoopProfile(
        *inst("v_mfma_f32_16x16x16_f16"), 100000, 440);
    const auto r1 = a.launch(profile);
    const auto r2 = b.launch(profile);
    EXPECT_DOUBLE_EQ(r2.startSec, r1.endSec);
}

TEST(Stream, OverlappedPowerSumsToEq3)
{
    // The paper's Fig. 5 method: one process per GCD, package power
    // sampled while both run. The merged trace must reproduce the
    // Eq. 3 package power for the combined throughput.
    Runtime rt(arch::defaultCdna2(), quietOptions());
    Stream s0(rt, 0), s1(rt, 1);
    const auto profile = wmma::mfmaLoopProfile(
        *inst("v_mfma_f32_16x16x16_f16"), 100000000, 440);
    const auto r0 = s0.launch(profile);
    const auto r1 = s1.launch(profile);

    const double mid = 0.5 * (r0.startSec + r0.endSec);
    const double combined_th =
        (r0.throughput() + r1.throughput()) / 1e12;
    const double expect = 0.61 * combined_th + 123.0;
    EXPECT_NEAR(rt.asyncTrace().wattsAt(mid), expect, 1.0);
}

TEST(Stream, SmiSamplerWorksOnAsyncTrace)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    Stream s0(rt, 0), s1(rt, 1);
    const auto profile = wmma::mfmaLoopProfile(
        *inst("v_mfma_f32_16x16x4_f32"), 6000000000ull, 440);
    const auto r0 = s0.launch(profile);
    s1.launch(profile);

    smi::PowerSensor sensor(rt.asyncTrace());
    smi::PowerSampler sampler(sensor, 0.1);
    const auto samples =
        sampler.sampleInterval(r0.startSec + 0.5, r0.endSec - 0.5);
    ASSERT_GE(samples.size(), 1000u);
    // 2 GCDs of float at ~43.6 TFLOPS each: Eq. 3 gives ~316 W.
    EXPECT_NEAR(smi::meanWatts(samples).value(), 2.18 * 87.2 + 125.5, 2.0);
}

TEST(Stream, PowerCapCheckFlagsDualFp64)
{
    // Two concurrently running FP64 GCDs exceed the regulation target;
    // the async path does not model the throttle but must report it.
    Runtime rt(arch::defaultCdna2(), quietOptions());
    Stream s0(rt, 0), s1(rt, 1);
    const auto profile = wmma::mfmaLoopProfile(
        *inst("v_mfma_f64_16x16x4_f64"), 1000000, 440);
    const auto r0 = s0.launch(profile);
    s1.launch(profile);
    EXPECT_FALSE(rt.asyncPowerOk(r0.startSec, r0.endSec));

    // A single GCD of FP64 stays within the target.
    Runtime rt2(arch::defaultCdna2(), quietOptions());
    Stream only(rt2, 0);
    const auto r = only.launch(profile);
    EXPECT_TRUE(rt2.asyncPowerOk(r.startSec, r.endSec));
}

TEST(ContributionTrace, OverlapArithmetic)
{
    sim::ContributionTrace trace(88.0);
    trace.addContribution(0.0, 10.0, 100.0);
    trace.addContribution(5.0, 15.0, 50.0);
    EXPECT_DOUBLE_EQ(trace.wattsAt(2.0), 188.0);
    EXPECT_DOUBLE_EQ(trace.wattsAt(7.0), 238.0);
    EXPECT_DOUBLE_EQ(trace.wattsAt(12.0), 138.0);
    EXPECT_DOUBLE_EQ(trace.wattsAt(20.0), 88.0);
    // Energy over [0, 15): idle 15*88 + 10*100 + 10*50.
    EXPECT_DOUBLE_EQ(trace.energyJoules(0.0, 15.0),
                     15 * 88.0 + 1000.0 + 500.0);
    EXPECT_DOUBLE_EQ(trace.maxWatts(0.0, 20.0), 238.0);
    EXPECT_DOUBLE_EQ(trace.endSec(), 15.0);
    EXPECT_EQ(trace.contributionCount(), 2u);
}

TEST(ContributionTraceDeathTest, InvalidContributions)
{
    sim::ContributionTrace trace(88.0);
    EXPECT_DEATH(trace.addContribution(2.0, 1.0, 10.0), "ends before");
    EXPECT_DEATH(trace.addContribution(0.0, 1.0, -5.0), "non-negative");
}

TEST(StreamDeathTest, InvalidDevice)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    EXPECT_DEATH(Stream(rt, 7), "out of range");
}

} // namespace
} // namespace hip
} // namespace mc
