/**
 * @file
 * Tests of the HIP-style runtime facade: device enumeration, memory
 * accounting (including the sweep-ending OOM), events, and launches.
 */

#include <gtest/gtest.h>

#include "hip/runtime.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace hip {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

TEST(Runtime, TwoGcdsVisibleAsTwoDevices)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    EXPECT_EQ(rt.deviceCount(), 2);
}

TEST(Runtime, PropertiesMatchCalibration)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    const DeviceProperties props = rt.properties(0);
    EXPECT_NE(props.name.find("MI250X"), std::string::npos);
    EXPECT_EQ(props.totalGlobalMem, 64ull << 30);
    EXPECT_EQ(props.multiProcessorCount, 110);
    EXPECT_EQ(props.warpSize, 64);
    EXPECT_EQ(props.matrixCores, 440);
    EXPECT_EQ(props.clockRateKhz, 1700000);
}

TEST(Runtime, AllocationAccounting)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    EXPECT_EQ(rt.allocatedBytes(0), 0u);
    auto buf = rt.malloc(0, 1024);
    ASSERT_TRUE(buf.isOk());
    EXPECT_EQ(rt.allocatedBytes(0), 1024u);
    EXPECT_EQ(rt.allocatedBytes(1), 0u); // devices are independent
    EXPECT_EQ(rt.bufferBytes(buf.value()), 1024u);
    rt.free(buf.value());
    EXPECT_EQ(rt.allocatedBytes(0), 0u);
}

TEST(Runtime, OutOfMemoryAtHbmCapacity)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    const std::size_t capacity = 64ull << 30;
    auto big = rt.malloc(0, capacity - 100);
    ASSERT_TRUE(big.isOk());
    auto too_much = rt.malloc(0, 200);
    EXPECT_FALSE(too_much.isOk());
    EXPECT_EQ(too_much.status().code(), ErrorCode::OutOfMemory);
    // The other device still has room.
    auto other = rt.malloc(1, 200);
    EXPECT_TRUE(other.isOk());
    rt.free(big.value());
    rt.free(other.value());
    // Freed capacity is reusable.
    auto again = rt.malloc(0, capacity);
    EXPECT_TRUE(again.isOk());
    rt.free(again.value());
}

TEST(Runtime, FreeBytesComplement)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    auto buf = rt.malloc(0, 1ull << 30);
    ASSERT_TRUE(buf.isOk());
    EXPECT_EQ(rt.freeBytes(0), (64ull << 30) - (1ull << 30));
    rt.free(buf.value());
}

TEST(Runtime, VirtualBuffersHaveNoHostBacking)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    auto virt = rt.malloc(0, 4096, /*materialize=*/false);
    ASSERT_TRUE(virt.isOk());
    EXPECT_EQ(rt.hostPtr(virt.value()), nullptr);

    auto real = rt.malloc(0, 4096, /*materialize=*/true);
    ASSERT_TRUE(real.isOk());
    std::byte *p = rt.hostPtr(real.value());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(static_cast<int>(p[0]), 0); // zero-initialized
    rt.free(virt.value());
    rt.free(real.value());
}

TEST(Runtime, DeviceBufferRaii)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    {
        DeviceBuffer<float> buf(rt, 0, 1000, /*materialize=*/true);
        EXPECT_EQ(buf.count(), 1000u);
        EXPECT_EQ(buf.bytes(), 4000u);
        EXPECT_EQ(rt.allocatedBytes(0), 4000u);
        buf.data()[999] = 2.5f;
        EXPECT_EQ(buf.data()[999], 2.5f);
    }
    EXPECT_EQ(rt.allocatedBytes(0), 0u); // destructor freed it
}

TEST(Runtime, DeviceBufferMoveTransfersOwnership)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    DeviceBuffer<double> a(rt, 0, 10);
    DeviceBuffer<double> b(std::move(a));
    EXPECT_EQ(b.count(), 10u);
    EXPECT_EQ(rt.allocatedBytes(0), 80u);
}

TEST(Runtime, EventsMeasureSimulatedTime)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);

    Event start, stop;
    rt.eventRecord(start);
    const sim::KernelResult r =
        rt.launch(wmma::mfmaLoopProfile(*inst, 1000000, 440), 0);
    rt.eventRecord(stop);
    EXPECT_NEAR(rt.eventElapsedMs(start, stop), r.seconds * 1e3, 1e-6);
}

TEST(Runtime, LaunchMultiUsesBothGcds)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);
    const auto profile = wmma::mfmaLoopProfile(*inst, 1000000, 440);
    const sim::KernelResult one = rt.launch(profile, 0);
    const sim::KernelResult both = rt.launchMulti(profile, {0, 1});
    EXPECT_EQ(both.activeGcds, 2);
    EXPECT_NEAR(both.throughput() / one.throughput(), 2.0, 0.02);
}

TEST(RuntimeDeathTest, InvalidHandles)
{
    Runtime rt(arch::defaultCdna2(), quietOptions());
    EXPECT_DEATH((void)rt.properties(5), "out of range");
    EXPECT_DEATH(rt.free(BufferId{999}), "unknown buffer");
    Event never;
    Event once;
    rt.eventRecord(once);
    EXPECT_DEATH((void)rt.eventElapsedMs(never, once),
                 "two recorded events");
}

} // namespace
} // namespace hip
} // namespace mc
