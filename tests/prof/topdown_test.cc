/**
 * @file
 * The lightweight top-down layer (prof/topdown.hh): classification
 * heuristics over synthetic hardware samples, the wallclock /
 * arithmetic-intensity fallback, and the RAII counter group measuring
 * real work on whatever backend this container exposes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "prof/topdown.hh"

namespace mc {
namespace prof {
namespace {

TopdownSample
hardwareSample(std::uint64_t cycles, std::uint64_t instructions,
               std::uint64_t refs, std::uint64_t misses)
{
    TopdownSample sample;
    sample.seconds = 0.01;
    sample.hardware = true;
    sample.cycles = cycles;
    sample.instructions = instructions;
    sample.cacheRefs = refs;
    sample.cacheMisses = misses;
    return sample;
}

TEST(TopdownClassify, HardwareHeuristics)
{
    // High IPC: the pipeline is retiring real work.
    EXPECT_EQ(classifySample(hardwareSample(1000, 2500, 100, 1), {}),
              TopdownClass::Retiring);
    // Low IPC with a hot miss ratio: starved by the memory hierarchy.
    EXPECT_EQ(classifySample(hardwareSample(1000, 500, 100, 20), {}),
              TopdownClass::BackendBound);
    // Moderate IPC, cold caches: still retiring.
    EXPECT_EQ(classifySample(hardwareSample(1000, 1500, 100, 1), {}),
              TopdownClass::Retiring);
    // Low IPC, caches fine: the frontend is not feeding the core.
    EXPECT_EQ(classifySample(hardwareSample(1000, 500, 100, 1), {}),
              TopdownClass::FrontendBound);
    // No cycles recorded => not a usable hardware sample; with no
    // hints either, the class is unknown.
    EXPECT_EQ(classifySample(hardwareSample(0, 0, 0, 0), {}),
              TopdownClass::Unknown);
}

TEST(TopdownClassify, WallclockFallback)
{
    TopdownSample sample;
    sample.seconds = 1.0;
    sample.hardware = false;

    // No hints: nothing to derive a class from.
    EXPECT_EQ(classifySample(sample, {}), TopdownClass::Unknown);

    TopdownHints hints;
    hints.peakFlopsPerSec = 10.0e9;
    hints.peakBytesPerSec = 10.0e9;

    // Near the bandwidth envelope: backend-bound.
    hints.flops = 1.0e9;
    hints.bytes = 8.0e9;
    EXPECT_EQ(classifySample(sample, hints), TopdownClass::BackendBound);

    // Near the compute envelope: retiring.
    hints.flops = 8.0e9;
    hints.bytes = 1.0e9;
    EXPECT_EQ(classifySample(sample, hints), TopdownClass::Retiring);

    // Far from both envelopes: a cache-blocked numeric kernel stalling
    // on something the two rates cannot see — call it backend.
    hints.flops = 1.0e9;
    hints.bytes = 1.0e9;
    EXPECT_EQ(classifySample(sample, hints), TopdownClass::BackendBound);
}

TEST(TopdownClassName, CoversEveryClass)
{
    EXPECT_STREQ(topdownClassName(TopdownClass::Unknown), "unknown");
    EXPECT_STREQ(topdownClassName(TopdownClass::FrontendBound),
                 "frontend");
    EXPECT_STREQ(topdownClassName(TopdownClass::BackendBound), "backend");
    EXPECT_STREQ(topdownClassName(TopdownClass::Retiring), "retiring");
}

TEST(TopdownCountersTest, MeasuresRealWork)
{
    TopdownCounters counters;
    volatile double sink = 0.0;
    const TopdownSample sample = counters.measure([&] {
        for (int i = 0; i < 2000000; ++i)
            sink = sink + 1.0e-9;
    });
    EXPECT_GT(sample.seconds, 0.0);
    // hardware samples only appear when the perf_event group opened.
    EXPECT_EQ(sample.hardware, counters.hardwareAvailable());
    if (sample.hardware) {
        EXPECT_GT(sample.cycles, 0u);
        EXPECT_GT(sample.instructions, 0u);
    }
}

TEST(TopdownCountersTest, BackendNameMatchesAvailability)
{
    TopdownCounters counters;
    const std::string name = topdownBackendName();
    EXPECT_TRUE(name == "perf_event" || name == "wallclock");
    EXPECT_EQ(name == "perf_event", counters.hardwareAvailable());
}

} // namespace
} // namespace prof
} // namespace mc
