/**
 * @file
 * Tests of the Eq. 1 FLOP derivation and the profiling session.
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "prof/profiler.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace prof {
namespace {

TEST(Eq1, MatrixCoreTermOnly)
{
    sim::HwCounters c;
    c.addMfmaOps(arch::DataType::F64, 512 * 100, 50);
    EXPECT_DOUBLE_EQ(totalFlops(c, arch::DataType::F64), 512.0 * 100);
}

TEST(Eq1, ValuTermsWeighted)
{
    sim::HwCounters c;
    c.addValu(arch::DataType::F64, sim::ValuOp::Add, 3);
    c.addValu(arch::DataType::F64, sim::ValuOp::Mul, 5);
    c.addValu(arch::DataType::F64, sim::ValuOp::Fma, 7);
    c.addValu(arch::DataType::F64, sim::ValuOp::Xfer, 100); // no FLOPs
    // 64*3 + 64*5 + 128*7.
    EXPECT_DOUBLE_EQ(totalFlops(c, arch::DataType::F64),
                     64.0 * 3 + 64.0 * 5 + 128.0 * 7);
}

TEST(Eq1, TypesAreIndependent)
{
    sim::HwCounters c;
    c.addMfmaOps(arch::DataType::F16, 512 * 10, 1);
    c.addValu(arch::DataType::F32, sim::ValuOp::Add, 2);
    EXPECT_DOUBLE_EQ(totalFlops(c, arch::DataType::F16), 5120.0);
    EXPECT_DOUBLE_EQ(totalFlops(c, arch::DataType::F32), 128.0);
    EXPECT_DOUBLE_EQ(totalFlopsAllTypes(c), 5120.0 + 128.0);
}

TEST(Eq1, GemmCountersReproduceAlgorithmicFlops)
{
    // The key property behind Fig. 9: for an N multiple of 16 with
    // alpha, beta not in {0, 1}, Eq. 1 over the GEMM's counters must
    // give exactly 2N^3 (Matrix Cores) + 3N^2 (SIMDs).
    const auto &cal = arch::defaultCdna2();
    for (blas::GemmCombo combo :
         {blas::GemmCombo::Dgemm, blas::GemmCombo::Sgemm,
          blas::GemmCombo::Hhs, blas::GemmCombo::Hss}) {
        for (std::size_t n : {32u, 128u, 1024u}) {
            blas::GemmConfig cfg;
            cfg.combo = combo;
            cfg.m = cfg.n = cfg.k = n;
            cfg.alpha = cfg.beta = 0.1;
            const blas::GemmPlan plan = blas::planGemm(cfg, cal);
            const auto split =
                flopBreakdown(plan.profile.expectedCounters());
            EXPECT_DOUBLE_EQ(split.matrixCoreFlops,
                             2.0 * n * n * n)
                << blas::comboInfo(combo).name << " N=" << n;
            EXPECT_DOUBLE_EQ(split.simdFlops, 3.0 * n * n)
                << blas::comboInfo(combo).name << " N=" << n;
        }
    }
}

TEST(Eq1, HgemmFlopsAllOnSimds)
{
    const auto &cal = arch::defaultCdna2();
    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Hgemm;
    cfg.m = cfg.n = cfg.k = 256;
    cfg.alpha = cfg.beta = 0.1;
    const blas::GemmPlan plan = blas::planGemm(cfg, cal);
    const auto split = flopBreakdown(plan.profile.expectedCounters());
    EXPECT_DOUBLE_EQ(split.matrixCoreFlops, 0.0);
    EXPECT_DOUBLE_EQ(split.simdFlops,
                     2.0 * 256 * 256 * 256 + 3.0 * 256 * 256);
}

TEST(FlopBreakdown, FractionFollowsFig8Model)
{
    // fraction = 2N^3 / (2N^3 + 3N^2) = 1 / (1 + 1.5/N).
    const auto &cal = arch::defaultCdna2();
    for (std::size_t n : {32u, 256u, 4096u}) {
        blas::GemmConfig cfg;
        cfg.combo = blas::GemmCombo::Sgemm;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;
        const blas::GemmPlan plan = blas::planGemm(cfg, cal);
        const auto split = flopBreakdown(plan.profile.expectedCounters());
        EXPECT_NEAR(split.matrixCoreFraction(),
                    1.0 / (1.0 + 1.5 / static_cast<double>(n)), 1e-12);
    }
}

TEST(FlopBreakdown, EmptyCountersGiveZeroFraction)
{
    const sim::HwCounters empty;
    EXPECT_EQ(flopBreakdown(empty).matrixCoreFraction(), 0.0);
    EXPECT_EQ(flopBreakdown(empty).total(), 0.0);
}

TEST(Profiler, RecordsKernelsByName)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    sim::Mi250x gpu(arch::defaultCdna2(), opts);
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);

    Profiler profiler;
    profiler.record(gpu.runOnGcd(
        wmma::mfmaLoopProfile(*inst, 1000, 4, "kernel_a")));
    profiler.record(gpu.runOnGcd(
        wmma::mfmaLoopProfile(*inst, 1000, 4, "kernel_b")));
    profiler.record(gpu.runOnGcd(
        wmma::mfmaLoopProfile(*inst, 1000, 4, "kernel_a")));

    EXPECT_EQ(profiler.records().size(), 3u);
    EXPECT_EQ(profiler.byName("kernel_a").size(), 2u);
    EXPECT_EQ(profiler.byName("kernel_b").size(), 1u);
    EXPECT_EQ(profiler.byName("missing").size(), 0u);

    const sim::HwCounters total = profiler.aggregate();
    EXPECT_EQ(total.mops(arch::DataType::F16),
              3u * 4u * 1000u * 8192u / 512u);

    profiler.clear();
    EXPECT_TRUE(profiler.records().empty());
}

} // namespace
} // namespace prof
} // namespace mc
