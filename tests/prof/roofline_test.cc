/**
 * @file
 * Tests of the roofline model: roof values from the calibration,
 * machine-balance arithmetic, and kernel classification.
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "prof/roofline.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace prof {
namespace {

TEST(Roofline, MatrixCoreRoofsMatchGcdPeaks)
{
    const RooflineModel model(arch::defaultCdna2());
    // 1024 FLOPS/CU/cycle x 110 CUs x 1.7 GHz = 191.5 TFLOPS (f16).
    EXPECT_NEAR(model.roof(arch::DataType::F16,
                           RoofKind::MatrixCore).flopsPerSec / 1e12,
                191.5, 0.2);
    EXPECT_NEAR(model.roof(arch::DataType::F64,
                           RoofKind::MatrixCore).flopsPerSec / 1e12,
                47.9, 0.1);
    EXPECT_NEAR(model.roof(arch::DataType::F32,
                           RoofKind::MatrixCore).flopsPerSec / 1e12,
                47.9, 0.1);
}

TEST(Roofline, SimdRoofs)
{
    const RooflineModel model(arch::defaultCdna2());
    // 440 SIMDs, one 64-thread VALU inst per 4 cycles, FMA = 2 ops:
    // 440 * 1.7e9 / 4 * 128 = 23.9 TFLOPS; f16 packs 2x.
    EXPECT_NEAR(model.roof(arch::DataType::F32,
                           RoofKind::Simd).flopsPerSec / 1e12,
                23.9, 0.1);
    EXPECT_NEAR(model.roof(arch::DataType::F16,
                           RoofKind::Simd).flopsPerSec / 1e12,
                47.9, 0.1);
}

TEST(Roofline, MachineBalance)
{
    const RooflineModel model(arch::defaultCdna2());
    EXPECT_NEAR(model.memoryBandwidth(), 1.6e12, 1.0);
    // f64 Matrix Core balance: 47.9e12 / 1.6e12 ~ 29.9 FLOP/byte.
    EXPECT_NEAR(model.machineBalance(arch::DataType::F64,
                                     RoofKind::MatrixCore), 29.9, 0.1);
}

TEST(Roofline, AttainableIsMinOfRoofs)
{
    const RooflineModel model(arch::defaultCdna2());
    const double low = model.attainable(arch::DataType::F64,
                                        RoofKind::MatrixCore, 1.0);
    EXPECT_NEAR(low, 1.6e12, 1.0); // bandwidth-limited
    const double high = model.attainable(arch::DataType::F64,
                                         RoofKind::MatrixCore, 1000.0);
    EXPECT_NEAR(high / 1e12, 47.9, 0.1); // compute-limited
}

TEST(Roofline, Mi100RoofsDifferAndLackNothingSupported)
{
    const RooflineModel model(arch::mi100Calibration());
    // 120 CUs at 1.502 GHz: f16 roof 184.6 TFLOPS.
    EXPECT_NEAR(model.roof(arch::DataType::F16,
                           RoofKind::MatrixCore).flopsPerSec / 1e12,
                184.6, 0.3);
    // BF16 is half rate on CDNA1.
    EXPECT_NEAR(model.roof(arch::DataType::BF16,
                           RoofKind::MatrixCore).flopsPerSec / 1e12,
                92.3, 0.3);
    // No FP64 Matrix Core roof exists on CDNA1.
    bool has_f64_mc = false;
    for (const auto &roof : model.roofs()) {
        if (roof.dtype == arch::DataType::F64 &&
            roof.kind == RoofKind::MatrixCore)
            has_f64_mc = true;
    }
    EXPECT_FALSE(has_f64_mc);
}

TEST(Roofline, ClassifyComputeBoundMicrobench)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    sim::Mi250x gpu(arch::defaultCdna2(), opts);
    const RooflineModel model(gpu.calibration());

    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);
    const auto profile = wmma::mfmaLoopProfile(*inst, 1000000, 440);
    const auto result = gpu.runOnGcd(profile);

    const RooflinePoint point = model.classify(profile, result);
    // A register-resident loop has effectively infinite intensity.
    EXPECT_FALSE(point.memoryBound);
    EXPECT_GT(point.intensity, 1e6);
    EXPECT_NEAR(point.attainable / 1e12, 191.5, 0.5);
    EXPECT_NEAR(point.efficiency(), 0.915, 0.01); // the Fig. 3 plateau
}

TEST(Roofline, ClassifyMemoryBoundGemm)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);
    const RooflineModel model(rt.gpu().calibration());

    // DGEMM at N=16384 sits in the dipped region: full L2 miss makes
    // it memory-bound (intensity below the 29.9 FLOP/byte balance).
    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Dgemm;
    cfg.m = cfg.n = cfg.k = 16384;
    cfg.alpha = cfg.beta = 0.1;
    const blas::GemmPlan plan = engine.plan(cfg);
    auto result = engine.run(cfg);
    ASSERT_TRUE(result.isOk());

    const RooflinePoint point =
        model.classify(plan.profile, result.value().kernel);
    EXPECT_TRUE(point.memoryBound);
    EXPECT_LT(point.intensity, 29.9);
    EXPECT_LT(point.achieved, point.attainable * 1.001);
}

TEST(Roofline, ClassifySimdKernelUsesSimdRoof)
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    hip::Runtime rt(arch::defaultCdna2(), opts);
    blas::GemmEngine engine(rt);
    const RooflineModel model(rt.gpu().calibration());

    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Hgemm;
    cfg.m = cfg.n = cfg.k = 4096;
    cfg.alpha = cfg.beta = 0.1;
    const blas::GemmPlan plan = engine.plan(cfg);
    auto result = engine.run(cfg);
    ASSERT_TRUE(result.isOk());

    const RooflinePoint point =
        model.classify(plan.profile, result.value().kernel);
    // HGEMM runs on the SIMDs: its attainable roof is the f16 SIMD
    // peak, not the Matrix Core peak.
    EXPECT_LE(point.attainable / 1e12, 47.9 + 0.1);
    EXPECT_FALSE(point.memoryBound);
}

TEST(RooflineDeathTest, MissingRoofIsFatal)
{
    const RooflineModel model(arch::mi100Calibration());
    EXPECT_EXIT((void)model.roof(arch::DataType::F64,
                                 RoofKind::MatrixCore),
                ::testing::ExitedWithCode(1), "no Matrix Core roof");
}

TEST(RooflineDeathTest, NegativeIntensityPanics)
{
    const RooflineModel model(arch::defaultCdna2());
    EXPECT_DEATH((void)model.attainable(arch::DataType::F32,
                                        RoofKind::MatrixCore, -1.0),
                 "negative arithmetic intensity");
}

TEST(Roofline, RoofNames)
{
    const RooflineModel model(arch::defaultCdna2());
    EXPECT_EQ(model.roof(arch::DataType::F16,
                         RoofKind::MatrixCore).name(),
              "f16 MatrixCore");
    EXPECT_EQ(model.roof(arch::DataType::F32, RoofKind::Simd).name(),
              "f32 SIMD");
}

} // namespace
} // namespace prof
} // namespace mc
