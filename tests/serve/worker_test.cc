/**
 * @file
 * Supervised worker execution: the degradation ladder end to end.
 *
 * These tests fork real child processes (SIGKILL, SIGSEGV, hangs), so
 * they live in their own binary under the "supervisor" label — the
 * same exclusion hatch as test_supervisor.
 */

#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "serve/engine.hh"
#include "serve/protocol.hh"
#include "serve/worker.hh"

namespace mc {
namespace serve {
namespace {

ServeRequest
parse(const std::string &json)
{
    auto parsed = parseRequest(json);
    EXPECT_TRUE(parsed.isOk()) << parsed.status().toString();
    return parsed.value();
}

WorkerOptions
fastOptions()
{
    WorkerOptions options;
    options.deadlineSec = 20.0;
    options.graceSec = 0.2;
    options.engine.allowChaos = true;
    return options;
}

// Linux wait-status encoding: exit code n is n << 8, death by signal s
// is s (low 7 bits). Cleaner than forking just to build a status word.
constexpr int
exitedWith(int code)
{
    return code << 8;
}

TEST(ClassifyWorkerExit, LadderMapping)
{
    // Watchdog beats every other signal — a SIGKILL the *watchdog*
    // sent is an overrun, not an outside kill.
    EXPECT_EQ(classifyWorkerExit(SIGKILL, true),
              ErrorCode::DeadlineExceeded);
    EXPECT_EQ(classifyWorkerExit(SIGTERM, true),
              ErrorCode::DeadlineExceeded);

    // An outside SIGKILL is retriable Unavailable here — not the suite
    // supervisor's ResourceExhausted (machine-wide OOM) reading.
    EXPECT_EQ(classifyWorkerExit(SIGKILL, false), ErrorCode::Unavailable);
    EXPECT_EQ(classifyWorkerExit(SIGTERM, false), ErrorCode::Unavailable);
    EXPECT_EQ(classifyWorkerExit(SIGINT, false), ErrorCode::Unavailable);
    EXPECT_EQ(classifyWorkerExit(SIGHUP, false), ErrorCode::Unavailable);

    // Crash signals.
    EXPECT_EQ(classifyWorkerExit(SIGSEGV, false), ErrorCode::Internal);
    EXPECT_EQ(classifyWorkerExit(SIGABRT, false), ErrorCode::Internal);

    // Exits follow the exit-code contract of docs/RESILIENCE.md.
    EXPECT_EQ(classifyWorkerExit(exitedWith(exit_code::Ok), false),
              ErrorCode::Ok);
    EXPECT_EQ(
        classifyWorkerExit(exitedWith(exit_code::BudgetExhausted), false),
        ErrorCode::ResourceExhausted);
    EXPECT_EQ(classifyWorkerExit(exitedWith(exit_code::Usage), false),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(classifyWorkerExit(exitedWith(exit_code::Failure), false),
              ErrorCode::Internal);
}

TEST(RunInWorker, MatchesInProcessExecutionByteForByte)
{
    // Worker placement must be invisible in the payload: the isolation
    // policy may move a request between the daemon process and a
    // worker without changing a single response byte.
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":64,"reps":2})");
    auto direct = executePayload(req, {});
    auto forked = runInWorker(req, fastOptions());
    ASSERT_TRUE(direct.isOk()) << direct.status().toString();
    ASSERT_TRUE(forked.isOk()) << forked.status().toString();
    EXPECT_EQ(direct.value().serialize(0), forked.value().serialize(0));
}

TEST(RunInWorker, ClassifiedErrorsCrossThePipeIntact)
{
    // executePayload's own verdicts (here: a chaos refusal, because the
    // child's engine options disable chaos) come back as the original
    // ErrorCode, not flattened into Internal.
    WorkerOptions options = fastOptions();
    options.engine.allowChaos = false;
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":32,"chaos":"segv"})");
    auto result = runInWorker(req, options);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::FailedPrecondition);
}

TEST(RunInWorker, Kill9DegradesToUnavailable)
{
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":32,"chaos":"kill9"})");
    auto result = runInWorker(req, fastOptions());
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::Unavailable);

    // Degraded responses replay byte-identically: deterministic
    // message, no pid or timing text.
    auto again = runInWorker(req, fastOptions());
    ASSERT_FALSE(again.isOk());
    EXPECT_EQ(result.status().toString(), again.status().toString());
}

TEST(RunInWorker, SegvDegradesToInternal)
{
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":32,"chaos":"segv"})");
    auto result = runInWorker(req, fastOptions());
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::Internal);
}

TEST(RunInWorker, Exit3DegradesToResourceExhausted)
{
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":32,"chaos":"exit3"})");
    auto result = runInWorker(req, fastOptions());
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::ResourceExhausted);
}

TEST(RunInWorker, HangTripsTheWatchdogAsDeadlineExceeded)
{
    WorkerOptions options = fastOptions();
    options.deadlineSec = 0.5;
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":32,"chaos":"hang"})");
    auto result = runInWorker(req, options);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), ErrorCode::DeadlineExceeded);
}

} // namespace
} // namespace serve
} // namespace mc
