/**
 * @file
 * Admission control: slot dispatch, FIFO promotion, deterministic
 * earliest-deadline shedding, tenant caps, and shutdown drain.
 *
 * The controller owns no threads, so these tests drive it fully
 * synchronously: the dispatcher collects wrapped tasks, and invoking a
 * collected task *is* the completion edge (the wrapper releases the
 * slot on return, which may dispatch the queue's head into the same
 * collection).
 */

#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/admission.hh"

namespace mc {
namespace serve {
namespace {

/** Synchronous harness: collected[i] is the i-th dispatched task. */
class AdmissionTest : public ::testing::Test
{
  protected:
    AdmissionController
    make(const AdmissionOptions &options)
    {
        return AdmissionController(
            options, [this](AdmissionController::Task task) {
                dispatched.push_back(std::move(task));
            });
    }

    /** Run the oldest dispatched task to completion. */
    void
    finishOne()
    {
        ASSERT_FALSE(dispatched.empty());
        auto task = std::move(dispatched.front());
        dispatched.pop_front();
        task();
    }

    /** submit() that records outcomes per label. */
    void
    submit(AdmissionController &ctrl, const std::string &label,
           double deadline_sec, const std::string &tenant = "default")
    {
        ctrl.submit(
            tenant, deadline_sec, [this, label] { ran.push_back(label); },
            [this, label](const Status &status) {
                rejected.push_back({label, status.code()});
            });
    }

    std::deque<AdmissionController::Task> dispatched;
    std::vector<std::string> ran;
    std::vector<std::pair<std::string, ErrorCode>> rejected;
};

TEST_F(AdmissionTest, DispatchesUpToSlotsThenQueuesFifo)
{
    AdmissionController ctrl = make({.slots = 2, .queueDepth = 8});
    submit(ctrl, "a", 10);
    submit(ctrl, "b", 10);
    submit(ctrl, "c", 10);
    submit(ctrl, "d", 10);
    EXPECT_EQ(dispatched.size(), 2u); // a, b running; c, d queued

    finishOne(); // a completes -> c promoted
    finishOne(); // b completes -> d promoted
    finishOne();
    finishOne();
    EXPECT_EQ(ran, (std::vector<std::string>{"a", "b", "c", "d"}));
    EXPECT_TRUE(rejected.empty());

    const AdmissionStats stats = ctrl.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.ranImmediately, 2u);
    EXPECT_EQ(stats.queued, 2u);
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.peakQueueDepth, 2u);
    EXPECT_EQ(stats.shed, 0u);
}

TEST_F(AdmissionTest, QueuePromotionIsFifoNotDeadlineOrder)
{
    // Deadlines decide who is *shed*, never who runs first: a tight-
    // deadline request must not jump the queue (that would make the
    // response order depend on other tenants' parameters).
    AdmissionController ctrl = make({.slots = 1, .queueDepth = 8});
    submit(ctrl, "running", 10);
    submit(ctrl, "relaxed", 100);
    submit(ctrl, "urgent", 1);
    finishOne();
    finishOne();
    finishOne();
    EXPECT_EQ(ran,
              (std::vector<std::string>{"running", "relaxed", "urgent"}));
}

TEST_F(AdmissionTest, ShedsEarliestDeadlineAmongQueueAndNewcomer)
{
    AdmissionController ctrl = make({.slots = 1, .queueDepth = 2});
    submit(ctrl, "running", 50);
    submit(ctrl, "q1", 30);
    submit(ctrl, "q2", 20);
    // Queue full. Newcomer with a *later* deadline than both queued
    // requests: q2 (earliest deadline) is shed, newcomer queued.
    submit(ctrl, "late", 40);
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_EQ(rejected[0].first, "q2");
    EXPECT_EQ(rejected[0].second, ErrorCode::ResourceExhausted);

    // Newcomer with the earliest deadline of all: it is shed itself.
    submit(ctrl, "doomed", 5);
    ASSERT_EQ(rejected.size(), 2u);
    EXPECT_EQ(rejected[1].first, "doomed");
    EXPECT_EQ(rejected[1].second, ErrorCode::ResourceExhausted);

    finishOne(); // running -> q1
    finishOne(); // q1 -> late
    finishOne();
    EXPECT_EQ(ran, (std::vector<std::string>{"running", "q1", "late"}));
    EXPECT_EQ(ctrl.stats().shed, 2u);
}

TEST_F(AdmissionTest, ShedTieBreaksOnArrivalOrder)
{
    AdmissionController ctrl = make({.slots = 1, .queueDepth = 2});
    submit(ctrl, "running", 50);
    submit(ctrl, "first", 10);
    submit(ctrl, "second", 10); // same deadline, younger
    submit(ctrl, "newcomer", 10);
    // All three tie on deadline: the *oldest* (first) is shed — the
    // policy is a pure function of (deadline, seq), and seq breaks the
    // tie deterministically.
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_EQ(rejected[0].first, "first");
}

TEST_F(AdmissionTest, ZeroQueueDepthShedsEveryOverflow)
{
    AdmissionController ctrl = make({.slots = 1, .queueDepth = 0});
    submit(ctrl, "running", 10);
    submit(ctrl, "overflow", 10);
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_EQ(rejected[0].first, "overflow");
    EXPECT_EQ(rejected[0].second, ErrorCode::ResourceExhausted);
}

TEST_F(AdmissionTest, TenantCapCountsRunningAndQueued)
{
    AdmissionController ctrl =
        make({.slots = 1, .queueDepth = 8, .tenantCap = 2});
    submit(ctrl, "a1", 10, "alice");
    submit(ctrl, "a2", 10, "alice");
    submit(ctrl, "a3", 10, "alice"); // over alice's cap
    submit(ctrl, "b1", 10, "bob");   // bob unaffected
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_EQ(rejected[0].first, "a3");
    EXPECT_EQ(rejected[0].second, ErrorCode::ResourceExhausted);
    EXPECT_EQ(ctrl.stats().tenantRejected, 1u);

    // Completion releases the tenant's budget.
    finishOne(); // a1 done -> a2 promoted
    submit(ctrl, "a4", 10, "alice");
    EXPECT_EQ(rejected.size(), 1u); // a4 admitted (a2 running, a4 queued)

    finishOne(); // a2
    finishOne(); // b1
    finishOne(); // a4
    EXPECT_EQ(ran,
              (std::vector<std::string>{"a1", "a2", "b1", "a4"}));
}

TEST_F(AdmissionTest, CloseCancelsQueuedAndRejectsNewSubmits)
{
    AdmissionController ctrl = make({.slots = 1, .queueDepth = 8});
    submit(ctrl, "running", 10);
    submit(ctrl, "queued1", 10);
    submit(ctrl, "queued2", 10);
    ctrl.close();

    ASSERT_EQ(rejected.size(), 2u);
    EXPECT_EQ(rejected[0].first, "queued1");
    EXPECT_EQ(rejected[0].second, ErrorCode::Unavailable);
    EXPECT_EQ(rejected[1].first, "queued2");
    EXPECT_EQ(rejected[1].second, ErrorCode::Unavailable);

    submit(ctrl, "late", 10);
    ASSERT_EQ(rejected.size(), 3u);
    EXPECT_EQ(rejected[2].first, "late");
    EXPECT_EQ(rejected[2].second, ErrorCode::Unavailable);

    // The running request still completes normally.
    finishOne();
    EXPECT_EQ(ran, (std::vector<std::string>{"running"}));
    EXPECT_EQ(ctrl.stats().cancelled, 2u);
}

TEST_F(AdmissionTest, StatsJsonCarriesEveryCounter)
{
    AdmissionController ctrl = make({.slots = 1, .queueDepth = 0});
    submit(ctrl, "a", 10);
    submit(ctrl, "b", 10); // shed
    finishOne();

    const JsonValue json = ctrl.statsJson();
    EXPECT_EQ(json.at("submitted").asNumber(), 2.0);
    EXPECT_EQ(json.at("ran_immediately").asNumber(), 1.0);
    EXPECT_EQ(json.at("shed").asNumber(), 1.0);
    EXPECT_EQ(json.at("completed").asNumber(), 1.0);
}

} // namespace
} // namespace serve
} // namespace mc
