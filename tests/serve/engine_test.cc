/**
 * @file
 * executePayload: the serving path's determinism contract, fault and
 * chaos policy, batch routing, and shared-plan-cache reuse.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "blas/plan_cache.hh"
#include "serve/engine.hh"
#include "serve/protocol.hh"

namespace mc {
namespace serve {
namespace {

ServeRequest
parse(const std::string &json)
{
    auto parsed = parseRequest(json);
    EXPECT_TRUE(parsed.isOk()) << parsed.status().toString();
    return parsed.value();
}

TEST(ExecutePayload, GemmPayloadCarriesRequestIdentity)
{
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":64,"reps":2})");
    auto result = executePayload(req, {});
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const JsonValue &payload = result.value();
    EXPECT_EQ(payload.at("kind").asString(), "gemm");
    EXPECT_EQ(payload.at("combo").asString(), "sgemm");
    EXPECT_EQ(payload.at("n").asInt(), 64);
    EXPECT_EQ(payload.at("batch").asInt(), 1);
    EXPECT_FALSE(payload.at("aborted").asBool());
    EXPECT_EQ(payload.at("samples").asInt(), 2);
    EXPECT_GT(payload.at("tflops").asNumber(), 0.0);
    EXPECT_TRUE(payload.has("path"));
}

TEST(ExecutePayload, QuantizedComboExecutes)
{
    // The quantized combo rides the same simulated-execution path as
    // the float combos and keeps the byte-identical replay contract.
    const char *doc = R"({"kind":"gemm","n":64,"combo":"i8gemm","reps":2})";
    auto first = executePayload(parse(doc), {});
    auto second = executePayload(parse(doc), {});
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    ASSERT_TRUE(second.isOk());
    EXPECT_EQ(first.value().at("combo").asString(), "i8gemm");
    EXPECT_GT(first.value().at("tflops").asNumber(), 0.0);
    EXPECT_EQ(first.value().serialize(0), second.value().serialize(0));
}

TEST(ExecutePayload, SameRequestIsByteIdentical)
{
    // The daemon's headline contract, at its root: the payload is a
    // pure function of the request. Replaying — with or without fault
    // injection — must produce the same serialized bytes.
    const char *documents[] = {
        R"({"kind":"gemm","n":64,"reps":3})",
        R"({"kind":"gemm","n":48,"reps":3,"inject":"ecc=0.05"})",
        R"({"kind":"sweep","n":32,"sweep_max_n":64,"reps":2})",
    };
    for (const char *doc : documents) {
        auto first = executePayload(parse(doc), {});
        auto second = executePayload(parse(doc), {});
        ASSERT_TRUE(first.isOk()) << doc;
        ASSERT_TRUE(second.isOk()) << doc;
        EXPECT_EQ(first.value().serialize(0),
                  second.value().serialize(0))
            << doc;
    }
}

TEST(ExecutePayload, RequestIdDoesNotAffectPayload)
{
    auto a = executePayload(
        parse(R"({"kind":"gemm","id":"a","n":64,"reps":2})"), {});
    auto b = executePayload(
        parse(R"({"kind":"gemm","id":"b","tenant":"t","n":64,"reps":2})"),
        {});
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(a.value().serialize(0), b.value().serialize(0));
}

TEST(ExecutePayload, BatchRoutesOntoStridedBatchedPath)
{
    const ServeRequest req =
        parse(R"({"kind":"gemm","n":32,"batch":4,"reps":2})");
    auto batched = executePayload(req, {});
    ASSERT_TRUE(batched.isOk()) << batched.status().toString();
    EXPECT_EQ(batched.value().at("batch").asInt(), 4);

    // The batch count is part of the execution, not bookkeeping: the
    // measured rate differs from the single-GEMM request's.
    auto single =
        executePayload(parse(R"({"kind":"gemm","n":32,"reps":2})"), {});
    ASSERT_TRUE(single.isOk());
    EXPECT_NE(batched.value().at("tflops").asNumber(),
              single.value().at("tflops").asNumber());
}

TEST(ExecutePayload, SweepDoublesUntilMaxN)
{
    const ServeRequest req =
        parse(R"({"kind":"sweep","n":16,"sweep_max_n":64,"reps":1})");
    auto result = executePayload(req, {});
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const JsonValue &points = result.value().at("points");
    ASSERT_EQ(points.size(), 3u); // 16, 32, 64
    EXPECT_EQ(points.at(std::size_t{0}).at("n").asInt(), 16);
    EXPECT_EQ(points.at(std::size_t{1}).at("n").asInt(), 32);
    EXPECT_EQ(points.at(std::size_t{2}).at("n").asInt(), 64);
}

TEST(ExecutePayload, ChaosWithoutOptInIsFailedPrecondition)
{
    // allowChaos = false is the in-process backstop: even if routing
    // put a chaos request here, it must refuse rather than crash the
    // calling process.
    for (const char *mode : {"kill9", "segv", "hang", "exit3"}) {
        const ServeRequest req = parse(
            std::string(R"({"kind":"gemm","n":32,"chaos":")") + mode +
            R"("})");
        auto result = executePayload(req, {});
        ASSERT_FALSE(result.isOk()) << mode;
        EXPECT_EQ(result.status().code(), ErrorCode::FailedPrecondition)
            << mode;
    }
}

TEST(ExecutePayload, SharedPlanCacheIsReusedAcrossRequests)
{
    EngineOptions options;
    options.planCache = std::make_shared<blas::PlanCache>();

    const ServeRequest req =
        parse(R"({"kind":"gemm","n":64,"reps":2})");
    auto first = executePayload(req, options);
    ASSERT_TRUE(first.isOk());
    const std::uint64_t misses_after_first = options.planCache->misses();
    EXPECT_GT(misses_after_first, 0u); // cold: plans were built

    auto second = executePayload(req, options);
    ASSERT_TRUE(second.isOk());
    EXPECT_EQ(options.planCache->misses(), misses_after_first)
        << "replay must hit the shared cache, not rebuild plans";
    EXPECT_GT(options.planCache->hits(), 0u);

    // And the cache is invisible in the payload bytes.
    auto cold = executePayload(req, {});
    ASSERT_TRUE(cold.isOk());
    EXPECT_EQ(cold.value().serialize(0), second.value().serialize(0));
}

} // namespace
} // namespace serve
} // namespace mc
