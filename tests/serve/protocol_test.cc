/**
 * @file
 * Wire protocol: framing over real fds, the parseRequest error
 * taxonomy, canonical keys, and response envelopes.
 */

#include <string>
#include <thread>

#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/protocol.hh"

namespace mc {
namespace serve {
namespace {

class FramePipe : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_EQ(::pipe(fds), 0);
    }

    void
    TearDown() override
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        if (fds[1] >= 0)
            ::close(fds[1]);
    }

    int fds[2] = {-1, -1};
};

TEST_F(FramePipe, RoundTripsPayloads)
{
    // The 70000-byte frame exceeds the default 64 KiB pipe buffer, so
    // it must be written from a second thread while this one reads —
    // which also proves readFrame reassembles partial reads.
    std::thread writer([this] {
        ASSERT_TRUE(writeFrame(fds[1], "hello").isOk());
        ASSERT_TRUE(writeFrame(fds[1], "").isOk());
        ASSERT_TRUE(writeFrame(fds[1], std::string(70000, 'x')).isOk());
    });

    auto first = readFrame(fds[0]);
    ASSERT_TRUE(first.isOk());
    EXPECT_EQ(*first.value(), "hello");
    auto second = readFrame(fds[0]);
    ASSERT_TRUE(second.isOk());
    EXPECT_EQ(*second.value(), "");
    auto third = readFrame(fds[0]);
    ASSERT_TRUE(third.isOk());
    EXPECT_EQ(third.value()->size(), 70000u);
    writer.join();
}

TEST_F(FramePipe, CleanEofAtFrameBoundaryIsNullopt)
{
    ASSERT_TRUE(writeFrame(fds[1], "only").isOk());
    ::close(fds[1]);
    fds[1] = -1;

    auto frame = readFrame(fds[0]);
    ASSERT_TRUE(frame.isOk());
    EXPECT_EQ(*frame.value(), "only");
    auto eof = readFrame(fds[0]);
    ASSERT_TRUE(eof.isOk());
    EXPECT_FALSE(eof.value().has_value());
}

TEST_F(FramePipe, EofInsideFrameIsUnavailable)
{
    // A length prefix promising 100 bytes, then the stream dies.
    const unsigned char prefix[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);
    ASSERT_EQ(::write(fds[1], "abc", 3), 3);
    ::close(fds[1]);
    fds[1] = -1;

    auto torn = readFrame(fds[0]);
    ASSERT_FALSE(torn.isOk());
    EXPECT_EQ(torn.status().code(), ErrorCode::Unavailable);
}

TEST_F(FramePipe, OversizedLengthIsInvalidArgument)
{
    const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::write(fds[1], prefix, 4), 4);

    auto oversized = readFrame(fds[0]);
    ASSERT_FALSE(oversized.isOk());
    EXPECT_EQ(oversized.status().code(), ErrorCode::InvalidArgument);
}

TEST(WriteFrame, OversizedPayloadIsInvalidArgument)
{
    const Status status =
        writeFrame(STDOUT_FILENO, std::string(kMaxFrameBytes + 1, 'x'));
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
}

// ---- parseRequest ---------------------------------------------------------

TEST(ParseRequest, AppliesDefaults)
{
    auto parsed = parseRequest(R"({"kind":"gemm","n":256})");
    ASSERT_TRUE(parsed.isOk());
    const ServeRequest &req = parsed.value();
    EXPECT_EQ(req.kind, RequestKind::Gemm);
    EXPECT_EQ(req.combo, blas::GemmCombo::Sgemm);
    EXPECT_EQ(req.m, 256u);
    EXPECT_EQ(req.n, 256u);
    EXPECT_EQ(req.k, 256u);
    EXPECT_EQ(req.batch, 1u);
    EXPECT_EQ(req.reps, 10);
    EXPECT_EQ(req.tenant, "default");
    EXPECT_DOUBLE_EQ(req.deadlineSec, 60.0);
    EXPECT_EQ(req.chaos, ChaosMode::None);
    EXPECT_FALSE(req.faults.any());
}

TEST(ParseRequest, ParsesFullRequest)
{
    auto parsed = parseRequest(
        R"({"kind":"gemm","id":"r1","tenant":"t0","combo":"hss",)"
        R"("m":64,"n":128,"k":32,"batch":8,"alpha":0.5,"beta":0.25,)"
        R"("reps":3,"deadline_sec":7.5,"inject":"oom=0.5",)"
        R"("chaos":"kill9"})");
    ASSERT_TRUE(parsed.isOk());
    const ServeRequest &req = parsed.value();
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.tenant, "t0");
    EXPECT_EQ(req.combo, blas::GemmCombo::Hss);
    EXPECT_EQ(req.m, 64u);
    EXPECT_EQ(req.n, 128u);
    EXPECT_EQ(req.k, 32u);
    EXPECT_EQ(req.batch, 8u);
    EXPECT_DOUBLE_EQ(req.alpha, 0.5);
    EXPECT_DOUBLE_EQ(req.beta, 0.25);
    EXPECT_EQ(req.reps, 3);
    EXPECT_DOUBLE_EQ(req.deadlineSec, 7.5);
    EXPECT_TRUE(req.faults.any());
    EXPECT_EQ(req.chaos, ChaosMode::Kill9);
}

TEST(ParseRequest, ParsesQuantizedCombo)
{
    // The quantized library combo is a legal wire name alongside the
    // paper's five float combos.
    auto parsed =
        parseRequest(R"({"kind":"gemm","n":96,"combo":"i8gemm"})");
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().combo, blas::GemmCombo::I8gemm);
}

TEST(ParseRequest, ErrorTaxonomy)
{
    // Not JSON / not an object / schema violations: InvalidArgument.
    EXPECT_EQ(parseRequest("{oops").status().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(parseRequest("[1,2]").status().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(parseRequest(R"({"kind":"gemm"})").status().code(),
              ErrorCode::InvalidArgument); // n missing
    EXPECT_EQ(parseRequest(R"({"kind":"gemm","n":0})").status().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(
        parseRequest(R"({"kind":"gemm","n":100000})").status().code(),
        ErrorCode::InvalidArgument); // above kMaxRequestN
    EXPECT_EQ(parseRequest(R"({"kind":"gemm","n":64,"reps":0})")
                  .status()
                  .code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(parseRequest(R"({"kind":"gemm","n":64,"combo":"zgemm"})")
                  .status()
                  .code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(
        parseRequest(R"({"kind":"gemm","n":64,"deadline_sec":0})")
            .status()
            .code(),
        ErrorCode::InvalidArgument);
    EXPECT_EQ(
        parseRequest(R"({"kind":"gemm","n":64,"inject":"bogus=1"})")
            .status()
            .code(),
        ErrorCode::InvalidArgument);
    EXPECT_EQ(parseRequest(R"({"kind":"gemm","n":64,"m":1.5})")
                  .status()
                  .code(),
              ErrorCode::InvalidArgument); // non-integer dimension

    // Unknown kind / chaos names: Unsupported.
    EXPECT_EQ(parseRequest(R"({"kind":"fft","n":64})").status().code(),
              ErrorCode::Unsupported);
    EXPECT_EQ(
        parseRequest(R"({"kind":"gemm","n":64,"chaos":"meteor"})")
            .status()
            .code(),
        ErrorCode::Unsupported);

    // Execution parameters on control requests are rejected, so a
    // typoed kind cannot silently drop a workload's parameters.
    EXPECT_EQ(parseRequest(R"({"kind":"ping","n":64})").status().code(),
              ErrorCode::InvalidArgument);
}

TEST(ParseRequest, SweepGridIsBounded)
{
    auto ok = parseRequest(
        R"({"kind":"sweep","n":16,"sweep_max_n":256})");
    ASSERT_TRUE(ok.isOk());
    EXPECT_EQ(ok.value().sweepMaxN, 256u);

    // The widest legal sweep (1 -> 16384, 15 doubling points) stays
    // under kMaxSweepPoints.
    EXPECT_TRUE(parseRequest(
                    R"({"kind":"sweep","n":1,"sweep_max_n":16384})")
                    .isOk());
    // A max below the start is out of range.
    EXPECT_EQ(parseRequest(
                  R"({"kind":"sweep","n":64,"sweep_max_n":32})")
                  .status()
                  .code(),
              ErrorCode::InvalidArgument);
    // sweep_max_n on a non-sweep request is a schema violation.
    EXPECT_EQ(parseRequest(
                  R"({"kind":"gemm","n":64,"sweep_max_n":128})")
                  .status()
                  .code(),
              ErrorCode::InvalidArgument);
}

// ---- canonicalKey ---------------------------------------------------------

TEST(CanonicalKey, IgnoresIdAndTenantOnly)
{
    auto a = parseRequest(
        R"({"kind":"gemm","id":"a","tenant":"t1","n":64})");
    auto b = parseRequest(
        R"({"kind":"gemm","id":"b","tenant":"t2","n":64})");
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(canonicalKey(a.value()), canonicalKey(b.value()));

    // Every result-affecting field must change the key.
    const char *variants[] = {
        R"({"kind":"gemm","n":65})",
        R"({"kind":"gemm","n":64,"m":65})",
        R"({"kind":"gemm","n":64,"k":65})",
        R"({"kind":"gemm","n":64,"combo":"dgemm"})",
        R"({"kind":"gemm","n":64,"combo":"i8gemm"})",
        R"({"kind":"gemm","n":64,"batch":2})",
        R"({"kind":"gemm","n":64,"alpha":2.0})",
        R"({"kind":"gemm","n":64,"beta":1.0})",
        R"({"kind":"gemm","n":64,"reps":11})",
        R"({"kind":"gemm","n":64,"deadline_sec":61})",
        R"({"kind":"gemm","n":64,"inject":"oom=0.5"})",
        R"({"kind":"gemm","n":64,"chaos":"segv"})",
        R"({"kind":"sweep","n":64,"sweep_max_n":128})",
    };
    const std::string base = canonicalKey(a.value());
    for (const char *variant : variants) {
        auto parsed = parseRequest(variant);
        ASSERT_TRUE(parsed.isOk()) << variant;
        EXPECT_NE(canonicalKey(parsed.value()), base) << variant;
    }
}

TEST(CanonicalKey, CanonicalizesInjectSpellings)
{
    // "oom=0.5,hang=0" and "oom=0.5" are the same injection.
    auto a = parseRequest(
        R"({"kind":"gemm","n":64,"inject":"oom=0.5,hang=0"})");
    auto b =
        parseRequest(R"({"kind":"gemm","n":64,"inject":"oom=0.5"})");
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(canonicalKey(a.value()), canonicalKey(b.value()));
}

// ---- Responses ------------------------------------------------------------

TEST(Responses, OkEnvelopeRoundTrips)
{
    JsonValue payload = JsonValue::object();
    payload.set("tflops", 12.5);
    const std::string frame = okResponse("req-7", payload);
    // Compact: envelopes are one line, deterministic.
    EXPECT_EQ(frame.find('\n'), std::string::npos);

    auto parsed = parseResponse(frame);
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().id, "req-7");
    EXPECT_EQ(parsed.value().code, ErrorCode::Ok);
    EXPECT_DOUBLE_EQ(parsed.value().payload.at("tflops").asNumber(),
                     12.5);
}

TEST(Responses, ErrorEnvelopeRoundTrips)
{
    const std::string frame =
        errorResponse("req-9", Status::deadlineExceeded("too slow"));
    auto parsed = parseResponse(frame);
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value().id, "req-9");
    EXPECT_EQ(parsed.value().code, ErrorCode::DeadlineExceeded);
    EXPECT_EQ(parsed.value().error, "too slow");
}

TEST(Responses, MalformedEnvelopeIsInternal)
{
    EXPECT_EQ(parseResponse("{}").status().code(), ErrorCode::Internal);
    EXPECT_EQ(parseResponse("not json").status().code(),
              ErrorCode::Internal);
    EXPECT_EQ(
        parseResponse(R"({"id":"x","code":"NoSuchCode"})").status().code(),
        ErrorCode::Internal);
    // An Ok code without a payload is a torn result.
    EXPECT_EQ(parseResponse(R"({"id":"x","code":"Ok"})").status().code(),
              ErrorCode::Internal);
}

} // namespace
} // namespace serve
} // namespace mc
