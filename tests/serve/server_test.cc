/**
 * @file
 * The daemon end to end over a Unix socket: control requests, request
 * routing, coalescing, deterministic shedding, chaos isolation, and
 * graceful shutdown. The in-process twin of cmake/ServeChaos.cmake.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/protocol.hh"
#include "serve/server.hh"

namespace mc {
namespace serve {
namespace {

std::string
socketPathFor(const char *tag)
{
    // sun_path is ~108 bytes; a short /tmp name keeps well clear of it.
    return "/tmp/mc_serve_test_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

class ClientFd
{
  public:
    explicit ClientFd(const std::string &path)
    {
        _fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(_fd);
            _fd = -1;
        }
    }
    ~ClientFd()
    {
        if (_fd >= 0)
            ::close(_fd);
    }

    bool ok() const { return _fd >= 0; }

    void
    send(const std::string &request)
    {
        ASSERT_TRUE(writeFrame(_fd, request).isOk());
    }

    /** Read one response envelope (fails the test on EOF/garbage). */
    ServeResponse
    read()
    {
        auto frame = readFrame(_fd);
        EXPECT_TRUE(frame.isOk()) << frame.status().toString();
        EXPECT_TRUE(frame.isOk() && frame.value().has_value());
        if (!frame.isOk() || !frame.value().has_value())
            return {};
        auto parsed = parseResponse(*frame.value());
        EXPECT_TRUE(parsed.isOk()) << *frame.value();
        return parsed.isOk() ? parsed.value() : ServeResponse{};
    }

    /** The raw response frame bytes (byte-identity checks). */
    std::string
    readRaw()
    {
        auto frame = readFrame(_fd);
        EXPECT_TRUE(frame.isOk() && frame.value().has_value());
        return frame.isOk() && frame.value().has_value()
                   ? *frame.value()
                   : std::string();
    }

  private:
    int _fd = -1;
};

std::unique_ptr<Server>
startServer(const std::string &path, ServerOptions options = {})
{
    options.socketPath = path;
    auto server = std::make_unique<Server>(std::move(options));
    Status started = server->start();
    EXPECT_TRUE(started.isOk()) << started.toString();
    return server;
}

TEST(ServeServer, PingStatsAndInvalidFramesAnswerInline)
{
    const std::string path = socketPathFor("ping");
    auto server = startServer(path);
    ClientFd client(path);
    ASSERT_TRUE(client.ok());

    client.send(R"({"kind":"ping","id":"p1"})");
    ServeResponse pong = client.read();
    EXPECT_EQ(pong.id, "p1");
    EXPECT_EQ(pong.code, ErrorCode::Ok);
    EXPECT_TRUE(pong.payload.at("pong").asBool());

    // A malformed request answers with a classified error and keeps
    // the connection serving — one bad frame must not cost the stream.
    client.send(R"({"kind":"gemm","id":"bad"})"); // n missing
    ServeResponse error = client.read();
    EXPECT_EQ(error.id, "bad"); // best-effort id from the broken frame
    EXPECT_EQ(error.code, ErrorCode::InvalidArgument);

    client.send(R"({"kind":"stats","id":"s1"})");
    ServeResponse stats = client.read();
    EXPECT_EQ(stats.code, ErrorCode::Ok);
    EXPECT_TRUE(stats.payload.has("admission"));
    EXPECT_TRUE(stats.payload.has("plan_cache"));
    EXPECT_TRUE(stats.payload.has("runs"));

    server->stop();
}

TEST(ServeServer, GemmRepliesByteIdenticallyAcrossConnections)
{
    const std::string path = socketPathFor("gemm");
    auto server = startServer(path);

    const std::string request =
        R"({"kind":"gemm","id":"g1","n":64,"reps":2})";
    std::string first;
    {
        ClientFd client(path);
        ASSERT_TRUE(client.ok());
        client.send(request);
        first = client.readRaw();
        ASSERT_FALSE(first.empty());
    }
    {
        ClientFd client(path);
        ASSERT_TRUE(client.ok());
        client.send(request);
        EXPECT_EQ(client.readRaw(), first)
            << "same request, same bytes — across connections and "
               "cache temperature";
    }
    server->stop();
}

TEST(ServeServer, PipelinedBurstCoalescesAndShedsDeterministically)
{
    const std::string path = socketPathFor("burst");
    ServerOptions options;
    options.admission.slots = 1;
    options.admission.queueDepth = 1;
    options.allowChaos = true; // "slow" below is a chaos hang
    options.workerDeadlineSec = 0.5;
    options.workerGraceSec = 0.1;
    auto server = startServer(path, options);

    ClientFd client(path);
    ASSERT_TRUE(client.ok());
    // One pipelined burst, handled in frame order by one reader:
    //  slow   -> a hung worker occupies the only slot until the 0.5 s
    //            watchdog fires (the simulated GEMMs finish in
    //            microseconds of wall clock, so only a hang holds the
    //            slot long enough to observe the queue machinery);
    //  keep   -> queued (depth 1);
    //  keep'  -> identical key: coalesces onto keep's flight;
    //  doomed -> queue full, earliest deadline of {keep: 50, doomed: 1}
    //            -> doomed is shed (ResourceExhausted), synchronously.
    client.send(
        R"({"kind":"gemm","id":"slow","n":32,"chaos":"hang","deadline_sec":100})");
    client.send(
        R"({"kind":"gemm","id":"keep","n":48,"reps":2,"deadline_sec":50})");
    client.send(
        R"({"kind":"gemm","id":"keep2","n":48,"reps":2,"deadline_sec":50})");
    client.send(
        R"({"kind":"gemm","id":"doomed","n":32,"reps":2,"deadline_sec":1})");

    std::vector<ServeResponse> responses;
    for (int i = 0; i < 4; ++i)
        responses.push_back(client.read());

    const ServeResponse *slow = nullptr, *keep = nullptr,
                        *keep2 = nullptr, *doomed = nullptr;
    for (const ServeResponse &r : responses) {
        if (r.id == "slow")
            slow = &r;
        else if (r.id == "keep")
            keep = &r;
        else if (r.id == "keep2")
            keep2 = &r;
        else if (r.id == "doomed")
            doomed = &r;
    }
    ASSERT_TRUE(slow && keep && keep2 && doomed);
    EXPECT_EQ(slow->code, ErrorCode::DeadlineExceeded);
    EXPECT_EQ(keep->code, ErrorCode::Ok);
    EXPECT_EQ(keep2->code, ErrorCode::Ok);
    EXPECT_EQ(doomed->code, ErrorCode::ResourceExhausted);
    // Coalesced waiters get byte-identical payloads.
    EXPECT_EQ(keep->payload.serialize(0), keep2->payload.serialize(0));

    client.send(R"({"kind":"stats","id":"s"})");
    ServeResponse stats = client.read();
    EXPECT_EQ(
        stats.payload.at("runs").at("coalesced").asInt(), 1);
    EXPECT_EQ(stats.payload.at("runs").at("in_process").asInt(), 1);
    EXPECT_EQ(stats.payload.at("runs").at("worker").asInt(), 1);
    EXPECT_EQ(
        stats.payload.at("admission").at("shed").asInt(), 1);

    server->stop();
}

TEST(ServeServer, ChaosIsRefusedWithoutOptIn)
{
    const std::string path = socketPathFor("nochaos");
    auto server = startServer(path); // allowChaos defaults to false
    ClientFd client(path);
    ASSERT_TRUE(client.ok());

    client.send(R"({"kind":"gemm","id":"c1","n":32,"chaos":"kill9"})");
    ServeResponse refused = client.read();
    EXPECT_EQ(refused.code, ErrorCode::FailedPrecondition);
    server->stop();
}

TEST(ServeServer, SurvivesChaosWorkersAndKeepsServing)
{
    const std::string path = socketPathFor("chaos");
    ServerOptions options;
    options.allowChaos = true;
    options.workerGraceSec = 0.2;
    auto server = startServer(path, options);
    ClientFd client(path);
    ASSERT_TRUE(client.ok());

    // The degradation ladder over the wire: each chaos mode degrades
    // *that request* to its documented code...
    client.send(R"({"kind":"gemm","id":"k","n":32,"chaos":"kill9"})");
    EXPECT_EQ(client.read().code, ErrorCode::Unavailable);
    client.send(R"({"kind":"gemm","id":"s","n":32,"chaos":"segv"})");
    EXPECT_EQ(client.read().code, ErrorCode::Internal);
    client.send(R"({"kind":"gemm","id":"e","n":32,"chaos":"exit3"})");
    EXPECT_EQ(client.read().code, ErrorCode::ResourceExhausted);

    // ...and the daemon itself never notices: same connection, still
    // answering, still able to run real work.
    client.send(R"({"kind":"gemm","id":"g","n":48,"reps":2})");
    ServeResponse after = client.read();
    EXPECT_EQ(after.code, ErrorCode::Ok);
    EXPECT_GT(after.payload.at("tflops").asNumber(), 0.0);

    client.send(R"({"kind":"stats","id":"st"})");
    EXPECT_EQ(client.read()
                  .payload.at("runs")
                  .at("worker")
                  .asInt(),
              3);
    server->stop();
}

TEST(ServeServer, FaultedRequestsRouteToWorkersByDefault)
{
    const std::string path = socketPathFor("routing");
    auto server = startServer(path); // Isolation::Faulted
    ClientFd client(path);
    ASSERT_TRUE(client.ok());

    client.send(
        R"({"kind":"gemm","id":"f","n":48,"reps":2,"inject":"ecc=0.05"})");
    EXPECT_EQ(client.read().code, ErrorCode::Ok);
    client.send(R"({"kind":"gemm","id":"p","n":48,"reps":2})");
    EXPECT_EQ(client.read().code, ErrorCode::Ok);

    client.send(R"({"kind":"stats","id":"s"})");
    ServeResponse stats = client.read();
    EXPECT_EQ(stats.payload.at("runs").at("worker").asInt(), 1);
    EXPECT_EQ(stats.payload.at("runs").at("in_process").asInt(), 1);
    server->stop();
}

TEST(ServeServer, ShutdownRequestDrainsGracefully)
{
    const std::string path = socketPathFor("shutdown");
    auto server = startServer(path);
    ClientFd client(path);
    ASSERT_TRUE(client.ok());

    client.send(R"({"kind":"shutdown","id":"bye"})");
    ServeResponse bye = client.read();
    EXPECT_EQ(bye.code, ErrorCode::Ok);
    EXPECT_TRUE(bye.payload.at("stopping").asBool());
    EXPECT_TRUE(server->shutdownRequested());

    server->stop();
    EXPECT_FALSE(ClientFd(path).ok()) << "socket must be gone";
}

TEST(ServeServer, WritesReadyFileOnceListening)
{
    const std::string path = socketPathFor("ready");
    const std::string ready = path + ".ready";
    ServerOptions options;
    options.readyFile = ready;
    auto server = startServer(path, options);

    std::FILE *f = std::fopen(ready.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[256] = {0};
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    std::fclose(f);
    EXPECT_EQ(std::string(line), path + "\n");

    server->stop();
    ::unlink(ready.c_str());
}

} // namespace
} // namespace serve
} // namespace mc
