/**
 * @file
 * Tests of the software IEEE 754 binary16 implementation, including an
 * exhaustive round-trip over all 65536 bit patterns and known
 * round-to-nearest-even vectors.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/random.hh"
#include "fp/half.hh"

namespace mc {
namespace fp {
namespace {

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(Half(0.0f).bits(), 0x0000);
    EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Half(-1.0f).bits(), 0xbc00);
    EXPECT_EQ(Half(2.0f).bits(), 0x4000);
    EXPECT_EQ(Half(0.5f).bits(), 0x3800);
    EXPECT_EQ(Half(65504.0f).bits(), 0x7bff); // max finite
    EXPECT_EQ(Half(0.099975586f).bits(), 0x2e66); // ~0.1 in half
}

TEST(Half, NamedConstants)
{
    EXPECT_EQ(Half::one().bits(), 0x3c00);
    EXPECT_EQ(Half::infinity().bits(), 0x7c00);
    EXPECT_EQ(Half::maxFinite().toFloat(), 65504.0f);
    EXPECT_EQ(Half::minNormal().toFloat(), 6.103515625e-05f); // 2^-14
    EXPECT_EQ(Half::minSubnormal().toFloat(), 5.9604644775390625e-08f);
}

TEST(Half, OverflowGoesToInfinity)
{
    EXPECT_TRUE(Half(65520.0f).isInf()); // rounds up past max finite
    EXPECT_TRUE(Half(1e6f).isInf());
    EXPECT_TRUE(Half(-1e6f).isInf());
    EXPECT_TRUE(Half(-1e6f).signBit());
    // 65519 rounds down to 65504 (max finite), not infinity.
    EXPECT_EQ(Half(65519.0f).bits(), 0x7bff);
}

TEST(Half, UnderflowGoesToZero)
{
    // Below half of the smallest subnormal (2^-25).
    EXPECT_TRUE(Half(1e-9f).isZero());
    EXPECT_TRUE(Half(-1e-9f).isZero());
    EXPECT_TRUE(Half(-1e-9f).signBit());
}

TEST(Half, SubnormalsRepresented)
{
    const Half tiny(6.0e-8f); // near 2^-24
    EXPECT_TRUE(tiny.isSubnormal());
    EXPECT_EQ(tiny.bits(), 0x0001);

    const Half mid(3.0e-5f); // below min normal 6.1e-5
    EXPECT_TRUE(mid.isSubnormal());
    EXPECT_NEAR(mid.toFloat(), 3.0e-5f, 6e-8f);
}

TEST(Half, RoundToNearestEvenTiesToEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 (even) and 1 + 2^-10:
    // RNE keeps the even 1.0.
    EXPECT_EQ(Half(1.0f + 0x1.0p-11f).bits(), 0x3c00);
    // 1 + 3*2^-11 is halfway between 1+2^-10 (odd lsb) and 1+2^-9:
    // RNE rounds up to the even pattern.
    EXPECT_EQ(Half(1.0f + 3 * 0x1.0p-11f).bits(), 0x3c02);
    // Slightly above the tie rounds up.
    EXPECT_EQ(Half(1.0f + 0x1.0p-11f + 0x1.0p-20f).bits(), 0x3c01);
}

TEST(Half, NanPropagation)
{
    const Half nan(std::nanf(""));
    EXPECT_TRUE(nan.isNan());
    EXPECT_FALSE(nan.isInf());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    EXPECT_TRUE(Half::quietNan().isNan());
}

TEST(Half, InfinityConversion)
{
    const Half inf(INFINITY);
    EXPECT_TRUE(inf.isInf());
    EXPECT_FALSE(inf.isNan());
    EXPECT_EQ(inf.toFloat(), INFINITY);
    EXPECT_EQ(Half(-INFINITY).toFloat(), -INFINITY);
}

TEST(Half, ExhaustiveRoundTripAllPatterns)
{
    // Every binary16 value is exactly representable in binary32, so
    // bits -> float -> bits must be the identity for every non-NaN
    // pattern, and NaNs must stay NaNs.
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const Half h = Half::fromBits(static_cast<std::uint16_t>(b));
        const Half back(h.toFloat());
        if (h.isNan()) {
            EXPECT_TRUE(back.isNan()) << "pattern " << h.toString();
        } else {
            EXPECT_EQ(back.bits(), h.bits()) << "pattern " << h.toString();
        }
    }
}

TEST(Half, ConversionMatchesRintOfScaledValues)
{
    // Property: for random floats in the normal half range, conversion
    // error is at most half a ulp.
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
        const float x =
            static_cast<float>(rng.uniform(-60000.0, 60000.0));
        const Half h(x);
        const float back = h.toFloat();
        const float ulp = std::max(std::fabs(x) * 0x1.0p-10f, 0x1.0p-24f);
        EXPECT_LE(std::fabs(back - x), 0.5f * ulp + 1e-12f)
            << "x=" << x << " half=" << h.toString();
    }
}

TEST(Half, ArithmeticRoundsPerOperation)
{
    const Half a(1.0f), b(0x1.0p-11f);
    // 1 + 2^-11 rounds back to 1 in half precision: an FP16 FMA chain
    // loses tiny addends, which is exactly why HGEMM accuracy suffers.
    EXPECT_EQ((a + b).bits(), Half(1.0f).bits());

    EXPECT_EQ((Half(3.0f) * Half(4.0f)).toFloat(), 12.0f);
    EXPECT_EQ((Half(10.0f) / Half(4.0f)).toFloat(), 2.5f);
    EXPECT_EQ((Half(5.0f) - Half(2.0f)).toFloat(), 3.0f);
}

TEST(Half, NegationFlipsSignBitOnly)
{
    const Half h(1.5f);
    EXPECT_EQ((-h).bits(), h.bits() ^ 0x8000u);
    EXPECT_TRUE((-Half::quietNan()).isNan());
}

TEST(Half, ComparisonSemantics)
{
    EXPECT_TRUE(Half(1.0f) == Half(1.0f));
    EXPECT_FALSE(Half(1.0f) == Half(2.0f));
    EXPECT_TRUE(Half(0.0f) == Half(-0.0f)); // signed zeros compare equal
    EXPECT_FALSE(Half::quietNan() == Half::quietNan());
    EXPECT_TRUE(Half::quietNan() != Half::quietNan());
    EXPECT_TRUE(Half(1.0f) < Half(2.0f));
    EXPECT_TRUE(Half(2.0f) >= Half(2.0f));
}

TEST(Half, DoubleConstructorGoesThroughFloat)
{
    EXPECT_EQ(Half(1.0).bits(), 0x3c00);
    EXPECT_EQ(Half(0.1).bits(), Half(0.1f).bits());
}

TEST(Half, ToStringIsHex)
{
    EXPECT_EQ(Half(1.0f).toString(), "0x3c00");
    EXPECT_EQ(Half::fromBits(0xdead).toString(), "0xdead");
}

} // namespace
} // namespace fp
} // namespace mc
