/**
 * @file
 * Exhaustive bit-exactness of the vectorized Half/BFloat16 <-> f32
 * conversions, for every SIMD tier this host can run.
 *
 * The semantic anchor is the software arithmetic in fp/half.hh and
 * fp/bfloat16.hh: widening must reproduce Half::fromBits(h).toFloat()
 * for all 65536 bit patterns, and narrowing must reproduce
 * Half(f).bits() — RNE ties, subnormals, infinities, NaN quieting and
 * payload truncation included. Comparisons are on raw bit patterns, so
 * NaN payloads and signed zeros count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "blas/simd_dispatch.hh"
#include "blas/simd_kernels.hh"
#include "common/random.hh"
#include "fp/bfloat16.hh"
#include "fp/convert.hh"
#include "fp/half.hh"

namespace mc {
namespace blas {
namespace {

std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsToFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

std::vector<std::uint16_t>
allU16Patterns()
{
    std::vector<std::uint16_t> v(1u << 16);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<std::uint16_t>(i);
    return v;
}

/** f32 bit patterns that sit on every rounding boundary the narrowing
 *  kernels special-case: zeros, subnormal thresholds, RNE ties,
 *  overflow-to-inf, and NaN payloads (quiet and signalling). */
std::vector<std::uint32_t>
boundaryF32Patterns()
{
    std::vector<std::uint32_t> v = {
        0x00000000u, 0x80000000u, // +/- 0
        0x00000001u, 0x80000001u, // f32 subnormals
        0x007fffffu,              // largest f32 subnormal
        0x00800000u,              // smallest f32 normal
        0x33000000u, 0x33000001u, // around Half::minSubnormal / 2
        0x337fffffu, 0x33800000u, 0x33800001u,
        0x38000000u,              // 2^-15 (half subnormal range)
        0x387fc000u, 0x387fe000u, 0x387fffffu,
        0x38800000u,              // Half::minNormal
        0x38801000u, 0x38802000u, 0x38803000u, // RNE ties near minNormal
        0x3f800000u, 0x3f801000u, 0x3f802000u, 0x3f803000u, // 1.0 + ties
        0x477fe000u, 0x477fefffu, 0x477ff000u, // 65504 / overflow edge
        0x477fffffu, 0x47800000u,              // just past maxFinite
        0x7f7fffffu,                           // f32 maxFinite
        0x7f800000u, 0xff800000u,              // +/- inf
        0x7f800001u, 0xff800001u,              // signalling NaNs
        0x7fc00000u, 0xffc00000u,              // quiet NaNs
        0x7fffffffu, 0x7f812345u,              // NaN payloads
        // BF16 rounding edges: tie at bit 15 and the bf16 overflow rim.
        0x3f808000u, 0x3f818000u, 0x3f80ffffu,
        0x7f7f8000u, 0x7f7fffffu,
    };
    // Both signs of every positive pattern above.
    const std::size_t n = v.size();
    for (std::size_t i = 0; i < n; ++i)
        if ((v[i] & 0x80000000u) == 0)
            v.push_back(v[i] | 0x80000000u);
    return v;
}

class SimdConvertTest : public ::testing::TestWithParam<SimdTier>
{
protected:
    const SimdKernels &ker() const { return simdKernels(GetParam()); }
};

TEST_P(SimdConvertTest, WidenHalfAllPatterns)
{
    const std::vector<std::uint16_t> in = allU16Patterns();
    std::vector<float> out(in.size());
    ker().widenHalfToF32(in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const float want = fp::Half::fromBits(in[i]).toFloat();
        ASSERT_EQ(floatBits(out[i]), floatBits(want))
            << "h=0x" << std::hex << in[i];
    }
}

TEST_P(SimdConvertTest, WidenBf16AllPatterns)
{
    const std::vector<std::uint16_t> in = allU16Patterns();
    std::vector<float> out(in.size());
    ker().widenBf16ToF32(in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const float want = fp::BFloat16::fromBits(in[i]).toFloat();
        ASSERT_EQ(floatBits(out[i]), floatBits(want))
            << "b=0x" << std::hex << in[i];
    }
}

TEST_P(SimdConvertTest, NarrowHalfRoundTripsAllHalfValues)
{
    // Every f32 that is exactly a binary16 value must narrow back to
    // the bits it came from (NaNs keep quieting + payload truncation,
    // which Half(float) also applies, so compare against that).
    const std::vector<std::uint16_t> patterns = allU16Patterns();
    std::vector<float> wide(patterns.size());
    fp::widenHalfBits(patterns.data(), wide.data(), patterns.size());
    std::vector<std::uint16_t> narrow(patterns.size());
    ker().narrowF32ToHalf(wide.data(), narrow.data(), wide.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        const std::uint16_t want = fp::Half(wide[i]).bits();
        ASSERT_EQ(narrow[i], want) << "h=0x" << std::hex << patterns[i];
    }
}

TEST_P(SimdConvertTest, NarrowHalfBoundaryPatterns)
{
    const std::vector<std::uint32_t> bits = boundaryF32Patterns();
    std::vector<float> in(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i)
        in[i] = bitsToFloat(bits[i]);
    std::vector<std::uint16_t> out(bits.size());
    ker().narrowF32ToHalf(in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < bits.size(); ++i)
        ASSERT_EQ(out[i], fp::Half(in[i]).bits())
            << "f32=0x" << std::hex << bits[i];
}

TEST_P(SimdConvertTest, NarrowHalfRandomPatterns)
{
    Rng rng(0x5eedf00du);
    constexpr std::size_t kCount = 1u << 20;
    std::vector<float> in(kCount);
    std::vector<std::uint32_t> bits(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
        bits[i] = static_cast<std::uint32_t>(rng.next());
        in[i] = bitsToFloat(bits[i]);
    }
    std::vector<std::uint16_t> out(kCount);
    ker().narrowF32ToHalf(in.data(), out.data(), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(out[i], fp::Half(in[i]).bits())
            << "f32=0x" << std::hex << bits[i];
}

TEST_P(SimdConvertTest, NarrowBf16RoundTripsAllBf16Values)
{
    const std::vector<std::uint16_t> patterns = allU16Patterns();
    std::vector<float> wide(patterns.size());
    fp::widenBf16Bits(patterns.data(), wide.data(), patterns.size());
    std::vector<std::uint16_t> narrow(patterns.size());
    ker().narrowF32ToBf16(wide.data(), narrow.data(), wide.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        const std::uint16_t want = fp::BFloat16(wide[i]).bits();
        ASSERT_EQ(narrow[i], want) << "b=0x" << std::hex << patterns[i];
    }
}

TEST_P(SimdConvertTest, NarrowBf16BoundaryPatterns)
{
    const std::vector<std::uint32_t> bits = boundaryF32Patterns();
    std::vector<float> in(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i)
        in[i] = bitsToFloat(bits[i]);
    std::vector<std::uint16_t> out(bits.size());
    ker().narrowF32ToBf16(in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < bits.size(); ++i)
        ASSERT_EQ(out[i], fp::BFloat16(in[i]).bits())
            << "f32=0x" << std::hex << bits[i];
}

TEST_P(SimdConvertTest, NarrowBf16RandomPatterns)
{
    Rng rng(0xbf16bf16u);
    constexpr std::size_t kCount = 1u << 20;
    std::vector<float> in(kCount);
    std::vector<std::uint32_t> bits(kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
        bits[i] = static_cast<std::uint32_t>(rng.next());
        in[i] = bitsToFloat(bits[i]);
    }
    std::vector<std::uint16_t> out(kCount);
    ker().narrowF32ToBf16(in.data(), out.data(), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(out[i], fp::BFloat16(in[i]).bits())
            << "f32=0x" << std::hex << bits[i];
}

TEST_P(SimdConvertTest, ShortAndUnalignedLengthsHitTheTailPath)
{
    // Vector widths are <= 16 f32 lanes; lengths below and around one
    // vector exercise the scalar tails, and offset inputs exercise the
    // unaligned loads the kernels must use.
    const std::vector<std::uint16_t> patterns = allU16Patterns();
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{7}, std::size_t{13},
                            std::size_t{17}, std::size_t{31},
                            std::size_t{33}}) {
        for (std::size_t offset : {std::size_t{0}, std::size_t{1},
                                   std::size_t{5}}) {
            std::vector<float> out(len, -1.0f);
            ker().widenHalfToF32(patterns.data() + 0x3bf0 + offset,
                                 out.data(), len);
            for (std::size_t i = 0; i < len; ++i) {
                const std::uint16_t h = patterns[0x3bf0 + offset + i];
                ASSERT_EQ(floatBits(out[i]),
                          floatBits(fp::Half::fromBits(h).toFloat()))
                    << "len=" << len << " offset=" << offset;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AvailableTiers, SimdConvertTest,
    ::testing::ValuesIn(availableSimdTiers()),
    [](const ::testing::TestParamInfo<SimdTier> &info) {
        return std::string(simdTierName(info.param));
    });

TEST(FpConvertBatch, MatchesPerElementSoftwareConversion)
{
    // The scalar batch API in fp/convert.hh is the anchor everything
    // above compares against; pin it to the per-element Half/BFloat16
    // arithmetic directly.
    const std::uint16_t halves[] = {0x0000, 0x8000, 0x0001, 0x03ff,
                                    0x0400, 0x3c00, 0x7bff, 0x7c00,
                                    0xfc00, 0x7e00, 0x7c01, 0xbc00};
    constexpr std::size_t kN = sizeof(halves) / sizeof(halves[0]);
    float wide[kN];
    fp::widenHalfBits(halves, wide, kN);
    std::uint16_t back[kN];
    fp::narrowToHalfBits(wide, back, kN);
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(floatBits(wide[i]),
                  floatBits(fp::Half::fromBits(halves[i]).toFloat()));
        EXPECT_EQ(back[i], fp::Half(wide[i]).bits());
    }
    float bwide[kN];
    fp::widenBf16Bits(halves, bwide, kN);
    std::uint16_t bback[kN];
    fp::narrowToBf16Bits(bwide, bback, kN);
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(floatBits(bwide[i]),
                  floatBits(fp::BFloat16::fromBits(halves[i]).toFloat()));
        EXPECT_EQ(bback[i], fp::BFloat16(bwide[i]).bits());
    }
}

} // namespace
} // namespace blas
} // namespace mc
