/**
 * @file
 * Tests of the bfloat16 implementation.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/random.hh"
#include "fp/bfloat16.hh"
#include "fp/traits.hh"

namespace mc {
namespace fp {
namespace {

TEST(BFloat16, KnownBitPatterns)
{
    EXPECT_EQ(BFloat16(0.0f).bits(), 0x0000);
    EXPECT_EQ(BFloat16(-0.0f).bits(), 0x8000);
    EXPECT_EQ(BFloat16(1.0f).bits(), 0x3f80);
    EXPECT_EQ(BFloat16(-2.0f).bits(), 0xc000);
    // bfloat16 shares the float exponent range: no overflow at 1e38.
    EXPECT_FALSE(BFloat16(1.0e38f).isInf());
    EXPECT_TRUE(BFloat16(INFINITY).isInf());
}

TEST(BFloat16, TruncationIsTopHalfOfFloat)
{
    const float x = 3.14159265f;
    const auto fbits = std::bit_cast<std::uint32_t>(x);
    const BFloat16 b(x);
    // Rounded value differs from the truncated top half by at most 1.
    const auto truncated = static_cast<std::uint16_t>(fbits >> 16);
    EXPECT_LE(static_cast<int>(b.bits()) - static_cast<int>(truncated), 1);
    EXPECT_GE(static_cast<int>(b.bits()) - static_cast<int>(truncated), 0);
}

TEST(BFloat16, RoundToNearestEven)
{
    // 1 + 2^-8 is halfway between 1.0 (even) and 1 + 2^-7: ties to even.
    EXPECT_EQ(BFloat16(1.0f + 0x1.0p-8f).bits(), 0x3f80);
    // 1 + 3*2^-8 ties up to the even neighbour 1 + 2^-6.
    EXPECT_EQ(BFloat16(1.0f + 3 * 0x1.0p-8f).bits(), 0x3f82);
    // Slightly above a tie rounds up.
    EXPECT_EQ(BFloat16(1.0f + 0x1.0p-8f + 0x1.0p-16f).bits(), 0x3f81);
}

TEST(BFloat16, NanPreservedUnderRounding)
{
    const BFloat16 nan(std::nanf(""));
    EXPECT_TRUE(nan.isNan());
    EXPECT_TRUE(std::isnan(nan.toFloat()));
    // A NaN whose payload lives only in the low 16 bits must not be
    // truncated into an infinity.
    const float sneaky = std::bit_cast<float>(0x7f800001u);
    EXPECT_TRUE(BFloat16(sneaky).isNan());
}

TEST(BFloat16, RoundTripAllPatterns)
{
    for (std::uint32_t b = 0; b <= 0xffff; ++b) {
        const BFloat16 v = BFloat16::fromBits(static_cast<std::uint16_t>(b));
        const BFloat16 back(v.toFloat());
        if (v.isNan()) {
            EXPECT_TRUE(back.isNan()) << "pattern " << v.toString();
        } else {
            EXPECT_EQ(back.bits(), v.bits()) << "pattern " << v.toString();
        }
    }
}

TEST(BFloat16, RelativeErrorBounded)
{
    Rng rng(43);
    for (int i = 0; i < 20000; ++i) {
        const float x = static_cast<float>(rng.uniform(-1e6, 1e6));
        if (x == 0.0f)
            continue;
        const float back = BFloat16(x).toFloat();
        // 8 mantissa bits -> relative error at most 2^-8.
        EXPECT_LE(std::fabs(back - x) / std::fabs(x), 0x1.0p-8f);
    }
}

TEST(BFloat16, Arithmetic)
{
    EXPECT_EQ((BFloat16(3.0f) * BFloat16(4.0f)).toFloat(), 12.0f);
    EXPECT_EQ((BFloat16(1.0f) + BFloat16(2.0f)).toFloat(), 3.0f);
    EXPECT_EQ((-BFloat16(1.5f)).toFloat(), -1.5f);
}

TEST(BFloat16, ComparisonSemantics)
{
    EXPECT_TRUE(BFloat16(0.0f) == BFloat16(-0.0f));
    EXPECT_FALSE(BFloat16::quietNan() == BFloat16::quietNan());
    EXPECT_TRUE(BFloat16(1.0f) != BFloat16(2.0f));
}

TEST(NumericTraits, WidenNarrowConsistency)
{
    EXPECT_EQ(NumericTraits<Half>::widen(Half(1.5f)), 1.5f);
    EXPECT_EQ(NumericTraits<BFloat16>::narrow(2.0f).toFloat(), 2.0f);
    EXPECT_EQ(NumericTraits<float>::widen(3.5f), 3.5f);
    EXPECT_EQ(NumericTraits<double>::widen(4.5), 4.5);
    EXPECT_EQ(NumericTraits<std::int8_t>::widen(-5), -5);
}

TEST(NumericTraits, Int8SaturatesOnNarrow)
{
    EXPECT_EQ(NumericTraits<std::int8_t>::narrow(1000), 127);
    EXPECT_EQ(NumericTraits<std::int8_t>::narrow(-1000), -128);
    EXPECT_EQ(NumericTraits<std::int8_t>::narrow(7), 7);
}

TEST(NumericTraits, SizesAndNames)
{
    EXPECT_EQ(NumericTraits<Half>::bytes, 2u);
    EXPECT_EQ(NumericTraits<BFloat16>::bytes, 2u);
    EXPECT_EQ(NumericTraits<float>::bytes, 4u);
    EXPECT_EQ(NumericTraits<double>::bytes, 8u);
    EXPECT_STREQ(NumericTraits<Half>::name, "fp16");
    EXPECT_STREQ(NumericTraits<BFloat16>::name, "bf16");
}

} // namespace
} // namespace fp
} // namespace mc
