/**
 * @file
 * Tests of the ULP-distance helpers the verification harness reports
 * through: orderedBits must be monotone across the sign boundary and
 * ulpDistance must count representable values, treat the two zeros as
 * equal, and flag NaN comparisons with the sentinel.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "fp/half.hh"
#include "fp/traits.hh"

namespace mc {
namespace fp {
namespace {

TEST(OrderedBits, MonotoneAcrossSignBoundaryFloat)
{
    // -1 < -0 == +0 < smallest subnormal < 1 on the ordered scale.
    EXPECT_LT(orderedBits(-1.0f), orderedBits(-0.0f));
    EXPECT_EQ(orderedBits(-0.0f), orderedBits(0.0f));
    const float tiny = std::numeric_limits<float>::denorm_min();
    EXPECT_LT(orderedBits(0.0f), orderedBits(tiny));
    EXPECT_LT(orderedBits(tiny), orderedBits(1.0f));
}

TEST(OrderedBits, AdjacentRepresentablesAreAdjacentIntegers)
{
    const float a = 1.0f;
    const float b = std::nextafter(a, 2.0f);
    EXPECT_EQ(orderedBits(b) - orderedBits(a), 1u);

    const double da = -3.5;
    const double db = std::nextafter(da, -4.0);
    EXPECT_EQ(orderedBits(da) - orderedBits(db), 1u);
}

TEST(UlpDistance, ZeroForBitEqualAndBothZeros)
{
    EXPECT_EQ(ulpDistance(1.25f, 1.25f), 0u);
    EXPECT_EQ(ulpDistance(0.0f, -0.0f), 0u);
    EXPECT_EQ(ulpDistance(-0.0, 0.0), 0u);
}

TEST(UlpDistance, CountsRepresentableValuesBetween)
{
    float x = 1.0f;
    for (int i = 0; i < 5; ++i)
        x = std::nextafter(x, 2.0f);
    EXPECT_EQ(ulpDistance(1.0f, x), 5u);
    EXPECT_EQ(ulpDistance(x, 1.0f), 5u);

    // Straddling zero: distance through both signs is the sum of each
    // side's offset from zero.
    const float tiny = std::numeric_limits<float>::denorm_min();
    EXPECT_EQ(ulpDistance(-tiny, tiny), 2u);
}

TEST(UlpDistance, HalfCountsOnTheBinary16Grid)
{
    // 1.0 and 1.0 + 2^-10 (one binary16 ULP at this scale).
    const Half one(1.0f);
    const Half next(1.0f + 0.0009765625f);
    EXPECT_EQ(ulpDistance(one, next), 1u);
    EXPECT_EQ(ulpDistance(Half(0.0f), Half(-0.0f)), 0u);
}

TEST(UlpDistance, NanComparesAsSentinel)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(ulpDistance(nan, 1.0f), kUlpNan);
    EXPECT_EQ(ulpDistance(1.0f, nan), kUlpNan);
    EXPECT_EQ(ulpDistance(Half(nan), Half(1.0f)), kUlpNan);
    EXPECT_EQ(ulpDistance(std::nan(""), 2.0), kUlpNan);
}

} // namespace
} // namespace fp
} // namespace mc
