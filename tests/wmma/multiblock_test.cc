/**
 * @file
 * Tests of multi-block WMMA fragments: Section II's "a Matrix Core can
 * execute up to four parallel MFMA operations on independent
 * (A, B, C, D) matrices".
 */

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "common/random.hh"
#include "wmma/wmma.hh"

namespace mc {
namespace wmma {
namespace {

TEST(MultiBlock, ShapeSupportQueries)
{
    using fp::Half;
    // The 16x16x4 x4-block mixed-precision shape Section II describes.
    EXPECT_TRUE((shapeSupported<float, Half>(16, 16, 4,
                                             arch::GpuArch::Cdna2, 4)));
    EXPECT_TRUE((shapeSupported<float, float>(4, 4, 1,
                                              arch::GpuArch::Cdna2, 16)));
    EXPECT_FALSE((shapeSupported<float, Half>(16, 16, 4,
                                              arch::GpuArch::Cdna2, 2)));
    EXPECT_FALSE((shapeSupported<float, Half>(16, 8, 8,
                                              arch::GpuArch::Ampere, 4)));
}

TEST(MultiBlock, FourParallelMixedPrecisionProblems)
{
    // Four independent 16x16x4 problems through one instruction.
    constexpr int blocks = 4, m = 16, n = 16, k = 4;
    Rng rng(311);

    std::vector<Matrix<fp::Half>> as, bs;
    std::vector<Matrix<float>> cs;
    for (int blk = 0; blk < blocks; ++blk) {
        Matrix<fp::Half> a(m, k), b(k, n);
        Matrix<float> c(m, n);
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < k; ++j)
                a(i, j) = fp::Half(static_cast<float>(
                    rng.uniform(-1, 1)));
        for (int i = 0; i < k; ++i)
            for (int j = 0; j < n; ++j)
                b(i, j) = fp::Half(static_cast<float>(
                    rng.uniform(-1, 1)));
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < n; ++j)
                c(i, j) = static_cast<float>(rng.uniform(-1, 1));
        as.push_back(std::move(a));
        bs.push_back(std::move(b));
        cs.push_back(std::move(c));
    }

    Fragment<FragmentUse::MatrixA, m, n, k, fp::Half, blocks> fa;
    Fragment<FragmentUse::MatrixB, m, n, k, fp::Half, blocks> fb;
    Fragment<FragmentUse::Accumulator, m, n, k, float, blocks> fc, fd;
    for (int blk = 0; blk < blocks; ++blk) {
        load_matrix_block_sync(fa, as[blk].data(), k, blk);
        load_matrix_block_sync(fb, bs[blk].data(), n, blk);
        load_matrix_block_sync(fc, cs[blk].data(), n, blk);
    }

    KernelRecorder::active().reset("multiblock");
    mma_sync(fd, fa, fb, fc);
    EXPECT_EQ(KernelRecorder::active().mfmaCount(
                  "v_mfma_f32_16x16x4_4b_f16"), 1u);

    // Each block's result must match its own reference, proving the
    // blocks stayed independent.
    for (int blk = 0; blk < blocks; ++blk) {
        Matrix<float> d(m, n);
        store_matrix_block_sync(d.data(), fd, n, blk);
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
                float acc = cs[blk](i, j);
                for (int kk = 0; kk < k; ++kk)
                    acc += as[blk](i, kk).toFloat() *
                           bs[blk](kk, j).toFloat();
                EXPECT_NEAR(d(i, j), acc, 1e-3)
                    << "block " << blk << " (" << i << "," << j << ")";
            }
        }
    }
}

TEST(MultiBlock, ContiguousLoadStoreRoundTrip)
{
    // Whole-fragment load/store moves blocks through consecutive
    // tile-sized slabs.
    constexpr int blocks = 16;
    std::vector<float> slabs(16 * 4 * 4); // 16 blocks of 4x4
    for (std::size_t i = 0; i < slabs.size(); ++i)
        slabs[i] = static_cast<float>(i);

    Fragment<FragmentUse::Accumulator, 4, 4, 1, float, blocks> frag;
    load_matrix_sync(frag, slabs.data(), 4);
    std::vector<float> back(slabs.size(), -1.0f);
    store_matrix_sync(back.data(), frag, 4);
    EXPECT_EQ(back, slabs);
}

TEST(MultiBlock, RecorderCountsTileTraffic)
{
    KernelRecorder::active().reset("traffic");
    std::vector<float> slab(16 * 16);
    Fragment<FragmentUse::Accumulator, 16, 16, 1, float, 4> frag;
    load_matrix_block_sync(frag, slab.data(), 16, 2);
    EXPECT_EQ(KernelRecorder::active().loadBytes(), 16u * 16u * 4u);
}

TEST(MultiBlockDeathTest, BlockIndexValidated)
{
    std::vector<float> slab(16 * 16);
    Fragment<FragmentUse::Accumulator, 16, 16, 1, float, 4> frag;
    EXPECT_DEATH(load_matrix_block_sync(frag, slab.data(), 16, 4),
                 "out of range");
    EXPECT_DEATH(store_matrix_block_sync(slab.data(), frag, 16, -1),
                 "out of range");
}

TEST(MultiBlockDeathTest, UnsupportedBlockCountIsFatal)
{
    using BadFrag =
        Fragment<FragmentUse::MatrixA, 16, 16, 16, fp::Half, 2>;
    EXPECT_EXIT({ BadFrag frag; (void)frag; },
                ::testing::ExitedWithCode(1), "no AMD CDNA2 instruction");
}

} // namespace
} // namespace wmma
} // namespace mc
