/**
 * @file
 * Tests of the kernel recorder (the model's "assembly inspection").
 */

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "wmma/wmma.hh"

namespace mc {
namespace wmma {
namespace {

TEST(KernelRecorder, MmaSyncRecordsExactlyOneInstruction)
{
    // The paper verifies with -S / cuobjdump that one rocWMMA mma_sync
    // lowers to one MFMA instruction; the recorder is that check here.
    KernelRecorder::active().reset("one_tile");

    Matrix<fp::Half> a(16, 16, fp::Half(1.0f)), b(16, 16);
    b.setIdentity();
    Matrix<float> c(16, 16, 0.0f);

    Fragment<FragmentUse::MatrixA, 16, 16, 16, fp::Half> fa;
    Fragment<FragmentUse::MatrixB, 16, 16, 16, fp::Half> fb;
    Fragment<FragmentUse::Accumulator, 16, 16, 16, float> fc, fd;
    load_matrix_sync(fa, a.data(), 16);
    load_matrix_sync(fb, b.data(), 16);
    load_matrix_sync(fc, c.data(), 16);
    mma_sync(fd, fa, fb, fc);

    auto &rec = KernelRecorder::active();
    EXPECT_EQ(rec.mfmaCount(), 1u);
    EXPECT_EQ(rec.mfmaCount("v_mfma_f32_16x16x16_f16"), 1u);
    EXPECT_EQ(rec.mfmaCount("v_mfma_f64_16x16x4_f64"), 0u);
}

TEST(KernelRecorder, FragmentTrafficAccounted)
{
    KernelRecorder::active().reset("traffic");
    Matrix<float> c(16, 16, 0.0f);
    Fragment<FragmentUse::Accumulator, 16, 16, 4, float> frag;
    load_matrix_sync(frag, c.data(), 16);
    store_matrix_sync(c.data(), frag, 16);

    auto &rec = KernelRecorder::active();
    EXPECT_EQ(rec.loadBytes(), 16u * 16u * 4u);
    EXPECT_EQ(rec.storeBytes(), 16u * 16u * 4u);
}

TEST(KernelRecorder, BuildProfileScalesBody)
{
    KernelRecorder::active().reset("scaled");
    Matrix<fp::Half> a(16, 16, fp::Half(1.0f)), b(16, 16);
    b.setIdentity();
    Matrix<float> c(16, 16, 0.0f);
    Fragment<FragmentUse::MatrixA, 16, 16, 16, fp::Half> fa;
    Fragment<FragmentUse::MatrixB, 16, 16, 16, fp::Half> fb;
    Fragment<FragmentUse::Accumulator, 16, 16, 16, float> fc, fd;
    load_matrix_sync(fa, a.data(), 16);
    load_matrix_sync(fb, b.data(), 16);
    load_matrix_sync(fc, c.data(), 16);
    mma_sync(fd, fa, fb, fc);
    mma_sync(fd, fa, fb, fd); // two instructions in the body

    const sim::KernelProfile profile =
        KernelRecorder::active().buildProfile(/*wavefronts=*/8,
                                              /*iterations=*/1000);
    EXPECT_EQ(profile.numWavefronts, 8u);
    EXPECT_EQ(profile.mfmaInstsPerWavefront(), 2000u);
    EXPECT_EQ(profile.label, "scaled");
    // Load bytes scale with wavefronts (each wavefront loads its own
    // fragments).
    EXPECT_DOUBLE_EQ(profile.hbmReadBytes,
                     8.0 * (2 * 16 * 16 * 2 + 16 * 16 * 4));
}

TEST(KernelRecorder, ResetClearsState)
{
    auto &rec = KernelRecorder::active();
    rec.reset("a");
    rec.noteFragmentLoad(100);
    rec.reset("b");
    EXPECT_EQ(rec.loadBytes(), 0u);
    EXPECT_EQ(rec.mfmaCount(), 0u);
}

TEST(MfmaLoopProfile, MatchesPaperMicrobenchShape)
{
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    ASSERT_NE(inst, nullptr);
    const sim::KernelProfile p =
        mfmaLoopProfile(*inst, 40000000, 1, "latency_probe");
    EXPECT_EQ(p.numWavefronts, 1u);
    EXPECT_EQ(p.mfmaInstsPerWavefront(), 40000000u);
    EXPECT_EQ(p.label, "latency_probe");
    EXPECT_DOUBLE_EQ(p.hbmReadBytes, 0.0); // register-only loop
}

TEST(MfmaLoopProfileDeathTest, ZeroWavefrontsPanics)
{
    KernelRecorder::active().reset("zero");
    EXPECT_DEATH(KernelRecorder::active().buildProfile(0, 1),
                 "at least one wavefront");
}

} // namespace
} // namespace wmma
} // namespace mc
