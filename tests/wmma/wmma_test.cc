/**
 * @file
 * Tests of the rocWMMA-style fragment API: load/store round trips,
 * mma_sync correctness against the host reference, and the Table I
 * cross-platform validity checks.
 */

#include <gtest/gtest.h>

#include "common/matrix.hh"
#include "common/random.hh"
#include "wmma/wmma.hh"

namespace mc {
namespace wmma {
namespace {

TEST(Wmma, ShapeSupportedMatchesTableI)
{
    using fp::Half;
    // CDNA2 column of Table I.
    EXPECT_TRUE((shapeSupported<double, double>(16, 16, 4)));
    EXPECT_TRUE((shapeSupported<float, float>(16, 16, 4)));
    EXPECT_TRUE((shapeSupported<float, float>(32, 32, 2)));
    EXPECT_TRUE((shapeSupported<float, Half>(16, 16, 16)));
    EXPECT_TRUE((shapeSupported<float, Half>(32, 32, 8)));
    EXPECT_FALSE((shapeSupported<Half, Half>(16, 16, 16)));
    EXPECT_FALSE((shapeSupported<double, double>(8, 8, 4)));

    // Ampere column.
    const auto amp = arch::GpuArch::Ampere;
    EXPECT_TRUE((shapeSupported<double, double>(8, 8, 4, amp)));
    EXPECT_TRUE((shapeSupported<float, Half>(16, 8, 16, amp)));
    EXPECT_TRUE((shapeSupported<Half, Half>(16, 8, 8, amp)));
    EXPECT_FALSE((shapeSupported<float, float>(16, 16, 4, amp)));
}

TEST(Wmma, FillFragmentSetsEveryElement)
{
    Fragment<FragmentUse::Accumulator, 16, 16, 4, float> frag;
    fill_fragment(frag, 2.5f);
    for (float v : frag.regs().laneData)
        EXPECT_EQ(v, 2.5f);
    EXPECT_EQ(frag.numElements(), 256u);
}

TEST(Wmma, LoadStoreRoundTripRowMajor)
{
    Rng rng(61);
    Matrix<float> tile(16, 4);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            tile(i, j) = static_cast<float>(rng.uniform(-1, 1));

    Fragment<FragmentUse::MatrixA, 16, 16, 4, float> frag;
    load_matrix_sync(frag, tile.data(), 4);

    Matrix<float> back(16, 4);
    // Store via a same-layout load into another fragment is not
    // meaningful for A; instead verify through the layout directly.
    const auto &layout = frag.layout();
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 4; ++c) {
            const arch::RegLocation loc =
                layout.locationOf(arch::ElementCoord{0, r, c});
            back(r, c) = frag.regs().at(loc.lane, loc.slot);
        }
    }
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_EQ(back(i, j), tile(i, j));
}

TEST(Wmma, AccumulatorStoreRoundTrip)
{
    Rng rng(67);
    Matrix<float> tile(16, 16);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j)
            tile(i, j) = static_cast<float>(rng.uniform(-1, 1));

    Fragment<FragmentUse::Accumulator, 16, 16, 4, float> frag;
    load_matrix_sync(frag, tile.data(), 16);
    Matrix<float> back(16, 16);
    store_matrix_sync(back.data(), frag, 16);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j)
            EXPECT_EQ(back(i, j), tile(i, j));
}

TEST(Wmma, ColMajorLoadTransposesIndexing)
{
    Matrix<float> col_storage(4, 16); // column-major 16x4 = 4x16 buffer
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 4; ++c)
            col_storage(c, r) = static_cast<float>(r * 10 + c);

    Fragment<FragmentUse::MatrixA, 16, 16, 4, float> frag;
    load_matrix_sync(frag, col_storage.data(), 16, MemLayout::ColMajor);

    const auto &layout = frag.layout();
    const arch::RegLocation loc =
        layout.locationOf(arch::ElementCoord{0, 7, 2});
    EXPECT_EQ(frag.regs().at(loc.lane, loc.slot), 72.0f);
}

TEST(Wmma, MmaSyncMatchesHostReferenceMixedPrecision)
{
    Rng rng(71);
    Matrix<fp::Half> a(16, 16), b(16, 16);
    Matrix<float> c(16, 16), expect(16, 16);
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) {
            a(i, j) = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
            b(i, j) = fp::Half(static_cast<float>(rng.uniform(-1, 1)));
            c(i, j) = static_cast<float>(rng.uniform(-1, 1));
        }
    }
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) {
            float acc = c(i, j);
            for (std::size_t k = 0; k < 16; ++k)
                acc += a(i, k).toFloat() * b(k, j).toFloat();
            expect(i, j) = acc;
        }
    }

    Fragment<FragmentUse::MatrixA, 16, 16, 16, fp::Half> fa;
    Fragment<FragmentUse::MatrixB, 16, 16, 16, fp::Half> fb;
    Fragment<FragmentUse::Accumulator, 16, 16, 16, float> fc, fd;
    load_matrix_sync(fa, a.data(), 16);
    load_matrix_sync(fb, b.data(), 16);
    load_matrix_sync(fc, c.data(), 16);
    mma_sync(fd, fa, fb, fc);

    Matrix<float> d(16, 16);
    store_matrix_sync(d.data(), fd, 16);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j)
            EXPECT_NEAR(d(i, j), expect(i, j), 1e-3);
}

TEST(Wmma, MmaSyncDoublePrecisionExact)
{
    Rng rng(73);
    Matrix<double> a(16, 4), b(4, 16), c(16, 16);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            a(i, j) = rng.uniform(-1, 1);
    b.setIdentity();
    c.fill(1.0);

    Fragment<FragmentUse::MatrixA, 16, 16, 4, double> fa;
    Fragment<FragmentUse::MatrixB, 16, 16, 4, double> fb;
    Fragment<FragmentUse::Accumulator, 16, 16, 4, double> fc, fd;
    load_matrix_sync(fa, a.data(), 4);
    load_matrix_sync(fb, b.data(), 16);
    load_matrix_sync(fc, c.data(), 16);
    mma_sync(fd, fa, fb, fc);

    Matrix<double> d(16, 16);
    store_matrix_sync(d.data(), fd, 16);
    // With B = [I4; padded], D = A's leading columns + 1 exactly.
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j)
            EXPECT_DOUBLE_EQ(d(i, j), (j < 4 ? a(i, j) : 0.0) + 1.0);
}

TEST(Wmma, PaperValidationPattern)
{
    // The paper's rocBLAS validation scheme scaled to one tile: A all
    // ones, B identity, C all ones => D all twos.
    Matrix<fp::Half> a(16, 16, fp::Half(1.0f)), b(16, 16);
    b.setIdentity();
    Matrix<float> c(16, 16, 1.0f);

    Fragment<FragmentUse::MatrixA, 16, 16, 16, fp::Half> fa;
    Fragment<FragmentUse::MatrixB, 16, 16, 16, fp::Half> fb;
    Fragment<FragmentUse::Accumulator, 16, 16, 16, float> fc, fd;
    load_matrix_sync(fa, a.data(), 16);
    load_matrix_sync(fb, b.data(), 16);
    load_matrix_sync(fc, c.data(), 16);
    mma_sync(fd, fa, fb, fc);

    Matrix<float> d(16, 16);
    store_matrix_sync(d.data(), fd, 16);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j)
            EXPECT_EQ(d(i, j), 2.0f);
}

TEST(WmmaDeathTest, UnsupportedFragmentIsFatal)
{
    // f16 accumulators do not exist on CDNA2 (Table I).
    using BadFrag =
        Fragment<FragmentUse::Accumulator, 16, 16, 16, fp::Half>;
    EXPECT_EXIT({ BadFrag frag; (void)frag; },
                ::testing::ExitedWithCode(1), "no AMD CDNA2 instruction");
}

TEST(WmmaDeathTest, LeadingDimensionTooSmallPanics)
{
    Fragment<FragmentUse::MatrixA, 16, 16, 4, float> frag;
    std::vector<float> tiny(16 * 4);
    EXPECT_DEATH(load_matrix_sync(frag, tiny.data(), 2),
                 "leading dimension too small");
}

} // namespace
} // namespace wmma
} // namespace mc
