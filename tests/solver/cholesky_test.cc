/**
 * @file
 * Tests of the blocked Cholesky factorization and solve.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "solver/cholesky.hh"

namespace mc {
namespace solver {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

/** Random symmetric positive-definite matrix: A = M M^T + n I. */
Matrix<double>
randomSpd(Rng &rng, std::size_t n)
{
    Matrix<double> m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m(i, j) = rng.uniform(-1.0, 1.0);
    Matrix<double> a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = (i == j) ? static_cast<double>(n) : 0.0;
            for (std::size_t kk = 0; kk < n; ++kk)
                acc += m(i, kk) * m(j, kk);
            a(i, j) = acc;
        }
    }
    return a;
}

class CholeskyTest : public ::testing::Test
{
  protected:
    CholeskyTest() : rt(arch::defaultCdna2(), quietOptions()), engine(rt)
    {}

    hip::Runtime rt;
    blas::GemmEngine engine;
};

TEST_F(CholeskyTest, FactorizationReconstructsA)
{
    Rng rng(431);
    const std::size_t n = 96;
    const Matrix<double> a = randomSpd(rng, n);
    Matrix<double> l = a;
    CholeskySolver chol(engine, 32);
    ASSERT_TRUE(chol.factor(l).isOk());

    // L L^T (lower triangle of l) must reconstruct A.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = 0.0;
            for (std::size_t kk = 0; kk <= j; ++kk)
                acc += l(i, kk) * l(j, kk);
            EXPECT_NEAR(acc, a(i, j), 1e-9 * (1.0 + std::fabs(a(i, j))))
                << i << "," << j;
        }
    }
}

TEST_F(CholeskyTest, SolvesSpdSystems)
{
    Rng rng(433);
    for (std::size_t n : {8u, 64u, 200u}) {
        const Matrix<double> a = randomSpd(rng, n);
        std::vector<double> b(n);
        for (auto &v : b)
            v = rng.uniform(-1.0, 1.0);
        std::vector<double> x;
        SolveStats stats;
        CholeskySolver chol(engine, 48);
        const Status s = chol.solveSystem(a, b, x, &stats);
        ASSERT_TRUE(s.isOk()) << s.toString() << " n=" << n;
        EXPECT_LT(stats.relativeResidual, 1e-12) << n;
    }
}

TEST_F(CholeskyTest, AgreesWithLuSolver)
{
    Rng rng(439);
    const std::size_t n = 80;
    const Matrix<double> a = randomSpd(rng, n);
    std::vector<double> b(n);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);

    std::vector<double> x_chol, x_lu;
    CholeskySolver chol(engine, 32);
    LuSolver lu(engine, 32);
    ASSERT_TRUE(chol.solveSystem(a, b, x_chol).isOk());
    ASSERT_TRUE(lu.solveSystem(a, b, x_lu).isOk());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x_chol[i], x_lu[i],
                    1e-9 * (1.0 + std::fabs(x_lu[i])));
}

TEST_F(CholeskyTest, RejectsIndefiniteMatrices)
{
    Matrix<double> a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 1.0; // eigenvalues 3 and -1
    CholeskySolver chol(engine);
    Matrix<double> l = a;
    const Status s = chol.factor(l);
    EXPECT_EQ(s.code(), ErrorCode::FailedPrecondition);
}

TEST_F(CholeskyTest, RejectsNonSquare)
{
    Matrix<double> a(3, 4);
    CholeskySolver chol(engine);
    EXPECT_EQ(chol.factor(a).code(), ErrorCode::InvalidArgument);
}

TEST_F(CholeskyTest, StatsCountTrsmAndSyrkUpdates)
{
    Rng rng(443);
    const std::size_t n = 128;
    Matrix<double> a = randomSpd(rng, n);
    SolveStats stats;
    CholeskySolver chol(engine, 32);
    ASSERT_TRUE(chol.factor(a, &stats).isOk());
    // Panels at 0, 32, 64 have trailing updates (TRSM + SYRK each);
    // the last panel does not.
    EXPECT_EQ(stats.gemmCalls, 6);
    EXPECT_GT(stats.gemmSeconds, 0.0);
}

TEST_F(CholeskyTest, BlockSizeDoesNotChangeTheAnswer)
{
    Rng rng(449);
    const std::size_t n = 100;
    const Matrix<double> a = randomSpd(rng, n);
    std::vector<double> b(n);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);
    std::vector<double> x1, x2;
    CholeskySolver c1(engine, 16), c2(engine, 100);
    ASSERT_TRUE(c1.solveSystem(a, b, x1).isOk());
    ASSERT_TRUE(c2.solveSystem(a, b, x2).isOk());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-10 * (1.0 + std::fabs(x2[i])));
}

} // namespace
} // namespace solver
} // namespace mc
