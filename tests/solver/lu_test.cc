/**
 * @file
 * Tests of the LU factorization and the mixed-precision iterative
 * refinement solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "solver/lu.hh"

namespace mc {
namespace solver {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

/** Diagonally dominant random system: well conditioned for FP16. */
Matrix<double>
wellConditioned(Rng &rng, std::size_t n)
{
    Matrix<double> a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.uniform(-1.0, 1.0);
            row_sum += std::fabs(a(i, j));
        }
        a(i, i) += row_sum + 1.0;
    }
    return a;
}

std::vector<double>
randomVector(Rng &rng, std::size_t n)
{
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform(-1.0, 1.0);
    return v;
}

class LuTest : public ::testing::Test
{
  protected:
    LuTest() : rt(arch::defaultCdna2(), quietOptions()), engine(rt) {}

    hip::Runtime rt;
    blas::GemmEngine engine;
};

TEST_F(LuTest, SolvesWellConditionedSystems)
{
    Rng rng(211);
    for (std::size_t n : {5u, 32u, 100u, 250u}) {
        LuSolver solver(engine, 32);
        const Matrix<double> a = wellConditioned(rng, n);
        const std::vector<double> b = randomVector(rng, n);
        std::vector<double> x;
        SolveStats stats;
        const Status s = solver.solveSystem(a, b, x, &stats);
        ASSERT_TRUE(s.isOk()) << s.toString() << " n=" << n;
        EXPECT_LT(stats.relativeResidual, 1e-12) << n;
    }
}

TEST_F(LuTest, FactorizationSatisfiesPaEqualsLu)
{
    Rng rng(223);
    const std::size_t n = 64;
    const Matrix<double> a = wellConditioned(rng, n);
    Matrix<double> lu = a;
    std::vector<int> pivots;
    LuSolver solver(engine, 16);
    ASSERT_TRUE(solver.factor(lu, pivots).isOk());

    // Rebuild P*A by applying the recorded swaps, then check = L*U.
    Matrix<double> pa = a;
    for (std::size_t i = 0; i < n; ++i) {
        const auto piv = static_cast<std::size_t>(pivots[i]);
        if (piv != i)
            for (std::size_t c = 0; c < n; ++c)
                std::swap(pa(i, c), pa(piv, c));
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            const std::size_t kmax = std::min(i, j + 1);
            for (std::size_t k = 0; k < kmax; ++k)
                acc += lu(i, k) * lu(k, j); // strict L part
            if (i <= j)
                acc += lu(i, j); // unit diagonal times U row
            EXPECT_NEAR(acc, pa(i, j), 1e-10 * (1.0 + std::fabs(pa(i, j))));
        }
    }
}

TEST_F(LuTest, PivotingHandlesZeroLeadingElement)
{
    // Without pivoting this matrix fails immediately (a00 = 0).
    Matrix<double> a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    LuSolver solver(engine);
    std::vector<double> x;
    const Status s = solver.solveSystem(a, {2.0, 3.0}, x);
    ASSERT_TRUE(s.isOk());
    EXPECT_NEAR(x[0], 3.0, 1e-14);
    EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST_F(LuTest, SingularMatrixReported)
{
    Matrix<double> a(3, 3, 1.0); // rank one
    LuSolver solver(engine);
    std::vector<double> x;
    const Status s = solver.solveSystem(a, {1.0, 1.0, 1.0}, x);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), ErrorCode::FailedPrecondition);
}

TEST_F(LuTest, NonSquareRejected)
{
    Matrix<double> a(3, 4);
    std::vector<int> pivots;
    LuSolver solver(engine);
    EXPECT_EQ(solver.factor(a, pivots).code(),
              ErrorCode::InvalidArgument);
}

TEST_F(LuTest, StatsCountTrailingGemms)
{
    Rng rng(227);
    const std::size_t n = 128;
    Matrix<double> a = wellConditioned(rng, n);
    std::vector<int> pivots;
    SolveStats stats;
    LuSolver solver(engine, 32);
    ASSERT_TRUE(solver.factor(a, pivots, &stats).isOk());
    // Panels at 0, 32, 64 produce trailing updates; the last does not.
    EXPECT_EQ(stats.gemmCalls, 3);
    EXPECT_GT(stats.gemmSeconds, 0.0);
    EXPECT_GT(stats.gemmEnergyJ, 0.0);
}

TEST_F(LuTest, BlockSizeDoesNotChangeTheAnswer)
{
    Rng rng(229);
    const std::size_t n = 96;
    const Matrix<double> a = wellConditioned(rng, n);
    const std::vector<double> b = randomVector(rng, n);
    std::vector<double> x1, x2;
    LuSolver s1(engine, 8), s2(engine, 96);
    ASSERT_TRUE(s1.solveSystem(a, b, x1).isOk());
    ASSERT_TRUE(s2.solveSystem(a, b, x2).isOk());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-11);
}

TEST_F(LuTest, RefinementReachesFp64Accuracy)
{
    Rng rng(233);
    for (std::size_t n : {32u, 128u}) {
        const Matrix<double> a = wellConditioned(rng, n);
        const std::vector<double> b = randomVector(rng, n);
        std::vector<double> x;
        SolveStats stats;
        IterativeRefinementSolver solver(engine, 32);
        const Status s = solver.solve(a, b, x, &stats);
        ASSERT_TRUE(s.isOk()) << s.toString();
        EXPECT_LT(stats.relativeResidual, 1e-12) << n;
        EXPECT_GE(stats.refinementIters, 1) << n;
        EXPECT_LT(stats.refinementIters, 20) << n;
    }
}

TEST_F(LuTest, RefinementMatchesDirectSolve)
{
    Rng rng(239);
    const std::size_t n = 64;
    const Matrix<double> a = wellConditioned(rng, n);
    const std::vector<double> b = randomVector(rng, n);

    std::vector<double> x_direct, x_refined;
    LuSolver direct(engine, 32);
    IterativeRefinementSolver refined(engine, 32);
    ASSERT_TRUE(direct.solveSystem(a, b, x_direct).isOk());
    ASSERT_TRUE(refined.solve(a, b, x_refined).isOk());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x_refined[i], x_direct[i],
                    1e-9 * (1.0 + std::fabs(x_direct[i])));
}

TEST_F(LuTest, RefinementFailsOnFp16HostileMatrix)
{
    // Entries far outside the FP16 range collapse to infinity in the
    // low-precision factorization; refinement must report failure
    // rather than return garbage.
    const std::size_t n = 8;
    Matrix<double> a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        a(i, i) = 1e30;
    a(0, 1) = 1.0;
    std::vector<double> x;
    IterativeRefinementSolver solver(engine);
    const Status s = solver.solve(a, std::vector<double>(n, 1.0), x);
    EXPECT_FALSE(s.isOk());
}

TEST_F(LuTest, NormHelpers)
{
    Matrix<double> a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = -2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 0.5;
    EXPECT_DOUBLE_EQ(normInf(a), 3.5);
    EXPECT_DOUBLE_EQ(normInf(std::vector<double>{-4.0, 2.0}), 4.0);

    const std::vector<double> r =
        residual(a, {1.0, 1.0}, {0.0, 0.0});
    EXPECT_DOUBLE_EQ(r[0], -(1.0 - 2.0));
    EXPECT_DOUBLE_EQ(r[1], -(3.0 + 0.5));
}

} // namespace
} // namespace solver
} // namespace mc
