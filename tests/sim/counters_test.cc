/**
 * @file
 * Tests of the hardware-counter model's documented semantics.
 */

#include <gtest/gtest.h>

#include "sim/counters.hh"

namespace mc {
namespace sim {
namespace {

TEST(HwCounters, MopsIncrementOncePer512Ops)
{
    HwCounters c;
    c.addMfmaOps(arch::DataType::F64, 2048, 1); // one 16x16x4 f64 inst
    EXPECT_EQ(c.mops(arch::DataType::F64), 4u);
    EXPECT_EQ(c.mfmaInstructions, 1u);

    c.addMfmaOps(arch::DataType::F64, 512 * 10, 5);
    EXPECT_EQ(c.mops(arch::DataType::F64), 14u);
    EXPECT_EQ(c.mfmaInstructions, 6u);
}

TEST(HwCounters, BanksAreIndependent)
{
    HwCounters c;
    c.addMfmaOps(arch::DataType::F16, 512, 1);
    c.addMfmaOps(arch::DataType::F32, 1024, 1);
    EXPECT_EQ(c.mops(arch::DataType::F16), 1u);
    EXPECT_EQ(c.mops(arch::DataType::F32), 2u);
    EXPECT_EQ(c.mops(arch::DataType::F64), 0u);
    EXPECT_EQ(c.mops(arch::DataType::BF16), 0u);
    EXPECT_EQ(c.mops(arch::DataType::I8), 0u);
}

TEST(HwCounters, ValuPerOpPerType)
{
    HwCounters c;
    c.addValu(arch::DataType::F32, ValuOp::Add, 10);
    c.addValu(arch::DataType::F32, ValuOp::Mul, 20);
    c.addValu(arch::DataType::F64, ValuOp::Fma, 30);
    EXPECT_EQ(c.valuCount(arch::DataType::F32, ValuOp::Add), 10u);
    EXPECT_EQ(c.valuCount(arch::DataType::F32, ValuOp::Mul), 20u);
    EXPECT_EQ(c.valuCount(arch::DataType::F32, ValuOp::Fma), 0u);
    EXPECT_EQ(c.valuCount(arch::DataType::F64, ValuOp::Fma), 30u);
}

TEST(HwCounters, AccumulationOperator)
{
    HwCounters a, b;
    a.addMfmaOps(arch::DataType::F16, 512, 1);
    a.addValu(arch::DataType::F32, ValuOp::Add, 5);
    b.addMfmaOps(arch::DataType::F16, 1024, 2);
    b.addValu(arch::DataType::F32, ValuOp::Add, 7);
    a += b;
    EXPECT_EQ(a.mops(arch::DataType::F16), 3u);
    EXPECT_EQ(a.valuCount(arch::DataType::F32, ValuOp::Add), 12u);
    EXPECT_EQ(a.mfmaInstructions, 3u);
}

TEST(HwCounters, ByNameMatchesRocprofSpelling)
{
    HwCounters c;
    c.addMfmaOps(arch::DataType::F64, 512 * 7, 7);
    c.addValu(arch::DataType::F64, ValuOp::Add, 3);
    c.addValu(arch::DataType::F64, ValuOp::Mul, 4);
    c.addValu(arch::DataType::F64, ValuOp::Fma, 5);
    c.addValu(arch::DataType::F16, ValuOp::Xfer, 6);

    EXPECT_EQ(c.byName("SQ_INSTS_VALU_MFMA_MOPS_F64"), 7u);
    EXPECT_EQ(c.byName("SQ_INSTS_VALU_ADD_F64"), 3u);
    EXPECT_EQ(c.byName("SQ_INSTS_VALU_MUL_F64"), 4u);
    EXPECT_EQ(c.byName("SQ_INSTS_VALU_FMA_F64"), 5u);
    EXPECT_EQ(c.byName("SQ_INSTS_VALU_XFER_F16"), 6u);
    EXPECT_EQ(c.byName("SQ_INSTS_MFMA"), 7u);
}

TEST(HwCounters, CounterNamesEnumerateAllBanks)
{
    const auto names = HwCounters::counterNames();
    // 5 type banks x (1 MOPS + 4 VALU ops) + SQ_INSTS_MFMA.
    EXPECT_EQ(names.size(), 5u * 5u + 1u);
    HwCounters c;
    for (const auto &name : names)
        EXPECT_EQ(c.byName(name), 0u) << name;
}

TEST(HwCountersDeathTest, UnknownNameIsFatal)
{
    HwCounters c;
    EXPECT_EXIT((void)c.byName("SQ_INSTS_VALU_BOGUS"),
                ::testing::ExitedWithCode(1), "unknown hardware counter");
}

TEST(HwCountersDeathTest, NonMultipleOf512Panics)
{
    HwCounters c;
    EXPECT_DEATH(c.addMfmaOps(arch::DataType::F32, 100, 1),
                 "not a multiple");
}

TEST(HwCountersDeathTest, UncountedTypeIsFatal)
{
    EXPECT_EXIT((void)counterTypeIndex(arch::DataType::I32),
                ::testing::ExitedWithCode(1), "no SQ counter bank");
}

} // namespace
} // namespace sim
} // namespace mc
