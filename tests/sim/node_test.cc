/**
 * @file
 * Tests of the multi-GPU node model (the paper's 4 x MI250X testbed).
 */

#include <gtest/gtest.h>

#include "sim/node.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace sim {
namespace {

SimOptions
quietOptions()
{
    SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

const arch::MfmaInstruction *
mixedInst()
{
    return arch::findInstruction(arch::GpuArch::Cdna2,
                                 "v_mfma_f32_16x16x16_f16");
}

TEST(Node, DefaultIsFourPackages)
{
    Node node(4, arch::defaultCdna2(), quietOptions());
    EXPECT_EQ(node.packageCount(), 4);
    EXPECT_DOUBLE_EQ(node.idlePowerW(), 4 * 88.0);
}

TEST(Node, ThroughputScalesLinearlyAcrossPackages)
{
    Node node(4, arch::defaultCdna2(), quietOptions());
    const auto profile = wmma::mfmaLoopProfile(*mixedInst(), 1000000, 440);
    const NodeRunResult one = node.runEverywhere(profile, 1);
    const NodeRunResult four = node.runEverywhere(profile, 4);
    // Independent packages: 4x the FLOPs in the same wall time.
    EXPECT_NEAR(four.throughput() / one.throughput(), 4.0, 0.01);
    EXPECT_NEAR(four.throughput() / 1e12, 4 * 350.0, 10.0);
    EXPECT_EQ(four.perPackage.size(), 4u);
}

TEST(Node, IdlePackagesStillDrawIdlePower)
{
    Node node(4, arch::defaultCdna2(), quietOptions());
    const auto profile = wmma::mfmaLoopProfile(*mixedInst(), 1000000, 440);
    const NodeRunResult partial = node.runEverywhere(profile, 2);
    // Two active packages (~337 W each) plus two idle (88 W each).
    EXPECT_NEAR(partial.totalPowerW, 2 * 337.0 + 2 * 88.0, 5.0);
}

TEST(Node, PerPackageDvfsStillApplies)
{
    Node node(2, arch::defaultCdna2(), quietOptions());
    const arch::MfmaInstruction *f64 = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    ASSERT_NE(f64, nullptr);
    const NodeRunResult r =
        node.runEverywhere(wmma::mfmaLoopProfile(*f64, 1000000, 440));
    for (const auto &pkg : r.perPackage) {
        EXPECT_TRUE(pkg.throttled);
        EXPECT_NEAR(pkg.avgPowerW, 541.0, 2.0);
    }
    EXPECT_NEAR(r.throughput() / 1e12, 2 * 69.9, 1.5);
}

TEST(Node, NoiseDecorrelatedAcrossPackages)
{
    SimOptions opts; // noise on
    Node node(2, arch::defaultCdna2(), opts);
    const auto profile = wmma::mfmaLoopProfile(*mixedInst(), 100000, 128);
    const NodeRunResult r = node.runEverywhere(profile);
    ASSERT_EQ(r.perPackage.size(), 2u);
    EXPECT_NE(r.perPackage[0].seconds, r.perPackage[1].seconds);
}

TEST(Node, PackageAccessAndTraces)
{
    Node node(2, arch::defaultCdna2(), quietOptions());
    const auto profile = wmma::mfmaLoopProfile(*mixedInst(), 1000000, 440);
    node.runEverywhere(profile);
    EXPECT_GT(node.package(0).trace().endSec(), 0.0);
    EXPECT_GT(node.package(1).trace().endSec(), 0.0);
}

TEST(NodeDeathTest, InvalidConfigurations)
{
    EXPECT_DEATH(Node(0), "at least one package");
    Node node(2, arch::defaultCdna2(), quietOptions());
    EXPECT_DEATH(node.package(2), "out of range");
    const auto profile = wmma::mfmaLoopProfile(*mixedInst(), 10, 1);
    EXPECT_DEATH(node.runEverywhere(profile, 3), "cannot run on");
}

} // namespace
} // namespace sim
} // namespace mc
