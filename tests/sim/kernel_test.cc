/**
 * @file
 * Tests of the kernel-profile bookkeeping.
 */

#include <gtest/gtest.h>

#include "sim/kernel.hh"

namespace mc {
namespace sim {
namespace {

const arch::MfmaInstruction *
inst(const char *mnemonic)
{
    const arch::MfmaInstruction *p =
        arch::findInstruction(arch::GpuArch::Cdna2, mnemonic);
    EXPECT_NE(p, nullptr) << mnemonic;
    return p;
}

TEST(KernelProfile, MfmaFlopsScaleWithWavefronts)
{
    KernelProfile p;
    p.numWavefronts = 10;
    p.addMfma(inst("v_mfma_f32_16x16x16_f16"), 100);
    // 100 insts x 8192 flops x 10 wavefronts.
    EXPECT_DOUBLE_EQ(p.mfmaFlops(), 100.0 * 8192.0 * 10.0);
    EXPECT_EQ(p.mfmaInstsPerWavefront(), 100u);
}

TEST(KernelProfile, SimdFlopsFromSegments)
{
    KernelProfile p;
    // 50 FMA instructions, 2 flops per thread, 64 threads.
    p.addValu(arch::DataType::F32, ValuOp::Fma, 50, 2);
    EXPECT_DOUBLE_EQ(p.simdFlops(), 50.0 * 2.0 * 64.0);
    // Xfer contributes no flops.
    p.addValu(arch::DataType::F16, ValuOp::Xfer, 100, 0);
    EXPECT_DOUBLE_EQ(p.simdFlops(), 50.0 * 2.0 * 64.0);
}

TEST(KernelProfile, DominantTypePicksLargestFlopVolume)
{
    KernelProfile p;
    p.numWavefronts = 1;
    p.addMfma(inst("v_mfma_f64_16x16x4_f64"), 10);  // 20480 flops
    p.addMfma(inst("v_mfma_f32_16x16x16_f16"), 100); // 819200 flops
    EXPECT_EQ(p.dominantType(), arch::DataType::F16);
}

TEST(KernelProfile, DominantTypeConsidersValuWork)
{
    KernelProfile p;
    // An HGEMM-style SIMD-only kernel.
    p.addValu(arch::DataType::F16, ValuOp::Fma, 1000, 4);
    EXPECT_EQ(p.dominantType(), arch::DataType::F16);
}

TEST(KernelProfile, DominantTypeDefaultsToF32)
{
    KernelProfile p;
    EXPECT_EQ(p.dominantType(), arch::DataType::F32);
}

TEST(KernelProfile, ExpectedCountersMatchSegments)
{
    KernelProfile p;
    p.numWavefronts = 4;
    p.addMfma(inst("v_mfma_f64_16x16x4_f64"), 3);
    p.addValu(arch::DataType::F64, ValuOp::Add, 17, 1);

    const HwCounters c = p.expectedCounters();
    // 3 insts x 4 wavefronts x 2048 ops / 512.
    EXPECT_EQ(c.mops(arch::DataType::F64), 48u);
    EXPECT_EQ(c.mfmaInstructions, 12u);
    EXPECT_EQ(c.valuCount(arch::DataType::F64, ValuOp::Add), 17u);
}

TEST(KernelProfile, CountersOverrideWins)
{
    KernelProfile p;
    p.numWavefronts = 4;
    p.addMfma(inst("v_mfma_f64_16x16x4_f64"), 3);
    HwCounters exact;
    exact.addMfmaOps(arch::DataType::F64, 512 * 11, 11);
    p.countersOverride = exact;
    EXPECT_EQ(p.expectedCounters().mops(arch::DataType::F64), 11u);
}

TEST(KernelProfile, MfmaFlopsOverrideWins)
{
    KernelProfile p;
    p.numWavefronts = 4;
    p.addMfma(inst("v_mfma_f64_16x16x4_f64"), 3);
    p.mfmaFlopsOverride = 12345.0;
    EXPECT_DOUBLE_EQ(p.mfmaFlops(), 12345.0);
}

TEST(KernelProfileDeathTest, NullInstructionPanics)
{
    KernelProfile p;
    EXPECT_DEATH(p.addMfma(nullptr, 1), "requires an instruction");
}

} // namespace
} // namespace sim
} // namespace mc
