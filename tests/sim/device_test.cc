/**
 * @file
 * Tests of the device models: scheduling phases, issue intervals,
 * throughput scaling (Eq. 2), DVFS throttling, and the A100 comparison
 * device.
 */

#include <gtest/gtest.h>

#include "sim/device.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace sim {
namespace {

SimOptions
quietOptions()
{
    SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

const arch::MfmaInstruction *
cdna2Inst(const char *mnemonic)
{
    const arch::MfmaInstruction *p =
        arch::findInstruction(arch::GpuArch::Cdna2, mnemonic);
    EXPECT_NE(p, nullptr);
    return p;
}

TEST(SchedulePhases, CeilSemantics)
{
    EXPECT_EQ(schedulePhases(0, 440), 1u);
    EXPECT_EQ(schedulePhases(1, 440), 1u);
    EXPECT_EQ(schedulePhases(440, 440), 1u);
    EXPECT_EQ(schedulePhases(441, 440), 2u);
    EXPECT_EQ(schedulePhases(660, 440), 2u); // the paper's example
    EXPECT_EQ(schedulePhases(880, 440), 2u);
    EXPECT_EQ(schedulePhases(881, 440), 3u);
}

TEST(Mi250x, SingleWavefrontMeasuresRawLatency)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    for (const char *name : {"v_mfma_f32_16x16x16_f16",
                             "v_mfma_f32_16x16x4_f32",
                             "v_mfma_f64_16x16x4_f64"}) {
        const auto profile =
            wmma::mfmaLoopProfile(*cdna2Inst(name), 1000000, 1);
        const KernelResult r = gpu.runOnGcd(profile);
        const double cycles_per_inst =
            r.seconds * r.effClockHz / 1000000.0;
        EXPECT_NEAR(cycles_per_inst, 32.0, 0.5) << name;
    }
}

TEST(Mi250x, WideShapesMeasure64Cycles)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    for (const char *name :
         {"v_mfma_f32_32x32x2_f32", "v_mfma_f32_32x32x8_f16"}) {
        const auto profile =
            wmma::mfmaLoopProfile(*cdna2Inst(name), 1000000, 1);
        const KernelResult r = gpu.runOnGcd(profile);
        EXPECT_NEAR(r.seconds * r.effClockHz / 1000000.0, 64.0, 0.5)
            << name;
    }
}

TEST(Mi250x, ThroughputScalesLinearlyBelowSaturation)
{
    // Eq. 2's linear region: doubling wavefronts doubles throughput.
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    double prev = 0.0;
    for (std::uint64_t wf : {4, 8, 16, 32, 64, 128}) {
        const KernelResult r =
            gpu.runOnGcd(wmma::mfmaLoopProfile(*inst, 100000, wf));
        if (prev > 0.0) {
            EXPECT_NEAR(r.throughput() / prev, 2.0, 0.05);
        }
        prev = r.throughput();
    }
}

TEST(Mi250x, PlateausMatchPaperFig3)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const struct { const char *name; double tflops; } rows[] = {
        {"v_mfma_f32_16x16x16_f16", 175.0},
        {"v_mfma_f32_16x16x4_f32", 43.6},
        {"v_mfma_f64_16x16x4_f64", 41.0},
    };
    for (const auto &row : rows) {
        const KernelResult r = gpu.runOnGcd(
            wmma::mfmaLoopProfile(*cdna2Inst(row.name), 1000000, 440));
        EXPECT_NEAR(r.throughput() / 1e12, row.tflops, row.tflops * 0.01)
            << row.name;
    }
}

TEST(Mi250x, PhaseQuantizationAt660Wavefronts)
{
    // Section V-B's example: 660 wavefronts run as 440 + 220, so the
    // delivered throughput is 660/880 = 75% of the plateau.
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const KernelResult full =
        gpu.runOnGcd(wmma::mfmaLoopProfile(*inst, 1000000, 440));
    const KernelResult uneven =
        gpu.runOnGcd(wmma::mfmaLoopProfile(*inst, 1000000, 660));
    EXPECT_EQ(uneven.phases, 2u);
    EXPECT_NEAR(uneven.throughput() / full.throughput(), 0.75, 0.01);
}

TEST(Mi250x, MultiplesOf440KeepThePlateau)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const KernelResult r440 =
        gpu.runOnGcd(wmma::mfmaLoopProfile(*inst, 1000000, 440));
    const KernelResult r1760 =
        gpu.runOnGcd(wmma::mfmaLoopProfile(*inst, 1000000, 1760));
    EXPECT_NEAR(r1760.throughput() / r440.throughput(), 1.0, 0.01);
    EXPECT_EQ(r1760.phases, 4u);
}

TEST(Mi250x, TwoGcdFp64ThrottlesToPaperNumbers)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f64_16x16x4_f64");
    const KernelResult r =
        gpu.run(wmma::mfmaLoopProfile(*inst, 1000000, 440), {0, 1});
    EXPECT_TRUE(r.throttled);
    EXPECT_LT(r.effClockHz, 1.7e9);
    EXPECT_NEAR(r.throughput() / 1e12, 69.9, 1.0); // paper: 69
    EXPECT_NEAR(r.avgPowerW, 541.0, 2.0);          // paper: 541 W
}

TEST(Mi250x, TwoGcdMixedAndFloatDoNotThrottle)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const struct { const char *name; double tflops; } rows[] = {
        {"v_mfma_f32_16x16x16_f16", 350.0}, // paper: 350
        {"v_mfma_f32_16x16x4_f32", 87.2},   // paper: 88
    };
    for (const auto &row : rows) {
        const KernelResult r = gpu.run(
            wmma::mfmaLoopProfile(*cdna2Inst(row.name), 1000000, 440),
            {0, 1});
        EXPECT_FALSE(r.throttled) << row.name;
        EXPECT_NEAR(r.throughput() / 1e12, row.tflops, row.tflops * 0.01)
            << row.name;
        EXPECT_LT(r.avgPowerW, 400.0) << row.name;
    }
}

TEST(Mi250x, DvfsDisabledRemovesThrottle)
{
    SimOptions opts = quietOptions();
    opts.enableDvfs = false;
    Mi250x gpu(arch::defaultCdna2(), opts);
    const auto *inst = cdna2Inst("v_mfma_f64_16x16x4_f64");
    const KernelResult r =
        gpu.run(wmma::mfmaLoopProfile(*inst, 1000000, 440), {0, 1});
    EXPECT_FALSE(r.throttled);
    EXPECT_NEAR(r.throughput() / 1e12, 2 * 41.0, 1.0);
    // The unconstrained power would exceed the regulation target.
    EXPECT_GT(r.avgPowerW, 541.0);
}

TEST(Mi250x, NoiseDisabledIsDeterministic)
{
    Mi250x a(arch::defaultCdna2(), quietOptions());
    Mi250x b(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const auto profile = wmma::mfmaLoopProfile(*inst, 100000, 128);
    EXPECT_DOUBLE_EQ(a.runOnGcd(profile).seconds,
                     b.runOnGcd(profile).seconds);
}

TEST(Mi250x, NoiseEnabledVariesRunToRun)
{
    SimOptions opts;
    opts.enableNoise = true;
    opts.noiseSigma = 0.01;
    Mi250x gpu(arch::defaultCdna2(), opts);
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const auto profile = wmma::mfmaLoopProfile(*inst, 100000, 128);
    const double t1 = gpu.runOnGcd(profile).seconds;
    const double t2 = gpu.runOnGcd(profile).seconds;
    EXPECT_NE(t1, t2);
    EXPECT_NEAR(t1 / t2, 1.0, 0.1);
}

TEST(Mi250x, TimelineAdvancesAndTraceRecords)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    EXPECT_DOUBLE_EQ(gpu.timelineSec(), 0.0);
    gpu.idle(1.0);
    EXPECT_DOUBLE_EQ(gpu.timelineSec(), 1.0);
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const KernelResult r =
        gpu.runOnGcd(wmma::mfmaLoopProfile(*inst, 1000000, 440));
    EXPECT_DOUBLE_EQ(gpu.timelineSec(), r.endSec);
    EXPECT_GT(r.endSec, 1.0);
    EXPECT_NEAR(gpu.trace().wattsAt(r.startSec + r.seconds / 2),
                r.avgPowerW, 1e-6);
    EXPECT_DOUBLE_EQ(gpu.trace().wattsAt(0.5), 88.0);
}

TEST(Mi250x, CountersScaleWithActiveGcds)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const auto profile = wmma::mfmaLoopProfile(*inst, 1000, 4);
    const KernelResult one = gpu.runOnGcd(profile);
    const KernelResult two = gpu.run(profile, {0, 1});
    EXPECT_EQ(two.counters.mops(arch::DataType::F16),
              2 * one.counters.mops(arch::DataType::F16));
}

TEST(Mi250xDeathTest, InvalidGcdListsPanic)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const auto profile = wmma::mfmaLoopProfile(*inst, 10, 1);
    EXPECT_DEATH(gpu.run(profile, {}), "at least one GCD");
    EXPECT_DEATH(gpu.run(profile, {2}), "out of range");
    EXPECT_DEATH(gpu.run(profile, {0, 0}), "duplicate GCD");
}

TEST(Mi250xDeathTest, AmpereInstructionRejected)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const arch::MfmaInstruction *inst =
        arch::findInstruction(arch::GpuArch::Ampere, "mma.m8n8k4.f64");
    ASSERT_NE(inst, nullptr);
    const auto profile = wmma::mfmaLoopProfile(*inst, 10, 1);
    EXPECT_DEATH(gpu.runOnGcd(profile),
                 "Nvidia Ampere instruction on a AMD CDNA2 device");
}

TEST(Mi250x, MeasureKernelMatchesRunWithoutSideEffects)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f32_16x16x16_f16");
    const auto profile = wmma::mfmaLoopProfile(*inst, 1000000, 440);

    const KernelResult measured = gpu.measureKernel(profile);
    // No timeline or trace mutation.
    EXPECT_DOUBLE_EQ(gpu.timelineSec(), 0.0);
    EXPECT_DOUBLE_EQ(gpu.trace().endSec(), 0.0);

    const KernelResult ran = gpu.runOnGcd(profile);
    EXPECT_DOUBLE_EQ(measured.seconds, ran.seconds);
    EXPECT_DOUBLE_EQ(measured.throughput(), ran.throughput());
    // Single-GCD power accounting matches the synchronous path.
    EXPECT_DOUBLE_EQ(measured.avgPowerW, ran.avgPowerW);
}

TEST(Mi250x, MeasureKernelReportsSingleGcdPower)
{
    Mi250x gpu(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2Inst("v_mfma_f64_16x16x4_f64");
    const KernelResult r =
        gpu.measureKernel(wmma::mfmaLoopProfile(*inst, 1000000, 440));
    // base(1 GCD) + 5.88 W/TFLOPS x ~41 TFLOPS ~ 350 W: no throttle
    // on a single die.
    EXPECT_NEAR(r.avgPowerW, 109.0 + 5.88 * 41.0, 3.0);
    EXPECT_FALSE(r.throttled);
}

TEST(A100, PeaksMatchPaperFig4)
{
    A100 gpu(arch::defaultAmpere(), quietOptions());
    const struct { const char *name; double tflops; } rows[] = {
        {"mma.m16n8k16.f32.f16", 290.0}, // paper: 290
        {"mma.m8n8k4.f64", 19.4},        // paper: 19.4
    };
    for (const auto &row : rows) {
        const arch::MfmaInstruction *inst =
            arch::findInstruction(arch::GpuArch::Ampere, row.name);
        ASSERT_NE(inst, nullptr);
        const KernelResult r =
            gpu.run(wmma::mfmaLoopProfile(*inst, 1000000, 432));
        EXPECT_NEAR(r.throughput() / 1e12, row.tflops, row.tflops * 0.01)
            << row.name;
    }
}

TEST(A100DeathTest, RejectsValuAndCdna2Work)
{
    A100 gpu(arch::defaultAmpere(), quietOptions());
    KernelProfile with_valu;
    with_valu.addValu(arch::DataType::F32, ValuOp::Add, 1, 1);
    EXPECT_DEATH(gpu.run(with_valu), "Tensor Core profiles");

    const auto *cdna = arch::findInstruction(arch::GpuArch::Cdna2,
                                             "v_mfma_f64_16x16x4_f64");
    ASSERT_NE(cdna, nullptr);
    EXPECT_DEATH(gpu.run(wmma::mfmaLoopProfile(*cdna, 10, 1)),
                 "non-Ampere");
}

} // namespace
} // namespace sim
} // namespace mc
