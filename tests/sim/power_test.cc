/**
 * @file
 * Tests of the power model (Eq. 3) and the power trace.
 */

#include <gtest/gtest.h>

#include "sim/power.hh"

namespace mc {
namespace sim {
namespace {

TEST(PowerModel, Eq3BothGcds)
{
    const PowerModel model(arch::defaultCdna2());
    // PC = 5.88*Th + 130 for double (Th in TFLOPS, both GCDs active).
    EXPECT_NEAR(model.activeWatts(arch::DataType::F64, 2, 41e12),
                5.88 * 41 + 130.0, 1e-9);
    EXPECT_NEAR(model.activeWatts(arch::DataType::F32, 2, 88e12),
                2.18 * 88 + 125.5, 1e-9);
    EXPECT_NEAR(model.activeWatts(arch::DataType::F16, 2, 350e12),
                0.61 * 350 + 123.0, 1e-9);
}

TEST(PowerModel, SingleGcdBaseSplitsAboveIdle)
{
    const PowerModel model(arch::defaultCdna2());
    // One active GCD carries half the above-idle base.
    const double base1 = model.baseWatts(arch::DataType::F64, 1);
    EXPECT_NEAR(base1, 88.0 + (130.0 - 88.0) / 2.0, 1e-9);
    EXPECT_NEAR(model.baseWatts(arch::DataType::F64, 0), 88.0, 1e-9);
    EXPECT_NEAR(model.baseWatts(arch::DataType::F64, 2), 130.0, 1e-9);
}

TEST(PowerModel, PaperPeakPowers)
{
    const PowerModel model(arch::defaultCdna2());
    // Section VI: 338 W at the float peak, 319 W at the mixed peak,
    // 541 W at the double peak.
    EXPECT_NEAR(model.activeWatts(arch::DataType::F32, 2, 88e12), 317.3,
                1.0); // paper rounds to 338/319; model places f32 ~317
    EXPECT_NEAR(model.activeWatts(arch::DataType::F16, 2, 320e12), 318.2,
                1.0);
    EXPECT_NEAR(model.activeWatts(arch::DataType::F64, 2, 69.9e12),
                541.0, 1.0);
}

TEST(PowerModel, GovernorTargetBelowCap)
{
    const PowerModel model(arch::defaultCdna2());
    EXPECT_LT(model.governorTargetWatts(), model.capWatts());
    EXPECT_DOUBLE_EQ(model.capWatts(), 560.0);
}

TEST(PowerTrace, WattsAtLooksUpSegments)
{
    PowerTrace trace(88.0);
    trace.addSegment(1.0, 2.0, 300.0);
    trace.addSegment(3.0, 4.0, 500.0);
    EXPECT_DOUBLE_EQ(trace.wattsAt(0.5), 88.0);  // before anything
    EXPECT_DOUBLE_EQ(trace.wattsAt(1.5), 300.0); // inside first
    EXPECT_DOUBLE_EQ(trace.wattsAt(2.5), 88.0);  // gap is idle
    EXPECT_DOUBLE_EQ(trace.wattsAt(3.999), 500.0);
    EXPECT_DOUBLE_EQ(trace.wattsAt(10.0), 88.0); // after everything
}

TEST(PowerTrace, AverageIntegratesAcrossGaps)
{
    PowerTrace trace(100.0);
    trace.addSegment(0.0, 1.0, 300.0);
    // [0,2): 1 s at 300 W + 1 s idle at 100 W -> 200 W average.
    EXPECT_NEAR(trace.averageWatts(0.0, 2.0), 200.0, 1e-9);
}

TEST(PowerTrace, EnergyIntegration)
{
    PowerTrace trace(88.0);
    trace.addSegment(1.0, 3.0, 500.0);
    // [0,4): 1 s idle + 2 s at 500 + 1 s idle.
    EXPECT_NEAR(trace.energyJoules(0.0, 4.0), 88.0 + 1000.0 + 88.0, 1e-9);
}

TEST(PowerTrace, PartialOverlapIntegration)
{
    PowerTrace trace(0.0);
    trace.addSegment(0.0, 10.0, 100.0);
    EXPECT_NEAR(trace.energyJoules(2.5, 7.5), 500.0, 1e-9);
}

TEST(PowerTrace, EndSec)
{
    PowerTrace trace(88.0);
    EXPECT_DOUBLE_EQ(trace.endSec(), 0.0);
    trace.addSegment(0.0, 2.5, 200.0);
    EXPECT_DOUBLE_EQ(trace.endSec(), 2.5);
}

TEST(PowerTraceDeathTest, OutOfOrderSegmentsPanic)
{
    PowerTrace trace(88.0);
    trace.addSegment(1.0, 2.0, 300.0);
    EXPECT_DEATH(trace.addSegment(0.5, 1.5, 300.0), "time order");
    EXPECT_DEATH(trace.addSegment(3.0, 2.5, 300.0), "ends before");
}

} // namespace
} // namespace sim
} // namespace mc
