/**
 * @file
 * End-to-end integration tests pinning the paper's headline results:
 * each test reproduces one quantitative claim of the evaluation using
 * the full stack (wmma -> hip -> sim, blas -> sim, smi over the trace).
 */

#include <gtest/gtest.h>

#include "blas/gemm.hh"
#include "common/stats.hh"
#include "hip/runtime.hh"
#include "prof/profiler.hh"
#include "smi/smi.hh"
#include "wmma/recorder.hh"

namespace mc {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

const arch::MfmaInstruction *
cdna2(const char *mnemonic)
{
    const auto *inst =
        arch::findInstruction(arch::GpuArch::Cdna2, mnemonic);
    EXPECT_NE(inst, nullptr);
    return inst;
}

TEST(PaperSectionV, Eq2ModelTracksSimulatedThroughput)
{
    // FLOPS(N_WF) = 2mnk/c * min(N_WF, 440) * f, validated within the
    // percentages the paper reports (85-92% at the plateau).
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2("v_mfma_f32_16x16x16_f16");
    const double f = 1.7e9;

    for (std::uint64_t wf : {4u, 16u, 64u, 256u, 440u, 880u}) {
        const auto r =
            rt.launch(wmma::mfmaLoopProfile(*inst, 1000000, wf), 0);
        const double model =
            2.0 * 16 * 16 * 16 / 32.0 * std::min<double>(wf, 440) * f;
        const double ratio = r.throughput() / model;
        EXPECT_GT(ratio, 0.85) << wf;
        EXPECT_LE(ratio, 1.001) << wf;
    }
}

TEST(PaperSectionV, Fig4PeakTable)
{
    // One MI250X package vs one A100, all supported combos.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    const auto amd = [&](const char *name) {
        return rt.launchMulti(wmma::mfmaLoopProfile(*cdna2(name), 1000000,
                                                    440), {0, 1})
                   .throughput() / 1e12;
    };
    EXPECT_NEAR(amd("v_mfma_f32_16x16x16_f16"), 350.0, 4.0);
    EXPECT_NEAR(amd("v_mfma_f32_16x16x4_f32"), 87.2, 1.0);
    EXPECT_NEAR(amd("v_mfma_f64_16x16x4_f64"), 69.9, 1.0);

    sim::A100 a100(arch::defaultAmpere(), quietOptions());
    const auto nv = [&](const char *name) {
        const auto *inst =
            arch::findInstruction(arch::GpuArch::Ampere, name);
        EXPECT_NE(inst, nullptr);
        return a100.run(wmma::mfmaLoopProfile(*inst, 1000000, 432))
                   .throughput() / 1e12;
    };
    EXPECT_NEAR(nv("mma.m16n8k16.f32.f16"), 290.0, 3.0);
    EXPECT_NEAR(nv("mma.m8n8k4.f64"), 19.4, 0.3);

    // The 3.5x double-precision advantage.
    EXPECT_NEAR(amd("v_mfma_f64_16x16x4_f64") / nv("mma.m8n8k4.f64"),
                3.5, 0.2);
}

TEST(PaperSectionVI, Eq3RecoveredFromSampledPower)
{
    // Sweep utilization, sample power through the SMI path, and fit a
    // line: slope and intercept must recover the Eq. 3 coefficients.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    const auto *inst = cdna2("v_mfma_f64_16x16x4_f64");

    std::vector<double> th_tflops, watts;
    for (std::uint64_t wf : {40u, 80u, 160u, 240u, 320u, 400u}) {
        // Long-running kernel so the sampler gets >= 1000 samples
        // (the paper sizes kernels to >= 100 s of sampling).
        const auto r = rt.launchMulti(
            wmma::mfmaLoopProfile(*inst, 6000000000ull, wf), {0, 1});
        smi::PowerSensor sensor(rt.gpu().trace(), 0.05, 1.5);
        smi::PowerSampler sampler(sensor, 0.1);
        const auto samples =
            sampler.sampleInterval(r.startSec + 0.2, r.endSec);
        ASSERT_GE(samples.size(), 1000u);
        th_tflops.push_back(r.throughput() / 1e12);
        watts.push_back(smi::meanWatts(samples).value());
    }
    const LinearFit fit = fitLinear(th_tflops, watts);
    EXPECT_NEAR(fit.slope, 5.88, 0.15);
    EXPECT_NEAR(fit.intercept, 130.0, 3.0);
    EXPECT_GT(fit.r2, 0.999);
}

TEST(PaperSectionVI, PowerEfficiencyOrdering)
{
    // Mixed ~1020, float ~273, double ~127 GFLOPS/W at their peaks:
    // check the ordering and rough magnitudes.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    const auto efficiency = [&](const char *name) {
        const auto r = rt.launchMulti(
            wmma::mfmaLoopProfile(*cdna2(name), 1000000, 440), {0, 1});
        return r.throughput() / r.avgPowerW / 1e9; // GFLOPS/W
    };
    const double mixed = efficiency("v_mfma_f32_16x16x16_f16");
    const double single = efficiency("v_mfma_f32_16x16x4_f32");
    const double dbl = efficiency("v_mfma_f64_16x16x4_f64");

    EXPECT_NEAR(mixed, 1040.0, 60.0);  // paper: 1020
    EXPECT_NEAR(single, 276.0, 20.0);  // paper: 273
    EXPECT_NEAR(dbl, 129.0, 10.0);     // paper: 127
    EXPECT_NEAR(single / dbl, 2.0, 0.3);   // "approximately two times"
    EXPECT_NEAR(mixed / single, 3.7, 0.4); // "3.7x higher"
}

TEST(PaperSectionVI, Fp64PeakApproachesPowerCap)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    const auto r = rt.launchMulti(
        wmma::mfmaLoopProfile(*cdna2("v_mfma_f64_16x16x4_f64"), 1000000,
                              440), {0, 1});
    EXPECT_NEAR(r.avgPowerW, 541.0, 2.0);
    EXPECT_LT(r.avgPowerW, 560.0);
    // 69.9/95.7 = 73% of theoretical peak vs 85.6% on one GCD.
    const auto one = rt.launch(
        wmma::mfmaLoopProfile(*cdna2("v_mfma_f64_16x16x4_f64"), 1000000,
                              440), 0);
    EXPECT_NEAR(one.throughput() / 47.87e12, 0.856, 0.01);
    EXPECT_NEAR(r.throughput() / 95.7e12, 0.73, 0.01);
}

TEST(PaperSectionVII, RocBlasNearPeakFractions)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    blas::GemmEngine engine(rt);
    const auto run = [&](blas::GemmCombo combo, std::size_t n) {
        blas::GemmConfig cfg;
        cfg.combo = combo;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;
        auto r = engine.run(cfg);
        EXPECT_TRUE(r.isOk());
        return r.take().throughput() / 1e12;
    };
    // "rocBLAS reaches almost 100% and 90% of the peak performance" of
    // the micro-benchmark plateaus (43.6 and 41 TFLOPS).
    EXPECT_GT(run(blas::GemmCombo::Sgemm, 8192) / 43.6, 0.95);
    EXPECT_GT(run(blas::GemmCombo::Dgemm, 4096) / 41.0, 0.85);
    // "155 TFLOPS ... 88% of the peak attainable on one GCD".
    EXPECT_NEAR(run(blas::GemmCombo::Hhs, 16384) / 175.0, 0.86, 0.04);
}

TEST(PaperSectionVII, Fig8FractionCurve)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    blas::GemmEngine engine(rt);
    const auto fraction = [&](blas::GemmCombo combo, std::size_t n) {
        blas::GemmConfig cfg;
        cfg.combo = combo;
        cfg.m = cfg.n = cfg.k = n;
        cfg.alpha = cfg.beta = 0.1;
        auto r = engine.run(cfg);
        EXPECT_TRUE(r.isOk());
        return prof::flopBreakdown(r.take().kernel.counters)
            .matrixCoreFraction();
    };
    for (blas::GemmCombo combo :
         {blas::GemmCombo::Sgemm, blas::GemmCombo::Dgemm,
          blas::GemmCombo::Hhs, blas::GemmCombo::Hss}) {
        EXPECT_GT(fraction(combo, 32), 0.90);
        EXPECT_GT(fraction(combo, 512), 0.99);
    }
    EXPECT_EQ(fraction(blas::GemmCombo::Hgemm, 512), 0.0);
    EXPECT_EQ(fraction(blas::GemmCombo::Hhs, 16), 0.0);
    EXPECT_EQ(fraction(blas::GemmCombo::Hss, 16), 0.0);
}

TEST(PaperSectionVII, RepeatedMeasurementsAreStable)
{
    // The paper repeats each experiment >= 10 times and reports error
    // bounds when variance exceeds 2%; with the default noise model the
    // spread must stay well inside that.
    sim::SimOptions opts; // noise enabled
    hip::Runtime rt(arch::defaultCdna2(), opts);
    const auto *inst = cdna2("v_mfma_f32_16x16x16_f16");
    std::vector<double> runs;
    for (int i = 0; i < 10; ++i) {
        runs.push_back(
            rt.launch(wmma::mfmaLoopProfile(*inst, 1000000, 440), 0)
                .throughput());
    }
    EXPECT_LT(summarize(runs).relativeSpread(), 0.02);
}

} // namespace
} // namespace mc
