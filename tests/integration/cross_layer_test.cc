/**
 * @file
 * Cross-layer integration tests: each test drives a vertical slice of
 * the stack (wmma -> recorder -> hip -> sim; blas -> sim -> prof;
 * solver -> blas -> trace -> smi) and checks that the layers agree
 * about the same physical quantities — time, FLOPs, counters, energy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.hh"
#include "blas/level3.hh"
#include "blas/verify.hh"
#include "common/matrix.hh"
#include "common/random.hh"
#include "prof/profiler.hh"
#include "prof/roofline.hh"
#include "sim/node.hh"
#include "smi/smi.hh"
#include "solver/cholesky.hh"
#include "solver/lu.hh"
#include "wmma/wmma.hh"

namespace mc {
namespace {

sim::SimOptions
quietOptions()
{
    sim::SimOptions opts;
    opts.enableNoise = false;
    return opts;
}

TEST(CrossLayer, RecordedWmmaKernelTimesLikeHandBuiltProfile)
{
    // A kernel built by recording fragment code must time identically
    // to the equivalent hand-built loop profile.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());

    wmma::KernelRecorder::active().reset("recorded");
    Matrix<fp::Half> a(16, 16, fp::Half(1.0f)), b(16, 16);
    b.setIdentity();
    Matrix<float> c(16, 16, 0.0f);
    wmma::Fragment<wmma::FragmentUse::MatrixA, 16, 16, 16, fp::Half> fa;
    wmma::Fragment<wmma::FragmentUse::MatrixB, 16, 16, 16, fp::Half> fb;
    wmma::Fragment<wmma::FragmentUse::Accumulator, 16, 16, 16, float> fc;
    wmma::Fragment<wmma::FragmentUse::Accumulator, 16, 16, 16, float> fd;
    wmma::load_matrix_sync(fa, a.data(), 16);
    wmma::load_matrix_sync(fb, b.data(), 16);
    wmma::load_matrix_sync(fc, c.data(), 16);
    wmma::mma_sync(fd, fa, fb, fc);

    sim::KernelProfile recorded =
        wmma::KernelRecorder::active().buildProfile(440, 1000000);
    recorded.hbmReadBytes = 0.0; // compare the pure loop, as the bench
    recorded.hbmWriteBytes = 0.0;

    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x16_f16");
    const auto hand = wmma::mfmaLoopProfile(*inst, 1000000, 440);

    const auto r1 = rt.launch(recorded, 0);
    const auto r2 = rt.launch(hand, 0);
    EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
    EXPECT_EQ(r1.counters.mops(arch::DataType::F16),
              r2.counters.mops(arch::DataType::F16));
}

TEST(CrossLayer, GemmCountersFeedEq1AndRoofline)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    blas::GemmEngine engine(rt);

    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Hss;
    cfg.m = cfg.n = cfg.k = 2048;
    cfg.alpha = cfg.beta = 0.1;

    const blas::GemmPlan plan = engine.plan(cfg);
    auto result = engine.run(cfg);
    ASSERT_TRUE(result.isOk());

    // Eq. 1 over the run's counters reproduces the algorithmic FLOPs.
    const auto split = prof::flopBreakdown(result.value().kernel.counters);
    EXPECT_DOUBLE_EQ(split.matrixCoreFlops, 2.0 * 2048 * 2048 * 2048);
    EXPECT_DOUBLE_EQ(split.simdFlops, 3.0 * 2048 * 2048);

    // The roofline classifies the same run as compute-bound at this
    // size and its achieved rate stays below attainable.
    const prof::RooflineModel roofline(rt.gpu().calibration());
    const auto point =
        roofline.classify(plan.profile, result.value().kernel);
    EXPECT_FALSE(point.memoryBound);
    EXPECT_LE(point.achieved, point.attainable * 1.001);
    // And the verifier agrees the mapping computes correct numbers.
    blas::GemmConfig small = cfg;
    small.m = small.n = small.k = 64;
    EXPECT_TRUE(blas::verifyGemm(small).passed);
}

TEST(CrossLayer, SolverEnergyMatchesPowerTrace)
{
    // The LU solver's accumulated GEMM energy must equal the package
    // trace's energy over the same interval, minus nothing (its GEMM
    // launches are the only activity).
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    blas::GemmEngine engine(rt);
    solver::LuSolver lu(engine, 128);

    Rng rng(3001);
    const std::size_t n = 384;
    Matrix<double> a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = rng.uniform(-1.0, 1.0);
            row += std::fabs(a(i, j));
        }
        a(i, i) += row + 1.0;
    }

    const double t0 = rt.gpu().timelineSec();
    std::vector<int> pivots;
    solver::SolveStats stats;
    ASSERT_TRUE(lu.factor(a, pivots, &stats).isOk());
    const double t1 = rt.gpu().timelineSec();

    const double trace_energy = rt.gpu().trace().energyJoules(t0, t1);
    // The trace interval includes only the solver's kernels; both
    // accountings integrate power x time over the same segments.
    EXPECT_NEAR(stats.gemmEnergyJ, trace_energy,
                1e-6 * std::max(1.0, trace_energy));
    EXPECT_NEAR(stats.gemmSeconds, t1 - t0, 1e-12);
}

TEST(CrossLayer, CholeskyTrailingUpdateCostsHalfOfLuAtScale)
{
    // One trailing update at production scale: Cholesky's SYRK (n^2 k
    // FLOPs) must cost roughly half of LU's full GEMM (2 n^2 k FLOPs)
    // on the device. At small sizes launch latency hides this, which
    // is why the comparison runs at HPC scale, timing-only.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    blas::GemmEngine engine(rt);
    blas::Level3Engine level3(engine);

    const std::size_t trailing = 15360, panel = 1024;

    blas::GemmConfig gemm;
    gemm.combo = blas::GemmCombo::Dgemm;
    gemm.m = gemm.n = trailing;
    gemm.k = panel;
    gemm.alpha = -1.0;
    gemm.beta = 1.0;
    auto lu_update = engine.run(gemm);
    ASSERT_TRUE(lu_update.isOk());

    blas::SyrkConfig syrk;
    syrk.combo = blas::GemmCombo::Dgemm;
    syrk.n = trailing;
    syrk.k = panel;
    syrk.alpha = -1.0;
    syrk.beta = 1.0;
    auto chol_update = level3.runSyrk(syrk);
    ASSERT_TRUE(chol_update.isOk());

    const double ratio = chol_update.value().kernel.seconds /
                         lu_update.value().kernel.seconds;
    EXPECT_GT(ratio, 0.35);
    EXPECT_LT(ratio, 0.75);
}

TEST(CrossLayer, AsyncTraceCrossValidatesWithPmCounters)
{
    // SMI sampler and pm_counters read the *same* merged async trace
    // and must agree — the paper's instrument cross-validation on the
    // stream path.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    hip::Stream s0(rt, 0), s1(rt, 1);
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f32_16x16x4_f32");
    const auto profile = wmma::mfmaLoopProfile(*inst, 3000000000ull, 440);
    const auto r0 = s0.launch(profile);
    s1.launch(profile);

    smi::PowerSensor sensor(rt.asyncTrace(), 0.05, 1.0);
    smi::PowerSampler sampler(sensor, 0.1);
    const auto samples =
        sampler.sampleInterval(r0.startSec + 1.0, r0.endSec - 1.0);
    ASSERT_GE(samples.size(), 100u);

    smi::PmCounters pm(rt.asyncTrace());
    const double pm_avg =
        pm.averageWatts(r0.startSec + 1.0, r0.endSec - 1.0);
    EXPECT_NEAR(smi::meanWatts(samples).value(), pm_avg, 1.0);
}

TEST(CrossLayer, NodeOfMi100sRunsTheGenerationalStack)
{
    // The node model composes with the CDNA1 calibration: a 2-package
    // MI100 node executes CDNA1 kernels with its own peaks.
    sim::Node node(2, arch::mi100Calibration(), quietOptions());
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna1, "v_mfma_f32_16x16x16f16");
    ASSERT_NE(inst, nullptr);
    const auto r = node.runEverywhere(
        wmma::mfmaLoopProfile(*inst, 1000000, 480));
    EXPECT_NEAR(r.throughput() / 1e12, 2 * 168.7, 3.0);
    EXPECT_DOUBLE_EQ(node.idlePowerW(), 2 * 40.0);
}

TEST(CrossLayer, BatchedGemmThroughLevel3Runtime)
{
    // Level-3 routines and batched GEMM share one runtime: device
    // memory accounting must stay consistent across interleaved use.
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    blas::GemmEngine engine(rt);
    blas::Level3Engine level3(engine);

    blas::GemmConfig gemm;
    gemm.combo = blas::GemmCombo::Hhs;
    gemm.m = gemm.n = gemm.k = 512;
    gemm.batchCount = 16;
    ASSERT_TRUE(engine.run(gemm).isOk());

    blas::TrsmConfig trsm;
    trsm.combo = blas::GemmCombo::Sgemm;
    trsm.m = 1024;
    trsm.n = 256;
    ASSERT_TRUE(level3.runTrsm(trsm).isOk());

    blas::GemvConfig gemv;
    gemv.combo = blas::GemmCombo::Dgemm;
    gemv.m = gemv.n = 4096;
    ASSERT_TRUE(level3.runGemv(gemv).isOk());

    EXPECT_EQ(rt.allocatedBytes(0), 0u);
    EXPECT_EQ(rt.allocatedBytes(1), 0u);
}

TEST(CrossLayer, ProfilerAggregatesAcrossWorkloadKinds)
{
    hip::Runtime rt(arch::defaultCdna2(), quietOptions());
    blas::GemmEngine engine(rt);
    prof::Profiler profiler;

    // One micro-benchmark kernel + one GEMM.
    const arch::MfmaInstruction *inst = arch::findInstruction(
        arch::GpuArch::Cdna2, "v_mfma_f64_16x16x4_f64");
    profiler.record(
        rt.launch(wmma::mfmaLoopProfile(*inst, 1000, 4, "micro"), 0));

    blas::GemmConfig cfg;
    cfg.combo = blas::GemmCombo::Dgemm;
    cfg.m = cfg.n = cfg.k = 256;
    cfg.alpha = cfg.beta = 0.1;
    auto result = engine.run(cfg);
    ASSERT_TRUE(result.isOk());
    profiler.record(result.value().kernel);

    const double total =
        prof::totalFlops(profiler.aggregate(), arch::DataType::F64);
    const double micro_flops = 2048.0 * 1000 * 4;
    const double gemm_flops = 2.0 * 256 * 256 * 256 + 3.0 * 256 * 256;
    EXPECT_DOUBLE_EQ(total, micro_flops + gemm_flops);
    EXPECT_EQ(profiler.byName("micro").size(), 1u);
    EXPECT_EQ(profiler.byName("dgemm_gemm").size(), 1u);
}

} // namespace
} // namespace mc
