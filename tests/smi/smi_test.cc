/**
 * @file
 * Tests of the SMI power sensor and sampler against known traces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "smi/smi.hh"

namespace mc {
namespace smi {
namespace {

sim::PowerTrace
constantTrace(double watts, double duration)
{
    sim::PowerTrace trace(88.0);
    trace.addSegment(0.0, duration, watts);
    return trace;
}

TEST(PowerSensor, ReadsConstantPowerAccurately)
{
    const auto trace = constantTrace(300.0, 10.0);
    PowerSensor sensor(trace, 0.05, /*noise=*/0.0);
    EXPECT_NEAR(sensor.averagePower(5.0), 300.0, 1.0 / 256.0);
}

TEST(PowerSensor, WindowSmoothsStepEdges)
{
    sim::PowerTrace trace(88.0);
    trace.addSegment(1.0, 2.0, 488.0);
    // Polled right at the step with a 0.1 s window: half idle (88) and
    // half active (488) -> about 288.
    PowerSensor sensor(trace, 0.1, 0.0);
    EXPECT_NEAR(sensor.averagePower(1.05), 288.0, 1.0);
}

TEST(PowerSensor, QuantizesTo1Over256W)
{
    const auto trace = constantTrace(100.1234, 10.0);
    PowerSensor sensor(trace, 0.05, 0.0);
    const double reading = sensor.averagePower(5.0);
    EXPECT_DOUBLE_EQ(reading * 256.0, std::round(reading * 256.0));
}

TEST(PowerSensor, NoiseIsBoundedAndZeroMean)
{
    const auto trace = constantTrace(300.0, 1000.0);
    PowerSensor sensor(trace, 0.05, 1.5);
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += sensor.averagePower(1.0 + i * 0.1);
    EXPECT_NEAR(sum / n, 300.0, 0.2);
}

TEST(PowerSampler, SampleCountMatchesPeriod)
{
    const auto trace = constantTrace(300.0, 200.0);
    PowerSensor sensor(trace, 0.05, 0.0);
    PowerSampler sampler(sensor, 0.1); // the paper's 100 ms
    const auto samples = sampler.sampleInterval(0.0, 100.0);
    // The paper gathers at least 1000 samples per kernel.
    EXPECT_EQ(samples.size(), 1000u);
    EXPECT_DOUBLE_EQ(samples.front().timeSec, 0.0);
    EXPECT_NEAR(samples.back().timeSec, 99.9, 1e-9);
}

TEST(PowerSampler, ShorterPeriodDeliversSimilarMean)
{
    // Section IV-C: 10 ms sampling gives the same results as 100 ms.
    const auto trace = constantTrace(421.0, 300.0);
    PowerSensor sensor_a(trace, 0.05, 1.5, 1);
    PowerSensor sensor_b(trace, 0.05, 1.5, 2);
    PowerSampler coarse(sensor_a, 0.1);
    PowerSampler fine(sensor_b, 0.01);
    const double mean_coarse =
        meanWatts(coarse.sampleInterval(10.0, 200.0)).value();
    const double mean_fine =
        meanWatts(fine.sampleInterval(10.0, 200.0)).value();
    EXPECT_NEAR(mean_coarse, mean_fine, 0.5);
}

TEST(MeanWatts, SimpleAverage)
{
    std::vector<PowerSample> samples{{0.0, 100.0}, {0.1, 200.0},
                                     {0.2, 300.0}};
    EXPECT_DOUBLE_EQ(meanWatts(samples).value(), 200.0);
}

TEST(Efficiency, FlopsPerWatt)
{
    std::vector<PowerSample> samples{{0.0, 320.0}, {0.1, 320.0}};
    // 350 TFLOPS at 320 W ~ 1094 GFLOPS/W (the paper's mixed-precision
    // headline is 1020 GFLOPS/W at its measured operating point).
    EXPECT_NEAR(efficiencyFlopsPerWatt(350e12, samples).value() / 1e9,
                350e12 / 320.0 / 1e9, 1e-6);
}

TEST(PmCounters, EnergyAccumulatesMonotonically)
{
    const auto trace = constantTrace(300.0, 100.0);
    PmCounters pm(trace);
    double prev = 0.0;
    for (double t = 0.0; t < 50.0; t += 0.37) {
        const double e = pm.energyJoules(t);
        EXPECT_GE(e, prev);
        prev = e;
    }
    // 10 s at 300 W = 3000 J (quantized to the 0.1 s update grid).
    EXPECT_NEAR(pm.energyJoules(10.0), 3000.0, 300.0 * 0.1 + 1e-9);
}

TEST(PmCounters, QuantizedToUpdatePeriod)
{
    const auto trace = constantTrace(200.0, 100.0);
    PmCounters pm(trace, 0.1);
    // Readings within one update period are identical.
    EXPECT_DOUBLE_EQ(pm.energyJoules(1.01), pm.energyJoules(1.09));
    EXPECT_LT(pm.energyJoules(1.09), pm.energyJoules(1.11));
}

TEST(PmCounters, CrossValidatesSmiSampler)
{
    // The paper's validation: SMI-sampled average power must agree
    // with the pm_counters energy-derived average.
    sim::PowerTrace trace(88.0);
    trace.addSegment(0.0, 150.0, 412.5);

    PowerSensor sensor(trace, 0.05, 1.5);
    PowerSampler sampler(sensor, 0.1);
    const double smi_avg =
        meanWatts(sampler.sampleInterval(10.0, 140.0)).value();

    PmCounters pm(trace);
    const double pm_avg = pm.averageWatts(10.0, 140.0);

    EXPECT_NEAR(smi_avg, pm_avg, 1.0);
    EXPECT_NEAR(pm_avg, 412.5, 0.01);
}

TEST(PmCounters, InstantaneousPower)
{
    sim::PowerTrace trace(88.0);
    trace.addSegment(1.0, 2.0, 300.0);
    PmCounters pm(trace, 0.1);
    EXPECT_DOUBLE_EQ(pm.powerWatts(0.5), 88.0);
    EXPECT_DOUBLE_EQ(pm.powerWatts(1.55), 300.0);
    EXPECT_DOUBLE_EQ(pm.powerWatts(3.0), 88.0);
}

TEST(PmCountersDeathTest, InvalidUse)
{
    const auto trace = constantTrace(100.0, 1.0);
    EXPECT_DEATH(PmCounters(trace, 0.0), "must be positive");
    PmCounters pm(trace);
    EXPECT_DEATH((void)pm.averageWatts(1.0, 1.05),
                 "at least one counter update");
}

TEST(SmiDeathTest, InvalidConstructionPanics)
{
    const auto trace = constantTrace(100.0, 1.0);
    EXPECT_DEATH(PowerSensor(trace, 0.0), "must be positive");
    PowerSensor sensor(trace, 0.05, 0.0);
    EXPECT_DEATH(PowerSampler(sensor, 0.0), "must be positive");
}

TEST(MeanWatts, EmptySampleSetIsUnavailableNotFatal)
{
    // Short kernels at the 100 ms period can legitimately record zero
    // samples; a measurement campaign must degrade, not die.
    const Result<double> r = meanWatts({});
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::Unavailable);

    const Result<double> eff = efficiencyFlopsPerWatt(1e12, {});
    ASSERT_FALSE(eff.isOk());
    EXPECT_EQ(eff.status().code(), ErrorCode::Unavailable);
}

TEST(MeanWatts, EnergyFallbackWhenSamplesEmpty)
{
    const auto trace = constantTrace(250.0, 100.0);
    const PmCounters pm(trace);
    const double watts = meanWattsOrEnergy({}, pm, 10.0, 90.0);
    EXPECT_NEAR(watts, 250.0, 1e-9);

    // With samples present the SMI mean wins.
    std::vector<PowerSample> samples{{0.0, 111.0}, {0.1, 113.0}};
    EXPECT_DOUBLE_EQ(meanWattsOrEnergy(samples, pm, 10.0, 90.0), 112.0);
}

TEST(PowerSampler, InjectedDropoutThinsSampleSet)
{
    const auto trace = constantTrace(300.0, 200.0);
    PowerSensor sensor(trace, 0.05, 0.0);
    PowerSampler sampler(sensor, 0.1);

    fault::Injector inj(
        fault::parseFaultSpec("smi_dropout=0.2").value(), 99);
    sampler.setFaultInjector(&inj);

    const auto samples = sampler.sampleInterval(0.0, 100.0);
    EXPECT_LT(samples.size(), 1000u);
    EXPECT_EQ(samples.size() + sampler.droppedPolls(), 1000u);
    EXPECT_EQ(inj.firedAt(fault::FaultSite::SmiDropout),
              sampler.droppedPolls());

    // Same spec + seed -> byte-identical sample set.
    PowerSensor sensor2(trace, 0.05, 0.0);
    PowerSampler sampler2(sensor2, 0.1);
    fault::Injector inj2(
        fault::parseFaultSpec("smi_dropout=0.2").value(), 99);
    sampler2.setFaultInjector(&inj2);
    const auto samples2 = sampler2.sampleInterval(0.0, 100.0);
    ASSERT_EQ(samples.size(), samples2.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(samples[i].timeSec, samples2[i].timeSec);
        EXPECT_DOUBLE_EQ(samples[i].watts, samples2[i].watts);
    }
}

TEST(PowerSampler, TotalDropoutYieldsEmptySetNotCrash)
{
    const auto trace = constantTrace(300.0, 10.0);
    PowerSensor sensor(trace, 0.05, 0.0);
    PowerSampler sampler(sensor, 0.1);
    fault::Injector inj(fault::parseFaultSpec("smi_dropout=1").value(), 1);
    sampler.setFaultInjector(&inj);

    const auto samples = sampler.sampleInterval(0.0, 5.0);
    EXPECT_TRUE(samples.empty());
    EXPECT_EQ(meanWatts(samples).status().code(), ErrorCode::Unavailable);
}

TEST(PowerSensor, InjectedStaleReadRepeatsPreviousValue)
{
    // A ramp trace makes consecutive readings distinct, so a repeated
    // value can only come from the stale path.
    sim::PowerTrace trace(88.0);
    for (int i = 0; i < 100; ++i)
        trace.addSegment(i * 1.0, (i + 1) * 1.0, 100.0 + 5.0 * i);

    PowerSensor sensor(trace, 0.05, 0.0);
    fault::Injector inj(fault::parseFaultSpec("smi_stale=1").value(), 3);
    sensor.setFaultInjector(&inj);

    const double first = sensor.averagePower(10.5); // primes the latch
    // Every subsequent poll is stale: the firmware never refreshes.
    EXPECT_DOUBLE_EQ(sensor.averagePower(20.5), first);
    EXPECT_DOUBLE_EQ(sensor.averagePower(30.5), first);
    EXPECT_EQ(inj.firedAt(fault::FaultSite::SmiStale), 2u);
}

} // namespace
} // namespace smi
} // namespace mc
