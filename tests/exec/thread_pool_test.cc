/**
 * @file
 * Tests of the fixed-size thread pool: FIFO dispatch, result and
 * exception propagation through futures, shutdown draining, and the
 * process-wide concurrency cap that keeps composed parallelism knobs
 * (sweep --jobs x --verify-threads) from oversubscribing the host.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hh"

namespace mc {
namespace exec {
namespace {

TEST(ThreadPool, RunsSubmittedTaskAndReturnsResult)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1);
    auto future = pool.submit([] { return 1; });
    EXPECT_EQ(future.get(), 1);
}

TEST(ThreadPool, SingleWorkerExecutesInSubmissionOrder)
{
    // With one worker the FIFO queue forces strict submission order.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &future : futures)
        future.get();

    std::vector<int> expected(32);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    auto good = pool.submit([] { return 7; });

    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "task failed");
                throw;
            }
        },
        std::runtime_error);
    // A throwing task must not take the pool down with it.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, ManyTasksAcrossWorkersAllComplete)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::atomic<int> sum{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&sum, i] {
            sum.fetch_add(1, std::memory_order_relaxed);
            return i * i;
        }));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(sum.load(), 200);
    EXPECT_EQ(pool.submittedCount(), 200u);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&completed] {
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        // No get(): the destructor must still run every queued task.
    }
    EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(SharedPool, ReturnsSamePoolForSatisfiableRequests)
{
    const std::shared_ptr<ThreadPool> two = sharedPool(2);
    ASSERT_NE(two, nullptr);
    EXPECT_GE(two->threadCount(), 2);
    // A smaller request reuses the existing pool.
    EXPECT_EQ(sharedPool(1).get(), two.get());
    EXPECT_EQ(sharedPool(2).get(), two.get());
}

TEST(SharedPool, GrowsByReplacementAndOldPoolStaysUsable)
{
    const std::shared_ptr<ThreadPool> small = sharedPool(2);
    const int bigger = small->threadCount() + 2;
    const std::shared_ptr<ThreadPool> grown = sharedPool(bigger);
    EXPECT_GE(grown->threadCount(), bigger);
    EXPECT_NE(grown.get(), small.get());
    // The replaced pool still runs tasks for holders of the old handle.
    EXPECT_EQ(small->submit([] { return 5; }).get(), 5);
    EXPECT_EQ(grown->submit([] { return 6; }).get(), 6);
}

TEST(ParallelChunks, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 3, 8}) {
        std::vector<std::atomic<int>> touched(103);
        parallelChunks(103, 10, threads,
                       [&](std::size_t begin, std::size_t end) {
                           ASSERT_LE(begin, end);
                           ASSERT_LE(end, touched.size());
                           for (std::size_t i = begin; i < end; ++i)
                               touched[i].fetch_add(1);
                       });
        for (std::size_t i = 0; i < touched.size(); ++i)
            EXPECT_EQ(touched[i].load(), 1)
                << "index " << i << " threads " << threads;
    }
}

TEST(ParallelChunks, HandlesEmptyAndSingleChunkRanges)
{
    std::atomic<int> calls{0};
    parallelChunks(0, 16, 4, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);

    parallelChunks(7, 16, 4, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 7u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelChunks, RethrowsFirstChunkExceptionAfterBarrier)
{
    std::atomic<int> completed{0};
    try {
        parallelChunks(40, 10, 4,
                       [&](std::size_t begin, std::size_t) {
                           if (begin == 10)
                               throw std::runtime_error("chunk died");
                           completed.fetch_add(1);
                       });
        FAIL() << "expected the chunk exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "chunk died");
    }
    // Every non-throwing chunk still ran (the barrier completes first).
    EXPECT_EQ(completed.load(), 3);
}

/** Restores the uncapped default even when a test assertion throws. */
struct CapGuard
{
    ~CapGuard() { setConcurrencyCap(0); }
};

TEST(ConcurrencyCap, DefaultIsUncapped)
{
    EXPECT_EQ(concurrencyCap(), 0);
}

TEST(ConcurrencyCap, NegativeValuesMeanUncapped)
{
    CapGuard guard;
    setConcurrencyCap(-5);
    EXPECT_EQ(concurrencyCap(), 0);
}

TEST(ConcurrencyCap, CapOfOneMakesParallelChunksSerial)
{
    CapGuard guard;
    setConcurrencyCap(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::atomic<int> off_thread_chunks{0};
    parallelChunks(50, 5, 8, [&](std::size_t, std::size_t) {
        if (std::this_thread::get_id() != caller)
            off_thread_chunks.fetch_add(1);
    });
    EXPECT_EQ(off_thread_chunks.load(), 0);
}

TEST(ConcurrencyCap, LimitsSharedPoolGrowth)
{
    CapGuard guard;
    // The process-wide pool may already exist (direct binary runs
    // execute the SharedPool tests first), so assert the cap stops
    // *growth* past max(cap, what was already there).
    const int pre = sharedPool(1)->threadCount();
    setConcurrencyCap(3);
    const int post = sharedPool(pre + 8)->threadCount();
    EXPECT_LE(post, std::max(3, pre));
}

TEST(ConcurrencyCap, ZeroRestoresUncappedGrowth)
{
    CapGuard guard;
    const int pre = sharedPool(1)->threadCount();
    setConcurrencyCap(2);
    EXPECT_LE(sharedPool(pre + 4)->threadCount(), std::max(2, pre));
    setConcurrencyCap(0);
    EXPECT_GE(sharedPool(pre + 4)->threadCount(), pre + 4);
}

TEST(ConcurrencyCap, CappedParallelChunksStillCoversEveryIndex)
{
    CapGuard guard;
    setConcurrencyCap(2);
    std::vector<std::atomic<int>> touched(103);
    parallelChunks(103, 10, 8,
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i)
                           touched[i].fetch_add(1);
                   });
    for (std::size_t i = 0; i < touched.size(); ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

} // namespace
} // namespace exec
} // namespace mc
