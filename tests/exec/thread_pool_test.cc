/**
 * @file
 * Tests of the fixed-size thread pool: FIFO dispatch, result and
 * exception propagation through futures, and shutdown draining.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hh"

namespace mc {
namespace exec {
namespace {

TEST(ThreadPool, RunsSubmittedTaskAndReturnsResult)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1);
    auto future = pool.submit([] { return 1; });
    EXPECT_EQ(future.get(), 1);
}

TEST(ThreadPool, SingleWorkerExecutesInSubmissionOrder)
{
    // With one worker the FIFO queue forces strict submission order.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &future : futures)
        future.get();

    std::vector<int> expected(32);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    auto good = pool.submit([] { return 7; });

    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "task failed");
                throw;
            }
        },
        std::runtime_error);
    // A throwing task must not take the pool down with it.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, ManyTasksAcrossWorkersAllComplete)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::atomic<int> sum{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&sum, i] {
            sum.fetch_add(1, std::memory_order_relaxed);
            return i * i;
        }));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(sum.load(), 200);
    EXPECT_EQ(pool.submittedCount(), 200u);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&completed] {
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        // No get(): the destructor must still run every queued task.
    }
    EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

} // namespace
} // namespace exec
} // namespace mc
