/**
 * @file
 * Tests of the sweep journal: round-trip, last-entry-wins resume
 * semantics, header validation, and crash-residue tolerance.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "exec/journal.hh"

namespace mc {
namespace exec {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : _path(std::string(::testing::TempDir()) + "mc_journal_" + name +
                ".csv")
    {
        std::remove(_path.c_str());
    }

    ~TempPath() { std::remove(_path.c_str()); }

    const std::string &str() const { return _path; }

  private:
    std::string _path;
};

TEST(SweepJournal, CreateRecordOpenRoundTrips)
{
    TempPath path("roundtrip");
    {
        auto journal = SweepJournal::create(path.str(), "fig6");
        ASSERT_TRUE(journal.isOk()) << journal.status().toString();
        journal.value().record(
            {0, "sgemm/256", ErrorCode::Ok, "12.5,128"});
        journal.value().record(
            {1, "sgemm/512", ErrorCode::OutOfMemory, ""});
        // Payloads may contain commas: only the first three split.
        journal.value().record(
            {2, "sgemm/1024", ErrorCode::Ok, "98.1,256,extra,fields"});
    }

    auto resumed = SweepJournal::open(path.str(), "fig6");
    ASSERT_TRUE(resumed.isOk()) << resumed.status().toString();
    const SweepJournal &journal = resumed.value();
    EXPECT_EQ(journal.loadedCount(), 3u);
    EXPECT_EQ(journal.loadedOkCount(), 2u);

    ASSERT_NE(journal.find(0), nullptr);
    EXPECT_EQ(journal.find(0)->key, "sgemm/256");
    EXPECT_EQ(journal.find(0)->payload, "12.5,128");
    EXPECT_TRUE(journal.find(0)->ok());

    ASSERT_NE(journal.find(1), nullptr);
    EXPECT_EQ(journal.find(1)->code, ErrorCode::OutOfMemory);
    EXPECT_FALSE(journal.find(1)->ok());

    ASSERT_NE(journal.find(2), nullptr);
    EXPECT_EQ(journal.find(2)->payload, "98.1,256,extra,fields");

    EXPECT_EQ(journal.find(7), nullptr);
}

TEST(SweepJournal, LastEntryWinsOnResume)
{
    TempPath path("lastwins");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({4, "p", ErrorCode::Unavailable, ""});
    }
    {
        // A resumed run re-executes point 4 and appends the fresh
        // outcome; the original failure record stays in the file.
        auto journal = SweepJournal::open(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        EXPECT_FALSE(journal.value().find(4)->ok());
        journal.value().record({4, "p", ErrorCode::Ok, "42.0"});
    }
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk());
    EXPECT_EQ(journal.value().loadedCount(), 1u);
    EXPECT_TRUE(journal.value().find(4)->ok());
    EXPECT_EQ(journal.value().find(4)->payload, "42.0");
}

TEST(SweepJournal, OpenMissingFileIsNotFound)
{
    TempPath path("missing");
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_FALSE(journal.isOk());
    EXPECT_EQ(journal.status().code(), ErrorCode::NotFound);
}

TEST(SweepJournal, OpenRejectsForeignBench)
{
    TempPath path("foreign");
    {
        auto journal = SweepJournal::create(path.str(), "fig6");
        ASSERT_TRUE(journal.isOk());
    }
    auto other = SweepJournal::open(path.str(), "fig7");
    ASSERT_FALSE(other.isOk());
    EXPECT_EQ(other.status().code(), ErrorCode::FailedPrecondition);
}

TEST(SweepJournal, OpenRejectsNonJournalFile)
{
    TempPath path("garbage");
    {
        std::ofstream out(path.str());
        out << "combo,n,tflops\nsgemm,256,12.5\n";
    }
    auto journal = SweepJournal::open(path.str(), "fig6");
    ASSERT_FALSE(journal.isOk());
    EXPECT_EQ(journal.status().code(), ErrorCode::FailedPrecondition);
}

TEST(SweepJournal, SkipsTruncatedFinalLine)
{
    TempPath path("truncated");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "1.0"});
    }
    {
        // Simulate a run killed mid-write: a partial record with no
        // trailing fields.
        std::ofstream out(path.str(), std::ios::app);
        out << "1,p1";
    }
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk());
    EXPECT_EQ(journal.value().loadedCount(), 1u);
    EXPECT_NE(journal.value().find(0), nullptr);
    EXPECT_EQ(journal.value().find(1), nullptr);
}

TEST(SweepJournal, ErrorCodeNamesRoundTripThroughFile)
{
    TempPath path("codes");
    const ErrorCode codes[] = {
        ErrorCode::Ok, ErrorCode::OutOfMemory, ErrorCode::Unavailable,
        ErrorCode::DeadlineExceeded, ErrorCode::DataLoss,
        ErrorCode::ResourceExhausted,
    };
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        std::size_t index = 0;
        for (ErrorCode code : codes)
            journal.value().record({index++, "p", code, ""});
    }
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk());
    std::size_t index = 0;
    for (ErrorCode code : codes) {
        ASSERT_NE(journal.value().find(index), nullptr);
        EXPECT_EQ(journal.value().find(index)->code, code);
        ++index;
    }
}

} // namespace
} // namespace exec
} // namespace mc
