/**
 * @file
 * Tests of the sweep journal: round-trip, last-entry-wins resume
 * semantics, header validation, crash-residue tolerance, and the v2
 * per-record checksums that distinguish a torn tail (tolerated) from
 * mid-file corruption (fatal DataLoss).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hh"
#include "exec/journal.hh"

namespace mc {
namespace exec {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : _path(std::string(::testing::TempDir()) + "mc_journal_" + name +
                ".csv")
    {
        std::remove(_path.c_str());
    }

    ~TempPath() { std::remove(_path.c_str()); }

    const std::string &str() const { return _path; }

  private:
    std::string _path;
};

TEST(SweepJournal, CreateRecordOpenRoundTrips)
{
    TempPath path("roundtrip");
    {
        auto journal = SweepJournal::create(path.str(), "fig6");
        ASSERT_TRUE(journal.isOk()) << journal.status().toString();
        journal.value().record(
            {0, "sgemm/256", ErrorCode::Ok, "12.5,128"});
        journal.value().record(
            {1, "sgemm/512", ErrorCode::OutOfMemory, ""});
        // Payloads may contain commas: only the first three split.
        journal.value().record(
            {2, "sgemm/1024", ErrorCode::Ok, "98.1,256,extra,fields"});
    }

    auto resumed = SweepJournal::open(path.str(), "fig6");
    ASSERT_TRUE(resumed.isOk()) << resumed.status().toString();
    const SweepJournal &journal = resumed.value();
    EXPECT_EQ(journal.loadedCount(), 3u);
    EXPECT_EQ(journal.loadedOkCount(), 2u);

    ASSERT_NE(journal.find(0), nullptr);
    EXPECT_EQ(journal.find(0)->key, "sgemm/256");
    EXPECT_EQ(journal.find(0)->payload, "12.5,128");
    EXPECT_TRUE(journal.find(0)->ok());

    ASSERT_NE(journal.find(1), nullptr);
    EXPECT_EQ(journal.find(1)->code, ErrorCode::OutOfMemory);
    EXPECT_FALSE(journal.find(1)->ok());

    ASSERT_NE(journal.find(2), nullptr);
    EXPECT_EQ(journal.find(2)->payload, "98.1,256,extra,fields");

    EXPECT_EQ(journal.find(7), nullptr);
}

TEST(SweepJournal, LastEntryWinsOnResume)
{
    TempPath path("lastwins");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({4, "p", ErrorCode::Unavailable, ""});
    }
    {
        // A resumed run re-executes point 4 and appends the fresh
        // outcome; the original failure record stays in the file.
        auto journal = SweepJournal::open(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        EXPECT_FALSE(journal.value().find(4)->ok());
        journal.value().record({4, "p", ErrorCode::Ok, "42.0"});
    }
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk());
    EXPECT_EQ(journal.value().loadedCount(), 1u);
    EXPECT_TRUE(journal.value().find(4)->ok());
    EXPECT_EQ(journal.value().find(4)->payload, "42.0");
}

TEST(SweepJournal, OpenMissingFileIsNotFound)
{
    TempPath path("missing");
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_FALSE(journal.isOk());
    EXPECT_EQ(journal.status().code(), ErrorCode::NotFound);
}

TEST(SweepJournal, OpenRejectsForeignBench)
{
    TempPath path("foreign");
    {
        auto journal = SweepJournal::create(path.str(), "fig6");
        ASSERT_TRUE(journal.isOk());
    }
    auto other = SweepJournal::open(path.str(), "fig7");
    ASSERT_FALSE(other.isOk());
    EXPECT_EQ(other.status().code(), ErrorCode::FailedPrecondition);
}

TEST(SweepJournal, OpenRejectsNonJournalFile)
{
    TempPath path("garbage");
    {
        std::ofstream out(path.str());
        out << "combo,n,tflops\nsgemm,256,12.5\n";
    }
    auto journal = SweepJournal::open(path.str(), "fig6");
    ASSERT_FALSE(journal.isOk());
    EXPECT_EQ(journal.status().code(), ErrorCode::FailedPrecondition);
}

TEST(SweepJournal, SkipsTruncatedFinalLine)
{
    TempPath path("truncated");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "1.0"});
    }
    {
        // Simulate a run killed mid-write: a partial record with no
        // trailing fields.
        std::ofstream out(path.str(), std::ios::app);
        out << "1,p1";
    }
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk());
    EXPECT_EQ(journal.value().loadedCount(), 1u);
    EXPECT_NE(journal.value().find(0), nullptr);
    EXPECT_EQ(journal.value().find(1), nullptr);
}

TEST(SweepJournal, ErrorCodeNamesRoundTripThroughFile)
{
    TempPath path("codes");
    const ErrorCode codes[] = {
        ErrorCode::Ok, ErrorCode::OutOfMemory, ErrorCode::Unavailable,
        ErrorCode::DeadlineExceeded, ErrorCode::DataLoss,
        ErrorCode::ResourceExhausted,
    };
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        std::size_t index = 0;
        for (ErrorCode code : codes)
            journal.value().record({index++, "p", code, ""});
    }
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk());
    std::size_t index = 0;
    for (ErrorCode code : codes) {
        ASSERT_NE(journal.value().find(index), nullptr);
        EXPECT_EQ(journal.value().find(index)->code, code);
        ++index;
    }
}

// ---- v2 checksums and corruption discrimination -------------------------

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    out << contents;
}

TEST(SweepJournal, RecordsCarryCrc32Prefix)
{
    TempPath path("crcprefix");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "1.5,10"});
    }
    std::ifstream in(path.str());
    std::string header, record;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, "# mcchar sweep journal v2 bench=bench");
    ASSERT_TRUE(std::getline(in, record));
    // <crc32-hex8>,<body>, and the checksum verifies against the body.
    ASSERT_GE(record.size(), 9u);
    ASSERT_EQ(record[8], ',');
    const std::string body = record.substr(9);
    EXPECT_EQ(body, "0,p0,Ok,1.5,10");
    char expected[16];
    std::snprintf(expected, sizeof(expected), "%08x",
                  crc32String(body));
    EXPECT_EQ(record.substr(0, 8), expected);
}

TEST(SweepJournal, LegacyV1JournalStillLoads)
{
    TempPath path("legacyv1");
    writeFile(path.str(),
              "# mcchar sweep journal v1 bench=bench\n"
              "0,p0,Ok,1.5\n"
              "1,p1,OutOfMemory,\n");
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk()) << journal.status().toString();
    EXPECT_EQ(journal.value().loadedCount(), 2u);
    ASSERT_NE(journal.value().find(0), nullptr);
    EXPECT_EQ(journal.value().find(0)->payload, "1.5");
    EXPECT_EQ(journal.value().find(1)->code, ErrorCode::OutOfMemory);
}

TEST(SweepJournal, LegacyV1AppendsStayUnchecksummed)
{
    // Resuming a pre-checksum journal must keep the file readable as
    // v1: one format per file, declared by the header.
    TempPath path("legacyappend");
    writeFile(path.str(),
              "# mcchar sweep journal v1 bench=bench\n"
              "0,p0,Unavailable,\n");
    {
        auto journal = SweepJournal::open(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "2.5"});
    }
    const std::string contents = readFile(path.str());
    EXPECT_NE(contents.find("\n0,p0,Ok,2.5\n"), std::string::npos)
        << contents;
    auto reloaded = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(reloaded.isOk());
    EXPECT_TRUE(reloaded.value().find(0)->ok());
}

TEST(SweepJournal, TornFinalChecksummedRecordIsSkipped)
{
    TempPath path("torntail");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "1.0"});
        journal.value().record({1, "p1", ErrorCode::Ok, "2.0"});
    }
    // Chop bytes off the final record: the residue of a killed run.
    const std::string full = readFile(path.str());
    writeFile(path.str(), full.substr(0, full.size() - 7));
    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(journal.isOk()) << journal.status().toString();
    EXPECT_EQ(journal.value().loadedCount(), 1u);
    EXPECT_NE(journal.value().find(0), nullptr);
    EXPECT_EQ(journal.value().find(1), nullptr);
}

TEST(SweepJournal, MidFileBitFlipIsDataLoss)
{
    TempPath path("bitflip");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "1.0"});
        journal.value().record({1, "p1", ErrorCode::Ok, "2.0"});
    }
    std::string contents = readFile(path.str());
    // Flip one bit inside the *first* record's payload.
    const std::size_t pos = contents.find("p0,Ok,1.0");
    ASSERT_NE(pos, std::string::npos);
    contents[pos + 7] ^= 0x01;
    writeFile(path.str(), contents);

    auto journal = SweepJournal::open(path.str(), "bench");
    ASSERT_FALSE(journal.isOk());
    EXPECT_EQ(journal.status().code(), ErrorCode::DataLoss);
    // The error names the corrupt line so the operator can triage.
    EXPECT_NE(journal.status().toString().find("line 2"),
              std::string::npos)
        << journal.status().toString();
}

TEST(SweepJournal, FuzzEveryTruncationLengthIsTolerated)
{
    // A crash can cut the file at any byte. However short the tail,
    // open() must succeed and keep every record before the cut.
    TempPath path("fuzztrunc");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "1.0"});
        journal.value().record({1, "p1", ErrorCode::OutOfMemory, ""});
        journal.value().record({2, "p2", ErrorCode::Ok, "3.0"});
    }
    const std::string full = readFile(path.str());
    const std::size_t header_end = full.find('\n') + 1;
    for (std::size_t len = header_end; len < full.size(); ++len) {
        writeFile(path.str(), full.substr(0, len));
        auto journal = SweepJournal::open(path.str(), "bench");
        ASSERT_TRUE(journal.isOk())
            << "truncation at byte " << len << ": "
            << journal.status().toString();
        EXPECT_LE(journal.value().loadedCount(), 3u);
    }
}

TEST(SweepJournal, FuzzEveryInteriorBitFlipIsDataLoss)
{
    // Any single-bit flip in a non-final record must be caught by the
    // CRC and reported as hard corruption, never silently dropped.
    // (XOR 0x01 never turns record bytes into '\n', so the line
    // structure is preserved and the flipped line stays interior.)
    TempPath path("fuzzflip");
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk());
        journal.value().record({0, "p0", ErrorCode::Ok, "1.25"});
        journal.value().record({1, "p1", ErrorCode::Ok, "2.5"});
    }
    const std::string full = readFile(path.str());
    const std::size_t line1 = full.find('\n') + 1;      // first record
    const std::size_t line2 = full.find('\n', line1);   // its newline
    for (std::size_t pos = line1; pos < line2; ++pos) {
        std::string flipped = full;
        flipped[pos] ^= 0x01;
        writeFile(path.str(), flipped);
        auto journal = SweepJournal::open(path.str(), "bench");
        ASSERT_FALSE(journal.isOk()) << "flip at byte " << pos;
        EXPECT_EQ(journal.status().code(), ErrorCode::DataLoss)
            << "flip at byte " << pos;
    }
}

TEST(SweepJournal, ConcurrentWritersLeaveEveryRecordResumable)
{
    // record() is documented writable from pool workers: hammer it
    // from several threads and prove the file that lands on disk is
    // fully resumable — every record present, every checksum intact,
    // no interleaved lines (a torn line would drop a record or, worse,
    // flag DataLoss on resume).
    TempPath path("concurrent");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;
    {
        auto journal = SweepJournal::create(path.str(), "bench");
        ASSERT_TRUE(journal.isOk()) << journal.status().toString();
        std::vector<std::thread> writers;
        for (int t = 0; t < kThreads; ++t) {
            writers.emplace_back([&journal, t]() {
                for (int i = 0; i < kPerThread; ++i) {
                    const std::size_t index =
                        static_cast<std::size_t>(t * kPerThread + i);
                    journal.value().record(
                        {index, "p" + std::to_string(index),
                         ErrorCode::Ok,
                         std::to_string(index) + ".5,extra"});
                }
            });
        }
        for (std::thread &writer : writers)
            writer.join();
    }

    auto resumed = SweepJournal::open(path.str(), "bench");
    ASSERT_TRUE(resumed.isOk()) << resumed.status().toString();
    EXPECT_EQ(resumed.value().loadedCount(),
              static_cast<std::size_t>(kThreads * kPerThread));
    for (std::size_t index = 0;
         index < static_cast<std::size_t>(kThreads * kPerThread);
         ++index) {
        ASSERT_NE(resumed.value().find(index), nullptr)
            << "record " << index << " lost";
        EXPECT_EQ(resumed.value().find(index)->payload,
                  std::to_string(index) + ".5,extra");
    }
}

} // namespace
} // namespace exec
} // namespace mc
