/**
 * @file
 * Tests of the process-level suite supervisor: plan parsing, wait-
 * status classification, manifest (de)serialization, and end-to-end
 * supervision of real child processes — clean exits, nonzero exits,
 * crash signals, hangs past the watchdog, restart budgets, and
 * manifest-driven resume. Children are scripted with /bin/sh so every
 * failure mode is deterministic.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/supervisor.hh"

namespace mc {
namespace exec {
namespace {

/** Unique run directory per test; removed recursively on destruction. */
class TempRunDir
{
  public:
    explicit TempRunDir(const std::string &name)
        : _path(std::string(::testing::TempDir()) + "mc_suite_" + name)
    {
        removeAll();
        ::mkdir(_path.c_str(), 0777);
    }

    ~TempRunDir() { removeAll(); }

    const std::string &str() const { return _path; }

    std::string
    file(const std::string &name) const
    {
        return _path + "/" + name;
    }

  private:
    void
    removeAll()
    {
        // The supervisor writes a flat directory: logs + manifest.
        std::system(("rm -rf '" + _path + "'").c_str());
    }

    std::string _path;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

BenchSpec
shellBench(const std::string &name, const std::string &script)
{
    BenchSpec bench;
    bench.name = name;
    bench.argv = {"/bin/sh", "-c", script};
    return bench;
}

SupervisorOptions
quietOptions(const TempRunDir &dir)
{
    SupervisorOptions options;
    options.runDir = dir.str();
    options.echoProgress = false;
    options.restart.maxAttempts = 1;
    options.restart.initialBackoffSec = 0.01;
    return options;
}

// ---- Plan parsing --------------------------------------------------------

TEST(SuitePlan, ParsesBenchesWithOptionsAndComments)
{
    auto plan = SuitePlan::parse(
        "# mcchar suite plan\n"
        "\n"
        "bench fig6 deadline=120 attempts=3 out=fig6.csv : "
        "./fig6_gemm_fp --csv --out=fig6.csv\n"
        "bench fig7 : ./fig7_gemm_mixed --reps 5\n");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    ASSERT_EQ(plan.value().benches.size(), 2u);

    const BenchSpec &fig6 = plan.value().benches[0];
    EXPECT_EQ(fig6.name, "fig6");
    EXPECT_DOUBLE_EQ(fig6.deadlineSec, 120.0);
    EXPECT_EQ(fig6.maxAttempts, 3);
    ASSERT_EQ(fig6.outputs.size(), 1u);
    EXPECT_EQ(fig6.outputs[0], "fig6.csv");
    const std::vector<std::string> argv = {"./fig6_gemm_fp", "--csv",
                                           "--out=fig6.csv"};
    EXPECT_EQ(fig6.argv, argv);

    const BenchSpec &fig7 = plan.value().benches[1];
    EXPECT_DOUBLE_EQ(fig7.deadlineSec, 0.0);
    EXPECT_EQ(fig7.maxAttempts, 0);
    EXPECT_TRUE(fig7.outputs.empty());
}

TEST(SuitePlan, QuotedTokensKeepSpaces)
{
    auto plan = SuitePlan::parse(
        "bench sh : /bin/sh -c 'sleep 1; exit 0'\n");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    ASSERT_EQ(plan.value().benches[0].argv.size(), 3u);
    EXPECT_EQ(plan.value().benches[0].argv[2], "sleep 1; exit 0");
}

TEST(SuitePlan, RejectsMalformedLinesWithLineNumbers)
{
    const char *bad[] = {
        "bench missing-separator ./prog --flag\n",
        "bench : ./prog\n",                        // empty name
        "bench x :\n",                             // empty command
        "bench x deadline=soon : ./prog\n",        // bad number
        "run x : ./prog\n",                        // unknown directive
        "bench dup : ./a\nbench dup : ./b\n",      // duplicate name
    };
    for (const char *text : bad) {
        auto plan = SuitePlan::parse(text);
        EXPECT_FALSE(plan.isOk()) << "accepted: " << text;
        EXPECT_NE(plan.status().toString().find("line"),
                  std::string::npos)
            << plan.status().toString();
    }
    EXPECT_FALSE(SuitePlan::parse("").isOk()) << "accepted empty plan";
}

// ---- Wait-status classification ------------------------------------------

int
exitedStatus(int code)
{
    return (code & 0xff) << 8; // waitpid encoding of _exit(code)
}

int
signaledStatus(int sig)
{
    return sig & 0x7f; // waitpid encoding of a signal death
}

TEST(ClassifyWaitStatus, ExitCodesMapThroughProtocol)
{
    EXPECT_EQ(classifyWaitStatus(exitedStatus(exit_code::Ok), false),
              ErrorCode::Ok);
    EXPECT_EQ(classifyWaitStatus(exitedStatus(exit_code::Failure), false),
              ErrorCode::Internal);
    EXPECT_EQ(classifyWaitStatus(exitedStatus(exit_code::Usage), false),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(classifyWaitStatus(
                  exitedStatus(exit_code::BudgetExhausted), false),
              ErrorCode::ResourceExhausted);
    EXPECT_EQ(classifyWaitStatus(
                  exitedStatus(exit_code::DataLossExit), false),
              ErrorCode::DataLoss);
    EXPECT_EQ(classifyWaitStatus(
                  exitedStatus(exit_code::ExecFailed), false),
              ErrorCode::NotFound);
}

TEST(ClassifyWaitStatus, SignalsClassifyByCause)
{
    // Watchdog-initiated termination wins over the signal identity.
    EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGTERM), true),
              ErrorCode::DeadlineExceeded);
    EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGKILL), true),
              ErrorCode::DeadlineExceeded);
    // Unprompted SIGKILL is the OOM killer's signature.
    EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGKILL), false),
              ErrorCode::ResourceExhausted);
    // External administrative signals.
    EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGTERM), false),
              ErrorCode::Unavailable);
    // Crashes.
    EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGSEGV), false),
              ErrorCode::Internal);
    EXPECT_EQ(classifyWaitStatus(signaledStatus(SIGABRT), false),
              ErrorCode::Internal);
}

TEST(SupervisorRetriable, UsageAndMissingBinaryAreNot)
{
    EXPECT_FALSE(supervisorRetriable(ErrorCode::Ok));
    EXPECT_FALSE(supervisorRetriable(ErrorCode::InvalidArgument));
    EXPECT_FALSE(supervisorRetriable(ErrorCode::Unsupported));
    EXPECT_FALSE(supervisorRetriable(ErrorCode::NotFound));
    // Crashes, hangs, and resource exhaustion all earn a restart.
    EXPECT_TRUE(supervisorRetriable(ErrorCode::Internal));
    EXPECT_TRUE(supervisorRetriable(ErrorCode::DeadlineExceeded));
    EXPECT_TRUE(supervisorRetriable(ErrorCode::ResourceExhausted));
    EXPECT_TRUE(supervisorRetriable(ErrorCode::Unavailable));
}

// ---- Manifest entries ----------------------------------------------------

TEST(BenchOutcomeJson, RoundTrips)
{
    BenchOutcome outcome;
    outcome.name = "fig6";
    outcome.command = {"./fig6_gemm_fp", "--csv"};
    outcome.code = ErrorCode::DeadlineExceeded;
    outcome.completionLineSeen = false;
    outcome.stdoutLog = "fig6.stdout.log";
    outcome.stderrLog = "fig6.stderr.log";
    outcome.outputs = {"fig6.csv"};
    AttemptOutcome attempt;
    attempt.code = ErrorCode::DeadlineExceeded;
    attempt.signal = SIGKILL;
    attempt.watchdogFired = true;
    attempt.durationSec = 1.5;
    outcome.attempts = {attempt, attempt};

    auto parsed = benchOutcomeFromJson(benchOutcomeToJson(outcome));
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    const BenchOutcome &back = parsed.value();
    EXPECT_EQ(back.name, outcome.name);
    EXPECT_EQ(back.command, outcome.command);
    EXPECT_EQ(back.code, ErrorCode::DeadlineExceeded);
    EXPECT_EQ(back.outputs, outcome.outputs);
    ASSERT_EQ(back.attempts.size(), 2u);
    EXPECT_EQ(back.attempts[0].signal, SIGKILL);
    EXPECT_TRUE(back.attempts[0].watchdogFired);
    EXPECT_DOUBLE_EQ(back.attempts[0].durationSec, 1.5);
}

TEST(BenchOutcomeJson, RejectsNonObjectEntries)
{
    EXPECT_FALSE(benchOutcomeFromJson(JsonValue(1.0)).isOk());
    EXPECT_FALSE(benchOutcomeFromJson(JsonValue::array()).isOk());
}

// ---- End-to-end supervision ----------------------------------------------

TEST(Supervisor, CleanExitIsOk)
{
    TempRunDir dir("clean");
    SuitePlan plan;
    plan.benches.push_back(
        shellBench("good", "echo out; echo err >&2; exit 0"));
    Supervisor supervisor(plan, quietOptions(dir));

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    ASSERT_EQ(result.value().benches.size(), 1u);
    const BenchOutcome &bench = result.value().benches[0];
    EXPECT_TRUE(bench.ok());
    EXPECT_EQ(bench.attempts.size(), 1u);
    EXPECT_EQ(bench.attempts[0].exitStatus, 0);
    EXPECT_TRUE(result.value().allOk());

    // stdout and stderr land in separate per-bench logs.
    EXPECT_EQ(readFile(dir.file(bench.stdoutLog)), "out\n");
    EXPECT_EQ(readFile(dir.file(bench.stderrLog)), "err\n");
}

TEST(Supervisor, CompletionLineIsDetected)
{
    TempRunDir dir("completion");
    SuitePlan plan;
    plan.benches.push_back(shellBench(
        "protocol",
        "echo '[mcchar] complete bench=protocol code=Ok exit=0' >&2"));
    plan.benches.push_back(shellBench("silent", "exit 0"));
    Supervisor supervisor(plan, quietOptions(dir));

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    EXPECT_TRUE(result.value().benches[0].completionLineSeen);
    EXPECT_FALSE(result.value().benches[1].completionLineSeen);
}

TEST(Supervisor, NonzeroExitExhaustsRestartBudget)
{
    TempRunDir dir("nonzero");
    SuitePlan plan;
    plan.benches.push_back(shellBench("fails", "exit 1"));
    plan.benches.push_back(shellBench("after", "exit 0"));
    SupervisorOptions options = quietOptions(dir);
    options.restart.maxAttempts = 3;
    Supervisor supervisor(plan, options);

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const BenchOutcome &failed = result.value().benches[0];
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.code, ErrorCode::Internal);
    // All three attempts spent, each recorded.
    ASSERT_EQ(failed.attempts.size(), 3u);
    for (const AttemptOutcome &attempt : failed.attempts)
        EXPECT_EQ(attempt.exitStatus, 1);

    // Graceful degradation: the suite continued past the failure.
    EXPECT_TRUE(result.value().benches[1].ok());
    EXPECT_FALSE(result.value().allOk());
}

TEST(Supervisor, UsageErrorIsNotRetried)
{
    TempRunDir dir("usage");
    SuitePlan plan;
    plan.benches.push_back(shellBench("usage", "exit 2"));
    SupervisorOptions options = quietOptions(dir);
    options.restart.maxAttempts = 3;
    Supervisor supervisor(plan, options);

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    const BenchOutcome &bench = result.value().benches[0];
    EXPECT_EQ(bench.code, ErrorCode::InvalidArgument);
    // Re-running the same wrong command line cannot help.
    EXPECT_EQ(bench.attempts.size(), 1u);
}

TEST(Supervisor, MissingExecutableIsNotFound)
{
    TempRunDir dir("missing");
    SuitePlan plan;
    BenchSpec bench;
    bench.name = "ghost";
    bench.argv = {"/no/such/binary/anywhere"};
    plan.benches.push_back(bench);
    Supervisor supervisor(plan, quietOptions(dir));

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result.value().benches[0].code, ErrorCode::NotFound);
    EXPECT_EQ(result.value().benches[0].attempts.size(), 1u);
}

TEST(Supervisor, CrashSignalIsRetriedAndClassified)
{
    TempRunDir dir("crash");
    SuitePlan plan;
    plan.benches.push_back(shellBench("crasher", "kill -SEGV $$"));
    SupervisorOptions options = quietOptions(dir);
    options.restart.maxAttempts = 2;
    Supervisor supervisor(plan, options);

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    const BenchOutcome &bench = result.value().benches[0];
    EXPECT_EQ(bench.code, ErrorCode::Internal);
    ASSERT_EQ(bench.attempts.size(), 2u);
    for (const AttemptOutcome &attempt : bench.attempts) {
        EXPECT_EQ(attempt.signal, SIGSEGV);
        EXPECT_EQ(attempt.exitStatus, -1);
        EXPECT_FALSE(attempt.watchdogFired);
    }
}

TEST(Supervisor, ExternalKillIsResourceExhausted)
{
    TempRunDir dir("oomkill");
    SuitePlan plan;
    plan.benches.push_back(shellBench("victim", "kill -KILL $$"));
    Supervisor supervisor(plan, quietOptions(dir));

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    const BenchOutcome &bench = result.value().benches[0];
    EXPECT_EQ(bench.code, ErrorCode::ResourceExhausted);
    EXPECT_EQ(bench.attempts[0].signal, SIGKILL);
    EXPECT_FALSE(bench.attempts[0].watchdogFired);
}

TEST(Supervisor, WatchdogEscalatesOnHang)
{
    TempRunDir dir("hang");
    SuitePlan plan;
    // Ignores SIGTERM and busy-waits, so only the SIGKILL escalation
    // can end it (a `sleep` child would die to the group SIGTERM and
    // let the shell exit normally).
    BenchSpec bench = shellBench(
        "hung", "trap '' TERM; while :; do :; done");
    bench.deadlineSec = 0.3;
    plan.benches.push_back(bench);
    SupervisorOptions options = quietOptions(dir);
    options.killGraceSec = 0.2;
    Supervisor supervisor(plan, options);

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    const BenchOutcome &hung = result.value().benches[0];
    EXPECT_EQ(hung.code, ErrorCode::DeadlineExceeded);
    ASSERT_EQ(hung.attempts.size(), 1u);
    EXPECT_TRUE(hung.attempts[0].watchdogFired);
    // Escalation past the TERM trap means SIGKILL delivered the blow.
    EXPECT_EQ(hung.attempts[0].signal, SIGKILL);
    // The watchdog fired near the deadline, well before sleep 60.
    EXPECT_LT(hung.attempts[0].durationSec, 10.0);
}

TEST(Supervisor, WatchdogTermIsHonoredWithinGrace)
{
    TempRunDir dir("term");
    SuitePlan plan;
    BenchSpec bench = shellBench("obedient", "sleep 60");
    bench.deadlineSec = 0.3;
    plan.benches.push_back(bench);
    SupervisorOptions options = quietOptions(dir);
    options.killGraceSec = 5.0;
    Supervisor supervisor(plan, options);

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    const BenchOutcome &bench_out = result.value().benches[0];
    EXPECT_EQ(bench_out.code, ErrorCode::DeadlineExceeded);
    EXPECT_TRUE(bench_out.attempts[0].watchdogFired);
    // sh dies to the SIGTERM itself: no escalation needed.
    EXPECT_EQ(bench_out.attempts[0].signal, SIGTERM);
    EXPECT_LT(bench_out.attempts[0].durationSec, 4.0);
}

TEST(Supervisor, ManifestRecordsEveryBench)
{
    TempRunDir dir("manifest");
    SuitePlan plan;
    BenchSpec good = shellBench("good", "exit 0");
    good.outputs = {"good.csv"};
    plan.benches.push_back(good);
    plan.benches.push_back(shellBench("bad", "exit 1"));
    Supervisor supervisor(plan, quietOptions(dir));

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());

    auto manifest = JsonValue::parse(readFile(supervisor.manifestPath()));
    ASSERT_TRUE(manifest.isOk()) << manifest.status().toString();
    const JsonValue &doc = manifest.value();
    EXPECT_EQ(doc.at("format").asString(), "mcchar suite manifest v1");
    ASSERT_EQ(doc.at("benches").size(), 2u);

    const JsonValue &good_entry = doc.at("benches").at(0u);
    EXPECT_EQ(good_entry.at("name").asString(), "good");
    EXPECT_EQ(good_entry.at("code").asString(), "Ok");
    EXPECT_EQ(good_entry.at("outputs").at(0u).asString(), "good.csv");
    ASSERT_EQ(good_entry.at("command").size(), 3u);
    EXPECT_EQ(good_entry.at("command").at(0u).asString(), "/bin/sh");

    const JsonValue &bad_entry = doc.at("benches").at(1u);
    EXPECT_EQ(bad_entry.at("code").asString(), "Internal");
    EXPECT_EQ(bad_entry.at("attempts").size(), 1u);
}

TEST(Supervisor, ResumeSkipsCompletedBenches)
{
    TempRunDir dir("resume");
    SuitePlan plan;
    // A marker file proves whether the child actually re-ran.
    plan.benches.push_back(shellBench(
        "counted", "echo ran >> counted.marker; exit 0"));
    {
        Supervisor supervisor(plan, quietOptions(dir));
        ASSERT_TRUE(supervisor.run().isOk());
    }
    EXPECT_EQ(readFile(dir.file("counted.marker")), "ran\n");

    SupervisorOptions options = quietOptions(dir);
    options.resume = true;
    Supervisor supervisor(plan, options);
    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    const BenchOutcome &bench = result.value().benches[0];
    EXPECT_TRUE(bench.ok());
    EXPECT_TRUE(bench.resumedFromManifest);
    // No second marker line: the child never re-executed.
    EXPECT_EQ(readFile(dir.file("counted.marker")), "ran\n");
}

TEST(Supervisor, ResumeRerunsFailedAndChangedBenches)
{
    TempRunDir dir("rerun");
    SuitePlan plan;
    plan.benches.push_back(shellBench("flaky", "exit 1"));
    {
        Supervisor supervisor(plan, quietOptions(dir));
        ASSERT_TRUE(supervisor.run().isOk());
    }

    // Same name, now-succeeding command: the manifest entry (failed,
    // and for a different command) must not satisfy it.
    SuitePlan fixed;
    fixed.benches.push_back(shellBench("flaky", "exit 0"));
    SupervisorOptions options = quietOptions(dir);
    options.resume = true;
    Supervisor supervisor(fixed, options);
    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    EXPECT_FALSE(result.value().benches[0].resumedFromManifest);
    EXPECT_TRUE(result.value().benches[0].ok());
}

TEST(Supervisor, AttemptLogsAppendAcrossRestarts)
{
    TempRunDir dir("logs");
    SuitePlan plan;
    plan.benches.push_back(shellBench("fails", "echo try; exit 1"));
    SupervisorOptions options = quietOptions(dir);
    options.restart.maxAttempts = 2;
    Supervisor supervisor(plan, options);

    auto result = supervisor.run();
    ASSERT_TRUE(result.isOk());
    const BenchOutcome &bench = result.value().benches[0];
    const std::string out = readFile(dir.file(bench.stdoutLog));
    // One line per attempt: attempt 1 truncates, attempt 2 appends.
    EXPECT_EQ(out, "try\ntry\n");
    // The stderr log carries the attempt separator for humans.
    EXPECT_NE(readFile(dir.file(bench.stderrLog)).find("attempt 2"),
              std::string::npos);
}

} // namespace
} // namespace exec
} // namespace mc
