/**
 * @file
 * Tests of the sweep runner: stable seed derivation, ordered results,
 * exception selection, and the determinism contract — a noisy GEMM
 * sweep at jobs=8 must reproduce jobs=1 bit for bit.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "blas/gemm.hh"
#include "exec/sweep_runner.hh"
#include "fault/injector.hh"
#include "hip/runtime.hh"

namespace mc {
namespace exec {
namespace {

TEST(DeriveSeed, StableAcrossCalls)
{
    const std::uint64_t a = deriveSeed("fig6_gemm_fp", "sgemm/4096", 3);
    const std::uint64_t b = deriveSeed("fig6_gemm_fp", "sgemm/4096", 3);
    EXPECT_EQ(a, b);
}

TEST(DeriveSeed, EveryComponentChangesTheSeed)
{
    const std::uint64_t base = deriveSeed("bench", "point", 0);
    EXPECT_NE(deriveSeed("bench2", "point", 0), base);
    EXPECT_NE(deriveSeed("bench", "point2", 0), base);
    EXPECT_NE(deriveSeed("bench", "point", 1), base);
}

TEST(DeriveSeed, ComponentBoundariesDoNotCollide)
{
    // Without a separator ("ab", "c") and ("a", "bc") would hash the
    // same byte stream.
    EXPECT_NE(deriveSeed("ab", "c", 0), deriveSeed("a", "bc", 0));
}

TEST(DeriveSeed, AdjacentRepetitionsAreWellMixed)
{
    // The finalizer should spread consecutive reps over the full
    // 64-bit range, not leave them adjacent.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t rep = 0; rep < 64; ++rep)
        seeds.insert(deriveSeed("bench", "point", rep));
    EXPECT_EQ(seeds.size(), 64u);
    const std::uint64_t s0 = deriveSeed("bench", "point", 0);
    const std::uint64_t s1 = deriveSeed("bench", "point", 1);
    EXPECT_GT(std::max(s0, s1) - std::min(s0, s1), 1u << 20);
}

TEST(SweepRunner, ClampsJobsAndKeepsBenchName)
{
    SweepRunner runner("my_bench", -3);
    EXPECT_EQ(runner.jobs(), 1);
    EXPECT_EQ(runner.benchName(), "my_bench");
    EXPECT_EQ(runner.seedFor("p", 2), deriveSeed("my_bench", "p", 2));
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder)
{
    for (int jobs : {1, 8}) {
        SweepRunner runner("order", jobs);
        const std::vector<std::size_t> out =
            runner.map(100, [](std::size_t i) { return i * i; });
        ASSERT_EQ(out.size(), 100u);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(SweepRunner, MapOnZeroPointsReturnsEmpty)
{
    SweepRunner runner("empty", 8);
    const auto out = runner.map(0, [](std::size_t i) { return i; });
    EXPECT_TRUE(out.empty());
}

TEST(SweepRunner, ExceptionReachesCaller)
{
    for (int jobs : {1, 8}) {
        SweepRunner runner("throws", jobs);
        EXPECT_THROW(runner.map(16,
                                [](std::size_t i) -> int {
                                    if (i == 5)
                                        throw std::runtime_error("boom");
                                    return 0;
                                }),
                     std::runtime_error);
    }
}

/**
 * Run a small noisy GEMM sweep the way the figure benches do: one
 * Runtime per point, noise reseeded per repetition from
 * (bench, point, rep). Returns every sampled latency.
 */
std::vector<double>
noisyGemmSweep(int jobs)
{
    const std::size_t sizes[] = {256, 512, 1024};
    constexpr int kReps = 3;

    SweepRunner runner("sweep_runner_test", jobs);
    const auto per_point =
        runner.map(std::size(sizes), [&](std::size_t i) {
            hip::Runtime rt; // noise enabled by default
            blas::GemmEngine engine(rt);
            blas::GemmConfig cfg;
            cfg.combo = blas::GemmCombo::Sgemm;
            cfg.m = cfg.n = cfg.k = sizes[i];
            const std::string key = "sgemm/" + std::to_string(sizes[i]);

            std::vector<double> samples;
            for (int rep = 0; rep < kReps; ++rep) {
                rt.gpu().reseedNoise(
                    runner.seedFor(key, static_cast<std::uint64_t>(rep)));
                auto result = engine.run(cfg);
                EXPECT_TRUE(result.isOk());
                samples.push_back(result.value().throughput());
            }
            return samples;
        });

    std::vector<double> flat;
    for (const auto &samples : per_point)
        flat.insert(flat.end(), samples.begin(), samples.end());
    return flat;
}

TEST(SweepRunner, ParallelGemmSweepIsBitIdenticalToSerial)
{
    const std::vector<double> serial = noisyGemmSweep(1);
    const std::vector<double> parallel = noisyGemmSweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "sample " << i;

    // The sweep is genuinely noisy: repetitions of one point differ.
    EXPECT_NE(serial[0], serial[1]);
}

TEST(SweepRunner, MapFastCancelSkipsUnstartedPoints)
{
    // One worker, 64 points, the very first throws: the remaining 63
    // are queued behind it and must be cancelled, not executed.
    SweepRunner runner("cancel", 2);
    std::atomic<int> executed{0};
    EXPECT_THROW(runner.map(64,
                            [&](std::size_t i) -> int {
                                ++executed;
                                if (i == 0)
                                    throw std::runtime_error("boom");
                                return 0;
                            }),
                 std::runtime_error);
    // At most the points already started before the flag flipped ran.
    EXPECT_LT(executed.load(), 64);
    EXPECT_GT(runner.lastStats().skipped, 0u);
    EXPECT_EQ(executed.load() + runner.lastStats().skipped, 64u);
}

TEST(SweepRunner, SerialMapReportsSkippedOnThrow)
{
    SweepRunner runner("cancel_serial", 1);
    EXPECT_THROW(runner.map(10,
                            [](std::size_t i) -> int {
                                if (i == 3)
                                    throw std::runtime_error("boom");
                                return 0;
                            }),
                 std::runtime_error);
    EXPECT_EQ(runner.lastStats().skipped, 6u);
}

TEST(SweepRunner, MapResultIsolatesFailedPoints)
{
    for (int jobs : {1, 8}) {
        SweepRunner runner("isolate", jobs);
        const auto results = runner.mapResult(
            20,
            [](std::size_t i) -> Result<std::size_t> {
                if (i % 5 == 0)
                    return Status::outOfMemory("point too large");
                return i;
            },
            /*max_failures=*/100);
        ASSERT_EQ(results.size(), 20u);
        for (std::size_t i = 0; i < 20; ++i) {
            if (i % 5 == 0) {
                EXPECT_FALSE(results[i].isOk());
                EXPECT_EQ(results[i].status().code(),
                          ErrorCode::OutOfMemory);
            } else {
                ASSERT_TRUE(results[i].isOk());
                EXPECT_EQ(results[i].value(), i);
            }
        }
        EXPECT_EQ(runner.lastStats().failed, 4u);
        EXPECT_EQ(runner.lastStats().skipped, 0u);
        EXPECT_FALSE(runner.lastStats().budgetExhausted);
    }
}

TEST(SweepRunner, MapResultBudgetCancelsTail)
{
    // Serial: deterministic — points 0..2 fail, the budget (2) is
    // blown after the third failure, everything later is skipped.
    SweepRunner runner("budget", 1);
    std::atomic<int> executed{0};
    const auto results = runner.mapResult(
        50,
        [&](std::size_t i) -> Result<int> {
            ++executed;
            if (i < 3)
                return Status::unavailable("transient");
            return 1;
        },
        /*max_failures=*/2);
    ASSERT_EQ(results.size(), 50u);
    EXPECT_EQ(executed.load(), 3);
    EXPECT_TRUE(runner.lastStats().budgetExhausted);
    EXPECT_EQ(runner.lastStats().failed, 3u);
    EXPECT_EQ(runner.lastStats().skipped, 47u);
    EXPECT_EQ(results[10].status().code(), ErrorCode::ResourceExhausted);
}

TEST(SweepRunner, MapResultBudgetCancelsUnderJobs)
{
    // Parallel: which points get skipped is timing-dependent, but the
    // budget must still stop a systematically failing sweep early.
    SweepRunner runner("budget_par", 4);
    std::atomic<int> executed{0};
    const auto results = runner.mapResult(
        200,
        [&](std::size_t) -> Result<int> {
            ++executed;
            return Status::outOfMemory("every point fails");
        },
        /*max_failures=*/5);
    ASSERT_EQ(results.size(), 200u);
    EXPECT_TRUE(runner.lastStats().budgetExhausted);
    EXPECT_GT(runner.lastStats().skipped, 0u);
    EXPECT_EQ(runner.lastStats().failed + runner.lastStats().skipped,
              200u);
    EXPECT_EQ(static_cast<std::size_t>(executed.load()),
              runner.lastStats().failed);
}

TEST(SweepRunner, MapResultFailureSetIsJobsInvariant)
{
    // The *which points failed* record must match between jobs=1 and
    // jobs=8 when the budget is not exhausted: failures are decided by
    // the point's own deterministic fault stream, not by scheduling.
    auto failure_mask = [](int jobs) {
        SweepRunner runner("mask", jobs);
        const auto results = runner.mapResult(
            64,
            [&](std::size_t i) -> Result<int> {
                fault::Injector inj(
                    fault::parseFaultSpec("oom=0.3").value(),
                    fault::faultSeed(runner.seedFor(
                        "p" + std::to_string(i), 0)));
                if (inj.fire(fault::FaultSite::HbmAlloc))
                    return Status::unavailable("injected");
                return 0;
            },
            /*max_failures=*/64);
        std::vector<bool> mask;
        for (const auto &r : results)
            mask.push_back(r.isOk());
        return mask;
    };
    EXPECT_EQ(failure_mask(1), failure_mask(8));
}

} // namespace
} // namespace exec
} // namespace mc
