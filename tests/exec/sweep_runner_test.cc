/**
 * @file
 * Tests of the sweep runner: stable seed derivation, ordered results,
 * exception selection, and the determinism contract — a noisy GEMM
 * sweep at jobs=8 must reproduce jobs=1 bit for bit.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "blas/gemm.hh"
#include "exec/sweep_runner.hh"
#include "hip/runtime.hh"

namespace mc {
namespace exec {
namespace {

TEST(DeriveSeed, StableAcrossCalls)
{
    const std::uint64_t a = deriveSeed("fig6_gemm_fp", "sgemm/4096", 3);
    const std::uint64_t b = deriveSeed("fig6_gemm_fp", "sgemm/4096", 3);
    EXPECT_EQ(a, b);
}

TEST(DeriveSeed, EveryComponentChangesTheSeed)
{
    const std::uint64_t base = deriveSeed("bench", "point", 0);
    EXPECT_NE(deriveSeed("bench2", "point", 0), base);
    EXPECT_NE(deriveSeed("bench", "point2", 0), base);
    EXPECT_NE(deriveSeed("bench", "point", 1), base);
}

TEST(DeriveSeed, ComponentBoundariesDoNotCollide)
{
    // Without a separator ("ab", "c") and ("a", "bc") would hash the
    // same byte stream.
    EXPECT_NE(deriveSeed("ab", "c", 0), deriveSeed("a", "bc", 0));
}

TEST(DeriveSeed, AdjacentRepetitionsAreWellMixed)
{
    // The finalizer should spread consecutive reps over the full
    // 64-bit range, not leave them adjacent.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t rep = 0; rep < 64; ++rep)
        seeds.insert(deriveSeed("bench", "point", rep));
    EXPECT_EQ(seeds.size(), 64u);
    const std::uint64_t s0 = deriveSeed("bench", "point", 0);
    const std::uint64_t s1 = deriveSeed("bench", "point", 1);
    EXPECT_GT(std::max(s0, s1) - std::min(s0, s1), 1u << 20);
}

TEST(SweepRunner, ClampsJobsAndKeepsBenchName)
{
    SweepRunner runner("my_bench", -3);
    EXPECT_EQ(runner.jobs(), 1);
    EXPECT_EQ(runner.benchName(), "my_bench");
    EXPECT_EQ(runner.seedFor("p", 2), deriveSeed("my_bench", "p", 2));
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder)
{
    for (int jobs : {1, 8}) {
        SweepRunner runner("order", jobs);
        const std::vector<std::size_t> out =
            runner.map(100, [](std::size_t i) { return i * i; });
        ASSERT_EQ(out.size(), 100u);
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(SweepRunner, MapOnZeroPointsReturnsEmpty)
{
    SweepRunner runner("empty", 8);
    const auto out = runner.map(0, [](std::size_t i) { return i; });
    EXPECT_TRUE(out.empty());
}

TEST(SweepRunner, ExceptionReachesCaller)
{
    for (int jobs : {1, 8}) {
        SweepRunner runner("throws", jobs);
        EXPECT_THROW(runner.map(16,
                                [](std::size_t i) -> int {
                                    if (i == 5)
                                        throw std::runtime_error("boom");
                                    return 0;
                                }),
                     std::runtime_error);
    }
}

/**
 * Run a small noisy GEMM sweep the way the figure benches do: one
 * Runtime per point, noise reseeded per repetition from
 * (bench, point, rep). Returns every sampled latency.
 */
std::vector<double>
noisyGemmSweep(int jobs)
{
    const std::size_t sizes[] = {256, 512, 1024};
    constexpr int kReps = 3;

    SweepRunner runner("sweep_runner_test", jobs);
    const auto per_point =
        runner.map(std::size(sizes), [&](std::size_t i) {
            hip::Runtime rt; // noise enabled by default
            blas::GemmEngine engine(rt);
            blas::GemmConfig cfg;
            cfg.combo = blas::GemmCombo::Sgemm;
            cfg.m = cfg.n = cfg.k = sizes[i];
            const std::string key = "sgemm/" + std::to_string(sizes[i]);

            std::vector<double> samples;
            for (int rep = 0; rep < kReps; ++rep) {
                rt.gpu().reseedNoise(
                    runner.seedFor(key, static_cast<std::uint64_t>(rep)));
                auto result = engine.run(cfg);
                EXPECT_TRUE(result.isOk());
                samples.push_back(result.value().throughput());
            }
            return samples;
        });

    std::vector<double> flat;
    for (const auto &samples : per_point)
        flat.insert(flat.end(), samples.begin(), samples.end());
    return flat;
}

TEST(SweepRunner, ParallelGemmSweepIsBitIdenticalToSerial)
{
    const std::vector<double> serial = noisyGemmSweep(1);
    const std::vector<double> parallel = noisyGemmSweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "sample " << i;

    // The sweep is genuinely noisy: repetitions of one point differ.
    EXPECT_NE(serial[0], serial[1]);
}

} // namespace
} // namespace exec
} // namespace mc
