/**
 * @file
 * Test/CLI client for the mc_serve daemon.
 *
 * Each positional argument is one JSON request document (or
 * `@file`: one request per non-empty line). Requests are sent on one
 * connection, in argument order; `--pipeline` sends every frame before
 * reading any response, which is how the chaos gate produces a
 * deterministic overload on the daemon's admission queue (the whole
 * burst arrives in frame order on one reader).
 *
 * Responses are printed to stdout one per line, *sorted by (id,
 * frame)*: response arrival order depends on scheduling, the sorted
 * dump does not — so two runs of the same request set can be
 * byte-compared (the determinism check of cmake/ServeChaos.cmake).
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/cli.hh"
#include "serve/protocol.hh"

namespace {

using namespace mc;

int
fail(const char *what, const std::string &detail)
{
    std::fprintf(stderr, "mc_client: %s: %s\n", what, detail.c_str());
    return exit_code::Failure;
}

int
connectTo(const std::string &socket_path, int port, double timeout_sec)
{
    int fd = -1;
    if (!socket_path.empty()) {
        sockaddr_un addr{};
        if (socket_path.size() >= sizeof(addr.sun_path))
            return -1;
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      socket_path.c_str());
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
    }
    // A dead daemon must fail the client, not hang it (CI safety).
    timeval tv{};
    tv.tv_sec = static_cast<long>(timeout_sec);
    tv.tv_usec = static_cast<long>((timeout_sec - tv.tv_sec) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("mc_client: send requests to an mc_serve daemon");
    cli.addFlag("socket", std::string(),
                "Unix socket path of the daemon (empty: TCP)");
    cli.addFlag("tcp-port", static_cast<std::int64_t>(0),
                "TCP port of the daemon on 127.0.0.1");
    cli.addFlag("repeat", static_cast<std::int64_t>(1),
                "send the request list this many times");
    cli.addFlag("pipeline", false,
                "send every frame before reading any response");
    cli.addFlag("timeout-sec", 120.0, "per-response read timeout");
    cli.requireIntAtLeast("repeat", 1);
    cli.requireIntAtLeast("tcp-port", 0);
    cli.requirePositiveDouble("timeout-sec");
    cli.parse(argc, argv);

    std::vector<std::string> requests;
    for (const std::string &arg : cli.positional()) {
        if (!arg.empty() && arg[0] == '@') {
            std::ifstream in(arg.substr(1));
            if (!in)
                return fail("cannot open request file", arg.substr(1));
            std::string line;
            while (std::getline(in, line))
                if (!line.empty())
                    requests.push_back(line);
        } else {
            requests.push_back(arg);
        }
    }
    if (requests.empty())
        return fail("no requests", "pass JSON documents or @file");

    const int repeat = static_cast<int>(cli.getInt("repeat"));
    std::vector<std::string> to_send;
    for (int i = 0; i < repeat; ++i)
        for (const std::string &request : requests)
            to_send.push_back(request);

    const int fd = connectTo(cli.getString("socket"),
                             static_cast<int>(cli.getInt("tcp-port")),
                             cli.getDouble("timeout-sec"));
    if (fd < 0)
        return fail("cannot connect", "is the daemon running?");

    std::vector<std::string> responses;
    auto read_one = [&]() -> bool {
        auto frame = serve::readFrame(fd);
        if (!frame.isOk() || !frame.value().has_value())
            return false;
        responses.push_back(*frame.value());
        return true;
    };

    const bool pipeline = cli.getBool("pipeline");
    for (const std::string &request : to_send) {
        Status sent = serve::writeFrame(fd, request);
        if (!sent.isOk()) {
            ::close(fd);
            return fail("send failed", sent.toString());
        }
        if (!pipeline && !read_one()) {
            ::close(fd);
            return fail("read failed", "daemon closed or timed out");
        }
    }
    if (pipeline) {
        for (std::size_t i = 0; i < to_send.size(); ++i) {
            if (!read_one()) {
                ::close(fd);
                return fail("read failed",
                            "daemon closed or timed out");
            }
        }
    }
    ::close(fd);

    // Sorted, so the dump depends only on the response *set*, never on
    // completion order.
    std::sort(responses.begin(), responses.end(),
              [](const std::string &a, const std::string &b) {
                  auto pa = serve::parseResponse(a);
                  auto pb = serve::parseResponse(b);
                  const std::string ida =
                      pa.isOk() ? pa.value().id : std::string();
                  const std::string idb =
                      pb.isOk() ? pb.value().id : std::string();
                  return std::tie(ida, a) < std::tie(idb, b);
              });
    for (const std::string &response : responses)
        std::printf("%s\n", response.c_str());
    return exit_code::Ok;
}
