/**
 * @file
 * mc_suite: supervised runner for a declared plan of bench processes.
 *
 * Runs every bench of a plan file as a watched child process —
 * wall-clock watchdog with SIGTERM → SIGKILL escalation, bounded
 * restarts with backoff, per-bench stdout/stderr logs, and a durable
 * JSON manifest (`<run-dir>/manifest.json`) recording command,
 * attempts, duration, and outcome for every bench. `--resume` skips
 * benches whose manifest entry is complete, so a killed overnight run
 * loses at most the bench that was executing. A bench that exhausts
 * its restart budget is recorded as failed and the suite continues;
 * the exit code turns nonzero only at the end.
 *
 *     mc_suite --plan suite.plan --run-dir runs/night1
 *     mc_suite --plan suite.plan --run-dir runs/night1 --resume
 *
 * See docs/RESILIENCE.md ("Suite supervision & durability") for the
 * plan format and manifest schema.
 */

#include <csignal>
#include <cstdio>

#include "common/cli.hh"
#include "common/status.hh"
#include "exec/supervisor.hh"

namespace {

using namespace mc;

extern "C" void
handleTerminationSignal(int)
{
    exec::Supervisor::requestShutdown();
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("mc_suite: supervised bench-suite runner "
                  "(watchdog, crash isolation, resumable manifest)");
    cli.addFlag("plan", std::string(),
                "suite plan file (required); see docs/RESILIENCE.md");
    cli.addFlag("run-dir", std::string("."),
                "directory for the manifest, logs, and bench outputs");
    cli.addFlag("resume", false,
                "skip benches recorded complete in the run-dir manifest");
    cli.addFlag("attempts", static_cast<std::int64_t>(2),
                "default restart budget per bench (plan may override)");
    cli.addFlag("deadline-sec", 0.0,
                "default wall-clock watchdog per bench, seconds "
                "(0 = none; plan may override)");
    cli.addFlag("grace-sec", 2.0,
                "seconds between watchdog SIGTERM and SIGKILL");
    cli.addFlag("backoff-sec", 0.05,
                "wall-clock backoff before the first restart");
    cli.addFlag("quiet", false, "suppress per-attempt progress lines");
    cli.addFlag("kill-after", static_cast<std::int64_t>(-1),
                "test hook: SIGKILL this supervisor after N recorded "
                "benches (-1 = never)");
    cli.requireIntAtLeast("attempts", 1);
    cli.requirePositiveDouble("grace-sec");
    cli.requirePositiveDouble("backoff-sec");
    cli.parse(argc, argv);

    const std::string plan_path = cli.getString("plan");
    if (plan_path.empty()) {
        std::fprintf(stderr, "%s: error: --plan is required (try --help)\n",
                     argv[0]);
        return exit_code::Usage;
    }
    if (cli.getDouble("deadline-sec") < 0.0) {
        std::fprintf(stderr,
                     "%s: error: --deadline-sec must be >= 0 (try "
                     "--help)\n",
                     argv[0]);
        return exit_code::Usage;
    }

    auto plan = exec::SuitePlan::load(plan_path);
    if (!plan.isOk()) {
        std::fprintf(stderr, "mc_suite: %s\n",
                     plan.status().toString().c_str());
        return exit_code::Usage;
    }

    exec::SupervisorOptions options;
    options.runDir = cli.getString("run-dir");
    options.resume = cli.getBool("resume");
    options.restart.maxAttempts = static_cast<int>(cli.getInt("attempts"));
    options.restart.initialBackoffSec = cli.getDouble("backoff-sec");
    options.defaultDeadlineSec = cli.getDouble("deadline-sec");
    options.killGraceSec = cli.getDouble("grace-sec");
    options.echoProgress = !cli.getBool("quiet");
    options.killAfterBenches = static_cast<int>(cli.getInt("kill-after"));

    // A suite interrupted by ^C or a scheduler must still kill its
    // child group and leave a readable manifest behind.
    std::signal(SIGINT, handleTerminationSignal);
    std::signal(SIGTERM, handleTerminationSignal);
    std::signal(SIGHUP, handleTerminationSignal);

    exec::Supervisor supervisor(plan.take(), options);
    auto result = supervisor.run();
    if (!result.isOk()) {
        std::fprintf(stderr, "mc_suite: %s\n",
                     result.status().toString().c_str());
        return exit_code::Failure;
    }

    const exec::SuiteResult &suite = result.value();
    std::size_t ok = 0, failed = 0, resumed = 0;
    for (const exec::BenchOutcome &bench : suite.benches) {
        ok += bench.ok();
        failed += !bench.ok();
        resumed += bench.resumedFromManifest;
    }
    std::fprintf(stderr,
                 "[mc_suite] %zu/%zu benches ok (%zu from manifest), "
                 "%zu failed%s; manifest: %s\n",
                 ok, suite.benches.size(), resumed, failed,
                 suite.interrupted ? ", interrupted" : "",
                 supervisor.manifestPath().c_str());
    for (const exec::BenchOutcome &bench : suite.benches) {
        if (!bench.ok()) {
            std::fprintf(stderr,
                         "[mc_suite]   %s failed: %s after %zu "
                         "attempt(s); logs: %s\n",
                         bench.name.c_str(), errorCodeName(bench.code),
                         bench.attempts.size(), bench.stderrLog.c_str());
        }
    }
    return suite.allOk() ? exit_code::Ok : exit_code::Failure;
}
