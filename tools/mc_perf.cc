/**
 * @file
 * mc_perf: the perf-regression harness of the fast functional-GEMM
 * backend (docs/PERF.md).
 *
 * Three generations of the same arithmetic are timed against each
 * other per datatype combo, matrix size, and thread count:
 *
 *  - the retained scalar reference loops ("legacy", scalarReferenceGemm),
 *  - the blocked/packed/threaded backend pinned to its scalar
 *    micro-kernel tier (MC_SIMD=scalar — the PR 4 fast path), and
 *  - every explicit-SIMD tier the CPU supports (SSE2/AVX2/AVX-512 on
 *    x86-64, NEON on aarch64).
 *
 * Every timed result is byte-compared against the scalar-tier result
 * (and against the legacy reference when the size permits): a run that
 * measures a numerically different kernel exits Internal rather than
 * reporting a meaningless speedup. Results go to stdout, and with
 * --out to an atomically published JSON report (BENCH_pr5.json in the
 * repo records the PR-acceptance run) including the detected CPU
 * features, which tiers were unavailable, and per-tier geometric-mean
 * speedups over the scalar tier for N >= 1024.
 *
 * The --check mode turns the tool into the `perf`/`simd` ctest smoke:
 * it fails unless every SIMD tier clears --min-speedup against the
 * scalar tier (and the scalar tier clears it against legacy).
 *
 * --pack-bench switches the tool into the packed-operand reuse sweep
 * (docs/PERF.md, "Operand packing & reuse"): per shape (--shape m,n,k
 * triples and/or the --decode preset) it times the fast path cold
 * (pack cache disabled, per-call staging through the scratch arena)
 * against warm (cache primed, staged panels served by content
 * fingerprint), memcmp-checks the two outputs identical, and reports
 * per-row cold/warm seconds plus decode and transformer-chain
 * geomeans (BENCH_pr10.json records the PR-acceptance run).
 *
 * --tune switches the tool into the autotuner (docs/PERF.md,
 * "Autotuning"): per (combo, SIMD tier, size bucket) it coordinate-
 * descends over the backend's block/thread candidates — measurements
 * classified by the top-down profiling layer (src/prof/topdown.hh) so
 * the search prunes hopeless candidates — and persists the winners as
 * a CRC32-guarded artifact at --tune-out. Every candidate's output is
 * byte-compared against the scalar-tier anchor before its timing
 * counts. --tune-apply=<artifact> activates a persisted artifact for
 * the normal timing sweep, which then times default blocks vs tuned
 * blocks per row and reports tuned-vs-default geomeans.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "blas/functional.hh"
#include "blas/gemm_types.hh"
#include "blas/int8_gemm.hh"
#include "blas/pack_cache.hh"
#include "blas/simd_dispatch.hh"
#include "blas/tune.hh"
#include "prof/topdown.hh"
#include "common/atomic_file.hh"
#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/status.hh"
#include "exec/thread_pool.hh"

namespace {

using namespace mc;

/** One (combo, size, tier, thread-count) timing. */
struct TierTiming
{
    blas::SimdTier tier = blas::SimdTier::Scalar;
    int threads = 0;
    double seconds = 0.0;
    /** legacy_scalar_seconds / seconds (0 = baseline skipped). */
    double speedupLegacy = 0.0;
    /** scalar_tier_seconds (same thread count) / seconds. */
    double speedupVsScalarTier = 0.0;

    // Tuned-vs-default comparison (--tune-apply / MC_TUNE=<artifact>).
    /** The blocks the auto fields resolved to (artifact or defaults). */
    blas::TunedConfig resolvedConfig;
    /** True when the artifact supplied non-default blocks. */
    bool tunedApplied = false;
    /** Seconds with the tuned blocks (0 when tuning is inactive). */
    double tunedSeconds = 0.0;
    /** default-blocks seconds / tuned seconds. */
    double tunedSpeedup = 0.0;
};

struct CaseResult
{
    blas::GemmCombo combo = blas::GemmCombo::Sgemm;
    std::size_t n = 0;
    bool roundEachStep = false;
    double scalarSeconds = 0.0; ///< legacy loop; 0 when skipped
    std::vector<TierTiming> fast;
};

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

template <typename T>
void
fillRandom(Matrix<T> &m, Rng &rng)
{
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
}

/** Full-range int8 operands (the float-driven fillRandom would
 *  truncate to {-1, 0, 1} and leave the requantizer untested). */
void
fillRandomI8(Matrix<std::int8_t> &m, Rng &rng)
{
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m(i, j) = static_cast<std::int8_t>(
                std::lround(rng.uniform(-128.0, 127.0)));
}

/** The quantization parameters every i8gemm timing uses: asymmetric
 *  (nonzero zero points) so the epilogue's correction terms are on the
 *  measured path, scales sized so outputs span [-128, 127]. */
blas::QuantParams
perfQuantParams()
{
    blas::QuantParams qp;
    qp.scaleA = 0.02f;
    qp.scaleB = 0.05f;
    qp.scaleD = 0.25f;
    qp.zeroA = 3;
    qp.zeroB = -5;
    qp.zeroD = 1;
    return qp;
}

/** Byte comparison of two result matrices (Half included: the storage
 *  types are trivially copyable bit patterns). */
template <typename T>
bool
bytesEqual(const Matrix<T> &x, const Matrix<T> &y)
{
    return std::memcmp(x.data(), y.data(),
                       x.rows() * x.cols() * sizeof(T)) == 0;
}

template <typename TCD, typename TAB, typename TAcc>
CaseResult
runCase(blas::GemmCombo combo, std::size_t n, bool round_each_step,
        const std::vector<blas::SimdTier> &tiers,
        const std::vector<int> &threads, int reps, bool with_scalar,
        std::uint64_t seed)
{
    Rng rng(seed);
    Matrix<TAB> a(n, n), b(n, n);
    Matrix<TCD> c(n, n);
    fillRandom(a, rng);
    fillRandom(b, rng);
    fillRandom(c, rng);
    const double alpha = 1.25, beta = 0.5;

    CaseResult out;
    out.combo = combo;
    out.n = n;
    out.roundEachStep = round_each_step;

    Matrix<TCD> d_scalar(n, n);
    if (with_scalar) {
        // One scalar pass is minutes at N = 2048; take the best of two
        // only when it is cheap.
        const int scalar_reps = n <= 512 ? 2 : 1;
        double best = std::numeric_limits<double>::max();
        for (int r = 0; r < scalar_reps; ++r) {
            const double t0 = nowSeconds();
            blas::scalarReferenceGemm<TCD, TAB, TAcc>(
                alpha, a, b, beta, c, d_scalar, round_each_step);
            best = std::min(best, nowSeconds() - t0);
        }
        out.scalarSeconds = best;
    }

    // The scalar tier runs first (callers put it first): its result is
    // the memcmp anchor for every SIMD tier, and its per-thread-count
    // timings are their speedup baseline.
    Matrix<TCD> d_anchor(n, n);
    bool have_anchor = false;
    std::map<int, double> scalar_tier_seconds;

    Matrix<TCD> d_fast(n, n);
    const bool tuned_compare = blas::tuningActive();
    for (blas::SimdTier tier : tiers) {
        for (int t : threads) {
            // Pin the built-in blocks explicitly: with an artifact
            // active, auto (0) fields would resolve to the tuned
            // blocks, and this timing is the *default* baseline.
            blas::FunctionalGemmOptions opts;
            opts.threads = t;
            opts.simd = tier;
            opts.blockM = blas::kDefaultBlockM;
            opts.blockN = blas::kDefaultBlockN;
            opts.blockK = blas::kDefaultBlockK;
            double best = std::numeric_limits<double>::max();
            for (int r = 0; r < reps; ++r) {
                const double t0 = nowSeconds();
                blas::fastReferenceGemm<TCD, TAB, TAcc>(
                    alpha, a, b, beta, c, d_fast, round_each_step, opts);
                best = std::min(best, nowSeconds() - t0);
            }
            if (with_scalar && !bytesEqual(d_fast, d_scalar)) {
                mc_fatal("fast backend diverged from the legacy scalar "
                         "path: ", blas::comboInfo(combo).name, " n=", n,
                         " simd=", blas::simdTierName(tier),
                         " threads=", t);
            }
            if (!have_anchor) {
                d_anchor = d_fast;
                have_anchor = true;
            } else if (!bytesEqual(d_fast, d_anchor)) {
                mc_fatal("SIMD tier diverged from the scalar tier: ",
                         blas::comboInfo(combo).name, " n=", n,
                         " simd=", blas::simdTierName(tier),
                         " threads=", t);
            }
            if (tier == blas::SimdTier::Scalar)
                scalar_tier_seconds[t] = best;
            TierTiming timing;
            timing.tier = tier;
            timing.threads = t;
            timing.seconds = best;
            timing.speedupLegacy =
                out.scalarSeconds > 0.0 ? out.scalarSeconds / best : 0.0;
            const auto base = scalar_tier_seconds.find(t);
            timing.speedupVsScalarTier =
                base != scalar_tier_seconds.end() ? base->second / best
                                                  : 0.0;

            // What the auto fields resolve to right now (the artifact
            // entry when one covers this key, the defaults otherwise).
            blas::FunctionalGemmOptions auto_opts;
            auto_opts.threads = t;
            auto_opts.simd = tier;
            const blas::FunctionalGemmOptions resolved =
                blas::resolveFunctionalOptions(auto_opts, combo, n);
            timing.resolvedConfig = {resolved.blockM, resolved.blockN,
                                     resolved.blockK, resolved.threads};
            timing.tunedApplied =
                tuned_compare &&
                (resolved.blockM != blas::kDefaultBlockM ||
                 resolved.blockN != blas::kDefaultBlockN ||
                 resolved.blockK != blas::kDefaultBlockK);
            if (timing.tunedApplied) {
                double tuned_best = std::numeric_limits<double>::max();
                for (int r = 0; r < reps; ++r) {
                    const double t0 = nowSeconds();
                    blas::fastReferenceGemm<TCD, TAB, TAcc>(
                        alpha, a, b, beta, c, d_fast, round_each_step,
                        auto_opts);
                    tuned_best = std::min(tuned_best, nowSeconds() - t0);
                }
                if (!bytesEqual(d_fast, d_anchor)) {
                    mc_fatal("tuned blocks diverged from the scalar-tier "
                             "anchor: ", blas::comboInfo(combo).name,
                             " n=", n, " simd=", blas::simdTierName(tier),
                             " threads=", t);
                }
                timing.tunedSeconds = tuned_best;
                timing.tunedSpeedup =
                    tuned_best > 0.0 ? best / tuned_best : 0.0;
            } else if (tuned_compare) {
                // The artifact resolves to the defaults here: the
                // baseline measurement doubles as the tuned one.
                timing.tunedSeconds = best;
                timing.tunedSpeedup = 1.0;
            }
            out.fast.push_back(timing);
        }
    }
    return out;
}

/**
 * The quantized-combo twin of runCase. Same three generations and the
 * same memcmp discipline — but through the int8 entry points
 * (scalarQuantizedGemm / fastQuantizedGemm), with full-range int8
 * operands and asymmetric quantization parameters so the zero-point
 * correction epilogue is part of every timing.
 */
CaseResult
runCaseI8(blas::GemmCombo combo, std::size_t n,
          const std::vector<blas::SimdTier> &tiers,
          const std::vector<int> &threads, int reps, bool with_scalar,
          std::uint64_t seed)
{
    Rng rng(seed);
    Matrix<std::int8_t> a(n, n), b(n, n), c(n, n);
    fillRandomI8(a, rng);
    fillRandomI8(b, rng);
    fillRandomI8(c, rng);
    const double alpha = 1.25, beta = 0.5;
    const blas::QuantParams qp = perfQuantParams();

    CaseResult out;
    out.combo = combo;
    out.n = n;
    out.roundEachStep = false;

    Matrix<std::int8_t> d_scalar(n, n);
    if (with_scalar) {
        const int scalar_reps = n <= 512 ? 2 : 1;
        double best = std::numeric_limits<double>::max();
        for (int r = 0; r < scalar_reps; ++r) {
            const double t0 = nowSeconds();
            blas::scalarQuantizedGemm(alpha, a, b, beta, c, d_scalar, qp);
            best = std::min(best, nowSeconds() - t0);
        }
        out.scalarSeconds = best;
    }

    Matrix<std::int8_t> d_anchor(n, n);
    bool have_anchor = false;
    std::map<int, double> scalar_tier_seconds;

    Matrix<std::int8_t> d_fast(n, n);
    const bool tuned_compare = blas::tuningActive();
    for (blas::SimdTier tier : tiers) {
        for (int t : threads) {
            blas::FunctionalGemmOptions opts;
            opts.threads = t;
            opts.simd = tier;
            opts.blockM = blas::kDefaultBlockM;
            opts.blockN = blas::kDefaultBlockN;
            opts.blockK = blas::kDefaultBlockK;
            double best = std::numeric_limits<double>::max();
            for (int r = 0; r < reps; ++r) {
                const double t0 = nowSeconds();
                blas::fastQuantizedGemm(alpha, a, b, beta, c, d_fast, qp,
                                        opts);
                best = std::min(best, nowSeconds() - t0);
            }
            if (with_scalar && !bytesEqual(d_fast, d_scalar)) {
                mc_fatal("fast backend diverged from the legacy scalar "
                         "path: ", blas::comboInfo(combo).name, " n=", n,
                         " simd=", blas::simdTierName(tier),
                         " threads=", t);
            }
            if (!have_anchor) {
                d_anchor = d_fast;
                have_anchor = true;
            } else if (!bytesEqual(d_fast, d_anchor)) {
                mc_fatal("SIMD tier diverged from the scalar tier: ",
                         blas::comboInfo(combo).name, " n=", n,
                         " simd=", blas::simdTierName(tier),
                         " threads=", t);
            }
            if (tier == blas::SimdTier::Scalar)
                scalar_tier_seconds[t] = best;
            TierTiming timing;
            timing.tier = tier;
            timing.threads = t;
            timing.seconds = best;
            timing.speedupLegacy =
                out.scalarSeconds > 0.0 ? out.scalarSeconds / best : 0.0;
            const auto base = scalar_tier_seconds.find(t);
            timing.speedupVsScalarTier =
                base != scalar_tier_seconds.end() ? base->second / best
                                                  : 0.0;

            blas::FunctionalGemmOptions auto_opts;
            auto_opts.threads = t;
            auto_opts.simd = tier;
            const blas::FunctionalGemmOptions resolved =
                blas::resolveFunctionalOptions(auto_opts, combo, n);
            timing.resolvedConfig = {resolved.blockM, resolved.blockN,
                                     resolved.blockK, resolved.threads};
            timing.tunedApplied =
                tuned_compare &&
                (resolved.blockM != blas::kDefaultBlockM ||
                 resolved.blockN != blas::kDefaultBlockN ||
                 resolved.blockK != blas::kDefaultBlockK);
            if (timing.tunedApplied) {
                double tuned_best = std::numeric_limits<double>::max();
                for (int r = 0; r < reps; ++r) {
                    const double t0 = nowSeconds();
                    blas::fastQuantizedGemm(alpha, a, b, beta, c, d_fast,
                                            qp, auto_opts);
                    tuned_best = std::min(tuned_best, nowSeconds() - t0);
                }
                if (!bytesEqual(d_fast, d_anchor)) {
                    mc_fatal("tuned blocks diverged from the scalar-tier "
                             "anchor: ", blas::comboInfo(combo).name,
                             " n=", n, " simd=", blas::simdTierName(tier),
                             " threads=", t);
                }
                timing.tunedSeconds = tuned_best;
                timing.tunedSpeedup =
                    tuned_best > 0.0 ? best / tuned_best : 0.0;
            } else if (tuned_compare) {
                timing.tunedSeconds = best;
                timing.tunedSpeedup = 1.0;
            }
            out.fast.push_back(timing);
        }
    }
    return out;
}

// ---- The autotuner (--tune) ----------------------------------------------

/** One (combo, tier, bucket) search outcome, for the report. */
struct TuneCaseResult
{
    blas::TuneKey key;
    std::size_t tunedN = 0;
    blas::TuneSearchResult search;
};

template <typename TCD, typename TAB, typename TAcc>
TuneCaseResult
tuneCase(blas::GemmCombo combo, std::size_t n, bool round_each_step,
         blas::SimdTier tier, int reps, double budget_sec,
         const std::vector<int> &thread_candidates, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix<TAB> a(n, n), b(n, n);
    Matrix<TCD> c(n, n);
    fillRandom(a, rng);
    fillRandom(b, rng);
    fillRandom(c, rng);
    const double alpha = 1.25, beta = 0.5;

    // The memcmp anchor: default blocks on the scalar tier. Every
    // candidate configuration must reproduce these bytes exactly —
    // the tuner refuses to persist a configuration it has not proven
    // bit-identical.
    Matrix<TCD> d_anchor(n, n), d_fast(n, n);
    {
        blas::FunctionalGemmOptions opts;
        opts.blockM = blas::kDefaultBlockM;
        opts.blockN = blas::kDefaultBlockN;
        opts.blockK = blas::kDefaultBlockK;
        opts.simd = blas::SimdTier::Scalar;
        blas::fastReferenceGemm<TCD, TAB, TAcc>(
            alpha, a, b, beta, c, d_anchor, round_each_step, opts);
    }

    prof::TopdownCounters counters;
    prof::TopdownHints hints;
    hints.flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                  static_cast<double>(n);
    hints.bytes = static_cast<double>(n) * static_cast<double>(n) *
                  static_cast<double>(2 * sizeof(TAB) + 2 * sizeof(TCD));

    const auto measure = [&](const blas::TunedConfig &config) {
        blas::FunctionalGemmOptions opts;
        opts.threads = config.threads;
        opts.blockM = config.blockM;
        opts.blockN = config.blockN;
        opts.blockK = config.blockK;
        opts.simd = tier;
        prof::TopdownSample best;
        best.seconds = std::numeric_limits<double>::max();
        for (int r = 0; r < reps; ++r) {
            const prof::TopdownSample sample = counters.measure([&] {
                blas::fastReferenceGemm<TCD, TAB, TAcc>(
                    alpha, a, b, beta, c, d_fast, round_each_step, opts);
            });
            if (sample.seconds < best.seconds)
                best = sample;
        }
        if (!bytesEqual(d_fast, d_anchor)) {
            mc_fatal("candidate blocks diverged from the scalar anchor: ",
                     blas::comboInfo(combo).name, " n=", n,
                     " simd=", blas::simdTierName(tier),
                     " bm=", config.blockM, " bn=", config.blockN,
                     " bk=", config.blockK, " threads=", config.threads);
        }
        blas::TuneMeasurement m;
        m.seconds = best.seconds;
        m.bound = prof::classifySample(best, hints);
        return m;
    };

    blas::TuneSearchSpace space;
    space.accBytes = sizeof(TAcc);
    space.budgetSec = budget_sec;
    space.threads = thread_candidates;

    TuneCaseResult out;
    out.key = blas::TuneKey{combo, tier, blas::tuneBucket(n)};
    out.tunedN = n;
    out.search = blas::tuneSearch(measure, space);
    return out;
}

/** tuneCase for the quantized combo: int8 operands and entry points,
 *  int32 accumulators sizing the search space's accBytes. */
TuneCaseResult
tuneCaseI8(blas::GemmCombo combo, std::size_t n, blas::SimdTier tier,
           int reps, double budget_sec,
           const std::vector<int> &thread_candidates, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix<std::int8_t> a(n, n), b(n, n), c(n, n);
    fillRandomI8(a, rng);
    fillRandomI8(b, rng);
    fillRandomI8(c, rng);
    const double alpha = 1.25, beta = 0.5;
    const blas::QuantParams qp = perfQuantParams();

    Matrix<std::int8_t> d_anchor(n, n), d_fast(n, n);
    {
        blas::FunctionalGemmOptions opts;
        opts.blockM = blas::kDefaultBlockM;
        opts.blockN = blas::kDefaultBlockN;
        opts.blockK = blas::kDefaultBlockK;
        opts.simd = blas::SimdTier::Scalar;
        blas::fastQuantizedGemm(alpha, a, b, beta, c, d_anchor, qp, opts);
    }

    prof::TopdownCounters counters;
    prof::TopdownHints hints;
    hints.flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                  static_cast<double>(n);
    hints.bytes = static_cast<double>(n) * static_cast<double>(n) *
                  static_cast<double>(4 * sizeof(std::int8_t));

    const auto measure = [&](const blas::TunedConfig &config) {
        blas::FunctionalGemmOptions opts;
        opts.threads = config.threads;
        opts.blockM = config.blockM;
        opts.blockN = config.blockN;
        opts.blockK = config.blockK;
        opts.simd = tier;
        prof::TopdownSample best;
        best.seconds = std::numeric_limits<double>::max();
        for (int r = 0; r < reps; ++r) {
            const prof::TopdownSample sample = counters.measure([&] {
                blas::fastQuantizedGemm(alpha, a, b, beta, c, d_fast, qp,
                                        opts);
            });
            if (sample.seconds < best.seconds)
                best = sample;
        }
        if (!bytesEqual(d_fast, d_anchor)) {
            mc_fatal("candidate blocks diverged from the scalar anchor: ",
                     blas::comboInfo(combo).name, " n=", n,
                     " simd=", blas::simdTierName(tier),
                     " bm=", config.blockM, " bn=", config.blockN,
                     " bk=", config.blockK, " threads=", config.threads);
        }
        blas::TuneMeasurement m;
        m.seconds = best.seconds;
        m.bound = prof::classifySample(best, hints);
        return m;
    };

    blas::TuneSearchSpace space;
    space.accBytes = sizeof(std::int32_t);
    space.budgetSec = budget_sec;
    space.threads = thread_candidates;

    TuneCaseResult out;
    out.key = blas::TuneKey{combo, tier, blas::tuneBucket(n)};
    out.tunedN = n;
    out.search = blas::tuneSearch(measure, space);
    return out;
}

TuneCaseResult
tuneCombo(blas::GemmCombo combo, std::size_t n, blas::SimdTier tier,
          int reps, double budget_sec,
          const std::vector<int> &thread_candidates, std::uint64_t seed)
{
    switch (combo) {
      case blas::GemmCombo::Dgemm:
        return tuneCase<double, double, double>(
            combo, n, false, tier, reps, budget_sec, thread_candidates,
            seed);
      case blas::GemmCombo::Sgemm:
        return tuneCase<float, float, float>(
            combo, n, false, tier, reps, budget_sec, thread_candidates,
            seed);
      case blas::GemmCombo::Hgemm:
        return tuneCase<fp::Half, fp::Half, float>(
            combo, n, true, tier, reps, budget_sec, thread_candidates,
            seed);
      case blas::GemmCombo::Hhs:
        return tuneCase<fp::Half, fp::Half, float>(
            combo, n, false, tier, reps, budget_sec, thread_candidates,
            seed);
      case blas::GemmCombo::Hss:
        return tuneCase<float, fp::Half, float>(
            combo, n, false, tier, reps, budget_sec, thread_candidates,
            seed);
      case blas::GemmCombo::I8gemm:
        return tuneCaseI8(combo, n, tier, reps, budget_sec,
                          thread_candidates, seed);
    }
    mc_panic("unreachable combo in mc_perf --tune");
}

CaseResult
runCombo(blas::GemmCombo combo, std::size_t n,
         const std::vector<blas::SimdTier> &tiers,
         const std::vector<int> &threads, int reps, bool with_scalar,
         std::uint64_t seed)
{
    switch (combo) {
      case blas::GemmCombo::Dgemm:
        return runCase<double, double, double>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Sgemm:
        return runCase<float, float, float>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Hgemm:
        return runCase<fp::Half, fp::Half, float>(
            combo, n, true, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Hhs:
        return runCase<fp::Half, fp::Half, float>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Hss:
        return runCase<float, fp::Half, float>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::I8gemm:
        return runCaseI8(combo, n, tiers, threads, reps, with_scalar,
                         seed);
    }
    mc_panic("unreachable combo in mc_perf");
}

std::vector<std::string>
splitCsv(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Geometric mean of @p ratios; 0 when empty. */
double
geomean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double r : ratios)
        log_sum += std::log(r);
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

// ---- The packed-operand reuse sweep (--pack-bench) -----------------------

struct PackShape
{
    std::size_t m = 0, n = 0, k = 0;
};

/** One warm-vs-cold row of the pack sweep. */
struct PackRow
{
    blas::GemmCombo combo = blas::GemmCombo::Hhs;
    /** qt-chain stage name; empty for --shape / --decode rows. */
    std::string stage;
    PackShape shape;
    std::size_t batch = 1;
    /** Decode-preset row with m <= 16: counted in the acceptance
     *  geomean (ISSUE 10). */
    bool decodeShaped = false;
    double coldSec = 0.0; ///< per-call seconds, pack cache disabled
    double warmSec = 0.0; ///< per-call seconds, cache primed
    double speedup = 0.0; ///< coldSec / warmSec
    /** Per-repetition per-call seconds (rep r of the cold and warm
     *  bursts): the qt-chain summary sums these across stages per rep
     *  so its speedup is geomeaned over whole-chain replays. */
    std::vector<double> coldRepSec, warmRepSec;
    std::uint64_t packHits = 0;
    std::uint64_t packMisses = 0;
    std::uint64_t packBytes = 0;
};

/** Calls per timing sample: a decode-shaped GEMM finishes in
 *  microseconds, so one sample times a burst and divides — that is
 *  also exactly the replay pattern the cache exists for. */
int
packBenchInner(const PackShape &s, std::size_t batch)
{
    const double ops = 2.0 * static_cast<double>(s.m) *
                       static_cast<double>(s.n) *
                       static_cast<double>(s.k) *
                       static_cast<double>(batch);
    constexpr double kTargetOps = 6.4e7;
    if (ops >= kTargetOps)
        return 1;
    return std::min(512, std::max(1, static_cast<int>(kTargetOps / ops)));
}

/**
 * The shared warm/cold protocol. @p run executes one full call into
 * the caller's cold or warm output buffer; timings are best-of-reps
 * over bursts of @p inner calls. Cold disables the pack cache (every
 * call re-stages through the scratch arena); warm clears + primes it,
 * so every timed call hits. The caller memcmps the two outputs — a
 * difference is a correctness bug, not a perf result.
 */
template <typename ColdFn, typename WarmFn>
void
packTimeRow(PackRow &row, int reps, int inner, const ColdFn &run_cold,
            const WarmFn &run_warm)
{
    blas::PackCache::setEnabled(false);
    double cold = std::numeric_limits<double>::max();
    for (int r = 0; r < reps; ++r) {
        const double t0 = nowSeconds();
        for (int i = 0; i < inner; ++i)
            run_cold();
        const double t = (nowSeconds() - t0) / inner;
        row.coldRepSec.push_back(t);
        cold = std::min(cold, t);
    }

    blas::PackCache::setEnabled(true);
    blas::PackCache::instance().clear();
    run_warm(); // prime: the misses land here, the timed calls hit
    const blas::PackCacheStats before = blas::PackCache::globalStats();
    double warm = std::numeric_limits<double>::max();
    for (int r = 0; r < reps; ++r) {
        const double t0 = nowSeconds();
        for (int i = 0; i < inner; ++i)
            run_warm();
        const double t = (nowSeconds() - t0) / inner;
        row.warmRepSec.push_back(t);
        warm = std::min(warm, t);
    }
    const blas::PackCacheStats after = blas::PackCache::globalStats();

    row.coldSec = cold;
    row.warmSec = warm;
    row.speedup = warm > 0.0 ? cold / warm : 0.0;
    row.packHits = after.hits - before.hits;
    row.packMisses = after.misses - before.misses;
    row.packBytes = after.residentBytes;
}

template <typename TCD, typename TAB, typename TAcc>
PackRow
packBenchCase(blas::GemmCombo combo, const PackShape &shape,
              bool round_each_step, bool decode_shaped, int reps,
              std::uint64_t seed)
{
    Rng rng(seed);
    Matrix<TAB> a(shape.m, shape.k), b(shape.k, shape.n);
    Matrix<TCD> c(shape.m, shape.n);
    fillRandom(a, rng);
    fillRandom(b, rng);
    fillRandom(c, rng);
    const double alpha = 1.25, beta = 0.5;
    blas::FunctionalGemmOptions opts;
    opts.threads = 1;

    PackRow row;
    row.combo = combo;
    row.shape = shape;
    row.decodeShaped = decode_shaped;

    Matrix<TCD> d_cold(shape.m, shape.n), d_warm(shape.m, shape.n);
    const int inner = packBenchInner(shape, 1);
    packTimeRow(
        row, reps, inner,
        [&] {
            blas::fastReferenceGemm<TCD, TAB, TAcc>(
                alpha, a, b, beta, c, d_cold, round_each_step, opts);
        },
        [&] {
            blas::fastReferenceGemm<TCD, TAB, TAcc>(
                alpha, a, b, beta, c, d_warm, round_each_step, opts);
        });
    if (!bytesEqual(d_cold, d_warm)) {
        mc_fatal("pack cache changed the result bytes: ",
                 blas::comboInfo(combo).name, " m=", shape.m,
                 " n=", shape.n, " k=", shape.k);
    }
    return row;
}

/** The int8 rows, batched through fastBatchedQuantizedGemm (batch = 1
 *  for the plain shapes; the attention stages carry their per-head
 *  batch, every entry's operands distinct). */
PackRow
packBenchCaseI8(const PackShape &shape, std::size_t batch,
                const char *stage, bool decode_shaped, int reps,
                std::uint64_t seed)
{
    Rng rng(seed);
    const std::size_t m = shape.m, n = shape.n, k = shape.k;
    std::vector<std::int8_t> a(batch * m * k), b(batch * k * n),
        c(batch * m * n), d_cold(batch * m * n), d_warm(batch * m * n);
    const auto fill = [&](std::vector<std::int8_t> &v) {
        for (std::int8_t &x : v)
            x = static_cast<std::int8_t>(
                std::lround(rng.uniform(-128.0, 127.0)));
    };
    fill(a);
    fill(b);
    fill(c);
    const double alpha = 1.25, beta = 0.5;
    const blas::QuantParams qp = perfQuantParams();
    blas::FunctionalGemmOptions opts;
    opts.threads = 1;

    PackRow row;
    row.combo = blas::GemmCombo::I8gemm;
    if (stage)
        row.stage = stage;
    row.shape = shape;
    row.batch = batch;
    row.decodeShaped = decode_shaped;

    const auto run = [&](std::vector<std::int8_t> &d) {
        blas::fastBatchedQuantizedGemm(batch, alpha, a.data(), m * k,
                                       b.data(), k * n, beta, c.data(),
                                       m * n, d.data(), m * n, m, n, k,
                                       qp, opts);
    };
    const int inner = packBenchInner(shape, batch);
    packTimeRow(row, reps, inner, [&] { run(d_cold); },
                [&] { run(d_warm); });
    if (std::memcmp(d_cold.data(), d_warm.data(), d_cold.size()) != 0) {
        mc_fatal("pack cache changed the result bytes: i8gemm",
                 stage ? std::string(" [") + stage + "]" : std::string(),
                 " m=", m, " n=", n, " k=", k, " batch=", batch);
    }
    return row;
}

PackRow
packBenchCombo(blas::GemmCombo combo, const PackShape &shape,
               bool decode_shaped, int reps, std::uint64_t seed)
{
    switch (combo) {
      case blas::GemmCombo::Dgemm:
        return packBenchCase<double, double, double>(
            combo, shape, false, decode_shaped, reps, seed);
      case blas::GemmCombo::Sgemm:
        return packBenchCase<float, float, float>(
            combo, shape, false, decode_shaped, reps, seed);
      case blas::GemmCombo::Hgemm:
        return packBenchCase<fp::Half, fp::Half, float>(
            combo, shape, true, decode_shaped, reps, seed);
      case blas::GemmCombo::Hhs:
        return packBenchCase<fp::Half, fp::Half, float>(
            combo, shape, false, decode_shaped, reps, seed);
      case blas::GemmCombo::Hss:
        return packBenchCase<float, fp::Half, float>(
            combo, shape, false, decode_shaped, reps, seed);
      case blas::GemmCombo::I8gemm:
        return packBenchCaseI8(shape, 1, nullptr, decode_shaped, reps,
                               seed);
    }
    mc_panic("unreachable combo in mc_perf --pack-bench");
}

/** "m,n,k" triples separated by ';'. */
std::vector<PackShape>
parseShapeList(const std::string &text)
{
    std::vector<PackShape> shapes;
    std::stringstream ss(text);
    std::string triple;
    while (std::getline(ss, triple, ';')) {
        if (triple.empty())
            continue;
        const std::vector<std::string> dims = splitCsv(triple);
        if (dims.size() != 3)
            mc_fatal("bad --shape entry '", triple,
                     "': expected m,n,k");
        PackShape s;
        s.m = static_cast<std::size_t>(std::stoull(dims[0]));
        s.n = static_cast<std::size_t>(std::stoull(dims[1]));
        s.k = static_cast<std::size_t>(std::stoull(dims[2]));
        if (s.m == 0 || s.n == 0 || s.k == 0)
            mc_fatal("bad --shape entry '", triple,
                     "': dimensions must be positive");
        shapes.push_back(s);
    }
    return shapes;
}

/** The decode preset: token-generation GEMM shapes. m is the batch of
 *  in-flight tokens; the weight panel (n x k) is what the pack cache
 *  amortizes. hgemm is deliberately absent — its per-step-rounded
 *  chain is compute-bound even at m = 1. */
constexpr std::size_t kDecodeM[] = {1, 8, 16, 64};
constexpr std::size_t kDecodeNk[] = {768, 2048};
constexpr blas::GemmCombo kDecodeCombos[] = {
    blas::GemmCombo::Hhs, blas::GemmCombo::Hss,
    blas::GemmCombo::I8gemm};

/** The ext_quant_transformer block's GEMM chain at seq = 128 (GPT-2
 *  small), re-timed here wall-clock warm vs cold — the bench itself
 *  measures simulated device time, so the pack win shows up in its
 *  --verify path and in this chain, not in its TOPS column. */
struct QtStage
{
    const char *name;
    std::size_t m, n, k, batch;
};
constexpr QtStage kQtChain[] = {
    {"qkv_proj", 128, 3 * 768, 768, 1},
    {"attn_scores", 128, 128, 64, 12},
    {"attn_context", 128, 64, 128, 12},
    {"out_proj", 128, 768, 768, 1},
    {"mlp_up", 128, 4 * 768, 768, 1},
    {"mlp_down", 128, 768, 4 * 768, 1},
};

int
runPackBench(const CliParser &cli,
             const std::vector<blas::GemmCombo> &combos)
{
    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    const bool decode = cli.getBool("decode");
    const std::vector<PackShape> shapes =
        parseShapeList(cli.getString("shape"));

    std::vector<PackRow> rows;
    // Explicit --shape rows run under the --combos selection.
    for (const PackShape &s : shapes) {
        for (blas::GemmCombo combo : combos) {
            std::fprintf(stderr,
                         "[mc_perf] pack %s m=%zu n=%zu k=%zu...\n",
                         blas::comboInfo(combo).name, s.m, s.n, s.k);
            rows.push_back(
                packBenchCombo(combo, s, false, reps, seed));
        }
    }
    if (decode) {
        for (blas::GemmCombo combo : kDecodeCombos) {
            for (std::size_t nk : kDecodeNk) {
                for (std::size_t m : kDecodeM) {
                    const PackShape s{m, nk, nk};
                    std::fprintf(stderr,
                                 "[mc_perf] pack decode %s m=%zu "
                                 "nk=%zu...\n",
                                 blas::comboInfo(combo).name, m, nk);
                    rows.push_back(packBenchCombo(combo, s, m <= 16,
                                                  reps, seed));
                }
            }
        }
        for (const QtStage &st : kQtChain) {
            std::fprintf(stderr, "[mc_perf] pack qt %s...\n", st.name);
            rows.push_back(packBenchCaseI8({st.m, st.n, st.k}, st.batch,
                                           st.name, false, reps, seed));
        }
    }
    if (rows.empty()) {
        std::fprintf(stderr,
                     "[mc_perf] --pack-bench needs --shape and/or "
                     "--decode\n");
        return exitCodeFor(ErrorCode::InvalidArgument);
    }
    blas::PackCache::setEnabled(true);

    std::vector<double> decode_ratios;
    for (const PackRow &r : rows) {
        std::printf("pack %-6s %-12s m=%-4zu n=%-4zu k=%-4zu batch=%-2zu "
                    "cold=%10.3e warm=%10.3e speedup=%5.2fx hits=%llu "
                    "misses=%llu bytes=%llu\n",
                    blas::comboInfo(r.combo).name,
                    r.stage.empty() ? "-" : r.stage.c_str(), r.shape.m,
                    r.shape.n, r.shape.k, r.batch, r.coldSec, r.warmSec,
                    r.speedup,
                    static_cast<unsigned long long>(r.packHits),
                    static_cast<unsigned long long>(r.packMisses),
                    static_cast<unsigned long long>(r.packBytes));
        if (r.decodeShaped && r.speedup > 0.0)
            decode_ratios.push_back(r.speedup);
    }
    const double decode_geo = geomean(decode_ratios);
    if (!decode_ratios.empty())
        std::printf("geomean(decode m<=16) warm_vs_cold=%5.2fx\n",
                    decode_geo);

    // The qt summary reflects how ext_quant_transformer actually
    // replays: one warm rep runs the *whole* chain, so each rep's
    // speedup is the time-weighted chain total (the big projection /
    // MLP GEMMs dominate wall clock, not the tiny per-head attention
    // multiplies), geomeaned across the replays.
    std::vector<double> qt_ratios;
    {
        const std::vector<const PackRow *> qt = [&] {
            std::vector<const PackRow *> v;
            for (const PackRow &r : rows)
                if (!r.stage.empty())
                    v.push_back(&r);
            return v;
        }();
        if (!qt.empty()) {
            for (std::size_t rep = 0;; ++rep) {
                double cold_sum = 0.0, warm_sum = 0.0;
                bool have_rep = true;
                for (const PackRow *r : qt) {
                    if (rep >= r->coldRepSec.size() ||
                        rep >= r->warmRepSec.size()) {
                        have_rep = false;
                        break;
                    }
                    cold_sum += r->coldRepSec[rep];
                    warm_sum += r->warmRepSec[rep];
                }
                if (!have_rep)
                    break;
                if (warm_sum > 0.0)
                    qt_ratios.push_back(cold_sum / warm_sum);
            }
        }
    }
    const double qt_geo = geomean(qt_ratios);
    if (!qt_ratios.empty())
        std::printf("geomean(qt chain reps) warm_vs_cold=%5.2fx\n",
                    qt_geo);

    const std::string out_path = cli.getString("out");
    if (!out_path.empty()) {
        const blas::CpuFeatures &cpu = blas::cpuFeatures();
        JsonValue report = JsonValue::object();
        report.set("bench", "mc_perf --pack-bench");
        report.set("description",
                   "packed-operand reuse: per-call wall-clock with the "
                   "pack cache disabled (cold: every call re-stages "
                   "through the scratch arena) vs primed (warm: staged "
                   "panels served by content fingerprint). Outputs are "
                   "memcmp-identical in both modes.");
        report.set("best_tier",
                   blas::simdTierName(blas::bestSimdTier()));
        JsonValue features = JsonValue::object();
        features.set("sse2", cpu.sse2);
        features.set("avx2", cpu.avx2);
        features.set("avx512", cpu.avx512);
        features.set("avx512vnni", cpu.avx512vnni);
        features.set("neon", cpu.neon);
        report.set("cpu_features", std::move(features));
        JsonValue jrows = JsonValue::array();
        for (const PackRow &r : rows) {
            JsonValue jr = JsonValue::object();
            jr.set("combo", blas::comboInfo(r.combo).name);
            if (!r.stage.empty())
                jr.set("stage", r.stage);
            jr.set("m", static_cast<std::int64_t>(r.shape.m));
            jr.set("n", static_cast<std::int64_t>(r.shape.n));
            jr.set("k", static_cast<std::int64_t>(r.shape.k));
            jr.set("batch", static_cast<std::int64_t>(r.batch));
            jr.set("decode_shaped", r.decodeShaped);
            jr.set("cold_sec", r.coldSec);
            jr.set("warm_sec", r.warmSec);
            jr.set("speedup_warm_vs_cold", r.speedup);
            jr.set("pack_hits",
                   static_cast<std::int64_t>(r.packHits));
            jr.set("pack_misses",
                   static_cast<std::int64_t>(r.packMisses));
            jr.set("pack_bytes",
                   static_cast<std::int64_t>(r.packBytes));
            jrows.append(std::move(jr));
        }
        report.set("rows", std::move(jrows));
        if (!decode_ratios.empty())
            report.set("geomean_decode_warm_vs_cold", decode_geo);
        if (!qt_ratios.empty())
            report.set("geomean_qt_chain_warm_vs_cold", qt_geo);
        AtomicFileWriter writer(out_path);
        writer.stream() << report.serialize() << "\n";
        const Status committed = writer.commit();
        if (!committed.isOk()) {
            std::fprintf(stderr, "[mc_perf] --out commit failed: %s\n",
                         committed.toString().c_str());
            return exitCodeFor(ErrorCode::DataLoss);
        }
    }

    if (cli.getBool("check")) {
        const double min_speedup = cli.getDouble("min-speedup");
        if (!decode_ratios.empty() && decode_geo < min_speedup) {
            std::fprintf(stderr,
                         "[mc_perf] FAILED: decode warm/cold geomean "
                         "%.2fx below required %.2fx\n",
                         decode_geo, min_speedup);
            return exitCodeFor(ErrorCode::Internal);
        }
    }
    return exitCodeFor(ErrorCode::Ok);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("mc_perf: functional-GEMM backend timing (legacy "
                  "scalar loops vs blocked backend per SIMD tier)");
    cli.addFlag("sizes", std::string("512,1024"),
                "comma-separated square problem sizes");
    cli.addFlag("combos", std::string("all"),
                "comma-separated datatype combos (dgemm,sgemm,hgemm,"
                "hss,hhs,i8gemm) or 'all'");
    cli.addFlag("threads", std::string("1,8"),
                "comma-separated thread counts for the fast path");
    cli.addFlag("simd", std::string("all"),
                "comma-separated micro-kernel tiers (scalar,sse2,avx2,"
                "avx512,neon) or 'all' = every tier this CPU supports");
    cli.addFlag("reps", static_cast<std::int64_t>(3),
                "fast-path repetitions per case (best-of)");
    cli.requireIntAtLeast("reps", 1);
    cli.addFlag("scalar-maxn", static_cast<std::int64_t>(4096),
                "skip the legacy scalar baseline (the cross-check "
                "against the scalar *tier* always runs) above this size");
    cli.addFlag("seed", static_cast<std::int64_t>(0x5eed),
                "operand randomization seed");
    cli.addFlag("out", std::string(),
                "write the JSON report atomically to this file "
                "(e.g. BENCH_pr5.json)");
    cli.addFlag("check", false,
                "exit nonzero unless every SIMD tier clears "
                "--min-speedup vs the scalar tier (the perf ctest "
                "smoke)");
    cli.addFlag("min-speedup", 1.0,
                "with --check: required speedup ratio");
    cli.addFlag("tune", false,
                "autotune block sizes per (combo, tier, size bucket) and "
                "persist the winners to --tune-out instead of running "
                "the timing sweep");
    cli.addFlag("tune-reps", static_cast<std::int64_t>(2),
                "with --tune: measurements per candidate (best-of)");
    cli.requireIntAtLeast("tune-reps", 1);
    cli.addFlag("tune-budget-sec", 20.0,
                "with --tune: measurement budget per (combo, tier, "
                "bucket) search");
    cli.requirePositiveDouble("tune-budget-sec");
    cli.addFlag("tune-out", std::string("mc_tune.json"),
                "with --tune: artifact output path");
    cli.addFlag("tune-apply", std::string(),
                "activate this tuning artifact for the timing sweep "
                "(also honours the MC_TUNE environment variable)");
    cli.addFlag("pack-bench", false,
                "time each shape warm (pack cache primed) vs cold "
                "(cache disabled) instead of the tier sweep; outputs "
                "are memcmp-checked identical in both modes");
    cli.addFlag("shape", std::string(),
                "with --pack-bench: semicolon-separated m,n,k triples "
                "(e.g. '1,768,768;16,2048,2048'), run per --combos");
    cli.addFlag("decode", false,
                "with --pack-bench: add the decode preset (m in "
                "{1,8,16,64} x n=k in {768,2048}, combos hhs/hss/"
                "i8gemm) plus the quantized GPT-2 block chain at "
                "seq=128");
    cli.parse(argc, argv);

    std::vector<blas::GemmCombo> combos;
    const std::string combo_list = cli.getString("combos");
    if (combo_list == "all") {
        combos.assign(std::begin(blas::allLibraryCombos),
                      std::end(blas::allLibraryCombos));
    } else {
        for (const std::string &name : splitCsv(combo_list))
            combos.push_back(blas::parseCombo(name));
    }

    if (cli.getBool("pack-bench") || cli.getBool("decode") ||
        !cli.getString("shape").empty())
        return runPackBench(cli, combos);

    std::vector<std::size_t> sizes;
    for (const std::string &s : splitCsv(cli.getString("sizes")))
        sizes.push_back(static_cast<std::size_t>(std::stoull(s)));
    std::vector<int> threads;
    for (const std::string &s : splitCsv(cli.getString("threads")))
        threads.push_back(std::stoi(s));

    // Resolve the tier list. The scalar tier always runs (and runs
    // first): it is the memcmp anchor and the speedup baseline.
    const std::vector<blas::SimdTier> available =
        blas::availableSimdTiers();
    std::vector<blas::SimdTier> tiers{blas::SimdTier::Scalar};
    std::vector<std::string> unavailable_requested;
    const std::string simd_list = cli.getString("simd");
    if (simd_list == "all") {
        for (blas::SimdTier tier : available)
            if (tier != blas::SimdTier::Scalar)
                tiers.push_back(tier);
    } else {
        for (const std::string &name : splitCsv(simd_list)) {
            blas::SimdTier tier;
            if (!blas::parseSimdTier(name, &tier) ||
                tier == blas::SimdTier::Auto)
                mc_fatal("bad --simd tier '", name, "'");
            if (!blas::simdTierAvailable(tier)) {
                unavailable_requested.push_back(name);
                std::fprintf(stderr,
                             "[mc_perf] tier '%s' unavailable on this "
                             "CPU; skipping\n", name.c_str());
                continue;
            }
            if (tier != blas::SimdTier::Scalar)
                tiers.push_back(tier);
        }
    }
    if (sizes.empty() || threads.empty() || combos.empty()) {
        std::fprintf(stderr, "nothing to measure\n");
        return exitCodeFor(ErrorCode::InvalidArgument);
    }

    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto scalar_maxn =
        static_cast<std::size_t>(cli.getInt("scalar-maxn"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    const std::string apply_path = cli.getString("tune-apply");
    if (!apply_path.empty()) {
        Result<blas::TuningArtifact> loaded =
            blas::loadTuningArtifact(apply_path);
        if (!loaded.isOk()) {
            std::fprintf(stderr, "[mc_perf] --tune-apply failed: %s\n",
                         loaded.status().toString().c_str());
            return exitCodeFor(loaded.status().code());
        }
        const Status activated =
            blas::setActiveTuningArtifact(loaded.take());
        if (!activated.isOk()) {
            std::fprintf(stderr, "[mc_perf] --tune-apply failed: %s\n",
                         activated.toString().c_str());
            return exitCodeFor(activated.code());
        }
        std::fprintf(stderr, "[mc_perf] tuning artifact active: %s\n",
                     blas::activeTuningLabel().c_str());
    }

    if (cli.getBool("tune")) {
        const int tune_reps = static_cast<int>(cli.getInt("tune-reps"));
        const double budget_sec = cli.getDouble("tune-budget-sec");
        const std::string tune_out = cli.getString("tune-out");

        // Thread fan-out candidates: serial always, plus the machine's
        // full concurrency when it has more than one core.
        std::vector<int> thread_candidates{1};
        const int hw =
            static_cast<int>(exec::ThreadPool::hardwareThreads());
        if (hw > 1)
            thread_candidates.push_back(hw);

        blas::TuningArtifact artifact;
        artifact.fingerprint = blas::hostTuneFingerprint();
        artifact.createdBy = "mc_perf --tune";
        std::vector<TuneCaseResult> tuned_cases;
        for (blas::GemmCombo combo : combos) {
            for (blas::SimdTier tier : tiers) {
                for (std::size_t n : sizes) {
                    const blas::TuneKey key{combo, tier,
                                            blas::tuneBucket(n)};
                    if (artifact.entries.count(key) > 0)
                        continue; // this bucket is already tuned
                    std::fprintf(stderr,
                                 "[mc_perf] tune %s simd=%s n=%zu "
                                 "(bucket %zu, backend %s)...\n",
                                 blas::comboInfo(combo).name,
                                 blas::simdTierName(tier), n, key.nBucket,
                                 prof::topdownBackendName());
                    TuneCaseResult result = tuneCombo(
                        combo, n, tier, tune_reps, budget_sec,
                        thread_candidates, seed);
                    const blas::TuneSearchResult &s = result.search;
                    std::printf(
                        "tune %-6s simd=%-7s bucket=%-5zu "
                        "best=%d/%d/%d t=%d speedup=%5.2fx bound=%s "
                        "measured=%d pruned=%d%s\n",
                        blas::comboInfo(combo).name,
                        blas::simdTierName(tier), key.nBucket,
                        s.best.blockM, s.best.blockN, s.best.blockK,
                        s.best.threads, s.speedup,
                        prof::topdownClassName(s.bestBound), s.measured,
                        s.pruned,
                        s.budgetExhausted ? " (budget exhausted)" : "");
                    blas::TunedConfig def;
                    if (!(s.best == def)) {
                        blas::TuneEntry entry;
                        entry.config = s.best;
                        entry.speedupVsDefault = s.speedup;
                        entry.bound = prof::topdownClassName(s.bestBound);
                        entry.tunedN = result.tunedN;
                        artifact.entries.emplace(key, std::move(entry));
                    }
                    tuned_cases.push_back(std::move(result));
                }
            }
        }

        const Status saved = blas::saveTuningArtifact(artifact, tune_out);
        if (!saved.isOk()) {
            std::fprintf(stderr, "[mc_perf] --tune-out commit failed: "
                         "%s\n", saved.toString().c_str());
            return exitCodeFor(ErrorCode::DataLoss);
        }
        std::printf("tune: %zu entries -> %s (fingerprint %016llx, "
                    "profiling backend %s)\n",
                    artifact.entries.size(), tune_out.c_str(),
                    static_cast<unsigned long long>(artifact.fingerprint),
                    prof::topdownBackendName());

        const std::string out_path = cli.getString("out");
        if (!out_path.empty()) {
            JsonValue report = JsonValue::object();
            report.set("bench", "mc_perf --tune");
            report.set("host_threads",
                       static_cast<std::int64_t>(
                           exec::ThreadPool::hardwareThreads()));
            report.set("profiling_backend", prof::topdownBackendName());
            report.set("artifact", tune_out);
            JsonValue rows = JsonValue::array();
            for (const TuneCaseResult &t : tuned_cases) {
                JsonValue row = JsonValue::object();
                row.set("combo", blas::comboInfo(t.key.combo).name);
                row.set("simd", blas::simdTierName(t.key.tier));
                row.set("n_bucket",
                        static_cast<std::int64_t>(t.key.nBucket));
                row.set("tuned_n", static_cast<std::int64_t>(t.tunedN));
                row.set("block_m", t.search.best.blockM);
                row.set("block_n", t.search.best.blockN);
                row.set("block_k", t.search.best.blockK);
                row.set("threads", t.search.best.threads);
                row.set("speedup_vs_default", t.search.speedup);
                row.set("bound",
                        prof::topdownClassName(t.search.bestBound));
                row.set("measured", t.search.measured);
                row.set("pruned", t.search.pruned);
                row.set("budget_exhausted", t.search.budgetExhausted);
                rows.append(std::move(row));
            }
            report.set("searches", std::move(rows));
            AtomicFileWriter writer(out_path);
            writer.stream() << report.serialize() << "\n";
            const Status committed = writer.commit();
            if (!committed.isOk()) {
                std::fprintf(stderr, "[mc_perf] --out commit failed: "
                             "%s\n", committed.toString().c_str());
                return exitCodeFor(ErrorCode::DataLoss);
            }
        }
        return exitCodeFor(ErrorCode::Ok);
    }

    std::vector<CaseResult> results;
    for (blas::GemmCombo combo : combos) {
        for (std::size_t n : sizes) {
            const bool with_scalar = n <= scalar_maxn;
            std::fprintf(stderr, "[mc_perf] %s n=%zu%s...\n",
                         blas::comboInfo(combo).name, n,
                         with_scalar ? "" : " (no legacy baseline)");
            results.push_back(runCombo(combo, n, tiers, threads, reps,
                                       with_scalar, seed));
        }
    }

    const blas::CpuFeatures &cpu = blas::cpuFeatures();
    JsonValue report = JsonValue::object();
    report.set("bench", "mc_perf");
    report.set("description",
               "functional-GEMM wall-clock: legacy scalar loops vs "
               "blocked/packed/threaded backend per SIMD micro-kernel "
               "tier (bit-identical results across all of them)");
    report.set("host_threads",
               static_cast<std::int64_t>(exec::ThreadPool::hardwareThreads()));
    JsonValue features = JsonValue::object();
    features.set("sse2", cpu.sse2);
    features.set("avx2", cpu.avx2);
    features.set("avx512", cpu.avx512);
    features.set("avx512vnni", cpu.avx512vnni);
    features.set("neon", cpu.neon);
    report.set("cpu_features", std::move(features));
    JsonValue tiers_json = JsonValue::array();
    for (blas::SimdTier tier : tiers)
        tiers_json.append(blas::simdTierName(tier));
    report.set("tiers_measured", std::move(tiers_json));
    JsonValue unavailable_json = JsonValue::array();
    for (blas::SimdTier tier :
         {blas::SimdTier::Sse2, blas::SimdTier::Avx2,
          blas::SimdTier::Avx512, blas::SimdTier::Neon})
        if (!blas::simdTierAvailable(tier))
            unavailable_json.append(blas::simdTierName(tier));
    report.set("tiers_unavailable", std::move(unavailable_json));
    if (!unavailable_requested.empty()) {
        JsonValue skipped = JsonValue::array();
        for (const std::string &name : unavailable_requested)
            skipped.append(name);
        report.set("tiers_requested_but_unavailable", std::move(skipped));
    }
    report.set("best_tier",
               blas::simdTierName(blas::bestSimdTier()));
    report.set("tuned", blas::activeTuningLabel());

    JsonValue cases = JsonValue::array();
    bool check_ok = true;
    const double min_speedup = cli.getDouble("min-speedup");
    // Per-tier speedup-vs-scalar-tier ratios over N >= 1024, overall
    // and per combo, for the geometric-mean summary.
    std::map<blas::SimdTier, std::vector<double>> tier_ratios;
    std::map<blas::SimdTier, std::map<blas::GemmCombo,
                                      std::vector<double>>> combo_ratios;
    // Tuned-vs-default ratios over N >= 1024 (rows where the artifact
    // actually supplied non-default blocks).
    std::map<blas::SimdTier, std::vector<double>> tuned_ratios;
    std::map<blas::SimdTier, std::map<blas::GemmCombo,
                                      std::vector<double>>>
        tuned_combo_ratios;
    for (const CaseResult &r : results) {
        JsonValue entry = JsonValue::object();
        entry.set("combo", blas::comboInfo(r.combo).name);
        entry.set("n", static_cast<std::int64_t>(r.n));
        entry.set("round_each_step", r.roundEachStep);
        entry.set("host_threads",
                  static_cast<std::int64_t>(
                      exec::ThreadPool::hardwareThreads()));
        if (r.scalarSeconds > 0.0)
            entry.set("legacy_scalar_sec", r.scalarSeconds);
        JsonValue timings = JsonValue::array();
        for (const TierTiming &t : r.fast) {
            JsonValue jt = JsonValue::object();
            jt.set("simd", blas::simdTierName(t.tier));
            jt.set("threads", static_cast<std::int64_t>(t.threads));
            jt.set("sec", t.seconds);
            if (t.speedupLegacy > 0.0)
                jt.set("speedup_vs_legacy", t.speedupLegacy);
            if (t.speedupVsScalarTier > 0.0 &&
                t.tier != blas::SimdTier::Scalar)
                jt.set("speedup_vs_scalar_tier", t.speedupVsScalarTier);
            // The configuration this row resolved to, and — when an
            // artifact is active — the tuned-vs-default comparison.
            jt.set("block_m", t.resolvedConfig.blockM);
            jt.set("block_n", t.resolvedConfig.blockN);
            jt.set("block_k", t.resolvedConfig.blockK);
            jt.set("tuned", t.tunedApplied);
            if (t.tunedSeconds > 0.0) {
                jt.set("tuned_sec", t.tunedSeconds);
                jt.set("speedup_tuned_vs_default", t.tunedSpeedup);
            }
            timings.append(std::move(jt));

            std::printf("%-6s n=%-5zu simd=%-7s threads=%-2d "
                        "fast=%9.4fs",
                        blas::comboInfo(r.combo).name, r.n,
                        blas::simdTierName(t.tier), t.threads,
                        t.seconds);
            if (t.tier != blas::SimdTier::Scalar &&
                t.speedupVsScalarTier > 0.0)
                std::printf("  vs_scalar_tier=%6.2fx",
                            t.speedupVsScalarTier);
            if (t.speedupLegacy > 0.0)
                std::printf("  vs_legacy=%6.2fx", t.speedupLegacy);
            if (t.tunedApplied)
                std::printf("  tuned=%6.2fx(%d/%d/%d)", t.tunedSpeedup,
                            t.resolvedConfig.blockM,
                            t.resolvedConfig.blockN,
                            t.resolvedConfig.blockK);
            std::printf("\n");

            if (t.tunedApplied && t.tunedSpeedup > 0.0 && r.n >= 1024) {
                tuned_ratios[t.tier].push_back(t.tunedSpeedup);
                tuned_combo_ratios[t.tier][r.combo].push_back(
                    t.tunedSpeedup);
            }

            if (t.tier == blas::SimdTier::Scalar) {
                // The scalar tier is checked against the legacy loops:
                // the blocked backend must never regress below them.
                if (t.speedupLegacy > 0.0 && t.speedupLegacy < min_speedup)
                    check_ok = false;
            } else {
                if (t.speedupVsScalarTier > 0.0 &&
                    t.speedupVsScalarTier < min_speedup)
                    check_ok = false;
                if (r.n >= 1024 && t.speedupVsScalarTier > 0.0) {
                    tier_ratios[t.tier].push_back(t.speedupVsScalarTier);
                    combo_ratios[t.tier][r.combo].push_back(
                        t.speedupVsScalarTier);
                }
            }
        }
        entry.set("fast", std::move(timings));
        cases.append(std::move(entry));
    }
    report.set("results", std::move(cases));

    JsonValue geo = JsonValue::object();
    for (const auto &[tier, ratios] : tier_ratios) {
        JsonValue jt = JsonValue::object();
        jt.set("overall", geomean(ratios));
        for (const auto &[combo, cr] : combo_ratios[tier])
            jt.set(blas::comboInfo(combo).name, geomean(cr));
        std::printf("geomean(n>=1024) simd=%-7s vs_scalar_tier=%6.2fx\n",
                    blas::simdTierName(tier), geomean(ratios));
        geo.set(blas::simdTierName(tier), std::move(jt));
    }
    report.set("geomean_speedup_vs_scalar_tier_n1024", std::move(geo));

    if (!tuned_ratios.empty()) {
        JsonValue tuned_geo = JsonValue::object();
        for (const auto &[tier, ratios] : tuned_ratios) {
            JsonValue jt = JsonValue::object();
            jt.set("overall", geomean(ratios));
            for (const auto &[combo, cr] : tuned_combo_ratios[tier])
                jt.set(blas::comboInfo(combo).name, geomean(cr));
            std::printf("geomean(n>=1024) simd=%-7s "
                        "tuned_vs_default=%6.2fx\n",
                        blas::simdTierName(tier), geomean(ratios));
            tuned_geo.set(blas::simdTierName(tier), std::move(jt));
        }
        report.set("geomean_tuned_vs_default_n1024",
                   std::move(tuned_geo));
    }

    const std::string out_path = cli.getString("out");
    if (!out_path.empty()) {
        AtomicFileWriter writer(out_path);
        writer.stream() << report.serialize() << "\n";
        const Status committed = writer.commit();
        if (!committed.isOk()) {
            std::fprintf(stderr, "[mc_perf] --out commit failed: %s\n",
                         committed.toString().c_str());
            return exitCodeFor(ErrorCode::DataLoss);
        }
    }

    if (cli.getBool("check") && !check_ok) {
        std::fprintf(stderr,
                     "[mc_perf] FAILED: a case fell below the required "
                     "%.2fx speedup\n",
                     min_speedup);
        return exitCodeFor(ErrorCode::Internal);
    }
    return exitCodeFor(ErrorCode::Ok);
}
