/**
 * @file
 * mc_perf: the perf-regression harness of the fast functional-GEMM
 * backend (docs/PERF.md).
 *
 * Times the retained scalar reference kernels ("old") against the
 * blocked/packed/threaded backend ("new") per datatype combo, matrix
 * size, and thread count, asserting along the way that every fast
 * result is byte-identical to the scalar one — a run that measures a
 * numerically different kernel exits Internal rather than reporting a
 * meaningless speedup. Results go to stdout, and with --out to an
 * atomically published JSON file (BENCH_pr4.json in the repo records
 * the PR-acceptance run).
 *
 * The --check mode turns the tool into the `perf` ctest smoke: it
 * fails unless every measured case clears --min-speedup (default 1.0:
 * the fast path must never be slower than the scalar path).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "blas/functional.hh"
#include "blas/gemm_types.hh"
#include "common/atomic_file.hh"
#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/status.hh"
#include "exec/thread_pool.hh"

namespace {

using namespace mc;

/** One (combo, size, thread-count) timing. */
struct ThreadTiming
{
    int threads = 0;
    double seconds = 0.0;
    double speedup = 0.0; ///< scalar_seconds / seconds (0 = no baseline)
};

struct CaseResult
{
    blas::GemmCombo combo = blas::GemmCombo::Sgemm;
    std::size_t n = 0;
    bool roundEachStep = false;
    double scalarSeconds = 0.0; ///< 0 when the baseline was skipped
    std::vector<ThreadTiming> fast;
};

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

template <typename T>
void
fillRandom(Matrix<T> &m, Rng &rng)
{
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
}

/** Byte comparison of two result matrices (Half included: the storage
 *  types are trivially copyable bit patterns). */
template <typename T>
bool
bytesEqual(const Matrix<T> &x, const Matrix<T> &y)
{
    return std::memcmp(x.data(), y.data(),
                       x.rows() * x.cols() * sizeof(T)) == 0;
}

template <typename TCD, typename TAB, typename TAcc>
CaseResult
runCase(blas::GemmCombo combo, std::size_t n, bool round_each_step,
        const std::vector<int> &threads, int reps, bool with_scalar,
        std::uint64_t seed)
{
    Rng rng(seed);
    Matrix<TAB> a(n, n), b(n, n);
    Matrix<TCD> c(n, n);
    fillRandom(a, rng);
    fillRandom(b, rng);
    fillRandom(c, rng);
    const double alpha = 1.25, beta = 0.5;

    CaseResult out;
    out.combo = combo;
    out.n = n;
    out.roundEachStep = round_each_step;

    Matrix<TCD> d_scalar(n, n);
    if (with_scalar) {
        // One scalar pass is minutes at N = 2048; take the best of two
        // only when it is cheap.
        const int scalar_reps = n <= 512 ? 2 : 1;
        double best = std::numeric_limits<double>::max();
        for (int r = 0; r < scalar_reps; ++r) {
            const double t0 = nowSeconds();
            blas::scalarReferenceGemm<TCD, TAB, TAcc>(
                alpha, a, b, beta, c, d_scalar, round_each_step);
            best = std::min(best, nowSeconds() - t0);
        }
        out.scalarSeconds = best;
    }

    Matrix<TCD> d_fast(n, n);
    for (int t : threads) {
        blas::FunctionalGemmOptions opts;
        opts.threads = t;
        double best = std::numeric_limits<double>::max();
        for (int r = 0; r < reps; ++r) {
            const double t0 = nowSeconds();
            blas::fastReferenceGemm<TCD, TAB, TAcc>(
                alpha, a, b, beta, c, d_fast, round_each_step, opts);
            best = std::min(best, nowSeconds() - t0);
        }
        if (with_scalar && !bytesEqual(d_fast, d_scalar)) {
            mc_fatal("fast backend diverged from the scalar path: ",
                     blas::comboInfo(combo).name, " n=", n,
                     " threads=", t);
        }
        ThreadTiming timing;
        timing.threads = t;
        timing.seconds = best;
        timing.speedup =
            out.scalarSeconds > 0.0 ? out.scalarSeconds / best : 0.0;
        out.fast.push_back(timing);
    }
    return out;
}

CaseResult
runCombo(blas::GemmCombo combo, std::size_t n,
         const std::vector<int> &threads, int reps, bool with_scalar,
         std::uint64_t seed)
{
    switch (combo) {
      case blas::GemmCombo::Dgemm:
        return runCase<double, double, double>(combo, n, false, threads,
                                               reps, with_scalar, seed);
      case blas::GemmCombo::Sgemm:
        return runCase<float, float, float>(combo, n, false, threads,
                                            reps, with_scalar, seed);
      case blas::GemmCombo::Hgemm:
        return runCase<fp::Half, fp::Half, float>(combo, n, true, threads,
                                                  reps, with_scalar, seed);
      case blas::GemmCombo::Hhs:
        return runCase<fp::Half, fp::Half, float>(combo, n, false,
                                                  threads, reps,
                                                  with_scalar, seed);
      case blas::GemmCombo::Hss:
        return runCase<float, fp::Half, float>(combo, n, false, threads,
                                               reps, with_scalar, seed);
    }
    mc_panic("unreachable combo in mc_perf");
}

std::vector<std::string>
splitCsv(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("mc_perf: functional-GEMM backend timing (old scalar "
                  "path vs blocked/packed/threaded path)");
    cli.addFlag("sizes", std::string("512,1024"),
                "comma-separated square problem sizes");
    cli.addFlag("combos", std::string("all"),
                "comma-separated datatype combos (dgemm,sgemm,hgemm,"
                "hss,hhs) or 'all'");
    cli.addFlag("threads", std::string("1,8"),
                "comma-separated thread counts for the fast path");
    cli.addFlag("reps", static_cast<std::int64_t>(3),
                "fast-path repetitions per case (best-of)");
    cli.requireIntAtLeast("reps", 1);
    cli.addFlag("scalar-maxn", static_cast<std::int64_t>(4096),
                "skip the scalar baseline (and the bit-exactness "
                "cross-check) above this size");
    cli.addFlag("seed", static_cast<std::int64_t>(0x5eed),
                "operand randomization seed");
    cli.addFlag("out", std::string(),
                "write the JSON report atomically to this file "
                "(e.g. BENCH_pr4.json)");
    cli.addFlag("check", false,
                "exit nonzero unless every case clears --min-speedup "
                "(the perf ctest smoke)");
    cli.addFlag("min-speedup", 1.0,
                "with --check: required scalar/fast ratio");
    cli.parse(argc, argv);

    std::vector<blas::GemmCombo> combos;
    const std::string combo_list = cli.getString("combos");
    if (combo_list == "all") {
        combos.assign(std::begin(blas::allCombos),
                      std::end(blas::allCombos));
    } else {
        for (const std::string &name : splitCsv(combo_list))
            combos.push_back(blas::parseCombo(name));
    }

    std::vector<std::size_t> sizes;
    for (const std::string &s : splitCsv(cli.getString("sizes")))
        sizes.push_back(static_cast<std::size_t>(std::stoull(s)));
    std::vector<int> threads;
    for (const std::string &s : splitCsv(cli.getString("threads")))
        threads.push_back(std::stoi(s));
    if (sizes.empty() || threads.empty() || combos.empty()) {
        std::fprintf(stderr, "nothing to measure\n");
        return exitCodeFor(ErrorCode::InvalidArgument);
    }

    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto scalar_maxn =
        static_cast<std::size_t>(cli.getInt("scalar-maxn"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    std::vector<CaseResult> results;
    for (blas::GemmCombo combo : combos) {
        for (std::size_t n : sizes) {
            const bool with_scalar = n <= scalar_maxn;
            std::fprintf(stderr, "[mc_perf] %s n=%zu%s...\n",
                         blas::comboInfo(combo).name, n,
                         with_scalar ? "" : " (no scalar baseline)");
            results.push_back(runCombo(combo, n, threads, reps,
                                       with_scalar, seed));
        }
    }

    JsonValue report = JsonValue::object();
    report.set("bench", "mc_perf");
    report.set("description",
               "functional-GEMM wall-clock: scalar reference path vs "
               "blocked/packed/threaded backend (bit-identical results)");
    report.set("host_threads",
               static_cast<std::int64_t>(exec::ThreadPool::hardwareThreads()));
    JsonValue cases = JsonValue::array();
    bool check_ok = true;
    const double min_speedup = cli.getDouble("min-speedup");
    for (const CaseResult &r : results) {
        JsonValue entry = JsonValue::object();
        entry.set("combo", blas::comboInfo(r.combo).name);
        entry.set("n", static_cast<std::int64_t>(r.n));
        entry.set("round_each_step", r.roundEachStep);
        if (r.scalarSeconds > 0.0)
            entry.set("scalar_sec", r.scalarSeconds);
        JsonValue timings = JsonValue::array();
        for (const ThreadTiming &t : r.fast) {
            JsonValue jt = JsonValue::object();
            jt.set("threads", static_cast<std::int64_t>(t.threads));
            jt.set("sec", t.seconds);
            if (t.speedup > 0.0)
                jt.set("speedup", t.speedup);
            timings.append(std::move(jt));
            std::printf("%-6s n=%-5zu threads=%-2d fast=%9.4fs",
                        blas::comboInfo(r.combo).name, r.n, t.threads,
                        t.seconds);
            if (t.speedup > 0.0)
                std::printf("  scalar=%9.4fs  speedup=%6.2fx",
                            r.scalarSeconds, t.speedup);
            std::printf("\n");
            if (t.speedup > 0.0 && t.speedup < min_speedup)
                check_ok = false;
        }
        entry.set("fast", std::move(timings));
        cases.append(std::move(entry));
    }
    report.set("results", std::move(cases));

    const std::string out_path = cli.getString("out");
    if (!out_path.empty()) {
        AtomicFileWriter writer(out_path);
        writer.stream() << report.serialize() << "\n";
        const Status committed = writer.commit();
        if (!committed.isOk()) {
            std::fprintf(stderr, "[mc_perf] --out commit failed: %s\n",
                         committed.toString().c_str());
            return exitCodeFor(ErrorCode::DataLoss);
        }
    }

    if (cli.getBool("check") && !check_ok) {
        std::fprintf(stderr,
                     "[mc_perf] FAILED: a case fell below the required "
                     "%.2fx speedup\n",
                     min_speedup);
        return exitCodeFor(ErrorCode::Internal);
    }
    return exitCodeFor(ErrorCode::Ok);
}
