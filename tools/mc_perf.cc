/**
 * @file
 * mc_perf: the perf-regression harness of the fast functional-GEMM
 * backend (docs/PERF.md).
 *
 * Three generations of the same arithmetic are timed against each
 * other per datatype combo, matrix size, and thread count:
 *
 *  - the retained scalar reference loops ("legacy", scalarReferenceGemm),
 *  - the blocked/packed/threaded backend pinned to its scalar
 *    micro-kernel tier (MC_SIMD=scalar — the PR 4 fast path), and
 *  - every explicit-SIMD tier the CPU supports (SSE2/AVX2/AVX-512 on
 *    x86-64, NEON on aarch64).
 *
 * Every timed result is byte-compared against the scalar-tier result
 * (and against the legacy reference when the size permits): a run that
 * measures a numerically different kernel exits Internal rather than
 * reporting a meaningless speedup. Results go to stdout, and with
 * --out to an atomically published JSON report (BENCH_pr5.json in the
 * repo records the PR-acceptance run) including the detected CPU
 * features, which tiers were unavailable, and per-tier geometric-mean
 * speedups over the scalar tier for N >= 1024.
 *
 * The --check mode turns the tool into the `perf`/`simd` ctest smoke:
 * it fails unless every SIMD tier clears --min-speedup against the
 * scalar tier (and the scalar tier clears it against legacy).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "blas/functional.hh"
#include "blas/gemm_types.hh"
#include "blas/simd_dispatch.hh"
#include "common/atomic_file.hh"
#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/status.hh"
#include "exec/thread_pool.hh"

namespace {

using namespace mc;

/** One (combo, size, tier, thread-count) timing. */
struct TierTiming
{
    blas::SimdTier tier = blas::SimdTier::Scalar;
    int threads = 0;
    double seconds = 0.0;
    /** legacy_scalar_seconds / seconds (0 = baseline skipped). */
    double speedupLegacy = 0.0;
    /** scalar_tier_seconds (same thread count) / seconds. */
    double speedupVsScalarTier = 0.0;
};

struct CaseResult
{
    blas::GemmCombo combo = blas::GemmCombo::Sgemm;
    std::size_t n = 0;
    bool roundEachStep = false;
    double scalarSeconds = 0.0; ///< legacy loop; 0 when skipped
    std::vector<TierTiming> fast;
};

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

template <typename T>
void
fillRandom(Matrix<T> &m, Rng &rng)
{
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j)
            m(i, j) = T(static_cast<float>(rng.uniform(-1.0, 1.0)));
}

/** Byte comparison of two result matrices (Half included: the storage
 *  types are trivially copyable bit patterns). */
template <typename T>
bool
bytesEqual(const Matrix<T> &x, const Matrix<T> &y)
{
    return std::memcmp(x.data(), y.data(),
                       x.rows() * x.cols() * sizeof(T)) == 0;
}

template <typename TCD, typename TAB, typename TAcc>
CaseResult
runCase(blas::GemmCombo combo, std::size_t n, bool round_each_step,
        const std::vector<blas::SimdTier> &tiers,
        const std::vector<int> &threads, int reps, bool with_scalar,
        std::uint64_t seed)
{
    Rng rng(seed);
    Matrix<TAB> a(n, n), b(n, n);
    Matrix<TCD> c(n, n);
    fillRandom(a, rng);
    fillRandom(b, rng);
    fillRandom(c, rng);
    const double alpha = 1.25, beta = 0.5;

    CaseResult out;
    out.combo = combo;
    out.n = n;
    out.roundEachStep = round_each_step;

    Matrix<TCD> d_scalar(n, n);
    if (with_scalar) {
        // One scalar pass is minutes at N = 2048; take the best of two
        // only when it is cheap.
        const int scalar_reps = n <= 512 ? 2 : 1;
        double best = std::numeric_limits<double>::max();
        for (int r = 0; r < scalar_reps; ++r) {
            const double t0 = nowSeconds();
            blas::scalarReferenceGemm<TCD, TAB, TAcc>(
                alpha, a, b, beta, c, d_scalar, round_each_step);
            best = std::min(best, nowSeconds() - t0);
        }
        out.scalarSeconds = best;
    }

    // The scalar tier runs first (callers put it first): its result is
    // the memcmp anchor for every SIMD tier, and its per-thread-count
    // timings are their speedup baseline.
    Matrix<TCD> d_anchor(n, n);
    bool have_anchor = false;
    std::map<int, double> scalar_tier_seconds;

    Matrix<TCD> d_fast(n, n);
    for (blas::SimdTier tier : tiers) {
        for (int t : threads) {
            blas::FunctionalGemmOptions opts;
            opts.threads = t;
            opts.simd = tier;
            double best = std::numeric_limits<double>::max();
            for (int r = 0; r < reps; ++r) {
                const double t0 = nowSeconds();
                blas::fastReferenceGemm<TCD, TAB, TAcc>(
                    alpha, a, b, beta, c, d_fast, round_each_step, opts);
                best = std::min(best, nowSeconds() - t0);
            }
            if (with_scalar && !bytesEqual(d_fast, d_scalar)) {
                mc_fatal("fast backend diverged from the legacy scalar "
                         "path: ", blas::comboInfo(combo).name, " n=", n,
                         " simd=", blas::simdTierName(tier),
                         " threads=", t);
            }
            if (!have_anchor) {
                d_anchor = d_fast;
                have_anchor = true;
            } else if (!bytesEqual(d_fast, d_anchor)) {
                mc_fatal("SIMD tier diverged from the scalar tier: ",
                         blas::comboInfo(combo).name, " n=", n,
                         " simd=", blas::simdTierName(tier),
                         " threads=", t);
            }
            if (tier == blas::SimdTier::Scalar)
                scalar_tier_seconds[t] = best;
            TierTiming timing;
            timing.tier = tier;
            timing.threads = t;
            timing.seconds = best;
            timing.speedupLegacy =
                out.scalarSeconds > 0.0 ? out.scalarSeconds / best : 0.0;
            const auto base = scalar_tier_seconds.find(t);
            timing.speedupVsScalarTier =
                base != scalar_tier_seconds.end() ? base->second / best
                                                  : 0.0;
            out.fast.push_back(timing);
        }
    }
    return out;
}

CaseResult
runCombo(blas::GemmCombo combo, std::size_t n,
         const std::vector<blas::SimdTier> &tiers,
         const std::vector<int> &threads, int reps, bool with_scalar,
         std::uint64_t seed)
{
    switch (combo) {
      case blas::GemmCombo::Dgemm:
        return runCase<double, double, double>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Sgemm:
        return runCase<float, float, float>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Hgemm:
        return runCase<fp::Half, fp::Half, float>(
            combo, n, true, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Hhs:
        return runCase<fp::Half, fp::Half, float>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
      case blas::GemmCombo::Hss:
        return runCase<float, fp::Half, float>(
            combo, n, false, tiers, threads, reps, with_scalar, seed);
    }
    mc_panic("unreachable combo in mc_perf");
}

std::vector<std::string>
splitCsv(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Geometric mean of @p ratios; 0 when empty. */
double
geomean(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double r : ratios)
        log_sum += std::log(r);
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("mc_perf: functional-GEMM backend timing (legacy "
                  "scalar loops vs blocked backend per SIMD tier)");
    cli.addFlag("sizes", std::string("512,1024"),
                "comma-separated square problem sizes");
    cli.addFlag("combos", std::string("all"),
                "comma-separated datatype combos (dgemm,sgemm,hgemm,"
                "hss,hhs) or 'all'");
    cli.addFlag("threads", std::string("1,8"),
                "comma-separated thread counts for the fast path");
    cli.addFlag("simd", std::string("all"),
                "comma-separated micro-kernel tiers (scalar,sse2,avx2,"
                "avx512,neon) or 'all' = every tier this CPU supports");
    cli.addFlag("reps", static_cast<std::int64_t>(3),
                "fast-path repetitions per case (best-of)");
    cli.requireIntAtLeast("reps", 1);
    cli.addFlag("scalar-maxn", static_cast<std::int64_t>(4096),
                "skip the legacy scalar baseline (the cross-check "
                "against the scalar *tier* always runs) above this size");
    cli.addFlag("seed", static_cast<std::int64_t>(0x5eed),
                "operand randomization seed");
    cli.addFlag("out", std::string(),
                "write the JSON report atomically to this file "
                "(e.g. BENCH_pr5.json)");
    cli.addFlag("check", false,
                "exit nonzero unless every SIMD tier clears "
                "--min-speedup vs the scalar tier (the perf ctest "
                "smoke)");
    cli.addFlag("min-speedup", 1.0,
                "with --check: required speedup ratio");
    cli.parse(argc, argv);

    std::vector<blas::GemmCombo> combos;
    const std::string combo_list = cli.getString("combos");
    if (combo_list == "all") {
        combos.assign(std::begin(blas::allCombos),
                      std::end(blas::allCombos));
    } else {
        for (const std::string &name : splitCsv(combo_list))
            combos.push_back(blas::parseCombo(name));
    }

    std::vector<std::size_t> sizes;
    for (const std::string &s : splitCsv(cli.getString("sizes")))
        sizes.push_back(static_cast<std::size_t>(std::stoull(s)));
    std::vector<int> threads;
    for (const std::string &s : splitCsv(cli.getString("threads")))
        threads.push_back(std::stoi(s));

    // Resolve the tier list. The scalar tier always runs (and runs
    // first): it is the memcmp anchor and the speedup baseline.
    const std::vector<blas::SimdTier> available =
        blas::availableSimdTiers();
    std::vector<blas::SimdTier> tiers{blas::SimdTier::Scalar};
    std::vector<std::string> unavailable_requested;
    const std::string simd_list = cli.getString("simd");
    if (simd_list == "all") {
        for (blas::SimdTier tier : available)
            if (tier != blas::SimdTier::Scalar)
                tiers.push_back(tier);
    } else {
        for (const std::string &name : splitCsv(simd_list)) {
            blas::SimdTier tier;
            if (!blas::parseSimdTier(name, &tier) ||
                tier == blas::SimdTier::Auto)
                mc_fatal("bad --simd tier '", name, "'");
            if (!blas::simdTierAvailable(tier)) {
                unavailable_requested.push_back(name);
                std::fprintf(stderr,
                             "[mc_perf] tier '%s' unavailable on this "
                             "CPU; skipping\n", name.c_str());
                continue;
            }
            if (tier != blas::SimdTier::Scalar)
                tiers.push_back(tier);
        }
    }
    if (sizes.empty() || threads.empty() || combos.empty()) {
        std::fprintf(stderr, "nothing to measure\n");
        return exitCodeFor(ErrorCode::InvalidArgument);
    }

    const int reps = static_cast<int>(cli.getInt("reps"));
    const auto scalar_maxn =
        static_cast<std::size_t>(cli.getInt("scalar-maxn"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    std::vector<CaseResult> results;
    for (blas::GemmCombo combo : combos) {
        for (std::size_t n : sizes) {
            const bool with_scalar = n <= scalar_maxn;
            std::fprintf(stderr, "[mc_perf] %s n=%zu%s...\n",
                         blas::comboInfo(combo).name, n,
                         with_scalar ? "" : " (no legacy baseline)");
            results.push_back(runCombo(combo, n, tiers, threads, reps,
                                       with_scalar, seed));
        }
    }

    const blas::CpuFeatures &cpu = blas::cpuFeatures();
    JsonValue report = JsonValue::object();
    report.set("bench", "mc_perf");
    report.set("description",
               "functional-GEMM wall-clock: legacy scalar loops vs "
               "blocked/packed/threaded backend per SIMD micro-kernel "
               "tier (bit-identical results across all of them)");
    report.set("host_threads",
               static_cast<std::int64_t>(exec::ThreadPool::hardwareThreads()));
    JsonValue features = JsonValue::object();
    features.set("sse2", cpu.sse2);
    features.set("avx2", cpu.avx2);
    features.set("avx512", cpu.avx512);
    features.set("neon", cpu.neon);
    report.set("cpu_features", std::move(features));
    JsonValue tiers_json = JsonValue::array();
    for (blas::SimdTier tier : tiers)
        tiers_json.append(blas::simdTierName(tier));
    report.set("tiers_measured", std::move(tiers_json));
    JsonValue unavailable_json = JsonValue::array();
    for (blas::SimdTier tier :
         {blas::SimdTier::Sse2, blas::SimdTier::Avx2,
          blas::SimdTier::Avx512, blas::SimdTier::Neon})
        if (!blas::simdTierAvailable(tier))
            unavailable_json.append(blas::simdTierName(tier));
    report.set("tiers_unavailable", std::move(unavailable_json));
    if (!unavailable_requested.empty()) {
        JsonValue skipped = JsonValue::array();
        for (const std::string &name : unavailable_requested)
            skipped.append(name);
        report.set("tiers_requested_but_unavailable", std::move(skipped));
    }
    report.set("best_tier",
               blas::simdTierName(blas::bestSimdTier()));

    JsonValue cases = JsonValue::array();
    bool check_ok = true;
    const double min_speedup = cli.getDouble("min-speedup");
    // Per-tier speedup-vs-scalar-tier ratios over N >= 1024, overall
    // and per combo, for the geometric-mean summary.
    std::map<blas::SimdTier, std::vector<double>> tier_ratios;
    std::map<blas::SimdTier, std::map<blas::GemmCombo,
                                      std::vector<double>>> combo_ratios;
    for (const CaseResult &r : results) {
        JsonValue entry = JsonValue::object();
        entry.set("combo", blas::comboInfo(r.combo).name);
        entry.set("n", static_cast<std::int64_t>(r.n));
        entry.set("round_each_step", r.roundEachStep);
        if (r.scalarSeconds > 0.0)
            entry.set("legacy_scalar_sec", r.scalarSeconds);
        JsonValue timings = JsonValue::array();
        for (const TierTiming &t : r.fast) {
            JsonValue jt = JsonValue::object();
            jt.set("simd", blas::simdTierName(t.tier));
            jt.set("threads", static_cast<std::int64_t>(t.threads));
            jt.set("sec", t.seconds);
            if (t.speedupLegacy > 0.0)
                jt.set("speedup_vs_legacy", t.speedupLegacy);
            if (t.speedupVsScalarTier > 0.0 &&
                t.tier != blas::SimdTier::Scalar)
                jt.set("speedup_vs_scalar_tier", t.speedupVsScalarTier);
            timings.append(std::move(jt));

            std::printf("%-6s n=%-5zu simd=%-7s threads=%-2d "
                        "fast=%9.4fs",
                        blas::comboInfo(r.combo).name, r.n,
                        blas::simdTierName(t.tier), t.threads,
                        t.seconds);
            if (t.tier != blas::SimdTier::Scalar &&
                t.speedupVsScalarTier > 0.0)
                std::printf("  vs_scalar_tier=%6.2fx",
                            t.speedupVsScalarTier);
            if (t.speedupLegacy > 0.0)
                std::printf("  vs_legacy=%6.2fx", t.speedupLegacy);
            std::printf("\n");

            if (t.tier == blas::SimdTier::Scalar) {
                // The scalar tier is checked against the legacy loops:
                // the blocked backend must never regress below them.
                if (t.speedupLegacy > 0.0 && t.speedupLegacy < min_speedup)
                    check_ok = false;
            } else {
                if (t.speedupVsScalarTier > 0.0 &&
                    t.speedupVsScalarTier < min_speedup)
                    check_ok = false;
                if (r.n >= 1024 && t.speedupVsScalarTier > 0.0) {
                    tier_ratios[t.tier].push_back(t.speedupVsScalarTier);
                    combo_ratios[t.tier][r.combo].push_back(
                        t.speedupVsScalarTier);
                }
            }
        }
        entry.set("fast", std::move(timings));
        cases.append(std::move(entry));
    }
    report.set("results", std::move(cases));

    JsonValue geo = JsonValue::object();
    for (const auto &[tier, ratios] : tier_ratios) {
        JsonValue jt = JsonValue::object();
        jt.set("overall", geomean(ratios));
        for (const auto &[combo, cr] : combo_ratios[tier])
            jt.set(blas::comboInfo(combo).name, geomean(cr));
        std::printf("geomean(n>=1024) simd=%-7s vs_scalar_tier=%6.2fx\n",
                    blas::simdTierName(tier), geomean(ratios));
        geo.set(blas::simdTierName(tier), std::move(jt));
    }
    report.set("geomean_speedup_vs_scalar_tier_n1024", std::move(geo));

    const std::string out_path = cli.getString("out");
    if (!out_path.empty()) {
        AtomicFileWriter writer(out_path);
        writer.stream() << report.serialize() << "\n";
        const Status committed = writer.commit();
        if (!committed.isOk()) {
            std::fprintf(stderr, "[mc_perf] --out commit failed: %s\n",
                         committed.toString().c_str());
            return exitCodeFor(ErrorCode::DataLoss);
        }
    }

    if (cli.getBool("check") && !check_ok) {
        std::fprintf(stderr,
                     "[mc_perf] FAILED: a case fell below the required "
                     "%.2fx speedup\n",
                     min_speedup);
        return exitCodeFor(ErrorCode::Internal);
    }
    return exitCodeFor(ErrorCode::Ok);
}
