/**
 * @file
 * The mc_serve daemon entry point: flag parsing, tune-artifact and
 * concurrency setup, signal handling, and the serve loop.
 *
 * The daemon serves GEMM/sweep measurement requests over a Unix or
 * loopback-TCP socket with admission control, single-flight
 * coalescing, a shared plan cache, and supervised worker isolation
 * for crashy requests — see docs/SERVING.md for the protocol and the
 * degradation ladder, and src/serve/ for the machinery.
 *
 * Shutdown: SIGTERM/SIGINT or a "shutdown" request drain the daemon
 * gracefully — queued requests are cancelled with Unavailable, running
 * ones finish and answer, then the listener and connections close.
 */

#include <atomic>
#include <csignal>
#include <cstdio>

#include <unistd.h>

#include "blas/pack_cache.hh"
#include "blas/tune.hh"
#include "common/cli.hh"
#include "exec/thread_pool.hh"
#include "serve/server.hh"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mc;

    CliParser cli("mc_serve: fault-tolerant GEMM simulation service");
    cli.addFlag("socket", std::string(),
                "Unix socket path to listen on (empty: TCP)");
    cli.addFlag("tcp-port", static_cast<std::int64_t>(0),
                "TCP port on 127.0.0.1 (0 = kernel-assigned)");
    cli.addFlag("slots", static_cast<std::int64_t>(1),
                "requests executing concurrently");
    cli.addFlag("queue-depth", static_cast<std::int64_t>(8),
                "requests waiting beyond the running ones");
    cli.addFlag("tenant-slots", static_cast<std::int64_t>(0),
                "per-tenant cap on running+queued requests (0 = none)");
    cli.addFlag("isolate", std::string("faulted"),
                "worker isolation: none|faulted|all");
    cli.addFlag("allow-chaos", false,
                "honor chaos requests (test daemons only)");
    cli.addFlag("worker-deadline-sec", 60.0,
                "wall-clock watchdog for worker processes");
    cli.addFlag("worker-grace-sec", 2.0,
                "grace between worker SIGTERM and SIGKILL");
    cli.addFlag("plan-cache-cap", static_cast<std::int64_t>(0),
                "LRU cap of the shared plan cache (0 = default)");
    cli.addFlag("pack-cache-mb", static_cast<std::int64_t>(
                    blas::PackCache::kDefaultCapacityBytes >> 20),
                "byte cap (MiB) of the packed-operand reuse cache "
                "(0 = disabled; MC_PACK_CACHE env overrides)");
    cli.addFlag("verify", false,
                "host-verify every gemm point after measuring it "
                "(deterministic; failures answer Internal)");
    cli.addFlag("verify-maxn", static_cast<std::int64_t>(1024),
                "with --verify: largest dimension checked (the check "
                "is O(n^3) host work)");
    cli.addFlag("ready-file", std::string(),
                "file written once the listener is live");
    cli.requireIntAtLeast("slots", 1);
    cli.requireIntAtLeast("queue-depth", 0);
    cli.requireIntAtLeast("tenant-slots", 0);
    cli.requireIntAtLeast("tcp-port", 0);
    cli.requireIntAtLeast("plan-cache-cap", 0);
    cli.requireIntAtLeast("pack-cache-mb", 0);
    cli.requireIntAtLeast("verify-maxn", 1);
    cli.requirePositiveDouble("worker-deadline-sec");
    cli.requirePositiveDouble("worker-grace-sec");
    cli.parse(argc, argv);

    serve::ServerOptions options;
    options.socketPath = cli.getString("socket");
    options.tcpPort = static_cast<int>(cli.getInt("tcp-port"));
    options.admission.slots =
        static_cast<std::size_t>(cli.getInt("slots"));
    options.admission.queueDepth =
        static_cast<std::size_t>(cli.getInt("queue-depth"));
    options.admission.tenantCap =
        static_cast<std::size_t>(cli.getInt("tenant-slots"));
    options.allowChaos = cli.getBool("allow-chaos");
    options.workerDeadlineSec = cli.getDouble("worker-deadline-sec");
    options.workerGraceSec = cli.getDouble("worker-grace-sec");
    options.verifyGemms = cli.getBool("verify");
    options.verifyMaxN =
        static_cast<std::size_t>(cli.getInt("verify-maxn"));
    options.readyFile = cli.getString("ready-file");
    blas::PackCache::configureCapacityMb(
        static_cast<std::uint64_t>(cli.getInt("pack-cache-mb")));

    auto isolation = serve::parseIsolation(cli.getString("isolate"));
    if (!isolation.isOk()) {
        std::fprintf(stderr, "mc_serve: %s\n",
                     isolation.status().message().c_str());
        return exit_code::Usage;
    }
    options.isolation = isolation.value();

    // Library-internal fan-out (functional-GEMM verification threads,
    // most prominently) must not multiply against the daemon's own
    // slots on a small host.
    exec::setConcurrencyCap(exec::ThreadPool::hardwareThreads());

    // Tune-artifact reuse: one load at startup serves every request
    // (MC_TUNE environment contract, docs/PERF.md).
    blas::reloadTuningFromEnv();

    serve::Server server(std::move(options));
    if (const std::int64_t cap = cli.getInt("plan-cache-cap"); cap > 0)
        server.planCache().setCapacity(static_cast<std::size_t>(cap));

    Status started = server.start();
    if (!started.isOk()) {
        std::fprintf(stderr, "mc_serve: %s\n",
                     started.toString().c_str());
        return exit_code::Failure;
    }
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    const std::string endpoint =
        cli.getString("socket").empty()
            ? "127.0.0.1:" + std::to_string(server.port())
            : cli.getString("socket");
    std::fprintf(stderr, "[mc_serve] listening on %s\n",
                 endpoint.c_str());

    while (!g_signalled && !server.shutdownRequested()) {
        struct timespec ts{0, 50 * 1000 * 1000}; // 50 ms
        ::nanosleep(&ts, nullptr);
    }
    server.stop();
    std::fprintf(stderr, "[mc_serve] stopped\n");
    return exit_code::Ok;
}
