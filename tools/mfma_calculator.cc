/**
 * @file
 * A re-implementation of AMD's amd_matrix_instruction_calculator (the
 * paper's reference [9]): query which wavefront lane and register slot
 * holds each element of an MFMA operand, or go the other way.
 *
 * Examples:
 *   mfma_calculator --list
 *   mfma_calculator --inst v_mfma_f32_16x16x16_f16 --detail
 *   mfma_calculator --inst v_mfma_f64_16x16x4_f64 --operand D --matrix
 *   mfma_calculator --inst v_mfma_f32_16x16x4_f32 --operand A \
 *       --row 5 --col 2
 *   mfma_calculator --inst v_mfma_f32_16x16x4_f32 --operand B \
 *       --lane 17 --slot 0
 */

#include <cstdio>
#include <iostream>

#include "arch/layout.hh"
#include "arch/mfma_isa.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace {

using namespace mc;

arch::GpuArch
parseArch(const std::string &name)
{
    if (name == "cdna1")
        return arch::GpuArch::Cdna1;
    if (name == "cdna2")
        return arch::GpuArch::Cdna2;
    if (name == "ampere")
        return arch::GpuArch::Ampere;
    mc_fatal("unknown architecture '", name,
             "' (expected cdna1, cdna2, or ampere)");
}

arch::Operand
parseOperand(const std::string &name)
{
    if (name == "A" || name == "a")
        return arch::Operand::A;
    if (name == "B" || name == "b")
        return arch::Operand::B;
    if (name == "C" || name == "c")
        return arch::Operand::C;
    if (name == "D" || name == "d")
        return arch::Operand::D;
    mc_fatal("unknown operand '", name, "' (expected A, B, C, or D)");
}

void
listInstructions(arch::GpuArch a)
{
    TextTable table({"mnemonic", "types", "shape", "latency",
                     "FLOPS/inst"});
    table.setTitle(std::string(arch::gpuArchName(a)) +
                   " matrix instructions");
    table.setAlignment({Align::Left, Align::Left, Align::Left,
                        Align::Right, Align::Right});
    for (const auto &inst : arch::instructionsFor(a)) {
        table.addRow({inst.mnemonic, inst.typeString(),
                      inst.shape.toString(),
                      std::to_string(inst.latencyCycles),
                      std::to_string(inst.flopsPerInstruction())});
    }
    table.print(std::cout);
}

void
printDetail(const arch::MfmaInstruction &inst)
{
    std::printf("%s (%s)\n", inst.mnemonic.c_str(),
                arch::gpuArchName(inst.arch));
    std::printf("  types:      %s\n", inst.typeString().c_str());
    std::printf("  shape:      %s\n", inst.shape.toString().c_str());
    std::printf("  latency:    %d cycles\n", inst.latencyCycles);
    std::printf("  FLOPs/inst: %lld\n", inst.flopsPerInstruction());
    std::printf("  wave size:  %d\n", inst.waveSize);
    for (arch::Operand op : {arch::Operand::A, arch::Operand::B,
                             arch::Operand::C, arch::Operand::D}) {
        const arch::OperandLayout layout(inst, op);
        const std::size_t bytes = arch::dataTypeBytes(
            (op == arch::Operand::A || op == arch::Operand::B)
                ? inst.typeAB : inst.typeCD);
        std::printf("  operand %s: %dx%d x%d blocks, %d elems/lane, "
                    "%d VGPRs/lane\n",
                    arch::operandName(op), layout.rows(), layout.cols(),
                    layout.blocks(), layout.elementsPerLane(),
                    layout.vgprCount(bytes));
    }
}

/** Full element->register map for one operand, one row per element. */
void
printMatrixMap(const arch::MfmaInstruction &inst, arch::Operand op)
{
    const arch::OperandLayout layout(inst, op);
    TextTable table({"block", "row", "col", "lane", "slot"});
    table.setTitle(inst.mnemonic + " operand " +
                   arch::operandName(op) + " element-to-register map");
    for (int blk = 0; blk < layout.blocks(); ++blk) {
        for (int r = 0; r < layout.rows(); ++r) {
            for (int c = 0; c < layout.cols(); ++c) {
                const arch::RegLocation loc =
                    layout.locationOf(arch::ElementCoord{blk, r, c});
                table.addRow({std::to_string(blk), std::to_string(r),
                              std::to_string(c),
                              std::to_string(loc.lane),
                              std::to_string(loc.slot)});
            }
        }
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("matrix instruction calculator: element <-> register "
                  "mapping for MFMA operands");
    cli.addFlag("arch", std::string("cdna2"),
                "instruction set: cdna1, cdna2, or ampere");
    cli.addFlag("list", false, "list all instructions and exit");
    cli.addFlag("inst", std::string(""), "instruction mnemonic");
    cli.addFlag("detail", false, "print operand/register summary");
    cli.addFlag("operand", std::string("A"), "operand: A, B, C, or D");
    cli.addFlag("matrix", false,
                "dump the full element-to-register map of --operand");
    cli.addFlag("row", static_cast<std::int64_t>(-1),
                "element row (with --col): forward query");
    cli.addFlag("col", static_cast<std::int64_t>(-1), "element column");
    cli.addFlag("block", static_cast<std::int64_t>(0), "element block");
    cli.addFlag("lane", static_cast<std::int64_t>(-1),
                "register lane (with --slot): inverse query");
    cli.addFlag("slot", static_cast<std::int64_t>(-1),
                "per-lane register slot");
    cli.parse(argc, argv);

    const arch::GpuArch target = parseArch(cli.getString("arch"));
    if (cli.getBool("list")) {
        listInstructions(target);
        return 0;
    }

    const std::string mnemonic = cli.getString("inst");
    if (mnemonic.empty())
        mc_fatal("--inst is required (or use --list)\n", cli.usage());
    const arch::MfmaInstruction *inst =
        arch::findInstruction(target, mnemonic);
    if (inst == nullptr)
        mc_fatal("no instruction '", mnemonic, "' on ",
                 arch::gpuArchName(target), " (try --list)");

    if (cli.getBool("detail")) {
        printDetail(*inst);
        return 0;
    }

    const arch::Operand op = parseOperand(cli.getString("operand"));
    if (cli.getBool("matrix")) {
        printMatrixMap(*inst, op);
        return 0;
    }

    const arch::OperandLayout layout(*inst, op);
    if (cli.getInt("row") >= 0 && cli.getInt("col") >= 0) {
        const arch::ElementCoord coord{
            static_cast<int>(cli.getInt("block")),
            static_cast<int>(cli.getInt("row")),
            static_cast<int>(cli.getInt("col"))};
        const arch::RegLocation loc = layout.locationOf(coord);
        std::printf("%s[%s] block %d element (%d, %d) -> lane %d, "
                    "slot %d\n",
                    inst->mnemonic.c_str(), arch::operandName(op),
                    coord.block, coord.row, coord.col, loc.lane,
                    loc.slot);
        return 0;
    }
    if (cli.getInt("lane") >= 0 && cli.getInt("slot") >= 0) {
        const arch::RegLocation loc{
            static_cast<int>(cli.getInt("lane")),
            static_cast<int>(cli.getInt("slot"))};
        const arch::ElementCoord coord = layout.elementAt(loc);
        std::printf("%s[%s] lane %d, slot %d -> block %d element "
                    "(%d, %d)\n",
                    inst->mnemonic.c_str(), arch::operandName(op),
                    loc.lane, loc.slot, coord.block, coord.row,
                    coord.col);
        return 0;
    }

    printDetail(*inst);
    return 0;
}
