/**
 * @file
 * A rocprof-shaped profiling CLI for the simulator: run a GEMM (or a
 * micro-benchmark loop) and emit the per-kernel hardware counters as a
 * CSV results file, the way rocprof writes results.csv. The derived
 * Eq. 1 FLOP totals and the Matrix Core share are appended as computed
 * columns.
 *
 * Examples:
 *   rocprof_sim --workload gemm --combo hss --n 4096 -o results.csv
 *   rocprof_sim --workload mfma_loop \
 *       --inst v_mfma_f64_16x16x4_f64 --wavefronts 440
 *   rocprof_sim --list-counters
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "blas/gemm.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "prof/profiler.hh"
#include "wmma/recorder.hh"

namespace {

using namespace mc;

void
writeResults(std::ostream &os, const prof::Profiler &profiler)
{
    CsvWriter csv(os);
    std::vector<std::string> header{"KernelName", "DurationNs"};
    const auto names = sim::HwCounters::counterNames();
    header.insert(header.end(), names.begin(), names.end());
    header.push_back("TOTAL_FLOPS");
    header.push_back("MFMA_FLOP_FRACTION");
    csv.writeRow(header);

    for (const auto &record : profiler.records()) {
        std::vector<std::string> row{record.name,
                                     std::to_string(static_cast<long long>(
                                         record.durationSec * 1e9))};
        for (const auto &name : names)
            row.push_back(std::to_string(record.counters.byName(name)));
        const auto split = prof::flopBreakdown(record.counters);
        char total[32], frac[16];
        std::snprintf(total, sizeof(total), "%.0f", split.total());
        std::snprintf(frac, sizeof(frac), "%.4f",
                      split.matrixCoreFraction());
        row.emplace_back(total);
        row.emplace_back(frac);
        csv.writeRow(row);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("rocprof-style counter collection on the simulator");
    cli.addFlag("workload", std::string("gemm"),
                "workload: gemm or mfma_loop");
    cli.addFlag("combo", std::string("sgemm"),
                "GEMM datatype combo (gemm workload)");
    cli.addFlag("n", static_cast<std::int64_t>(1024),
                "square GEMM dimension");
    cli.addFlag("alpha", 0.1, "GEMM alpha");
    cli.addFlag("beta", 0.1, "GEMM beta");
    cli.addFlag("inst", std::string("v_mfma_f32_16x16x16_f16"),
                "instruction (mfma_loop workload)");
    cli.addFlag("iters", static_cast<std::int64_t>(1000000),
                "loop iterations per wavefront (mfma_loop)");
    cli.addFlag("wavefronts", static_cast<std::int64_t>(440),
                "wavefronts to launch (mfma_loop)");
    cli.addFlag("runs", static_cast<std::int64_t>(1),
                "kernel launches to record");
    cli.addFlag("o", std::string(""),
                "output CSV path (default: stdout)");
    cli.addFlag("list-counters", false,
                "print the available counter names and exit");
    cli.parse(argc, argv);

    if (cli.getBool("list-counters")) {
        for (const auto &name : sim::HwCounters::counterNames())
            std::puts(name.c_str());
        return 0;
    }

    hip::Runtime rt;
    prof::Profiler profiler;
    const auto runs = static_cast<int>(cli.getInt("runs"));

    const std::string workload = cli.getString("workload");
    if (workload == "gemm") {
        blas::GemmEngine engine(rt);
        blas::GemmConfig cfg;
        cfg.combo = blas::parseCombo(cli.getString("combo"));
        cfg.m = cfg.n = cfg.k =
            static_cast<std::size_t>(cli.getInt("n"));
        cfg.alpha = cli.getDouble("alpha");
        cfg.beta = cli.getDouble("beta");
        for (int i = 0; i < runs; ++i) {
            auto result = engine.run(cfg);
            if (!result.isOk())
                mc_fatal("gemm failed: ", result.status().toString());
            profiler.record(result.value().kernel);
        }
    } else if (workload == "mfma_loop") {
        const arch::MfmaInstruction *inst = arch::findInstruction(
            rt.gpu().calibration().arch, cli.getString("inst"));
        if (inst == nullptr)
            mc_fatal("unknown instruction '", cli.getString("inst"), "'");
        const auto profile = wmma::mfmaLoopProfile(
            *inst, static_cast<std::uint64_t>(cli.getInt("iters")),
            static_cast<std::uint64_t>(cli.getInt("wavefronts")),
            inst->mnemonic);
        for (int i = 0; i < runs; ++i)
            profiler.record(rt.launch(profile, 0));
    } else {
        mc_fatal("unknown workload '", workload,
                 "' (expected gemm or mfma_loop)");
    }

    const std::string out_path = cli.getString("o");
    if (out_path.empty()) {
        writeResults(std::cout, profiler);
    } else {
        std::ofstream out(out_path);
        if (!out)
            mc_fatal("cannot open output file '", out_path, "'");
        writeResults(out, profiler);
        std::fprintf(stderr, "wrote %zu kernel record(s) to %s\n",
                     profiler.records().size(), out_path.c_str());
    }
    return 0;
}
