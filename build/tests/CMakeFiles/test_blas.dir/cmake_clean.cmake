file(REMOVE_RECURSE
  "CMakeFiles/test_blas.dir/blas/batched_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/batched_test.cc.o.d"
  "CMakeFiles/test_blas.dir/blas/emulation_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/emulation_test.cc.o.d"
  "CMakeFiles/test_blas.dir/blas/functional_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/functional_test.cc.o.d"
  "CMakeFiles/test_blas.dir/blas/gemm_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/gemm_test.cc.o.d"
  "CMakeFiles/test_blas.dir/blas/level3_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/level3_test.cc.o.d"
  "CMakeFiles/test_blas.dir/blas/property_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/property_test.cc.o.d"
  "CMakeFiles/test_blas.dir/blas/tiling_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/tiling_test.cc.o.d"
  "CMakeFiles/test_blas.dir/blas/verify_test.cc.o"
  "CMakeFiles/test_blas.dir/blas/verify_test.cc.o.d"
  "test_blas"
  "test_blas.pdb"
  "test_blas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
