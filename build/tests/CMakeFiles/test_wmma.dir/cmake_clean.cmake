file(REMOVE_RECURSE
  "CMakeFiles/test_wmma.dir/wmma/multiblock_test.cc.o"
  "CMakeFiles/test_wmma.dir/wmma/multiblock_test.cc.o.d"
  "CMakeFiles/test_wmma.dir/wmma/recorder_test.cc.o"
  "CMakeFiles/test_wmma.dir/wmma/recorder_test.cc.o.d"
  "CMakeFiles/test_wmma.dir/wmma/wmma_test.cc.o"
  "CMakeFiles/test_wmma.dir/wmma/wmma_test.cc.o.d"
  "test_wmma"
  "test_wmma.pdb"
  "test_wmma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wmma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
