file(REMOVE_RECURSE
  "CMakeFiles/test_fp.dir/fp/bfloat16_test.cc.o"
  "CMakeFiles/test_fp.dir/fp/bfloat16_test.cc.o.d"
  "CMakeFiles/test_fp.dir/fp/half_test.cc.o"
  "CMakeFiles/test_fp.dir/fp/half_test.cc.o.d"
  "test_fp"
  "test_fp.pdb"
  "test_fp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
