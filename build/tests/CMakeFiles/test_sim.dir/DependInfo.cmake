
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/counters_test.cc" "tests/CMakeFiles/test_sim.dir/sim/counters_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/counters_test.cc.o.d"
  "/root/repo/tests/sim/device_test.cc" "tests/CMakeFiles/test_sim.dir/sim/device_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/device_test.cc.o.d"
  "/root/repo/tests/sim/kernel_test.cc" "tests/CMakeFiles/test_sim.dir/sim/kernel_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/kernel_test.cc.o.d"
  "/root/repo/tests/sim/node_test.cc" "tests/CMakeFiles/test_sim.dir/sim/node_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/node_test.cc.o.d"
  "/root/repo/tests/sim/power_test.cc" "tests/CMakeFiles/test_sim.dir/sim/power_test.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/power_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mc_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mc_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/mc_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/mc_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/smi/CMakeFiles/mc_smi.dir/DependInfo.cmake"
  "/root/repo/build/src/wmma/CMakeFiles/mc_wmma.dir/DependInfo.cmake"
  "/root/repo/build/src/hip/CMakeFiles/mc_hip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mc_fp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
