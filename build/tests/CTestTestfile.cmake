# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fp[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_hip[1]_include.cmake")
include("/root/repo/build/tests/test_wmma[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_smi[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
