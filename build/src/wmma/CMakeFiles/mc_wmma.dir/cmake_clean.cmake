file(REMOVE_RECURSE
  "CMakeFiles/mc_wmma.dir/recorder.cc.o"
  "CMakeFiles/mc_wmma.dir/recorder.cc.o.d"
  "libmc_wmma.a"
  "libmc_wmma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_wmma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
