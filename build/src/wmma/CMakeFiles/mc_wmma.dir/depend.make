# Empty dependencies file for mc_wmma.
# This may be replaced when dependencies are built.
