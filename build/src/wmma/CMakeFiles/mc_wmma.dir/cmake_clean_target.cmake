file(REMOVE_RECURSE
  "libmc_wmma.a"
)
