file(REMOVE_RECURSE
  "CMakeFiles/mc_fp.dir/bfloat16.cc.o"
  "CMakeFiles/mc_fp.dir/bfloat16.cc.o.d"
  "CMakeFiles/mc_fp.dir/half.cc.o"
  "CMakeFiles/mc_fp.dir/half.cc.o.d"
  "libmc_fp.a"
  "libmc_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
