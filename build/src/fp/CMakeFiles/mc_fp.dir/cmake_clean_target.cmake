file(REMOVE_RECURSE
  "libmc_fp.a"
)
