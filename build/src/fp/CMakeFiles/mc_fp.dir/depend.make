# Empty dependencies file for mc_fp.
# This may be replaced when dependencies are built.
