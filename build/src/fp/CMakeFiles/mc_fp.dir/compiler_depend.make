# Empty compiler generated dependencies file for mc_fp.
# This may be replaced when dependencies are built.
