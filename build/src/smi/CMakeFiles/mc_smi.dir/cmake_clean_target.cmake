file(REMOVE_RECURSE
  "libmc_smi.a"
)
