file(REMOVE_RECURSE
  "CMakeFiles/mc_smi.dir/smi.cc.o"
  "CMakeFiles/mc_smi.dir/smi.cc.o.d"
  "libmc_smi.a"
  "libmc_smi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_smi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
