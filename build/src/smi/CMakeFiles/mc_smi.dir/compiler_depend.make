# Empty compiler generated dependencies file for mc_smi.
# This may be replaced when dependencies are built.
