file(REMOVE_RECURSE
  "CMakeFiles/mc_hip.dir/runtime.cc.o"
  "CMakeFiles/mc_hip.dir/runtime.cc.o.d"
  "libmc_hip.a"
  "libmc_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
