file(REMOVE_RECURSE
  "libmc_hip.a"
)
