# Empty compiler generated dependencies file for mc_hip.
# This may be replaced when dependencies are built.
