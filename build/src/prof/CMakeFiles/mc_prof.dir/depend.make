# Empty dependencies file for mc_prof.
# This may be replaced when dependencies are built.
