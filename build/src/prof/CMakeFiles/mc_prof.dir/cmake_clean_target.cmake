file(REMOVE_RECURSE
  "libmc_prof.a"
)
