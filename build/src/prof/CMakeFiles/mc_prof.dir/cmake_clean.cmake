file(REMOVE_RECURSE
  "CMakeFiles/mc_prof.dir/profiler.cc.o"
  "CMakeFiles/mc_prof.dir/profiler.cc.o.d"
  "CMakeFiles/mc_prof.dir/roofline.cc.o"
  "CMakeFiles/mc_prof.dir/roofline.cc.o.d"
  "libmc_prof.a"
  "libmc_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
