file(REMOVE_RECURSE
  "CMakeFiles/mc_sim.dir/counters.cc.o"
  "CMakeFiles/mc_sim.dir/counters.cc.o.d"
  "CMakeFiles/mc_sim.dir/device.cc.o"
  "CMakeFiles/mc_sim.dir/device.cc.o.d"
  "CMakeFiles/mc_sim.dir/kernel.cc.o"
  "CMakeFiles/mc_sim.dir/kernel.cc.o.d"
  "CMakeFiles/mc_sim.dir/node.cc.o"
  "CMakeFiles/mc_sim.dir/node.cc.o.d"
  "CMakeFiles/mc_sim.dir/power.cc.o"
  "CMakeFiles/mc_sim.dir/power.cc.o.d"
  "libmc_sim.a"
  "libmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
