
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/counters.cc" "src/sim/CMakeFiles/mc_sim.dir/counters.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/counters.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/mc_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/mc_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/node.cc" "src/sim/CMakeFiles/mc_sim.dir/node.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/node.cc.o.d"
  "/root/repo/src/sim/power.cc" "src/sim/CMakeFiles/mc_sim.dir/power.cc.o" "gcc" "src/sim/CMakeFiles/mc_sim.dir/power.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/mc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mc_fp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
