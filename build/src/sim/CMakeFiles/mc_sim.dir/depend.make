# Empty dependencies file for mc_sim.
# This may be replaced when dependencies are built.
