file(REMOVE_RECURSE
  "CMakeFiles/mc_arch.dir/calibration.cc.o"
  "CMakeFiles/mc_arch.dir/calibration.cc.o.d"
  "CMakeFiles/mc_arch.dir/layout.cc.o"
  "CMakeFiles/mc_arch.dir/layout.cc.o.d"
  "CMakeFiles/mc_arch.dir/mfma_isa.cc.o"
  "CMakeFiles/mc_arch.dir/mfma_isa.cc.o.d"
  "CMakeFiles/mc_arch.dir/types.cc.o"
  "CMakeFiles/mc_arch.dir/types.cc.o.d"
  "libmc_arch.a"
  "libmc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
