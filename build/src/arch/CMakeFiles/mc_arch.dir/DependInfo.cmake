
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/calibration.cc" "src/arch/CMakeFiles/mc_arch.dir/calibration.cc.o" "gcc" "src/arch/CMakeFiles/mc_arch.dir/calibration.cc.o.d"
  "/root/repo/src/arch/layout.cc" "src/arch/CMakeFiles/mc_arch.dir/layout.cc.o" "gcc" "src/arch/CMakeFiles/mc_arch.dir/layout.cc.o.d"
  "/root/repo/src/arch/mfma_isa.cc" "src/arch/CMakeFiles/mc_arch.dir/mfma_isa.cc.o" "gcc" "src/arch/CMakeFiles/mc_arch.dir/mfma_isa.cc.o.d"
  "/root/repo/src/arch/types.cc" "src/arch/CMakeFiles/mc_arch.dir/types.cc.o" "gcc" "src/arch/CMakeFiles/mc_arch.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fp/CMakeFiles/mc_fp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
