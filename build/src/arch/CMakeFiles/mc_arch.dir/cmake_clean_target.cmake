file(REMOVE_RECURSE
  "libmc_arch.a"
)
