# Empty compiler generated dependencies file for mc_arch.
# This may be replaced when dependencies are built.
