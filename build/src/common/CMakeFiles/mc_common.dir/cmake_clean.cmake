file(REMOVE_RECURSE
  "CMakeFiles/mc_common.dir/cli.cc.o"
  "CMakeFiles/mc_common.dir/cli.cc.o.d"
  "CMakeFiles/mc_common.dir/csv.cc.o"
  "CMakeFiles/mc_common.dir/csv.cc.o.d"
  "CMakeFiles/mc_common.dir/logging.cc.o"
  "CMakeFiles/mc_common.dir/logging.cc.o.d"
  "CMakeFiles/mc_common.dir/plot.cc.o"
  "CMakeFiles/mc_common.dir/plot.cc.o.d"
  "CMakeFiles/mc_common.dir/random.cc.o"
  "CMakeFiles/mc_common.dir/random.cc.o.d"
  "CMakeFiles/mc_common.dir/stats.cc.o"
  "CMakeFiles/mc_common.dir/stats.cc.o.d"
  "CMakeFiles/mc_common.dir/status.cc.o"
  "CMakeFiles/mc_common.dir/status.cc.o.d"
  "CMakeFiles/mc_common.dir/table.cc.o"
  "CMakeFiles/mc_common.dir/table.cc.o.d"
  "CMakeFiles/mc_common.dir/units.cc.o"
  "CMakeFiles/mc_common.dir/units.cc.o.d"
  "libmc_common.a"
  "libmc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
