file(REMOVE_RECURSE
  "CMakeFiles/mc_blas.dir/gemm.cc.o"
  "CMakeFiles/mc_blas.dir/gemm.cc.o.d"
  "CMakeFiles/mc_blas.dir/gemm_types.cc.o"
  "CMakeFiles/mc_blas.dir/gemm_types.cc.o.d"
  "CMakeFiles/mc_blas.dir/level3.cc.o"
  "CMakeFiles/mc_blas.dir/level3.cc.o.d"
  "CMakeFiles/mc_blas.dir/tiling.cc.o"
  "CMakeFiles/mc_blas.dir/tiling.cc.o.d"
  "CMakeFiles/mc_blas.dir/verify.cc.o"
  "CMakeFiles/mc_blas.dir/verify.cc.o.d"
  "libmc_blas.a"
  "libmc_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
