file(REMOVE_RECURSE
  "libmc_blas.a"
)
