# Empty dependencies file for mc_blas.
# This may be replaced when dependencies are built.
