# Empty compiler generated dependencies file for mc_solver.
# This may be replaced when dependencies are built.
