file(REMOVE_RECURSE
  "CMakeFiles/mc_solver.dir/cholesky.cc.o"
  "CMakeFiles/mc_solver.dir/cholesky.cc.o.d"
  "CMakeFiles/mc_solver.dir/lu.cc.o"
  "CMakeFiles/mc_solver.dir/lu.cc.o.d"
  "libmc_solver.a"
  "libmc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
