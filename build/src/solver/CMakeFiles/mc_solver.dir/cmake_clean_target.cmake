file(REMOVE_RECURSE
  "libmc_solver.a"
)
