# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gemm_tuning "/root/repo/build/examples/gemm_tuning" "--n=1024")
set_tests_properties(example_gemm_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_aware "/root/repo/build/examples/power_aware_gemm" "--n=2048" "--launches=5")
set_tests_properties(example_power_aware PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_refinement "/root/repo/build/examples/mixed_precision_refinement" "--n=128" "--block=32")
set_tests_properties(example_refinement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dual_gcd "/root/repo/build/examples/dual_gcd_streams")
set_tests_properties(example_dual_gcd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transformer "/root/repo/build/examples/transformer_layer" "--seq=1024" "--dmodel=1024" "--heads=16" "--batch=2")
set_tests_properties(example_transformer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
