# Empty compiler generated dependencies file for mixed_precision_refinement.
# This may be replaced when dependencies are built.
