file(REMOVE_RECURSE
  "CMakeFiles/mixed_precision_refinement.dir/mixed_precision_refinement.cpp.o"
  "CMakeFiles/mixed_precision_refinement.dir/mixed_precision_refinement.cpp.o.d"
  "mixed_precision_refinement"
  "mixed_precision_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_precision_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
