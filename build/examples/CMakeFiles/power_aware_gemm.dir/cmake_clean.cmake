file(REMOVE_RECURSE
  "CMakeFiles/power_aware_gemm.dir/power_aware_gemm.cpp.o"
  "CMakeFiles/power_aware_gemm.dir/power_aware_gemm.cpp.o.d"
  "power_aware_gemm"
  "power_aware_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_aware_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
