# Empty compiler generated dependencies file for power_aware_gemm.
# This may be replaced when dependencies are built.
