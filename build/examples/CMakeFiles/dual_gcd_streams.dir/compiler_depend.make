# Empty compiler generated dependencies file for dual_gcd_streams.
# This may be replaced when dependencies are built.
