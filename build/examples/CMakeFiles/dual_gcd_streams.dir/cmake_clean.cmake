file(REMOVE_RECURSE
  "CMakeFiles/dual_gcd_streams.dir/dual_gcd_streams.cpp.o"
  "CMakeFiles/dual_gcd_streams.dir/dual_gcd_streams.cpp.o.d"
  "dual_gcd_streams"
  "dual_gcd_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_gcd_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
