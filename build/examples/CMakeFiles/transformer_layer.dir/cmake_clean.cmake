file(REMOVE_RECURSE
  "CMakeFiles/transformer_layer.dir/transformer_layer.cpp.o"
  "CMakeFiles/transformer_layer.dir/transformer_layer.cpp.o.d"
  "transformer_layer"
  "transformer_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
