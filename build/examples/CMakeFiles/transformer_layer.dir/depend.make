# Empty dependencies file for transformer_layer.
# This may be replaced when dependencies are built.
