# Empty dependencies file for mfma_calculator.
# This may be replaced when dependencies are built.
