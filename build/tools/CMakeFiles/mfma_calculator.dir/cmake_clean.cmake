file(REMOVE_RECURSE
  "CMakeFiles/mfma_calculator.dir/mfma_calculator.cc.o"
  "CMakeFiles/mfma_calculator.dir/mfma_calculator.cc.o.d"
  "mfma_calculator"
  "mfma_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfma_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
