file(REMOVE_RECURSE
  "CMakeFiles/rocprof_sim.dir/rocprof_sim.cc.o"
  "CMakeFiles/rocprof_sim.dir/rocprof_sim.cc.o.d"
  "rocprof_sim"
  "rocprof_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocprof_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
