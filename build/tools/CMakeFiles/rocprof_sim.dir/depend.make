# Empty dependencies file for rocprof_sim.
# This may be replaced when dependencies are built.
