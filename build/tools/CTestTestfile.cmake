# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_calculator_list "/root/repo/build/tools/mfma_calculator" "--list")
set_tests_properties(tool_calculator_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_calculator_query "/root/repo/build/tools/mfma_calculator" "--inst" "v_mfma_f64_16x16x4_f64" "--operand" "D" "--row" "7" "--col" "3")
set_tests_properties(tool_calculator_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rocprof_gemm "/root/repo/build/tools/rocprof_sim" "--workload" "gemm" "--combo" "hss" "--n" "512")
set_tests_properties(tool_rocprof_gemm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_rocprof_loop "/root/repo/build/tools/rocprof_sim" "--workload" "mfma_loop" "--iters" "1000" "--wavefronts" "8")
set_tests_properties(tool_rocprof_loop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
