file(REMOVE_RECURSE
  "CMakeFiles/ext_generations.dir/ext_generations.cc.o"
  "CMakeFiles/ext_generations.dir/ext_generations.cc.o.d"
  "ext_generations"
  "ext_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
