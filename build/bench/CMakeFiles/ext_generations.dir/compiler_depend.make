# Empty compiler generated dependencies file for ext_generations.
# This may be replaced when dependencies are built.
