file(REMOVE_RECURSE
  "CMakeFiles/fig7_gemm_mixed.dir/fig7_gemm_mixed.cc.o"
  "CMakeFiles/fig7_gemm_mixed.dir/fig7_gemm_mixed.cc.o.d"
  "fig7_gemm_mixed"
  "fig7_gemm_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gemm_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
