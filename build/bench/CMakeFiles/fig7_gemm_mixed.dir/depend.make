# Empty dependencies file for fig7_gemm_mixed.
# This may be replaced when dependencies are built.
