file(REMOVE_RECURSE
  "../lib/libmc_bench_util.a"
  "../lib/libmc_bench_util.pdb"
  "CMakeFiles/mc_bench_util.dir/common/bench_util.cc.o"
  "CMakeFiles/mc_bench_util.dir/common/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
