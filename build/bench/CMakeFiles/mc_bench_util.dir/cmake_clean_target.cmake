file(REMOVE_RECURSE
  "../lib/libmc_bench_util.a"
)
