# Empty dependencies file for mc_bench_util.
# This may be replaced when dependencies are built.
