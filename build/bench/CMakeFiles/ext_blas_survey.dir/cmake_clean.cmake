file(REMOVE_RECURSE
  "CMakeFiles/ext_blas_survey.dir/ext_blas_survey.cc.o"
  "CMakeFiles/ext_blas_survey.dir/ext_blas_survey.cc.o.d"
  "ext_blas_survey"
  "ext_blas_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_blas_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
