# Empty dependencies file for ext_blas_survey.
# This may be replaced when dependencies are built.
