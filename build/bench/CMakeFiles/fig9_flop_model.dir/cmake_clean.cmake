file(REMOVE_RECURSE
  "CMakeFiles/fig9_flop_model.dir/fig9_flop_model.cc.o"
  "CMakeFiles/fig9_flop_model.dir/fig9_flop_model.cc.o.d"
  "fig9_flop_model"
  "fig9_flop_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_flop_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
