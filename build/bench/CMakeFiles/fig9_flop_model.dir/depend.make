# Empty dependencies file for fig9_flop_model.
# This may be replaced when dependencies are built.
