# Empty dependencies file for ablation_powercap.
# This may be replaced when dependencies are built.
