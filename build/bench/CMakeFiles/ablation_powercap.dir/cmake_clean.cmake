file(REMOVE_RECURSE
  "CMakeFiles/ablation_powercap.dir/ablation_powercap.cc.o"
  "CMakeFiles/ablation_powercap.dir/ablation_powercap.cc.o.d"
  "ablation_powercap"
  "ablation_powercap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_powercap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
