# Empty dependencies file for ext_ml_datatypes.
# This may be replaced when dependencies are built.
