file(REMOVE_RECURSE
  "CMakeFiles/ext_ml_datatypes.dir/ext_ml_datatypes.cc.o"
  "CMakeFiles/ext_ml_datatypes.dir/ext_ml_datatypes.cc.o.d"
  "ext_ml_datatypes"
  "ext_ml_datatypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ml_datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
