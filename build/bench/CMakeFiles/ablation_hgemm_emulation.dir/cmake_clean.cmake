file(REMOVE_RECURSE
  "CMakeFiles/ablation_hgemm_emulation.dir/ablation_hgemm_emulation.cc.o"
  "CMakeFiles/ablation_hgemm_emulation.dir/ablation_hgemm_emulation.cc.o.d"
  "ablation_hgemm_emulation"
  "ablation_hgemm_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hgemm_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
