# Empty dependencies file for ablation_hgemm_emulation.
# This may be replaced when dependencies are built.
