file(REMOVE_RECURSE
  "CMakeFiles/fig5_power.dir/fig5_power.cc.o"
  "CMakeFiles/fig5_power.dir/fig5_power.cc.o.d"
  "fig5_power"
  "fig5_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
