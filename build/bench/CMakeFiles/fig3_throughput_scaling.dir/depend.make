# Empty dependencies file for fig3_throughput_scaling.
# This may be replaced when dependencies are built.
