file(REMOVE_RECURSE
  "CMakeFiles/table1_shapes.dir/table1_shapes.cc.o"
  "CMakeFiles/table1_shapes.dir/table1_shapes.cc.o.d"
  "table1_shapes"
  "table1_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
