# Empty dependencies file for table1_shapes.
# This may be replaced when dependencies are built.
