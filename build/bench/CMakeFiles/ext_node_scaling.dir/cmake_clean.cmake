file(REMOVE_RECURSE
  "CMakeFiles/ext_node_scaling.dir/ext_node_scaling.cc.o"
  "CMakeFiles/ext_node_scaling.dir/ext_node_scaling.cc.o.d"
  "ext_node_scaling"
  "ext_node_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_node_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
