# Empty dependencies file for ext_node_scaling.
# This may be replaced when dependencies are built.
