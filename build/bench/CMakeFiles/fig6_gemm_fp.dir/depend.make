# Empty dependencies file for fig6_gemm_fp.
# This may be replaced when dependencies are built.
