file(REMOVE_RECURSE
  "CMakeFiles/fig6_gemm_fp.dir/fig6_gemm_fp.cc.o"
  "CMakeFiles/fig6_gemm_fp.dir/fig6_gemm_fp.cc.o.d"
  "fig6_gemm_fp"
  "fig6_gemm_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gemm_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
