file(REMOVE_RECURSE
  "CMakeFiles/ext_async_power.dir/ext_async_power.cc.o"
  "CMakeFiles/ext_async_power.dir/ext_async_power.cc.o.d"
  "ext_async_power"
  "ext_async_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_async_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
