# Empty compiler generated dependencies file for ext_async_power.
# This may be replaced when dependencies are built.
