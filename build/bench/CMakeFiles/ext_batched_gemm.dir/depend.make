# Empty dependencies file for ext_batched_gemm.
# This may be replaced when dependencies are built.
