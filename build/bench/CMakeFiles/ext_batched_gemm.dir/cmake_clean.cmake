file(REMOVE_RECURSE
  "CMakeFiles/ext_batched_gemm.dir/ext_batched_gemm.cc.o"
  "CMakeFiles/ext_batched_gemm.dir/ext_batched_gemm.cc.o.d"
  "ext_batched_gemm"
  "ext_batched_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batched_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
