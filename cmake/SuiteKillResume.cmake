# Crash-and-resume check for the mc_suite supervisor, run as a ctest
# entry (see tools/CMakeLists.txt). A reference suite runs to
# completion; a second suite is SIGKILLed by the --kill-after test hook
# right after its first bench is recorded in the manifest; --resume
# then finishes it. The resumed run must
#   - skip the completed bench without re-executing it (marker file),
#   - produce byte-identical bench CSVs to the uninterrupted run,
#   - list each bench exactly once in the manifest (no duplicates),
#   - leave no .tmp. atomic-write residue behind.
#
# Inputs: -DMC_SUITE=<path> -DFIG8=<path> -DFIG9=<path> -DWORK_DIR=<dir>

foreach(var MC_SUITE FIG8 FIG9 WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}=")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# The marker bench proves (non-)re-execution: every execution appends
# one line. MAXN is tiny to keep the sweeps fast.
set(plan "${WORK_DIR}/suite.plan")
file(WRITE "${plan}" "\
# kill/resume check plan
bench marker : /bin/sh -c 'echo ran >> marker.txt'
bench fig8 out=fig8.csv : ${FIG8} --maxn=64 --out=fig8.csv
bench fig9 out=fig9.csv : ${FIG9} --maxn=64 --out=fig9.csv
")

# 1. Uninterrupted reference run.
execute_process(
    COMMAND "${MC_SUITE}" --plan "${plan}" --run-dir "${WORK_DIR}/ref"
            --quiet
    RESULT_VARIABLE ref_result)
if(NOT ref_result EQUAL 0)
    message(FATAL_ERROR "reference suite failed: ${ref_result}")
endif()

# 2. Suite SIGKILLed right after the first bench's manifest write.
execute_process(
    COMMAND "${MC_SUITE}" --plan "${plan}" --run-dir "${WORK_DIR}/killed"
            --quiet --kill-after 1
    RESULT_VARIABLE killed_result)
if(killed_result EQUAL 0)
    message(FATAL_ERROR "--kill-after 1 run was expected to die, got 0")
endif()
if(EXISTS "${WORK_DIR}/killed/fig8.csv")
    message(FATAL_ERROR "killed run should not have reached fig8")
endif()

# 3. Resume the killed run-dir to completion.
execute_process(
    COMMAND "${MC_SUITE}" --plan "${plan}" --run-dir "${WORK_DIR}/killed"
            --quiet --resume
    RESULT_VARIABLE resume_result)
if(NOT resume_result EQUAL 0)
    message(FATAL_ERROR "resumed suite failed: ${resume_result}")
endif()

# The completed bench was skipped, not re-executed.
file(READ "${WORK_DIR}/killed/marker.txt" marker)
if(NOT marker STREQUAL "ran\n")
    message(FATAL_ERROR
        "marker bench re-executed on resume: '${marker}'")
endif()

# Resumed outputs are byte-identical to the uninterrupted run's.
foreach(csv fig8.csv fig9.csv)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${WORK_DIR}/ref/${csv}" "${WORK_DIR}/killed/${csv}"
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR
            "${csv} differs between reference and resumed run")
    endif()
endforeach()

# Each bench appears exactly once in the resumed manifest, and the
# completed one is marked as satisfied from the manifest.
file(READ "${WORK_DIR}/killed/manifest.json" manifest)
foreach(name marker fig8 fig9)
    string(REGEX MATCHALL "\"name\": \"${name}\"" hits "${manifest}")
    list(LENGTH hits count)
    if(NOT count EQUAL 1)
        message(FATAL_ERROR
            "bench '${name}' appears ${count} times in the manifest")
    endif()
endforeach()
if(NOT manifest MATCHES "\"resumed\": true")
    message(FATAL_ERROR "no manifest entry is marked resumed")
endif()

# Atomic writes must not leave temp residue.
file(GLOB_RECURSE residue "${WORK_DIR}/killed/*.tmp.*")
if(residue)
    message(FATAL_ERROR "atomic-write residue left behind: ${residue}")
endif()

message(STATUS "suite kill/resume check passed")
