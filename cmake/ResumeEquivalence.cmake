# Test driver for the sweep journal's checkpoint/resume contract
# (docs/RESILIENCE.md): a faulted run that is interrupted and resumed
# must produce stdout byte-identical to the same run left
# uninterrupted, at any --jobs value. Invoked as
#   cmake -DBENCH=<binary> "-DBENCH_ARGS=--csv;--reps=3" \
#         "-DFAULT_ARGS=--inject=hip=0.45;--max-point-failures=100" \
#         -DWORK_DIR=<dir> -P ResumeEquivalence.cmake
#
# Steps:
#   1. reference: uninterrupted faulted run writing a journal
#   2. full resume of that journal (re-executes only failed points)
#   3. resume of a *truncated* journal (simulated interruption), at
#      --jobs=8
# All three stdouts must match byte for byte.

if(NOT BENCH)
    message(FATAL_ERROR "BENCH not set")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "WORK_DIR not set")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(journal ${WORK_DIR}/journal.csv)
set(truncated ${WORK_DIR}/truncated.csv)
file(REMOVE ${journal} ${truncated})

# 1. Uninterrupted faulted run, journaled.
execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS} ${FAULT_ARGS} --jobs=1
            --journal=${journal}
    OUTPUT_VARIABLE reference_out
    RESULT_VARIABLE reference_rc)
if(NOT reference_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} (journaled run) exited with "
        "${reference_rc}")
endif()

# 2. Resume the complete journal: only failed points re-execute.
execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS} ${FAULT_ARGS} --jobs=1
            --resume=${journal}
    OUTPUT_VARIABLE resumed_out
    RESULT_VARIABLE resumed_rc)
if(NOT resumed_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} (resume) exited with ${resumed_rc}")
endif()
if(NOT reference_out STREQUAL resumed_out)
    message(FATAL_ERROR
        "resume output differs from the uninterrupted run for ${BENCH}:\n"
        "=== uninterrupted ===\n${reference_out}\n"
        "=== resumed ===\n${resumed_out}")
endif()

# 3. Simulate an interruption: keep the header plus roughly the first
# half of the journal records, then resume under --jobs=8.
file(STRINGS ${journal} journal_lines)
list(LENGTH journal_lines line_count)
math(EXPR keep "${line_count} / 2 + 1")
list(SUBLIST journal_lines 0 ${keep} kept_lines)
list(JOIN kept_lines "\n" kept_text)
file(WRITE ${truncated} "${kept_text}\n")

execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS} ${FAULT_ARGS} --jobs=8
            --resume=${truncated}
    OUTPUT_VARIABLE truncated_out
    RESULT_VARIABLE truncated_rc)
if(NOT truncated_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} (truncated resume) exited with "
        "${truncated_rc}")
endif()
if(NOT reference_out STREQUAL truncated_out)
    message(FATAL_ERROR
        "truncated-journal resume at --jobs=8 differs from the "
        "uninterrupted run for ${BENCH}:\n"
        "=== uninterrupted ===\n${reference_out}\n"
        "=== truncated resume ===\n${truncated_out}")
endif()
