# End-to-end chaos gate for the mc_serve daemon, run as a ctest entry
# (see tools/CMakeLists.txt). One daemon with worker isolation and
# chaos enabled is driven through the full degradation ladder:
#
#   1. a probe request at idle is captured as the reference bytes;
#   2. chaos requests (kill9, segv, exit3, hang) each degrade to their
#      documented ErrorCode while the daemon keeps answering pings;
#   3. a pipelined overload burst is replayed twice and must shed the
#      same request with the same error both times (deterministic
#      earliest-deadline shedding);
#   4. the probe is replayed *under load* and must answer byte-identical
#      to the idle reference;
#   5. a shutdown request drains the daemon, which exits 0 and removes
#      its socket.
#
# Inputs: -DMC_SERVE=<path> -DMC_CLIENT=<path> -DWORK_DIR=<dir>

foreach(var MC_SERVE MC_CLIENT WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}=")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Unix sockets cap sun_path around 108 bytes; build trees can nest
# deep, so the socket lives in /tmp and only logs go to WORK_DIR.
string(RANDOM LENGTH 8 ALPHABET 0123456789abcdef tag)
set(sock "/tmp/mc_serve_chaos_${tag}.sock")
set(ready "${WORK_DIR}/ready")

# --- start the daemon, backgrounded, and wait for the ready file -----------

execute_process(
    COMMAND sh -c "'${MC_SERVE}' --socket '${sock}' --slots 1 \
--queue-depth 4 --isolate faulted --allow-chaos \
--worker-deadline-sec 1 --worker-grace-sec 0.2 \
--ready-file '${ready}' > '${WORK_DIR}/daemon.log' 2>&1 &"
    RESULT_VARIABLE launch_result)
if(NOT launch_result EQUAL 0)
    message(FATAL_ERROR "cannot launch the daemon: ${launch_result}")
endif()

set(up FALSE)
foreach(attempt RANGE 100)
    if(EXISTS "${ready}")
        set(up TRUE)
        break()
    endif()
    execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT up)
    file(READ "${WORK_DIR}/daemon.log" log)
    message(FATAL_ERROR "daemon never became ready:\n${log}")
endif()

function(client_request out_file)
    execute_process(
        COMMAND "${MC_CLIENT}" --socket "${sock}" --timeout-sec 120
                ${ARGN}
        OUTPUT_FILE "${out_file}"
        RESULT_VARIABLE result)
    if(NOT result EQUAL 0)
        file(READ "${WORK_DIR}/daemon.log" log)
        message(FATAL_ERROR
            "client failed (${result}) for: ${ARGN}\ndaemon log:\n${log}")
    endif()
endfunction()

function(expect_code dump_file id code)
    file(READ "${dump_file}" dump)
    if(NOT dump MATCHES "\"id\": ?\"${id}\", ?\"code\": ?\"${code}\"")
        message(FATAL_ERROR
            "expected id=${id} code=${code}, got:\n${dump}")
    endif()
endfunction()

# --- 1. the idle reference probe -------------------------------------------

# Long deadline: under the earliest-deadline-first shed policy the
# probe is never the victim, so it survives any overload we create.
set(probe "{\"kind\":\"gemm\",\"id\":\"probe\",\"n\":96,\"reps\":3,\"deadline_sec\":86400}")
client_request("${WORK_DIR}/probe_idle.out" "${probe}")
expect_code("${WORK_DIR}/probe_idle.out" probe Ok)

# --- 2. the degradation ladder, one chaos mode at a time -------------------

# Each chaos request must degrade to its documented code, and the
# daemon must answer a ping right after — a dead or wedged daemon fails
# the client instead.
foreach(pair
        "kill9=Unavailable" "segv=Internal" "exit3=ResourceExhausted"
        "hang=DeadlineExceeded")
    string(REPLACE "=" ";" parts "${pair}")
    list(GET parts 0 mode)
    list(GET parts 1 code)
    client_request("${WORK_DIR}/chaos_${mode}.out"
        "{\"kind\":\"gemm\",\"id\":\"c\",\"n\":32,\"chaos\":\"${mode}\"}")
    expect_code("${WORK_DIR}/chaos_${mode}.out" c "${code}")
    client_request("${WORK_DIR}/ping_${mode}.out"
        "{\"kind\":\"ping\",\"id\":\"alive\"}")
    expect_code("${WORK_DIR}/ping_${mode}.out" alive Ok)
endforeach()

# --- 3. deterministic shedding under a pipelined overload ------------------

# One burst on one connection: "slow" is a chaos hang whose worker
# holds the only slot until the 1 s watchdog fires (simulated GEMMs
# finish in microseconds of wall clock — only a hang reliably keeps
# the slot busy while the reader enqueues the rest), four keepers fill
# queue-depth 4, and "doomed" (earliest deadline of the queue and
# itself) is shed. Replayed, the dump must be byte-identical — same
# victim, same error bytes, same payloads (mc_client sorts by id, so
# completion order is already factored out).
# keep2 carries seeded fault injection, so the burst also exercises a
# supervised worker (Isolation::Faulted) racing in-process runs.
set(burst "${WORK_DIR}/burst.requests")
file(WRITE "${burst}" "\
{\"kind\":\"gemm\",\"id\":\"slow\",\"n\":32,\"chaos\":\"hang\",\"deadline_sec\":4000}
{\"kind\":\"gemm\",\"id\":\"keep1\",\"n\":40,\"reps\":2,\"deadline_sec\":1000}
{\"kind\":\"gemm\",\"id\":\"keep2\",\"n\":48,\"reps\":2,\"deadline_sec\":1000,\"inject\":\"ecc=0.05\"}
{\"kind\":\"gemm\",\"id\":\"keep3\",\"n\":56,\"reps\":2,\"deadline_sec\":1000}
{\"kind\":\"gemm\",\"id\":\"keep4\",\"n\":64,\"reps\":2,\"deadline_sec\":1000}
{\"kind\":\"gemm\",\"id\":\"doomed\",\"n\":32,\"reps\":2,\"deadline_sec\":1}
")
client_request("${WORK_DIR}/burst1.out" --pipeline "@${burst}")
expect_code("${WORK_DIR}/burst1.out" doomed ResourceExhausted)
expect_code("${WORK_DIR}/burst1.out" slow DeadlineExceeded)
expect_code("${WORK_DIR}/burst1.out" keep4 Ok)

client_request("${WORK_DIR}/burst2.out" --pipeline "@${burst}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/burst1.out" "${WORK_DIR}/burst2.out"
    RESULT_VARIABLE same_burst)
if(NOT same_burst EQUAL 0)
    message(FATAL_ERROR
        "overload burst did not replay byte-identically (shedding or "
        "payloads depended on timing)")
endif()

# --- 4. the probe under load must equal the idle reference -----------------

# Two background flood clients on their own connections (faulted and
# plain requests, repeated), then the probe races both.
foreach(flood 1 2)
    execute_process(
        COMMAND sh -c "'${MC_CLIENT}' --socket '${sock}' --pipeline \
--repeat 3 --timeout-sec 120 '@${burst}' \
> '${WORK_DIR}/flood${flood}.out' 2>&1 &"
        RESULT_VARIABLE flood_result)
    if(NOT flood_result EQUAL 0)
        message(FATAL_ERROR "cannot launch flood client ${flood}")
    endif()
endforeach()
client_request("${WORK_DIR}/probe_loaded.out" "${probe}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/probe_idle.out" "${WORK_DIR}/probe_loaded.out"
    RESULT_VARIABLE same_probe)
if(NOT same_probe EQUAL 0)
    message(FATAL_ERROR
        "probe response changed under load — the byte-identical "
        "contract is broken")
endif()

# --- 5. graceful shutdown --------------------------------------------------

client_request("${WORK_DIR}/shutdown.out"
    "{\"kind\":\"shutdown\",\"id\":\"bye\"}")
expect_code("${WORK_DIR}/shutdown.out" bye Ok)

set(down FALSE)
foreach(attempt RANGE 100)
    if(NOT EXISTS "${sock}")
        set(down TRUE)
        break()
    endif()
    execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT down)
    message(FATAL_ERROR "daemon did not remove its socket on shutdown")
endif()

message(STATUS "serve chaos gate passed")
