# Test driver: run a sweep bench at --jobs=1 and --jobs=8 and require
# byte-identical stdout — the determinism contract of the sweep engine
# (docs/SWEEP_ENGINE.md). Invoked as
#   cmake -DBENCH=<binary> "-DBENCH_ARGS=--csv;--reps=3" \
#         -P CompareJobsOutput.cmake

if(NOT BENCH)
    message(FATAL_ERROR "BENCH not set")
endif()

execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS} --jobs=1
    OUTPUT_VARIABLE serial_out
    RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --jobs=1 exited with ${serial_rc}")
endif()

execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS} --jobs=8
    OUTPUT_VARIABLE parallel_out
    RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --jobs=8 exited with ${parallel_rc}")
endif()

if(NOT serial_out STREQUAL parallel_out)
    message(FATAL_ERROR
        "--jobs=8 output differs from --jobs=1 for ${BENCH}:\n"
        "=== jobs=1 ===\n${serial_out}\n"
        "=== jobs=8 ===\n${parallel_out}")
endif()
