# Test driver: run a bench with the pack cache disabled and once per
# requested capacity, and require byte-identical stdout — the
# packed-operand cache serves the exact bytes the uncached path
# stages, so caching must be invisible in every result
# (docs/PERF.md, "Operand packing & reuse"). MC_PACK_CACHE wins over
# the --pack-cache-mb flag, which is exactly what lets this gate pin
# the behavior regardless of the bench's own flags. Invoked as
#   cmake -DBENCH=<binary> "-DBENCH_ARGS=--csv;--reps=2" \
#         "-DCAPS=64;1" -P ComparePackCache.cmake
# Each CAPS entry is a capacity in MB; a deliberately tiny one (1)
# exercises mid-run LRU eviction and refill.

if(NOT BENCH)
    message(FATAL_ERROR "BENCH not set")
endif()
if(NOT CAPS)
    message(FATAL_ERROR "CAPS not set")
endif()

set(ENV{MC_PACK_CACHE} off)
execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS}
    OUTPUT_VARIABLE off_out
    RESULT_VARIABLE off_rc)
if(NOT off_rc EQUAL 0)
    message(FATAL_ERROR
        "${BENCH} under MC_PACK_CACHE=off exited with ${off_rc}")
endif()

foreach(cap IN LISTS CAPS)
    set(ENV{MC_PACK_CACHE} ${cap})
    execute_process(
        COMMAND ${BENCH} ${BENCH_ARGS}
        OUTPUT_VARIABLE cap_out
        RESULT_VARIABLE cap_rc)
    if(NOT cap_rc EQUAL 0)
        message(FATAL_ERROR
            "${BENCH} under MC_PACK_CACHE=${cap} exited with ${cap_rc}")
    endif()
    if(NOT off_out STREQUAL cap_out)
        message(FATAL_ERROR
            "MC_PACK_CACHE=${cap} output differs from "
            "MC_PACK_CACHE=off for ${BENCH}:\n"
            "=== off ===\n${off_out}\n"
            "=== ${cap} MB ===\n${cap_out}")
    endif()
endforeach()
