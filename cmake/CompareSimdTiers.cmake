# Test driver: run a bench under MC_SIMD=scalar and once per requested
# SIMD tier, and require byte-identical stdout — the bit-exactness
# contract of the micro-kernel ladder (docs/PERF.md). Tiers the host
# cannot run clamp down the ladder (see resolveSimdTier), so the same
# tier list is portable across machines. Invoked as
#   cmake -DBENCH=<binary> "-DBENCH_ARGS=--csv;--reps=2" \
#         "-DTIERS=sse2;avx2;avx512;neon" -P CompareSimdTiers.cmake

if(NOT BENCH)
    message(FATAL_ERROR "BENCH not set")
endif()
if(NOT TIERS)
    message(FATAL_ERROR "TIERS not set")
endif()

set(ENV{MC_SIMD} scalar)
execute_process(
    COMMAND ${BENCH} ${BENCH_ARGS}
    OUTPUT_VARIABLE scalar_out
    RESULT_VARIABLE scalar_rc)
if(NOT scalar_rc EQUAL 0)
    message(FATAL_ERROR
        "${BENCH} under MC_SIMD=scalar exited with ${scalar_rc}")
endif()

foreach(tier IN LISTS TIERS)
    set(ENV{MC_SIMD} ${tier})
    execute_process(
        COMMAND ${BENCH} ${BENCH_ARGS}
        OUTPUT_VARIABLE tier_out
        RESULT_VARIABLE tier_rc)
    if(NOT tier_rc EQUAL 0)
        message(FATAL_ERROR
            "${BENCH} under MC_SIMD=${tier} exited with ${tier_rc}")
    endif()
    if(NOT scalar_out STREQUAL tier_out)
        message(FATAL_ERROR
            "MC_SIMD=${tier} output differs from MC_SIMD=scalar for "
            "${BENCH}:\n"
            "=== scalar ===\n${scalar_out}\n"
            "=== ${tier} ===\n${tier_out}")
    endif()
endforeach()
