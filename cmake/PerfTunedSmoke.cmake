# Autotuner end-to-end gate, run as a ctest entry (see
# tools/CMakeLists.txt). A tiny `mc_perf --tune` produces a tuning
# artifact; the fig6 bench then runs its sweep twice — once with the
# artifact active through MC_TUNE, once with MC_TUNE=off — and the two
# runs must produce byte-identical stdout: the artifact's block sizes
# feed every verification GEMM through GemmPlan::func, so any numeric
# divergence introduced by tuned blocks would change the rendered
# results. The completion lines must also label the runs truthfully
# (tuned=<fingerprint> vs tuned=none).
#
# Inputs: -DMC_PERF=<path> -DFIG6=<path> -DWORK_DIR=<dir>

foreach(var MC_PERF FIG6 WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}=")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(artifact "${WORK_DIR}/mc_tune.json")

# 1. Tiny tune: one size bucket, every available tier, both fig6
#    combos. --tune-reps=1 and a small budget keep this a smoke, not a
#    calibration; the persisted winners just need to exist.
execute_process(
    COMMAND "${MC_PERF}" --tune --combos=sgemm,dgemm --sizes=256
            --tune-reps=1 --tune-budget-sec=10 --tune-out=${artifact}
    RESULT_VARIABLE tune_result
    OUTPUT_VARIABLE tune_stdout
    ERROR_VARIABLE tune_stderr)
if(NOT tune_result EQUAL 0)
    message(FATAL_ERROR "mc_perf --tune failed (${tune_result}):\n"
            "${tune_stdout}\n${tune_stderr}")
endif()
if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "mc_perf --tune did not persist ${artifact}")
endif()

# 2. The same fig6 sweep with the artifact active and pinned off. The
#    sweep sizes all fall in the tuned bucket, and --verify routes the
#    functional backend (with the tuned blocks) over every point.
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env MC_TUNE=${artifact}
            "${FIG6}" --csv --maxn=256 --verify --reps=2
    RESULT_VARIABLE tuned_result
    OUTPUT_FILE "${WORK_DIR}/tuned.csv"
    ERROR_FILE "${WORK_DIR}/tuned.err")
if(NOT tuned_result EQUAL 0)
    message(FATAL_ERROR "tuned fig6 run failed: ${tuned_result}")
endif()
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env MC_TUNE=off
            "${FIG6}" --csv --maxn=256 --verify --reps=2
    RESULT_VARIABLE default_result
    OUTPUT_FILE "${WORK_DIR}/default.csv"
    ERROR_FILE "${WORK_DIR}/default.err")
if(NOT default_result EQUAL 0)
    message(FATAL_ERROR "default fig6 run failed: ${default_result}")
endif()

# 3. Byte-identical stdout: tuned blocks may change speed only.
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/tuned.csv" "${WORK_DIR}/default.csv"
    RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
    message(FATAL_ERROR "tuned and default fig6 stdout differ — the "
            "tuning artifact changed results, not just speed")
endif()

# 4. The completion lines label the configuration truthfully.
file(READ "${WORK_DIR}/tuned.err" tuned_err)
file(READ "${WORK_DIR}/default.err" default_err)
if(NOT tuned_err MATCHES "tuned=[0-9a-f]+")
    message(FATAL_ERROR "tuned run's completion line does not carry the "
            "artifact fingerprint:\n${tuned_err}")
endif()
if(NOT default_err MATCHES "tuned=none")
    message(FATAL_ERROR "MC_TUNE=off run's completion line should say "
            "tuned=none:\n${default_err}")
endif()

message(STATUS "perf_tuned_smoke passed: artifact applied, output bytes "
        "identical, completion lines labelled")
