#include "thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"

namespace mc {
namespace exec {

ThreadPool::ThreadPool(int threads)
{
    threads = std::max(1, threads);
    _workers.reserve(threads);
    for (int i = 0; i < threads; ++i)
        _workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _workReady.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

std::uint64_t
ThreadPool::submittedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _submitted;
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        mc_assert(!_stopping, "submit on a stopping thread pool");
        _queue.push_back(std::move(task));
        ++_submitted;
    }
    _workReady.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _workReady.wait(lock,
                            [this]() { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        // packaged_task catches the task's exception into its future;
        // nothing escapes into the worker.
        task();
    }
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

std::atomic<int> g_concurrency_cap{0};

/** Apply the process-wide cap to a resolved worker-count request. */
int
capThreads(int threads)
{
    const int cap = g_concurrency_cap.load(std::memory_order_relaxed);
    return cap > 0 ? std::min(threads, cap) : threads;
}

} // namespace

void
setConcurrencyCap(int cap)
{
    g_concurrency_cap.store(std::max(0, cap), std::memory_order_relaxed);
}

int
concurrencyCap()
{
    return g_concurrency_cap.load(std::memory_order_relaxed);
}

std::shared_ptr<ThreadPool>
sharedPool(int min_threads)
{
    static std::mutex mutex;
    static std::shared_ptr<ThreadPool> pool;
    if (min_threads < 1)
        min_threads = ThreadPool::hardwareThreads();
    min_threads = capThreads(min_threads);
    std::lock_guard<std::mutex> lock(mutex);
    if (!pool || pool->threadCount() < min_threads)
        pool = std::make_shared<ThreadPool>(min_threads);
    return pool;
}

void
parallelChunks(std::size_t count, std::size_t chunk, int threads,
               const std::function<void(std::size_t, std::size_t)> &fn)
{
    mc_assert(chunk > 0, "parallelChunks requires a positive chunk");
    if (count == 0)
        return;
    if (threads < 1)
        threads = ThreadPool::hardwareThreads();
    threads = capThreads(threads);
    if (threads == 1 || count <= chunk) {
        for (std::size_t begin = 0; begin < count; begin += chunk)
            fn(begin, std::min(count, begin + chunk));
        return;
    }

    const std::shared_ptr<ThreadPool> pool = sharedPool(threads);
    std::vector<std::future<void>> chunks;
    chunks.reserve((count + chunk - 1) / chunk);
    for (std::size_t begin = 0; begin < count; begin += chunk) {
        const std::size_t end = std::min(count, begin + chunk);
        chunks.push_back(pool->submit([&fn, begin, end]() { fn(begin, end); }));
    }
    // Full barrier before rethrowing: every chunk references caller
    // state, so no exception may escape while one is still running.
    std::exception_ptr first;
    for (std::future<void> &done : chunks) {
        try {
            done.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace exec
} // namespace mc
