#include "thread_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mc {
namespace exec {

ThreadPool::ThreadPool(int threads)
{
    threads = std::max(1, threads);
    _workers.reserve(threads);
    for (int i = 0; i < threads; ++i)
        _workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _workReady.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

std::uint64_t
ThreadPool::submittedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _submitted;
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        mc_assert(!_stopping, "submit on a stopping thread pool");
        _queue.push_back(std::move(task));
        ++_submitted;
    }
    _workReady.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _workReady.wait(lock,
                            [this]() { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        // packaged_task catches the task's exception into its future;
        // nothing escapes into the worker.
        task();
    }
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

} // namespace exec
} // namespace mc
