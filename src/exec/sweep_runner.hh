/**
 * @file
 * Parallel execution of benchmark sweeps with bit-for-bit reproducible
 * results.
 *
 * Every figure/table bench evaluates a (combo x N x repetition) grid of
 * *independent* points: each point builds its own simulated device, so
 * nothing is shared between points and they can run on any worker in
 * any order. Determinism comes from seeding, not from ordering: each
 * point derives its noise seed from a stable hash of (bench name,
 * point key, repetition index), so `--jobs 8` produces byte-identical
 * output to `--jobs 1`.
 *
 * Usage pattern (see bench/fig6_gemm_fp.cc):
 *
 *     exec::SweepRunner runner("fig6_gemm_fp", jobs);
 *     auto results = runner.map(points.size(), [&](std::size_t i) {
 *         hip::Runtime rt;                       // per-point device
 *         ...
 *         rt.gpu().reseedNoise(runner.seedFor(key, rep));
 *         ...
 *     });
 *     // render `results` serially, in point order
 */

#ifndef MC_EXEC_SWEEP_RUNNER_HH
#define MC_EXEC_SWEEP_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hh"
#include "exec/thread_pool.hh"

namespace mc {
namespace exec {

namespace detail {

/** Internal sentinel thrown by points cancelled mid-map. */
struct SweepCancelled
{};

} // namespace detail

/**
 * Derive a noise seed from (bench name, point key, repetition).
 *
 * Stable across platforms and releases: the same triple always yields
 * the same seed, and any change to one component changes it.
 */
std::uint64_t deriveSeed(std::string_view bench_name,
                         std::string_view point_key,
                         std::uint64_t repetition);

/**
 * Outcome bookkeeping of the most recent map()/mapResult() call.
 */
struct SweepStats
{
    /** Points whose Result came back as an error (mapResult only). */
    std::size_t failed = 0;
    /** Points never run: cancelled by a failure or a blown budget. */
    std::size_t skipped = 0;
    /** True when the failure budget cancelled the tail of the sweep. */
    bool budgetExhausted = false;
};

/**
 * Fans the points of one sweep across a worker pool.
 */
class SweepRunner
{
  public:
    /**
     * @param bench_name namespace for seed derivation (use the binary
     *        name so two benches sweeping the same grid draw different
     *        noise).
     * @param jobs worker count; 1 (the default) runs points inline on
     *        the calling thread, values < 1 are clamped to 1.
     */
    explicit SweepRunner(std::string bench_name, int jobs = 1);

    const std::string &benchName() const { return _benchName; }
    int jobs() const { return _jobs; }

    /** Seed for repetition @p repetition of the point named @p point_key. */
    std::uint64_t
    seedFor(std::string_view point_key, std::uint64_t repetition) const
    {
        return deriveSeed(_benchName, point_key, repetition);
    }

    /**
     * Evaluate @p fn(0) ... @p fn(count - 1) and return the results in
     * index order. With jobs > 1 the calls run concurrently on a
     * fixed-size pool; @p fn must therefore not touch shared mutable
     * state (build per-point Runtime / engine instances inside it).
     *
     * Abort-on-error with fast cancel: the first exception flips a
     * stop flag that every not-yet-started point checks before running,
     * so a failure near the front of a long sweep does not burn hours
     * simulating points whose output will be discarded. The first
     * exception (by point index, among points that ran) is rethrown
     * after in-flight points finish; lastStats().skipped reports how
     * many points the cancellation spared.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        using R = decltype(fn(std::size_t{}));
        _lastStats = SweepStats{};
        std::vector<R> results;
        results.reserve(count);

        if (_jobs <= 1 || count <= 1) {
            for (std::size_t i = 0; i < count; ++i) {
                try {
                    results.push_back(fn(i));
                } catch (...) {
                    _lastStats.skipped = count - i - 1;
                    throw;
                }
            }
            return results;
        }

        ThreadPool pool(static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(_jobs), count)));
        auto cancelled = std::make_shared<std::atomic<bool>>(false);
        std::vector<std::future<R>> futures;
        futures.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            futures.push_back(pool.submit([&fn, i, cancelled]() -> R {
                if (cancelled->load(std::memory_order_acquire))
                    throw detail::SweepCancelled{};
                try {
                    return fn(i);
                } catch (...) {
                    cancelled->store(true, std::memory_order_release);
                    throw;
                }
            }));
        }
        // get() in index order: results stay ordered and the lowest-
        // index failure is the one reported, independent of timing.
        std::exception_ptr first_error;
        for (std::future<R> &future : futures) {
            try {
                results.push_back(future.get());
            } catch (const detail::SweepCancelled &) {
                ++_lastStats.skipped;
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);
        return results;
    }

    /**
     * Fault-isolating variant of map(): @p fn returns Result<T>, and a
     * failed point is a *value* in the returned vector, not the end of
     * the sweep. Once more than @p max_failures points have failed the
     * remaining unstarted points are cancelled — each reports
     * ResourceExhausted — and lastStats().budgetExhausted is set, so a
     * systematic fault (every point OOMs) cannot waste a cluster
     * allocation; occasional transient faults cost only their own
     * points.
     *
     * Which points get cancelled when the budget trips under jobs > 1
     * depends on scheduling; callers treat a blown budget as a fatal
     * outcome (nonzero exit), so the determinism contract only covers
     * sweeps whose failure count stays within budget.
     */
    template <typename Fn>
    auto
    mapResult(std::size_t count, Fn &&fn,
              std::size_t max_failures =
                  std::numeric_limits<std::size_t>::max())
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        using R = decltype(fn(std::size_t{}));
        _lastStats = SweepStats{};
        std::vector<R> results;
        results.reserve(count);

        if (_jobs <= 1 || count <= 1) {
            std::size_t failed = 0;
            for (std::size_t i = 0; i < count; ++i) {
                if (failed > max_failures) {
                    results.push_back(R(skippedPointStatus()));
                    ++_lastStats.skipped;
                    continue;
                }
                results.push_back(fn(i));
                if (!results.back().isOk())
                    ++failed;
            }
            _lastStats.failed = failed;
            _lastStats.budgetExhausted = failed > max_failures;
            return results;
        }

        ThreadPool pool(static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(_jobs), count)));
        auto failed = std::make_shared<std::atomic<std::size_t>>(0);
        auto skipped = std::make_shared<std::atomic<std::size_t>>(0);
        auto cancelled = std::make_shared<std::atomic<bool>>(false);
        std::vector<std::future<R>> futures;
        futures.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            futures.push_back(pool.submit(
                [&fn, i, max_failures, failed, skipped, cancelled]() -> R {
                    if (cancelled->load(std::memory_order_acquire)) {
                        skipped->fetch_add(1, std::memory_order_relaxed);
                        return R(skippedPointStatus());
                    }
                    R r = fn(i);
                    if (!r.isOk()) {
                        const std::size_t now =
                            failed->fetch_add(1,
                                              std::memory_order_acq_rel) + 1;
                        if (now > max_failures)
                            cancelled->store(true,
                                             std::memory_order_release);
                    }
                    return r;
                }));
        }
        for (std::future<R> &future : futures)
            results.push_back(future.get());
        _lastStats.failed = failed->load();
        _lastStats.skipped = skipped->load();
        _lastStats.budgetExhausted = cancelled->load();
        return results;
    }

    /** Bookkeeping of the most recent map()/mapResult() call. */
    const SweepStats &lastStats() const { return _lastStats; }

    /**
     * True when @p status is the marker mapResult() gives points it
     * skipped after the failure budget blew (as opposed to a point
     * that ran and failed on its own).
     */
    static bool isSkippedPointStatus(const Status &status);

  private:
    /** Status given to points cancelled by a blown failure budget. */
    static Status skippedPointStatus();

    std::string _benchName;
    int _jobs;
    SweepStats _lastStats;
};

} // namespace exec
} // namespace mc

#endif // MC_EXEC_SWEEP_RUNNER_HH
