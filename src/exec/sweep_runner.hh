/**
 * @file
 * Parallel execution of benchmark sweeps with bit-for-bit reproducible
 * results.
 *
 * Every figure/table bench evaluates a (combo x N x repetition) grid of
 * *independent* points: each point builds its own simulated device, so
 * nothing is shared between points and they can run on any worker in
 * any order. Determinism comes from seeding, not from ordering: each
 * point derives its noise seed from a stable hash of (bench name,
 * point key, repetition index), so `--jobs 8` produces byte-identical
 * output to `--jobs 1`.
 *
 * Usage pattern (see bench/fig6_gemm_fp.cc):
 *
 *     exec::SweepRunner runner("fig6_gemm_fp", jobs);
 *     auto results = runner.map(points.size(), [&](std::size_t i) {
 *         hip::Runtime rt;                       // per-point device
 *         ...
 *         rt.gpu().reseedNoise(runner.seedFor(key, rep));
 *         ...
 *     });
 *     // render `results` serially, in point order
 */

#ifndef MC_EXEC_SWEEP_RUNNER_HH
#define MC_EXEC_SWEEP_RUNNER_HH

#include <cstdint>
#include <future>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"

namespace mc {
namespace exec {

/**
 * Derive a noise seed from (bench name, point key, repetition).
 *
 * Stable across platforms and releases: the same triple always yields
 * the same seed, and any change to one component changes it.
 */
std::uint64_t deriveSeed(std::string_view bench_name,
                         std::string_view point_key,
                         std::uint64_t repetition);

/**
 * Fans the points of one sweep across a worker pool.
 */
class SweepRunner
{
  public:
    /**
     * @param bench_name namespace for seed derivation (use the binary
     *        name so two benches sweeping the same grid draw different
     *        noise).
     * @param jobs worker count; 1 (the default) runs points inline on
     *        the calling thread, values < 1 are clamped to 1.
     */
    explicit SweepRunner(std::string bench_name, int jobs = 1);

    const std::string &benchName() const { return _benchName; }
    int jobs() const { return _jobs; }

    /** Seed for repetition @p repetition of the point named @p point_key. */
    std::uint64_t
    seedFor(std::string_view point_key, std::uint64_t repetition) const
    {
        return deriveSeed(_benchName, point_key, repetition);
    }

    /**
     * Evaluate @p fn(0) ... @p fn(count - 1) and return the results in
     * index order. With jobs > 1 the calls run concurrently on a
     * fixed-size pool; @p fn must therefore not touch shared mutable
     * state (build per-point Runtime / engine instances inside it).
     * The first exception (by point index) is rethrown after all
     * points finish.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        using R = decltype(fn(std::size_t{}));
        std::vector<R> results;
        results.reserve(count);

        if (_jobs <= 1 || count <= 1) {
            for (std::size_t i = 0; i < count; ++i)
                results.push_back(fn(i));
            return results;
        }

        ThreadPool pool(static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(_jobs), count)));
        std::vector<std::future<R>> futures;
        futures.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            futures.push_back(pool.submit([&fn, i]() { return fn(i); }));
        // get() in index order: results stay ordered and the lowest-
        // index failure is the one reported, independent of timing.
        for (std::future<R> &future : futures)
            results.push_back(future.get());
        return results;
    }

  private:
    std::string _benchName;
    int _jobs;
};

} // namespace exec
} // namespace mc

#endif // MC_EXEC_SWEEP_RUNNER_HH
