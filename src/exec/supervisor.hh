/**
 * @file
 * Process-level suite supervisor: watchdog, crash isolation, restarts.
 *
 * Reproducing the paper end-to-end means running the whole figure
 * suite — hours of sweeps — unattended. PR 2 made a *single* sweep
 * resilient to faults simulated inside its own process; this layer
 * supervises the benches themselves as OS child processes, so the
 * failures only an operating system can deliver — a segfault, an
 * OOM-kill, a genuine wall-clock hang — cost one bench attempt instead
 * of the night's run.
 *
 * Each bench in a SuitePlan is fork/exec'd into its own process group
 * with stdout/stderr captured to per-bench log files. A per-bench
 * *wall-clock* watchdog (unlike PR 2's simulated-time deadlines, this
 * catches real hangs) escalates SIGTERM → SIGKILL on the whole group;
 * children also carry PR_SET_PDEATHSIG so even a SIGKILLed supervisor
 * leaves no orphans. Exit statuses and termination signals are
 * classified into the ErrorCode taxonomy, crashes and timeouts are
 * retried under a RetryPolicy restart budget (real wall-clock backoff
 * this time), and every bench's command, attempts, and outcome land in
 * a JSON run manifest written atomically after each bench — the
 * manifest is what --resume reads to skip completed benches, composing
 * with the per-point --journal/--resume inside each bench.
 *
 * A bench that exhausts its restart budget is recorded as failed and
 * the suite *continues*; the suite-level exit code turns nonzero only
 * at the end. See docs/RESILIENCE.md ("Suite supervision").
 */

#ifndef MC_EXEC_SUPERVISOR_HH
#define MC_EXEC_SUPERVISOR_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/retry.hh"
#include "common/status.hh"

namespace mc {
namespace exec {

/** One bench process declared in a suite plan. */
struct BenchSpec
{
    /** Unique name; also names the log files and manifest entry. */
    std::string name;

    /** Command line; argv[0] is the executable (PATH-resolved). */
    std::vector<std::string> argv;

    /** Wall-clock watchdog deadline, seconds; 0 = suite default. */
    double deadlineSec = 0.0;

    /** Attempt budget (including the first); 0 = suite default. */
    int maxAttempts = 0;

    /**
     * Output files the bench writes (relative to the run directory),
     * recorded in the manifest so tooling can locate results.
     */
    std::vector<std::string> outputs;
};

/**
 * A declared plan of benches, in execution order.
 *
 * Text form, one bench per line (see docs/RESILIENCE.md):
 *
 *     # mcchar suite plan v1
 *     bench fig6 deadline=120 attempts=3 out=fig6.csv : \
 *         /path/to/fig6_gemm_fp --csv --out=fig6.csv
 *
 * `bench <name> [deadline=S] [attempts=N] [out=FILE]... : <argv...>`,
 * blank lines and `#` comments ignored. Repeat out= for multiple
 * outputs. Tokens are whitespace-split; single or double quotes keep
 * spaces inside one argv token (no escape sequences).
 */
struct SuitePlan
{
    std::vector<BenchSpec> benches;

    /** Parse the text form; errors name the offending line. */
    static Result<SuitePlan> parse(const std::string &text);

    /** Load and parse a plan file. */
    static Result<SuitePlan> load(const std::string &path);
};

/** One fork/exec attempt of a bench. */
struct AttemptOutcome
{
    ErrorCode code = ErrorCode::Internal;

    /** Child exit status when it exited; -1 when killed by a signal. */
    int exitStatus = -1;

    /** Terminating signal when killed; 0 when it exited. */
    int signal = 0;

    /** True when the wall-clock watchdog triggered the termination. */
    bool watchdogFired = false;

    /** Wall-clock duration of the attempt, seconds. */
    double durationSec = 0.0;
};

/** Final, manifest-recorded outcome of one bench. */
struct BenchOutcome
{
    std::string name;
    std::vector<std::string> command;
    std::vector<AttemptOutcome> attempts;

    /** The last attempt's classification (Ok on success). */
    ErrorCode code = ErrorCode::Internal;

    /** True when the bench printed its machine-readable completion line. */
    bool completionLineSeen = false;

    /** True when --resume satisfied this bench from a prior manifest. */
    bool resumedFromManifest = false;

    /** Log file names, relative to the run directory. */
    std::string stdoutLog;
    std::string stderrLog;

    /** Declared output files, relative to the run directory. */
    std::vector<std::string> outputs;

    bool ok() const { return code == ErrorCode::Ok; }
};

/** Result of running a whole plan. */
struct SuiteResult
{
    std::vector<BenchOutcome> benches;

    /** True when SIGINT/SIGTERM (requestShutdown) stopped the suite. */
    bool interrupted = false;

    bool
    allOk() const
    {
        if (interrupted)
            return false;
        for (const BenchOutcome &bench : benches)
            if (!bench.ok())
                return false;
        return true;
    }
};

/** Supervision policy knobs. */
struct SupervisorOptions
{
    /** Directory for the manifest, logs, and children's cwd. */
    std::string runDir = ".";

    /**
     * Restart budget and backoff schedule. Unlike PR 2's simulated
     * backoff, the supervisor really sleeps: it is pacing a live
     * machine, not a simulator.
     */
    RetryPolicy restart;

    /** Watchdog deadline for benches that do not set one; 0 = none. */
    double defaultDeadlineSec = 0.0;

    /** Seconds between SIGTERM and SIGKILL during escalation. */
    double killGraceSec = 2.0;

    /** Load the manifest and skip benches already recorded complete. */
    bool resume = false;

    /** Emit one progress line per attempt on stderr. */
    bool echoProgress = true;

    /**
     * Test hook: raise SIGKILL on the supervisor itself after this
     * many benches have completed and been recorded (-1 = never).
     * Exercises exactly the crash the manifest protects against.
     */
    int killAfterBenches = -1;
};

/**
 * Prefix of the machine-readable completion line every bench prints on
 * stderr as its last act (`[mcchar] complete bench=<name> code=<code>
 * exit=<n>`). The supervisor records whether it appeared; its absence
 * on an exit-0 child flags a wrapper script or wrong binary.
 */
inline constexpr const char *kBenchCompletionPrefix =
    "[mcchar] complete bench=";

/**
 * Classify a waitpid(2) status: exit codes map through
 * errorCodeForExitStatus; signals map to DeadlineExceeded when the
 * watchdog fired, otherwise SIGKILL → ResourceExhausted (the OOM
 * killer's signature), externally sent termination signals →
 * Unavailable, and crash signals (SIGSEGV, SIGABRT, ...) → Internal.
 */
ErrorCode classifyWaitStatus(int wait_status, bool watchdog_fired);

/**
 * Whether a failed attempt is worth a restart: everything except
 * usage errors (InvalidArgument, Unsupported) and a missing executable
 * (NotFound) — those never heal by retrying.
 */
bool supervisorRetriable(ErrorCode code);

/** Serialize one bench outcome as its manifest entry. */
JsonValue benchOutcomeToJson(const BenchOutcome &outcome);

/** Parse a manifest entry back (inverse of benchOutcomeToJson). */
Result<BenchOutcome> benchOutcomeFromJson(const JsonValue &entry);

/**
 * Runs a SuitePlan to completion under supervision.
 *
 * run() executes benches in plan order; every outcome is appended to
 * the manifest (rewritten atomically after each bench) so a killed
 * supervisor can resume at bench granularity. Environmental failures
 * (unwritable run directory, corrupt manifest on resume) are the only
 * Status errors; bench failures are values inside SuiteResult.
 */
class Supervisor
{
  public:
    Supervisor(SuitePlan plan, SupervisorOptions options);

    Result<SuiteResult> run();

    /** The manifest path inside the run directory. */
    std::string manifestPath() const;

    /**
     * Async-signal-safe shutdown request (call from SIGINT/SIGTERM
     * handlers): the supervisor kills the running child's process
     * group, records the interruption, writes the manifest, and stops.
     */
    static void requestShutdown();

  private:
    AttemptOutcome runAttempt(const BenchSpec &bench, int attempt_no,
                              double deadline_sec);
    BenchOutcome runBench(const BenchSpec &bench);
    Status writeManifest(const std::vector<BenchOutcome> &outcomes) const;
    Result<std::vector<BenchOutcome>> loadManifest() const;

    SuitePlan _plan;
    SupervisorOptions _options;
};

} // namespace exec
} // namespace mc

#endif // MC_EXEC_SUPERVISOR_HH
