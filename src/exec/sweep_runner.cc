#include "sweep_runner.hh"

#include <algorithm>

#include "common/hash.hh"

namespace mc {
namespace exec {

std::uint64_t
deriveSeed(std::string_view bench_name, std::string_view point_key,
           std::uint64_t repetition)
{
    // Hash each component with a separator so ("ab", "c") and
    // ("a", "bc") cannot collide, then finalize: Rng seeds should
    // differ in many bits even for adjacent repetitions.
    std::uint64_t h = hashString(bench_name);
    h = hashString("\x1f", h);
    h = hashString(point_key, h);
    h = hashCombine(h, repetition);
    return mix64(h);
}

SweepRunner::SweepRunner(std::string bench_name, int jobs)
    : _benchName(std::move(bench_name)), _jobs(std::max(1, jobs))
{}

Status
SweepRunner::skippedPointStatus()
{
    return Status::resourceExhausted(
        "point skipped: sweep point-failure budget exhausted");
}

bool
SweepRunner::isSkippedPointStatus(const Status &status)
{
    const Status skipped = skippedPointStatus();
    return status.code() == skipped.code() &&
           status.message() == skipped.message();
}

} // namespace exec
} // namespace mc
