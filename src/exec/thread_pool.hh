/**
 * @file
 * A fixed-size worker pool for fanning independent simulation work
 * across host cores.
 *
 * The simulator is single-threaded by design (each Mi250x owns a
 * stateful power trace and noise stream), so parallelism happens one
 * level up: independent sweep points each get their own device
 * instance and run on a pool worker. The pool is deliberately small:
 * FIFO dispatch, futures for results, exceptions propagate through
 * the future to the caller.
 */

#ifndef MC_EXEC_THREAD_POOL_HH
#define MC_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mc {
namespace exec {

/**
 * Fixed-size FIFO thread pool.
 */
class ThreadPool
{
  public:
    /** Start @p threads workers; values < 1 are clamped to 1. */
    explicit ThreadPool(int threads);

    /** Drains nothing: pending tasks still run before workers exit. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(_workers.size()); }

    /** Tasks submitted so far (diagnostics). */
    std::uint64_t submittedCount() const;

    /**
     * Enqueue @p fn; the returned future yields its result or rethrows
     * its exception. Tasks start in submission order.
     */
    template <typename F>
    auto
    submit(F fn) -> std::future<std::invoke_result_t<F &>>
    {
        using R = std::invoke_result_t<F &>;
        // std::function requires copyable callables, so the
        // packaged_task (move-only) rides in a shared_ptr.
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); });
        return future;
    }

    /** The machine's hardware concurrency, at least 1. */
    static int hardwareThreads();

  private:
    void post(std::function<void()> task);
    void workerLoop();

    mutable std::mutex _mutex;
    std::condition_variable _workReady;
    std::deque<std::function<void()>> _queue;
    std::vector<std::thread> _workers;
    std::uint64_t _submitted = 0;
    bool _stopping = false;
};

/**
 * The process-wide pool shared by library-internal parallelism (the
 * fast functional-GEMM backend, most prominently). Returns a pool with
 * at least @p min_threads workers (values < 1 request the hardware
 * concurrency), growing by *replacement* when a larger request
 * arrives: callers hold the returned shared_ptr for the duration of
 * their fan-out, so a replaced pool stays alive until its last
 * in-flight user drops it and no task is ever stranded.
 */
std::shared_ptr<ThreadPool> sharedPool(int min_threads);

/**
 * Process-wide ceiling on library-internal fan-out: with a cap of
 * C > 0, sharedPool() requests and parallelChunks() fan-outs are
 * clamped to C workers. 0 (the default) means uncapped.
 *
 * This exists to stop multiplicative oversubscription when independent
 * concurrency knobs compose — most prominently a sweep's --jobs fanning
 * points across the pool while each point's --verify-threads fans its
 * verification GEMM, which used to create jobs x verify-threads
 * runnable threads. Benches set the cap to the hardware concurrency at
 * startup; results are unaffected (chunk contents never depend on the
 * worker count), only scheduling pressure changes.
 */
void setConcurrencyCap(int cap);

/** The current cap (0 = uncapped). */
int concurrencyCap();

/**
 * Split [0, count) into chunks of @p chunk and run
 * @p fn(begin, end) for each, fanning across @p threads workers of
 * the shared pool (serial — and pool-free — when @p threads is 1 or
 * there is only one chunk; @p threads < 1 requests the hardware
 * concurrency). Blocks until every chunk completed; the first chunk
 * exception (in submission order) is rethrown after the barrier.
 *
 * Chunks must be independent. @p fn must not call parallelChunks
 * recursively from a shared-pool worker: the outer call would block a
 * worker the inner call needs.
 */
void parallelChunks(std::size_t count, std::size_t chunk, int threads,
                    const std::function<void(std::size_t, std::size_t)> &fn);

} // namespace exec
} // namespace mc

#endif // MC_EXEC_THREAD_POOL_HH
