#include "supervisor.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace mc {
namespace exec {

namespace {

constexpr const char *kManifestFormat = "mcchar suite manifest v1";
constexpr const char *kManifestFile = "manifest.json";
/** Set from signal handlers; polled by the supervision loops. */
volatile std::sig_atomic_t g_shutdown_requested = 0;

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Sleep ~@p seconds in small chunks, returning early on shutdown. */
void
interruptibleSleep(double seconds)
{
    const double end = monotonicSeconds() + seconds;
    while (!g_shutdown_requested && monotonicSeconds() < end) {
        struct timespec ts{0, 10 * 1000 * 1000}; // 10 ms
        ::nanosleep(&ts, nullptr);
    }
}

/**
 * Split a line into tokens on whitespace; a single- or double-quoted
 * span (no escapes) keeps its spaces, so plans can express
 * `sh -c "..."` commands.
 */
std::vector<std::string>
splitTokens(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string token;
    bool in_token = false;
    char quote = '\0';
    for (char ch : text) {
        if (quote) {
            if (ch == quote)
                quote = '\0';
            else
                token += ch;
        } else if (ch == '\'' || ch == '"') {
            quote = ch;
            in_token = true;
        } else if (ch == ' ' || ch == '\t' || ch == '\r') {
            if (in_token)
                tokens.push_back(token);
            token.clear();
            in_token = false;
        } else {
            token += ch;
            in_token = true;
        }
    }
    if (in_token)
        tokens.push_back(token);
    return tokens;
}

bool
parsePositiveDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || v <= 0.0)
        return false;
    out = v;
    return true;
}

/** Kill @p pid's whole process group, falling back to the pid alone. */
void
killGroup(pid_t pid, int signo)
{
    if (::kill(-pid, signo) != 0)
        ::kill(pid, signo);
}

/** Read a whole file; empty string when unreadable (logs are best-effort). */
std::string
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::string();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

// ---- Plan parsing ---------------------------------------------------------

Result<SuitePlan>
SuitePlan::parse(const std::string &text)
{
    SuitePlan plan;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;

        const std::size_t colon = line.find(" : ");
        if (line.compare(first, 6, "bench ") != 0 ||
            colon == std::string::npos) {
            return Status::invalidArgument(
                "plan line " + std::to_string(line_no) +
                ": expected `bench <name> [key=value...] : <argv...>`");
        }

        BenchSpec bench;
        const std::vector<std::string> head = splitTokens(
            line.substr(first + 6, colon - first - 6));
        bench.argv = splitTokens(line.substr(colon + 3));
        if (head.empty() || bench.argv.empty()) {
            return Status::invalidArgument(
                "plan line " + std::to_string(line_no) +
                ": missing bench name or command");
        }
        bench.name = head[0];
        for (std::size_t i = 1; i < head.size(); ++i) {
            const std::string &option = head[i];
            const std::size_t eq = option.find('=');
            const std::string key =
                eq == std::string::npos ? option : option.substr(0, eq);
            const std::string value =
                eq == std::string::npos ? "" : option.substr(eq + 1);
            bool ok = true;
            if (key == "deadline") {
                ok = parsePositiveDouble(value, bench.deadlineSec);
            } else if (key == "attempts") {
                char *end = nullptr;
                const long v = std::strtol(value.c_str(), &end, 10);
                ok = end != value.c_str() && *end == '\0' && v >= 1;
                bench.maxAttempts = static_cast<int>(v);
            } else if (key == "out") {
                ok = !value.empty();
                bench.outputs.push_back(value);
            } else {
                ok = false;
            }
            if (!ok) {
                return Status::invalidArgument(
                    "plan line " + std::to_string(line_no) +
                    ": bad option '" + option + "'");
            }
        }
        for (const BenchSpec &existing : plan.benches) {
            if (existing.name == bench.name) {
                return Status::invalidArgument(
                    "plan line " + std::to_string(line_no) +
                    ": duplicate bench name '" + bench.name + "'");
            }
        }
        plan.benches.push_back(std::move(bench));
    }
    if (plan.benches.empty())
        return Status::invalidArgument("plan declares no benches");
    return plan;
}

Result<SuitePlan>
SuitePlan::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::notFound("cannot open plan file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

// ---- Classification -------------------------------------------------------

ErrorCode
classifyWaitStatus(int wait_status, bool watchdog_fired)
{
    if (WIFEXITED(wait_status))
        return errorCodeForExitStatus(WEXITSTATUS(wait_status));
    if (WIFSIGNALED(wait_status)) {
        if (watchdog_fired)
            return ErrorCode::DeadlineExceeded;
        switch (WTERMSIG(wait_status)) {
          case SIGKILL:
            // The kernel OOM killer's signature; also anything else
            // that force-killed the child — either way the machine ran
            // out of some resource, not the bench out of correctness.
            return ErrorCode::ResourceExhausted;
          case SIGTERM:
          case SIGINT:
          case SIGHUP:
            return ErrorCode::Unavailable;
          default:
            // SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, ...: a crash.
            return ErrorCode::Internal;
        }
    }
    return ErrorCode::Internal;
}

bool
supervisorRetriable(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
      case ErrorCode::InvalidArgument:
      case ErrorCode::Unsupported:
      case ErrorCode::NotFound:
        return false;
      default:
        return true;
    }
}

// ---- Manifest serialization -----------------------------------------------

JsonValue
benchOutcomeToJson(const BenchOutcome &outcome)
{
    JsonValue entry = JsonValue::object();
    entry.set("name", outcome.name);
    JsonValue command = JsonValue::array();
    for (const std::string &arg : outcome.command)
        command.append(arg);
    entry.set("command", std::move(command));
    entry.set("outcome", outcome.ok() ? "ok" : "failed");
    entry.set("code", errorCodeName(outcome.code));
    entry.set("completion_line", outcome.completionLineSeen);
    entry.set("resumed", outcome.resumedFromManifest);
    entry.set("stdout_log", outcome.stdoutLog);
    entry.set("stderr_log", outcome.stderrLog);
    if (!outcome.outputs.empty()) {
        JsonValue outputs = JsonValue::array();
        for (const std::string &path : outcome.outputs)
            outputs.append(path);
        entry.set("outputs", std::move(outputs));
    }
    JsonValue attempts = JsonValue::array();
    for (const AttemptOutcome &attempt : outcome.attempts) {
        JsonValue record = JsonValue::object();
        record.set("code", errorCodeName(attempt.code));
        record.set("exit_status", attempt.exitStatus);
        record.set("signal", attempt.signal);
        record.set("watchdog", attempt.watchdogFired);
        record.set("duration_sec", attempt.durationSec);
        attempts.append(std::move(record));
    }
    entry.set("attempts", std::move(attempts));
    return entry;
}

Result<BenchOutcome>
benchOutcomeFromJson(const JsonValue &entry)
{
    if (!entry.isObject() || !entry.has("name") || !entry.has("code") ||
        !entry.has("command") || !entry.has("attempts")) {
        return Status::failedPrecondition(
            "manifest entry is missing required members");
    }
    BenchOutcome outcome;
    outcome.name = entry.at("name").asString();
    if (!errorCodeFromName(entry.at("code").asString(), outcome.code)) {
        return Status::failedPrecondition(
            "manifest entry for '" + outcome.name +
            "' has unknown code '" + entry.at("code").asString() + "'");
    }
    const JsonValue &command = entry.at("command");
    for (std::size_t i = 0; i < command.size(); ++i)
        outcome.command.push_back(command.at(i).asString());
    if (const JsonValue *flag = entry.find("completion_line"))
        outcome.completionLineSeen = flag->asBool();
    if (const JsonValue *log = entry.find("stdout_log"))
        outcome.stdoutLog = log->asString();
    if (const JsonValue *log = entry.find("stderr_log"))
        outcome.stderrLog = log->asString();
    if (const JsonValue *outputs = entry.find("outputs")) {
        for (std::size_t i = 0; i < outputs->size(); ++i)
            outcome.outputs.push_back(outputs->at(i).asString());
    }
    const JsonValue &attempts = entry.at("attempts");
    for (std::size_t i = 0; i < attempts.size(); ++i) {
        const JsonValue &record = attempts.at(i);
        AttemptOutcome attempt;
        if (!errorCodeFromName(record.at("code").asString(),
                               attempt.code)) {
            return Status::failedPrecondition(
                "manifest attempt record has an unknown code");
        }
        attempt.exitStatus = static_cast<int>(
            record.at("exit_status").asInt());
        attempt.signal = static_cast<int>(record.at("signal").asInt());
        attempt.watchdogFired = record.at("watchdog").asBool();
        attempt.durationSec = record.at("duration_sec").asNumber();
        outcome.attempts.push_back(attempt);
    }
    return outcome;
}

// ---- Supervisor -----------------------------------------------------------

Supervisor::Supervisor(SuitePlan plan, SupervisorOptions options)
    : _plan(std::move(plan)), _options(std::move(options))
{
    mc_assert(!_plan.benches.empty(), "supervisor needs a non-empty plan");
    if (_options.runDir.empty())
        _options.runDir = ".";
}

std::string
Supervisor::manifestPath() const
{
    return _options.runDir + "/" + kManifestFile;
}

void
Supervisor::requestShutdown()
{
    g_shutdown_requested = 1;
}

Status
Supervisor::writeManifest(const std::vector<BenchOutcome> &outcomes) const
{
    JsonValue manifest = JsonValue::object();
    manifest.set("format", kManifestFormat);
    JsonValue benches = JsonValue::array();
    for (const BenchOutcome &outcome : outcomes)
        benches.append(benchOutcomeToJson(outcome));
    manifest.set("benches", std::move(benches));
    return writeFileAtomic(manifestPath(), manifest.serialize());
}

Result<std::vector<BenchOutcome>>
Supervisor::loadManifest() const
{
    const std::string text = slurpFile(manifestPath());
    if (text.empty()) {
        return Status::notFound("no manifest at '" + manifestPath() +
                                "'");
    }
    auto parsed = JsonValue::parse(text);
    if (!parsed.isOk()) {
        return Status::failedPrecondition(
            "manifest '" + manifestPath() +
            "' is not valid JSON: " + parsed.status().message());
    }
    const JsonValue &manifest = parsed.value();
    const JsonValue *format = manifest.find("format");
    if (!format || format->asString() != kManifestFormat) {
        return Status::failedPrecondition(
            "'" + manifestPath() + "' is not a suite manifest");
    }
    std::vector<BenchOutcome> outcomes;
    const JsonValue *benches = manifest.find("benches");
    if (benches && benches->isArray()) {
        for (std::size_t i = 0; i < benches->size(); ++i) {
            auto outcome = benchOutcomeFromJson(benches->at(i));
            if (!outcome.isOk())
                return outcome.status();
            outcomes.push_back(outcome.take());
        }
    }
    return outcomes;
}

AttemptOutcome
Supervisor::runAttempt(const BenchSpec &bench, int attempt_no,
                       double deadline_sec)
{
    AttemptOutcome attempt;

    const std::string stdout_path =
        _options.runDir + "/" + bench.name + ".stdout.log";
    const std::string stderr_path =
        _options.runDir + "/" + bench.name + ".stderr.log";
    // Append across attempts so crash logs from earlier attempts
    // survive for post-mortems; truncate on the first attempt so a
    // resumed or re-run suite starts a fresh log.
    const int open_flags =
        O_WRONLY | O_CREAT | (attempt_no == 1 ? O_TRUNC : O_APPEND);
    const int out_fd = ::open(stdout_path.c_str(), open_flags, 0644);
    const int err_fd = ::open(stderr_path.c_str(), open_flags, 0644);
    if (out_fd < 0 || err_fd < 0) {
        if (out_fd >= 0)
            ::close(out_fd);
        if (err_fd >= 0)
            ::close(err_fd);
        attempt.code = ErrorCode::InvalidArgument;
        return attempt;
    }
    if (attempt_no > 1) {
        ::dprintf(err_fd, "[mc_suite] --- attempt %d ---\n", attempt_no);
    }

    const double started = monotonicSeconds();
    const pid_t pid = ::fork();
    if (pid == 0) {
        // Child. Own process group, so watchdog escalation reaches any
        // grandchildren the bench spawns; die with the supervisor so
        // even `kill -9` of the suite leaves no orphans.
        ::setpgid(0, 0);
#if defined(__linux__)
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() == 1)
            ::_exit(exit_code::ExecFailed); // parent already gone
#endif
        if (::chdir(_options.runDir.c_str()) != 0)
            ::_exit(exit_code::ExecFailed);
        ::dup2(out_fd, STDOUT_FILENO);
        ::dup2(err_fd, STDERR_FILENO);
        ::close(out_fd);
        ::close(err_fd);

        std::vector<char *> argv;
        argv.reserve(bench.argv.size() + 1);
        for (const std::string &arg : bench.argv)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        std::fprintf(stderr, "mc_suite: exec '%s' failed: %s\n", argv[0],
                     std::strerror(errno));
        ::_exit(exit_code::ExecFailed);
    }
    ::close(out_fd);
    ::close(err_fd);

    if (pid < 0) {
        attempt.code = ErrorCode::ResourceExhausted;
        return attempt;
    }
    // Also set the group from the parent: whichever side wins the race
    // the group exists before anyone signals it.
    ::setpgid(pid, pid);

    // The watchdog wait loop: poll for exit, enforce the wall-clock
    // deadline, honor shutdown requests. Polling (10 ms) keeps this
    // simple and signal-handler-free; supervision latency is invisible
    // next to bench runtimes.
    int wait_status = 0;
    bool reaped = false;
    bool term_sent = false;
    bool kill_sent = false;
    double term_sent_at = 0.0;
    while (!reaped) {
        const pid_t r = ::waitpid(pid, &wait_status, WNOHANG);
        if (r == pid) {
            reaped = true;
            break;
        }
        const double now = monotonicSeconds();
        if (g_shutdown_requested && !kill_sent) {
            // Suite interrupted: take the whole child group down hard.
            killGroup(pid, SIGKILL);
            kill_sent = true;
        } else if (deadline_sec > 0.0 &&
                   now - started > deadline_sec && !term_sent) {
            attempt.watchdogFired = true;
            killGroup(pid, SIGTERM);
            term_sent = true;
            term_sent_at = now;
        } else if (term_sent && !kill_sent &&
                   now - term_sent_at > _options.killGraceSec) {
            // The child ignored SIGTERM past the grace period.
            killGroup(pid, SIGKILL);
            kill_sent = true;
        }
        struct timespec ts{0, 10 * 1000 * 1000}; // 10 ms
        ::nanosleep(&ts, nullptr);
    }
    attempt.durationSec = monotonicSeconds() - started;

    if (g_shutdown_requested && !attempt.watchdogFired) {
        attempt.code = ErrorCode::Unavailable;
    } else {
        attempt.code = classifyWaitStatus(wait_status,
                                          attempt.watchdogFired);
    }
    if (WIFEXITED(wait_status))
        attempt.exitStatus = WEXITSTATUS(wait_status);
    else if (WIFSIGNALED(wait_status))
        attempt.signal = WTERMSIG(wait_status);
    return attempt;
}

BenchOutcome
Supervisor::runBench(const BenchSpec &bench)
{
    BenchOutcome outcome;
    outcome.name = bench.name;
    outcome.command = bench.argv;
    outcome.outputs = bench.outputs;
    outcome.stdoutLog = bench.name + ".stdout.log";
    outcome.stderrLog = bench.name + ".stderr.log";

    const int max_attempts = bench.maxAttempts > 0
                                 ? bench.maxAttempts
                                 : _options.restart.maxAttempts;
    const double deadline_sec = bench.deadlineSec > 0.0
                                    ? bench.deadlineSec
                                    : _options.defaultDeadlineSec;

    for (int attempt_no = 1; attempt_no <= max_attempts; ++attempt_no) {
        const AttemptOutcome attempt =
            runAttempt(bench, attempt_no, deadline_sec);
        outcome.attempts.push_back(attempt);
        outcome.code = attempt.code;
        if (_options.echoProgress) {
            std::fprintf(stderr,
                         "[mc_suite] %s: attempt %d/%d -> %s "
                         "(%.2f s%s)\n",
                         bench.name.c_str(), attempt_no, max_attempts,
                         errorCodeName(attempt.code), attempt.durationSec,
                         attempt.watchdogFired ? ", watchdog" : "");
        }
        if (attempt.code == ErrorCode::Ok || g_shutdown_requested ||
            !supervisorRetriable(attempt.code)) {
            break;
        }
        if (attempt_no < max_attempts)
            interruptibleSleep(
                _options.restart.backoffBeforeRetry(attempt_no));
    }

    if (outcome.code == ErrorCode::Ok) {
        // The completion line is the bench's own confirmation that it
        // reached its summary; its absence (exec'd the wrong binary,
        // exit 0 from a wrapper script) is recorded but not fatal.
        const std::string log =
            slurpFile(_options.runDir + "/" + outcome.stderrLog);
        outcome.completionLineSeen =
            log.find(kBenchCompletionPrefix) != std::string::npos;
    }
    return outcome;
}

Result<SuiteResult>
Supervisor::run()
{
    // Best-effort: the directory may already exist (resume) or be
    // nested (then the caller must have created the parents).
    ::mkdir(_options.runDir.c_str(), 0755);

    std::vector<BenchOutcome> previous;
    if (_options.resume) {
        auto loaded = loadManifest();
        if (!loaded.isOk() &&
            loaded.status().code() != ErrorCode::NotFound) {
            return loaded.status();
        }
        if (loaded.isOk())
            previous = loaded.take();
    }

    SuiteResult result;
    for (const BenchSpec &bench : _plan.benches) {
        if (g_shutdown_requested) {
            result.interrupted = true;
            break;
        }

        // Resume: a prior completed run of the same command satisfies
        // this bench. A changed command line re-runs — the old result
        // no longer describes the plan.
        const BenchOutcome *prior = nullptr;
        for (const BenchOutcome &candidate : previous) {
            if (candidate.name == bench.name &&
                candidate.command == bench.argv && candidate.ok()) {
                prior = &candidate;
                break;
            }
        }
        if (prior) {
            BenchOutcome outcome = *prior;
            outcome.resumedFromManifest = true;
            if (_options.echoProgress) {
                std::fprintf(stderr,
                             "[mc_suite] %s: complete in manifest, "
                             "skipping\n",
                             bench.name.c_str());
            }
            result.benches.push_back(std::move(outcome));
        } else {
            result.benches.push_back(runBench(bench));
        }

        Status wrote = writeManifest(result.benches);
        if (!wrote.isOk())
            return wrote;

        if (_options.killAfterBenches >= 0 &&
            static_cast<int>(result.benches.size()) >=
                _options.killAfterBenches) {
            // Test hook: die the hardest way possible, right after the
            // manifest write the resume path depends on.
            ::raise(SIGKILL);
        }
    }
    if (g_shutdown_requested)
        result.interrupted = true;
    return result;
}

} // namespace exec
} // namespace mc
