/**
 * @file
 * Append-only sweep journal for checkpoint/resume.
 *
 * A long measurement campaign that dies at point 412 of 500 — node
 * reclaimed, wall-clock limit, injected fault budget — should not cost
 * the 411 finished points. Each completed point appends one CSV record
 * to the journal as soon as its result is known; a later run opened
 * with --resume replays the journal, re-executes only the points that
 * are missing or recorded as failed, and (because every point's seeds
 * derive from the stable (bench, key, rep) hash, not from execution
 * order) produces output byte-identical to an uninterrupted run.
 *
 * Format (v2) — one record per line, a CRC-32 field then the record
 * body, split on the first four commas:
 *
 *     # mcchar sweep journal v2 bench=<bench_name>
 *     <crc32-hex8>,<index>,<key>,<code>,<payload>
 *
 * index is the point's position in the sweep grid, key its stable
 * name ("sgemm/4096"), code an ErrorCode name ("Ok", "OutOfMemory",
 * ...), payload a bench-defined encoding of the point's result (it
 * may itself contain commas, never newlines). The leading field is
 * the CRC-32 of the body (`<index>,<key>,<code>,<payload>`) as eight
 * lowercase hex digits. Duplicate indices are legal; the last record
 * wins — a resumed run simply appends fresh records for re-executed
 * points.
 *
 * The checksum lets the loader distinguish the two corruption cases
 * that matter on real storage: a torn *final* line (the expected
 * residue of a killed run) is skipped, while a checksum mismatch or
 * malformed record *before* the final line means silent mid-file
 * corruption and fails open() with a line-numbered DataLoss error —
 * resuming from a silently corrupt journal would fabricate results.
 * Legacy v1 journals (no checksum field) are still read with the old
 * tolerant semantics, and appends to them stay in v1 format so one
 * file never mixes versions.
 *
 * Under --jobs N the journal's line *order* varies with scheduling,
 * but the set of records is deterministic; only rendered stdout is
 * held to the byte-identical standard (see docs/RESILIENCE.md).
 */

#ifndef MC_EXEC_JOURNAL_HH
#define MC_EXEC_JOURNAL_HH

#include <cstddef>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.hh"

namespace mc {
namespace exec {

/** One journalled sweep point. */
struct JournalEntry
{
    std::size_t index = 0; ///< position in the sweep grid
    std::string key;       ///< stable point name, no commas/newlines
    ErrorCode code = ErrorCode::Ok;
    std::string payload;   ///< bench-defined; empty for failed points

    bool ok() const { return code == ErrorCode::Ok; }
};

/**
 * The append-only journal file. Writable from pool workers: record()
 * serializes appends under a mutex and flushes each line, so a killed
 * run loses at most the line being written.
 */
class SweepJournal
{
  public:
    /** Start a fresh journal at @p path (truncates any existing file). */
    static Result<SweepJournal> create(const std::string &path,
                                       const std::string &bench_name);

    /**
     * Open an existing journal for resume: load its records (last
     * entry per index wins), then append to it. Fails with NotFound
     * when the file is missing, FailedPrecondition when its header
     * names a different bench or format version, and DataLoss when an
     * interior record is corrupt (checksum mismatch); only a torn
     * final line is tolerated.
     */
    static Result<SweepJournal> open(const std::string &path,
                                     const std::string &bench_name);

    /** Append one record (thread-safe, flushed immediately). */
    void record(const JournalEntry &entry);

    /** Loaded record for @p index, or null. Empty for created journals. */
    const JournalEntry *find(std::size_t index) const;

    /** Loaded records (distinct indices). */
    std::size_t loadedCount() const { return _loaded.size(); }

    /** Loaded records with code Ok. */
    std::size_t loadedOkCount() const;

    const std::string &path() const { return _path; }
    const std::string &benchName() const { return _bench; }

  private:
    SweepJournal() = default;

    std::string _path;
    std::string _bench;
    // False only for journals opened from a legacy v1 file: appended
    // records then stay checksum-less so the file has one format.
    bool _checksummed = true;
    std::map<std::size_t, JournalEntry> _loaded;
    // shared_ptr keeps the journal movable (Result requires it) while
    // the mutex and stream stay put.
    std::shared_ptr<std::ofstream> _out;
    std::shared_ptr<std::mutex> _mutex;
};

} // namespace exec
} // namespace mc

#endif // MC_EXEC_JOURNAL_HH
