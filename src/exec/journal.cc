#include "journal.hh"

#include <charconv>
#include <sstream>

#include "common/logging.hh"

namespace mc {
namespace exec {

namespace {

constexpr const char *formatTag = "mcchar sweep journal v1";

std::string
headerLine(const std::string &bench_name)
{
    return std::string("# ") + formatTag + " bench=" + bench_name;
}

/** Parse one record line; returns false (and warns) on malformed input. */
bool
parseRecord(const std::string &line, JournalEntry &entry)
{
    const std::size_t c1 = line.find(',');
    if (c1 == std::string::npos)
        return false;
    const std::size_t c2 = line.find(',', c1 + 1);
    if (c2 == std::string::npos)
        return false;
    const std::size_t c3 = line.find(',', c2 + 1);
    if (c3 == std::string::npos)
        return false;

    const std::string_view index_text(line.data(), c1);
    const auto [end, ec] = std::from_chars(
        index_text.data(), index_text.data() + index_text.size(),
        entry.index);
    if (ec != std::errc{} || end != index_text.data() + index_text.size())
        return false;

    entry.key = line.substr(c1 + 1, c2 - c1 - 1);
    if (!errorCodeFromName(
            std::string_view(line).substr(c2 + 1, c3 - c2 - 1),
            entry.code)) {
        return false;
    }
    entry.payload = line.substr(c3 + 1);
    return true;
}

} // namespace

Result<SweepJournal>
SweepJournal::create(const std::string &path,
                     const std::string &bench_name)
{
    SweepJournal journal;
    journal._path = path;
    journal._bench = bench_name;
    journal._mutex = std::make_shared<std::mutex>();
    journal._out = std::make_shared<std::ofstream>(
        path, std::ios::out | std::ios::trunc);
    if (!*journal._out) {
        return Status::invalidArgument(
            "cannot create sweep journal at '" + path + "'");
    }
    *journal._out << headerLine(bench_name) << '\n';
    journal._out->flush();
    return journal;
}

Result<SweepJournal>
SweepJournal::open(const std::string &path,
                   const std::string &bench_name)
{
    std::ifstream in(path);
    if (!in) {
        return Status::notFound(
            "sweep journal '" + path + "' does not exist");
    }

    SweepJournal journal;
    journal._path = path;
    journal._bench = bench_name;
    journal._mutex = std::make_shared<std::mutex>();

    std::string line;
    if (!std::getline(in, line) || line != headerLine(bench_name)) {
        return Status::failedPrecondition(
            "'" + path + "' is not a journal of bench '" + bench_name +
            "' (header: '" + line + "')");
    }

    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        JournalEntry entry;
        if (!parseRecord(line, entry)) {
            // A truncated final line is the expected residue of a
            // killed run; anything else is still not worth dying over.
            logging::warn("skipping malformed journal record at ", path,
                          ":", line_no);
            continue;
        }
        journal._loaded[entry.index] = std::move(entry);
    }

    journal._out =
        std::make_shared<std::ofstream>(path, std::ios::out |
                                                  std::ios::app);
    if (!*journal._out) {
        return Status::invalidArgument(
            "cannot append to sweep journal at '" + path + "'");
    }
    return journal;
}

void
SweepJournal::record(const JournalEntry &entry)
{
    mc_assert(entry.key.find(',') == std::string::npos &&
                  entry.key.find('\n') == std::string::npos,
              "journal keys must not contain commas or newlines: ",
              entry.key);
    mc_assert(entry.payload.find('\n') == std::string::npos,
              "journal payloads must not contain newlines");

    std::ostringstream line;
    line << entry.index << ',' << entry.key << ','
         << errorCodeName(entry.code) << ',' << entry.payload << '\n';

    std::lock_guard<std::mutex> lock(*_mutex);
    *_out << line.str();
    _out->flush();
}

const JournalEntry *
SweepJournal::find(std::size_t index) const
{
    const auto it = _loaded.find(index);
    return it == _loaded.end() ? nullptr : &it->second;
}

std::size_t
SweepJournal::loadedOkCount() const
{
    std::size_t n = 0;
    for (const auto &[index, entry] : _loaded)
        n += entry.ok();
    return n;
}

} // namespace exec
} // namespace mc
