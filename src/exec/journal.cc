#include "journal.hh"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"

namespace mc {
namespace exec {

namespace {

constexpr const char *formatTagV1 = "mcchar sweep journal v1";
constexpr const char *formatTagV2 = "mcchar sweep journal v2";

std::string
headerLine(const char *tag, const std::string &bench_name)
{
    return std::string("# ") + tag + " bench=" + bench_name;
}

/** The record body (everything the checksum covers). */
std::string
recordBody(const JournalEntry &entry)
{
    std::ostringstream body;
    body << entry.index << ',' << entry.key << ','
         << errorCodeName(entry.code) << ',' << entry.payload;
    return body.str();
}

std::string
crcHex(std::uint32_t crc)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", crc);
    return buf;
}

/** Parse one record body (`index,key,code,payload`); false if malformed. */
bool
parseRecordBody(std::string_view body, JournalEntry &entry)
{
    const std::size_t c1 = body.find(',');
    if (c1 == std::string_view::npos)
        return false;
    const std::size_t c2 = body.find(',', c1 + 1);
    if (c2 == std::string_view::npos)
        return false;
    const std::size_t c3 = body.find(',', c2 + 1);
    if (c3 == std::string_view::npos)
        return false;

    const std::string_view index_text = body.substr(0, c1);
    const auto [end, ec] = std::from_chars(
        index_text.data(), index_text.data() + index_text.size(),
        entry.index);
    if (ec != std::errc{} || end != index_text.data() + index_text.size())
        return false;

    entry.key = std::string(body.substr(c1 + 1, c2 - c1 - 1));
    if (!errorCodeFromName(body.substr(c2 + 1, c3 - c2 - 1), entry.code))
        return false;
    entry.payload = std::string(body.substr(c3 + 1));
    return true;
}

/**
 * Split a v2 line into its checksum field and body; false when the
 * line has no leading 8-hex-digit field.
 */
bool
splitChecksummedLine(std::string_view line, std::uint32_t &crc,
                     std::string_view &body)
{
    if (line.size() < 9 || line[8] != ',')
        return false;
    std::uint32_t value = 0;
    for (int i = 0; i < 8; ++i) {
        const char ch = line[i];
        value <<= 4;
        if (ch >= '0' && ch <= '9')
            value |= static_cast<std::uint32_t>(ch - '0');
        else if (ch >= 'a' && ch <= 'f')
            value |= static_cast<std::uint32_t>(ch - 'a' + 10);
        else
            return false;
    }
    crc = value;
    body = line.substr(9);
    return true;
}

} // namespace

Result<SweepJournal>
SweepJournal::create(const std::string &path,
                     const std::string &bench_name)
{
    SweepJournal journal;
    journal._path = path;
    journal._bench = bench_name;
    journal._mutex = std::make_shared<std::mutex>();
    journal._out = std::make_shared<std::ofstream>(
        path, std::ios::out | std::ios::trunc);
    if (!*journal._out) {
        return Status::invalidArgument(
            "cannot create sweep journal at '" + path + "'");
    }
    *journal._out << headerLine(formatTagV2, bench_name) << '\n';
    journal._out->flush();
    return journal;
}

Result<SweepJournal>
SweepJournal::open(const std::string &path,
                   const std::string &bench_name)
{
    std::ifstream in(path);
    if (!in) {
        return Status::notFound(
            "sweep journal '" + path + "' does not exist");
    }

    SweepJournal journal;
    journal._path = path;
    journal._bench = bench_name;
    journal._mutex = std::make_shared<std::mutex>();

    std::string header;
    if (!std::getline(in, header)) {
        return Status::failedPrecondition(
            "'" + path + "' is not a journal of bench '" + bench_name +
            "' (empty file)");
    }
    if (header == headerLine(formatTagV2, bench_name)) {
        journal._checksummed = true;
    } else if (header == headerLine(formatTagV1, bench_name)) {
        journal._checksummed = false;
    } else {
        return Status::failedPrecondition(
            "'" + path + "' is not a journal of bench '" + bench_name +
            "' (header: '" + header + "')");
    }

    // Read everything first: "is this the final line?" decides whether
    // a bad record is a tolerable torn tail or fatal corruption.
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(std::move(line));

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &text = lines[i];
        const std::size_t line_no = i + 2; // 1-based, after the header
        const bool is_final = i + 1 == lines.size();
        if (text.empty())
            continue;

        JournalEntry entry;
        if (journal._checksummed) {
            std::uint32_t stored_crc = 0;
            std::string_view body;
            const bool framed =
                splitChecksummedLine(text, stored_crc, body);
            const bool intact = framed &&
                                crc32String(body) == stored_crc &&
                                parseRecordBody(body, entry);
            if (!intact) {
                if (is_final) {
                    // The expected residue of a killed run: the write
                    // of the last record never completed.
                    logging::warn("skipping torn final journal record "
                                  "at ", path, ":", line_no);
                    continue;
                }
                return Status::dataLoss(
                    "journal '" + path + "' line " +
                    std::to_string(line_no) +
                    ": checksum mismatch or malformed record "
                    "(mid-file corruption; delete the journal to "
                    "restart the sweep from scratch)");
            }
        } else {
            // Legacy v1: no checksums, keep the historical tolerant
            // behavior (warn and skip anything malformed).
            if (!parseRecordBody(text, entry)) {
                logging::warn("skipping malformed journal record at ",
                              path, ":", line_no);
                continue;
            }
        }
        journal._loaded[entry.index] = std::move(entry);
    }

    journal._out =
        std::make_shared<std::ofstream>(path, std::ios::out |
                                                  std::ios::app);
    if (!*journal._out) {
        return Status::invalidArgument(
            "cannot append to sweep journal at '" + path + "'");
    }
    return journal;
}

void
SweepJournal::record(const JournalEntry &entry)
{
    mc_assert(entry.key.find(',') == std::string::npos &&
                  entry.key.find('\n') == std::string::npos,
              "journal keys must not contain commas or newlines: ",
              entry.key);
    mc_assert(entry.payload.find('\n') == std::string::npos,
              "journal payloads must not contain newlines");

    const std::string body = recordBody(entry);
    std::string text;
    if (_checksummed)
        text = crcHex(crc32String(body)) + "," + body + "\n";
    else
        text = body + "\n";

    std::lock_guard<std::mutex> lock(*_mutex);
    *_out << text;
    _out->flush();
}

const JournalEntry *
SweepJournal::find(std::size_t index) const
{
    const auto it = _loaded.find(index);
    return it == _loaded.end() ? nullptr : &it->second;
}

std::size_t
SweepJournal::loadedOkCount() const
{
    std::size_t n = 0;
    for (const auto &[index, entry] : _loaded)
        n += entry.ok();
    return n;
}

} // namespace exec
} // namespace mc
