#include "node.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mc {
namespace sim {

Node::Node(int packages, const arch::Cdna2Calibration &cal,
           const SimOptions &opts)
{
    mc_assert(packages > 0, "a node needs at least one package");
    _gpus.reserve(packages);
    for (int i = 0; i < packages; ++i) {
        SimOptions per_gpu = opts;
        // De-correlate the measurement noise across packages.
        per_gpu.noiseSeed = opts.noiseSeed + 0x9e37 * (i + 1);
        _gpus.push_back(std::make_unique<Mi250x>(cal, per_gpu));
    }
}

Mi250x &
Node::package(int index)
{
    mc_assert(index >= 0 && index < packageCount(),
              "package ", index, " out of range");
    return *_gpus[index];
}

const Mi250x &
Node::package(int index) const
{
    mc_assert(index >= 0 && index < packageCount(),
              "package ", index, " out of range");
    return *_gpus[index];
}

NodeRunResult
Node::runEverywhere(const KernelProfile &profile, int packages)
{
    if (packages < 0)
        packages = packageCount();
    mc_assert(packages >= 1 && packages <= packageCount(),
              "cannot run on ", packages, " of ", packageCount(),
              " packages");

    NodeRunResult result;
    std::vector<int> gcds;
    for (int g = 0; g < _gpus.front()->calibration().gcdsPerPackage; ++g)
        gcds.push_back(g);

    for (int p = 0; p < packages; ++p) {
        const KernelResult r = _gpus[p]->run(profile, gcds);
        result.seconds = std::max(result.seconds, r.seconds);
        result.totalFlops += r.mfmaFlops + r.simdFlops;
        result.totalPowerW += r.avgPowerW;
        result.perPackage.push_back(r);
    }
    // Idle packages still draw their idle power at the node level.
    for (int p = packages; p < packageCount(); ++p)
        result.totalPowerW += _gpus[p]->powerModel().idleWatts();
    return result;
}

double
Node::idlePowerW() const
{
    double total = 0.0;
    for (const auto &gpu : _gpus)
        total += gpu->powerModel().idleWatts();
    return total;
}

} // namespace sim
} // namespace mc
