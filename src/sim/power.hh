/**
 * @file
 * Package power model and power trace of the simulated MI250X.
 *
 * The paper (Section VI) finds package power to be linear in delivered
 * throughput per datatype:  PC = slope * Th + intercept  (Eq. 3), on top
 * of an 88 W idle floor. The model here generates instantaneous power
 * from activity, and the trace records it over simulated time so the SMI
 * sampler can observe it exactly the way rocm-smi observes hardware.
 */

#ifndef MC_SIM_POWER_HH
#define MC_SIM_POWER_HH

#include <vector>

#include "arch/calibration.hh"
#include "arch/types.hh"

namespace mc {
namespace sim {

/**
 * Linear activity-to-power model for the MI250X package.
 */
class PowerModel
{
  public:
    explicit PowerModel(const arch::Cdna2Calibration &cal) : _cal(cal) {}

    /** Whole-package idle power, watts. */
    double idleWatts() const { return _cal.idlePowerW; }

    /**
     * Package base power with a kernel of dominant datatype @p dt
     * resident on @p active_gcds of the two GCDs (clocks ramped, zero
     * throughput extrapolation of Eq. 3).
     */
    double baseWatts(arch::DataType dt, int active_gcds) const;

    /**
     * Package power at @p flops_per_sec aggregate delivered throughput
     * of dominant datatype @p dt on @p active_gcds.
     */
    double activeWatts(arch::DataType dt, int active_gcds,
                       double flops_per_sec) const;

    /** Dynamic energy per operation for datatype @p dt, joules. */
    double
    energyPerFlop(arch::DataType dt) const
    {
        return _cal.perfFor(dt).energyPerFlopJ;
    }

    /** The vendor power cap, watts. */
    double capWatts() const { return _cal.powerCapW; }

    /** The steady-state power the DVFS governor regulates to, watts. */
    double governorTargetWatts() const { return _cal.dvfsTargetW; }

  private:
    const arch::Cdna2Calibration &_cal;
};

/** One constant-power interval of the package power trace. */
struct PowerSegment
{
    double startSec = 0.0;
    double endSec = 0.0;
    double watts = 0.0;
};

/**
 * Anything that can report package power over simulated time: the
 * sequential trace the device model writes, or the merged view of
 * overlapping per-GCD contributions the async runtime builds.
 */
class PowerSource
{
  public:
    virtual ~PowerSource() = default;

    /** Instantaneous power at time @p t, watts. */
    virtual double wattsAt(double t) const = 0;

    /** Energy over [start, end), joules. */
    virtual double energyJoules(double start_sec,
                                double end_sec) const = 0;

    /** Power with no activity recorded, watts. */
    virtual double idleWatts() const = 0;

    /** Mean power over [start, end), watts. */
    double
    averageWatts(double start_sec, double end_sec) const
    {
        return energyJoules(start_sec, end_sec) / (end_sec - start_sec);
    }
};

/**
 * Piecewise-constant package power over simulated time.
 *
 * Gaps between segments are implicitly at idle power.
 */
class PowerTrace : public PowerSource
{
  public:
    explicit PowerTrace(double idle_watts) : _idleWatts(idle_watts) {}

    /** Record power @p watts over [start, end) seconds. */
    void addSegment(double start_sec, double end_sec, double watts);

    double wattsAt(double t) const override;
    double energyJoules(double start_sec, double end_sec) const override;
    double idleWatts() const override { return _idleWatts; }

    /** End time of the last recorded segment, seconds. */
    double endSec() const;

    const std::vector<PowerSegment> &segments() const { return _segments; }

  private:
    double _idleWatts;
    std::vector<PowerSegment> _segments; ///< kept sorted by startSec
};

/**
 * Package power as the sum of overlapping per-GCD contributions above
 * the idle floor — the view that matches concurrently running kernels
 * (the paper's one-process-per-GCD measurement setup).
 */
class ContributionTrace : public PowerSource
{
  public:
    explicit ContributionTrace(double idle_watts)
        : _idleWatts(idle_watts)
    {}

    /**
     * Record a kernel drawing @p watts_above_idle over [start, end).
     * Contributions may overlap arbitrarily.
     */
    void addContribution(double start_sec, double end_sec,
                         double watts_above_idle);

    double wattsAt(double t) const override;
    double energyJoules(double start_sec, double end_sec) const override;
    double idleWatts() const override { return _idleWatts; }

    /** Latest contribution end, seconds. */
    double endSec() const;

    /** Peak instantaneous power over [start, end), watts. */
    double maxWatts(double start_sec, double end_sec) const;

    std::size_t contributionCount() const { return _contributions.size(); }

  private:
    struct Contribution
    {
        double startSec;
        double endSec;
        double watts;
    };

    double _idleWatts;
    std::vector<Contribution> _contributions;
};

} // namespace sim
} // namespace mc

#endif // MC_SIM_POWER_HH
