#include "counters.hh"

#include "common/logging.hh"

namespace mc {
namespace sim {

namespace {

const char *
typeSuffix(int bank)
{
    switch (bank) {
      case 0: return "F16";
      case 1: return "BF16";
      case 2: return "F32";
      case 3: return "F64";
      case 4: return "I8";
    }
    return "?";
}

const char *
opName(int op)
{
    switch (static_cast<ValuOp>(op)) {
      case ValuOp::Add: return "ADD";
      case ValuOp::Mul: return "MUL";
      case ValuOp::Fma: return "FMA";
      case ValuOp::Xfer: return "XFER";
    }
    return "?";
}

} // namespace

int
counterTypeIndex(arch::DataType dt)
{
    switch (dt) {
      case arch::DataType::F16: return 0;
      case arch::DataType::BF16: return 1;
      case arch::DataType::F32: return 2;
      case arch::DataType::F64: return 3;
      case arch::DataType::I8: return 4;
      default:
        mc_fatal("datatype ", arch::dataTypeName(dt),
                 " has no SQ counter bank");
    }
}

HwCounters &
HwCounters::operator+=(const HwCounters &other)
{
    for (int t = 0; t < numCounterTypes; ++t) {
        mfmaMops[t] += other.mfmaMops[t];
        for (int op = 0; op < numValuOps; ++op)
            valu[t][op] += other.valu[t][op];
    }
    mfmaInstructions += other.mfmaInstructions;
    return *this;
}

void
HwCounters::addMfmaOps(arch::DataType ab_type, std::uint64_t matrix_ops,
                       std::uint64_t instructions)
{
    mc_assert(matrix_ops % mopsGranularity == 0,
              "MFMA op count ", matrix_ops, " is not a multiple of ",
              mopsGranularity);
    mfmaMops[counterTypeIndex(ab_type)] += matrix_ops / mopsGranularity;
    mfmaInstructions += instructions;
}

void
HwCounters::addValu(arch::DataType dt, ValuOp op, std::uint64_t count)
{
    valu[counterTypeIndex(dt)][static_cast<int>(op)] += count;
}

std::uint64_t
HwCounters::mops(arch::DataType ab_type) const
{
    return mfmaMops[counterTypeIndex(ab_type)];
}

std::uint64_t
HwCounters::valuCount(arch::DataType dt, ValuOp op) const
{
    return valu[counterTypeIndex(dt)][static_cast<int>(op)];
}

std::uint64_t
HwCounters::byName(const std::string &name) const
{
    for (int t = 0; t < numCounterTypes; ++t) {
        std::string mops_name = "SQ_INSTS_VALU_MFMA_MOPS_";
        mops_name += typeSuffix(t);
        if (name == mops_name)
            return mfmaMops[t];
        for (int op = 0; op < numValuOps; ++op) {
            std::string valu_name = "SQ_INSTS_VALU_";
            valu_name += opName(op);
            valu_name += '_';
            valu_name += typeSuffix(t);
            if (name == valu_name)
                return valu[t][op];
        }
    }
    if (name == "SQ_INSTS_MFMA")
        return mfmaInstructions;
    mc_fatal("unknown hardware counter '", name, "'");
}

std::vector<std::string>
HwCounters::counterNames()
{
    std::vector<std::string> names;
    for (int t = 0; t < numCounterTypes; ++t) {
        names.push_back(std::string("SQ_INSTS_VALU_MFMA_MOPS_") +
                        typeSuffix(t));
        for (int op = 0; op < numValuOps; ++op) {
            names.push_back(std::string("SQ_INSTS_VALU_") + opName(op) +
                            "_" + typeSuffix(t));
        }
    }
    names.push_back("SQ_INSTS_MFMA");
    return names;
}

} // namespace sim
} // namespace mc
