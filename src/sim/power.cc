#include "power.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mc {
namespace sim {

double
PowerModel::baseWatts(arch::DataType dt, int active_gcds) const
{
    mc_assert(active_gcds >= 0 && active_gcds <= _cal.gcdsPerPackage,
              "active GCD count ", active_gcds, " out of range");
    if (active_gcds == 0)
        return idleWatts();
    // Eq. 3 intercepts were measured with both GCDs active; the
    // above-idle component splits evenly between the dies.
    const double both_active = _cal.perfFor(dt).basePowerW;
    const double per_gcd =
        (both_active - idleWatts()) / _cal.gcdsPerPackage;
    return idleWatts() + per_gcd * active_gcds;
}

double
PowerModel::activeWatts(arch::DataType dt, int active_gcds,
                        double flops_per_sec) const
{
    return baseWatts(dt, active_gcds) +
           energyPerFlop(dt) * flops_per_sec;
}

void
PowerTrace::addSegment(double start_sec, double end_sec, double watts)
{
    mc_assert(end_sec >= start_sec, "power segment ends before it starts");
    if (!_segments.empty()) {
        mc_assert(start_sec >= _segments.back().endSec,
                  "power segments must be appended in time order");
    }
    _segments.push_back(PowerSegment{start_sec, end_sec, watts});
}

double
PowerTrace::wattsAt(double t) const
{
    // Binary search for the first segment ending after t.
    auto it = std::upper_bound(
        _segments.begin(), _segments.end(), t,
        [](double value, const PowerSegment &seg) {
            return value < seg.endSec;
        });
    if (it != _segments.end() && t >= it->startSec)
        return it->watts;
    return _idleWatts;
}

double
PowerTrace::energyJoules(double start_sec, double end_sec) const
{
    mc_assert(end_sec >= start_sec, "energy over a negative interval");
    double energy = 0.0;
    double cursor = start_sec;
    for (const auto &seg : _segments) {
        if (seg.endSec <= cursor || seg.startSec >= end_sec)
            continue;
        const double lo = std::max(cursor, seg.startSec);
        const double hi = std::min(end_sec, seg.endSec);
        // Idle gap before this segment.
        if (lo > cursor)
            energy += _idleWatts * (lo - cursor);
        energy += seg.watts * (hi - lo);
        cursor = hi;
    }
    if (cursor < end_sec)
        energy += _idleWatts * (end_sec - cursor);
    return energy;
}

double
PowerTrace::endSec() const
{
    return _segments.empty() ? 0.0 : _segments.back().endSec;
}

void
ContributionTrace::addContribution(double start_sec, double end_sec,
                                   double watts_above_idle)
{
    mc_assert(end_sec >= start_sec,
              "power contribution ends before it starts");
    mc_assert(watts_above_idle >= 0.0,
              "power contribution must be non-negative");
    _contributions.push_back(
        Contribution{start_sec, end_sec, watts_above_idle});
}

double
ContributionTrace::wattsAt(double t) const
{
    double watts = _idleWatts;
    for (const auto &c : _contributions) {
        if (t >= c.startSec && t < c.endSec)
            watts += c.watts;
    }
    return watts;
}

double
ContributionTrace::energyJoules(double start_sec, double end_sec) const
{
    mc_assert(end_sec >= start_sec, "energy over a negative interval");
    double energy = _idleWatts * (end_sec - start_sec);
    for (const auto &c : _contributions) {
        const double lo = std::max(start_sec, c.startSec);
        const double hi = std::min(end_sec, c.endSec);
        if (hi > lo)
            energy += c.watts * (hi - lo);
    }
    return energy;
}

double
ContributionTrace::endSec() const
{
    double end = 0.0;
    for (const auto &c : _contributions)
        end = std::max(end, c.endSec);
    return end;
}

double
ContributionTrace::maxWatts(double start_sec, double end_sec) const
{
    mc_assert(end_sec > start_sec, "max over an empty interval");
    // Power is piecewise constant with changes only at contribution
    // boundaries: evaluate just after each boundary in range.
    double best = wattsAt(start_sec);
    for (const auto &c : _contributions) {
        for (double edge : {c.startSec, c.endSec}) {
            if (edge >= start_sec && edge < end_sec)
                best = std::max(best, wattsAt(edge));
        }
    }
    return best;
}

} // namespace sim
} // namespace mc
