#include "kernel.hh"

#include <map>

#include "common/logging.hh"

namespace mc {
namespace sim {

namespace {

/// VALU instructions operate on all 64 threads of a CDNA2 wavefront.
constexpr int valuThreadsPerInst = 64;

} // namespace

double
KernelProfile::mfmaFlops() const
{
    if (mfmaFlopsOverride)
        return *mfmaFlopsOverride;
    double total = 0.0;
    for (const auto &seg : mfmaPerWavefront) {
        total += static_cast<double>(seg.inst->flopsPerInstruction()) *
                 static_cast<double>(seg.countPerWavefront);
    }
    return total * static_cast<double>(numWavefronts);
}

double
KernelProfile::simdFlops() const
{
    double total = 0.0;
    for (const auto &seg : valuTotal) {
        total += static_cast<double>(seg.instCount) *
                 static_cast<double>(seg.flopsPerThread) * valuThreadsPerInst;
    }
    return total;
}

std::uint64_t
KernelProfile::mfmaInstsPerWavefront() const
{
    std::uint64_t total = 0;
    for (const auto &seg : mfmaPerWavefront)
        total += seg.countPerWavefront;
    return total;
}

arch::DataType
KernelProfile::dominantType() const
{
    std::map<arch::DataType, double> flops_by_type;
    for (const auto &seg : mfmaPerWavefront) {
        flops_by_type[seg.inst->typeAB] +=
            static_cast<double>(seg.inst->flopsPerInstruction()) *
            static_cast<double>(seg.countPerWavefront) *
            static_cast<double>(numWavefronts);
    }
    for (const auto &seg : valuTotal) {
        flops_by_type[seg.dtype] +=
            static_cast<double>(seg.instCount) *
            static_cast<double>(seg.flopsPerThread) * valuThreadsPerInst;
    }

    arch::DataType best = arch::DataType::F32;
    double best_flops = -1.0;
    for (const auto &[dt, fl] : flops_by_type) {
        if (fl > best_flops) {
            best = dt;
            best_flops = fl;
        }
    }
    return best;
}

HwCounters
KernelProfile::expectedCounters() const
{
    if (countersOverride)
        return *countersOverride;
    HwCounters counters;
    for (const auto &seg : mfmaPerWavefront) {
        const std::uint64_t insts = seg.countPerWavefront * numWavefronts;
        const std::uint64_t ops =
            insts * static_cast<std::uint64_t>(
                        seg.inst->flopsPerInstruction());
        counters.addMfmaOps(seg.inst->typeAB, ops, insts);
    }
    for (const auto &seg : valuTotal)
        counters.addValu(seg.dtype, seg.op, seg.instCount);
    return counters;
}

void
KernelProfile::addMfma(const arch::MfmaInstruction *inst,
                       std::uint64_t count_per_wavefront)
{
    mc_assert(inst != nullptr, "MFMA segment requires an instruction");
    mfmaPerWavefront.push_back(MfmaSegment{inst, count_per_wavefront});
}

void
KernelProfile::addValu(arch::DataType dtype, ValuOp op,
                       std::uint64_t inst_count, int flops_per_thread)
{
    valuTotal.push_back(ValuSegment{dtype, op, inst_count, flops_per_thread});
}

} // namespace sim
} // namespace mc
